// Package cqa holds the repository-level benchmark harness: one testing.B
// benchmark per experiment of EXPERIMENTS.md. Absolute numbers depend on
// hardware; the shapes (polynomial vs exponential growth, who wins) are
// what reproduce the paper's claims.
package cqa

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/baseline"
	"cqa/internal/conp"
	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/server"
	"cqa/internal/sqlmini"
	"cqa/internal/workload"
)

// --- E1/E2/E4: classification cost ---

func BenchmarkClassifyFigure1(b *testing.B) {
	q := query.MustParse("R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := attack.Classify(q); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkClassifyRandom(b *testing.B, atoms int) {
	rng := rand.New(rand.NewSource(42))
	p := workload.DefaultQueryParams()
	p.Atoms = atoms
	p.Vars = atoms + 2
	queries := make([]query.Query, 64)
	for i := range queries {
		queries[i] = workload.RandomQuery(rng, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := attack.Classify(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassifyRandom4(b *testing.B)  { benchmarkClassifyRandom(b, 4) }
func BenchmarkClassifyRandom8(b *testing.B)  { benchmarkClassifyRandom(b, 8) }
func BenchmarkClassifyRandom12(b *testing.B) { benchmarkClassifyRandom(b, 12) }

// --- E5: FO engine scaling ---

func chainDB(n int, inconsistent float64, seed int64) *db.DB {
	rng := rand.New(rand.NewSource(seed))
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, "z"}})
		if rng.Float64() < inconsistent {
			y2 := query.Const(fmt.Sprintf("y%d_b", i))
			d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y2}})
			d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y2, "z"}})
		}
	}
	return d
}

func benchmarkCertainFO(b *testing.B, n int) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := chainDB(n, 0.3, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Certain(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertainFO1k(b *testing.B)  { benchmarkCertainFO(b, 1000) }
func BenchmarkCertainFO10k(b *testing.B) { benchmarkCertainFO(b, 10000) }

// --- E6: P engine (dissolution) scaling on q0 ---

func benchmarkCertainPTimeQ0(b *testing.B, nodes int) {
	rng := rand.New(rand.NewSource(11))
	q := workload.Q0()
	d := workload.Q0Instance(rng, nodes, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ptime.Certain(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertainPTimeQ0n100(b *testing.B)  { benchmarkCertainPTimeQ0(b, 100) }
func BenchmarkCertainPTimeQ0n1000(b *testing.B) { benchmarkCertainPTimeQ0(b, 1000) }

func BenchmarkCertainPTimeFigure2(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	q := query.MustParse("R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)")
	p := workload.DefaultDBParams()
	p.SeedMatches = 20
	p.Domain = 4
	d := workload.RandomDB(rng, q, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ptime.Certain(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: coNP engine on strong-cycle gadgets ---

func benchmarkCertainCoNP(b *testing.B, vars int) {
	rng := rand.New(rand.NewSource(17))
	q := workload.NonKeyJoinQuery()
	d := workload.HardInstance(rng, vars, 2*vars, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conp.Certain(q, d)
	}
}

func BenchmarkCertainCoNPVars8(b *testing.B)  { benchmarkCertainCoNP(b, 8) }
func BenchmarkCertainCoNPVars16(b *testing.B) { benchmarkCertainCoNP(b, 16) }
func BenchmarkCertainCoNPVars24(b *testing.B) { benchmarkCertainCoNP(b, 24) }

// --- E8: rewriting construction ---

func BenchmarkRewritingConstruction(b *testing.B) {
	q := workload.PathQuery(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rewrite.Rewriting(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: purification ---

func BenchmarkPurify(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	q := workload.NonKeyJoinQuery()
	p := workload.DefaultDBParams()
	p.SeedMatches = 50
	p.Domain = 10
	p.Noise = 200
	d := workload.RandomDB(rng, q, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.Purify(q, d)
	}
}

func BenchmarkGPurify(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	q := workload.Q0()
	d := workload.Q0Instance(rng, 60, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.GPurify(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: match enumeration substrate ---

func BenchmarkAllMatchesChain(b *testing.B) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := chainDB(2000, 0.3, 29)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.AllMatches(q, d)
	}
}

// --- E12: q0 on reachability-style instances ---

func BenchmarkQ0Reachability(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	q := workload.Q0()
	d := workload.Q0Instance(rng, 300, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ptime.Certain(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E13: exact counting ---

func BenchmarkCountingFactorized(b *testing.B) {
	q := workload.Q0()
	d := db.New()
	for i := 0; i < 40; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, query.Const(fmt.Sprintf("yd%d", i))}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, x}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, query.Const(fmt.Sprintf("xd%d", i))}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := counting.SatisfyingRepairs(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E14: baseline engine ---

func BenchmarkFMRewritingChain(b *testing.B) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := chainDB(2000, 0.3, 37)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FMCertain(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-serve: HTTP service with shared plan cache ---

// BenchmarkServeCertainWarmCache measures a /v1/certain round trip over
// httptest with a warm plan cache (every iteration reuses one cached
// plan) against the cold path (every iteration is a never-seen query
// whose classification + rewriting must be compiled). The gap is the
// per-request win of the Lemma 3 compile-once/serve-many split.
func BenchmarkServeCertainWarmCache(b *testing.B) {
	newServer := func() (*httptest.Server, func()) {
		srv := server.New(server.Config{CacheSize: 1 << 16, MaxWorkers: 64})
		ts := httptest.NewServer(srv.Handler())
		return ts, ts.Close
	}
	post := func(tb testing.TB, client *http.Client, url string, body []byte) {
		resp, err := client.Post(url+"/v1/certain", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("status %d", resp.StatusCode)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	facts := "R(a | b)\nR(a | b2)\nS(b | c)\nS(b2 | c)\n"

	b.Run("warm", func(b *testing.B) {
		ts, done := newServer()
		defer done()
		body, _ := json.Marshal(map[string]any{
			"query": "R(x | y), S(y | z)",
			"facts": facts,
		})
		post(b, ts.Client(), ts.URL, body) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.Client(), ts.URL, body)
		}
	})
	b.Run("cold", func(b *testing.B) {
		ts, done := newServer()
		defer done()
		bodies := make([][]byte, b.N)
		for i := range bodies {
			// Distinct relation names per iteration: never a cache hit,
			// so each request pays classification + rewriting.
			bodies[i], _ = json.Marshal(map[string]any{
				"query": fmt.Sprintf("R%d(x | y), S%d(y | z)", i, i),
				"facts": fmt.Sprintf("R%d(a | b)\nR%d(a | b2)\nS%d(b | c)\nS%d(b2 | c)\n", i, i, i, i),
			})
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, ts.Client(), ts.URL, bodies[i])
		}
	})
}

// --- E-index: plan-compiled, index-backed evaluation ---

// falsifiedChainDB builds a chain instance with the given total number
// of blocks (half R, half S) on which the chain query is NOT certain:
// every R-block has one fact whose y-value lacks an S-fact, so a sound
// evaluator must visit every block of both relations — the worst case
// for the Lemma 9/10 block loop, and the case where a per-call block
// re-scan turns the FO engine quadratic.
func falsifiedChainDB(blocks int) *db.DB {
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	for i := 0; i < blocks/2; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		yBad := query.Const(fmt.Sprintf("y%d_bad", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, yBad}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, "z"}})
	}
	return d
}

// benchmarkCertainAcyclic measures the data-side cost of one certainty
// decision for the FO chain query against a pre-compiled plan, the
// serving hot path: plan compilation is outside the timer, so the
// number is pure evaluation (block iteration, key probes, recursion).
func benchmarkCertainAcyclic(b *testing.B, blocks int) {
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	d := falsifiedChainDB(blocks)
	if res, err := plan.Certain(d, core.Options{}); err != nil || res.Certain {
		b.Fatalf("want certain=false, err=nil; got %v, %v", res.Certain, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Certain(d, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertainAcyclic1k(b *testing.B)   { benchmarkCertainAcyclic(b, 1000) }
func BenchmarkCertainAcyclic10k(b *testing.B)  { benchmarkCertainAcyclic(b, 10000) }
func BenchmarkCertainAcyclic100k(b *testing.B) { benchmarkCertainAcyclic(b, 100000) }

// BenchmarkCertainAnswersPool measures the non-Boolean path: enumerate
// candidate bindings of x and decide certainty per candidate.
func BenchmarkCertainAnswersPool(b *testing.B) {
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	d := chainDB(500, 0.3, 7)
	free := []query.Var{"x"}
	if _, err := plan.CertainAnswers(free, d, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.CertainAnswers(free, d, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: SQL bridge ---

func BenchmarkSQLEvalChain(b *testing.B) {
	q := query.MustParse("R(x | y), S(y | z)")
	sql, err := rewrite.SQL(q)
	if err != nil {
		b.Fatal(err)
	}
	d := chainDB(200, 0.3, 41)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlmini.EvalString(sql, d); err != nil {
			b.Fatal(err)
		}
	}
}
