// Package cqa is a complete Go implementation of Koutris and Wijsen,
// "The Data Complexity of Consistent Query Answering for Self-Join-Free
// Conjunctive Queries Under Primary Key Constraints" (PODS 2015).
//
// The module root carries the repository-level benchmark harness; the
// library lives under internal/ with core as the public facade:
//
//	cls, _ := core.Classify(q)                   // FO / P\FO / coNP-complete
//	res, _ := core.Certain(q, db, core.Options{}) // certain answer
//
// See README.md for the guided tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured record.
package cqa
