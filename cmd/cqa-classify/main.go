// Command cqa-classify classifies CERTAINTY(q) for a self-join-free
// conjunctive query per the trichotomy of Koutris & Wijsen (PODS 2015)
// and prints the attack graph behind the decision.
//
// Usage:
//
//	cqa-classify [-dot] [-markov] [-plus] [-explain] 'R(x | y), S(y | z)'
//	cqa-classify -catalog
//
// Query syntax: atoms separated by commas; key positions left of the
// bar; '#c' marks a consistent relation; quoted or numeric tokens are
// constants. Example: "R(x | y), S#c(y | 'b')".
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunClassify(os.Args[1:], os.Stdout, os.Stderr))
}
