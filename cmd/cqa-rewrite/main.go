// Command cqa-rewrite prints the consistent first-order rewriting of
// CERTAINTY(q) for queries whose attack graph is acyclic (Theorem 2 /
// Lemma 10 of Koutris & Wijsen, PODS 2015), in logic notation or as a
// ConQuer-style SQL statement.
//
// Usage:
//
//	cqa-rewrite 'R(x | y), S(y | z)'
//	cqa-rewrite -sql 'R(x | y), S(y | z)'
//	cqa-rewrite -catalog
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunRewrite(os.Args[1:], os.Stdout, os.Stderr))
}
