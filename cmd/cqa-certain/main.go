// Command cqa-certain decides CERTAINTY(q): whether a Boolean
// self-join-free conjunctive query is true in every repair of an
// uncertain database.
//
// Usage:
//
//	cqa-certain -q 'R(x | y), S(y | z)' -db facts.txt [-engine auto|fo|ptime|conp|naive] [-repair]
//	echo 'R(a | b)' | cqa-certain -q 'R(x | y)' -db -
//
// The database file holds one fact per line, e.g. "R(a | b)"; blank
// lines and '#' comments are skipped. Exit status: 0 when certain, 1
// when not certain, 2 on errors.
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunCertain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
