// Command cqa-serve runs the CQA service: an HTTP/JSON API over the
// trichotomy machinery with a shared plan cache (classification + FO
// rewriting compiled once per distinct query) and a registry of named
// uncertain databases with atomic snapshot swap.
//
// Usage:
//
//	cqa-serve [-addr :8334] [-cache 1024] [-workers N] [-quiet] [-wal dir]
//
// With -wal, every upload, delta write, and delete is journaled to an
// append-only log in dir before it publishes, and the journal is
// replayed on boot to restore the registry (exact version chain
// included) after a crash or restart.
//
// Endpoints (see internal/server):
//
//	POST /v1/classify, /v1/certain, /v1/answers, /v1/rewrite
//	GET  /v1/catalog, /healthz, /metrics
//	PUT/GET/DELETE /v1/db/{name}, GET /v1/db
//	POST /v1/db/{name}/facts (incremental delta writes)
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunServe(os.Args[1:], os.Stdout, os.Stderr))
}
