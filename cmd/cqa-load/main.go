// Command cqa-load is the load generator for cqa-serve: it uploads
// generated databases for the literature catalog and the workload query
// families, replays /v1/certain and /v1/classify traffic at a target
// QPS, and prints a latency/throughput summary plus the server's
// plan-cache counters.
//
// Usage:
//
//	cqa-load [-url http://127.0.0.1:8334] [-qps 200] [-duration 5s]
//	         [-concurrency 16] [-classify 0.25] [-write-mix 0] [-seed 1]
//	cqa-load -probe        # cold-vs-warm plan-cache latency per query
//
// With -write-mix F, that fraction of certain requests is replaced by
// POST /v1/db/{name}/facts delta writes against the same databases,
// exercising the incremental mutation path under read traffic.
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunLoad(os.Args[1:], os.Stdout, os.Stderr))
}
