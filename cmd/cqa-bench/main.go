// Command cqa-bench regenerates the experiment tables and figures of
// EXPERIMENTS.md: the paper's formal artifacts (E1-E3, E8) recomputed by
// the library, and synthetic benchmarks validating each complexity claim
// (E4-E7, E9-E12).
//
// Usage:
//
//	cqa-bench              # run everything
//	cqa-bench -exp E6      # one experiment
//	cqa-bench -list        # list experiments
//	cqa-bench -quick       # small sweeps (seconds instead of minutes)
package main

import (
	"os"

	"cqa/internal/cli"
)

func main() {
	os.Exit(cli.RunBench(os.Args[1:], os.Stdout, os.Stderr))
}
