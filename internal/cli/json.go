package cli

import (
	"encoding/json"
	"fmt"
	"io"

	"cqa/internal/core"
)

// classificationJSON is the machine-readable form of a classification.
type classificationJSON struct {
	Query          string       `json:"query"`
	Class          string       `json:"class"`
	HasCycle       bool         `json:"hasCycle"`
	HasStrongCycle bool         `json:"hasStrongCycle"`
	Attacks        []attackJSON `json:"attacks"`
	Explanation    string       `json:"explanation"`
}

type attackJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Weak bool   `json:"weak"`
}

func emitClassificationJSON(cls core.Classification, stdout, stderr io.Writer) int {
	out := classificationJSON{
		Query:          cls.Query.String(),
		Class:          cls.Class.String(),
		HasCycle:       cls.HasCycle,
		HasStrongCycle: cls.HasStrongCycle,
		Explanation:    cls.Graph.Explain().Text,
	}
	n := cls.Query.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if cls.Graph.Edge[i][j] {
				out.Attacks = append(out.Attacks, attackJSON{
					From: cls.Query.Atoms[i].Rel.Name,
					To:   cls.Query.Atoms[j].Rel.Name,
					Weak: cls.Graph.WeakEdge[i][j],
				})
			}
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(stderr, "cqa-classify:", err)
		return 1
	}
	return 0
}
