package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runClassify(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := RunClassify(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestClassifyBasic(t *testing.T) {
	out, _, code := runClassify(t, "R(x | y), S(y | z)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{"in FO", "attack graph", "R -> S (weak)", "Cforest"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestClassifyFlags(t *testing.T) {
	out, _, code := runClassify(t, "-explain", "-plus", "-dot", "-markov", "R0(x | y), S0(y | x)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{
		"P but L-hard", "weak 2-cycle", "F^{+,q}", "digraph attack",
		"Markov graph", "premier Markov cycle",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestClassifyCatalog(t *testing.T) {
	out, _, code := runClassify(t, "-catalog")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "kw15-q0") || !strings.Contains(out, "coNP-complete") {
		t.Errorf("catalog output truncated:\n%s", out)
	}
}

func TestClassifyErrors(t *testing.T) {
	if _, _, code := runClassify(t); code != 2 {
		t.Error("missing query should exit 2")
	}
	if _, errb, code := runClassify(t, "R(x | y), R(y | z)"); code != 1 || !strings.Contains(errb, "self-join") {
		t.Errorf("self-join: code=%d err=%q", code, errb)
	}
}

func TestCertainFileAndStdin(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.txt")
	if err := os.WriteFile(path, []byte("R(a | b)\nS(b | c)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := RunCertain([]string{"-q", "R(x | y), S(y | z)", "-db", path}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "certain: true") {
		t.Errorf("output:\n%s", out.String())
	}

	out.Reset()
	stdin := strings.NewReader("R(a | b)\nR(a | dead)\nS(b | c)\n")
	code = RunCertain([]string{"-q", "R(x | y), S(y | z)", "-db", "-", "-repair"}, stdin, &out, &errb)
	if code != 1 {
		t.Fatalf("not-certain should exit 1, got %d", code)
	}
	if !strings.Contains(out.String(), "falsifying repair:") {
		t.Errorf("missing repair:\n%s", out.String())
	}
}

func TestCertainStagesFlag(t *testing.T) {
	var out, errb bytes.Buffer
	stdin := strings.NewReader("R(a | b)\nS(b | c)\n")
	code := RunCertain([]string{"-q", "R(x | y), S(y | z)", "-db", "-", "-stages"}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "stages (total") || !strings.Contains(got, "eliminator") {
		t.Errorf("missing stage breakdown:\n%s", got)
	}

	// A coNP query surfaces the purify/match/conp stages. (This instance
	// is falsifiable — repair {R(a|b), S(d|c)} kills the join — so the
	// not-certain exit code 1 is expected.)
	out.Reset()
	stdin = strings.NewReader("R(a | b)\nR(a | c)\nS(d | b)\nS(d | c)\n")
	code = RunCertain([]string{"-q", "R(x | y), S(u | y)", "-db", "-", "-stages"}, stdin, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	got = out.String()
	for _, stage := range []string{"purify", "conp"} {
		if !strings.Contains(got, stage) {
			t.Errorf("coNP breakdown missing %q:\n%s", stage, got)
		}
	}

	// Without the flag: no breakdown.
	out.Reset()
	stdin = strings.NewReader("R(a | b)\nS(b | c)\n")
	RunCertain([]string{"-q", "R(x | y), S(y | z)", "-db", "-"}, stdin, &out, &errb)
	if strings.Contains(out.String(), "stages (total") {
		t.Errorf("breakdown printed without -stages:\n%s", out.String())
	}
}

func TestCertainAnswersFlag(t *testing.T) {
	var out, errb bytes.Buffer
	stdin := strings.NewReader(`
		Product(p1 | acme)
		Product(p2 | globex)
		Product(p2 | initech)
		Supplier(acme | DE)
		Supplier(globex | DE)
		Supplier(initech | US)
	`)
	code := RunCertain([]string{
		"-q", "Product(pid | sid), Supplier(sid | 'DE')",
		"-db", "-", "-answers", "pid",
	}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "p1") || strings.Contains(out.String(), "p2") {
		t.Errorf("answers:\n%s", out.String())
	}
}

func TestCertainEngineAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	stdin := strings.NewReader("R(a | b)\n")
	code := RunCertain([]string{"-q", "R(x | y)", "-db", "-", "-engine", "conp"}, stdin, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "engine:  conp") {
		t.Errorf("code=%d out=%s", code, out.String())
	}
	if code := RunCertain([]string{"-q", "R(x | y)"}, nil, &out, &errb); code != 2 {
		t.Error("missing -db should exit 2")
	}
	if code := RunCertain([]string{"-q", "R(x | y)", "-db", "-", "-engine", "zzz"}, strings.NewReader(""), &out, &errb); code != 2 {
		t.Error("bad engine should exit 2")
	}
	// Mode-c violation in the input.
	stdin = strings.NewReader("T#c(a | 1)\nT#c(a | 2)\n")
	if code := RunCertain([]string{"-q", "T#c(x | y)", "-db", "-"}, stdin, &out, &errb); code != 2 {
		t.Error("mode-c violation should exit 2")
	}
}

func TestRewriteLogicAndSQL(t *testing.T) {
	var out, errb bytes.Buffer
	code := RunRewrite([]string{"R(x | y), S(y | z)"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "∃x") {
		t.Errorf("logic rewrite: code=%d out=%s", code, out.String())
	}
	out.Reset()
	code = RunRewrite([]string{"-sql", "R(x | y), S(y | z)"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "NOT EXISTS") {
		t.Errorf("sql rewrite: code=%d out=%s", code, out.String())
	}
	out.Reset()
	code = RunRewrite([]string{"R0(x | y), S0(y | x)"}, &out, &errb)
	if code != 1 {
		t.Errorf("cyclic query should exit 1, got %d", code)
	}
	out.Reset()
	code = RunRewrite([]string{"-catalog"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "kw15-example5") {
		t.Errorf("catalog rewrite: code=%d", code)
	}
}

func TestBenchListAndQuick(t *testing.T) {
	var out, errb bytes.Buffer
	code := RunBench([]string{"-list"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "E1") || !strings.Contains(out.String(), "E12") {
		t.Errorf("list: code=%d out=%s", code, out.String())
	}
	out.Reset()
	code = RunBench([]string{"-quick", "-exp", "E1"}, &out, &errb)
	if code != 0 || !strings.Contains(out.String(), "R^{+,q}") {
		t.Errorf("E1 quick: code=%d", code)
	}
	if code := RunBench([]string{"-exp", "E99"}, &out, &errb); code != 1 {
		t.Error("unknown experiment should exit 1")
	}
}

func TestCertainCountPossibleFraction(t *testing.T) {
	var out, errb bytes.Buffer
	stdin := strings.NewReader("R(a | b)\nR(a | dead)\nS(b | c)\n")
	code := RunCertain([]string{
		"-q", "R(x | y), S(y | z)", "-db", "-",
		"-possible", "-count", "-fraction", "200",
	}, stdin, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"possible: true", "satisfying repairs: 1 of 2", "estimated satisfying fraction:"} {
		if !strings.Contains(o, frag) {
			t.Errorf("output missing %q:\n%s", frag, o)
		}
	}
}

func TestCertainCountDegrades(t *testing.T) {
	// Hub gadget: one constraint component with assignment space 2^65,
	// past the exact bound, so -count reports an anytime estimate.
	var facts strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&facts, "R(x%d | hub)\nR(x%d | dead%d)\n", i, i, i)
	}
	facts.WriteString("S(hub | z0)\nS(hub | z1)\n")
	var out, errb bytes.Buffer
	code := RunCertain([]string{
		"-q", "R(x | y), S(y | z)", "-db", "-", "-count",
	}, strings.NewReader(facts.String()), &out, &errb)
	if code != 0 && code != 1 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"satisfying repairs: ~", "components sampled"} {
		if !strings.Contains(o, frag) {
			t.Errorf("output missing %q:\n%s", frag, o)
		}
	}
}

func TestCertainTraceFlag(t *testing.T) {
	var out, errb bytes.Buffer
	stdin := strings.NewReader("R0(a | 1)\nR0(a | 2)\nS0(1 | a)\nS0(2 | a)\n")
	code := RunCertain([]string{
		"-q", "R0(x | y), S0(y | x)", "-db", "-", "-trace",
	}, stdin, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"pipeline trace", "dissolve premier Markov cycle", "Lemma 9", "certain: true"} {
		if !strings.Contains(o, frag) {
			t.Errorf("trace missing %q:\n%s", frag, o)
		}
	}
	// The trace path must refuse coNP queries.
	out.Reset()
	stdin = strings.NewReader("R(a | b)\nS(u | b)\n")
	if code := RunCertain([]string{"-q", "R(x | y), S(u | y)", "-db", "-", "-trace"}, stdin, &out, &errb); code != 2 {
		t.Errorf("trace on coNP query should exit 2, got %d", code)
	}
}

func TestClassifyJSON(t *testing.T) {
	out, _, code := runClassify(t, "-json", "R(x | y), S(u | y)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var decoded struct {
		Class          string `json:"class"`
		HasStrongCycle bool   `json:"hasStrongCycle"`
		Attacks        []struct {
			From string `json:"from"`
			Weak bool   `json:"weak"`
		} `json:"attacks"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded.Class != "coNP-complete" || !decoded.HasStrongCycle || len(decoded.Attacks) != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
	for _, a := range decoded.Attacks {
		if a.Weak {
			t.Errorf("attacks should be strong: %+v", a)
		}
	}
}
