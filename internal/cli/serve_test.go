package cli

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"cqa/internal/server"
)

// TestClassifyNormalizationRegression: textual variants of one query —
// extra whitespace, different atom order — must produce byte-identical
// CLI output, because both normalize through the same helper the plan
// cache keys on.
func TestClassifyNormalizationRegression(t *testing.T) {
	canonical, _, code := runClassify(t, "R(x | y), S(y | z)")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, variant := range []string{
		"  R(x | y), S(y | z)  ",
		"R( x |y ),S(y| z)",
		"S(y | z), R(x | y)",
	} {
		out, _, code := runClassify(t, variant)
		if code != 0 {
			t.Fatalf("%q: exit %d", variant, code)
		}
		if out != canonical {
			t.Errorf("output for %q differs from canonical:\n--- got ---\n%s--- want ---\n%s", variant, out, canonical)
		}
	}
}

func TestCertainNormalizationRegression(t *testing.T) {
	facts := "R(a | b)\nS(b | c)\n"
	run := func(q string) string {
		var out, errb bytes.Buffer
		code := RunCertain([]string{"-q", q, "-db", "-"}, strings.NewReader(facts), &out, &errb)
		if code != 0 {
			t.Fatalf("%q: exit %d: %s", q, code, errb.String())
		}
		return out.String()
	}
	canonical := run("R(x | y), S(y | z)")
	if got := run(" S(y | z) ,R(x | y) "); got != canonical {
		t.Errorf("output differs:\n--- got ---\n%s--- want ---\n%s", got, canonical)
	}
}

func TestServeFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := RunServe([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
	if code := RunLoad([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("bad flag should exit 2, got %d", code)
	}
}

func TestLoadUnreachableServer(t *testing.T) {
	var out, errb bytes.Buffer
	code := RunLoad([]string{"-url", "http://127.0.0.1:1", "-duration", "100ms"}, &out, &errb)
	if code != 1 || !strings.Contains(errb.String(), "cannot reach") {
		t.Errorf("code=%d err=%q", code, errb.String())
	}
}

// TestLoadAgainstTestServer drives the full load-generator path — db
// uploads, paced replay, summary — against an in-process server.
func TestLoadAgainstTestServer(t *testing.T) {
	srv := server.New(server.Config{CacheSize: 256, MaxWorkers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := RunLoad([]string{
		"-url", ts.URL, "-qps", "300", "-duration", "400ms", "-concurrency", "8",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"request shapes", "req/s achieved", "endpoint", "certain", "cqa_plancache_hits_total"} {
		if !strings.Contains(o, frag) {
			t.Errorf("summary missing %q:\n%s", frag, o)
		}
	}
	if srv.Store().Len() == 0 {
		t.Error("load generator uploaded no databases")
	}
}

// TestLoadShardedWithTrace replays traced traffic against a sharded
// server: the summary must include the shard fan-out block with the
// straggler-amplification percentiles decoded from the per-request
// shard stage rows.
func TestLoadShardedWithTrace(t *testing.T) {
	srv := server.New(server.Config{CacheSize: 256, MaxWorkers: 8, Shards: 3})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := RunLoad([]string{
		"-url", ts.URL, "-qps", "300", "-duration", "400ms", "-concurrency", "8", "-trace", "1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"stage breakdown", "shard fan-out", "tasks/request", "straggler amplification"} {
		if !strings.Contains(o, frag) {
			t.Errorf("sharded trace summary missing %q:\n%s", frag, o)
		}
	}
}

// TestSummarizeShardFanout pins the fan-out block's shape on known
// inputs, including the silent no-shard-rows case.
func TestSummarizeShardFanout(t *testing.T) {
	var out bytes.Buffer
	summarizeShardFanout(&out, nil, nil)
	if out.Len() != 0 {
		t.Errorf("no shard rows must print nothing, got %q", out.String())
	}
	summarizeShardFanout(&out, []int64{3, 3, 4}, []float64{1.0, 1.5, 3.0})
	o := out.String()
	for _, frag := range []string{"3 traced sharded requests", "mean 3.3, max 4", "p50 1.50x, p90 1.50x, p99 1.50x"} {
		if !strings.Contains(o, frag) {
			t.Errorf("fan-out summary missing %q:\n%s", frag, o)
		}
	}
}

func TestLoadProbeMode(t *testing.T) {
	srv := server.New(server.Config{CacheSize: 256, MaxWorkers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := RunLoad([]string{"-url", ts.URL, "-probe"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"plan-cache probe", "cold (compile)", "warm (cached)", "speedup"} {
		if !strings.Contains(o, frag) {
			t.Errorf("probe output missing %q:\n%s", frag, o)
		}
	}
}

// TestLoadWriteMix replays a mixed read/write workload: the summary must
// report the mutate endpoint alongside certain, and the server must have
// published post-upload versions for at least one database.
func TestLoadWriteMix(t *testing.T) {
	srv := server.New(server.Config{CacheSize: 256, MaxWorkers: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out, errb bytes.Buffer
	code := RunLoad([]string{
		"-url", ts.URL, "-qps", "300", "-duration", "500ms", "-concurrency", "8", "-write-mix", "0.5",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, frag := range []string{"mutate", "cqa_db_mutations_total"} {
		if !strings.Contains(o, frag) {
			t.Errorf("write-mix summary missing %q:\n%s", frag, o)
		}
	}
	mutated := 0
	for _, snap := range srv.Store().List() {
		if snap.Version > 1 {
			mutated++
		}
	}
	if mutated == 0 {
		t.Error("write mix published no new versions")
	}
}

// TestServeWALFlag boots the serve loop with -wal twice over the same
// directory: the first run journals an upload and a delta, the second
// must replay both and restore the version chain.
func TestServeWALFlag(t *testing.T) {
	dir := t.TempDir()
	run := func(work func(base string)) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + ln.Addr().String()
		ln.Close()
		var out, errb bytes.Buffer
		done := make(chan int, 1)
		go func() {
			done <- RunServe([]string{"-addr", strings.TrimPrefix(base, "http://"), "-quiet", "-wal", dir}, &out, &errb)
		}()
		client := &http.Client{Timeout: time.Second}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if resp, err := client.Get(base + "/healthz"); err == nil {
				resp.Body.Close()
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never came up: %s", errb.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		work(base)
		p, _ := os.FindProcess(os.Getpid())
		p.Signal(syscall.SIGTERM)
		if code := <-done; code != 0 {
			t.Fatalf("serve exit %d: %s", code, errb.String())
		}
		return out.String()
	}

	client := &http.Client{Timeout: time.Second}
	run(func(base string) {
		req, _ := http.NewRequest("PUT", base+"/v1/db/prod", strings.NewReader("R(a | 1)\n"))
		if resp, err := client.Do(req); err != nil || resp.StatusCode != 200 {
			t.Fatalf("put: %v %v", err, resp)
		}
		resp, err := client.Post(base+"/v1/db/prod/facts", "application/json",
			strings.NewReader(`{"insert": ["R(b | 2)"]}`))
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("mutate: %v %v", err, resp)
		}
	})

	out := run(func(base string) {
		resp, err := client.Get(base + "/v1/db/prod")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info struct {
			Version uint64 `json:"version"`
			Facts   int    `json:"facts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		if info.Version != 2 || info.Facts != 2 {
			t.Errorf("restored db = %+v, want version 2 with 2 facts", info)
		}
	})
	if !strings.Contains(out, "replayed 2 records") {
		t.Errorf("boot banner missing replay count:\n%s", out)
	}
}
