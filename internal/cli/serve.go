package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cqa/internal/catalog"
	"cqa/internal/server"
	"cqa/internal/wal"
	"cqa/internal/workload"
)

// RunServe implements cqa-serve: the long-running CQA service with the
// shared plan cache and the named-database registry.
func RunServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8334", "listen address")
	cacheSize := fs.Int("cache", 1024, "plan-cache capacity (compiled plans)")
	workers := fs.Int("workers", 0, "max concurrently evaluating requests (0 = 2×GOMAXPROCS)")
	quiet := fs.Bool("quiet", false, "suppress per-request logging")
	timeout := fs.Duration("timeout", 0, "default per-request evaluation deadline (0 = server default, <0 = none)")
	maxTimeout := fs.Duration("max-timeout", 0, "cap on client-requested timeout_ms overrides (0 = server default)")
	maxSteps := fs.Int64("max-steps", 0, "default per-request engine step budget (0 = server default, <0 = unlimited)")
	memoCap := fs.Int("memo-cap", 0, "per-request memoization entry cap (0 = server default, <0 = unlimited)")
	debugAddr := fs.String("debug-addr", "", "listen address for the debug surface (pprof + slowlog); empty disables it")
	slowLogSize := fs.Int("slowlog", 0, "slow-query log capacity (0 = server default)")
	slowThreshold := fs.Duration("slow-threshold", 0, "latency above which a request enters the slow-query log (0 = server default, <0 = disabled)")
	shards := fs.Int("shards", 0, "key-partitioned shards per database snapshot (0 or 1 = monolithic evaluation)")
	hedge := fs.Duration("hedge", 0, "duplicate a shard task not done within this delay onto a fresh goroutine (0 = no hedging)")
	walDir := fs.String("wal", "", "append-only journal directory: replayed on boot, then every mutation is journaled before it publishes (empty = no durability)")
	walWarnBytes := fs.Int64("wal-warn-bytes", 0, "warn once when the journal grows past this many bytes (0 = no warning)")
	shardNode := fs.Bool("shard-node", false, "serve POST /v1/shard/eval: answer per-shard evaluation requests from a cluster router")
	clusterNodes := fs.String("cluster", "", "comma-separated shard-node base URLs: route stored-database evaluations through the fault-tolerant cluster router")
	clusterShards := fs.Int("cluster-shards", 0, "logical partition width of routed cluster work (0 = 2x the node count)")
	clusterHedge := fs.Duration("cluster-hedge", 0, "hedge a routed shard request not answered within this delay (p99-adaptive floor; 0 = no hedging)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(stderr, "cqa-serve ", log.LstdFlags|log.Lmicroseconds)
	}
	if *workers <= 0 {
		*workers = 2 * runtime.GOMAXPROCS(0)
	}
	var nodeURLs []string
	for _, n := range strings.Split(*clusterNodes, ",") {
		if n = strings.TrimRight(strings.TrimSpace(n), "/"); n != "" {
			nodeURLs = append(nodeURLs, n)
		}
	}
	srv := server.New(server.Config{
		CacheSize:         *cacheSize,
		MaxWorkers:        *workers,
		Logger:            logger,
		EvalTimeout:       *timeout,
		MaxTimeout:        *maxTimeout,
		MaxSteps:          *maxSteps,
		MemoCap:           *memoCap,
		SlowLogSize:       *slowLogSize,
		SlowLogThreshold:  *slowThreshold,
		Shards:            *shards,
		HedgeDelay:        *hedge,
		ShardNode:         *shardNode,
		ClusterNodes:      nodeURLs,
		ClusterShards:     *clusterShards,
		ClusterHedgeDelay: *clusterHedge,
	})
	if *walDir != "" {
		// Recovery first, journaling second: replay drives the ordinary
		// mutation paths, and attaching the journal only afterwards keeps
		// recovered records from being appended a second time.
		n, err := srv.Store().ReplayWAL(*walDir)
		if err != nil {
			fmt.Fprintln(stderr, "cqa-serve: wal replay:", err)
			return 1
		}
		l, err := wal.Open(*walDir)
		if err != nil {
			fmt.Fprintln(stderr, "cqa-serve: wal open:", err)
			return 1
		}
		defer l.Close()
		if *walWarnBytes > 0 {
			warnTo := stderr
			l.SetWarn(*walWarnBytes, func(bytes int64) {
				fmt.Fprintf(warnTo, "cqa-serve wal: journal reached %d bytes (warn threshold %d); consider rotating or compacting\n",
					bytes, *walWarnBytes)
			})
		}
		srv.Store().SetWAL(l)
		fmt.Fprintf(stdout, "cqa-serve wal: replayed %d records from %s (%d databases restored)\n",
			n, *walDir, srv.Store().Len())
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "cqa-serve listening on %s (cache %d plans, workers %d)\n",
		*addr, *cacheSize, *workers)
	if *shards > 1 {
		fmt.Fprintf(stdout, "cqa-serve sharded evaluation: %d shards per snapshot, hedge %s\n", *shards, *hedge)
	}
	if *shardNode {
		fmt.Fprintln(stdout, "cqa-serve shard node: serving POST /v1/shard/eval")
	}
	if len(nodeURLs) > 0 {
		width := *clusterShards
		if r := srv.Router(); r != nil {
			width = r.Shards()
		}
		fmt.Fprintf(stdout, "cqa-serve cluster router: %d nodes, %d logical shards, hedge %s\n",
			len(nodeURLs), width, *clusterHedge)
	}
	// The debug surface (pprof, slowlog) binds its own listener so the
	// profiling endpoints never ride the public address. It serves until
	// the process exits; no graceful drain is needed for it.
	if *debugAddr != "" {
		dbg := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(stderr, "cqa-serve: debug listener:", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(stdout, "cqa-serve debug surface (pprof, slowlog) on %s\n", *debugAddr)
	}

	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(stderr, "cqa-serve:", err)
			return 1
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintln(stdout, "cqa-serve: shutting down...")
		// Flip readiness first so load balancers stop routing new work
		// here while the in-flight requests drain.
		srv.SetDraining(true)
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "cqa-serve: shutdown:", err)
			return 1
		}
		<-errc // drain ListenAndServe's ErrServerClosed
		fmt.Fprintln(stdout, "cqa-serve: drained, bye")
	}
	return 0
}

// loadJob is one prepared request of the load mix.
type loadJob struct {
	name     string
	endpoint string // "certain", "classify", or "mutate"
	body     []byte
	// db is the target database name; used by mutate jobs, whose URL is
	// /v1/db/{db}/facts rather than /v1/{endpoint}.
	db string
	// traced opts this request into X-CQA-Trace stage tracing; the
	// returned breakdown is aggregated into the summary.
	traced bool
}

// stageMicros is one aggregated stage row decoded from a traced response.
type stageMicros struct {
	stage string
	spans int64
	us    int64
	// maxUs is the longest single span of the stage; on fan-out stages
	// (shard) the gap against the mean span is the straggler.
	maxUs int64
}

// loadResult is one completed request (including any retries).
type loadResult struct {
	endpoint string
	latency  time.Duration
	err      bool
	retries  int  // attempts beyond the first
	shed     bool // at least one attempt was refused with 429
	// unavail marks at least one 503 attempt — the shard_unavailable
	// taxonomy (a shard or cluster node down), distinct from 429
	// admission shedding: shedding means this instance is saturated,
	// unavailability means the evaluation tier lost capacity.
	unavail bool
	// stages holds the server-side stage breakdown for traced requests.
	stages []stageMicros
}

// RunLoad implements cqa-load: it uploads generated databases for the
// catalog and workload query families, replays certain/classify traffic
// against a running cqa-serve at a target QPS, and prints a latency and
// throughput summary. With -probe it instead measures cold-vs-warm
// plan-cache latency per query.
func RunLoad(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:8334", "base URL of the cqa-serve instance")
	qps := fs.Int("qps", 200, "target requests per second")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	concurrency := fs.Int("concurrency", 16, "concurrent client workers")
	seed := fs.Int64("seed", 1, "random seed for generated databases")
	classifyFrac := fs.Float64("classify", 0.25, "fraction of requests that hit /v1/classify")
	traceFrac := fs.Float64("trace", 0, "fraction of certain requests that opt into X-CQA-Trace stage tracing (0 = off)")
	writeMix := fs.Float64("write-mix", 0, "fraction of certain requests replaced by POST /v1/db/{name}/facts delta writes (0 = read-only)")
	clusterList := fs.String("cluster", "", "comma-separated shard-node base URLs: replicate every uploaded database to each (a routed deployment needs the data on every node)")
	probe := fs.Bool("probe", false, "measure cold vs warm plan-cache latency per query and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*url, "/")
	var replicas []string
	for _, n := range strings.Split(*clusterList, ",") {
		if n = strings.TrimRight(strings.TrimSpace(n), "/"); n != "" && n != base {
			replicas = append(replicas, n)
		}
	}

	if ok := pingServer(client, base, stderr); !ok {
		return 1
	}
	for _, node := range replicas {
		if ok := pingServer(client, node, stderr); !ok {
			return 1
		}
	}
	jobs, err := prepareLoad(client, base, replicas, *seed, *classifyFrac)
	if err != nil {
		fmt.Fprintln(stderr, "cqa-load:", err)
		return 1
	}
	if len(replicas) > 0 {
		fmt.Fprintf(stdout, "prepared %d request shapes against %s (databases replicated to %d more nodes)\n",
			len(jobs), base, len(replicas))
	} else {
		fmt.Fprintf(stdout, "prepared %d request shapes against %s\n", len(jobs), base)
	}

	if *probe {
		return runProbe(client, base, jobs, stdout, stderr)
	}

	results := fireAtRate(client, base, jobs, *qps, *duration, *concurrency, *traceFrac, *writeMix)
	summarize(stdout, results, *duration)
	printServerCounters(client, base, stdout)
	return 0
}

func pingServer(client *http.Client, base string, stderr io.Writer) bool {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		fmt.Fprintf(stderr, "cqa-load: cannot reach %s: %v (is cqa-serve running?)\n", base, err)
		return false
	}
	resp.Body.Close()
	return true
}

// prepareLoad uploads one generated database per query of the mix —
// to the primary and to every replica node, since a routed cluster
// deployment requires the data on every node — and returns the request
// shapes the replay loop cycles through. The mix is every catalog
// entry plus workload-generated family queries, so all three engines
// (fo, ptime, conp) see traffic.
func prepareLoad(client *http.Client, base string, replicas []string, seed int64, classifyFrac float64) ([]loadJob, error) {
	rng := rand.New(rand.NewSource(seed))
	p := workload.DefaultDBParams()
	p.SeedMatches = 2

	type namedQuery struct {
		name string
		text string
	}
	var queries []namedQuery
	for _, e := range catalog.Entries() {
		queries = append(queries, namedQuery{name: e.Name, text: e.Query})
	}
	for n := 2; n <= 5; n++ {
		queries = append(queries, namedQuery{name: fmt.Sprintf("path-%d", n), text: workload.PathQuery(n).String()})
		queries = append(queries, namedQuery{name: fmt.Sprintf("star-%d", n), text: workload.StarQuery(n).String()})
	}

	var jobs []loadJob
	for i, nq := range queries {
		q, err := parseNormalized(nq.text)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nq.name, err)
		}
		d := workload.RandomDB(rng, q, p)
		dbName := fmt.Sprintf("load-%03d", i)
		facts := d.String() + "\n"
		for _, target := range append([]string{base}, replicas...) {
			req, err := http.NewRequest("PUT", target+"/v1/db/"+dbName, strings.NewReader(facts))
			if err != nil {
				return nil, err
			}
			resp, err := client.Do(req)
			if err != nil {
				return nil, fmt.Errorf("uploading %s to %s: %w", dbName, target, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("uploading %s to %s: %s: %s", dbName, target, resp.Status, bytes.TrimSpace(body))
			}
		}
		certainBody, err := json.Marshal(map[string]string{"query": nq.text, "db": dbName})
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, loadJob{name: nq.name, endpoint: "certain", body: certainBody, db: dbName})
		if float64(i%100)/100 < classifyFrac {
			classifyBody, _ := json.Marshal(map[string]string{"query": nq.text})
			jobs = append(jobs, loadJob{name: nq.name, endpoint: "classify", body: classifyBody})
		}
	}
	// Shuffle so endpoint types interleave in the replay cycle.
	rng.Shuffle(len(jobs), func(i, j int) { jobs[i], jobs[j] = jobs[j], jobs[i] })
	return jobs, nil
}

// fire issues one request of the load mix, retrying transient failures
// — connection errors (resets, refused) and 5xx/429 responses — with
// exponential backoff plus jitter, honoring a Retry-After hint when the
// server sheds the request. Latency is measured end to end across all
// attempts: a retried request is still one slow request from the
// client's point of view.
func fire(client *http.Client, base string, job loadJob) loadResult {
	const maxAttempts = 4
	res := loadResult{endpoint: job.endpoint}
	start := time.Now()
	backoff := 25 * time.Millisecond
	for attempt := 1; ; attempt++ {
		retryAfter := time.Duration(0)
		retryable := false
		url := base + "/v1/" + job.endpoint
		if job.endpoint == "mutate" {
			url = base + "/v1/db/" + job.db + "/facts"
		}
		req, rerr := http.NewRequest("POST", url, bytes.NewReader(job.body))
		if rerr != nil {
			res.latency = time.Since(start)
			res.err = true
			return res
		}
		req.Header.Set("Content-Type", "application/json")
		if job.traced {
			req.Header.Set("X-CQA-Trace", "1")
		}
		resp, err := client.Do(req)
		if err != nil {
			retryable = true // connection reset/refused, transport timeout
		} else {
			if job.traced && resp.StatusCode == http.StatusOK {
				res.stages = decodeStages(resp.Body)
			} else {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				res.shed = true
				retryable = true
				if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
					retryAfter = time.Duration(secs) * time.Second
				}
			} else if resp.StatusCode >= 500 {
				retryable = true
				if resp.StatusCode == http.StatusServiceUnavailable {
					// 503 shard_unavailable carries the same Retry-After
					// hint as shedding: the shard tier heals on retry, so
					// honor the server's pacing instead of hammering it.
					res.unavail = true
					if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
						retryAfter = time.Duration(secs) * time.Second
					}
				}
			}
		}
		if !retryable {
			res.latency = time.Since(start)
			res.err = resp.StatusCode != http.StatusOK
			return res
		}
		if attempt == maxAttempts {
			res.latency = time.Since(start)
			res.err = true
			return res
		}
		res.retries++
		delay := backoff + time.Duration(rand.Int63n(int64(backoff))) // full jitter on top
		if retryAfter > delay {
			delay = retryAfter
		}
		time.Sleep(delay)
		backoff *= 2
	}
}

// decodeStages pulls the stage breakdown out of a traced response body.
// A response without a trace (or a decode failure) yields nil — the load
// tool must not fail a request over its observability payload.
func decodeStages(r io.Reader) []stageMicros {
	var payload struct {
		Trace *struct {
			Stages []struct {
				Stage string `json:"stage"`
				Spans int64  `json:"spans"`
				Us    int64  `json:"us"`
				MaxUs int64  `json:"maxUs"`
			} `json:"stages"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(r).Decode(&payload); err != nil || payload.Trace == nil {
		return nil
	}
	out := make([]stageMicros, 0, len(payload.Trace.Stages))
	for _, st := range payload.Trace.Stages {
		out = append(out, stageMicros{stage: st.Stage, spans: st.Spans, us: st.Us, maxUs: st.MaxUs})
	}
	return out
}

// fireAtRate replays the jobs round-robin at the target QPS for the
// given duration and collects per-request results. When traceFrac > 0,
// that fraction of certain requests opts into stage tracing.
func fireAtRate(client *http.Client, base string, jobs []loadJob, qps int, duration time.Duration, concurrency int, traceFrac, writeMix float64) []loadResult {
	if qps < 1 {
		qps = 1
	}
	traceEvery := 0
	if traceFrac > 0 {
		traceEvery = int(1 / traceFrac)
		if traceEvery < 1 {
			traceEvery = 1
		}
	}
	writeEvery := 0
	if writeMix > 0 {
		writeEvery = int(1 / writeMix)
		if writeEvery < 1 {
			writeEvery = 1
		}
	}
	interval := time.Second / time.Duration(qps)
	pending := make(chan loadJob, concurrency)
	var mu sync.Mutex
	var results []loadResult
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range pending {
				r := fire(client, base, job)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(duration)
	i, certainSent, writeSeq := 0, 0, 0
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			job := jobs[i%len(jobs)]
			if job.endpoint == "certain" {
				certainSent++
				if writeEvery > 0 && certainSent%writeEvery == 0 {
					// Replace this read with a delta write against the same
					// database: insert a fresh fact into a scratch relation
					// the queries never touch and retire the previous one, so
					// the database stays the same size while every write is a
					// real published version.
					writeSeq++
					job = loadJob{name: job.name, endpoint: "mutate", db: job.db,
						body: []byte(fmt.Sprintf(`{"insert": ["W(w%d | %d)"], "delete": ["W(w%d | %d)"]}`,
							writeSeq, writeSeq, writeSeq-1, writeSeq-1))}
				} else if traceEvery > 0 {
					job.traced = (certainSent-1)%traceEvery == 0
				}
			}
			select {
			case pending <- job:
				i++
			default:
				// All workers busy: the server is saturated; drop the
				// tick rather than queue unboundedly.
			}
		}
	}
	close(pending)
	wg.Wait()
	return results
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func summarize(stdout io.Writer, results []loadResult, elapsed time.Duration) {
	byEndpoint := map[string][]time.Duration{}
	errs, retried, retries, shed, unavail := 0, 0, 0, 0, 0
	for _, r := range results {
		if r.retries > 0 {
			retried++
			retries += r.retries
		}
		if r.shed {
			shed++
		}
		if r.unavail {
			unavail++
		}
		if r.err {
			errs++
			continue
		}
		byEndpoint[r.endpoint] = append(byEndpoint[r.endpoint], r.latency)
	}
	fmt.Fprintf(stdout, "\n%d requests in %s (%.1f req/s achieved), %d errors\n",
		len(results), elapsed, float64(len(results))/elapsed.Seconds(), errs)
	fmt.Fprintf(stdout, "%d requests retried (%d retries total), %d saw 429 shedding, %d saw 503 shard-unavailable\n",
		retried, retries, shed, unavail)
	endpoints := make([]string, 0, len(byEndpoint))
	for ep := range byEndpoint {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	fmt.Fprintf(stdout, "%-10s %8s %10s %10s %10s %10s %10s\n",
		"endpoint", "count", "min", "p50", "p90", "p99", "max")
	for _, ep := range endpoints {
		ls := byEndpoint[ep]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Fprintf(stdout, "%-10s %8d %10s %10s %10s %10s %10s\n",
			ep, len(ls),
			ls[0].Round(time.Microsecond),
			percentile(ls, 0.50).Round(time.Microsecond),
			percentile(ls, 0.90).Round(time.Microsecond),
			percentile(ls, 0.99).Round(time.Microsecond),
			ls[len(ls)-1].Round(time.Microsecond))
	}
	summarizeStages(stdout, results)
}

// summarizeStages aggregates the server-side stage breakdowns returned
// by traced requests (the -trace flag) into one table, heaviest stage
// first, and — when the server evaluates sharded — a shard fan-out
// summary with the straggler amplification (slowest shard span over the
// mean span, per request). Silent when nothing was traced.
func summarizeStages(stdout io.Writer, results []loadResult) {
	type agg struct {
		spans, us int64
	}
	byStage := map[string]*agg{}
	traced := 0
	// Per-request shard fan-out and straggler factors; amplification is
	// only meaningful within one request, so it cannot be derived from
	// the cross-request aggregates above.
	var fanouts []int64
	var stragglers []float64
	for _, r := range results {
		if r.stages == nil {
			continue
		}
		traced++
		for _, st := range r.stages {
			a := byStage[st.stage]
			if a == nil {
				a = &agg{}
				byStage[st.stage] = a
			}
			a.spans += st.spans
			a.us += st.us
			if st.stage == "shard" && st.spans > 0 {
				fanouts = append(fanouts, st.spans)
				if mean := float64(st.us) / float64(st.spans); mean > 0 {
					stragglers = append(stragglers, float64(st.maxUs)/mean)
				}
			}
		}
	}
	if traced == 0 {
		return
	}
	stages := make([]string, 0, len(byStage))
	for st := range byStage {
		stages = append(stages, st)
	}
	sort.Slice(stages, func(i, j int) bool { return byStage[stages[i]].us > byStage[stages[j]].us })
	fmt.Fprintf(stdout, "\nstage breakdown from %d traced requests:\n", traced)
	fmt.Fprintf(stdout, "%-12s %8s %12s %12s\n", "stage", "spans", "total(us)", "mean(us)")
	for _, st := range stages {
		a := byStage[st]
		mean := float64(0)
		if a.spans > 0 {
			mean = float64(a.us) / float64(a.spans)
		}
		fmt.Fprintf(stdout, "%-12s %8d %12d %12.1f\n", st, a.spans, a.us, mean)
	}
	summarizeShardFanout(stdout, fanouts, stragglers)
}

// summarizeShardFanout prints the scatter-gather shape of the traced
// requests: how many shard tasks each request fanned out to (hedged
// duplicates count as extra spans) and how much slower the slowest
// shard ran than the request's mean shard span. A straggler
// amplification near 1.0 means the partition is balanced; a high p99
// is the signature of a slow or overloaded shard that hedging should
// be absorbing.
func summarizeShardFanout(stdout io.Writer, fanouts []int64, stragglers []float64) {
	if len(fanouts) == 0 {
		return
	}
	var spanSum int64
	maxFan := fanouts[0]
	for _, f := range fanouts {
		spanSum += f
		if f > maxFan {
			maxFan = f
		}
	}
	fmt.Fprintf(stdout, "\nshard fan-out over %d traced sharded requests:\n", len(fanouts))
	fmt.Fprintf(stdout, "  tasks/request: mean %.1f, max %d\n",
		float64(spanSum)/float64(len(fanouts)), maxFan)
	if len(stragglers) > 0 {
		sort.Float64s(stragglers)
		pct := func(p float64) float64 {
			return stragglers[int(p*float64(len(stragglers)-1))]
		}
		fmt.Fprintf(stdout, "  straggler amplification (max/mean shard span): p50 %.2fx, p90 %.2fx, p99 %.2fx\n",
			pct(0.50), pct(0.90), pct(0.99))
	}
}

// runProbe measures, per query shape, the cold first /v1/classify (plan
// compiled) against warm repeats (plan served from the cache), printing
// the aggregate speedup. The probe talks to a live server, so run it
// against a freshly started cqa-serve for a truly cold cache.
func runProbe(client *http.Client, base string, jobs []loadJob, stdout, stderr io.Writer) int {
	const warmReps = 20
	var colds, warms []time.Duration
	for _, job := range jobs {
		if job.endpoint != "certain" {
			continue
		}
		classifyBody := job.body // {"query":..., "db":...}: extra field is ignored
		cold := fire(client, base, loadJob{endpoint: "classify", body: classifyBody})
		if cold.err {
			fmt.Fprintf(stderr, "cqa-load: probe %s failed\n", job.name)
			return 1
		}
		colds = append(colds, cold.latency)
		best := time.Duration(1 << 62)
		for i := 0; i < warmReps; i++ {
			warm := fire(client, base, loadJob{endpoint: "classify", body: classifyBody})
			if !warm.err && warm.latency < best {
				best = warm.latency
			}
		}
		warms = append(warms, best)
	}
	sort.Slice(colds, func(i, j int) bool { return colds[i] < colds[j] })
	sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
	pc, pw := percentile(colds, 0.5), percentile(warms, 0.5)
	fmt.Fprintf(stdout, "plan-cache probe over %d queries (/v1/classify):\n", len(colds))
	fmt.Fprintf(stdout, "  cold (compile): p50 %s, max %s\n", pc.Round(time.Microsecond), colds[len(colds)-1].Round(time.Microsecond))
	fmt.Fprintf(stdout, "  warm (cached):  p50 %s, max %s\n", pw.Round(time.Microsecond), warms[len(warms)-1].Round(time.Microsecond))
	if pw > 0 {
		fmt.Fprintf(stdout, "  p50 speedup: %.1fx\n", float64(pc)/float64(pw))
	}
	return 0
}

func printServerCounters(client *http.Client, base string, stdout io.Writer) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return
	}
	fmt.Fprintln(stdout, "\nserver counters:")
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "cqa_plancache_") || strings.HasPrefix(line, "cqa_store_") ||
			strings.HasPrefix(line, "cqa_db_mutations_") ||
			strings.HasPrefix(line, "cqa_requests_shed_") || strings.HasPrefix(line, "cqa_request_timeouts_") ||
			strings.HasPrefix(line, "cqa_panics_recovered_") || strings.HasPrefix(line, "cqa_degraded_") {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
	}
}
