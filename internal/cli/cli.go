// Package cli implements the command-line tools as testable functions:
// each Run* takes argument slices and writers and returns a process exit
// code. The cmd/ binaries are thin wrappers around these.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"cqa/internal/attack"
	"cqa/internal/baseline"
	"cqa/internal/catalog"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/experiments"
	"cqa/internal/markov"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/trace"
)

// RunClassify implements cqa-classify.
func RunClassify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dot := fs.Bool("dot", false, "print the attack graph in Graphviz DOT format")
	mkv := fs.Bool("markov", false, "print the Markov graph (simple-key queries)")
	plus := fs.Bool("plus", false, "print F^{+,q} for every atom")
	cat := fs.Bool("catalog", false, "classify every catalog query and exit")
	explain := fs.Bool("explain", false, "print the justification")
	asJSON := fs.Bool("json", false, "emit the classification as JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cqa-classify [flags] 'QUERY'\n\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cat {
		for _, e := range catalog.Entries() {
			cls, err := core.ClassifyString(e.Query)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", e.Name, err)
				return 1
			}
			fmt.Fprintf(stdout, "%-28s %-14s %s\n", e.Name, cls.Class, e.Query)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	q, err := parseNormalized(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cls, err := core.Classify(q)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if *asJSON {
		return emitClassificationJSON(cls, stdout, stderr)
	}
	fmt.Fprintf(stdout, "query:          %s\n", q)
	fmt.Fprintf(stdout, "classification: CERTAINTY(q) is %s\n", describeClass(cls.Class))
	fmt.Fprintf(stdout, "\nattack graph:\n%s\n", indent(cls.Graph.String()))
	if *explain {
		fmt.Fprintf(stdout, "\n%s\n", cls.Graph.Explain().Text)
	}
	if *plus {
		fmt.Fprintln(stdout, "\nF^{+,q} per atom:")
		for i, a := range q.Atoms {
			fmt.Fprintf(stdout, "  %s: %s\n", a.Rel.Name, cls.Graph.Plus[i])
		}
	}
	if *dot {
		fmt.Fprintf(stdout, "\n%s", cls.Graph.DOT())
	}
	if *mkv {
		m, err := markov.Build(q)
		if err != nil {
			fmt.Fprintf(stderr, "markov: %v\n", err)
		} else {
			fmt.Fprintf(stdout, "\nMarkov graph:\n%s\n", indent(m.String()))
			if c := m.PremierCycle(cls.Graph); c != nil {
				fmt.Fprintf(stdout, "premier Markov cycle: %v\n", c)
			}
		}
	}
	if baseline.InCforest(q) {
		fmt.Fprintln(stdout, "\nFuxman-Miller: q is in Cforest (FO-rewritable)")
	}
	if kp, err := baseline.KPClassify(q); err == nil {
		fmt.Fprintf(stdout, "Kolaitis-Pema (two atoms): %s\n", kp)
	}
	if ks, err := baseline.KSClassify(q); err == nil {
		fmt.Fprintf(stdout, "Koutris-Suciu (simple keys): %s\n", ks)
	}
	return 0
}

// printStages renders a tracer's stage breakdown (durations plus the
// per-stage counters the engines flush). No-op on a nil tracer, so the
// call sites need no -stages guard.
func printStages(stdout io.Writer, tr *trace.Tracer) {
	if tr == nil {
		return
	}
	stats := tr.Breakdown()
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(stdout, "stages (total %s):\n", tr.Elapsed().Round(time.Microsecond))
	for _, st := range stats {
		line := fmt.Sprintf("  %-12s %4d span(s) %10dus", st.Stage, st.Spans, st.Micros)
		keys := make([]string, 0, len(st.Counters))
		for k := range st.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf("  %s=%d", k, st.Counters[k])
		}
		fmt.Fprintln(stdout, line)
	}
}

// RunCertain implements cqa-certain. stdin supplies the database when
// the -db argument is "-".
func RunCertain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-certain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	qs := fs.String("q", "", "the Boolean conjunctive query")
	dbPath := fs.String("db", "", "path to the facts file ('-' for stdin)")
	engineName := fs.String("engine", "auto", "engine: auto, fo, ptime, conp, naive")
	showRepair := fs.Bool("repair", false, "print a falsifying repair when not certain")
	answers := fs.String("answers", "", "comma-separated free variables: report certain answers")
	possible := fs.Bool("possible", false, "also report POSSIBILITY(q) (true in some repair)")
	count := fs.Bool("count", false, "also report the number of satisfying repairs (exact, or an anytime estimate on oversized components)")
	fraction := fs.Int("fraction", 0, "estimate the satisfying-repair fraction with N samples")
	showTrace := fs.Bool("trace", false, "print the Theorem 4 pipeline trace (ptime engine)")
	showStages := fs.Bool("stages", false, "print the per-stage duration/counter breakdown after evaluation")
	timeout := fs.Duration("timeout", 0, "wall-clock evaluation deadline (0 = none)")
	maxSteps := fs.Int64("max-steps", 0, "engine step budget (0 = unlimited)")
	approx := fs.Bool("approx", false, "degrade a budget-exhausted coNP evaluation to repair sampling")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *qs == "" || *dbPath == "" {
		fs.Usage()
		return 2
	}
	q, err := parseNormalized(*qs)
	if err != nil {
		fmt.Fprintln(stderr, "cqa-certain:", err)
		return 2
	}
	var text []byte
	if *dbPath == "-" {
		text, err = io.ReadAll(stdin)
	} else {
		text, err = os.ReadFile(*dbPath)
	}
	if err != nil {
		fmt.Fprintln(stderr, "cqa-certain:", err)
		return 2
	}
	d, err := db.ParseFacts(q.Schema(), string(text))
	if err != nil {
		fmt.Fprintln(stderr, "cqa-certain:", err)
		return 2
	}
	if !d.ConsistentFor() {
		fmt.Fprintln(stderr, "cqa-certain: a mode-c relation of the input violates its primary key")
		return 2
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(stderr, "cqa-certain:", err)
		return 2
	}
	opts := core.Options{Engine: engine, MaxSteps: *maxSteps, Approximate: *approx}
	if *showStages {
		opts.Tracer = trace.New()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *answers != "" {
		var free []query.Var
		for _, name := range strings.Split(*answers, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				free = append(free, query.Var(name))
			}
		}
		vals, err := core.CertainAnswersCtx(ctx, q, free, d, opts)
		if err != nil {
			fmt.Fprintln(stderr, "cqa-certain:", err)
			return 2
		}
		for _, v := range vals {
			fmt.Fprintln(stdout, v)
		}
		fmt.Fprintf(stderr, "%d certain answer(s)\n", len(vals))
		printStages(stdout, opts.Tracer)
		return 0
	}

	if *showTrace {
		ok, _, trace, err := ptime.CertainTraced(q, d, true)
		if err != nil {
			fmt.Fprintln(stderr, "cqa-certain: trace:", err)
			return 2
		}
		fmt.Fprintln(stdout, "pipeline trace (Theorem 4):")
		for _, line := range trace {
			fmt.Fprintf(stdout, "  %s\n", line)
		}
		fmt.Fprintf(stdout, "certain: %v\n", ok)
		if !ok {
			return 1
		}
		return 0
	}

	res, err := core.CertainCtx(ctx, q, d, opts)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(stderr, "cqa-certain: evaluation deadline of %s exceeded\n", *timeout)
		case errors.Is(err, evalctx.ErrBudgetExceeded):
			fmt.Fprintf(stderr, "cqa-certain: step budget of %d exhausted (use -approx to degrade to sampling)\n", *maxSteps)
		default:
			fmt.Fprintln(stderr, "cqa-certain:", err)
		}
		return 2
	}
	fmt.Fprintf(stdout, "class:   %s\n", res.Class)
	fmt.Fprintf(stdout, "engine:  %s\n", res.Engine)
	fmt.Fprintf(stdout, "certain: %v\n", res.Certain)
	if res.Approximate {
		fmt.Fprintf(stdout, "approximate: true (sampled satisfying fraction %.4f)\n", res.Fraction)
	}
	printStages(stdout, opts.Tracer)
	if *possible {
		fmt.Fprintf(stdout, "possible: %v\n", core.Possible(q, d))
	}
	if *count {
		// The count rides the same deadline/budget/tracer as the
		// decision, under the anytime contract: an oversized component
		// degrades to a sampled estimate instead of refusing.
		copts := opts
		copts.Approximate = true
		cres, err := core.CountCtx(ctx, q, d, copts)
		switch {
		case err != nil:
			fmt.Fprintln(stderr, "cqa-certain: count:", err)
		case cres.Exact:
			fmt.Fprintf(stdout, "satisfying repairs: %v of %v (%.4f)\n",
				cres.Satisfying, cres.Total, cres.Fraction)
		default:
			fmt.Fprintf(stdout, "satisfying repairs: ~%.4f of %v (±%.4f, %d of %d components sampled)\n",
				cres.Fraction, cres.Total, cres.Confidence, cres.Sampled, cres.Components)
		}
	}
	if *fraction > 0 {
		est, err := core.CertainFraction(q, d, *fraction, rand.New(rand.NewSource(1)))
		if err != nil {
			fmt.Fprintln(stderr, "cqa-certain: fraction:", err)
		} else {
			fmt.Fprintf(stdout, "estimated satisfying fraction: %.4f (%d samples)\n", est, *fraction)
		}
	}
	if !res.Certain && *showRepair {
		repair, found, err := core.FalsifyingRepair(q, d)
		if err != nil {
			fmt.Fprintln(stderr, "cqa-certain:", err)
			return 2
		}
		if found {
			fmt.Fprintln(stdout, "falsifying repair:")
			for _, f := range repair {
				fmt.Fprintf(stdout, "  %s\n", f)
			}
		}
	}
	if !res.Certain {
		return 1
	}
	return 0
}

// RunRewrite implements cqa-rewrite.
func RunRewrite(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-rewrite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cat := fs.Bool("catalog", false, "print rewritings for every FO catalog query")
	sqlOut := fs.Bool("sql", false, "emit the rewriting as SQL instead of logic notation")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	emit := func(q query.Query) (string, error) {
		// Compile once; both dialects render from the plan's formula, so
		// the attack graph is built a single time per query.
		plan, err := core.Compile(q)
		if err != nil {
			return "", err
		}
		if plan.Formula == nil {
			return "", fmt.Errorf("rewrite: attack graph of %s is cyclic; no first-order rewriting exists", q)
		}
		if *sqlOut {
			return rewrite.SQLFromFormula(plan.Formula), nil
		}
		return rewrite.Format(rewrite.Simplify(plan.Formula)), nil
	}
	if *cat {
		for _, e := range catalog.Entries() {
			q := e.MustQuery()
			s, err := emit(q)
			if err != nil {
				continue
			}
			fmt.Fprintf(stdout, "%s\n  q   = %s\n  phi = %s\n\n", e.Name, q, s)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cqa-rewrite [-sql] 'QUERY'")
		return 2
	}
	q, err := query.Parse(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	s, err := emit(q)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, s)
	return 0
}

// RunBench implements cqa-bench.
func RunBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cqa-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (E1..E18) or 'all'")
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	list := fs.Bool("list", false, "list experiments and exit")
	seed := fs.Int64("seed", 1, "random seed")
	evalJSON := fs.String("evaljson", "", "run the E-index evaluation benchmarks and write the JSON report to this path")
	evalCheck := fs.String("evalcheck", "", "validate an E-index evaluation JSON report against the current harness and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *evalCheck != "" {
		if err := experiments.ValidateEvalJSON(*evalCheck, *quick); err != nil {
			fmt.Fprintln(stderr, "cqa-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: evaluation report matches the current harness\n", *evalCheck)
		return 0
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(stdout, "%-5s %s\n", id, experiments.Describe(id))
		}
		return 0
	}
	r := &experiments.Runner{Out: stdout, Quick: *quick, Seed: *seed}
	if *evalJSON != "" {
		if err := r.WriteEvalJSON(*evalJSON); err != nil {
			fmt.Fprintln(stderr, "cqa-bench:", err)
			return 1
		}
		return 0
	}
	if err := r.Run(*exp); err != nil {
		fmt.Fprintln(stderr, "cqa-bench:", err)
		return 1
	}
	return 0
}

// parseNormalized parses a query through core.Normalize — the same
// helper the server's plan cache keys on — so the CLIs and the service
// agree on the canonical form of textual variants (whitespace, atom
// order) of the same query.
func parseNormalized(s string) (query.Query, error) {
	q, _, err := core.Normalize(s)
	return q, err
}

func describeClass(c attack.Class) string {
	switch c {
	case attack.FO:
		return "in FO (acyclic attack graph; a consistent first-order rewriting exists)"
	case attack.PTime:
		return "in P but L-hard, not in FO (weak attack cycles only)"
	default:
		return "coNP-complete (the attack graph has a strong cycle)"
	}
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
