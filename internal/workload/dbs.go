package workload

import (
	"fmt"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// DBParams controls random database generation for a query.
type DBParams struct {
	// SeedMatches is the number of random valuations theta whose image
	// theta(q) is inserted, guaranteeing embeddings exist.
	SeedMatches int
	// Domain is the number of constants per variable pool; smaller
	// domains force more sharing between seeded matches.
	Domain int
	// ExtraPerBlock is the expected number of additional key-equal facts
	// per seeded fact (introducing primary-key violations).
	ExtraPerBlock float64
	// Noise is the number of unrelated random facts per relation.
	Noise int
}

// DefaultDBParams returns parameters for small differential-testing
// databases.
func DefaultDBParams() DBParams {
	return DBParams{SeedMatches: 3, Domain: 3, ExtraPerBlock: 0.7, Noise: 2}
}

// constFor returns the c-th constant of the pool belonging to a variable;
// pools are disjoint across variables, so generated databases are
// automatically typed relative to the query.
func constFor(v query.Var, c int) query.Const {
	return query.Const(fmt.Sprintf("%s_%d", v, c))
}

// RandomValuation draws a valuation over vars(q) with each variable bound
// inside its own pool of the given size.
func RandomValuation(rng *rand.Rand, q query.Query, domain int) query.Valuation {
	val := query.Valuation{}
	for _, v := range q.Vars().Sorted() {
		val[v] = constFor(v, rng.Intn(domain))
	}
	return val
}

// RandomDB generates an uncertain database for q: seeded embeddings, extra
// key-equal facts (primary-key violations), and noise. Mode-c relations
// are kept consistent, as required for legal inputs.
func RandomDB(rng *rand.Rand, q query.Query, p DBParams) *db.DB {
	if p.Domain < 1 {
		p.Domain = 1
	}
	d := db.New()
	addRespectingModeC := func(f db.Fact) {
		if f.Rel.Mode == schema.ModeC {
			for _, g := range d.BlockOf(f).Facts {
				if !g.Equal(f) {
					return // would make a mode-c relation inconsistent
				}
			}
		}
		d.Add(f)
	}
	// Seed embeddings.
	for s := 0; s < p.SeedMatches; s++ {
		val := RandomValuation(rng, q, p.Domain)
		for _, a := range q.Atoms {
			f, err := db.FactFromAtom(a, val)
			if err != nil {
				continue
			}
			addRespectingModeC(f)
		}
	}
	// Extra facts inside existing blocks: copy a fact and rerandomize its
	// non-key positions within the pools of the atom's variables.
	var seeded []db.Fact
	seeded = append(seeded, d.Facts()...)
	for _, f := range seeded {
		if f.Rel.Mode == schema.ModeC {
			continue
		}
		n := 0
		for rng.Float64() < p.ExtraPerBlock {
			n++
			if n > 4 {
				break
			}
			atom, ok := q.AtomWithRel(f.Rel.Name)
			if !ok {
				break
			}
			args := append([]query.Const(nil), f.Args...)
			for i := f.Rel.KeyLen; i < f.Rel.Arity; i++ {
				t := atom.Args[i]
				if t.IsVar() {
					args[i] = constFor(t.Var(), rng.Intn(p.Domain))
				}
			}
			d.Add(db.Fact{Rel: f.Rel, Args: args})
		}
	}
	// Noise: random facts drawn from the atom's variable pools.
	for _, a := range q.Atoms {
		for i := 0; i < p.Noise; i++ {
			args := make([]query.Const, a.Rel.Arity)
			for j, t := range a.Args {
				if t.IsConst() {
					args[j] = t.Const()
				} else {
					args[j] = constFor(t.Var(), rng.Intn(p.Domain))
				}
			}
			addRespectingModeC(db.Fact{Rel: a.Rel, Args: args})
		}
	}
	return d
}

// Q0Instance encodes a directed graph reachability-style instance for
// q0 = {R0(x | y), S0(y | x)}: R0 holds edges u -> v grouped in blocks by
// u, S0 holds edges back. These instances exercise the L-hardness shape of
// Lemma 7.
func Q0Instance(rng *rand.Rand, nodes int, degree int) *db.DB {
	r0 := schema.NewRelation("R0", 2, 1)
	s0 := schema.NewRelation("S0", 2, 1)
	d := db.New()
	for u := 0; u < nodes; u++ {
		for k := 0; k < degree; k++ {
			v := rng.Intn(nodes)
			d.Add(db.NewFact(r0,
				query.Const(fmt.Sprintf("x_%d", u)),
				query.Const(fmt.Sprintf("y_%d", v))))
			d.Add(db.NewFact(s0,
				query.Const(fmt.Sprintf("y_%d", v)),
				query.Const(fmt.Sprintf("x_%d", u))))
		}
	}
	return d
}

// HardInstance generates an adversarial input for the coNP-complete query
// R(x | y), S(u | y): a bipartite "agreement" instance in the spirit of
// the SAT gadgets in the hardness proof of Theorem 3 / [19, Thm 2].
// Each R-block is a variable that chooses a value in {0..valuesPerVar-1};
// each S-block is a clause that chooses one of its literals; certainty
// holds iff every clause choice can be matched by a variable choice in
// every repair.
func HardInstance(rng *rand.Rand, vars, clauses, valuesPerVar int) *db.DB {
	r := schema.NewRelation("R", 2, 1)
	s := schema.NewRelation("S", 2, 1)
	d := db.New()
	lit := func(v, val int) query.Const {
		return query.Const(fmt.Sprintf("y_%d_%d", v, val))
	}
	for v := 0; v < vars; v++ {
		for val := 0; val < valuesPerVar; val++ {
			d.Add(db.NewFact(r, query.Const(fmt.Sprintf("x_%d", v)), lit(v, val)))
		}
	}
	for c := 0; c < clauses; c++ {
		// Each clause forbids a random assignment to a random variable:
		// the S-block joins on the same y-constants the R-blocks use.
		width := 1 + rng.Intn(3)
		for w := 0; w < width; w++ {
			v := rng.Intn(vars)
			val := rng.Intn(valuesPerVar)
			d.Add(db.NewFact(s, query.Const(fmt.Sprintf("u_%d", c)), lit(v, val)))
		}
	}
	return d
}
