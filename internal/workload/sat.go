package workload

import (
	"fmt"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// CNF is a propositional formula in conjunctive normal form. Variables
// are 1..Vars; a positive literal is +v, a negative literal is -v.
type CNF struct {
	Vars    int
	Clauses [][]int
}

// RandomCNF draws a uniform random k-CNF with the given clause count;
// k is capped at the variable count (a clause mentions distinct
// variables).
func RandomCNF(rng *rand.Rand, vars, clauses, k int) CNF {
	if k > vars {
		k = vars
	}
	f := CNF{Vars: vars}
	for c := 0; c < clauses; c++ {
		clause := make([]int, 0, k)
		for len(clause) < k {
			v := 1 + rng.Intn(vars)
			lit := v
			if rng.Intn(2) == 0 {
				lit = -v
			}
			dup := false
			for _, l := range clause {
				if l == lit || l == -lit {
					dup = true
					break
				}
			}
			if !dup {
				clause = append(clause, lit)
			}
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f
}

// Satisfiable decides the formula by brute force; for small test
// formulas only.
func (f CNF) Satisfiable() bool {
	for mask := 0; mask < 1<<f.Vars; mask++ {
		ok := true
		for _, clause := range f.Clauses {
			sat := false
			for _, lit := range clause {
				v := lit
				if v < 0 {
					v = -v
				}
				val := mask>>(v-1)&1 == 1
				if (lit > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// SATInstance encodes a CNF formula as an input to
// CERTAINTY(R(x | y), S(u | y)) following the shape of the Theorem 3 /
// [19, Thm 2] hardness reduction:
//
//   - one R-block per propositional variable v, with two facts
//     R(var_v | v=T) and R(var_v | v=F) — a repair of the block is a
//     truth assignment;
//   - one S-block per clause c, with one fact S(cl_c | w(l)) per literal
//     l in c, where w(l) is the value that CONTRADICTS l (w(v) = "v=F",
//     w(¬v) = "v=T") — a repair picks a literal of the clause to expose.
//
// A repair avoids every embedding of q iff each clause can expose a
// literal whose contradicting value is not the assignment's choice —
// i.e., a literal that is TRUE under the assignment. Hence a falsifying
// repair exists iff the formula is satisfiable:
//
//	CERTAINTY(q) on SATInstance(f)  <=>  f is unsatisfiable.
//
// Unsatisfiable formulas therefore yield certain instances on which any
// falsifying-repair search must exhaust — the engine of the
// coNP-completeness in Theorem 3.
func SATInstance(f CNF) *db.DB {
	r := schema.NewRelation("R", 2, 1)
	s := schema.NewRelation("S", 2, 1)
	d := db.New()
	val := func(v int, truth bool) query.Const {
		t := "F"
		if truth {
			t = "T"
		}
		return query.Const(fmt.Sprintf("v%d=%s", v, t))
	}
	for v := 1; v <= f.Vars; v++ {
		d.Add(db.NewFact(r, query.Const(fmt.Sprintf("var%d", v)), val(v, true)))
		d.Add(db.NewFact(r, query.Const(fmt.Sprintf("var%d", v)), val(v, false)))
	}
	for c, clause := range f.Clauses {
		for _, lit := range clause {
			v := lit
			contradicts := false // w(v) = "v=F": contradicts positive literal
			if lit < 0 {
				v = -lit
				contradicts = true // w(¬v) = "v=T"
			}
			d.Add(db.NewFact(s, query.Const(fmt.Sprintf("cl%d", c)), val(v, contradicts)))
		}
	}
	return d
}

// SATQuery returns the query the SAT reduction targets.
func SATQuery() query.Query {
	return query.MustParse("R(x | y), S(u | y)")
}
