package workload

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/naive"
	"cqa/internal/schema"
)

func TestQueryFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		cls  func() attack.Class
		want attack.Class
	}{
		{"path", func() attack.Class { c, _, _ := attack.Classify(PathQuery(4)); return c }, attack.FO},
		{"cycle", func() attack.Class { c, _, _ := attack.Classify(CycleQuery(4)); return c }, attack.PTime},
		{"star", func() attack.Class { c, _, _ := attack.Classify(StarQuery(4)); return c }, attack.FO},
		{"q0", func() attack.Class { c, _, _ := attack.Classify(Q0()); return c }, attack.PTime},
		{"nonkeyjoin", func() attack.Class { c, _, _ := attack.Classify(NonKeyJoinQuery()); return c }, attack.CoNPComplete},
	} {
		if got := tc.cls(); got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRandomQueryWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(6)
		p.PModeC = 0.3
		q := RandomQuery(rng, p)
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid query %s: %v", q, err)
		}
		if !q.SelfJoinFree() {
			t.Fatalf("query %s has a self-join", q)
		}
	}
}

func TestRandomDBLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		p := DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		p.PModeC = 0.4
		q := RandomQuery(rng, p)
		d := RandomDB(rng, q, DefaultDBParams())
		if !d.ConsistentFor() {
			t.Fatalf("mode-c relation inconsistent in generated db for %s:\n%s", q, d)
		}
		for _, f := range d.Facts() {
			if f.Rel.Mode == schema.ModeC {
				continue
			}
		}
	}
}

// TestSATReductionCorrect: the Theorem 3 reduction is exact —
// CERTAINTY(q) on SATInstance(f) iff f is unsatisfiable — validated
// against both brute-force SAT and the repair oracle.
func TestSATReductionCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := SATQuery()
	for trial := 0; trial < 150; trial++ {
		f := RandomCNF(rng, 2+rng.Intn(5), 1+rng.Intn(10), 1+rng.Intn(3))
		d := SATInstance(f)
		wantCertain := !f.Satisfiable()
		got, _ := conp.Certain(q, d)
		if got != wantCertain {
			t.Fatalf("conp=%v, formula satisfiable=%v\nclauses=%v", got, !wantCertain, f.Clauses)
		}
		if d.NumRepairs() <= 1<<13 {
			oracle, err := naive.Certain(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if oracle != wantCertain {
				t.Fatalf("oracle=%v, want %v on %v", oracle, wantCertain, f.Clauses)
			}
		}
	}
}

func TestQ0InstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Q0Instance(rng, 10, 2)
	if d.Len() == 0 {
		t.Fatal("empty instance")
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0] != "R0" || rels[1] != "S0" {
		t.Fatalf("unexpected relations %v", rels)
	}
}

func TestHardInstanceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := HardInstance(rng, 4, 6, 2)
	if len(d.FactsOf("R")) != 8 {
		t.Fatalf("expected 8 R facts, got %d", len(d.FactsOf("R")))
	}
	if len(d.FactsOf("S")) == 0 {
		t.Fatal("no S facts")
	}
}

func TestRandomValuationTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := PathQuery(3)
	v := RandomValuation(rng, q, 3)
	for x, c := range v {
		want := string(x) + "_"
		if len(c) < len(want) || string(c[:len(want)]) != want {
			t.Errorf("constant %s not drawn from pool of %s", c, x)
		}
	}
}

// TestSATReductionLargerFormulas widens the Theorem 3 reduction check to
// formulas near the brute-force limit.
func TestSATReductionLargerFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := SATQuery()
	for trial := 0; trial < 60; trial++ {
		vars := 7 + rng.Intn(4)
		f := RandomCNF(rng, vars, 3*vars, 3)
		d := SATInstance(f)
		wantCertain := !f.Satisfiable()
		got, _ := conp.Certain(q, d)
		if got != wantCertain {
			t.Fatalf("vars=%d: conp=%v, satisfiable=%v\nclauses=%v",
				vars, got, !wantCertain, f.Clauses)
		}
	}
}
