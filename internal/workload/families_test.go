package workload

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/ptime"
	"cqa/internal/rewrite"
)

func TestTreeQueryFO(t *testing.T) {
	for depth := 0; depth <= 3; depth++ {
		q := TreeQuery(depth)
		if !q.SelfJoinFree() {
			t.Fatalf("depth %d: self-join", depth)
		}
		cls, _, err := attack.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if cls != attack.FO {
			t.Errorf("depth %d tree classified %v, want FO (%s)", depth, cls, q)
		}
	}
}

func TestWideStarQuery(t *testing.T) {
	q := WideStarQuery(4)
	if q.Len() != 5 {
		t.Fatalf("atoms = %d", q.Len())
	}
	cls, _, err := attack.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls == attack.CoNPComplete {
		t.Errorf("wide star should not be coNP-complete: %s", q)
	}
}

func TestConsistentChainQuery(t *testing.T) {
	q := ConsistentChainQuery(3)
	if q.InconsistencyCount() != 3 || q.ConsistentPart().Len() != 3 {
		t.Fatalf("mode split wrong: %s", q)
	}
	cls, _, err := attack.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls != attack.FO {
		t.Errorf("consistent chain classified %v, want FO", cls)
	}
	// And it evaluates.
	rng := rand.New(rand.NewSource(1))
	d := RandomDB(rng, q, DefaultDBParams())
	if _, err := rewrite.Certain(q, d); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageCollectedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NonKeyJoinQuery()
	d := GarbageCollectedDB(rng, q, 3, 20)
	if d.Len() < 40 {
		t.Fatalf("expected dead facts, got %d facts", d.Len())
	}
	got, _ := conp.Certain(q, d)
	_ = got // smoke: must terminate quickly despite the garbage
}

func TestBlockSizeSkewedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := BlockSizeSkewedDB(rng, 30, 8)
	max := 0
	for _, b := range d.Blocks() {
		if len(b.Facts) > max {
			max = len(b.Facts)
		}
	}
	if max < 2 {
		t.Fatalf("expected skewed blocks, max size %d", max)
	}
	q := Q0()
	if _, _, err := ptime.Certain(q, d); err != nil {
		t.Fatal(err)
	}
}
