package workload

import (
	"fmt"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// TreeQuery returns a complete binary tree of key-joins of the given
// depth: the root atom's non-key feeds the keys of two children, and so
// on. Tree joins are in Cforest and classify FO.
func TreeQuery(depth int) query.Query {
	var atoms []query.Atom
	id := 0
	var build func(parentVar query.Var, d int) query.Var
	build = func(parentVar query.Var, d int) query.Var {
		id++
		name := fmt.Sprintf("T%d", id)
		self := query.Var(fmt.Sprintf("v%d", id))
		if d == 0 {
			rel := schema.NewRelation(name, 2, 1)
			atoms = append(atoms, query.NewAtom(rel, query.V(parentVar), query.V(self)))
			return self
		}
		rel := schema.NewRelation(name, 3, 1)
		left := query.Var(fmt.Sprintf("l%d", id))
		right := query.Var(fmt.Sprintf("r%d", id))
		atoms = append(atoms, query.NewAtom(rel, query.V(parentVar), query.V(left), query.V(right)))
		build(left, d-1)
		build(right, d-1)
		return self
	}
	build("root", depth)
	return query.NewQuery(atoms...)
}

// WideStarQuery returns R1(x | y1), ..., Rn(x | yn) plus a hub atom
// H(y1, ..., yn | z) joining every branch: the hub's composite key
// aggregates all branch outputs.
func WideStarQuery(n int) query.Query {
	atoms := make([]query.Atom, 0, n+1)
	hubArgs := make([]query.Term, 0, n+1)
	for i := 1; i <= n; i++ {
		rel := schema.NewRelation(fmt.Sprintf("R%d", i), 2, 1)
		y := query.Var(fmt.Sprintf("y%d", i))
		atoms = append(atoms, query.NewAtom(rel, query.V("x"), query.V(y)))
		hubArgs = append(hubArgs, query.V(y))
	}
	hubArgs = append(hubArgs, query.V("z"))
	hub := schema.NewRelation("H", n+1, n)
	atoms = append(atoms, query.Atom{Rel: hub, Args: hubArgs})
	return query.NewQuery(atoms...)
}

// ConsistentChainQuery returns a chain alternating mode-i and mode-c
// atoms: R1(x1 | x2), C1#c(x2 | x3), R2(x3 | x4), ... — the shape
// Section 6.1's consistent relations are designed for.
func ConsistentChainQuery(pairs int) query.Query {
	var atoms []query.Atom
	v := func(i int) query.Term { return query.V(query.Var(fmt.Sprintf("x%d", i))) }
	for i := 0; i < pairs; i++ {
		ri := schema.NewRelation(fmt.Sprintf("R%d", i+1), 2, 1)
		ci := schema.NewConsistent(fmt.Sprintf("C%d", i+1), 2, 1)
		atoms = append(atoms, query.NewAtom(ri, v(2*i), v(2*i+1)))
		atoms = append(atoms, query.NewAtom(ci, v(2*i+1), v(2*i+2)))
	}
	return query.NewQuery(atoms...)
}

// GarbageCollectedDB derives an instance for q whose irrelevant portion
// dominates: fullMatches seeded embeddings plus deadFraction times as
// many facts that join nothing (fresh constants). Used by purification
// experiments.
func GarbageCollectedDB(rng *rand.Rand, q query.Query, fullMatches int, deadPerAtom int) *db.DB {
	p := DefaultDBParams()
	p.SeedMatches = fullMatches
	p.Domain = fullMatches + 1
	p.Noise = 0
	d := RandomDB(rng, q, p)
	for _, a := range q.Atoms {
		for i := 0; i < deadPerAtom; i++ {
			args := make([]query.Const, a.Rel.Arity)
			for j := range args {
				args[j] = query.Const(fmt.Sprintf("dead_%s_%d_%d", a.Rel.Name, i, j))
			}
			if a.Rel.Mode == schema.ModeC {
				continue
			}
			d.Add(db.Fact{Rel: a.Rel, Args: args})
		}
	}
	return d
}

// BlockSizeSkewedDB builds a q0-style instance whose block sizes follow
// a rough power law: a few huge blocks and many singletons, the shape of
// real dirty data where a handful of keys collect most conflicts.
func BlockSizeSkewedDB(rng *rand.Rand, blocks, maxBlockSize int) *db.DB {
	r0 := schema.NewRelation("R0", 2, 1)
	s0 := schema.NewRelation("S0", 2, 1)
	d := db.New()
	for i := 0; i < blocks; i++ {
		size := 1
		for size < maxBlockSize && rng.Float64() < 0.5 {
			size *= 2
		}
		x := query.Const(fmt.Sprintf("x%d", i))
		for k := 0; k < size; k++ {
			y := query.Const(fmt.Sprintf("y%d_%d", i, k))
			d.Add(db.Fact{Rel: r0, Args: []query.Const{x, y}})
			d.Add(db.Fact{Rel: s0, Args: []query.Const{y, x}})
		}
	}
	return d
}
