// Package workload generates synthetic queries and uncertain databases for
// testing and benchmarking. The paper (Koutris & Wijsen, PODS 2015) is
// purely theoretical, so these generators stand in for the missing
// experimental workloads: random self-join-free conjunctive queries,
// structured query families from the literature, and database generators
// with tunable size, block structure, and inconsistency.
package workload

import (
	"fmt"
	"math/rand"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// QueryParams controls random query generation.
type QueryParams struct {
	Atoms    int     // number of atoms
	MaxArity int     // maximum relation arity (>= 1)
	MaxKey   int     // maximum key length (clamped to arity)
	Vars     int     // size of the variable pool
	PConst   float64 // probability a position holds a constant
	PModeC   float64 // probability an atom has mode c
	Consts   int     // size of the constant pool used by PConst
}

// DefaultQueryParams returns a reasonable parameter set for fuzzing.
func DefaultQueryParams() QueryParams {
	return QueryParams{Atoms: 3, MaxArity: 3, MaxKey: 2, Vars: 4, PConst: 0.05, PModeC: 0.1, Consts: 2}
}

// RandomQuery generates a random self-join-free Boolean conjunctive query.
// Variables are drawn from a shared pool so atoms join with each other;
// the query is not guaranteed to be connected.
func RandomQuery(rng *rand.Rand, p QueryParams) query.Query {
	if p.Atoms < 1 {
		p.Atoms = 1
	}
	if p.MaxArity < 1 {
		p.MaxArity = 1
	}
	if p.Vars < 1 {
		p.Vars = 1
	}
	if p.Consts < 1 {
		p.Consts = 1
	}
	atoms := make([]query.Atom, 0, p.Atoms)
	for i := 0; i < p.Atoms; i++ {
		arity := 1 + rng.Intn(p.MaxArity)
		maxKey := p.MaxKey
		if maxKey < 1 {
			maxKey = 1
		}
		if maxKey > arity {
			maxKey = arity
		}
		keyLen := 1 + rng.Intn(maxKey)
		mode := schema.ModeI
		if rng.Float64() < p.PModeC {
			mode = schema.ModeC
		}
		rel := schema.Relation{
			Name:   fmt.Sprintf("R%d", i),
			Arity:  arity,
			KeyLen: keyLen,
			Mode:   mode,
		}
		args := make([]query.Term, arity)
		for j := range args {
			if rng.Float64() < p.PConst {
				args[j] = query.C(query.Const(fmt.Sprintf("c%d", rng.Intn(p.Consts))))
			} else {
				args[j] = query.V(query.Var(fmt.Sprintf("x%d", rng.Intn(p.Vars))))
			}
		}
		atoms = append(atoms, query.Atom{Rel: rel, Args: args})
	}
	return query.NewQuery(atoms...)
}

// RandomSimpleKeyQuery generates a random query where every relation has a
// simple key and positions hold variables only; the regime of Koutris &
// Suciu (ICDT 2014).
func RandomSimpleKeyQuery(rng *rand.Rand, atoms, maxArity, vars int) query.Query {
	p := QueryParams{Atoms: atoms, MaxArity: maxArity, MaxKey: 1, Vars: vars, PConst: 0, PModeC: 0, Consts: 1}
	return RandomQuery(rng, p)
}

// PathQuery returns R1(x1 | x2), R2(x2 | x3), ..., Rn(xn | x(n+1)):
// an acyclic chain whose attack graph is a path (FO case).
func PathQuery(n int) query.Query {
	atoms := make([]query.Atom, n)
	for i := 0; i < n; i++ {
		rel := schema.NewRelation(fmt.Sprintf("R%d", i+1), 2, 1)
		atoms[i] = query.NewAtom(rel,
			query.V(query.Var(fmt.Sprintf("x%d", i+1))),
			query.V(query.Var(fmt.Sprintf("x%d", i+2))))
	}
	return query.NewQuery(atoms...)
}

// CycleQuery returns R1(x1 | x2), ..., Rn(xn | x1): a key-to-nonkey cycle.
// For n >= 2 every attack is weak and the attack graph is cyclic, so
// CERTAINTY(q) is in P \ FO (the generalization of the paper's q0).
func CycleQuery(n int) query.Query {
	atoms := make([]query.Atom, n)
	for i := 0; i < n; i++ {
		rel := schema.NewRelation(fmt.Sprintf("R%d", i+1), 2, 1)
		atoms[i] = query.NewAtom(rel,
			query.V(query.Var(fmt.Sprintf("x%d", i+1))),
			query.V(query.Var(fmt.Sprintf("x%d", (i+1)%n+1))))
	}
	return query.NewQuery(atoms...)
}

// StarQuery returns R1(x | y1), ..., Rn(x | yn): all atoms share the key
// variable; the attack graph is acyclic (FO case).
func StarQuery(n int) query.Query {
	atoms := make([]query.Atom, n)
	for i := 0; i < n; i++ {
		rel := schema.NewRelation(fmt.Sprintf("R%d", i+1), 2, 1)
		atoms[i] = query.NewAtom(rel,
			query.V("x"),
			query.V(query.Var(fmt.Sprintf("y%d", i+1))))
	}
	return query.NewQuery(atoms...)
}

// NonKeyJoinQuery returns R(x | y), S(u | y): the classic coNP-complete
// query (two atoms joining on non-key positions; the attack cycle is
// strong in both directions).
func NonKeyJoinQuery() query.Query {
	return query.MustParse("R(x | y), S(u | y)")
}

// Q0 returns q0 = {R0(x | y), S0(y | x)}, the paper's canonical
// P \ FO query (Lemma 7 shows it is L-hard).
func Q0() query.Query {
	return query.MustParse("R0(x | y), S0(y | x)")
}
