package db

import (
	"bufio"
	"fmt"
	"strings"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// ParseFacts reads facts, one per line, in the form
//
//	R(a, b | c)
//
// where every argument is a constant (no quoting needed). Blank lines and
// lines starting with '#' are skipped. The relation's signature is taken
// from the schema when registered there; otherwise it is inferred from the
// bar (key | non-key). Without a bar and without a schema entry, the first
// position is the key.
func ParseFacts(s *schema.Schema, text string) (*DB, error) {
	d := New()
	scanner := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := ParseFact(s, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		d.Add(f)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseFact parses a single fact like "R(a, b | c)". See ParseFacts.
func ParseFact(s *schema.Schema, line string) (Fact, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return Fact{}, fmt.Errorf("db: malformed fact %q", line)
	}
	head := strings.TrimSpace(line[:open])
	mode := schema.ModeI
	if strings.HasSuffix(head, "#c") {
		mode = schema.ModeC
		head = strings.TrimSuffix(head, "#c")
	}
	body := line[open+1 : len(line)-1]
	if strings.Count(body, "|") > 1 {
		return Fact{}, fmt.Errorf("db: two bars in fact %q", line)
	}
	keyLen := -1
	var args []query.Const
	segments := strings.SplitN(body, "|", 2)
	for si, seg := range segments {
		if strings.TrimSpace(seg) == "" {
			if si == 1 {
				continue // "R(a, b |)": whole tuple is the key
			}
			return Fact{}, fmt.Errorf("db: fact %q has an empty key part", line)
		}
		for _, part := range strings.Split(seg, ",") {
			part = strings.TrimSpace(part)
			part = strings.Trim(part, "'")
			if part == "" {
				return Fact{}, fmt.Errorf("db: empty argument in fact %q", line)
			}
			args = append(args, query.Const(part))
		}
		if si == 0 && len(segments) == 2 {
			keyLen = len(args)
		}
	}
	var rel schema.Relation
	if s != nil {
		if r, ok := s.Lookup(head); ok {
			rel = r
			if len(args) != rel.Arity {
				return Fact{}, fmt.Errorf("db: fact %q has %d arguments, %s expects %d",
					line, len(args), rel, rel.Arity)
			}
			if keyLen >= 0 && keyLen != rel.KeyLen {
				return Fact{}, fmt.Errorf("db: fact %q declares key length %d, %s expects %d",
					line, keyLen, rel, rel.KeyLen)
			}
			return Fact{Rel: rel, Args: args}, nil
		}
	}
	if keyLen < 0 {
		keyLen = 1
	}
	rel = schema.Relation{Name: head, Arity: len(args), KeyLen: keyLen, Mode: mode}
	if err := rel.Validate(); err != nil {
		return Fact{}, err
	}
	return Fact{Rel: rel, Args: args}, nil
}

// FactFromAtom grounds an atom through a valuation. The valuation must
// bind every variable of the atom.
func FactFromAtom(a query.Atom, v query.Valuation) (Fact, error) {
	args := make([]query.Const, len(a.Args))
	for i, t := range a.Args {
		c, ok := v.Apply(t)
		if !ok {
			return Fact{}, fmt.Errorf("db: unbound variable %s grounding atom %s", t, a)
		}
		args[i] = c
	}
	return Fact{Rel: a.Rel, Args: args}, nil
}

// MustFactFromAtom is FactFromAtom but panics on unbound variables.
func MustFactFromAtom(a query.Atom, v query.Valuation) Fact {
	f, err := FactFromAtom(a, v)
	if err != nil {
		panic(err)
	}
	return f
}

// GroundQuery grounds every atom of q through v; it fails if any variable
// of q is unbound.
func GroundQuery(q query.Query, v query.Valuation) ([]Fact, error) {
	out := make([]Fact, 0, q.Len())
	for _, a := range q.Atoms {
		f, err := FactFromAtom(a, v)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ConsistentSet reports whether a set of facts contains no two distinct
// key-equal facts.
func ConsistentSet(facts []Fact) bool {
	seen := make(map[string]string, len(facts))
	for _, f := range facts {
		bid := f.BlockID()
		id := f.ID()
		if prev, ok := seen[bid]; ok {
			if prev != id {
				return false
			}
		} else {
			seen[bid] = id
		}
	}
	return true
}
