// Package db implements uncertain databases: finite sets of facts whose
// relations carry primary keys that may be violated. It provides blocks
// (maximal sets of key-equal facts), repairs (maximal consistent subsets,
// obtained by picking exactly one fact per block), and the bookkeeping the
// solvers need: indexes, active domains, and repair enumeration.
package db

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// Fact is an R-fact: an atom without variables.
type Fact struct {
	Rel  schema.Relation
	Args []query.Const
}

// NewFact builds a fact and checks the argument count against the arity.
func NewFact(rel schema.Relation, args ...query.Const) Fact {
	if len(args) != rel.Arity {
		panic(fmt.Sprintf("db: fact %s expects %d arguments, got %d",
			rel.Name, rel.Arity, len(args)))
	}
	return Fact{Rel: rel, Args: args}
}

// Key returns the primary-key value of the fact.
func (f Fact) Key() []query.Const { return f.Args[:f.Rel.KeyLen] }

// NonKey returns the non-key positions of the fact.
func (f Fact) NonKey() []query.Const { return f.Args[f.Rel.KeyLen:] }

// KeyEqual reports whether f and g are key-equal: same relation name and
// same primary-key value.
func (f Fact) KeyEqual(g Fact) bool {
	if f.Rel != g.Rel {
		return false
	}
	for i := 0; i < f.Rel.KeyLen; i++ {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Equal reports full equality of facts.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// BlockID returns a canonical identifier for the block of f: the relation
// name plus the key value. Two facts are key-equal iff their BlockIDs match.
func (f Fact) BlockID() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	for _, c := range f.Key() {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	return b.String()
}

// ID returns a canonical identifier for the whole fact.
func (f Fact) ID() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	for _, c := range f.Args {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	return b.String()
}

// String renders the fact like an atom, e.g. R(a | b), with a "#c"
// suffix for mode-c relations and a trailing bar when the whole tuple is
// the key; the output re-parses to the same fact.
func (f Fact) String() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	if f.Rel.Mode == schema.ModeC {
		b.WriteString("#c")
	}
	b.WriteByte('(')
	for i, c := range f.Args {
		if i > 0 {
			if i == f.Rel.KeyLen {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		b.WriteString(string(c))
	}
	if f.Rel.KeyLen == len(f.Args) && len(f.Args) > 0 {
		b.WriteString(" |")
	}
	b.WriteByte(')')
	return b.String()
}

// Block is a maximal set of key-equal facts.
type Block struct {
	ID    string
	Facts []Fact
}

// DB is an uncertain database: a set of facts with stable insertion order
// and indexes by relation and by block. The zero value is not ready; use
// New.
//
// Every engine path loads a database once and then only reads it, so the
// derived lookup structures — materialized blocks, per-relation fact and
// block slices, the key→block hash, and the active domain — are memoized
// on first use and invalidated by Add. Concurrent readers are safe (the
// memo is published through an atomic pointer); mutation (Add) must not
// race with readers, as before.
type DB struct {
	facts   []Fact
	present map[string]bool  // fact ID -> present
	byRel   map[string][]int // relation name -> fact positions
	byBlock map[string][]int // block ID -> fact positions
	order   []string         // block IDs in first-seen order
	memo    atomic.Pointer[dbIndex]
	colMemo atomic.Pointer[ColDB]
}

// dbIndex holds the derived read-only lookup structures. It is built in
// one pass over the facts and shared by all readers; the Fact slices
// inside are owned by the index, so callers of the accessor methods must
// treat them as immutable.
type dbIndex struct {
	blocks    []Block            // all blocks, first-seen order
	byID      map[string]int     // block ID -> position in blocks
	relBlocks map[string][]Block // relation name -> its blocks, first-seen order
	relFacts  map[string][]Fact  // relation name -> facts, insertion order
	adom      []query.Const      // active domain, sorted
}

// index returns the memoized lookup structures, building them on first
// use. Racing builders may construct the index twice; both results are
// identical and either may win the publish, so readers are always
// consistent.
func (d *DB) index() *dbIndex {
	if ix := d.memo.Load(); ix != nil {
		return ix
	}
	ix := d.buildIndex()
	d.memo.CompareAndSwap(nil, ix)
	return d.memo.Load()
}

func (d *DB) buildIndex() *dbIndex {
	ix := &dbIndex{
		blocks:    make([]Block, 0, len(d.order)),
		byID:      make(map[string]int, len(d.order)),
		relBlocks: make(map[string][]Block, len(d.byRel)),
		relFacts:  make(map[string][]Fact, len(d.byRel)),
	}
	for _, bid := range d.order {
		positions := d.byBlock[bid]
		fs := make([]Fact, len(positions))
		for i, p := range positions {
			fs[i] = d.facts[p]
		}
		b := Block{ID: bid, Facts: fs}
		ix.byID[bid] = len(ix.blocks)
		ix.blocks = append(ix.blocks, b)
		if len(fs) > 0 {
			name := fs[0].Rel.Name
			ix.relBlocks[name] = append(ix.relBlocks[name], b)
		}
	}
	for name, positions := range d.byRel {
		fs := make([]Fact, len(positions))
		for i, p := range positions {
			fs[i] = d.facts[p]
		}
		ix.relFacts[name] = fs
	}
	seen := make(map[query.Const]bool)
	for _, f := range d.facts {
		for _, c := range f.Args {
			seen[c] = true
		}
	}
	ix.adom = make([]query.Const, 0, len(seen))
	for c := range seen {
		ix.adom = append(ix.adom, c)
	}
	sort.Slice(ix.adom, func(i, j int) bool { return ix.adom[i] < ix.adom[j] })
	return ix
}

// ResetCaches drops the memoized lookup structures — the row index and
// the columnar view both rebuild on next use. Add calls it
// automatically — it is exported only so cold-path benchmarks can
// measure the first-request cost of an index build.
func (d *DB) ResetCaches() {
	d.memo.Store(nil)
	d.colMemo.Store(nil)
}

// New returns an empty uncertain database.
func New() *DB {
	return &DB{
		present: make(map[string]bool),
		byRel:   make(map[string][]int),
		byBlock: make(map[string][]int),
	}
}

// FromFacts returns a database containing the given facts.
func FromFacts(facts ...Fact) *DB {
	d := New()
	for _, f := range facts {
		d.Add(f)
	}
	return d
}

// Add inserts a fact; duplicates are ignored. It returns true if the fact
// was new.
func (d *DB) Add(f Fact) bool {
	id := f.ID()
	if d.present[id] {
		return false
	}
	d.present[id] = true
	pos := len(d.facts)
	d.facts = append(d.facts, f)
	d.byRel[f.Rel.Name] = append(d.byRel[f.Rel.Name], pos)
	bid := f.BlockID()
	if _, seen := d.byBlock[bid]; !seen {
		d.order = append(d.order, bid)
	}
	d.byBlock[bid] = append(d.byBlock[bid], pos)
	d.ResetCaches()
	return true
}

// Has reports whether the fact is in the database.
func (d *DB) Has(f Fact) bool { return d.present[f.ID()] }

// Len returns the number of facts.
func (d *DB) Len() int { return len(d.facts) }

// Facts returns all facts in insertion order. The caller must not modify
// the returned slice.
func (d *DB) Facts() []Fact { return d.facts }

// FactsOf returns the facts of the named relation in insertion order.
// The returned slice is memoized and shared; the caller must not modify
// it.
func (d *DB) FactsOf(relName string) []Fact {
	return d.index().relFacts[relName]
}

// Relations returns the relation names present in the database, sorted.
func (d *DB) Relations() []string {
	names := make([]string, 0, len(d.byRel))
	for n, ps := range d.byRel {
		if len(ps) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Blocks returns all blocks in first-seen order. The returned slice and
// the fact slices inside are memoized and shared; the caller must not
// modify them.
func (d *DB) Blocks() []Block {
	return d.index().blocks
}

// BlocksOf returns the blocks of the named relation in first-seen order.
// The returned slice is memoized and shared; the caller must not modify
// it.
func (d *DB) BlocksOf(relName string) []Block {
	return d.index().relBlocks[relName]
}

// BlockOf returns block(A, db): the block containing the given fact
// (facts key-equal to it, whether or not A itself is present).
func (d *DB) BlockOf(f Fact) Block {
	bid := f.BlockID()
	ix := d.index()
	if pos, ok := ix.byID[bid]; ok {
		return ix.blocks[pos]
	}
	return Block{ID: bid, Facts: nil}
}

// BlockByKey answers a ground-key probe in O(1): the block of the named
// relation whose primary-key value equals key, if any. This is the fast
// path of the Lemma 9/10 branch loop — when the unattacked atom's key is
// fully instantiated, the one candidate block is hash-looked-up instead
// of scanning every block of the relation.
func (d *DB) BlockByKey(relName string, key []query.Const) (Block, bool) {
	// When the columnar view is already built (the serving hot path
	// warms it per snapshot), probe its interned key table instead of
	// building a string — zero allocations on hit and miss alike. The
	// view is only consulted, never built here, so row-only callers
	// (ptime residues, purification) never pay for a columnar build.
	if c := d.colMemo.Load(); c != nil {
		if blk, ok, decided := c.blockByKey(relName, key); decided {
			return blk, ok
		}
	}
	var b strings.Builder
	b.WriteString(relName)
	for _, c := range key {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	ix := d.index()
	pos, ok := ix.byID[b.String()]
	if !ok {
		return Block{}, false
	}
	return ix.blocks[pos], true
}

// Consistent reports whether no two distinct facts are key-equal, i.e.
// every block is a singleton.
func (d *DB) Consistent() bool {
	for _, ps := range d.byBlock {
		if len(ps) > 1 {
			return false
		}
	}
	return true
}

// ConsistentFor reports whether every relation with mode c is consistent,
// the legality condition for inputs to CERTAINTY(q) with mode-c relations.
func (d *DB) ConsistentFor() bool {
	for _, ps := range d.byBlock {
		if len(ps) > 1 && d.facts[ps[0]].Rel.Mode == schema.ModeC {
			return false
		}
	}
	return true
}

// NumBlocks returns the number of blocks.
func (d *DB) NumBlocks() int { return len(d.order) }

// NumRepairs returns the number of repairs (the product of block sizes) as
// a float64; it saturates at +Inf on overflow.
func (d *DB) NumRepairs() float64 {
	n := 1.0
	for _, ps := range d.byBlock {
		n *= float64(len(ps))
		if math.IsInf(n, 1) {
			return n
		}
	}
	return n
}

// ActiveDomain returns adom(db): the set of constants occurring in the
// database, sorted. The returned slice is memoized and shared; the
// caller must not modify it.
func (d *DB) ActiveDomain() []query.Const {
	return d.index().adom
}

// Clone returns an independent copy of the database.
func (d *DB) Clone() *DB {
	c := New()
	for _, f := range d.facts {
		c.Add(f)
	}
	return c
}

// Filter returns a new database with the facts satisfying keep.
func (d *DB) Filter(keep func(Fact) bool) *DB {
	c := New()
	for _, f := range d.facts {
		if keep(f) {
			c.Add(f)
		}
	}
	return c
}

// Without returns a new database with the given facts removed.
func (d *DB) Without(facts []Fact) *DB {
	drop := make(map[string]bool, len(facts))
	for _, f := range facts {
		drop[f.ID()] = true
	}
	return d.Filter(func(f Fact) bool { return !drop[f.ID()] })
}

// RestrictRels returns a new database containing only facts of the named
// relations.
func (d *DB) RestrictRels(names map[string]bool) *DB {
	return d.Filter(func(f Fact) bool { return names[f.Rel.Name] })
}

// Repairs enumerates every repair of the database, invoking yield with a
// fact slice (reused between calls; copy it to retain). Enumeration stops
// early when yield returns false. The number of repairs is the product of
// block sizes, so this is only feasible for small databases; the solvers
// use it exclusively as a brute-force oracle.
func (d *DB) Repairs(yield func([]Fact) bool) {
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return yield(repair)
		}
		for _, f := range blocks[i].Facts {
			repair[i] = f
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// String renders the database one fact per line in insertion order.
func (d *DB) String() string {
	var b strings.Builder
	for i, f := range d.facts {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
