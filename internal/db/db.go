// Package db implements uncertain databases: finite sets of facts whose
// relations carry primary keys that may be violated. It provides blocks
// (maximal sets of key-equal facts), repairs (maximal consistent subsets,
// obtained by picking exactly one fact per block), and the bookkeeping the
// solvers need: indexes, active domains, and repair enumeration.
//
// A DB is organized as per-relation segments (relSeg): each relation owns
// its block slice and key→block table. That layout is what makes MVCC
// writes cheap — Apply builds the next version by cloning only the
// touched relations' segments and aliasing the rest, so a single-fact
// delta costs O(touched relation), not O(database).
package db

import (
	"fmt"
	"maps"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// Fact is an R-fact: an atom without variables.
type Fact struct {
	Rel  schema.Relation
	Args []query.Const
}

// NewFact builds a fact and checks the argument count against the arity.
func NewFact(rel schema.Relation, args ...query.Const) Fact {
	if len(args) != rel.Arity {
		panic(fmt.Sprintf("db: fact %s expects %d arguments, got %d",
			rel.Name, rel.Arity, len(args)))
	}
	return Fact{Rel: rel, Args: args}
}

// Key returns the primary-key value of the fact.
func (f Fact) Key() []query.Const { return f.Args[:f.Rel.KeyLen] }

// NonKey returns the non-key positions of the fact.
func (f Fact) NonKey() []query.Const { return f.Args[f.Rel.KeyLen:] }

// KeyEqual reports whether f and g are key-equal: same relation name and
// same primary-key value.
func (f Fact) KeyEqual(g Fact) bool {
	if f.Rel != g.Rel {
		return false
	}
	for i := 0; i < f.Rel.KeyLen; i++ {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Equal reports full equality of facts.
func (f Fact) Equal(g Fact) bool {
	if f.Rel != g.Rel {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// BlockID returns a canonical identifier for the block of f: the relation
// name plus the key value. Two facts are key-equal iff their BlockIDs match.
func (f Fact) BlockID() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	for _, c := range f.Key() {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	return b.String()
}

// ID returns a canonical identifier for the whole fact.
func (f Fact) ID() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	for _, c := range f.Args {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	return b.String()
}

// String renders the fact like an atom, e.g. R(a | b), with a "#c"
// suffix for mode-c relations and a trailing bar when the whole tuple is
// the key; the output re-parses to the same fact.
func (f Fact) String() string {
	var b strings.Builder
	b.WriteString(f.Rel.Name)
	if f.Rel.Mode == schema.ModeC {
		b.WriteString("#c")
	}
	b.WriteByte('(')
	for i, c := range f.Args {
		if i > 0 {
			if i == f.Rel.KeyLen {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		b.WriteString(string(c))
	}
	if f.Rel.KeyLen == len(f.Args) && len(f.Args) > 0 {
		b.WriteString(" |")
	}
	b.WriteByte(')')
	return b.String()
}

// Block is a maximal set of key-equal facts.
type Block struct {
	ID    string
	Facts []Fact
}

// sameFacts reports whether two blocks hold the identical facts slice
// (Apply's copy-on-write discipline makes slice identity equivalent to
// "this block was not modified between the two versions").
func sameFacts(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// relSeg is one relation's segment: its blocks in first-seen order plus
// the block-ID → position table. Segments are the unit of structural
// sharing — Apply aliases untouched segments into the child version and
// clones only the touched ones.
type relSeg struct {
	// rel is the schema of the first fact ever stored; mixed is set when
	// a later fact carried a different schema under the same name (the
	// inferred-signature parser can produce those), which sends the
	// relation to the row-oriented evaluation path.
	rel   schema.Relation
	mixed bool

	blocks []Block
	byID   map[string]int // block ID -> position in blocks

	// facts is the relation's facts in insertion order; nil on cloned
	// segments, which rebuild it lazily from the blocks (lazyFacts).
	facts     []Fact
	lazyFacts atomic.Pointer[[]Fact]

	// shared marks the blocks slice and byID table as aliased by another
	// version: a mutation must clone the segment first. cow marks the
	// Facts slices inside blocks as possibly aliased: a mutation must
	// replace, never append in place (a shared backing array written by
	// two sibling versions would corrupt one of them).
	shared bool
	cow    bool
}

// clone returns a mutable copy of the segment: fresh blocks slice and
// byID table, but the Facts slices inside still alias the original, so
// the clone carries cow and modifications must replace them.
func (s *relSeg) clone() *relSeg {
	return &relSeg{
		rel:    s.rel,
		mixed:  s.mixed,
		blocks: append([]Block(nil), s.blocks...),
		byID:   maps.Clone(s.byID),
		cow:    true,
	}
}

// factsView returns the segment's facts, materializing them from the
// blocks on first use for cloned segments.
func (s *relSeg) factsView() []Fact {
	if s.facts != nil {
		return s.facts
	}
	if p := s.lazyFacts.Load(); p != nil {
		return *p
	}
	n := 0
	for _, b := range s.blocks {
		n += len(b.Facts)
	}
	fs := make([]Fact, 0, n)
	for _, b := range s.blocks {
		fs = append(fs, b.Facts...)
	}
	s.lazyFacts.CompareAndSwap(nil, &fs)
	return *s.lazyFacts.Load()
}

// DB is an uncertain database: a set of facts organized into per-relation
// segments. The zero value is not ready; use New.
//
// Every engine path loads a database once and then only reads it, so the
// derived lookup structures — the global block slice, the active domain,
// and the columnar view — are memoized on first use and invalidated by
// Add. Concurrent readers are safe (memos are published through atomic
// pointers); mutation (Add, Apply) must not race with other mutations of
// the same DB. Apply is safe to run concurrently with readers of the
// receiver: it never modifies anything readers look at.
type DB struct {
	rels     map[string]*relSeg
	relOrder []string // relation names in first-seen order
	nfacts   int
	nblocks  int

	// log holds the facts in global insertion order for databases built
	// by Add/FromFacts, preserving the historical Facts()/String()
	// ordering exactly. Apply-derived versions leave it nil and serve
	// Facts() grouped by relation (first-seen relation order, then block
	// order, then within-block insertion order).
	log []Fact

	// sharedOrder marks relOrder as aliased by another version: an
	// extension must copy first, or sibling versions appending into one
	// backing array would corrupt each other.
	sharedOrder bool

	memo    atomic.Pointer[dbIndex]
	colMemo atomic.Pointer[ColDB]
}

// dbIndex holds the derived global read-only structures. It is built in
// one pass over the segments and shared by all readers, who must treat
// everything inside as immutable.
type dbIndex struct {
	blocks []Block       // all blocks, grouped by relation in first-seen order
	adom   []query.Const // active domain, sorted
	facts  []Fact        // global fact order; only set when the DB has no log
}

// index returns the memoized lookup structures, building them on first
// use. Racing builders may construct the index twice; both results are
// identical and either may win the publish, so readers are always
// consistent.
func (d *DB) index() *dbIndex {
	if ix := d.memo.Load(); ix != nil {
		return ix
	}
	ix := d.buildIndex()
	d.memo.CompareAndSwap(nil, ix)
	return d.memo.Load()
}

func (d *DB) buildIndex() *dbIndex {
	ix := &dbIndex{blocks: make([]Block, 0, d.nblocks)}
	for _, name := range d.relOrder {
		ix.blocks = append(ix.blocks, d.rels[name].blocks...)
	}
	seen := make(map[query.Const]bool)
	for _, b := range ix.blocks {
		for _, f := range b.Facts {
			for _, c := range f.Args {
				seen[c] = true
			}
		}
	}
	ix.adom = make([]query.Const, 0, len(seen))
	for c := range seen {
		ix.adom = append(ix.adom, c)
	}
	sort.Slice(ix.adom, func(i, j int) bool { return ix.adom[i] < ix.adom[j] })
	if d.log == nil {
		facts := make([]Fact, 0, d.nfacts)
		for _, name := range d.relOrder {
			facts = append(facts, d.rels[name].factsView()...)
		}
		ix.facts = facts
	}
	return ix
}

// ResetCaches drops the memoized lookup structures — the global index and
// the columnar view both rebuild on next use. Add calls it
// automatically — it is exported only so cold-path benchmarks can
// measure the first-request cost of an index build.
func (d *DB) ResetCaches() {
	d.memo.Store(nil)
	d.colMemo.Store(nil)
}

// New returns an empty uncertain database.
func New() *DB {
	return &DB{rels: make(map[string]*relSeg)}
}

// FromFacts returns a database containing the given facts.
func FromFacts(facts ...Fact) *DB {
	d := New()
	for _, f := range facts {
		d.Add(f)
	}
	return d
}

// Add inserts a fact; duplicates are ignored. It returns true if the fact
// was new. A duplicate insert is a pure no-op: it does not invalidate the
// memoized index or columnar view (see TestAddDuplicateKeepsCaches).
func (d *DB) Add(f Fact) bool {
	name := f.Rel.Name
	seg := d.rels[name]
	fresh := false
	if seg == nil {
		seg = &relSeg{rel: f.Rel, byID: make(map[string]int)}
		fresh = true
	}
	bid := f.BlockID()
	if bi, ok := seg.byID[bid]; ok {
		for _, g := range seg.blocks[bi].Facts {
			if g.Equal(f) {
				return false
			}
		}
		if seg.shared {
			seg = seg.clone()
			d.rels[name] = seg
		}
		blk := &seg.blocks[bi]
		if seg.cow {
			fs := make([]Fact, len(blk.Facts), len(blk.Facts)+1)
			copy(fs, blk.Facts)
			blk.Facts = append(fs, f)
		} else {
			blk.Facts = append(blk.Facts, f)
		}
	} else {
		if seg.shared {
			seg = seg.clone()
			d.rels[name] = seg
		}
		seg.byID[bid] = len(seg.blocks)
		seg.blocks = append(seg.blocks, Block{ID: bid, Facts: []Fact{f}})
		d.nblocks++
	}
	if fresh {
		d.rels[name] = seg
		d.appendRelOrder(name)
	}
	if f.Rel != seg.rel {
		seg.mixed = true
	}
	if seg.facts != nil {
		seg.facts = append(seg.facts, f)
	} else if len(seg.blocks) == 1 && len(seg.blocks[0].Facts) == 1 {
		seg.facts = []Fact{f}
	} else {
		seg.lazyFacts.Store(nil)
	}
	if d.log != nil || d.nfacts == 0 {
		d.log = append(d.log, f)
	}
	d.nfacts++
	d.ResetCaches()
	return true
}

// appendRelOrder extends the first-seen relation order, copying first
// when the slice is aliased by another version.
func (d *DB) appendRelOrder(name string) {
	if d.sharedOrder {
		d.relOrder = append(append(make([]string, 0, len(d.relOrder)+1), d.relOrder...), name)
		d.sharedOrder = false
		return
	}
	d.relOrder = append(d.relOrder, name)
}

// Has reports whether the fact is in the database.
func (d *DB) Has(f Fact) bool {
	seg := d.rels[f.Rel.Name]
	if seg == nil {
		return false
	}
	bi, ok := seg.byID[f.BlockID()]
	if !ok {
		return false
	}
	for _, g := range seg.blocks[bi].Facts {
		if g.Equal(f) {
			return true
		}
	}
	return false
}

// Len returns the number of facts.
func (d *DB) Len() int { return d.nfacts }

// Facts returns all facts. For databases built by Add the order is the
// global insertion order; Apply-derived versions group facts by relation
// (first-seen relation order, then block order, then within-block
// insertion order). The caller must not modify the returned slice.
func (d *DB) Facts() []Fact {
	if d.log != nil {
		return d.log
	}
	if d.nfacts == 0 {
		return nil
	}
	return d.index().facts
}

// FactsOf returns the facts of the named relation in insertion order.
// The returned slice is memoized and shared; the caller must not modify
// it.
func (d *DB) FactsOf(relName string) []Fact {
	seg := d.rels[relName]
	if seg == nil {
		return nil
	}
	return seg.factsView()
}

// Relations returns the relation names present in the database, sorted.
func (d *DB) Relations() []string {
	names := make([]string, 0, len(d.rels))
	for n, seg := range d.rels {
		if len(seg.blocks) > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Blocks returns all blocks, grouped by relation in first-seen order.
// The returned slice and the fact slices inside are memoized and shared;
// the caller must not modify them.
func (d *DB) Blocks() []Block {
	return d.index().blocks
}

// BlocksOf returns the blocks of the named relation in first-seen order.
// The returned slice is shared with the database; the caller must not
// modify it.
func (d *DB) BlocksOf(relName string) []Block {
	seg := d.rels[relName]
	if seg == nil || len(seg.blocks) == 0 {
		return nil
	}
	return seg.blocks
}

// BlockOf returns block(A, db): the block containing the given fact
// (facts key-equal to it, whether or not A itself is present).
func (d *DB) BlockOf(f Fact) Block {
	bid := f.BlockID()
	if seg := d.rels[f.Rel.Name]; seg != nil {
		if bi, ok := seg.byID[bid]; ok {
			return seg.blocks[bi]
		}
	}
	return Block{ID: bid, Facts: nil}
}

// BlockByKey answers a ground-key probe in O(1): the block of the named
// relation whose primary-key value equals key, if any. This is the fast
// path of the Lemma 9/10 branch loop — when the unattacked atom's key is
// fully instantiated, the one candidate block is hash-looked-up instead
// of scanning every block of the relation.
func (d *DB) BlockByKey(relName string, key []query.Const) (Block, bool) {
	// When the columnar view is already built (the serving hot path
	// warms it per snapshot), probe its interned key table instead of
	// building a string — zero allocations on hit and miss alike. The
	// view is only consulted, never built here, so row-only callers
	// (ptime residues, purification) never pay for a columnar build.
	if c := d.colMemo.Load(); c != nil {
		if blk, ok, decided := c.blockByKey(relName, key); decided {
			return blk, ok
		}
	}
	seg := d.rels[relName]
	if seg == nil {
		return Block{}, false
	}
	var b strings.Builder
	b.WriteString(relName)
	for _, c := range key {
		b.WriteByte('\x00')
		b.WriteString(string(c))
	}
	bi, ok := seg.byID[b.String()]
	if !ok {
		return Block{}, false
	}
	return seg.blocks[bi], true
}

// Consistent reports whether no two distinct facts are key-equal, i.e.
// every block is a singleton.
func (d *DB) Consistent() bool {
	for _, seg := range d.rels {
		for _, b := range seg.blocks {
			if len(b.Facts) > 1 {
				return false
			}
		}
	}
	return true
}

// ConsistentFor reports whether every relation with mode c is consistent,
// the legality condition for inputs to CERTAINTY(q) with mode-c relations.
func (d *DB) ConsistentFor() bool {
	for _, seg := range d.rels {
		for _, b := range seg.blocks {
			if len(b.Facts) > 1 && b.Facts[0].Rel.Mode == schema.ModeC {
				return false
			}
		}
	}
	return true
}

// NumBlocks returns the number of blocks.
func (d *DB) NumBlocks() int { return d.nblocks }

// NumRepairs returns the number of repairs (the product of block sizes) as
// a float64; it saturates at +Inf on overflow.
func (d *DB) NumRepairs() float64 {
	n := 1.0
	for _, seg := range d.rels {
		for _, b := range seg.blocks {
			n *= float64(len(b.Facts))
			if math.IsInf(n, 1) {
				return n
			}
		}
	}
	return n
}

// ActiveDomain returns adom(db): the set of constants occurring in the
// database, sorted. The returned slice is memoized and shared; the
// caller must not modify it.
func (d *DB) ActiveDomain() []query.Const {
	return d.index().adom
}

// Clone returns an independent copy of the database.
func (d *DB) Clone() *DB {
	c := New()
	for _, f := range d.Facts() {
		c.Add(f)
	}
	return c
}

// Filter returns a new database with the facts satisfying keep.
func (d *DB) Filter(keep func(Fact) bool) *DB {
	c := New()
	for _, f := range d.Facts() {
		if keep(f) {
			c.Add(f)
		}
	}
	return c
}

// Without returns a new database with the given facts removed.
func (d *DB) Without(facts []Fact) *DB {
	drop := make(map[string]bool, len(facts))
	for _, f := range facts {
		drop[f.ID()] = true
	}
	return d.Filter(func(f Fact) bool { return !drop[f.ID()] })
}

// RestrictRels returns a new database containing only facts of the named
// relations.
func (d *DB) RestrictRels(names map[string]bool) *DB {
	return d.Filter(func(f Fact) bool { return names[f.Rel.Name] })
}

// Repairs enumerates every repair of the database, invoking yield with a
// fact slice (reused between calls; copy it to retain). Enumeration stops
// early when yield returns false. The number of repairs is the product of
// block sizes, so this is only feasible for small databases; the solvers
// use it exclusively as a brute-force oracle.
func (d *DB) Repairs(yield func([]Fact) bool) {
	blocks := d.Blocks()
	repair := make([]Fact, len(blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return yield(repair)
		}
		for _, f := range blocks[i].Facts {
			repair[i] = f
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// String renders the database one fact per line (see Facts for the
// order).
func (d *DB) String() string {
	var b strings.Builder
	for i, f := range d.Facts() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
