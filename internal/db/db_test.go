package db

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cqa/internal/query"
	"cqa/internal/schema"
)

var (
	relR = schema.NewRelation("R", 2, 1)
	relS = schema.NewRelation("S", 3, 2)
)

func TestFactBasics(t *testing.T) {
	f := NewFact(relR, "a", "b")
	g := NewFact(relR, "a", "c")
	h := NewFact(relR, "x", "b")
	if !f.KeyEqual(g) || f.KeyEqual(h) {
		t.Error("KeyEqual wrong")
	}
	if f.Equal(g) || !f.Equal(NewFact(relR, "a", "b")) {
		t.Error("Equal wrong")
	}
	if f.BlockID() != g.BlockID() || f.BlockID() == h.BlockID() {
		t.Error("BlockID wrong")
	}
	if f.String() != "R(a | b)" {
		t.Errorf("String = %q", f.String())
	}
	s := NewFact(relS, "a", "b", "c")
	if s.String() != "S(a, b | c)" {
		t.Errorf("String = %q", s.String())
	}
	if len(s.Key()) != 2 || len(s.NonKey()) != 1 {
		t.Error("key split wrong")
	}
}

func TestAddDedup(t *testing.T) {
	d := New()
	if !d.Add(NewFact(relR, "a", "b")) {
		t.Error("first add should be new")
	}
	if d.Add(NewFact(relR, "a", "b")) {
		t.Error("duplicate add should report false")
	}
	if d.Len() != 1 {
		t.Error("dedup failed")
	}
}

func TestBlocks(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relR, "b", "1"),
	)
	blocks := d.Blocks()
	if len(blocks) != 2 {
		t.Fatalf("%d blocks", len(blocks))
	}
	if len(blocks[0].Facts) != 2 || len(blocks[1].Facts) != 1 {
		t.Errorf("block sizes wrong: %v", blocks)
	}
	if d.Consistent() {
		t.Error("db with a 2-fact block is inconsistent")
	}
	if d.NumRepairs() != 2 {
		t.Errorf("NumRepairs = %v", d.NumRepairs())
	}
	bo := d.BlockOf(NewFact(relR, "a", "zzz"))
	if len(bo.Facts) != 2 {
		t.Errorf("BlockOf by key should find the block, got %v", bo)
	}
}

func TestConsistentFor(t *testing.T) {
	relC := schema.NewConsistent("C", 2, 1)
	d := FromFacts(NewFact(relC, "a", "1"))
	if !d.ConsistentFor() {
		t.Error("singleton mode-c block is fine")
	}
	d.Add(NewFact(relC, "a", "2"))
	if d.ConsistentFor() {
		t.Error("mode-c violation must be detected")
	}
}

func TestRepairsEnumeration(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relR, "b", "1"),
	)
	count := 0
	seen := map[string]bool{}
	d.Repairs(func(facts []Fact) bool {
		count++
		if !ConsistentSet(facts) {
			t.Fatalf("repair %v inconsistent", facts)
		}
		key := ""
		for _, f := range facts {
			key += f.ID() + ";"
		}
		seen[key] = true
		return true
	})
	if count != 2 || len(seen) != 2 {
		t.Errorf("count=%d distinct=%d", count, len(seen))
	}
	// Early stop.
	calls := 0
	d.Repairs(func([]Fact) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop failed: %d calls", calls)
	}
}

func TestActiveDomainAndClone(t *testing.T) {
	d := FromFacts(NewFact(relR, "b", "a"))
	adom := d.ActiveDomain()
	if len(adom) != 2 || adom[0] != "a" || adom[1] != "b" {
		t.Errorf("adom = %v", adom)
	}
	c := d.Clone()
	c.Add(NewFact(relR, "x", "y"))
	if d.Len() != 1 || c.Len() != 2 {
		t.Error("clone not independent")
	}
}

func TestFilterWithoutRestrict(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relS, "a", "b", "c"),
	)
	if got := d.RestrictRels(map[string]bool{"R": true}); got.Len() != 1 {
		t.Errorf("restrict: %d", got.Len())
	}
	if got := d.Without([]Fact{NewFact(relR, "a", "1")}); got.Len() != 1 || got.Facts()[0].Rel.Name != "S" {
		t.Errorf("without: %v", got)
	}
}

func TestParseFactsBasics(t *testing.T) {
	d, err := ParseFacts(nil, `
		# comment
		R(a | b)

		S(x, y | z)
		T#c(k | v)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	s := d.FactsOf("S")[0]
	if s.Rel.KeyLen != 2 {
		t.Errorf("S key length %d", s.Rel.KeyLen)
	}
	tt := d.FactsOf("T")[0]
	if tt.Rel.Mode != schema.ModeC {
		t.Errorf("T should be mode c")
	}
}

func TestParseFactsWithSchema(t *testing.T) {
	s := schema.NewSchema()
	s.MustAdd(schema.NewRelation("R", 3, 2))
	d, err := ParseFacts(s, "R(a, b, c)")
	if err != nil {
		t.Fatal(err)
	}
	if d.Facts()[0].Rel.KeyLen != 2 {
		t.Error("schema signature not applied")
	}
	if _, err := ParseFacts(s, "R(a, b)"); err == nil {
		t.Error("arity mismatch not detected")
	}
	if _, err := ParseFacts(s, "R(a | b, c)"); err == nil {
		t.Error("key-length mismatch not detected")
	}
}

func TestParseFactErrors(t *testing.T) {
	for _, bad := range []string{"R(a", "Ra)", "R()", "R(a,,b)"} {
		if _, err := ParseFact(nil, bad); err == nil {
			t.Errorf("ParseFact(%q) should fail", bad)
		}
	}
}

func TestGroundQueryAndFactFromAtom(t *testing.T) {
	q := query.MustParse("R(x | y)")
	v := query.Valuation{"x": "a", "y": "b"}
	facts, err := GroundQuery(q, v)
	if err != nil || len(facts) != 1 || facts[0].String() != "R(a | b)" {
		t.Fatalf("ground: %v %v", facts, err)
	}
	if _, err := GroundQuery(q, query.Valuation{"x": "a"}); err == nil {
		t.Error("unbound variable not detected")
	}
}

// Property: NumRepairs equals the number of repairs enumerated.
func TestNumRepairsMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		for i := 0; i < rng.Intn(6); i++ {
			key := query.Const(strings.Repeat("k", 1+rng.Intn(3)))
			d.Add(NewFact(relR, key, query.Const([]string{"1", "2", "3"}[rng.Intn(3)])))
		}
		want := d.NumRepairs()
		got := 0
		d.Repairs(func([]Fact) bool { got++; return true })
		return float64(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockByKey(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relR, "b", "1"),
		NewFact(relS, "a", "b", "c"),
	)
	b, ok := d.BlockByKey("R", []query.Const{"a"})
	if !ok || len(b.Facts) != 2 {
		t.Fatalf("BlockByKey(R, a) = %v, %v", b, ok)
	}
	b, ok = d.BlockByKey("S", []query.Const{"a", "b"})
	if !ok || len(b.Facts) != 1 {
		t.Fatalf("BlockByKey(S, (a,b)) = %v, %v", b, ok)
	}
	if _, ok := d.BlockByKey("R", []query.Const{"zzz"}); ok {
		t.Error("missing key reported found")
	}
	if _, ok := d.BlockByKey("Nope", []query.Const{"a"}); ok {
		t.Error("missing relation reported found")
	}
	// BlockByKey agrees with BlockOf for every block of the instance.
	for _, blk := range d.Blocks() {
		f := blk.Facts[0]
		got, ok := d.BlockByKey(f.Rel.Name, f.Key())
		if !ok || len(got.Facts) != len(blk.Facts) {
			t.Errorf("BlockByKey(%s, %v) = %v, %v; want %v", f.Rel.Name, f.Key(), got, ok, blk)
		}
	}
}

// TestIndexInvalidationOnAdd: the memoized block/key/active-domain
// structures are rebuilt after a mutation, so readers never see stale
// derived state.
func TestIndexInvalidationOnAdd(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "1"))
	if _, ok := d.BlockByKey("R", []query.Const{"b"}); ok {
		t.Fatal("block b should not exist yet")
	}
	if got := len(d.ActiveDomain()); got != 2 {
		t.Fatalf("adom size = %d", got)
	}
	d.Add(NewFact(relR, "b", "9"))
	if b, ok := d.BlockByKey("R", []query.Const{"b"}); !ok || len(b.Facts) != 1 {
		t.Errorf("BlockByKey after Add = %v, %v", b, ok)
	}
	if got := len(d.ActiveDomain()); got != 4 {
		t.Errorf("adom after Add = %d, want 4", got)
	}
	d.Add(NewFact(relR, "a", "2"))
	if b, _ := d.BlockByKey("R", []query.Const{"a"}); len(b.Facts) != 2 {
		t.Errorf("block a after second Add = %v", b)
	}
	if got := len(d.BlocksOf("R")); got != 2 {
		t.Errorf("BlocksOf(R) = %d blocks, want 2", got)
	}
}

// TestDerivedSlicesMemoized: repeated reads return the same backing
// arrays (no per-call rebuild), and ResetCaches forces a fresh build.
func TestDerivedSlicesMemoized(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "b", "2"),
	)
	b1, b2 := d.BlocksOf("R"), d.BlocksOf("R")
	if &b1[0] != &b2[0] {
		t.Error("BlocksOf rebuilt between calls")
	}
	f1, f2 := d.FactsOf("R"), d.FactsOf("R")
	if &f1[0] != &f2[0] {
		t.Error("FactsOf rebuilt between calls")
	}
	a1, a2 := d.ActiveDomain(), d.ActiveDomain()
	if &a1[0] != &a2[0] {
		t.Error("ActiveDomain rebuilt between calls")
	}
	g1 := d.Blocks()
	d.ResetCaches()
	// BlocksOf and FactsOf now read the relation segment (canonical
	// storage, not a derived cache), so only the global memoized
	// structures rebuild after a reset.
	if g2 := d.Blocks(); &g2[0] == &g1[0] {
		t.Error("ResetCaches did not invalidate the memoized index")
	}
	if a3 := d.ActiveDomain(); &a3[0] == &a1[0] {
		t.Error("ResetCaches did not invalidate the memoized active domain")
	}
}

// TestConcurrentIndexReads: concurrent first reads of the lazily built
// index are safe and consistent; run with -race.
func TestConcurrentIndexReads(t *testing.T) {
	d := New()
	for i := 0; i < 200; i++ {
		d.Add(NewFact(relR, query.Const(strings.Repeat("k", 1+i%7)), query.Const(string(rune('a'+i%26)))))
	}
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() {
			n := len(d.Blocks()) + len(d.ActiveDomain()) + len(d.FactsOf("R"))
			if _, ok := d.BlockByKey("R", []query.Const{"k"}); !ok {
				n = -1
			}
			done <- n
		}()
	}
	first := <-done
	for w := 1; w < 8; w++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent readers disagree: %d vs %d", got, first)
		}
	}
	if first < 0 {
		t.Fatal("BlockByKey missed an existing block")
	}
}

func TestDBString(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "b"))
	if d.String() != "R(a | b)" {
		t.Errorf("String = %q", d.String())
	}
}
