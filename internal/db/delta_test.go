package db

import (
	"math/rand"
	"sort"
	"testing"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// TestAddDuplicateKeepsCaches pins the no-op contract of duplicate
// inserts: Add must decide the duplicate before touching any state, so
// the memoized index and columnar view stay valid (a serving snapshot
// replaying an idempotent write must not lose its warm caches).
func TestAddDuplicateKeepsCaches(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relS, "x", "y", "z"),
	)
	blocks := d.Blocks()
	adom := d.ActiveDomain()
	col := d.Columnar()
	if d.Add(NewFact(relR, "a", "2")) {
		t.Fatal("duplicate add reported true")
	}
	if b2 := d.Blocks(); &b2[0] != &blocks[0] {
		t.Error("duplicate add invalidated the memoized block index")
	}
	if a2 := d.ActiveDomain(); &a2[0] != &adom[0] {
		t.Error("duplicate add invalidated the memoized active domain")
	}
	if d.Columnar() != col {
		t.Error("duplicate add invalidated the columnar view")
	}
	// A genuinely new fact still invalidates.
	if !d.Add(NewFact(relR, "a", "3")) {
		t.Fatal("new add reported false")
	}
	if b2 := d.Blocks(); len(b2) > 0 && &b2[0] == &blocks[0] {
		t.Error("real add did not invalidate the memoized block index")
	}
	if d.Columnar() == col {
		t.Error("real add did not invalidate the columnar view")
	}
}

func TestApplyInsertDeleteUpsert(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relR, "b", "1"),
		NewFact(relS, "x", "y", "z"),
	)
	var delta Delta
	delta.Insert(NewFact(relR, "c", "9"))                   // new block
	delta.Insert(NewFact(relR, "a", "3"))                   // widen existing block
	delta.Insert(NewFact(relR, "a", "1"))                   // duplicate: noop
	delta.Delete(NewFact(relR, "b", "1"))                   // empties block b
	delta.Delete(NewFact(relR, "zz", "0"))                  // absent: noop
	delta.UpsertBlock([]Fact{NewFact(relS, "x", "y", "w")}) // replace block

	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Inserted != 3 || st.Deleted != 2 || st.Upserts != 1 || st.Noops != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.BlocksAdded != 1 || st.BlocksRemoved != 1 || st.BlocksModified != 2 {
		t.Errorf("block stats = %+v", st)
	}
	wantRels := []string{"R", "S"}
	if len(st.Rels) != 2 || st.Rels[0] != wantRels[0] || st.Rels[1] != wantRels[1] {
		t.Errorf("Rels = %v", st.Rels)
	}

	// Parent unchanged.
	if d.Len() != 4 || d.NumBlocks() != 3 {
		t.Errorf("parent mutated: len=%d blocks=%d", d.Len(), d.NumBlocks())
	}
	if !d.Has(NewFact(relR, "b", "1")) || d.Has(NewFact(relR, "c", "9")) {
		t.Error("parent contents changed")
	}

	// Child contents.
	if child.Len() != 5 || child.NumBlocks() != 3 {
		t.Errorf("child len=%d blocks=%d", child.Len(), child.NumBlocks())
	}
	for _, f := range []Fact{
		NewFact(relR, "a", "1"), NewFact(relR, "a", "2"), NewFact(relR, "a", "3"),
		NewFact(relR, "c", "9"), NewFact(relS, "x", "y", "w"),
	} {
		if !child.Has(f) {
			t.Errorf("child missing %s", f)
		}
	}
	if child.Has(NewFact(relR, "b", "1")) || child.Has(NewFact(relS, "x", "y", "z")) {
		t.Error("child kept removed facts")
	}
	if blk, ok := child.BlockByKey("R", []query.Const{"a"}); !ok || len(blk.Facts) != 3 {
		t.Errorf("child block a = %v %v", blk, ok)
	}
}

func TestApplyStructuralSharing(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relS, "x", "y", "z"),
		NewFact(relS, "u", "v", "w"),
	)
	sBlocks := d.BlocksOf("S")
	var delta Delta
	delta.Insert(NewFact(relR, "b", "2"))
	child, err := d.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	// Untouched relation aliases the parent's segment wholesale.
	cs := child.BlocksOf("S")
	if &cs[0] != &sBlocks[0] {
		t.Error("untouched relation was copied, not aliased")
	}
	// Touched relation got its own block slice.
	pr, cr := d.BlocksOf("R"), child.BlocksOf("R")
	if len(pr) != 1 || len(cr) != 2 {
		t.Fatalf("R blocks: parent %d child %d", len(pr), len(cr))
	}
	if &pr[0] == &cr[0] {
		t.Error("touched relation still aliases the parent")
	}
	// The shared FactsOf view of the untouched relation is also shared.
	if pf, cf := d.FactsOf("S"), child.FactsOf("S"); &pf[0] != &cf[0] {
		t.Error("untouched FactsOf not shared")
	}
}

// TestApplySiblingIsolation derives two children from one parent, each
// widening the same block: the copy-on-write discipline must keep the
// three versions' fact slices independent.
func TestApplySiblingIsolation(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "1"))
	var d1, d2 Delta
	d1.Insert(NewFact(relR, "a", "2"))
	d2.Insert(NewFact(relR, "a", "3"))
	c1, err := d.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := d.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, db *DB, want []string) {
		blk, ok := db.BlockByKey("R", []query.Const{"a"})
		if !ok || len(blk.Facts) != len(want) {
			t.Fatalf("%s: block a has %d facts, want %d", name, len(blk.Facts), len(want))
		}
		for i, w := range want {
			if string(blk.Facts[i].Args[1]) != w {
				t.Errorf("%s: fact %d = %s, want value %s", name, i, blk.Facts[i], w)
			}
		}
	}
	check("parent", d, []string{"1"})
	check("child1", c1, []string{"1", "2"})
	check("child2", c2, []string{"1", "3"})

	// Continuing to Add on the parent must not corrupt either child.
	if !d.Add(NewFact(relR, "a", "4")) {
		t.Fatal("parent add failed")
	}
	check("parent", d, []string{"1", "4"})
	check("child1", c1, []string{"1", "2"})
	check("child2", c2, []string{"1", "3"})
}

func TestApplyNettedOutReturnsReceiver(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "1"), NewFact(relS, "x", "y", "z"))
	var delta Delta
	delta.Insert(NewFact(relR, "a", "1"))                   // duplicate
	delta.Insert(NewFact(relR, "q", "7"))                   // new...
	delta.Delete(NewFact(relR, "q", "7"))                   // ...netted out
	delta.UpsertBlock([]Fact{NewFact(relS, "x", "y", "z")}) // same contents
	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	if child != d {
		t.Error("no-net-change delta should return the receiver")
	}
	if !res.Changes.Empty() {
		t.Errorf("changes not empty: %+v", res.Changes)
	}
	if res.Stats.Noops != 2 {
		t.Errorf("noops = %d", res.Stats.Noops)
	}

	var empty Delta
	if child, err := d.Apply(empty); err != nil || child != d {
		t.Error("empty delta should return the receiver")
	}
}

func TestApplyTombstoneCompaction(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "b", "1"),
		NewFact(relR, "c", "1"),
	)
	var delta Delta
	delta.Delete(NewFact(relR, "b", "1"))
	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	if child.NumBlocks() != 2 || child.Len() != 2 {
		t.Errorf("child blocks=%d len=%d", child.NumBlocks(), child.Len())
	}
	blocks := child.BlocksOf("R")
	if len(blocks) != 2 {
		t.Fatalf("block list not compacted: %d entries", len(blocks))
	}
	// Survivors keep first-seen order and remain key-addressable.
	if string(blocks[0].Facts[0].Args[0]) != "a" || string(blocks[1].Facts[0].Args[0]) != "c" {
		t.Errorf("survivor order: %v", blocks)
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := child.BlockByKey("R", []query.Const{query.Const(k)}); !ok {
			t.Errorf("key %s lost after compaction", k)
		}
	}
	if _, ok := child.BlockByKey("R", []query.Const{"b"}); ok {
		t.Error("removed key still resolvable")
	}
	rc := res.Changes.Rels["R"]
	if rc == nil || len(rc.Removed) != 1 || len(rc.Added) != 0 || len(rc.Modified) != 0 {
		t.Errorf("change set = %+v", rc)
	}
}

func TestApplyChangeSetClassification(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "b", "1"),
	)
	var delta Delta
	delta.Insert(NewFact(relR, "c", "1")) // added block
	delta.Insert(NewFact(relR, "a", "2")) // modified block
	delta.Delete(NewFact(relR, "b", "1")) // removed block
	_, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	rc := res.Changes.Rels["R"]
	if rc == nil {
		t.Fatal("no change recorded for R")
	}
	if len(rc.Added) != 1 || string(rc.Added[0].Facts[0].Args[0]) != "c" {
		t.Errorf("Added = %v", rc.Added)
	}
	if len(rc.Removed) != 1 || string(rc.Removed[0].Facts[0].Args[0]) != "b" {
		t.Errorf("Removed = %v", rc.Removed)
	}
	if len(rc.Modified) != 1 || len(rc.Modified[0].Facts) != 2 {
		t.Errorf("Modified = %v", rc.Modified)
	}
}

func TestApplyNewRelation(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "1"))
	relT := schema.NewRelation("T", 2, 1)
	var delta Delta
	delta.Insert(NewFact(relT, "t1", "v"))
	delta.UpsertBlock([]Fact{NewFact(relT, "t2", "v1"), NewFact(relT, "t2", "v2")})
	child, err := d.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got := child.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "T" {
		t.Errorf("relations = %v", got)
	}
	if child.Len() != 4 || child.NumBlocks() != 3 {
		t.Errorf("len=%d blocks=%d", child.Len(), child.NumBlocks())
	}
	if d.rels["T"] != nil {
		t.Error("new relation leaked into the parent")
	}
	// Deleting the last fact of a relation empties it cleanly.
	var wipe Delta
	wipe.Delete(NewFact(relR, "a", "1"))
	c2, err := child.Apply(wipe)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Relations(); len(got) != 1 || got[0] != "T" {
		t.Errorf("relations after wipe = %v", got)
	}
}

func TestApplyValidate(t *testing.T) {
	d := FromFacts(NewFact(relR, "a", "1"))
	bad := Delta{Ops: []Op{{Kind: OpUpsert}}}
	if _, err := d.Apply(bad); err == nil {
		t.Error("empty upsert block accepted")
	}
	mixed := Delta{Ops: []Op{{Kind: OpUpsert, Block: []Fact{
		NewFact(relR, "a", "1"), NewFact(relR, "b", "1"),
	}}}}
	if _, err := d.Apply(mixed); err == nil {
		t.Error("key-mixing upsert block accepted")
	}
	if err := mixed.Validate(); err == nil {
		t.Error("Validate missed the key mix")
	}
	var ok Delta
	ok.UpsertBlock([]Fact{NewFact(relR, "a", "1"), NewFact(relR, "a", "1")})
	child, err := d.Apply(ok)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate facts inside an upsert block collapse, making it a no-op
	// replacement of the existing singleton.
	if child != d {
		t.Error("idempotent upsert with internal duplicates should net out")
	}
}

func TestApplyDerivedFactsOrder(t *testing.T) {
	d := FromFacts(
		NewFact(relS, "x", "y", "z"),
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
	)
	var delta Delta
	delta.Insert(NewFact(relR, "b", "1"))
	child, err := d.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	// Derived versions group Facts() by relation in first-seen order: S
	// first (it was added first), then R's blocks in order.
	got := child.Facts()
	want := []string{"S(x, y | z)", "R(a | 1)", "R(a | 2)", "R(b | 1)"}
	if len(got) != len(want) {
		t.Fatalf("facts = %v", got)
	}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("fact %d = %s, want %s", i, got[i], w)
		}
	}
	// The String form must re-parse to an equal database.
	s := schema.NewSchema()
	reparsed, err := ParseFacts(s, child.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.Len() != child.Len() {
		t.Errorf("round trip lost facts: %d vs %d", reparsed.Len(), child.Len())
	}
}

// TestApplyColumnarDerive checks that Apply patches a built columnar
// view incrementally: untouched relations alias the parent's ColRel,
// touched relations resplice, and the result answers identically to a
// cold rebuild.
func TestApplyColumnarDerive(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relR, "a", "2"),
		NewFact(relR, "b", "1"),
		NewFact(relS, "x", "y", "z"),
		NewFact(relS, "u", "v", "w"),
	)
	pc := d.Columnar()
	var delta Delta
	delta.Insert(NewFact(relR, "c", "5"))
	delta.Delete(NewFact(relR, "b", "1"))
	delta.Insert(NewFact(relR, "a", "3"))
	child, err := d.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	cc := child.colMemo.Load()
	if cc == nil {
		t.Fatal("Apply did not derive the columnar view")
	}
	if cc.Syms != pc.Syms {
		t.Error("derived view does not share the symbol table")
	}
	pS, _ := pc.Rel("S")
	cS, _ := cc.Rel("S")
	if pS != cS {
		t.Error("untouched relation's ColRel was rebuilt, not aliased")
	}
	pR, _ := pc.Rel("R")
	cR, _ := cc.Rel("R")
	if pR == cR {
		t.Error("touched relation still aliases the parent's ColRel")
	}
	if cR.Rel.NumBlocks() != 2 || cR.Rel.Rows() != 4 {
		t.Errorf("spliced R: %d blocks %d rows", cR.Rel.NumBlocks(), cR.Rel.Rows())
	}
	// The derived view answers like a cold rebuild.
	cold := child.buildColumnar()
	for _, name := range []string{"R", "S"} {
		if got, want := colRelContents(cc, name), colRelContents(cold, name); !sameStringSets(got, want) {
			t.Errorf("%s: derived %v vs rebuilt %v", name, got, want)
		}
	}
	// Probes through the derived view agree with the row path.
	for _, key := range []string{"a", "b", "c"} {
		blk, ok, decided := cc.blockByKey("R", []query.Const{query.Const(key)})
		if !decided {
			t.Fatalf("probe %s undecided", key)
		}
		rowBlk, rowOK := func() (Block, bool) {
			seg := child.rels["R"]
			bi, ok := seg.byID[NewFact(relR, query.Const(key), "_").BlockID()]
			if !ok {
				return Block{}, false
			}
			return seg.blocks[bi], true
		}()
		if ok != rowOK {
			t.Errorf("probe %s: col %v row %v", key, ok, rowOK)
		}
		if ok && !sameFacts(blk.Facts, rowBlk.Facts) {
			t.Errorf("probe %s returned a different block", key)
		}
	}
}

// colRelContents decodes a regular relation's columnar rows back to fact
// strings for comparison.
func colRelContents(c *ColDB, name string) []string {
	cr, ok := c.Rel(name)
	if !ok || cr == nil {
		return nil
	}
	var out []string
	for b := int32(0); b < int32(cr.Rel.NumBlocks()); b++ {
		lo, hi := cr.Rel.Span(b)
		for row := lo; row < hi; row++ {
			s := ""
			for col := 0; col < cr.Rel.Arity; col++ {
				s += c.Syms.String(cr.Rel.At(col, row)) + ","
			}
			out = append(out, s)
		}
	}
	return out
}

func sameStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fakeProg is a stand-in compiled program recording its validity rule.
type fakeProg struct{ want *ColRel }

func (p *fakeProg) ValidFor(c *ColDB) bool {
	cr, ok := c.Rel(p.want.Relation.Name)
	return ok && cr == p.want
}

func TestApplyProgInheritance(t *testing.T) {
	d := FromFacts(
		NewFact(relR, "a", "1"),
		NewFact(relS, "x", "y", "z"),
	)
	pc := d.Columnar()
	rR, _ := pc.Rel("R")
	rS, _ := pc.Rel("S")
	pc.Progs().Store("progR", &fakeProg{want: rR})
	pc.Progs().Store("progS", &fakeProg{want: rS})

	var delta Delta
	delta.Insert(NewFact(relR, "b", "2"))
	child, err := d.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	cc := child.colMemo.Load()
	if _, ok := cc.Progs().Load("progS"); !ok {
		t.Error("program over the untouched relation was dropped")
	}
	if _, ok := cc.Progs().Load("progR"); ok {
		t.Error("program over the respliced relation was carried over")
	}
}

// TestApplyMatchesRebuild drives randomized mutation scripts through
// Apply chains and checks the final version is fact-for-fact identical
// to a cold FromFacts rebuild, including block structure and derived
// views.
func TestApplyMatchesRebuild(t *testing.T) {
	relT := schema.NewRelation("T", 3, 1)
	rels := []schema.Relation{relR, relS, relT}
	rng := rand.New(rand.NewSource(7))
	randFact := func() Fact {
		rel := rels[rng.Intn(len(rels))]
		args := make([]query.Const, rel.Arity)
		for i := range args {
			args[i] = query.Const('a' + rune(rng.Intn(6)))
		}
		return Fact{Rel: rel, Args: args}
	}
	for trial := 0; trial < 40; trial++ {
		cur := New()
		for i := 0; i < 5+rng.Intn(10); i++ {
			cur.Add(randFact())
		}
		if trial%3 == 0 {
			cur.Columnar() // exercise the derive path on some trials
		}
		ref := make(map[string]Fact)
		for _, f := range cur.Facts() {
			ref[f.ID()] = f
		}
		for step := 0; step < 4; step++ {
			var delta Delta
			for i := 0; i < 1+rng.Intn(6); i++ {
				f := randFact()
				switch rng.Intn(3) {
				case 0:
					delta.Insert(f)
					ref[f.ID()] = f
				case 1:
					delta.Delete(f)
					delete(ref, f.ID())
				case 2:
					blk := []Fact{f}
					if rng.Intn(2) == 0 {
						g := f
						g.Args = append([]query.Const(nil), f.Args...)
						g.Args[len(g.Args)-1] = "zz"
						blk = append(blk, g)
					}
					// Upsert drops every current member of the block first.
					for id, old := range ref {
						if old.KeyEqual(f) {
							delete(ref, id)
						}
					}
					for _, g := range blk {
						ref[g.ID()] = g
					}
					delta.UpsertBlock(blk)
				}
			}
			next, err := cur.Apply(delta)
			if err != nil {
				t.Fatal(err)
			}
			cur = next
		}
		want := make([]Fact, 0, len(ref))
		for _, f := range ref {
			want = append(want, f)
		}
		rebuilt := FromFacts(want...)
		if cur.Len() != rebuilt.Len() || cur.NumBlocks() != rebuilt.NumBlocks() {
			t.Fatalf("trial %d: applied len=%d blocks=%d, rebuilt len=%d blocks=%d",
				trial, cur.Len(), cur.NumBlocks(), rebuilt.Len(), rebuilt.NumBlocks())
		}
		for _, f := range rebuilt.Facts() {
			if !cur.Has(f) {
				t.Fatalf("trial %d: applied version missing %s", trial, f)
			}
		}
		if cur.Consistent() != rebuilt.Consistent() {
			t.Fatalf("trial %d: consistency disagrees", trial)
		}
		// Block-by-block comparison through the key probe.
		for _, b := range rebuilt.Blocks() {
			got := cur.BlockOf(b.Facts[0])
			if !sameFactSet(got.Facts, b.Facts) {
				t.Fatalf("trial %d: block %q differs: %v vs %v", trial, b.ID, got.Facts, b.Facts)
			}
		}
		// Columnar views agree with their own cold rebuilds.
		cc := cur.Columnar()
		cold := cur.buildColumnar()
		for _, name := range cur.Relations() {
			if _, reg := cc.Rel(name); !reg {
				continue
			}
			if got, want := colRelContents(cc, name), colRelContents(cold, name); !sameStringSets(got, want) {
				t.Fatalf("trial %d: columnar %s differs", trial, name)
			}
		}
	}
}
