package db

import (
	"maps"
	"sort"
	"sync"

	"cqa/internal/colstore"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/sym"
)

// ColRel is the columnar view of one regular relation: the
// struct-of-arrays storage plus the row-oriented blocks aligned with
// its block order, so span indices translate to Block values (and their
// string IDs) without re-deriving anything.
type ColRel struct {
	// Rel is the column store: blocks as contiguous row spans over flat
	// interned columns.
	Rel *colstore.Rel
	// Blocks are the same blocks in the same order as Rel's spans —
	// Blocks[b] holds the facts of span b. Shared with the row index.
	Blocks []Block
	// Relation is the (single) schema of every fact stored.
	Relation schema.Relation
}

// ColDB is the columnar view of a database: one symbol table interning
// every constant plus one ColRel per regular relation. A relation is
// regular when all its facts carry the same schema.Relation — the
// inferred-signature parser can produce same-name facts with different
// shapes, and such relations stay on the row-oriented path rather than
// forcing a lossy columnar encoding. Built once per DB (see Columnar)
// and immutable afterwards; safe for concurrent use.
//
// A view derived by Apply shares the parent's symbol table (it is
// append-only, so parent IDs stay valid) and the parent's ColRel for
// every untouched relation; only touched relations are respliced.
type ColDB struct {
	Syms *sym.Table

	rels      map[string]*ColRel
	irregular map[string]bool
	names     []string // regular relation names, sorted

	// progs caches evaluation programs compiled against this view,
	// keyed by the compiled query artifact (e.g. *rewrite.Eliminator).
	// The view is per-DB and plans are cached per query, so the map
	// stays small; it lives here because program IDs are only valid
	// against this view's symbol table and block order.
	progs sync.Map
}

// ViewProg is implemented by the compiled evaluation programs cached in
// a view's Progs map. When Apply derives a child view, parent programs
// that report themselves still valid are carried over — for queries
// over untouched relations this keeps the warm zero-alloc walk (and its
// cached state) across writes instead of recompiling per version.
type ViewProg interface {
	// ValidFor reports whether the program's compiled references
	// (relation pointers, interned IDs) are still correct against c.
	ValidFor(c *ColDB) bool
}

// Rel returns the columnar relation. ok is false when the relation is
// irregular (mixed schemas under one name) — callers must fall back to
// the row-oriented path. A relation with no facts returns (nil, true).
func (c *ColDB) Rel(name string) (*ColRel, bool) {
	if c.irregular[name] {
		return nil, false
	}
	return c.rels[name], true
}

// RelNames returns the regular relation names, sorted. Shared; do not
// modify.
func (c *ColDB) RelNames() []string { return c.names }

// Progs returns the per-view program cache.
func (c *ColDB) Progs() *sync.Map { return &c.progs }

// Columnar returns the memoized columnar view, building it on first
// use. Like index(), racing builders may construct the view twice; the
// build is deterministic (interning order follows fact order), so
// either result is identical and readers stay consistent. ResetCaches
// drops the view along with the row index; Apply derives the child's
// view incrementally instead of dropping it.
func (d *DB) Columnar() *ColDB {
	if c := d.colMemo.Load(); c != nil {
		return c
	}
	c := d.buildColumnar()
	d.colMemo.CompareAndSwap(nil, c)
	return d.colMemo.Load()
}

func (d *DB) buildColumnar() *ColDB {
	c := &ColDB{
		Syms:      sym.NewTable(),
		rels:      make(map[string]*ColRel, len(d.rels)),
		irregular: make(map[string]bool),
	}
	// Intern every constant in Facts() order first, so the ID
	// assignment is a pure function of the fact sequence regardless of
	// relation-map iteration order below.
	for _, f := range d.Facts() {
		for _, a := range f.Args {
			c.Syms.Intern(string(a))
		}
	}
	for _, name := range d.relOrder {
		seg := d.rels[name]
		if len(seg.blocks) == 0 {
			continue
		}
		if seg.mixed {
			c.irregular[name] = true
			continue
		}
		blocks := seg.blocks
		rel := seg.rel
		// Key-sort the blocks by interned key tuple: a deterministic
		// layout that keeps equal prefixes adjacent. Keys are unique
		// per relation, so the order is total.
		ord := make([]int, len(blocks))
		for i := range ord {
			ord[i] = i
		}
		keyOf := func(i int) []query.Const { return blocks[i].Facts[0].Key() }
		sort.Slice(ord, func(a, b int) bool {
			ka, kb := keyOf(ord[a]), keyOf(ord[b])
			for i := range ka {
				ia := c.Syms.Intern(string(ka[i]))
				ib := c.Syms.Intern(string(kb[i]))
				if ia != ib {
					return ia < ib
				}
			}
			return false
		})
		b := colstore.NewBuilder(name, rel.Arity, rel.KeyLen)
		aligned := make([]Block, 0, len(blocks))
		row := make([]sym.ID, rel.Arity)
		for _, bi := range ord {
			blk := blocks[bi]
			b.StartBlock()
			for _, f := range blk.Facts {
				for i, a := range f.Args {
					row[i] = c.Syms.Intern(string(a))
				}
				b.AddRow(row)
			}
			aligned = append(aligned, blk)
		}
		c.rels[name] = &ColRel{Rel: b.Build(), Blocks: aligned, Relation: rel}
	}
	c.names = make([]string, 0, len(c.rels))
	for name := range c.rels {
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	return c
}

// deriveColumnar builds the child's columnar view from the parent's:
// untouched relations alias the parent's ColRel (so span indices,
// compiled programs, and the interned walk stay warm), and each touched
// relation is respliced — untouched block runs copy column-wise,
// modified blocks re-intern in place, removed blocks drop, and added
// blocks append at the end. The shared symbol table is append-only, so
// every parent ID stays valid in the child.
func deriveColumnar(parent *ColDB, child *DB, ch *ChangeSet) *ColDB {
	c := &ColDB{
		Syms:      parent.Syms,
		rels:      maps.Clone(parent.rels),
		irregular: maps.Clone(parent.irregular),
	}
	for name, rc := range ch.Rels {
		seg := child.rels[name]
		if seg == nil || len(seg.blocks) == 0 {
			// The relation was emptied: no columnar form, no irregular
			// flag (Rel returns (nil, true), the empty-relation shape).
			delete(c.rels, name)
			delete(c.irregular, name)
			continue
		}
		if seg.mixed {
			delete(c.rels, name)
			c.irregular[name] = true
			continue
		}
		c.rels[name] = spliceColRel(c.Syms, seg, parent.rels[name], rc)
	}
	c.names = make([]string, 0, len(c.rels))
	for name := range c.rels {
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	// Carry over the compiled programs that remain valid — a program
	// whose every relation still points at the same ColRel sees an
	// identical world, so queries over untouched relations skip the
	// per-version recompile entirely.
	parent.progs.Range(func(k, v any) bool {
		if vp, ok := v.(ViewProg); ok && vp.ValidFor(c) {
			c.progs.Store(k, v)
		}
		return true
	})
	return c
}

// spliceColRel rebuilds one touched relation's columnar form from the
// parent's, in O(delta) probe work plus column memcpy of the surviving
// rows. New blocks append after the parent's block order (the answer
// paths sort by key at the end, so block order is layout, not
// semantics); modified blocks keep their position, so span indices of
// untouched blocks never move unless a block was removed.
func spliceColRel(syms *sym.Table, seg *relSeg, pr *ColRel, rc *RelChange) *ColRel {
	rel := seg.rel
	b := colstore.NewBuilder(rel.Name, rel.Arity, rel.KeyLen)
	row := make([]sym.ID, rel.Arity)
	addBlock := func(blk Block) {
		b.StartBlock()
		for _, f := range blk.Facts {
			for i, a := range f.Args {
				row[i] = syms.Intern(string(a))
			}
			b.AddRow(row)
		}
	}
	if pr == nil {
		// New (or previously empty) relation: build wholesale, blocks in
		// segment order.
		aligned := append([]Block(nil), seg.blocks...)
		for _, blk := range seg.blocks {
			addBlock(blk)
		}
		return &ColRel{Rel: b.Build(), Blocks: aligned, Relation: rel}
	}
	// Locate removed and modified blocks in the parent's block order via
	// the interned key probe; their constants are parent data, so the
	// lookups cannot miss.
	type patch struct {
		idx int32
		blk Block
		mod bool
	}
	patches := make([]patch, 0, len(rc.Removed)+len(rc.Modified))
	locate := func(blk Block) int32 {
		key := blk.Facts[0].Key()
		ids := make([]sym.ID, len(key))
		for i, k := range key {
			id, ok := syms.Lookup(string(k))
			if !ok {
				panic("db: spliceColRel: key constant missing from the shared symbol table")
			}
			ids[i] = id
		}
		bi, ok := pr.Rel.BlockByKey(ids)
		if !ok {
			panic("db: spliceColRel: changed block missing from the parent view")
		}
		return bi
	}
	for _, blk := range rc.Removed {
		patches = append(patches, patch{idx: locate(blk)})
	}
	for _, blk := range rc.Modified {
		patches = append(patches, patch{idx: locate(blk), blk: blk, mod: true})
	}
	sort.Slice(patches, func(i, j int) bool { return patches[i].idx < patches[j].idx })
	aligned := make([]Block, 0, len(seg.blocks))
	cur := int32(0)
	for _, p := range patches {
		if p.idx > cur {
			b.AddSpans(pr.Rel, int(cur), int(p.idx))
			aligned = append(aligned, pr.Blocks[cur:p.idx]...)
		}
		if p.mod {
			addBlock(p.blk)
			aligned = append(aligned, p.blk)
		}
		cur = p.idx + 1
	}
	if nb := int32(pr.Rel.NumBlocks()); cur < nb {
		b.AddSpans(pr.Rel, int(cur), int(nb))
		aligned = append(aligned, pr.Blocks[cur:nb]...)
	}
	for _, blk := range rc.Added {
		addBlock(blk)
		aligned = append(aligned, blk)
	}
	return &ColRel{Rel: b.Build(), Blocks: aligned, Relation: rel}
}

// maxProbeKey bounds the stack buffer of the interned ground-key probe;
// longer keys (arity > 8 key positions) fall back to the string path.
const maxProbeKey = 8

// blockByKey is the interned ground-key probe. The third result
// reports whether the view could decide the probe at all: false sends
// the caller to the string-keyed path (irregular relation, oversized
// key), while a decided miss — including a constant the database never
// mentions — is final.
func (c *ColDB) blockByKey(relName string, key []query.Const) (Block, bool, bool) {
	cr, regular := c.Rel(relName)
	if !regular {
		return Block{}, false, false
	}
	if cr == nil {
		return Block{}, false, true
	}
	if cr.Relation.KeyLen != len(key) {
		// No block of this relation has a key of that length; the miss
		// is final.
		return Block{}, false, true
	}
	if len(key) > maxProbeKey {
		return Block{}, false, false
	}
	var buf [maxProbeKey]sym.ID
	for i, k := range key {
		id, ok := c.Syms.Lookup(string(k))
		if !ok {
			return Block{}, false, true
		}
		buf[i] = id
	}
	b, ok := cr.Rel.BlockByKey(buf[:len(key)])
	if !ok {
		return Block{}, false, true
	}
	return cr.Blocks[b], true, true
}
