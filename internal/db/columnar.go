package db

import (
	"sort"
	"sync"

	"cqa/internal/colstore"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/sym"
)

// ColRel is the columnar view of one regular relation: the
// struct-of-arrays storage plus the row-oriented blocks aligned with
// its block order, so span indices translate to Block values (and their
// string IDs) without re-deriving anything.
type ColRel struct {
	// Rel is the column store: key-sorted blocks as contiguous row
	// spans over flat interned columns.
	Rel *colstore.Rel
	// Blocks are the same blocks in the same order as Rel's spans —
	// Blocks[b] holds the facts of span b. Shared with the row index.
	Blocks []Block
	// Relation is the (single) schema of every fact stored.
	Relation schema.Relation
}

// ColDB is the columnar view of a database: one symbol table interning
// every constant plus one ColRel per regular relation. A relation is
// regular when all its facts carry the same schema.Relation — the
// inferred-signature parser can produce same-name facts with different
// shapes, and such relations stay on the row-oriented path rather than
// forcing a lossy columnar encoding. Built once per DB (see Columnar)
// and immutable afterwards; safe for concurrent use.
type ColDB struct {
	Syms *sym.Table

	rels      map[string]*ColRel
	irregular map[string]bool
	names     []string // regular relation names, sorted

	// progs caches evaluation programs compiled against this view,
	// keyed by the compiled query artifact (e.g. *rewrite.Eliminator).
	// The view is per-DB and plans are cached per query, so the map
	// stays small; it lives here because program IDs are only valid
	// against this view's symbol table and block order.
	progs sync.Map
}

// Rel returns the columnar relation. ok is false when the relation is
// irregular (mixed schemas under one name) — callers must fall back to
// the row-oriented path. A relation with no facts returns (nil, true).
func (c *ColDB) Rel(name string) (*ColRel, bool) {
	if c.irregular[name] {
		return nil, false
	}
	return c.rels[name], true
}

// RelNames returns the regular relation names, sorted. Shared; do not
// modify.
func (c *ColDB) RelNames() []string { return c.names }

// Progs returns the per-view program cache.
func (c *ColDB) Progs() *sync.Map { return &c.progs }

// Columnar returns the memoized columnar view, building it on first
// use. Like index(), racing builders may construct the view twice; the
// build is deterministic (interning order follows fact insertion
// order), so either result is identical and readers stay consistent.
// ResetCaches drops the view along with the row index.
func (d *DB) Columnar() *ColDB {
	if c := d.colMemo.Load(); c != nil {
		return c
	}
	c := d.buildColumnar()
	d.colMemo.CompareAndSwap(nil, c)
	return d.colMemo.Load()
}

func (d *DB) buildColumnar() *ColDB {
	ix := d.index()
	c := &ColDB{
		Syms:      sym.NewTable(),
		rels:      make(map[string]*ColRel, len(ix.relBlocks)),
		irregular: make(map[string]bool),
	}
	// Intern every constant in insertion order first, so the ID
	// assignment is a pure function of the fact sequence regardless of
	// relation-map iteration order below.
	for _, f := range d.facts {
		for _, a := range f.Args {
			c.Syms.Intern(string(a))
		}
	}
	for name, blocks := range ix.relBlocks {
		facts := ix.relFacts[name]
		rel := facts[0].Rel
		regular := true
		for _, f := range facts {
			if f.Rel != rel {
				regular = false
				break
			}
		}
		if !regular {
			c.irregular[name] = true
			continue
		}
		// Key-sort the blocks by interned key tuple: a deterministic
		// layout that keeps equal prefixes adjacent. Keys are unique
		// per relation, so the order is total.
		ord := make([]int, len(blocks))
		for i := range ord {
			ord[i] = i
		}
		keyOf := func(i int) []query.Const { return blocks[i].Facts[0].Key() }
		sort.Slice(ord, func(a, b int) bool {
			ka, kb := keyOf(ord[a]), keyOf(ord[b])
			for i := range ka {
				ia := c.Syms.Intern(string(ka[i]))
				ib := c.Syms.Intern(string(kb[i]))
				if ia != ib {
					return ia < ib
				}
			}
			return false
		})
		b := colstore.NewBuilder(name, rel.Arity, rel.KeyLen)
		aligned := make([]Block, 0, len(blocks))
		row := make([]sym.ID, rel.Arity)
		for _, bi := range ord {
			blk := blocks[bi]
			b.StartBlock()
			for _, f := range blk.Facts {
				for i, a := range f.Args {
					row[i] = c.Syms.Intern(string(a))
				}
				b.AddRow(row)
			}
			aligned = append(aligned, blk)
		}
		c.rels[name] = &ColRel{Rel: b.Build(), Blocks: aligned, Relation: rel}
	}
	c.names = make([]string, 0, len(c.rels))
	for name := range c.rels {
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	return c
}

// maxProbeKey bounds the stack buffer of the interned ground-key probe;
// longer keys (arity > 8 key positions) fall back to the string path.
const maxProbeKey = 8

// blockByKey is the interned ground-key probe. The third result
// reports whether the view could decide the probe at all: false sends
// the caller to the string-keyed path (irregular relation, oversized
// key), while a decided miss — including a constant the database never
// mentions — is final.
func (c *ColDB) blockByKey(relName string, key []query.Const) (Block, bool, bool) {
	cr, regular := c.Rel(relName)
	if !regular {
		return Block{}, false, false
	}
	if cr == nil {
		return Block{}, false, true
	}
	if cr.Relation.KeyLen != len(key) {
		// No block of this relation has a key of that length; the miss
		// is final.
		return Block{}, false, true
	}
	if len(key) > maxProbeKey {
		return Block{}, false, false
	}
	var buf [maxProbeKey]sym.ID
	for i, k := range key {
		id, ok := c.Syms.Lookup(string(k))
		if !ok {
			return Block{}, false, true
		}
		buf[i] = id
	}
	b, ok := cr.Rel.BlockByKey(buf[:len(key)])
	if !ok {
		return Block{}, false, true
	}
	return cr.Blocks[b], true, true
}
