package db

import "testing"

// FuzzParseFact: the fact parser must never panic and accepted facts
// must round-trip through String.
func FuzzParseFact(f *testing.F) {
	for _, seed := range []string{
		"R(a | b)",
		"S(x, y | z)",
		"T#c(k | v)",
		"R(a, b |)",
		"R(a",
		"",
		"R(a,,b)",
		"R(a | b | c)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fact, err := ParseFact(nil, s)
		if err != nil {
			return
		}
		back, err := ParseFact(nil, fact.String())
		if err != nil {
			t.Fatalf("round trip parse failed: %q -> %q: %v", s, fact.String(), err)
		}
		if !fact.Equal(back) {
			t.Fatalf("round trip changed fact: %q -> %q -> %q", s, fact.String(), back.String())
		}
	})
}
