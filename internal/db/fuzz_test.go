package db

import "testing"

// FuzzParseFact: the fact parser must never panic and accepted facts
// must round-trip through String.
func FuzzParseFact(f *testing.F) {
	for _, seed := range []string{
		"R(a | b)",
		"S(x, y | z)",
		"T#c(k | v)",
		"R(a, b |)",
		"R(a",
		"",
		"R(a,,b)",
		"R(a | b | c)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		fact, err := ParseFact(nil, s)
		if err != nil {
			return
		}
		back, err := ParseFact(nil, fact.String())
		if err != nil {
			t.Fatalf("round trip parse failed: %q -> %q: %v", s, fact.String(), err)
		}
		if !fact.Equal(back) {
			t.Fatalf("round trip changed fact: %q -> %q -> %q", s, fact.String(), back.String())
		}
		// Parse → intern → print round trip: the columnar view of a
		// database holding the fact must intern every constant so it
		// prints back identically, and the interned ground-key probe
		// must find the fact's block.
		d := FromFacts(fact)
		c := d.Columnar()
		for _, a := range fact.Args {
			id, ok := c.Syms.Lookup(string(a))
			if !ok {
				t.Fatalf("constant %q of %q not interned", a, fact.String())
			}
			if got := c.Syms.String(id); got != string(a) {
				t.Fatalf("intern round trip changed %q to %q", a, got)
			}
		}
		blk, ok := d.BlockByKey(fact.Rel.Name, fact.Key())
		if !ok || len(blk.Facts) != 1 || !blk.Facts[0].Equal(fact) {
			t.Fatalf("columnar BlockByKey lost %q: ok=%v block=%v", fact.String(), ok, blk)
		}
	})
}
