package db

import (
	"fmt"
	"testing"

	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/sym"
)

func colTestDB() *DB {
	r := schema.Relation{Name: "R", Arity: 2, KeyLen: 1}
	s := schema.Relation{Name: "S", Arity: 3, KeyLen: 2}
	d := New()
	for i := 0; i < 20; i++ {
		k := query.Const(fmt.Sprintf("k%d", i))
		d.Add(NewFact(r, k, query.Const(fmt.Sprintf("v%d", i))))
		if i%3 == 0 {
			d.Add(NewFact(r, k, query.Const(fmt.Sprintf("w%d", i))))
		}
		d.Add(NewFact(s, k, "a", query.Const(fmt.Sprintf("v%d", i))))
	}
	return d
}

// TestColumnarMatchesRowView checks that the columnar view stores
// exactly the row view's blocks: same relations, same block multiset,
// spans aligned with the Blocks slice, and every stored argument
// printing back to the original constant.
func TestColumnarMatchesRowView(t *testing.T) {
	d := colTestDB()
	c := d.Columnar()
	if got, want := len(c.RelNames()), 2; got != want {
		t.Fatalf("RelNames = %v, want 2 relations", c.RelNames())
	}
	for _, name := range c.RelNames() {
		cr, ok := c.Rel(name)
		if !ok || cr == nil {
			t.Fatalf("Rel(%q) = (%v, %v), want regular", name, cr, ok)
		}
		rowBlocks := d.BlocksOf(name)
		if cr.Rel.NumBlocks() != len(rowBlocks) || len(cr.Blocks) != len(rowBlocks) {
			t.Fatalf("%s: %d columnar blocks vs %d row blocks", name, cr.Rel.NumBlocks(), len(rowBlocks))
		}
		seen := make(map[string]bool)
		for b := int32(0); b < int32(cr.Rel.NumBlocks()); b++ {
			lo, hi := cr.Rel.Span(b)
			blk := cr.Blocks[b]
			if int(hi-lo) != len(blk.Facts) {
				t.Fatalf("%s block %d: span has %d rows, aligned block has %d facts", name, b, hi-lo, len(blk.Facts))
			}
			seen[blk.ID] = true
			for i, f := range blk.Facts {
				for col, a := range f.Args {
					got := c.Syms.String(cr.Rel.At(col, lo+int32(i)))
					if got != string(a) {
						t.Fatalf("%s block %d row %d col %d: %q != %q", name, b, i, col, got, a)
					}
				}
			}
		}
		for _, rb := range rowBlocks {
			if !seen[rb.ID] {
				t.Fatalf("%s: row block %s missing from columnar view", name, rb.ID)
			}
		}
	}
}

// TestColumnarBlockByKey compares the interned probe against the
// string-keyed path on every block key plus misses.
func TestColumnarBlockByKey(t *testing.T) {
	d := colTestDB()
	fresh := colTestDB() // never builds a columnar view: the string path
	d.Columnar()
	for _, b := range fresh.Blocks() {
		key := b.Facts[0].Key()
		name := b.Facts[0].Rel.Name
		got, ok := d.BlockByKey(name, key)
		want, wok := fresh.BlockByKey(name, key)
		if ok != wok || got.ID != want.ID || len(got.Facts) != len(want.Facts) {
			t.Fatalf("BlockByKey(%s, %v): columnar (%v, %v) vs row (%v, %v)", name, key, got.ID, ok, want.ID, wok)
		}
	}
	if _, ok := d.BlockByKey("R", []query.Const{"nope"}); ok {
		t.Fatal("columnar probe found a block for an unknown constant")
	}
	if _, ok := d.BlockByKey("R", []query.Const{"a"}); ok {
		t.Fatal("columnar probe found a block for a non-key constant")
	}
	if _, ok := d.BlockByKey("R", []query.Const{"k0", "k1"}); ok {
		t.Fatal("columnar probe matched a key of the wrong length")
	}
	if _, ok := d.BlockByKey("Q", []query.Const{"k0"}); ok {
		t.Fatal("columnar probe found a block of an absent relation")
	}
}

// TestColumnarIrregularRelation: two schemas under one name keep the
// relation on the row path, and BlockByKey still answers through the
// string fallback.
func TestColumnarIrregularRelation(t *testing.T) {
	d := New()
	d.Add(NewFact(schema.Relation{Name: "R", Arity: 2, KeyLen: 1}, "a", "b"))
	d.Add(NewFact(schema.Relation{Name: "R", Arity: 3, KeyLen: 1}, "c", "d", "e"))
	d.Add(NewFact(schema.Relation{Name: "S", Arity: 2, KeyLen: 1}, "a", "b"))
	c := d.Columnar()
	if _, ok := c.Rel("R"); ok {
		t.Fatal("mixed-schema relation R reported as regular")
	}
	if cr, ok := c.Rel("S"); !ok || cr == nil {
		t.Fatal("regular relation S not in the columnar view")
	}
	if got := c.RelNames(); len(got) != 1 || got[0] != "S" {
		t.Fatalf("RelNames = %v, want [S]", got)
	}
	b, ok := d.BlockByKey("R", []query.Const{"a"})
	if !ok || len(b.Facts) != 1 {
		t.Fatalf("string-fallback BlockByKey(R, a) = (%v, %v)", b, ok)
	}
	// Absent relation: decided miss either way.
	if _, ok := c.Rel("T"); !ok {
		t.Fatal("absent relation should be regular (nil, true)")
	}
}

// TestColumnarInvalidation: Add drops the view; the rebuild sees the
// new fact.
func TestColumnarInvalidation(t *testing.T) {
	d := New()
	rel := schema.Relation{Name: "R", Arity: 2, KeyLen: 1}
	d.Add(NewFact(rel, "a", "b"))
	c1 := d.Columnar()
	if cr, _ := c1.Rel("R"); cr.Rel.Rows() != 1 {
		t.Fatalf("view has %d rows, want 1", cr.Rel.Rows())
	}
	d.Add(NewFact(rel, "a", "c"))
	c2 := d.Columnar()
	if c2 == c1 {
		t.Fatal("Add did not invalidate the columnar view")
	}
	cr, _ := c2.Rel("R")
	if cr.Rel.Rows() != 2 || cr.Rel.NumBlocks() != 1 {
		t.Fatalf("rebuilt view: rows=%d blocks=%d, want 2 rows in 1 block", cr.Rel.Rows(), cr.Rel.NumBlocks())
	}
}

// TestColumnarDeterministicLayout: two identically loaded databases
// produce identical symbol assignments and block orders.
func TestColumnarDeterministicLayout(t *testing.T) {
	c1, c2 := colTestDB().Columnar(), colTestDB().Columnar()
	if c1.Syms.Len() != c2.Syms.Len() {
		t.Fatalf("symbol counts differ: %d vs %d", c1.Syms.Len(), c2.Syms.Len())
	}
	for id := 0; id < c1.Syms.Len(); id++ {
		if c1.Syms.String(sym.ID(id)) != c2.Syms.String(sym.ID(id)) {
			t.Fatalf("symbol %d differs: %q vs %q", id, c1.Syms.String(sym.ID(id)), c2.Syms.String(sym.ID(id)))
		}
	}
	for _, name := range c1.RelNames() {
		r1, _ := c1.Rel(name)
		r2, _ := c2.Rel(name)
		for b := range r1.Blocks {
			if r1.Blocks[b].ID != r2.Blocks[b].ID {
				t.Fatalf("%s block %d differs: %s vs %s", name, b, r1.Blocks[b].ID, r2.Blocks[b].ID)
			}
		}
	}
}
