package db

import (
	"fmt"
	"maps"
	"sort"

	"cqa/internal/schema"
)

// OpKind is the kind of one delta operation.
type OpKind uint8

const (
	// OpInsert adds one fact (a no-op when it is already present).
	OpInsert OpKind = iota
	// OpDelete removes one fact (a no-op when it is absent).
	OpDelete
	// OpUpsert replaces the full contents of one block with the given
	// key-equal facts, creating the block when it does not exist.
	OpUpsert
)

// Op is one mutation of a Delta.
type Op struct {
	Kind  OpKind
	Fact  Fact   // OpInsert, OpDelete
	Block []Fact // OpUpsert: the new contents of one block
}

// Delta is an ordered list of mutations. Operations on the same relation
// apply in order (an insert followed by a delete of the same fact nets
// out); operations on different relations commute.
type Delta struct {
	Ops []Op
}

// Insert appends an insert op.
func (d *Delta) Insert(f Fact) { d.Ops = append(d.Ops, Op{Kind: OpInsert, Fact: f}) }

// Delete appends a delete op.
func (d *Delta) Delete(f Fact) { d.Ops = append(d.Ops, Op{Kind: OpDelete, Fact: f}) }

// UpsertBlock appends an upsert op replacing one block. The facts must be
// non-empty and key-equal; Apply validates and rejects otherwise. The
// slice is copied.
func (d *Delta) UpsertBlock(facts []Fact) {
	d.Ops = append(d.Ops, Op{Kind: OpUpsert, Block: append([]Fact(nil), facts...)})
}

// Empty reports whether the delta carries no operations.
func (d Delta) Empty() bool { return len(d.Ops) == 0 }

// Validate checks the structural well-formedness of the delta (upsert
// blocks non-empty and key-equal) without applying it. Apply performs
// the same checks; Validate lets a batcher reject a malformed request
// individually before merging deltas into one commit.
func (d Delta) Validate() error {
	for _, op := range d.Ops {
		if op.Kind != OpUpsert {
			continue
		}
		if len(op.Block) == 0 {
			return fmt.Errorf("db: upsert of an empty block")
		}
		bid := op.Block[0].BlockID()
		for _, f := range op.Block[1:] {
			if f.BlockID() != bid {
				return fmt.Errorf("db: upsert block mixes keys %q and %q",
					op.Block[0].String(), f.String())
			}
		}
	}
	return nil
}

// ApplyStats summarizes the net effect of an Apply.
type ApplyStats struct {
	// Inserted and Deleted count facts actually added and removed
	// (including through upserts). Noops counts operations with no
	// effect (duplicate inserts, deletes of absent facts, upserts that
	// reproduce the existing block).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	Upserts  int `json:"upserts"`
	Noops    int `json:"noops"`

	BlocksAdded    int `json:"blocks_added"`
	BlocksRemoved  int `json:"blocks_removed"`
	BlocksModified int `json:"blocks_modified"`

	// Rels lists the relations with a net change, sorted.
	Rels []string `json:"rels,omitempty"`
}

// RelChange is the net block-level difference of one relation between a
// parent version and the child Apply built.
type RelChange struct {
	// Added holds the child's blocks absent from the parent, in the
	// order they were appended to the child's block list (new blocks
	// always append at the end, so untouched block positions are stable).
	Added []Block
	// Removed holds the parent's blocks that the child no longer has.
	Removed []Block
	// Modified holds the child's blocks whose fact set changed but whose
	// ID exists in both versions. Their position in the block list is
	// unchanged.
	Modified []Block
}

// ChangeSet records the net difference between a parent version and the
// child built by Apply, at block granularity per relation. The columnar
// and shard layers use it to patch their derived structures in O(delta)
// instead of rescanning the relation.
type ChangeSet struct {
	Rels map[string]*RelChange
}

// Empty reports whether the change set carries no net change.
func (c *ChangeSet) Empty() bool { return c == nil || len(c.Rels) == 0 }

// ApplyResult carries the bookkeeping of one Apply: summary statistics
// and the block-granular change set the derived layers patch from.
type ApplyResult struct {
	Stats   ApplyStats
	Changes *ChangeSet
}

// Apply builds the next version of the database by structural sharing:
// the child aliases every untouched relation segment of the receiver and
// clones only the touched ones, with copy-on-write fact slices inside.
// The receiver is never modified in a way readers can observe, so Apply
// is safe to run concurrently with readers of the receiver (but not with
// other mutations of it). A delta with no net effect returns the
// receiver itself.
//
// Cost: O(size of the delta + cloned segment block tables) for inserts
// and in-block deletes; a delete that empties a block additionally
// compacts that relation's block list (O(blocks of the relation)).
func (d *DB) Apply(delta Delta) (*DB, error) {
	child, _, err := d.ApplyChanges(delta)
	return child, err
}

// segWork tracks one touched relation during an Apply.
type segWork struct {
	parent *relSeg
	seg    *relSeg
	// touched lists block IDs in first-touch order; touchedSet dedupes.
	touched    []string
	touchedSet map[string]bool
	tombstones bool
}

func (w *segWork) touch(bid string) {
	if !w.touchedSet[bid] {
		w.touchedSet[bid] = true
		w.touched = append(w.touched, bid)
	}
}

// ApplyChanges is Apply returning the change set and statistics the
// derived layers (columnar view, shard pool, store) patch from.
func (d *DB) ApplyChanges(delta Delta) (*DB, *ApplyResult, error) {
	res := &ApplyResult{Changes: &ChangeSet{Rels: make(map[string]*RelChange)}}
	if delta.Empty() {
		return d, res, nil
	}
	if err := delta.Validate(); err != nil {
		return nil, nil, err
	}
	child := &DB{
		rels:        maps.Clone(d.rels),
		relOrder:    d.relOrder,
		nfacts:      d.nfacts,
		nblocks:     d.nblocks,
		sharedOrder: true,
	}
	work := make(map[string]*segWork)
	ws := func(name string, rel schema.Relation) *segWork {
		if w, ok := work[name]; ok {
			return w
		}
		w := &segWork{parent: d.rels[name], touchedSet: make(map[string]bool)}
		if w.parent != nil {
			w.seg = w.parent.clone()
		} else {
			w.seg = &relSeg{rel: rel, byID: make(map[string]int), cow: true}
			child.appendRelOrder(name)
		}
		child.rels[name] = w.seg
		work[name] = w
		return w
	}

	st := &res.Stats
	for _, op := range delta.Ops {
		switch op.Kind {
		case OpInsert:
			f := op.Fact
			w := ws(f.Rel.Name, f.Rel)
			seg := w.seg
			bid := f.BlockID()
			if bi, ok := seg.byID[bid]; ok {
				blk := &seg.blocks[bi]
				dup := false
				for _, g := range blk.Facts {
					if g.Equal(f) {
						dup = true
						break
					}
				}
				if dup {
					st.Noops++
					continue
				}
				fs := make([]Fact, len(blk.Facts), len(blk.Facts)+1)
				copy(fs, blk.Facts)
				blk.Facts = append(fs, f)
			} else {
				seg.byID[bid] = len(seg.blocks)
				seg.blocks = append(seg.blocks, Block{ID: bid, Facts: []Fact{f}})
			}
			w.touch(bid)
			if f.Rel != seg.rel {
				seg.mixed = true
			}
			st.Inserted++
			child.nfacts++
		case OpDelete:
			f := op.Fact
			seg := child.rels[f.Rel.Name]
			if seg == nil {
				st.Noops++
				continue
			}
			w := ws(f.Rel.Name, f.Rel)
			seg = w.seg
			bid := f.BlockID()
			bi, ok := seg.byID[bid]
			if !ok {
				st.Noops++
				continue
			}
			blk := &seg.blocks[bi]
			at := -1
			for i, g := range blk.Facts {
				if g.Equal(f) {
					at = i
					break
				}
			}
			if at < 0 {
				st.Noops++
				continue
			}
			if len(blk.Facts) == 1 {
				blk.Facts = nil // tombstone; compacted below
				w.tombstones = true
			} else {
				fs := make([]Fact, 0, len(blk.Facts)-1)
				fs = append(fs, blk.Facts[:at]...)
				fs = append(fs, blk.Facts[at+1:]...)
				blk.Facts = fs
			}
			w.touch(bid)
			st.Deleted++
			child.nfacts--
		case OpUpsert:
			fs := dedupeFacts(op.Block)
			f0 := fs[0]
			w := ws(f0.Rel.Name, f0.Rel)
			seg := w.seg
			bid := f0.BlockID()
			if bi, ok := seg.byID[bid]; ok {
				blk := &seg.blocks[bi]
				if sameFactSet(blk.Facts, fs) {
					st.Noops++
					continue
				}
				st.Deleted += len(blk.Facts)
				child.nfacts -= len(blk.Facts)
				blk.Facts = fs
			} else {
				seg.byID[bid] = len(seg.blocks)
				seg.blocks = append(seg.blocks, Block{ID: bid, Facts: fs})
			}
			w.touch(bid)
			for _, f := range fs {
				if f.Rel != seg.rel {
					seg.mixed = true
				}
			}
			st.Inserted += len(fs)
			child.nfacts += len(fs)
			st.Upserts++
		}
	}

	// Per touched relation: compact tombstoned blocks, then compute the
	// net block-level change against the parent.
	for name, w := range work {
		seg := w.seg
		if w.tombstones {
			kept := seg.blocks[:0]
			for _, b := range seg.blocks {
				if b.Facts != nil {
					kept = append(kept, b)
				}
			}
			seg.blocks = kept
			seg.byID = make(map[string]int, len(kept))
			for i, b := range kept {
				seg.byID[b.ID] = i
			}
		}
		rc := &RelChange{}
		for _, bid := range w.touched {
			var pblk Block
			inParent := false
			if w.parent != nil {
				if pi, ok := w.parent.byID[bid]; ok {
					pblk, inParent = w.parent.blocks[pi], true
				}
			}
			cblk := Block{}
			ci, inChild := seg.byID[bid]
			if inChild {
				cblk = seg.blocks[ci]
			}
			switch {
			case inParent && !inChild:
				rc.Removed = append(rc.Removed, pblk)
				child.nblocks--
			case !inParent && inChild:
				rc.Added = append(rc.Added, cblk)
				child.nblocks++
			case inParent && inChild && !sameFacts(pblk.Facts, cblk.Facts):
				rc.Modified = append(rc.Modified, cblk)
			}
		}
		if len(rc.Added) == 0 && len(rc.Removed) == 0 && len(rc.Modified) == 0 {
			// The relation netted out (e.g. only duplicate inserts):
			// restore the alias so downstream layers keep sharing the
			// parent's derived structures.
			if w.parent != nil {
				child.rels[name] = w.parent
			}
			continue
		}
		res.Changes.Rels[name] = rc
		st.BlocksAdded += len(rc.Added)
		st.BlocksRemoved += len(rc.Removed)
		st.BlocksModified += len(rc.Modified)
	}
	if res.Changes.Empty() {
		return d, res, nil
	}
	st.Rels = make([]string, 0, len(res.Changes.Rels))
	for name := range res.Changes.Rels {
		st.Rels = append(st.Rels, name)
	}
	sort.Strings(st.Rels)

	// Mark sharing: aliased segments must clone before any mutation;
	// cloned segments already carry cow, and the parent's fact slices
	// are now aliased by the clones, so the parent flips cow too. These
	// flags are only read by mutations, never by readers, so setting
	// them here does not race with concurrent reads of the parent.
	for name, seg := range d.rels {
		if child.rels[name] == seg {
			seg.shared = true
		}
		seg.cow = true
	}

	// Derive the columnar view incrementally when the parent has one
	// built, keeping the interned walk (and its compiled programs for
	// untouched relations) warm across the write.
	if pc := d.colMemo.Load(); pc != nil {
		child.colMemo.Store(deriveColumnar(pc, child, res.Changes))
	}
	return child, res, nil
}

// dedupeFacts drops exact duplicates, preserving first-occurrence order.
func dedupeFacts(fs []Fact) []Fact {
	out := make([]Fact, 0, len(fs))
	for _, f := range fs {
		dup := false
		for _, g := range out {
			if g.Equal(f) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return out
}

// sameFactSet reports set equality of two small fact slices.
func sameFactSet(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	for _, f := range a {
		found := false
		for _, g := range b {
			if f.Equal(g) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
