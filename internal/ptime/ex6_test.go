package ptime

import (
	"math/rand"
	"testing"

	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestDifferentialExample6 exercises the full Lemma 11 saturation +
// dissolution pipeline on the paper's Example 6 query (unsaturated, every
// mode-i atom attacked) and checks against the oracle.
func TestDifferentialExample6(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	q := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)")
	sats, diss := 0, 0
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(3)
		p.Domain = 1 + rng.Intn(2)
		p.ExtraPerBlock = 0.6
		d := workload.RandomDB(rng, q, p)
		if d.NumRepairs() > 1<<13 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Certain(q, d)
		if err != nil {
			t.Fatalf("err: %v\ndb:\n%s", err, d)
		}
		if got != want {
			t.Fatalf("ptime=%v naive=%v\ndb:\n%s", got, want, d)
		}
		sats += st.Saturations
		diss += st.Dissolutions
		if st.Fallbacks > 0 {
			t.Logf("trial %d: %d fallbacks", trial, st.Fallbacks)
		}
	}
	t.Logf("saturations=%d dissolutions=%d", sats, diss)
	if sats == 0 {
		t.Error("Example 6 should exercise the saturation path")
	}
}
