package ptime

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/naive"
	"cqa/internal/workload"
)

// TestStressSaturationPath hunts for queries that exercise the lazy
// saturation (Lemma 11) path and verifies agreement with the oracle.
func TestStressSaturationPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	sats, falls, tried := 0, 0, 0
	for trial := 0; trial < 60000 && tried < 800; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(4)
		p.PModeC = 0.2
		p.Vars = 4
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() || g.HasStrongCycle() {
			continue
		}
		tried++
		dp := workload.DefaultDBParams()
		dp.SeedMatches = 1 + rng.Intn(4)
		dp.Domain = 1 + rng.Intn(2)
		d := workload.RandomDB(rng, q, dp)
		if d.NumRepairs() > 1<<13 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Certain(q, d)
		if err != nil {
			t.Fatalf("err on %s: %v\ndb:\n%s", q, err, d)
		}
		if got != want {
			t.Fatalf("ptime=%v naive=%v\nq=%s\ndb:\n%s", got, want, q, d)
		}
		sats += st.Saturations
		falls += st.Fallbacks
	}
	t.Logf("tried=%d saturations=%d fallbacks=%d", tried, sats, falls)
}
