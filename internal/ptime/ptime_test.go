package ptime

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRejectsStrongCycle(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	if _, _, err := Certain(q, db.New()); err == nil {
		t.Fatal("expected error for coNP-complete query")
	}
}

func TestQ0Basic(t *testing.T) {
	q := workload.Q0() // R0(x | y), S0(y | x)
	// A perfect 2-cycle between blocks: every repair satisfies q.
	d := factsDB(t, `
		R0(a | 1)
		S0(1 | a)
	`)
	got, _, err := Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("single consistent match should be certain")
	}

	// Two choices for R0(a | *): one joins back, one does not.
	d2 := factsDB(t, `
		R0(a | 1)
		R0(a | 2)
		S0(1 | a)
	`)
	got, _, err = Certain(q, d2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("repair picking R0(a | 2) falsifies q")
	}

	// Both choices join back: certain again.
	d3 := factsDB(t, `
		R0(a | 1)
		R0(a | 2)
		S0(1 | a)
		S0(2 | a)
	`)
	got, stats, err := Certain(q, d3)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Errorf("both repairs of R0(a | *) satisfy q; want certain")
	}
	if stats.Dissolutions == 0 {
		t.Errorf("q0 on this instance should exercise dissolution, stats=%+v", stats)
	}
}

func TestQ0CrossBlockCycle(t *testing.T) {
	q := workload.Q0()
	// A 4-cycle in G(db): a -> 1 -> b -> 2 -> a. Its strong component has
	// an elementary cycle of length 4 > 2, so Lemma 16 deletes it and q
	// is not certain.
	d := factsDB(t, `
		R0(a | 1)
		S0(1 | b)
		R0(b | 2)
		S0(2 | a)
	`)
	got, _, err := Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ptime=%v naive=%v", got, want)
	}
	if want {
		t.Fatalf("test setup: expected q0 not certain on the 4-cycle instance")
	}
}

func differential(t *testing.T, q query.Query, d *db.DB) {
	t.Helper()
	if d.NumRepairs() > 1<<14 {
		return
	}
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Certain(q, d)
	if err != nil {
		t.Fatalf("ptime error on %s: %v\ndb:\n%s", q, err, d)
	}
	if got != want {
		t.Fatalf("ptime=%v naive=%v\nq = %s\ndb:\n%s", got, want, q, d)
	}
	dpll, _ := conp.Certain(q, d)
	if dpll != want {
		t.Fatalf("conp=%v naive=%v\nq = %s\ndb:\n%s", dpll, want, q, d)
	}
}

func TestDifferentialQ0(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := workload.Q0()
	for trial := 0; trial < 150; trial++ {
		d := workload.Q0Instance(rng, 2+rng.Intn(4), 1+rng.Intn(2))
		differential(t, q, d)
	}
	for trial := 0; trial < 150; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(4)
		p.Domain = 1 + rng.Intn(3)
		d := workload.RandomDB(rng, q, p)
		differential(t, q, d)
	}
}

func TestDifferentialCycle3(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	q := workload.CycleQuery(3)
	for trial := 0; trial < 120; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(3)
		p.Domain = 1 + rng.Intn(2)
		d := workload.RandomDB(rng, q, p)
		differential(t, q, d)
	}
}

func TestDifferentialFigure1Query(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := query.MustParse("R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)")
	for trial := 0; trial < 80; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(3)
		p.Domain = 1 + rng.Intn(2)
		p.ExtraPerBlock = 0.5
		d := workload.RandomDB(rng, q, p)
		differential(t, q, d)
	}
}

func TestDifferentialFigure2Query(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := query.MustParse("R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)")
	for trial := 0; trial < 80; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(3)
		p.Domain = 1 + rng.Intn(2)
		p.ExtraPerBlock = 0.5
		d := workload.RandomDB(rng, q, p)
		differential(t, q, d)
	}
}

func TestDifferentialCompositeKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	q := query.MustParse("R(x, y | z), S(y, z | x)")
	for trial := 0; trial < 80; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(3)
		p.Domain = 1 + rng.Intn(2)
		p.ExtraPerBlock = 0.5
		d := workload.RandomDB(rng, q, p)
		differential(t, q, d)
	}
}

// TestDifferentialRandomPTimeQueries fuzzes the full pipeline on random
// queries classified in P \ FO.
func TestDifferentialRandomPTimeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tried := 0
	for trial := 0; trial < 4000 && tried < 120; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(3)
		p.PConst = 0.05
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() || g.HasStrongCycle() {
			continue
		}
		tried++
		dp := workload.DefaultDBParams()
		dp.SeedMatches = 1 + rng.Intn(3)
		dp.Domain = 1 + rng.Intn(2)
		d := workload.RandomDB(rng, q, dp)
		differential(t, q, d)
	}
	if tried < 20 {
		t.Fatalf("only %d P-class random queries generated; loosen the generator", tried)
	}
}

// TestPTimeAlsoSolvesFOQueries: the Theorem 4 algorithm covers the FO
// case too (acyclic graphs have unattacked atoms all the way down).
func TestPTimeAlsoSolvesFOQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	q := query.MustParse("R(x | y), S(y | z)")
	for trial := 0; trial < 100; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		differential(t, q, d)
	}
}
