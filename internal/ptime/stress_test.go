package ptime

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/naive"
	"cqa/internal/workload"
)

func TestStressDissolution(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	dissolutions, levels := 0, 0
	q := workload.Q0()
	for trial := 0; trial < 600; trial++ {
		p := workload.DefaultDBParams()
		p.SeedMatches = 1 + rng.Intn(5)
		p.Domain = 1 + rng.Intn(3)
		p.ExtraPerBlock = 0.8
		d := workload.RandomDB(rng, q, p)
		if d.NumRepairs() > 1<<14 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Certain(q, d)
		if err != nil {
			t.Fatalf("err: %v\ndb:\n%s", err, d)
		}
		if got != want {
			t.Fatalf("ptime=%v naive=%v\ndb:\n%s", got, want, d)
		}
		dissolutions += st.Dissolutions
		levels += st.Levels
	}
	t.Logf("total dissolutions=%d levels=%d", dissolutions, levels)
	if dissolutions == 0 {
		t.Fatal("dissolution never exercised")
	}
}

func TestStressRandomPQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	tried, dissolved := 0, 0
	for trial := 0; trial < 15000 && tried < 250; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(4)
		p.PModeC = 0.15
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() || g.HasStrongCycle() {
			continue
		}
		tried++
		dp := workload.DefaultDBParams()
		dp.SeedMatches = 1 + rng.Intn(4)
		dp.Domain = 1 + rng.Intn(2)
		d := workload.RandomDB(rng, q, dp)
		if d.NumRepairs() > 1<<13 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Certain(q, d)
		if err != nil {
			t.Fatalf("err on %s: %v\ndb:\n%s", q, err, d)
		}
		if got != want {
			t.Fatalf("ptime=%v naive=%v\nq=%s\ndb:\n%s", got, want, q, d)
		}
		dissolved += st.Dissolutions
	}
	t.Logf("tried=%d dissolutions=%d", tried, dissolved)
}
