package ptime

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestSoakDifferential is the widest randomized sweep in the repository:
// deeper queries, heavier databases, and all three generators, checked
// against the oracle. Skipped under -short.
func TestSoakDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(9001))
	stats := struct {
		instances, dissolutions, saturations, fallbacks int
	}{}
	check := func(q query.Query, d *db.DB) {
		if d.NumRepairs() > 1<<14 {
			return
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Certain(q, d)
		if err != nil {
			t.Fatalf("err on %s: %v\ndb:\n%s", q, err, d)
		}
		if got != want {
			t.Fatalf("ptime=%v naive=%v\nq=%s\ndb:\n%s", got, want, q, d)
		}
		stats.instances++
		stats.dissolutions += st.Dissolutions
		stats.saturations += st.Saturations
		stats.fallbacks += st.Fallbacks
	}

	// Sweep 1: random P-class queries, deeper than the regular tests.
	tried := 0
	for trial := 0; trial < 60000 && tried < 400; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(5)
		p.PModeC = 0.25
		p.PConst = 0.1
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() || g.HasStrongCycle() {
			continue
		}
		tried++
		dp := workload.DefaultDBParams()
		dp.SeedMatches = 1 + rng.Intn(5)
		dp.Domain = 1 + rng.Intn(3)
		dp.ExtraPerBlock = 0.8
		check(q, workload.RandomDB(rng, q, dp))
	}

	// Sweep 2: structured generators on q0.
	q0 := workload.Q0()
	for trial := 0; trial < 120; trial++ {
		check(q0, workload.Q0Instance(rng, 2+rng.Intn(5), 1+rng.Intn(2)))
		check(q0, workload.BlockSizeSkewedDB(rng, 1+rng.Intn(4), 4))
	}

	// Sweep 3: the saturation-heavy Example 6 query.
	ex6 := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)")
	for trial := 0; trial < 120; trial++ {
		dp := workload.DefaultDBParams()
		dp.SeedMatches = 1 + rng.Intn(3)
		dp.Domain = 1 + rng.Intn(2)
		check(ex6, workload.RandomDB(rng, ex6, dp))
	}

	t.Logf("soak: %d instances, %d dissolutions, %d saturations, %d fallbacks",
		stats.instances, stats.dissolutions, stats.saturations, stats.fallbacks)
	if stats.instances < 300 {
		t.Errorf("soak covered only %d instances", stats.instances)
	}
	if stats.fallbacks > 0 {
		t.Logf("NOTE: %d exact-search fallbacks occurred (sound but outside the Lemma 11 construction)", stats.fallbacks)
	}
}
