// Package ptime implements the polynomial-time algorithm of Theorem 4
// (Koutris & Wijsen, PODS 2015): CERTAINTY(q) for self-join-free Boolean
// conjunctive queries whose attack graph contains no strong cycle.
//
// The recursion follows the proof of Theorem 4, by induction on the
// number of mode-i atoms:
//
//  1. simplify the instance (purify, type, Lemma 12 pattern elimination
//     and key packing, Lemma 11 saturation);
//  2. if some mode-i atom is unattacked, branch over its blocks via
//     Lemma 9 and recurse on the instantiated residue query;
//  3. otherwise gpurify (Lemma 17), pick a premier Markov cycle
//     (Lemma 15), dissolve it (Definition 5, Lemmas 13/18), and recurse
//     on dissolve(C, q) — the mode-i atom count strictly decreases.
package ptime

import (
	"fmt"
	"strings"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/dissolve"
	"cqa/internal/evalctx"
	"cqa/internal/markov"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/simplify"
	"cqa/internal/trace"
)

// Stats aggregates effort counters across the recursion.
type Stats struct {
	Levels       int // recursion depth reached
	Branches     int // Lemma 9 block/fact branches explored
	Dissolutions int // Markov-cycle dissolutions performed
	Saturations  int // Lemma 11 atoms added
	GPurifyRuns  int
	TFacts       int // facts emitted by dissolution encodings
	// Fallbacks counts subinstances routed to the exact search because a
	// structural invariant of the reduction could not be established
	// (see the package comment); 0 on every instance we have generated.
	Fallbacks int
}

// Certain decides CERTAINTY(q) for queries without a strong attack cycle.
// It returns an error when the attack graph has a strong cycle (the
// problem is coNP-complete there; use the conp engine), or when the input
// violates a structural invariant of the reduction.
func Certain(q query.Query, d *db.DB) (bool, *Stats, error) {
	ok, st, _, err := CertainTraced(q, d, false)
	return ok, st, err
}

// CertainTraced is Certain with an optional step-by-step trace of the
// Theorem 4 pipeline: purification effects, Lemma 9 branches, Lemma 11
// saturations, gpurification, and Markov-cycle dissolutions.
func CertainTraced(q query.Query, d *db.DB, trace bool) (bool, *Stats, []string, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return false, nil, nil, err
	}
	if g.HasStrongCycle() {
		return false, nil, nil, fmt.Errorf("ptime: attack graph of %s has a strong cycle; CERTAINTY is coNP-complete", q)
	}
	st := &Stats{}
	ctx := &solver{stats: st, tracing: trace}
	ok, err := ctx.solve(q, d, 0)
	return ok, st, ctx.trace, err
}

// CertainNoStrongCycle runs the Theorem 4 algorithm for a query already
// known to have no strong attack cycle (for example from a compiled
// plan), skipping the attack-graph construction and strong-cycle check
// that Certain performs on every call. The result is meaningless on
// strong-cycle queries.
func CertainNoStrongCycle(q query.Query, d *db.DB) (bool, *Stats, error) {
	return CertainNoStrongCycleChecked(q, d, nil)
}

// CertainNoStrongCycleChecked is CertainNoStrongCycle under a
// cancellation/budget checker: the lemma loops poll chk once per
// recursion level and per Lemma 9 branch, and the exact-search fallback
// inherits the same checker, so one budget governs the whole pipeline.
// A non-nil error means the evaluation was cut short and the boolean is
// meaningless. A nil checker enforces nothing.
func CertainNoStrongCycleChecked(q query.Query, d *db.DB, chk *evalctx.Checker) (bool, *Stats, error) {
	st := &Stats{}
	ctx := &solver{stats: st, chk: chk, memoCap: chk.MemoCap()}
	sp := chk.Tracer().Begin(trace.StagePTime)
	ok, err := ctx.solve(q, d, 0)
	sp.End()
	if tr := chk.Tracer(); tr != nil {
		tr.Add(trace.StagePTime, trace.CtrSteps, int64(st.Levels))
		tr.Add(trace.StagePTime, trace.CtrBranches, int64(st.Branches))
		tr.Add(trace.StagePTime, trace.CtrDissolutions, int64(st.Dissolutions))
		tr.Add(trace.StagePTime, trace.CtrFacts, int64(st.TFacts))
	}
	return ok, st, err
}

type solver struct {
	stats   *Stats
	tracing bool
	trace   []string
	chk     *evalctx.Checker
	// memo caches instantiated-query results per database identity; the
	// Lemma 9 branch recurses many times against the same database.
	memo     map[*db.DB]map[string]bool
	memoSize int
	memoCap  int // memo-entry ceiling across all databases (0 = unlimited)
}

func (s *solver) tracef(depth int, format string, args ...any) {
	if !s.tracing {
		return
	}
	s.trace = append(s.trace, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
}

func (s *solver) memoGet(d *db.DB, key string) (bool, bool) {
	if s.memo == nil {
		return false, false
	}
	m := s.memo[d]
	if m == nil {
		return false, false
	}
	v, ok := m[key]
	return v, ok
}

func (s *solver) memoPut(d *db.DB, key string, v bool) {
	if s.memoCap > 0 && s.memoSize >= s.memoCap {
		// Memo budget exhausted: keep computing without caching. The
		// recursion stays correct, it just re-derives shared residues.
		return
	}
	if s.memo == nil {
		s.memo = make(map[*db.DB]map[string]bool)
	}
	m := s.memo[d]
	if m == nil {
		m = make(map[string]bool)
		s.memo[d] = m
	}
	if _, ok := m[key]; !ok {
		s.memoSize++
	}
	m[key] = v
}

const maxDepth = 64

func (s *solver) solve(q query.Query, d *db.DB, depth int) (bool, error) {
	if err := s.chk.Step(); err != nil {
		return false, err
	}
	if depth > maxDepth {
		return false, fmt.Errorf("ptime: recursion exceeded depth %d on %s", maxDepth, q)
	}
	if depth+1 > s.stats.Levels {
		s.stats.Levels = depth + 1
	}
	if q.Empty() {
		return true, nil
	}
	if q.InconsistencyCount() == 0 {
		// All atoms are known consistent: the only repair keeps every
		// mode-c fact, so certainty coincides with satisfaction.
		return match.Satisfies(q, d), nil
	}
	if v, ok := s.memoGet(d, q.Canonical()); ok {
		return v, nil
	}

	// Step 1: purify; an empty purified database admits no embedding, so
	// some repair falsifies q.
	pd, _, err := match.PurifyTraceChecked(q, d, s.chk)
	if err != nil {
		return false, err
	}
	if pd.Len() != d.Len() {
		s.tracef(depth, "purify (Lemma 1): %d -> %d facts", d.Len(), pd.Len())
	}
	ms, err := match.AllMatchesChecked(q, pd, s.chk)
	if err != nil {
		return false, err
	}
	if len(ms) == 0 {
		s.tracef(depth, "no embedding survives purification: NOT certain")
		s.memoPut(d, q.Canonical(), false)
		return false, nil
	}
	td, err := simplify.TypeDB(q, pd)
	if err != nil {
		return false, err
	}
	cur, curDB := q, td

	if step, changed := simplify.ElimPatterns(cur); changed {
		curDB, err = step.TransformDB(curDB)
		if err != nil {
			return false, err
		}
		s.tracef(depth, "eliminate patterns (Lemma 12): %s", step.Q)
		cur = step.Q
	}
	step, changed, err := simplify.PackCompositeKeys(cur)
	if err != nil {
		return false, err
	}
	if changed {
		curDB, err = step.TransformDB(curDB)
		if err != nil {
			return false, err
		}
		s.tracef(depth, "pack composite keys (Lemma 12): %s", step.Q)
		cur = step.Q
	}

	res, err := s.branch(cur, curDB, depth)
	if err != nil {
		return false, err
	}
	s.memoPut(d, q.Canonical(), res)
	return res, nil
}

// branch dispatches between the Lemma 9 case, incremental saturation, and
// the dissolution case. Saturation happens lazily — only when every
// mode-i atom is attacked, which is the only case whose correctness
// (Lemma 15) depends on it — and its database side is computed from the
// gpurified instance, where the per-gblock support structure pins a
// unique z-value per x-value.
func (s *solver) branch(q query.Query, d *db.DB, depth int) (bool, error) {
	for round := 0; ; round++ {
		if round > 2*len(q.Vars())*len(q.Vars())+4 {
			return false, fmt.Errorf("ptime: saturation loop did not converge on %s", q)
		}
		g, err := attack.BuildGraph(q)
		if err != nil {
			return false, err
		}
		if g.HasStrongCycle() {
			return false, fmt.Errorf("ptime: simplification introduced a strong cycle in %s", q)
		}
		for _, i := range g.Unattacked() {
			if q.Atoms[i].Rel.Mode != schema.ModeI {
				continue
			}
			s.tracef(depth, "branch on unattacked atom %s (Lemma 9)", q.Atoms[i].Rel.Name)
			return s.lemma9(q, q.Atoms[i], d, depth)
		}
		// All mode-i atoms are attacked: gpurify, then saturate one step
		// if needed, else dissolve.
		s.stats.GPurifyRuns++
		gd, err := match.GPurify(q, d)
		if err != nil {
			return false, err
		}
		if gd.Len() != d.Len() {
			s.tracef(depth, "gpurify (Lemma 17): %d -> %d facts", d.Len(), gd.Len())
		}
		gms, err := match.AllMatchesChecked(q, gd, s.chk)
		if err != nil {
			return false, err
		}
		if len(gms) == 0 {
			s.tracef(depth, "no embedding survives gpurification: NOT certain")
			return false, nil
		}
		sat, err := simplify.IsSaturated(q)
		if err != nil {
			return false, err
		}
		if sat {
			return s.dissolveCase(q, gd, depth)
		}
		steps, err := simplify.Saturate(q)
		if err != nil || len(steps) == 0 {
			return false, fmt.Errorf("ptime: saturation of %s failed: %v", q, err)
		}
		nd, err := steps[0].TransformDB(gd)
		if err != nil {
			// The projection was inconsistent: our Lemma 11 database
			// construction does not cover this instance. Fall back to the
			// exact engine rather than give a wrong answer.
			s.stats.Fallbacks++
			certain, _, cerr := conp.CertainChecked(q, d, s.chk)
			if cerr != nil {
				return false, cerr
			}
			return certain, nil
		}
		s.stats.Saturations++
		s.tracef(depth, "saturate (Lemma 11): %s", steps[0].Name)
		q, d = steps[0].Q, nd
	}
}

// lemma9 implements the unattacked-atom branch: q is certain iff some
// R-block matches F's key pattern and every fact of the block extends the
// valuation and leaves a certain residue.
func (s *solver) lemma9(q query.Query, f query.Atom, d *db.DB, depth int) (bool, error) {
	rest := q.Remove(f)
	for _, b := range candidateBlocks(d, f) {
		if len(b.Facts) == 0 {
			continue
		}
		theta := query.Valuation{}
		if !match.UnifyTerms(f.KeyArgs(), b.Facts[0].Key(), theta) {
			continue
		}
		allGood := true
		for _, fact := range b.Facts {
			if err := s.chk.Step(); err != nil {
				return false, err
			}
			s.stats.Branches++
			thetaPlus := theta.Clone()
			if !match.UnifyTerms(f.NonKeyArgs(), fact.NonKey(), thetaPlus) {
				allGood = false
				break
			}
			ok, err := s.solve(rest.Substitute(thetaPlus), d, depth+1)
			if err != nil {
				return false, err
			}
			if !ok {
				allGood = false
				break
			}
		}
		if allGood {
			return true, nil
		}
	}
	return false, nil
}

// candidateBlocks returns the blocks the Lemma 9 branch must try for
// atom f: when f's key is fully ground (the common case on instantiated
// residue queries) the single block is hash-probed in O(1); otherwise
// every block of the relation (a cached slice) is scanned.
func candidateBlocks(d *db.DB, f query.Atom) []db.Block {
	keyConsts := make([]query.Const, f.Rel.KeyLen)
	for i, t := range f.KeyArgs() {
		if !t.IsConst() {
			return d.BlocksOf(f.Rel.Name)
		}
		keyConsts[i] = t.Const()
	}
	b, ok := d.BlockByKey(f.Rel.Name, keyConsts)
	if !ok {
		return nil
	}
	return []db.Block{b}
}

// dissolveCase handles the saturated, all-mode-i-attacked regime: find a
// premier Markov cycle and dissolve it. The database is already
// gpurified by the caller.
func (s *solver) dissolveCase(q query.Query, gd *db.DB, depth int) (bool, error) {
	m, err := markov.Build(q)
	if err != nil {
		return false, err
	}
	g, err := attack.BuildGraph(q)
	if err != nil {
		return false, err
	}
	c := m.PremierCycle(g)
	if c == nil {
		// Lemma 15 guarantees a premier cycle in this regime; reaching
		// this point means our saturation diverged from the technical
		// report's construction on this query. Stay sound: exact search.
		s.stats.Fallbacks++
		s.tracef(depth, "FALLBACK: no premier cycle; exact search")
		certain, _, err := conp.CertainChecked(q, gd, s.chk)
		if err != nil {
			return false, err
		}
		return certain, nil
	}
	s.tracef(depth, "dissolve premier Markov cycle %v (Definition 5)", c)
	dd, err := dissolve.Dissolve(q, m, c)
	if err != nil {
		return false, err
	}
	if dd.QStar.InconsistencyCount() >= q.InconsistencyCount() {
		return false, fmt.Errorf("ptime: dissolution did not decrease incnt on %s", q)
	}
	nd, dst, err := dd.TransformDB(gd)
	if err != nil {
		return false, err
	}
	s.stats.Dissolutions++
	s.stats.TFacts += dst.TFacts
	s.tracef(depth, "encoded %d components, %d supported cycles, %d T-facts; recurse on %s",
		dst.Components, dst.KCycles, dst.TFacts, dd.QStar)
	return s.solve(dd.QStar, nd, depth+1)
}
