package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cqa/internal/catalog"
	"cqa/internal/core"
	"cqa/internal/workload"
)

func newTestServer() *Server {
	return New(Config{CacheSize: 256, MaxWorkers: 8})
}

// do issues one request against the handler and decodes the JSON reply
// into out (skipped when out is nil).
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: invalid JSON: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec
}

func TestHealthzAndMetrics(t *testing.T) {
	h := newTestServer().Handler()
	if rec := do(t, h, "GET", "/healthz", "", nil); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec := do(t, h, "GET", "/metrics", "", nil)
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, frag := range []string{"cqa_uptime_seconds", "cqa_plancache_hits_total", "cqa_store_databases"} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Errorf("metrics missing %q:\n%s", frag, rec.Body.String())
		}
	}
}

func TestClassifyEndpoint(t *testing.T) {
	h := newTestServer().Handler()
	var resp classifyResponse
	rec := do(t, h, "POST", "/v1/classify", `{"query": "R(x | y), S(y | z)"}`, &resp)
	if rec.Code != 200 || resp.Class != "FO" || resp.Cached {
		t.Fatalf("cold classify: %d %+v", rec.Code, resp)
	}
	// A textual variant hits the same cached plan.
	rec = do(t, h, "POST", "/v1/classify", `{"query": "  S(y | z) , R(x | y) "}`, &resp)
	if rec.Code != 200 || !resp.Cached || resp.Query != "R(x | y), S(y | z)" {
		t.Fatalf("warm classify: %d %+v", rec.Code, resp)
	}
	var conp classifyResponse
	do(t, h, "POST", "/v1/classify", `{"query": "R(x | y), S(u | y)"}`, &conp)
	if conp.Class != "coNP-complete" || !conp.HasStrongCycle {
		t.Errorf("coNP classify: %+v", conp)
	}
}

func TestClassifyErrors(t *testing.T) {
	h := newTestServer().Handler()
	if rec := do(t, h, "POST", "/v1/classify", `{not json`, nil); rec.Code != 400 {
		t.Errorf("malformed JSON: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/classify", `{}`, nil); rec.Code != 400 {
		t.Errorf("missing query: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/classify", `{"query": "R(("}`, nil); rec.Code != 400 {
		t.Errorf("syntax error: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/classify", `{"query": "R(x | y), R(y | z)"}`, nil); rec.Code != 400 {
		t.Errorf("self-join: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/nope", "", nil); rec.Code != 404 {
		t.Errorf("unknown route: %d", rec.Code)
	}
}

func TestCertainInlineFactsAllEngines(t *testing.T) {
	h := newTestServer().Handler()
	body := func(engine string) string {
		return fmt.Sprintf(`{"query": "R(x | y), S(y | z)", "engine": %q,
			"facts": "R(a | b)\nS(b | c)\n"}`, engine)
	}
	for _, engine := range []string{"auto", "fo", "ptime", "conp", "naive"} {
		var resp certainResponse
		rec := do(t, h, "POST", "/v1/certain", body(engine), &resp)
		if rec.Code != 200 || !resp.Certain {
			t.Errorf("engine %s: %d %+v", engine, rec.Code, resp)
		}
		want := engine
		if engine == "auto" {
			want = "fo"
		}
		if resp.Engine != want {
			t.Errorf("engine %s: dispatched to %s", engine, resp.Engine)
		}
	}
	if rec := do(t, h, "POST", "/v1/certain", body("zzz"), nil); rec.Code != 400 {
		t.Errorf("unknown engine: %d", rec.Code)
	}
	// Forcing FO on a cyclic query is unprocessable.
	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R0(x | y), S0(y | x)", "engine": "fo", "facts": "R0(a | 1)\nS0(1 | a)\n"}`, nil)
	if rec.Code != 422 {
		t.Errorf("fo on cyclic: %d %s", rec.Code, rec.Body.String())
	}
	// A mode-c violation in inline facts is a client error.
	rec = do(t, h, "POST", "/v1/certain",
		`{"query": "T#c(x | y)", "facts": "T#c(a | 1)\nT#c(a | 2)\n"}`, nil)
	if rec.Code != 400 {
		t.Errorf("mode-c violation: %d", rec.Code)
	}
}

func TestCertainStoredDB(t *testing.T) {
	h := newTestServer().Handler()
	rec := do(t, h, "PUT", "/v1/db/prod", "R(a | b)\nR(a | dead)\nS(b | c)\n", nil)
	if rec.Code != 200 {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body.String())
	}
	var resp certainResponse
	rec = do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "prod"}`, &resp)
	if rec.Code != 200 || resp.Certain || resp.DB == nil || resp.DB.Version != 1 {
		t.Fatalf("stored db: %d %+v", rec.Code, resp)
	}
	// Replacing the database bumps the version new requests see.
	do(t, h, "PUT", "/v1/db/prod", "R(a | b)\nS(b | c)\n", nil)
	rec = do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "prod"}`, &resp)
	if rec.Code != 200 || !resp.Certain || resp.DB.Version != 2 {
		t.Fatalf("after swap: %d %+v", rec.Code, resp)
	}
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y)", "db": "missing"}`, nil); rec.Code != 404 {
		t.Errorf("unknown db: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y)"}`, nil); rec.Code != 400 {
		t.Errorf("neither db nor facts: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y)", "db": "prod", "facts": "R(a | b)\n"}`, nil); rec.Code != 400 {
		t.Errorf("both db and facts: %d", rec.Code)
	}
	// Stored signature R(a | b) conflicts with a composite-key query.
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x, y | z)", "db": "prod"}`, nil); rec.Code != 400 {
		t.Errorf("schema mismatch: %d %s", rec.Code, rec.Body.String())
	}
}

// TestIndexCacheCounters: N requests against one named-snapshot version
// build the index exactly once — the /metrics counters show one miss and
// N-1 hits, i.e. zero per-request index builds after the first touch.
func TestIndexCacheCounters(t *testing.T) {
	h := newTestServer().Handler()
	if rec := do(t, h, "PUT", "/v1/db/prod", "R(a | b)\nR(a | dead)\nS(b | c)\n", nil); rec.Code != 200 {
		t.Fatalf("upload: %d", rec.Code)
	}
	const requests = 6
	for i := 0; i < requests; i++ {
		body := `{"query": "R(x | y), S(y | z)", "db": "prod"}`
		if i%2 == 1 {
			body = `{"query": "R(x | y), S(y | z)", "free": ["x"], "db": "prod"}`
			if rec := do(t, h, "POST", "/v1/answers", body, nil); rec.Code != 200 {
				t.Fatalf("answers %d: %d", i, rec.Code)
			}
			continue
		}
		if rec := do(t, h, "POST", "/v1/certain", body, nil); rec.Code != 200 {
			t.Fatalf("certain %d: %d", i, rec.Code)
		}
	}
	metric := func() (hits, misses int) {
		rec := do(t, h, "GET", "/metrics", "", nil)
		for _, line := range strings.Split(rec.Body.String(), "\n") {
			if strings.HasPrefix(line, "cqa_indexcache_hits_total ") {
				fmt.Sscanf(line, "cqa_indexcache_hits_total %d", &hits)
			}
			if strings.HasPrefix(line, "cqa_indexcache_misses_total ") {
				fmt.Sscanf(line, "cqa_indexcache_misses_total %d", &misses)
			}
		}
		return hits, misses
	}
	hits, misses := metric()
	if misses != 1 || hits != requests-1 {
		t.Fatalf("hits=%d misses=%d; want %d, 1 (one build per snapshot version)", hits, misses, requests-1)
	}
	// A new version of the snapshot costs exactly one more build.
	do(t, h, "PUT", "/v1/db/prod", "R(a | b)\nS(b | c)\n", nil)
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "prod"}`, nil); rec.Code != 200 {
		t.Fatalf("after swap: %d", rec.Code)
	}
	if hits, misses = metric(); misses != 2 || hits != requests-1 {
		t.Errorf("after swap: hits=%d misses=%d; want %d, 2", hits, misses, requests-1)
	}
}

func TestAnswersEndpoint(t *testing.T) {
	h := newTestServer().Handler()
	body := `{"query": "Product(pid | sid), Supplier(sid | 'DE')", "free": ["pid"],
		"facts": "Product(p1 | acme)\nProduct(p2 | globex)\nProduct(p2 | initech)\nSupplier(acme | DE)\nSupplier(globex | DE)\nSupplier(initech | US)\n"}`
	var resp answersResponse
	rec := do(t, h, "POST", "/v1/answers", body, &resp)
	if rec.Code != 200 {
		t.Fatalf("answers: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Count != 1 || resp.Answers[0]["pid"] != "p1" {
		t.Errorf("answers = %+v", resp)
	}
	if rec := do(t, h, "POST", "/v1/answers", `{"query": "R(x | y)", "facts": "R(a | b)\n"}`, nil); rec.Code != 400 {
		t.Errorf("missing free: %d", rec.Code)
	}
	rec = do(t, h, "POST", "/v1/answers", `{"query": "R(x | y)", "free": ["nope"], "facts": "R(a | b)\n"}`, nil)
	if rec.Code != 422 {
		t.Errorf("unknown free var: %d", rec.Code)
	}
}

func TestRewriteEndpoint(t *testing.T) {
	h := newTestServer().Handler()
	var resp rewriteResponse
	rec := do(t, h, "POST", "/v1/rewrite", `{"query": "R(x | y), S(y | 'b')"}`, &resp)
	if rec.Code != 200 || resp.Dialect != "logic" || !strings.Contains(resp.Rewriting, "∃") {
		t.Fatalf("logic rewrite: %d %+v", rec.Code, resp)
	}
	rec = do(t, h, "POST", "/v1/rewrite", `{"query": "R(x | y), S(y | 'b')", "dialect": "sql"}`, &resp)
	if rec.Code != 200 || !strings.Contains(resp.Rewriting, "NOT EXISTS") {
		t.Fatalf("sql rewrite: %d %+v", rec.Code, resp)
	}
	if rec := do(t, h, "POST", "/v1/rewrite", `{"query": "R0(x | y), S0(y | x)"}`, nil); rec.Code != 422 {
		t.Errorf("non-FO rewrite: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/rewrite", `{"query": "R(x | y)", "dialect": "cobol"}`, nil); rec.Code != 400 {
		t.Errorf("unknown dialect: %d", rec.Code)
	}
}

func TestCatalogEndpoint(t *testing.T) {
	h := newTestServer().Handler()
	var entries []catalogEntry
	rec := do(t, h, "GET", "/v1/catalog", "", &entries)
	if rec.Code != 200 || len(entries) != len(catalog.Entries()) {
		t.Fatalf("catalog: %d, %d entries", rec.Code, len(entries))
	}
}

func TestDBLifecycle(t *testing.T) {
	h := newTestServer().Handler()
	var snap snapshotInfo
	rec := do(t, h, "PUT", "/v1/db/d1", "R(a | b)\nR(a | c)\n", &snap)
	if rec.Code != 200 || snap.Facts != 2 || snap.Blocks != 1 || snap.Version != 1 {
		t.Fatalf("put: %d %+v", rec.Code, snap)
	}
	rec = do(t, h, "GET", "/v1/db/d1", "", &snap)
	if rec.Code != 200 || snap.Name != "d1" {
		t.Fatalf("get: %d %+v", rec.Code, snap)
	}
	var list []snapshotInfo
	rec = do(t, h, "GET", "/v1/db", "", &list)
	if rec.Code != 200 || len(list) != 1 {
		t.Fatalf("list: %d %+v", rec.Code, list)
	}
	if rec := do(t, h, "DELETE", "/v1/db/d1", "", nil); rec.Code != 204 {
		t.Errorf("delete: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/v1/db/d1", "", nil); rec.Code != 404 {
		t.Errorf("get after delete: %d", rec.Code)
	}
	if rec := do(t, h, "DELETE", "/v1/db/d1", "", nil); rec.Code != 404 {
		t.Errorf("double delete: %d", rec.Code)
	}
	if rec := do(t, h, "PUT", "/v1/db/bad", "R(a | b\n", nil); rec.Code != 400 {
		t.Errorf("malformed upload: %d", rec.Code)
	}
	if rec := do(t, h, "PUT", "/v1/db/bad", "T#c(a | 1)\nT#c(a | 2)\n", nil); rec.Code != 400 {
		t.Errorf("mode-c violating upload: %d", rec.Code)
	}
}

// TestCertainAllCatalogQueries serves every catalog query over HTTP on a
// generated instance and cross-checks the answer against the in-process
// engine — the acceptance check that FO, P, and coNP engines are all
// reachable through /v1/certain.
func TestCertainAllCatalogQueries(t *testing.T) {
	h := newTestServer().Handler()
	engines := map[string]bool{}
	rng := rand.New(rand.NewSource(1))
	p := workload.DefaultDBParams()
	p.SeedMatches = 2
	for _, e := range catalog.Entries() {
		q := e.MustQuery()
		d := workload.RandomDB(rng, q, p)
		want, err := core.Certain(q, d, core.Options{})
		if err != nil {
			t.Fatalf("%s: local: %v", e.Name, err)
		}
		payload, err := json.Marshal(certainRequest{Query: e.Query, Facts: d.String() + "\n"})
		if err != nil {
			t.Fatal(err)
		}
		var resp certainResponse
		rec := do(t, h, "POST", "/v1/certain", string(payload), &resp)
		if rec.Code != 200 {
			t.Fatalf("%s: %d %s", e.Name, rec.Code, rec.Body.String())
		}
		if resp.Certain != want.Certain || resp.Class != want.Class.String() {
			t.Errorf("%s: served %+v, local %+v", e.Name, resp, want)
		}
		engines[resp.Engine] = true
	}
	for _, engine := range []string{"fo", "ptime", "conp"} {
		if !engines[engine] {
			t.Errorf("engine %s never dispatched across the catalog", engine)
		}
	}
}

// TestConcurrentCertainAndUploads hammers the plan cache from 32
// goroutines while snapshots are swapped underneath; run with -race.
func TestConcurrentCertainAndUploads(t *testing.T) {
	srv := New(Config{CacheSize: 8, MaxWorkers: 16})
	h := srv.Handler()
	queries := []string{
		"R(x | y), S(y | z)",
		"R0(x | y), S0(y | x)",
		"R(x | y), S(u | y)",
		"A(x | y), B(y | z), C(z | w)",
	}
	if rec := do(t, h, "PUT", "/v1/db/hot", "R(a | b)\nS(b | c)\n", nil); rec.Code != 200 {
		t.Fatal("seed upload failed")
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%8 == 0 {
					// Writers swap in a fresh snapshot.
					facts := fmt.Sprintf("R(a | b%d)\nS(b%d | c)\n", i, i)
					req := httptest.NewRequest("PUT", "/v1/db/hot", strings.NewReader(facts))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != 200 {
						t.Errorf("writer %d: %d %s", g, rec.Code, rec.Body.String())
						return
					}
					continue
				}
				qtext := queries[(g+i)%len(queries)]
				body, _ := json.Marshal(certainRequest{Query: qtext, DB: "hot"})
				req := httptest.NewRequest("POST", "/v1/certain", strings.NewReader(string(body)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("reader %d: %d %s", g, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := srv.Cache().Stats()
	if st.Hits == 0 {
		t.Error("no cache hits under concurrency")
	}
}

func TestDBMutateEndpoint(t *testing.T) {
	h := newTestServer().Handler()
	if rec := do(t, h, "PUT", "/v1/db/prod", "R(a | 1)\nR(a | 2)\nS(1 | z)\n", nil); rec.Code != 200 {
		t.Fatalf("put: %d %s", rec.Code, rec.Body.String())
	}
	var resp mutateResponse
	rec := do(t, h, "POST", "/v1/db/prod/facts",
		`{"insert": ["R(b | 1)"], "delete": ["R(a | 2)"], "upsert": [["S(1 | z)", "S(1 | w)"]]}`, &resp)
	if rec.Code != 200 {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body.String())
	}
	if resp.DB.Version != 2 || resp.DB.Facts != 4 {
		t.Errorf("db = %+v", resp.DB)
	}
	if resp.Stats.Inserted != 3 || resp.Stats.Deleted != 2 || resp.Stats.Upserts != 1 {
		t.Errorf("stats = %+v", resp.Stats)
	}

	// Write-then-read: a query against the name sees the new version.
	var cert certainResponse
	rec = do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "prod"}`, &cert)
	if rec.Code != 200 {
		t.Fatalf("certain: %d %s", rec.Code, rec.Body.String())
	}
	if cert.DB == nil || cert.DB.Version != 2 {
		t.Errorf("read saw %+v, want version 2", cert.DB)
	}
	if !cert.Certain {
		// R(b | 1) joins S(1 | z) and S(1 | w)... but block S(1) is now
		// uncertain between z and w; block R(a) is the singleton R(a | 1)
		// joining S(1)'s block too. Every repair keeps one S(1 | *) fact,
		// and both satisfy the join, so the query is certain.
		t.Error("mutated database should certainly satisfy the query")
	}

	// An idempotent replay publishes nothing new.
	var again mutateResponse
	do(t, h, "POST", "/v1/db/prod/facts", `{"insert": ["R(b | 1)"]}`, &again)
	if again.DB.Version != 2 || again.Stats.Noops != 1 {
		t.Errorf("idempotent mutate = %+v", again)
	}

	rec = do(t, h, "GET", "/metrics", "", nil)
	for _, frag := range []string{"cqa_db_mutations_total 2", "cqa_db_apply_duration_seconds_count 2"} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}
}

func TestDBMutateErrors(t *testing.T) {
	h := newTestServer().Handler()
	if rec := do(t, h, "POST", "/v1/db/ghost/facts", `{"insert": ["R(a | 1)"]}`, nil); rec.Code != 404 {
		t.Errorf("unknown db: %d", rec.Code)
	}
	do(t, h, "PUT", "/v1/db/prod", "R(a | 1)\nT#c(k | 1)\n", nil)
	cases := []struct {
		body string
		want int
	}{
		{`{}`, 400},                                     // empty delta
		{`{"insert": ["R(a | "]}`, 400},                 // malformed fact
		{`{"delete": ["R(a | "]}`, 400},                 // malformed fact
		{`{"upsert": [["R(a | 1)", "R(b | 1)"]]}`, 400}, // key-mixing block
		{`{"upsert": [[]]}`, 400},                       // empty block
		{`{"insert": ["T#c(k | 2)"]}`, 400},             // mode-c violation
		{`not json`, 400},
	}
	for _, c := range cases {
		if rec := do(t, h, "POST", "/v1/db/prod/facts", c.body, nil); rec.Code != c.want {
			t.Errorf("%s: %d, want %d (%s)", c.body, rec.Code, c.want, rec.Body.String())
		}
	}
	// Nothing published along the way.
	var info snapshotInfo
	do(t, h, "GET", "/v1/db/prod", "", &info)
	if info.Version != 1 {
		t.Errorf("version = %d after rejected deltas", info.Version)
	}
}

func TestDBBodyTooLarge(t *testing.T) {
	h := newTestServer().Handler()
	big := strings.Repeat("x", maxBodyBytes+1)
	rec := do(t, h, "PUT", "/v1/db/prod", big, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("put: %d", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "body_too_large" {
		t.Errorf("put error envelope = %+v (%v)", er, err)
	}
	do(t, h, "PUT", "/v1/db/prod", "R(a | 1)\n", nil)
	rec = do(t, h, "POST", "/v1/db/prod/facts", `{"insert": ["`+big+`"]}`, nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("mutate: %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Code != "body_too_large" {
		t.Errorf("mutate error envelope = %+v (%v)", er, err)
	}
}
