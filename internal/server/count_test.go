package server

import (
	"fmt"
	"strings"
	"testing"
)

// hubFacts builds the hub gadget for q = R(x | y), S(y | z): n R-blocks
// that each choose between the shared hub value and a dead end, plus one
// 2-fact S-block on the hub. One constraint component with assignment
// space 2^(n+1), so n >= 22 pushes past the exact enumeration bound
// while the match count stays linear.
func hubFacts(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "R(x%d | hub)\nR(x%d | dead%d)\n", i, i, i)
	}
	b.WriteString("S(hub | z0)\nS(hub | z1)\n")
	return b.String()
}

func TestCountExactInline(t *testing.T) {
	h := newTestServer().Handler()
	var resp countResponse
	rec := do(t, h, "POST", "/v1/count",
		`{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nR(a | c)\nS(b | d)\n"}`, &resp)
	if rec.Code != 200 {
		t.Fatalf("count: %d %s", rec.Code, rec.Body.String())
	}
	// Two repairs: {R(a|b), S(b|d)} satisfies, {R(a|c), S(b|d)} does not.
	if !resp.Exact || resp.Satisfying != "1" || resp.Total != "2" || resp.Fraction != 0.5 {
		t.Errorf("exact count: %+v", resp)
	}
	if resp.Confidence != nil || resp.Sampled != 0 {
		t.Errorf("exact count carries estimate fields: %+v", resp)
	}
	if got := rec.Header().Get("X-CQA-Degraded"); got != "" {
		t.Errorf("exact count marked degraded %q", got)
	}
}

func TestCountDegradesOnOversizedComponent(t *testing.T) {
	h := newTestServer().Handler()
	body := fmt.Sprintf(`{"query": "R(x | y), S(y | z)", "facts": %q}`, hubFacts(64))
	var resp countResponse
	rec := do(t, h, "POST", "/v1/count", body, &resp)
	if rec.Code != 200 {
		t.Fatalf("oversized component must degrade, not fail: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Exact || resp.Satisfying != "" || resp.Confidence == nil || resp.Sampled != 1 {
		t.Errorf("degraded count: %+v", resp)
	}
	// All but 2 of the 2^65 assignments are satisfying.
	if resp.Fraction < 0.99 || resp.Fraction > 1 {
		t.Errorf("fraction = %v", resp.Fraction)
	}
	if got := rec.Header().Get("X-CQA-Degraded"); got != "count-sampling" {
		t.Errorf("X-CQA-Degraded = %q", got)
	}
	// Explicitly refusing approximation turns the same instance into 422.
	refuse := fmt.Sprintf(`{"query": "R(x | y), S(y | z)", "approximate": false, "facts": %q}`, hubFacts(64))
	rec = do(t, h, "POST", "/v1/count", refuse, nil)
	if rec.Code != 422 || !strings.Contains(rec.Body.String(), "component_too_large") {
		t.Errorf("approximate=false on oversized: %d %s", rec.Code, rec.Body.String())
	}
}

func TestCountErrorsAndMetrics(t *testing.T) {
	srv := newTestServer()
	h := srv.Handler()
	if rec := do(t, h, "POST", "/v1/count", `{"query": "R(x | y)", "db": "nope"}`, nil); rec.Code != 404 {
		t.Errorf("unknown db: %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/v1/count", `{not json`, nil); rec.Code != 400 {
		t.Errorf("malformed JSON: %d", rec.Code)
	}
	// One exact and one degraded call, then the counters must show both.
	do(t, h, "POST", "/v1/count", `{"query": "R(x | '1')", "facts": "R(a | 1)\nR(a | 2)\n"}`, nil)
	do(t, h, "POST", "/v1/count", fmt.Sprintf(`{"query": "R(x | y), S(y | z)", "facts": %q}`, hubFacts(64)), nil)
	rec := do(t, h, "GET", "/metrics", "", nil)
	for _, frag := range []string{
		"cqa_count_exact_total 1",
		"cqa_count_approx_total 1",
		"cqa_count_duration_seconds_count 2",
	} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}
}

func TestCountTraceHeader(t *testing.T) {
	h := newTestServer().Handler()
	req := `{"query": "R(x | '1')", "facts": "R(a | 1)\nR(a | 2)\n"}`
	rec := do(t, h, "POST", "/v1/count", req, nil)
	if rec.Code != 200 || strings.Contains(rec.Body.String(), `"trace"`) {
		t.Fatalf("untraced count: %d %s", rec.Code, rec.Body.String())
	}
	var resp countResponse
	rec = doTraced(t, h, "POST", "/v1/count", req, &resp)
	if rec.Code != 200 || resp.Trace == nil {
		t.Fatalf("traced count: %d %s", rec.Code, rec.Body.String())
	}
	found := false
	for _, st := range resp.Trace.Stages {
		if st.Stage == "count" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace lacks a count stage: %+v", resp.Trace.Stages)
	}
}
