package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"cqa/internal/faultinject"
	"cqa/internal/workload"
)

// uploadHard publishes an adversarial coNP instance under the name and
// returns a /v1/certain body template for it.
func uploadHard(t *testing.T, h http.Handler, name string, vars, clauses, vals int) {
	t.Helper()
	d := workload.HardInstance(rand.New(rand.NewSource(5)), vars, clauses, vals)
	rec := do(t, h, "PUT", "/v1/db/"+name, d.String()+"\n", nil)
	if rec.Code != 200 {
		t.Fatalf("upload %s: %d %s", name, rec.Code, rec.Body.String())
	}
}

func TestDeadlineReturnsStructuredTimeout(t *testing.T) {
	s := newTestServer()
	h := s.Handler()
	uploadHard(t, h, "hard", 60, 400, 6)
	body := `{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp",
		"timeoutMs": 100, "approximate": false}`
	// Warm the snapshot index and the plan cache: the latency bound is
	// about cancellation responsiveness of the evaluation itself, not
	// the one-time cold build the deadline does not even cover.
	do(t, h, "POST", "/v1/certain", body, nil)

	before := runtime.NumGoroutine()
	start := time.Now()
	var resp errorResponse
	rec := do(t, h, "POST", "/v1/certain", body, nil)
	elapsed := time.Since(start)
	if rec.Code == 200 {
		t.Skipf("instance solved before the deadline (%v); nothing to bound", elapsed)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	mustJSON(t, rec.Body.Bytes(), &resp)
	if resp.Code != "deadline_exceeded" {
		t.Errorf("code %q, want deadline_exceeded", resp.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("missing Retry-After on 504")
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("deadline overrun: 100ms deadline returned after %v (bound 150ms)", elapsed)
	}
	if strings.Contains(metricsBody(t, h), "cqa_request_timeouts_total 0") {
		t.Errorf("timeout metric not incremented")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak after timeout: %d before, %d after", before, g)
	}
}

func TestBudgetExhaustionDegradesToSampling(t *testing.T) {
	s := newTestServer()
	h := s.Handler()
	uploadHard(t, h, "hard", 30, 120, 4)
	// Approximate defaults to enabled: exhaustion degrades to sampling.
	var resp certainResponse
	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp", "maxSteps": 50}`, &resp)
	if rec.Code != 200 {
		t.Fatalf("degraded request: %d %s", rec.Code, rec.Body.String())
	}
	if !resp.Approximate || resp.Fraction == nil {
		t.Fatalf("expected approximate response, got %+v", resp)
	}
	if got := rec.Header().Get("X-CQA-Degraded"); got != "sampling" {
		t.Errorf("X-CQA-Degraded = %q", got)
	}
	if !strings.Contains(metricsBody(t, h), "cqa_degraded_answers_total 1") {
		t.Errorf("degraded metric not incremented")
	}

	// Explicitly disabling degradation turns exhaustion into a 422.
	rec = do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp", "maxSteps": 50, "approximate": false}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("budget without degradation: %d %s", rec.Code, rec.Body.String())
	}
	var eresp errorResponse
	mustJSON(t, rec.Body.Bytes(), &eresp)
	if eresp.Code != "budget_exhausted" {
		t.Errorf("code %q, want budget_exhausted", eresp.Code)
	}
}

func TestAdmissionShedding(t *testing.T) {
	s := New(Config{CacheSize: 16, MaxWorkers: 2})
	h := s.Handler()
	// Saturate the admission semaphore directly; the next evaluating
	// request must be shed with 429 + Retry-After, while non-limited
	// routes stay reachable.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y)", "facts": "R(a | b)\n"}`, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated: %d %s", rec.Code, rec.Body.String())
	}
	var eresp errorResponse
	mustJSON(t, rec.Body.Bytes(), &eresp)
	if eresp.Code != "overloaded" {
		t.Errorf("code %q, want overloaded", eresp.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("missing Retry-After on 429")
	}
	if rec := do(t, h, "GET", "/livez", "", nil); rec.Code != 200 {
		t.Errorf("livez under saturation: %d", rec.Code)
	}
	// Readiness reports saturation.
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz under saturation: %d", rec.Code)
	}
	if !strings.Contains(metricsBody(t, h), "cqa_requests_shed_total 1") {
		t.Errorf("shed metric not incremented")
	}
}

func TestLivenessReadinessAndDraining(t *testing.T) {
	s := newTestServer()
	h := s.Handler()
	for _, path := range []string{"/livez", "/healthz", "/readyz"} {
		if rec := do(t, h, "GET", path, "", nil); rec.Code != 200 {
			t.Errorf("%s: %d", path, rec.Code)
		}
	}
	s.SetDraining(true)
	if rec := do(t, h, "GET", "/livez", "", nil); rec.Code != 200 {
		t.Errorf("livez while draining: %d", rec.Code)
	}
	rec := do(t, h, "GET", "/readyz", "", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", rec.Code)
	}
	var eresp errorResponse
	mustJSON(t, rec.Body.Bytes(), &eresp)
	if eresp.Code != "not_ready" || !strings.Contains(eresp.Error, "draining") {
		t.Errorf("readyz error: %+v", eresp)
	}
	if !strings.Contains(metricsBody(t, h), "cqa_ready 0") {
		t.Errorf("cqa_ready should be 0 while draining")
	}
	s.SetDraining(false)
	if rec := do(t, h, "GET", "/readyz", "", nil); rec.Code != 200 {
		t.Errorf("readyz after draining cleared: %d", rec.Code)
	}
}

func TestFaultInjectionIndexBuildPanic(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer()
	h := s.Handler()
	uploadHard(t, h, "hard", 5, 10, 2)

	// First touch of the snapshot index blows up: the panic must become
	// a structured 500 and must not poison the snapshot.
	faultinject.SetWindow("store.index.build", 0, 1, func(int) error {
		return fmt.Errorf("injected: index build exploded")
	})
	rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(u | y)", "db": "hard"}`, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted build: %d %s", rec.Code, rec.Body.String())
	}
	var eresp errorResponse
	mustJSON(t, rec.Body.Bytes(), &eresp)
	if eresp.Code != "internal_panic" {
		t.Errorf("code %q, want internal_panic", eresp.Code)
	}
	if !strings.Contains(metricsBody(t, h), "cqa_panics_recovered_total 1") {
		t.Errorf("panic metric not incremented")
	}

	// The window is spent: the retry rebuilds the index and succeeds.
	rec = do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(u | y)", "db": "hard"}`, nil)
	if rec.Code != 200 {
		t.Fatalf("retry after faulted build: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFaultInjectionPlanCompile(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer()
	h := s.Handler()
	faultinject.SetWindow("plancache.compile", 0, 1, func(int) error {
		return fmt.Errorf("injected: compile failed")
	})
	rec := do(t, h, "POST", "/v1/classify", `{"query": "R(x | y), S(y | z)"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("faulted compile: %d %s", rec.Code, rec.Body.String())
	}
	// Window spent: the same query compiles on retry (never cached the
	// failure).
	rec = do(t, h, "POST", "/v1/classify", `{"query": "R(x | y), S(y | z)"}`, nil)
	if rec.Code != 200 {
		t.Fatalf("retry after faulted compile: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFaultInjectionMidEvalPanic(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer()
	h := s.Handler()
	uploadHard(t, h, "hard", 30, 120, 4)
	// A panic from deep inside the engine's poll path must be recovered
	// into a structured 500; subsequent requests are unaffected.
	faultinject.SetWindow("evalctx.poll", 0, 1, func(int) error {
		panic("injected: engine panic mid-evaluation")
	})
	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp", "timeoutMs": 5000}`, nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("mid-eval panic: %d %s", rec.Code, rec.Body.String())
	}
	var eresp errorResponse
	mustJSON(t, rec.Body.Bytes(), &eresp)
	if eresp.Code != "internal_panic" {
		t.Errorf("code %q, want internal_panic", eresp.Code)
	}
	rec = do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp", "timeoutMs": 5000}`, nil)
	if rec.Code != 200 {
		t.Fatalf("request after recovered panic: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFaultInjectionMidEvalError(t *testing.T) {
	defer faultinject.Reset()
	s := newTestServer()
	h := s.Handler()
	uploadHard(t, h, "hard", 30, 120, 4)
	// An error (not panic) surfaced from the poll path flows through the
	// engine's sticky-error unwind and lands as a 422.
	faultinject.SetWindow("evalctx.poll", 0, 1, func(int) error {
		return fmt.Errorf("injected: transient engine fault")
	})
	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "db": "hard", "engine": "conp", "timeoutMs": 5000, "approximate": false}`, nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("mid-eval error: %d %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "injected") {
		t.Errorf("injected error not surfaced: %s", rec.Body.String())
	}
}

func metricsBody(t *testing.T, h http.Handler) string {
	t.Helper()
	rec := do(t, h, "GET", "/metrics", "", nil)
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	return rec.Body.String()
}

func mustJSON(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
}
