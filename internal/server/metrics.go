package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds per-endpoint request and error counters. Labels are the
// fixed endpoint names passed to instrument, so the map is written only
// through counter(), which is safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64
	errors   map[string]*atomic.Uint64
	inflight atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]*atomic.Uint64),
		errors:   make(map[string]*atomic.Uint64),
	}
}

func counter(mu *sync.Mutex, m map[string]*atomic.Uint64, label string) *atomic.Uint64 {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[label]
	if !ok {
		c = &atomic.Uint64{}
		m[label] = c
	}
	return c
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting, the worker-cap
// semaphore (for evaluating endpoints), and per-request logging with
// latency and the engine used.
func (s *Server) instrument(label string, limited bool, h http.HandlerFunc) http.Handler {
	reqs := counter(&s.metrics.mu, s.metrics.requests, label)
	errs := counter(&s.metrics.mu, s.metrics.errors, label)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		if limited {
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		if rec.status >= 400 {
			errs.Add(1)
		}
		if s.logger != nil {
			extra := ""
			if engine := rec.Header().Get("X-CQA-Engine"); engine != "" {
				extra += " engine=" + engine
			}
			if cache := rec.Header().Get("X-CQA-Cache"); cache != "" {
				extra += " plan=" + cache
			}
			s.logger.Printf("%s %s %d %s%s", r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond), extra)
		}
	})
}

// handleMetrics renders the counters in the text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "cqa_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "cqa_inflight_requests %d\n", s.metrics.inflight.Load()-1) // exclude this request

	s.metrics.mu.Lock()
	labels := make([]string, 0, len(s.metrics.requests))
	for label := range s.metrics.requests {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&b, "cqa_requests_total{endpoint=%q} %d\n", label, s.metrics.requests[label].Load())
	}
	for _, label := range labels {
		if n := s.metrics.errors[label].Load(); n > 0 {
			fmt.Fprintf(&b, "cqa_request_errors_total{endpoint=%q} %d\n", label, n)
		}
	}
	s.metrics.mu.Unlock()

	st := s.cache.Stats()
	fmt.Fprintf(&b, "cqa_plancache_hits_total %d\n", st.Hits)
	fmt.Fprintf(&b, "cqa_plancache_misses_total %d\n", st.Misses)
	fmt.Fprintf(&b, "cqa_plancache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(&b, "cqa_plancache_entries %d\n", st.Entries)
	ixst := s.store.IndexStats()
	fmt.Fprintf(&b, "cqa_indexcache_hits_total %d\n", ixst.Hits())
	fmt.Fprintf(&b, "cqa_indexcache_misses_total %d\n", ixst.Misses())
	fmt.Fprintf(&b, "cqa_store_databases %d\n", s.store.Len())

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, b.String())
}
