package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cqa/internal/shard"
	"cqa/internal/trace"
)

// metrics holds per-endpoint request and error counters plus the
// hardening counters (sheds, timeouts, recovered panics, degraded
// answers). Labels are the fixed endpoint names passed to instrument,
// so the map is written only through counter(), which is safe for
// concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64
	errors   map[string]*atomic.Uint64
	inflight atomic.Int64
	// shed counts requests rejected with 429 at the admission gate.
	shed atomic.Uint64
	// timeouts counts evaluations cut short by their deadline (504s).
	timeouts atomic.Uint64
	// panics counts engine panics converted into structured 500s.
	panics atomic.Uint64
	// degraded counts coNP evaluations that fell back to sampling.
	degraded atomic.Uint64
	// mutations counts committed delta writes (POST /v1/db/{name}/facts
	// requests that published or idempotently reached a version).
	mutations atomic.Uint64
	// countExact / countApprox split successful /v1/count requests by
	// whether every component was enumerated exactly or at least one
	// degraded to Monte Carlo sampling.
	countExact  atomic.Uint64
	countApprox atomic.Uint64
	// countHist is the end-to-end latency histogram of successful
	// /v1/count evaluations (exact and sampled alike).
	countHist *trace.Histogram
	// applyHist is the latency histogram of delta commits, covering
	// parse + group commit + MVCC apply + publish.
	applyHist *trace.Histogram
	// byClass holds one evaluation-latency histogram per complexity
	// class (fo / ptime / conp — the trichotomy makes the class the
	// dominant latency predictor, so it is the one label worth a
	// histogram each). Keys are fixed at construction; Observe is
	// lock-free.
	byClass map[string]*trace.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]*atomic.Uint64),
		errors:    make(map[string]*atomic.Uint64),
		applyHist: trace.NewHistogram(nil),
		countHist: trace.NewHistogram(nil),
		byClass: map[string]*trace.Histogram{
			"fo":    trace.NewHistogram(nil),
			"ptime": trace.NewHistogram(nil),
			"conp":  trace.NewHistogram(nil),
		},
	}
}

func counter(mu *sync.Mutex, m map[string]*atomic.Uint64, label string) *atomic.Uint64 {
	mu.Lock()
	defer mu.Unlock()
	c, ok := m[label]
	if !ok {
		c = &atomic.Uint64{}
		m[label] = c
	}
	return c
}

// statusRecorder captures the status code a handler writes and whether
// the header went out (after which a panic can no longer be converted
// into a structured 500).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.status = code
		r.wrote = true
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// instrument wraps a handler with request counting, panic recovery, the
// bounded-admission gate (for evaluating endpoints), and per-request
// logging with latency and the engine used.
//
// Panic recovery converts an engine panic into a structured 500 (when
// the response header has not yet been written) and increments
// cqa_panics_recovered_total — one poisoned request must never take the
// process, or the other in-flight requests, down with it.
//
// Admission is a shedding semaphore: when MaxWorkers requests are
// already evaluating, the request is refused immediately with 429 and a
// Retry-After hint instead of queueing unboundedly behind a possibly
// pathological workload.
func (s *Server) instrument(label string, limited bool, h http.HandlerFunc) http.Handler {
	reqs := counter(&s.metrics.mu, s.metrics.requests, label)
	errs := counter(&s.metrics.mu, s.metrics.errors, label)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				if s.logger != nil {
					s.logger.Printf("panic on %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				}
				if !rec.wrote {
					httpErrorCode(rec, http.StatusInternalServerError, "internal_panic",
						"internal error: the evaluation engine panicked (recovered)")
				} else {
					rec.status = http.StatusInternalServerError
				}
			}
			elapsed := time.Since(start)
			if rec.status >= 400 {
				errs.Add(1)
			}
			if s.logger != nil {
				extra := ""
				if engine := rec.Header().Get("X-CQA-Engine"); engine != "" {
					extra += " engine=" + engine
				}
				if cache := rec.Header().Get("X-CQA-Cache"); cache != "" {
					extra += " plan=" + cache
				}
				s.logger.Printf("%s %s %d %s%s", r.Method, r.URL.Path, rec.status, elapsed.Round(time.Microsecond), extra)
			}
		}()
		if limited {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				s.metrics.shed.Add(1)
				rec.Header().Set("Retry-After", "1")
				httpErrorCode(rec, http.StatusTooManyRequests, "overloaded",
					"admission capacity reached (%d evaluations in flight); retry later", cap(s.sem))
				return
			}
		}
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		h(rec, r)
	})
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal representation, no exponent for these magnitudes.
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", b), "0"), ".")
}

// handleMetrics renders the counters in the text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	fmt.Fprintf(&b, "cqa_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(&b, "cqa_inflight_requests %d\n", s.metrics.inflight.Load()-1) // exclude this request
	fmt.Fprintf(&b, "cqa_requests_shed_total %d\n", s.metrics.shed.Load())
	fmt.Fprintf(&b, "cqa_request_timeouts_total %d\n", s.metrics.timeouts.Load())
	fmt.Fprintf(&b, "cqa_panics_recovered_total %d\n", s.metrics.panics.Load())
	fmt.Fprintf(&b, "cqa_degraded_answers_total %d\n", s.metrics.degraded.Load())
	ready := 1
	if reasons := s.notReadyReasons(); len(reasons) > 0 {
		ready = 0
	}
	fmt.Fprintf(&b, "cqa_ready %d\n", ready)

	s.metrics.mu.Lock()
	labels := make([]string, 0, len(s.metrics.requests))
	for label := range s.metrics.requests {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&b, "cqa_requests_total{endpoint=%q} %d\n", label, s.metrics.requests[label].Load())
	}
	for _, label := range labels {
		if n := s.metrics.errors[label].Load(); n > 0 {
			fmt.Fprintf(&b, "cqa_request_errors_total{endpoint=%q} %d\n", label, n)
		}
	}
	s.metrics.mu.Unlock()

	for _, class := range []string{"fo", "ptime", "conp"} {
		h := s.metrics.byClass[class]
		snap := h.Snapshot()
		for i, bound := range snap.Bounds {
			fmt.Fprintf(&b, "cqa_eval_duration_seconds_bucket{class=%q,le=%q} %d\n",
				class, formatBound(bound), snap.Cumulative[i])
		}
		fmt.Fprintf(&b, "cqa_eval_duration_seconds_bucket{class=%q,le=\"+Inf\"} %d\n", class, snap.Inf)
		fmt.Fprintf(&b, "cqa_eval_duration_seconds_sum{class=%q} %g\n", class, snap.SumSeconds)
		fmt.Fprintf(&b, "cqa_eval_duration_seconds_count{class=%q} %d\n", class, snap.Count)
	}
	fmt.Fprintf(&b, "cqa_slowlog_entries_total %d\n", s.slowlog.count())

	st := s.cache.Stats()
	fmt.Fprintf(&b, "cqa_plancache_hits_total %d\n", st.Hits)
	fmt.Fprintf(&b, "cqa_plancache_misses_total %d\n", st.Misses)
	fmt.Fprintf(&b, "cqa_plancache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(&b, "cqa_plancache_entries %d\n", st.Entries)
	ixst := s.store.IndexStats()
	fmt.Fprintf(&b, "cqa_indexcache_hits_total %d\n", ixst.Hits())
	fmt.Fprintf(&b, "cqa_indexcache_misses_total %d\n", ixst.Misses())
	fmt.Fprintf(&b, "cqa_indexcache_building %d\n", ixst.Building())
	fmt.Fprintf(&b, "cqa_store_databases %d\n", s.store.Len())
	fmt.Fprintf(&b, "cqa_db_mutations_total %d\n", s.metrics.mutations.Load())
	fmt.Fprintf(&b, "cqa_count_exact_total %d\n", s.metrics.countExact.Load())
	fmt.Fprintf(&b, "cqa_count_approx_total %d\n", s.metrics.countApprox.Load())
	ch := s.metrics.countHist.Snapshot()
	for i, bound := range ch.Bounds {
		fmt.Fprintf(&b, "cqa_count_duration_seconds_bucket{le=%q} %d\n",
			formatBound(bound), ch.Cumulative[i])
	}
	fmt.Fprintf(&b, "cqa_count_duration_seconds_bucket{le=\"+Inf\"} %d\n", ch.Inf)
	fmt.Fprintf(&b, "cqa_count_duration_seconds_sum %g\n", ch.SumSeconds)
	fmt.Fprintf(&b, "cqa_count_duration_seconds_count %d\n", ch.Count)
	ah := s.metrics.applyHist.Snapshot()
	for i, bound := range ah.Bounds {
		fmt.Fprintf(&b, "cqa_db_apply_duration_seconds_bucket{le=%q} %d\n",
			formatBound(bound), ah.Cumulative[i])
	}
	fmt.Fprintf(&b, "cqa_db_apply_duration_seconds_bucket{le=\"+Inf\"} %d\n", ah.Inf)
	fmt.Fprintf(&b, "cqa_db_apply_duration_seconds_sum %g\n", ah.SumSeconds)
	fmt.Fprintf(&b, "cqa_db_apply_duration_seconds_count %d\n", ah.Count)

	if ws, ok := s.store.WALStats(); ok {
		fmt.Fprintf(&b, "cqa_wal_bytes %d\n", ws.Bytes)
		fmt.Fprintf(&b, "cqa_wal_records_total %d\n", ws.Records)
	}

	if s.router != nil {
		rst := s.router.Stats()
		fmt.Fprintf(&b, "cqa_cluster_retries_total %d\n", rst.Retries)
		fmt.Fprintf(&b, "cqa_cluster_hedges_total %d\n", rst.Hedges)
		fmt.Fprintf(&b, "cqa_cluster_hedge_wins_total %d\n", rst.HedgeWins)
		for _, ns := range rst.Nodes {
			// 0 closed / 1 half-open / 2 open, matching cluster.BreakerState.
			fmt.Fprintf(&b, "cqa_cluster_breaker_state{node=%q} %d\n", ns.Name, int(ns.Breaker))
			fmt.Fprintf(&b, "cqa_cluster_node_failures_total{node=%q} %d\n", ns.Name, ns.Failures)
			snap := ns.Hist.Snapshot()
			for i, bound := range snap.Bounds {
				fmt.Fprintf(&b, "cqa_cluster_node_latency_seconds_bucket{node=%q,le=%q} %d\n",
					ns.Name, formatBound(bound), snap.Cumulative[i])
			}
			fmt.Fprintf(&b, "cqa_cluster_node_latency_seconds_bucket{node=%q,le=\"+Inf\"} %d\n", ns.Name, snap.Inf)
			fmt.Fprintf(&b, "cqa_cluster_node_latency_seconds_sum{node=%q} %g\n", ns.Name, snap.SumSeconds)
			fmt.Fprintf(&b, "cqa_cluster_node_latency_seconds_count{node=%q} %d\n", ns.Name, snap.Count)
		}
	}

	sst := s.store.ShardStats()
	fmt.Fprintf(&b, "cqa_shard_building %d\n", sst.Building)
	fmt.Fprintf(&b, "cqa_shard_hedges_total %d\n", sst.Hedges)
	fmt.Fprintf(&b, "cqa_shard_hedge_wins_total %d\n", sst.HedgeWins)
	for _, dbSnap := range s.store.List() {
		st, ok := dbSnap.ShardStats()
		if !ok {
			continue
		}
		for _, sh := range st.Shards {
			unhealthy := 0
			if sh.Health == shard.HealthUnhealthy {
				unhealthy = 1
			}
			fmt.Fprintf(&b, "cqa_shard_unhealthy{db=%q,shard=\"%d\"} %d\n", dbSnap.Name, sh.ID, unhealthy)
			snap := sh.Hist.Snapshot()
			for i, bound := range snap.Bounds {
				fmt.Fprintf(&b, "cqa_shard_eval_duration_seconds_bucket{db=%q,shard=\"%d\",le=%q} %d\n",
					dbSnap.Name, sh.ID, formatBound(bound), snap.Cumulative[i])
			}
			fmt.Fprintf(&b, "cqa_shard_eval_duration_seconds_bucket{db=%q,shard=\"%d\",le=\"+Inf\"} %d\n", dbSnap.Name, sh.ID, snap.Inf)
			fmt.Fprintf(&b, "cqa_shard_eval_duration_seconds_sum{db=%q,shard=\"%d\"} %g\n", dbSnap.Name, sh.ID, snap.SumSeconds)
			fmt.Fprintf(&b, "cqa_shard_eval_duration_seconds_count{db=%q,shard=\"%d\"} %d\n", dbSnap.Name, sh.ID, snap.Count)
		}
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, b.String())
}
