package server

import (
	"errors"
	"net/http"
	"time"

	"cqa/internal/cluster"
	"cqa/internal/core"
	"cqa/internal/query"
)

// This file is the serving layer of the remote shard tier: the node
// side (POST /v1/shard/eval answers per-shard work against the local
// store) and the routing side (stored-database certain/answers requests
// fan out through the cluster.Router instead of the in-process pools).
// Both ends speak the existing failure taxonomy — a routed request that
// cannot conclude exactly either degrades explicitly (X-CQA-Degraded:
// partial-shards, approximate: true) or fails closed with 503
// shard_unavailable.

// Router exposes the cluster router (nil when clustering is off); used
// by metrics and tests.
func (s *Server) Router() *cluster.Router { return s.router }

// handleShardEval answers one per-shard evaluation request from a
// cluster router. The body is the cluster wire request; the work runs
// through cluster.Exec against this instance's store and plan cache —
// the same admission gate, panic recovery, and metrics as every other
// evaluating endpoint apply via instrument.
func (s *Server) handleShardEval(w http.ResponseWriter, r *http.Request) {
	var req cluster.EvalRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.evalContext(r, 0)
	defer cancel()
	resp, err := cluster.Exec(ctx, s.cache, s.store, &req)
	if err != nil {
		s.shardEvalError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardEvalError maps a node-side evaluation error onto the wire
// status contract of cluster.HTTPTransport: request defects are 4xx
// (permanent at the router), infrastructure failures are 503 with
// Retry-After (retryable on another replica), and context/budget
// errors keep their established statuses from evalError.
func (s *Server) shardEvalError(w http.ResponseWriter, err error) {
	var reqErr *cluster.RequestError
	switch {
	case errors.As(err, &reqErr):
		httpErrorCode(w, http.StatusBadRequest, reqErr.Code, "%v", reqErr)
	case cluster.Unavailable(err):
		w.Header().Set("Retry-After", "1")
		httpErrorCode(w, http.StatusServiceUnavailable, "shard_unavailable", "%v", err)
	default:
		s.evalError(w, err)
	}
}

// resolveClusterRef validates a routed request's database against the
// local replica: the routing instance holds the data too (uploads are
// replicated), so existence and schema defects are diagnosed here with
// the same 404/400 semantics as local evaluation, without building any
// local evaluation index.
func (s *Server) resolveClusterRef(w http.ResponseWriter, req certainRequest, plan *core.Plan) (*dbRef, bool) {
	snap, ok := s.store.Get(req.DB)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown database %q", req.DB)
		return nil, false
	}
	if err := checkSchema(plan.Query, snap.DB); err != nil {
		httpError(w, http.StatusBadRequest, "database %q: %v", req.DB, err)
		return nil, false
	}
	return &dbRef{Name: snap.Name, Version: snap.Version}, true
}

// certainViaCluster routes a certain request through the cluster
// router. failedShards > 0 means the router concluded from a partial
// scatter (every survivor false, the rest unreachable after retries):
// the response is explicitly degraded with X-CQA-Degraded:
// partial-shards and approximate: true — never a silently weaker
// boolean.
func (s *Server) certainViaCluster(w http.ResponseWriter, r *http.Request, req certainRequest, plan *core.Plan, hit bool, start time.Time, opts core.Options) {
	ref, ok := s.resolveClusterRef(w, req, plan)
	if !ok {
		return
	}
	ctx, cancel := s.evalContext(r, req.TimeoutMs)
	defer cancel()
	res, failedShards, err := s.router.Certain(ctx, plan, req.DB, opts)
	elapsed := time.Since(start)
	entry := slowEntry{
		Time:     start.UTC().Format(time.RFC3339Nano),
		Endpoint: "certain",
		Query:    plan.Query.String(),
		Class:    classLabel(plan.Class),
		DB:       ref.Name,
		dur:      elapsed,
	}
	if err != nil {
		entry.Error = err.Error()
		s.observeEval(entry)
		s.evalError(w, err)
		return
	}
	entry.Engine = res.Engine.String()
	s.observeEval(entry)
	resp := certainResponse{
		Query:   plan.Query.String(),
		Certain: res.Certain,
		Class:   res.Class.String(),
		Engine:  res.Engine.String(),
		Cached:  hit,
		DB:      ref,
	}
	if res.Approximate {
		s.metrics.degraded.Add(1)
		frac := res.Fraction
		resp.Approximate = true
		resp.Fraction = &frac
		if failedShards > 0 {
			w.Header().Set("X-CQA-Degraded", "partial-shards")
		} else {
			w.Header().Set("X-CQA-Degraded", "sampling")
		}
	}
	w.Header().Set("X-CQA-Engine", res.Engine.String())
	writeJSON(w, http.StatusOK, resp)
}

// answersViaCluster routes an answers request through the cluster
// router. The union merge fails closed — any shard that stays
// unreachable after retries surfaces as 503 shard_unavailable via
// evalError; there is no degraded answer set.
func (s *Server) answersViaCluster(w http.ResponseWriter, r *http.Request, req certainRequest, plan *core.Plan, hit bool, start time.Time, opts core.Options) {
	ref, ok := s.resolveClusterRef(w, req, plan)
	if !ok {
		return
	}
	free := make([]query.Var, len(req.Free))
	for i, name := range req.Free {
		free[i] = query.Var(name)
	}
	ctx, cancel := s.evalContext(r, req.TimeoutMs)
	defer cancel()
	vals, err := s.router.CertainAnswers(ctx, plan, req.DB, free, opts)
	elapsed := time.Since(start)
	entry := slowEntry{
		Time:     start.UTC().Format(time.RFC3339Nano),
		Endpoint: "answers",
		Query:    plan.Query.String(),
		Class:    classLabel(plan.Class),
		Engine:   plan.Engine(opts).String(),
		DB:       ref.Name,
		dur:      elapsed,
	}
	if err != nil {
		entry.Error = err.Error()
		s.observeEval(entry)
		s.evalError(w, err)
		return
	}
	s.observeEval(entry)
	answers := make([]map[string]string, len(vals))
	for i, v := range vals {
		m := make(map[string]string, len(v))
		for x, c := range v {
			m[string(x)] = string(c)
		}
		answers[i] = m
	}
	writeJSON(w, http.StatusOK, answersResponse{
		Query:   plan.Query.String(),
		Free:    req.Free,
		Answers: answers,
		Count:   len(answers),
		Class:   plan.Class.String(),
		Cached:  hit,
		DB:      ref,
	})
}
