package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"cqa/internal/cluster"
	"cqa/internal/wal"
)

const clusterTestQuery = "R(x | y), S(y | z)"
const clusterTestDB = "R(a | b)\nR(a | c)\nS(b | z1)\nR(d | e)\nR(d | e2)\nS(e | z2)\nR(f | g)\nR(f | g2)\nS(g | z3)"

// newShardNode starts one shard-node server instance over httptest with
// the test database preloaded.
func newShardNode(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{CacheSize: 64, MaxWorkers: 8, ShardNode: true})
	if _, err := srv.Store().PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestShardEvalEndpoint(t *testing.T) {
	_, ts := newShardNode(t)
	tr := &cluster.HTTPTransport{}
	resp, err := tr.Eval(context.Background(), ts.URL, &cluster.EvalRequest{
		Query: clusterTestQuery, DB: "corpus", Kind: cluster.KindBool, Shard: 0, Shards: 2, Engine: "fo",
	})
	if err != nil {
		t.Fatalf("shard eval over HTTP: %v", err)
	}
	if resp.Certain {
		t.Fatalf("shard 0 of the falsifiable instance reported certain")
	}

	// A request defect (shard out of range) is a permanent RequestError.
	_, err = tr.Eval(context.Background(), ts.URL, &cluster.EvalRequest{
		Query: clusterTestQuery, DB: "corpus", Kind: cluster.KindBool, Shard: 9, Shards: 2, Engine: "fo",
	})
	var re *cluster.RequestError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-range shard: got %v, want RequestError", err)
	}

	// An unknown database is a replication race: retryable unavailability.
	_, err = tr.Eval(context.Background(), ts.URL, &cluster.EvalRequest{
		Query: clusterTestQuery, DB: "nosuch", Kind: cluster.KindBool, Shard: 0, Shards: 2, Engine: "fo",
	})
	if !cluster.Unavailable(err) {
		t.Fatalf("unknown database over HTTP: got %v, want Unavailable", err)
	}
}

// TestShardEvalNotRoutedByDefault: a server without -shard-node does
// not expose the endpoint.
func TestShardEvalNotRoutedByDefault(t *testing.T) {
	h := newTestServer().Handler()
	rec := do(t, h, "POST", "/v1/shard/eval", `{}`, nil)
	if rec.Code != 404 && rec.Code != 405 {
		t.Fatalf("shard eval on a non-node instance: %d, want 404/405", rec.Code)
	}
}

// TestClusterRoutedCertainHTTP runs the full remote tier over real
// sockets: three shard nodes behind a routing front end, one node
// killed mid-run. Verdicts stay exact and the router's retry counters
// surface in /metrics.
func TestClusterRoutedCertainHTTP(t *testing.T) {
	var urls []string
	var nodes []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := newShardNode(t)
		urls = append(urls, ts.URL)
		nodes = append(nodes, ts)
	}
	front := New(Config{CacheSize: 64, MaxWorkers: 8, ClusterNodes: urls, ClusterShards: 6})
	if _, err := front.Store().PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	h := front.Handler()

	body := fmt.Sprintf(`{"query": %q, "db": "corpus"}`, clusterTestQuery)
	var resp certainResponse
	rec := do(t, h, "POST", "/v1/certain", body, &resp)
	if rec.Code != 200 || resp.Certain || resp.Approximate {
		t.Fatalf("routed certain: %d %+v", rec.Code, resp)
	}
	if resp.DB == nil || resp.DB.Name != "corpus" {
		t.Fatalf("routed certain lost the db ref: %+v", resp)
	}

	// Kill one replica: failover keeps the verdict exact.
	nodes[1].Close()
	resp = certainResponse{}
	rec = do(t, h, "POST", "/v1/certain", body, &resp)
	if rec.Code != 200 || resp.Certain || resp.Approximate {
		t.Fatalf("routed certain with a dead node: %d %+v", rec.Code, resp)
	}

	mrec := do(t, h, "GET", "/metrics", "", nil)
	for _, frag := range []string{"cqa_cluster_retries_total", "cqa_cluster_breaker_state{node=", "cqa_cluster_node_latency_seconds_count{node="} {
		if !strings.Contains(mrec.Body.String(), frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}
}

// TestClusterRoutedAnswersHTTP: the routed answers union matches the
// local evaluation exactly.
func TestClusterRoutedAnswersHTTP(t *testing.T) {
	_, ts := newShardNode(t)
	front := New(Config{CacheSize: 64, MaxWorkers: 8, ClusterNodes: []string{ts.URL}, ClusterShards: 3})
	if _, err := front.Store().PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	h := front.Handler()
	body := fmt.Sprintf(`{"query": %q, "db": "corpus", "free": ["x"]}`, clusterTestQuery)
	var resp answersResponse
	rec := do(t, h, "POST", "/v1/answers", body, &resp)
	if rec.Code != 200 {
		t.Fatalf("routed answers: %d %s", rec.Code, rec.Body.String())
	}

	// The same request evaluated locally (no cluster) must agree.
	local := newTestServer()
	if _, err := local.Store().PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	var want answersResponse
	if rec := do(t, local.Handler(), "POST", "/v1/answers", body, &want); rec.Code != 200 {
		t.Fatalf("local answers: %d", rec.Code)
	}
	if resp.Count != want.Count {
		t.Fatalf("routed answers %d, local %d", resp.Count, want.Count)
	}

	// Unknown database 404s at the front without touching the cluster.
	rec = do(t, h, "POST", "/v1/answers", fmt.Sprintf(`{"query": %q, "db": "nosuch", "free": ["x"]}`, clusterTestQuery), nil)
	if rec.Code != 404 {
		t.Fatalf("unknown db through the cluster front: %d", rec.Code)
	}
}

// shardDownTransport fails every request for one logical shard with the
// retryable taxonomy — a deterministic partial failure no failover can
// absorb (the failure follows the shard, not the node).
type shardDownTransport struct {
	inner cluster.Transport
	shard int
}

func (t *shardDownTransport) Eval(ctx context.Context, node string, req *cluster.EvalRequest) (*cluster.EvalResponse, error) {
	if req.Shard == t.shard {
		return nil, fmt.Errorf("%w: shard %d link down", cluster.ErrUnavailable, req.Shard)
	}
	return t.inner.Eval(ctx, node, req)
}

func (t *shardDownTransport) Ready(ctx context.Context, node string) error {
	return t.inner.Ready(ctx, node)
}

// TestClusterPartialFailureSemantics: a shard that stays unreachable
// degrades an all-false certain request explicitly (X-CQA-Degraded:
// partial-shards, approximate: true) when approximation is allowed,
// fails it closed with 503 shard_unavailable when not, and always
// fails the answers union closed.
func TestClusterPartialFailureSemantics(t *testing.T) {
	node := cluster.NewLocalNode("solo")
	if _, err := node.Store.PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	front := New(Config{
		CacheSize: 64, MaxWorkers: 8,
		ClusterNodes:     []string{"solo"},
		ClusterShards:    4,
		ClusterTransport: &shardDownTransport{inner: cluster.NewLoopback(node), shard: 0},
	})
	if _, err := front.Store().PutFacts("corpus", clusterTestDB); err != nil {
		t.Fatal(err)
	}
	h := front.Handler()

	// Approximation is the server default: the partial scatter concludes
	// false from the survivors, explicitly degraded.
	body := fmt.Sprintf(`{"query": %q, "db": "corpus"}`, clusterTestQuery)
	var resp certainResponse
	rec := do(t, h, "POST", "/v1/certain", body, &resp)
	if rec.Code != 200 || resp.Certain || !resp.Approximate {
		t.Fatalf("partial scatter: %d %+v", rec.Code, resp)
	}
	if got := rec.Header().Get("X-CQA-Degraded"); got != "partial-shards" {
		t.Fatalf("X-CQA-Degraded = %q, want partial-shards", got)
	}
	if resp.Fraction == nil || *resp.Fraction <= 0 || *resp.Fraction >= 1 {
		t.Fatalf("fraction = %v, want in (0,1)", resp.Fraction)
	}

	// Explicitly exact request: fail closed with the 503 taxonomy.
	exact := fmt.Sprintf(`{"query": %q, "db": "corpus", "approximate": false}`, clusterTestQuery)
	rec = do(t, h, "POST", "/v1/certain", exact, nil)
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "shard_unavailable") {
		t.Fatalf("exact partial scatter: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 shard_unavailable without Retry-After")
	}

	// Answers have no sound degraded form: always fail closed.
	ansBody := fmt.Sprintf(`{"query": %q, "db": "corpus", "free": ["x"]}`, clusterTestQuery)
	rec = do(t, h, "POST", "/v1/answers", ansBody, nil)
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "shard_unavailable") {
		t.Fatalf("partial answers union: %d %s", rec.Code, rec.Body.String())
	}
}

// TestWALMetricsGauges: with a journal attached, /metrics exposes the
// journal size gauges and they move with mutations.
func TestWALMetricsGauges(t *testing.T) {
	srv := newTestServer()
	l, err := wal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv.Store().SetWAL(l)
	h := srv.Handler()
	if rec := do(t, h, "PUT", "/v1/db/prod", "R(a | b)\n", nil); rec.Code != 200 {
		t.Fatalf("upload: %d", rec.Code)
	}
	rec := do(t, h, "GET", "/metrics", "", nil)
	body := rec.Body.String()
	if !strings.Contains(body, "cqa_wal_records_total 1") {
		t.Errorf("metrics missing cqa_wal_records_total 1:\n%s", body)
	}
	if !strings.Contains(body, "cqa_wal_bytes ") || strings.Contains(body, "cqa_wal_bytes 0\n") {
		t.Errorf("metrics missing a positive cqa_wal_bytes gauge:\n%s", body)
	}

	// No journal, no gauges.
	plain := do(t, newTestServer().Handler(), "GET", "/metrics", "", nil)
	if strings.Contains(plain.Body.String(), "cqa_wal_bytes") {
		t.Error("WAL gauges exposed without a journal attached")
	}
}
