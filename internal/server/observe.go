package server

import (
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"cqa/internal/core"
	"cqa/internal/trace"
)

// Observability defaults; see Config for the overrides.
const (
	// DefaultSlowLogSize bounds the in-memory slow-query log.
	DefaultSlowLogSize = 64
	// DefaultSlowLogThreshold is the evaluation latency above which a
	// request enters the slow-query log.
	DefaultSlowLogThreshold = 100 * time.Millisecond
)

// traceRequested reports whether the request opted into stage tracing
// via the X-CQA-Trace header (any value except "0"/"false" enables).
func traceRequested(r *http.Request) bool {
	switch v := r.Header.Get("X-CQA-Trace"); v {
	case "", "0", "false":
		return false
	default:
		return true
	}
}

// traceInfo is the stage breakdown attached to a traced response.
type traceInfo struct {
	// TotalUs is the wall-clock of the whole evaluation (resolve +
	// engine), of which the stages account the instrumented parts.
	TotalUs int64              `json:"totalUs"`
	Stages  []trace.StageStats `json:"stages"`
}

func traceJSON(tr *trace.Tracer, total time.Duration) *traceInfo {
	if tr == nil {
		return nil
	}
	return &traceInfo{
		TotalUs: int64(total / time.Microsecond),
		Stages:  tr.Breakdown(),
	}
}

// classLabel maps a complexity class to its metric label. The labels
// double as the histogram keys of metrics.byClass, so they are fixed
// (unlike Class.String(), whose "P\FO" would need escaping in the
// exposition format).
func classLabel(c core.Class) string {
	switch c {
	case core.FO:
		return "fo"
	case core.PTime:
		return "ptime"
	default:
		return "conp"
	}
}

// observeEval records one evaluation latency into the per-class
// histogram and, when it crossed the slow threshold, the slow-query
// log.
func (s *Server) observeEval(e slowEntry) {
	if h := s.metrics.byClass[e.Class]; h != nil {
		h.Observe(e.dur)
	}
	s.slowlog.record(e)
}

// --- slow-query log ---

// slowEntry is one slow-query-log record, shaped for /debug/slowlog.
type slowEntry struct {
	Time     string `json:"time"`
	Endpoint string `json:"endpoint"`
	Query    string `json:"query"`
	DB       string `json:"db,omitempty"`
	Class    string `json:"class"`
	Engine   string `json:"engine,omitempty"`
	// Error is the evaluation error, if any — timeouts and exhausted
	// budgets are exactly the requests a slow-query log exists for.
	Error  string `json:"error,omitempty"`
	Micros int64  `json:"us"`
	// Trace is the stage breakdown when the request opted into tracing.
	Trace []trace.StageStats `json:"trace,omitempty"`

	dur time.Duration
}

// slowLog is a bounded ring of the most recent slow evaluations. A
// threshold <= 0 disables recording; eviction is ring overwrite — no
// goroutines, no timers — so the log can never leak.
type slowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	ring      []slowEntry
	next      int
	total     uint64
}

func newSlowLog(size int, threshold time.Duration) *slowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &slowLog{threshold: threshold, ring: make([]slowEntry, 0, size)}
}

func (l *slowLog) record(e slowEntry) {
	if l.threshold <= 0 || e.dur < l.threshold {
		return
	}
	e.Micros = int64(e.dur / time.Microsecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		l.next = len(l.ring) % cap(l.ring)
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % cap(l.ring)
}

// snapshot returns the retained entries, newest first.
func (l *slowLog) snapshot() []slowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]slowEntry, 0, len(l.ring))
	for i := 0; i < len(l.ring); i++ {
		// Walk backwards from the slot before next (the newest).
		idx := (l.next - 1 - i + 2*len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

func (l *slowLog) count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

type slowlogResponse struct {
	// ThresholdMs is the latency floor for entry; Total counts every
	// slow evaluation since start (the ring retains only the newest).
	ThresholdMs int64       `json:"thresholdMs"`
	Total       uint64      `json:"total"`
	Entries     []slowEntry `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, slowlogResponse{
		ThresholdMs: int64(s.slowlog.threshold / time.Millisecond),
		Total:       s.slowlog.count(),
		Entries:     s.slowlog.snapshot(),
	})
}

// DebugHandler returns the debug-only surface: the net/http/pprof
// endpoints plus the slow-query log. It is intentionally not part of
// Handler — profiling endpoints expose internals and can run the
// process hot, so cmd/cqa-serve mounts this only on the loopback-bound
// -debug-addr listener.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	return mux
}
