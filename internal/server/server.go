// Package server exposes the CQA engines as a long-running HTTP/JSON
// service. The split follows the structure of the paper: classification
// and FO rewriting are per-query work (Lemma 3), so the server compiles
// each distinct query once into a core.Plan held in a shared
// plancache.Cache, and the data-side work of a request — evaluating the
// plan against an immutable store.Snapshot — runs on the hot path with
// no attack-graph construction at all.
//
// Endpoints:
//
//	POST   /v1/classify   {"query": q}                       -> class + cache status
//	POST   /v1/certain    {"query": q, "db": name|"facts": t} -> certain answer
//	POST   /v1/count      {"query": q, "db": name|"facts": t} -> repair counts (#CERTAINTY)
//	POST   /v1/answers    {"query": q, "free": [x...], ...}   -> certain answers
//	POST   /v1/rewrite    {"query": q, "dialect": "logic|sql"} -> FO rewriting
//	GET    /v1/catalog                                        -> literature catalog
//	PUT    /v1/db/{name}  (text/plain facts)                  -> publish snapshot
//	POST   /v1/db/{name}/facts {"insert": ..., "delete": ...} -> delta write (next version)
//	GET    /v1/db/{name}, DELETE /v1/db/{name}, GET /v1/db    -> registry ops
//	GET    /healthz, GET /metrics                             -> liveness, counters
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"cqa/internal/catalog"
	"cqa/internal/cluster"
	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/plancache"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/shard"
	"cqa/internal/store"
	"cqa/internal/trace"
)

// maxBodyBytes bounds request bodies (queries and fact uploads).
const maxBodyBytes = 32 << 20

// Operational defaults; see Config for the overrides.
const (
	// DefaultEvalTimeout is the per-request deadline of the evaluating
	// routes (certain/answers) when the request carries no timeoutMs.
	DefaultEvalTimeout = 10 * time.Second
	// DefaultMaxTimeout caps the per-request timeoutMs override: no
	// client can hold an evaluation slot longer than this.
	DefaultMaxTimeout = 2 * time.Minute
	// DefaultMaxSteps is the per-query engine step budget. The coNP
	// search on an adversarial instance is exponential; this bounds it
	// to roughly a second of CPU, after which the request degrades to
	// sampling (approximate: true) or fails with budget_exhausted.
	DefaultMaxSteps = 20_000_000
	// DefaultMemoCap bounds the memoization entries one evaluation may
	// hold (eliminator + ptime memo tables): bounded memory per request.
	DefaultMemoCap = 1 << 20
)

// Config configures a Server.
type Config struct {
	// CacheSize is the plan-cache capacity in plans; <= 0 selects
	// plancache.DefaultCapacity.
	CacheSize int
	// MaxWorkers caps the number of concurrently evaluating requests
	// (classify/certain/answers/rewrite). Excess requests are shed with
	// 429 + Retry-After rather than queued. <= 0 selects 2×GOMAXPROCS.
	MaxWorkers int
	// Logger receives one line per request (method, path, status,
	// latency, engine, cache status); nil disables request logging.
	Logger *log.Logger
	// EvalTimeout is the default evaluation deadline per request; 0
	// selects DefaultEvalTimeout, negative disables the default (a
	// request may still set its own timeoutMs).
	EvalTimeout time.Duration
	// MaxTimeout caps the per-request timeoutMs override; 0 selects
	// DefaultMaxTimeout.
	MaxTimeout time.Duration
	// MaxSteps is the default per-query engine step budget; 0 selects
	// DefaultMaxSteps, negative disables it.
	MaxSteps int64
	// MemoCap is the default per-query memo budget; 0 selects
	// DefaultMemoCap, negative disables it.
	MemoCap int
	// SlowLogSize bounds the in-memory slow-query log; <= 0 selects
	// DefaultSlowLogSize.
	SlowLogSize int
	// SlowLogThreshold is the evaluation latency above which a request
	// is retained in the slow-query log; 0 selects
	// DefaultSlowLogThreshold, negative disables the log.
	SlowLogThreshold time.Duration
	// Shards enables the sharded scatter-gather evaluation path: stored
	// snapshots get a cached shard.Pool of this size (built lazily per
	// snapshot version), inline-facts requests an ephemeral one. <= 1
	// keeps the monolithic path.
	Shards int
	// HedgeDelay is the straggler threshold of hedged duplicate
	// dispatch on the snapshot pools; 0 disables hedging.
	HedgeDelay time.Duration
	// ShardNode exposes POST /v1/shard/eval: this instance answers
	// per-shard evaluation requests from a cluster router.
	ShardNode bool
	// ClusterNodes, when non-empty, routes stored-database certain and
	// answers requests through a fault-tolerant cluster.Router over
	// these node base URLs instead of evaluating locally. The routing
	// instance still holds the data (uploads are replicated to every
	// node), which it uses for existence and schema validation;
	// inline-facts requests always evaluate locally.
	ClusterNodes []string
	// ClusterShards is the logical partition width of routed work;
	// <= 0 selects the router default (2x the node count).
	ClusterShards int
	// ClusterHedgeDelay enables hedged duplicate dispatch on the
	// router (p99-derived, floored by this value); 0 disables it.
	ClusterHedgeDelay time.Duration
	// ClusterTransport overrides the router transport (tests inject
	// the simulated-fault network); nil selects the HTTP transport.
	ClusterTransport cluster.Transport
}

// Server carries the shared serving state. Create with New; the
// http.Handler is obtained from Handler.
type Server struct {
	cache       *plancache.Cache
	store       *store.Store
	logger      *log.Logger
	sem         chan struct{}
	start       time.Time
	metrics     *metrics
	evalTimeout time.Duration
	maxTimeout  time.Duration
	maxSteps    int64
	memoCap     int
	slowlog     *slowLog
	shards      int
	hedge       time.Duration
	shardNode   bool
	router      *cluster.Router
	// draining is flipped by graceful shutdown before the listener
	// stops accepting: readiness goes false first, so load balancers
	// stop routing while in-flight requests finish.
	draining atomic.Bool
}

// New returns a server with an empty database registry and a cold plan
// cache.
func New(cfg Config) *Server {
	workers := cfg.MaxWorkers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	evalTimeout := cfg.EvalTimeout
	switch {
	case evalTimeout == 0:
		evalTimeout = DefaultEvalTimeout
	case evalTimeout < 0:
		evalTimeout = 0
	}
	maxTimeout := cfg.MaxTimeout
	if maxTimeout <= 0 {
		maxTimeout = DefaultMaxTimeout
	}
	maxSteps := cfg.MaxSteps
	switch {
	case maxSteps == 0:
		maxSteps = DefaultMaxSteps
	case maxSteps < 0:
		maxSteps = 0
	}
	memoCap := cfg.MemoCap
	switch {
	case memoCap == 0:
		memoCap = DefaultMemoCap
	case memoCap < 0:
		memoCap = 0
	}
	slowThreshold := cfg.SlowLogThreshold
	if slowThreshold == 0 {
		slowThreshold = DefaultSlowLogThreshold
	}
	s := &Server{
		cache:       plancache.New(cfg.CacheSize),
		store:       store.New(),
		logger:      cfg.Logger,
		sem:         make(chan struct{}, workers),
		start:       time.Now(),
		metrics:     newMetrics(),
		evalTimeout: evalTimeout,
		maxTimeout:  maxTimeout,
		maxSteps:    maxSteps,
		memoCap:     memoCap,
		slowlog:     newSlowLog(cfg.SlowLogSize, slowThreshold),
		shards:      cfg.Shards,
		hedge:       cfg.HedgeDelay,
		shardNode:   cfg.ShardNode,
	}
	if len(cfg.ClusterNodes) > 0 {
		tr := cfg.ClusterTransport
		if tr == nil {
			tr = &cluster.HTTPTransport{}
		}
		// The only NewRouter failure modes (no nodes, no transport) are
		// excluded above, so the error path is unreachable here.
		if r, err := cluster.NewRouter(cluster.Config{
			Nodes:      cfg.ClusterNodes,
			Shards:     cfg.ClusterShards,
			Transport:  tr,
			HedgeDelay: cfg.ClusterHedgeDelay,
		}); err == nil {
			s.router = r
		}
	}
	return s
}

// SetDraining flips the drain flag: a draining server reports not-ready
// from /readyz (and cqa_ready 0) while continuing to serve in-flight
// and straggler requests. Graceful shutdown sets it before closing the
// listener.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Store exposes the database registry (used by tests and preloading).
func (s *Server) Store() *store.Store { return s.store }

// Cache exposes the plan cache.
func (s *Server) Cache() *plancache.Cache { return s.cache }

// Handler returns the routed handler with logging and instrumentation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleLivez))
	mux.Handle("GET /livez", s.instrument("livez", false, s.handleLivez))
	mux.Handle("GET /readyz", s.instrument("readyz", false, s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.Handle("GET /v1/catalog", s.instrument("catalog", false, s.handleCatalog))
	mux.Handle("POST /v1/classify", s.instrument("classify", true, s.handleClassify))
	mux.Handle("POST /v1/certain", s.instrument("certain", true, s.handleCertain))
	mux.Handle("POST /v1/count", s.instrument("count", true, s.handleCount))
	mux.Handle("POST /v1/answers", s.instrument("answers", true, s.handleAnswers))
	mux.Handle("POST /v1/rewrite", s.instrument("rewrite", true, s.handleRewrite))
	mux.Handle("PUT /v1/db/{name}", s.instrument("db-put", false, s.handleDBPut))
	mux.Handle("POST /v1/db/{name}/facts", s.instrument("db-mutate", false, s.handleDBMutate))
	mux.Handle("GET /v1/db/{name}", s.instrument("db-get", false, s.handleDBGet))
	mux.Handle("DELETE /v1/db/{name}", s.instrument("db-delete", false, s.handleDBDelete))
	mux.Handle("GET /v1/db", s.instrument("db-list", false, s.handleDBList))
	mux.Handle("GET /debug/slowlog", s.instrument("slowlog", false, s.handleSlowlog))
	if s.shardNode {
		mux.Handle("POST /v1/shard/eval", s.instrument("shard-eval", true, s.handleShardEval))
	}
	return mux
}

// --- request/response shapes ---

type errorResponse struct {
	Error string `json:"error"`
	// Code is a stable machine-readable cause: "deadline_exceeded",
	// "budget_exhausted", "overloaded", "not_ready", "internal_panic".
	Code string `json:"code,omitempty"`
}

type classifyRequest struct {
	Query string `json:"query"`
}

type classifyResponse struct {
	Query          string `json:"query"` // normalized form
	Class          string `json:"class"`
	HasCycle       bool   `json:"hasCycle"`
	HasStrongCycle bool   `json:"hasStrongCycle"`
	Cached         bool   `json:"cached"`
}

type certainRequest struct {
	Query  string   `json:"query"`
	DB     string   `json:"db,omitempty"`     // name of an uploaded database
	Facts  string   `json:"facts,omitempty"`  // inline facts, one per line
	Engine string   `json:"engine,omitempty"` // auto (default), fo, ptime, conp, naive
	Free   []string `json:"free,omitempty"`   // /v1/answers only
	// TimeoutMs overrides the server's default evaluation deadline for
	// this request, capped by the server's MaxTimeout.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// MaxSteps overrides the server's default engine step budget (only
	// downwards-or-equal of the server cap, enforced loosely: a request
	// cannot disable the budget).
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// Approximate controls graceful degradation of a budget-exhausted
	// coNP evaluation to repair sampling; nil means the server default
	// (enabled). Explicitly false turns exhaustion into a
	// budget_exhausted error.
	Approximate *bool `json:"approximate,omitempty"`
	// Samples is the sampling budget of the degraded path.
	Samples int `json:"samples,omitempty"`
}

type dbRef struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
}

type certainResponse struct {
	Query   string `json:"query"`
	Certain bool   `json:"certain"`
	Class   string `json:"class"`
	Engine  string `json:"engine"`
	Cached  bool   `json:"cached"`
	DB      *dbRef `json:"db,omitempty"`
	// Approximate marks a degraded answer: the exact coNP search ran
	// out of its step budget and Certain reports whether every sampled
	// repair satisfied the query; Fraction is the sampled satisfying
	// fraction.
	Approximate bool     `json:"approximate,omitempty"`
	Fraction    *float64 `json:"fraction,omitempty"`
	// Trace is the per-stage breakdown; present only when the request
	// carried an X-CQA-Trace header.
	Trace *traceInfo `json:"trace,omitempty"`
}

// countResponse reports a #CERTAINTY repair count. Total is always the
// exact repair count of the instance; Satisfying is present iff the
// count is exact, otherwise Fraction is the anytime estimate and
// Confidence its 95% half-width. The counts are strings: they are
// big integers (a 1M-block instance has ~2^1M repairs) that JSON
// numbers cannot carry.
type countResponse struct {
	Query      string  `json:"query"`
	Satisfying string  `json:"satisfying,omitempty"` // exact count; absent when estimated
	Total      string  `json:"total"`
	Fraction   float64 `json:"fraction"`
	// Confidence is the 95% confidence half-width of an estimated
	// Fraction; present only on the degraded (sampled) path.
	Confidence *float64 `json:"confidence,omitempty"`
	Exact      bool     `json:"exact"`
	Components int      `json:"components"`
	Sampled    int      `json:"sampled,omitempty"` // components estimated by sampling
	Class      string   `json:"class"`
	Cached     bool     `json:"cached"`
	DB         *dbRef   `json:"db,omitempty"`
	// Trace is the per-stage breakdown; present only when the request
	// carried an X-CQA-Trace header.
	Trace *traceInfo `json:"trace,omitempty"`
}

type answersResponse struct {
	Query   string              `json:"query"`
	Free    []string            `json:"free"`
	Answers []map[string]string `json:"answers"`
	Count   int                 `json:"count"`
	Class   string              `json:"class"`
	Cached  bool                `json:"cached"`
	DB      *dbRef              `json:"db,omitempty"`
	// Trace is the per-stage breakdown; present only when the request
	// carried an X-CQA-Trace header.
	Trace *traceInfo `json:"trace,omitempty"`
}

type rewriteRequest struct {
	Query   string `json:"query"`
	Dialect string `json:"dialect,omitempty"` // "logic" (default) or "sql"
}

type rewriteResponse struct {
	Query     string `json:"query"`
	Class     string `json:"class"`
	Dialect   string `json:"dialect"`
	Rewriting string `json:"rewriting"`
	Cached    bool   `json:"cached"`
}

type catalogEntry struct {
	Name   string `json:"name"`
	Query  string `json:"query"`
	Class  string `json:"class"`
	Source string `json:"source"`
}

// mutateRequest is a delta write: rendered facts (the upload syntax,
// one fact per string). Deletes apply first, then upserts (each entry
// the complete new contents of one block), then inserts.
type mutateRequest struct {
	Insert []string   `json:"insert,omitempty"`
	Delete []string   `json:"delete,omitempty"`
	Upsert [][]string `json:"upsert,omitempty"`
}

type mutateResponse struct {
	DB    snapshotInfo  `json:"db"`
	Stats db.ApplyStats `json:"stats"`
}

type snapshotInfo struct {
	Name      string   `json:"name"`
	Version   uint64   `json:"version"`
	Facts     int      `json:"facts"`
	Blocks    int      `json:"blocks"`
	Relations []string `json:"relations"`
	LoadedAt  string   `json:"loadedAt"`
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// statusClientClosedRequest is the de-facto (nginx) status for a
// request whose client went away before the evaluation finished; the
// client never sees it, but logs and error counters do.
const statusClientClosedRequest = 499

// evalError translates an evaluation error into the structured failure
// taxonomy: a passed deadline is a 504 (the request was admitted but
// could not finish in time — retrying with a longer timeoutMs or a
// smaller database may succeed), a spent step budget without
// degradation is a 422 (deterministic: retrying is pointless), a
// cancelled client is logged as 499, and everything else keeps the
// pre-existing 422 semantics (e.g. forcing the fo engine on a cyclic
// query).
func (s *Server) evalError(w http.ResponseWriter, err error) {
	var reqErr *cluster.RequestError
	switch {
	case errors.As(err, &reqErr):
		// A cluster node diagnosed the request itself as defective;
		// surface its stable code rather than the transport taxonomy.
		httpErrorCode(w, http.StatusBadRequest, reqErr.Code, "%v", reqErr)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		httpErrorCode(w, http.StatusGatewayTimeout, "deadline_exceeded",
			"evaluation deadline exceeded: %v", err)
	case errors.Is(err, context.Canceled):
		httpErrorCode(w, statusClientClosedRequest, "client_closed_request",
			"client closed the request: %v", err)
	case errors.Is(err, shard.ErrFailed):
		// After the context cases: a deadline that tripped inside a
		// shard is still a 504. A shard-infrastructure failure is
		// transient — the shard heals on its next success — so a retry
		// is worth hinting.
		w.Header().Set("Retry-After", "1")
		httpErrorCode(w, http.StatusServiceUnavailable, "shard_unavailable",
			"shard failed during evaluation: %v", err)
	case errors.Is(err, evalctx.ErrBudgetExceeded):
		httpErrorCode(w, http.StatusUnprocessableEntity, "budget_exhausted",
			"evaluation step budget exhausted: %v", err)
	case errors.Is(err, counting.ErrComponentTooLarge):
		// Only reachable with approximate explicitly false: the default
		// counting contract degrades oversized components to sampling.
		httpErrorCode(w, http.StatusUnprocessableEntity, "component_too_large",
			"exact repair count out of reach: %v", err)
	default:
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
	}
}

// evalContext derives the evaluation context of one request: the
// server's default deadline, overridden by the request's timeoutMs and
// capped by MaxTimeout. The returned cancel must run when the handler
// finishes, releasing the deadline timer.
func (s *Server) evalContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	timeout := s.evalTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
	}
	if timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	if timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), timeout)
}

// evalOptions resolves the engine and resource budgets of one request
// against the server defaults.
func (s *Server) evalOptions(w http.ResponseWriter, req certainRequest) (core.Options, bool) {
	opts, ok := parseEngine(w, req.Engine)
	if !ok {
		return core.Options{}, false
	}
	opts.MaxSteps = s.maxSteps
	if req.MaxSteps > 0 && (s.maxSteps <= 0 || req.MaxSteps < s.maxSteps) {
		// Requests may tighten the budget, never widen it.
		opts.MaxSteps = req.MaxSteps
	}
	opts.MemoCap = s.memoCap
	opts.Approximate = req.Approximate == nil || *req.Approximate
	opts.Samples = req.Samples
	return opts, true
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return false
	}
	return true
}

// compile resolves the query text through the shared plan cache,
// translating errors to a 400. It records cache status in the response
// headers so the logging middleware can report it.
func (s *Server) compile(w http.ResponseWriter, text string) (*core.Plan, bool, bool) {
	return s.compileTraced(w, text, nil)
}

// compileTraced is compile with the request's stage tracer (nil when
// the request did not opt in): normalization and a miss's compilation
// show up as stages in the response breakdown.
func (s *Server) compileTraced(w http.ResponseWriter, text string, tr *trace.Tracer) (*core.Plan, bool, bool) {
	if text == "" {
		httpError(w, http.StatusBadRequest, "missing \"query\"")
		return nil, false, false
	}
	plan, hit, err := s.cache.GetOrCompileTraced(text, tr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil, false, false
	}
	if hit {
		w.Header().Set("X-CQA-Cache", "hit")
	} else {
		w.Header().Set("X-CQA-Cache", "miss")
	}
	return plan, hit, true
}

// resolveDB produces the evaluation index a certain/answers request
// runs against: for a stored snapshot (by name) the index cached on the
// snapshot — built once per snapshot version and reused across requests
// — and for inline facts a fresh index over the parsed database. When
// sharding is enabled, a stored snapshot also yields its cached shard
// pool (inline facts fall back to an ephemeral pool built inside core).
// Exactly one of "db" and "facts" must be set.
func (s *Server) resolveDB(w http.ResponseWriter, req certainRequest, plan *core.Plan, tr *trace.Tracer) (*match.Index, *shard.Pool, *dbRef, bool) {
	switch {
	case req.DB != "" && req.Facts != "":
		httpError(w, http.StatusBadRequest, "set either \"db\" or \"facts\", not both")
		return nil, nil, nil, false
	case req.DB != "":
		snap, ok := s.store.Get(req.DB)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown database %q", req.DB)
			return nil, nil, nil, false
		}
		if err := checkSchema(plan.Query, snap.DB); err != nil {
			httpError(w, http.StatusBadRequest, "database %q: %v", req.DB, err)
			return nil, nil, nil, false
		}
		return snap.IndexTraced(tr), snap.ShardPool(s.shards, s.hedge), &dbRef{Name: snap.Name, Version: snap.Version}, true
	case req.Facts != "":
		d, err := db.ParseFacts(plan.Query.Schema(), req.Facts)
		if err != nil {
			httpError(w, http.StatusBadRequest, "facts: %v", err)
			return nil, nil, nil, false
		}
		if !d.ConsistentFor() {
			httpError(w, http.StatusBadRequest, "a mode-c relation of the input violates its primary key")
			return nil, nil, nil, false
		}
		return match.NewIndex(d), nil, nil, true
	default:
		httpError(w, http.StatusBadRequest, "missing \"db\" (stored database name) or \"facts\" (inline facts)")
		return nil, nil, nil, false
	}
}

// checkSchema verifies that the stored facts of every relation the query
// uses carry the signature the query expects. Uploads infer signatures
// from the bar syntax, so a mismatch means the upload and the query
// disagree about keys or modes — evaluating anyway would be silently
// wrong.
func checkSchema(q query.Query, d *db.DB) error {
	for _, a := range q.Atoms {
		facts := d.FactsOf(a.Rel.Name)
		if len(facts) == 0 {
			continue
		}
		got := facts[0].Rel
		if got != a.Rel {
			return fmt.Errorf("relation %s: stored signature [arity %d, key %d, mode %s] differs from the query's [arity %d, key %d, mode %s]",
				a.Rel.Name, got.Arity, got.KeyLen, got.Mode, a.Rel.Arity, a.Rel.KeyLen, a.Rel.Mode)
		}
	}
	return nil
}

func parseEngine(w http.ResponseWriter, name string) (core.Options, bool) {
	engine, err := core.ParseEngine(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return core.Options{}, false
	}
	return core.Options{Engine: engine}, true
}

// --- handlers ---

// handleLivez is liveness: the process is up and serving HTTP. It stays
// true while draining (the process is alive; it is readiness that
// flips), and /healthz aliases it for backward compatibility.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //nolint:errcheck
}

// notReadyReasons reports why the server should not receive new
// traffic: it is draining (graceful shutdown flipped readiness before
// closing the listener), a snapshot evaluation-index build is in flight
// (the next request against that snapshot would stall on the build), or
// the admission gate is saturated (a new request would be shed anyway).
func (s *Server) notReadyReasons() []string {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if n := s.store.IndexStats().Building(); n > 0 {
		reasons = append(reasons, fmt.Sprintf("%d snapshot index build(s) in flight", n))
	}
	if n := s.store.ShardStats().Building; n > 0 {
		reasons = append(reasons, fmt.Sprintf("%d shard index build(s) in flight", n))
	}
	if len(s.sem) >= cap(s.sem) {
		reasons = append(reasons, fmt.Sprintf("admission saturated (%d in flight)", cap(s.sem)))
	}
	return reasons
}

// shardsInfo summarizes the shard clusters across every snapshot for
// the readiness body; all zero when sharding is disabled or no pool has
// been built yet.
type shardsInfo struct {
	Total     int `json:"total"`
	Ready     int `json:"ready"`
	Building  int `json:"building"`
	Unhealthy int `json:"unhealthy,omitempty"`
}

type readyzResponse struct {
	Status string     `json:"status"` // "ready" or "not_ready"
	Error  string     `json:"error,omitempty"`
	Code   string     `json:"code,omitempty"`
	Shards shardsInfo `json:"shards"`
}

// handleReadyz is readiness: whether this instance should receive new
// traffic right now. The body reports the shard-cluster state either
// way — a fresh snapshot swap shows building > 0 (and not_ready) until
// every shard finished rebuilding its partition.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.store.ShardStats()
	si := shardsInfo{Total: st.Total, Ready: st.Ready, Building: st.Building, Unhealthy: st.Unhealthy}
	if reasons := s.notReadyReasons(); len(reasons) > 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{
			Status: "not_ready",
			Error:  "not ready: " + strings.Join(reasons, "; "),
			Code:   "not_ready",
			Shards: si,
		})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", Shards: si})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	plan, hit, ok := s.compile(w, req.Query)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{
		Query:          plan.Query.String(),
		Class:          plan.Class.String(),
		HasCycle:       plan.HasCycle,
		HasStrongCycle: plan.HasStrongCycle,
		Cached:         hit,
	})
}

func (s *Server) handleCertain(w http.ResponseWriter, r *http.Request) {
	var req certainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var tr *trace.Tracer
	if traceRequested(r) {
		tr = trace.New()
	}
	// start covers the whole evaluation pipeline — normalize/compile,
	// snapshot index resolution, engine — matching what the stage
	// breakdown decomposes and what the slow log should charge.
	start := time.Now()
	plan, hit, ok := s.compileTraced(w, req.Query, tr)
	if !ok {
		return
	}
	opts, ok := s.evalOptions(w, req)
	if !ok {
		return
	}
	if s.router != nil && req.DB != "" && req.Facts == "" {
		s.certainViaCluster(w, r, req, plan, hit, start, opts)
		return
	}
	opts.Tracer = tr
	ix, pool, ref, ok := s.resolveDB(w, req, plan, tr)
	if !ok {
		return
	}
	opts.Shards = s.shards
	opts.ShardPool = pool
	ctx, cancel := s.evalContext(r, req.TimeoutMs)
	defer cancel()
	res, err := plan.CertainIndexedCtx(ctx, ix, opts)
	elapsed := time.Since(start)
	entry := slowEntry{
		Time:     start.UTC().Format(time.RFC3339Nano),
		Endpoint: "certain",
		Query:    plan.Query.String(),
		Class:    classLabel(plan.Class),
		dur:      elapsed,
	}
	if ref != nil {
		entry.DB = ref.Name
	}
	if tr != nil {
		entry.Trace = tr.Breakdown()
	}
	if err != nil {
		entry.Error = err.Error()
		s.observeEval(entry)
		s.evalError(w, err)
		return
	}
	entry.Engine = res.Engine.String()
	s.observeEval(entry)
	resp := certainResponse{
		Query:   plan.Query.String(),
		Certain: res.Certain,
		Class:   res.Class.String(),
		Engine:  res.Engine.String(),
		Cached:  hit,
		DB:      ref,
		Trace:   traceJSON(tr, elapsed),
	}
	if res.Approximate {
		s.metrics.degraded.Add(1)
		frac := res.Fraction
		resp.Approximate = true
		resp.Fraction = &frac
		w.Header().Set("X-CQA-Degraded", "sampling")
	}
	w.Header().Set("X-CQA-Engine", res.Engine.String())
	writeJSON(w, http.StatusOK, resp)
}

// handleCount serves #CERTAINTY: the number of repairs satisfying the
// query, exact while every constraint component fits the enumeration
// bound and the step budget, an anytime confidence-interval estimate
// beyond that (unless the request set approximate: false). Counting
// always evaluates locally — the factorized counter is not sharded, and
// a cluster-routing instance holds the replicated data anyway.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req certainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var tr *trace.Tracer
	if traceRequested(r) {
		tr = trace.New()
	}
	// As in handleCertain: charge compile + resolve + engine.
	start := time.Now()
	plan, hit, ok := s.compileTraced(w, req.Query, tr)
	if !ok {
		return
	}
	opts, ok := s.evalOptions(w, req)
	if !ok {
		return
	}
	opts.Tracer = tr
	ix, _, ref, ok := s.resolveDB(w, req, plan, tr)
	if !ok {
		return
	}
	ctx, cancel := s.evalContext(r, req.TimeoutMs)
	defer cancel()
	res, err := plan.CountIndexedCtx(ctx, ix, opts)
	elapsed := time.Since(start)
	entry := slowEntry{
		Time:     start.UTC().Format(time.RFC3339Nano),
		Endpoint: "count",
		Query:    plan.Query.String(),
		Class:    classLabel(plan.Class),
		Engine:   "count",
		dur:      elapsed,
	}
	if ref != nil {
		entry.DB = ref.Name
	}
	if tr != nil {
		entry.Trace = tr.Breakdown()
	}
	if err != nil {
		entry.Error = err.Error()
		s.observeEval(entry)
		s.evalError(w, err)
		return
	}
	s.observeEval(entry)
	s.metrics.countHist.Observe(elapsed)
	resp := countResponse{
		Query:      plan.Query.String(),
		Total:      res.Total.String(),
		Fraction:   res.Fraction,
		Exact:      res.Exact,
		Components: res.Components,
		Sampled:    res.Sampled,
		Class:      res.Class.String(),
		Cached:     hit,
		DB:         ref,
		Trace:      traceJSON(tr, elapsed),
	}
	if res.Exact {
		s.metrics.countExact.Add(1)
		resp.Satisfying = res.Satisfying.String()
	} else {
		s.metrics.countApprox.Add(1)
		conf := res.Confidence
		resp.Confidence = &conf
		w.Header().Set("X-CQA-Degraded", "count-sampling")
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	var req certainRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Free) == 0 {
		httpError(w, http.StatusBadRequest, "missing \"free\": the designated free variables")
		return
	}
	var tr *trace.Tracer
	if traceRequested(r) {
		tr = trace.New()
	}
	// As in handleCertain: charge compile + resolve + engine.
	start := time.Now()
	plan, hit, ok := s.compileTraced(w, req.Query, tr)
	if !ok {
		return
	}
	opts, ok := s.evalOptions(w, req)
	if !ok {
		return
	}
	if s.router != nil && req.DB != "" && req.Facts == "" {
		s.answersViaCluster(w, r, req, plan, hit, start, opts)
		return
	}
	opts.Tracer = tr
	ix, pool, ref, ok := s.resolveDB(w, req, plan, tr)
	if !ok {
		return
	}
	opts.Shards = s.shards
	opts.ShardPool = pool
	free := make([]query.Var, len(req.Free))
	for i, name := range req.Free {
		free[i] = query.Var(name)
	}
	ctx, cancel := s.evalContext(r, req.TimeoutMs)
	defer cancel()
	vals, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, opts)
	elapsed := time.Since(start)
	entry := slowEntry{
		Time:     start.UTC().Format(time.RFC3339Nano),
		Endpoint: "answers",
		Query:    plan.Query.String(),
		Class:    classLabel(plan.Class),
		Engine:   plan.Engine(opts).String(),
		dur:      elapsed,
	}
	if ref != nil {
		entry.DB = ref.Name
	}
	if tr != nil {
		entry.Trace = tr.Breakdown()
	}
	if err != nil {
		entry.Error = err.Error()
		s.observeEval(entry)
		s.evalError(w, err)
		return
	}
	s.observeEval(entry)
	answers := make([]map[string]string, len(vals))
	for i, v := range vals {
		m := make(map[string]string, len(v))
		for x, c := range v {
			m[string(x)] = string(c)
		}
		answers[i] = m
	}
	writeJSON(w, http.StatusOK, answersResponse{
		Query:   plan.Query.String(),
		Free:    req.Free,
		Answers: answers,
		Count:   len(answers),
		Class:   plan.Class.String(),
		Cached:  hit,
		DB:      ref,
		Trace:   traceJSON(tr, elapsed),
	})
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	var req rewriteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	plan, hit, ok := s.compile(w, req.Query)
	if !ok {
		return
	}
	if plan.Formula == nil {
		httpError(w, http.StatusUnprocessableEntity,
			"CERTAINTY(%s) is %s; only FO-classified queries have a consistent first-order rewriting",
			plan.Query, plan.Class)
		return
	}
	dialect := req.Dialect
	if dialect == "" {
		dialect = "logic"
	}
	var text string
	switch dialect {
	case "logic":
		text = rewrite.Format(plan.Formula)
	case "sql":
		// The plan already carries the rewriting; render it directly
		// instead of re-classifying via rewrite.SQL.
		text = rewrite.SQLFromFormula(plan.Formula)
	default:
		httpError(w, http.StatusBadRequest, "unknown dialect %q (want \"logic\" or \"sql\")", req.Dialect)
		return
	}
	writeJSON(w, http.StatusOK, rewriteResponse{
		Query:     plan.Query.String(),
		Class:     plan.Class.String(),
		Dialect:   dialect,
		Rewriting: text,
		Cached:    hit,
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	entries := catalog.Entries()
	out := make([]catalogEntry, len(entries))
	for i, e := range entries {
		out[i] = catalogEntry{Name: e.Name, Query: e.Query, Class: e.Class.String(), Source: e.Source}
	}
	writeJSON(w, http.StatusOK, out)
}

func snapshotJSON(snap *store.Snapshot) snapshotInfo {
	return snapshotInfo{
		Name:      snap.Name,
		Version:   snap.Version,
		Facts:     snap.Facts,
		Blocks:    snap.Blocks,
		Relations: snap.Relations,
		LoadedAt:  snap.LoadedAt.UTC().Format(time.RFC3339Nano),
	}
}

func (s *Server) handleDBPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		if bodyTooLarge(w, err) {
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	snap, err := s.store.PutFacts(name, string(body))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

// bodyTooLarge maps a MaxBytesReader trip to the 413 of the error
// taxonomy; it reports whether err was that trip.
func bodyTooLarge(w http.ResponseWriter, err error) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	httpErrorCode(w, http.StatusRequestEntityTooLarge, "body_too_large",
		"request body exceeds the %d byte limit", mbe.Limit)
	return true
}

// handleDBMutate applies a delta write to the named database: the facts
// named in delete leave, each upsert block replaces the full contents of
// its block, and the facts in insert join — in that order, so a request
// can atomically move a fact between blocks. The store group-commits
// concurrent deltas per name; the response carries the version the
// write is visible in (write-then-read requests against that version
// see the mutation immediately) plus the commit's net statistics.
func (s *Server) handleDBMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req mutateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		if bodyTooLarge(w, err) {
			return
		}
		httpError(w, http.StatusBadRequest, "malformed JSON body: %v", err)
		return
	}
	if len(req.Insert) == 0 && len(req.Delete) == 0 && len(req.Upsert) == 0 {
		httpError(w, http.StatusBadRequest,
			"empty delta: set \"insert\", \"delete\", or \"upsert\"")
		return
	}
	start := time.Now()
	var delta db.Delta
	for _, line := range req.Delete {
		f, err := db.ParseFact(nil, line)
		if err != nil {
			httpError(w, http.StatusBadRequest, "delete: %v", err)
			return
		}
		delta.Delete(f)
	}
	for _, blk := range req.Upsert {
		fs := make([]db.Fact, len(blk))
		for i, line := range blk {
			f, err := db.ParseFact(nil, line)
			if err != nil {
				httpError(w, http.StatusBadRequest, "upsert: %v", err)
				return
			}
			fs[i] = f
		}
		delta.UpsertBlock(fs)
	}
	for _, line := range req.Insert {
		f, err := db.ParseFact(nil, line)
		if err != nil {
			httpError(w, http.StatusBadRequest, "insert: %v", err)
			return
		}
		delta.Insert(f)
	}
	snap, res, err := s.store.ApplyDelta(name, delta)
	switch {
	case errors.Is(err, store.ErrNotFound):
		httpError(w, http.StatusNotFound, "unknown database %q", name)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.mutations.Add(1)
	s.metrics.applyHist.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, mutateResponse{DB: snapshotJSON(snap), Stats: res.Stats})
}

func (s *Server) handleDBGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	snap, ok := s.store.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown database %q", name)
		return
	}
	writeJSON(w, http.StatusOK, snapshotJSON(snap))
}

func (s *Server) handleDBDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.store.Delete(name) {
		httpError(w, http.StatusNotFound, "unknown database %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDBList(w http.ResponseWriter, r *http.Request) {
	snaps := s.store.List()
	out := make([]snapshotInfo, len(snaps))
	for i, snap := range snaps {
		out[i] = snapshotJSON(snap)
	}
	writeJSON(w, http.StatusOK, out)
}
