package server

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"cqa/internal/faultinject"
)

const shardTestFacts = `R(a | b)
R(a | c)
R(d | e)
S(b | z1)
S(c | z1)
S(e | z2)
`

// waitShardsReady polls readiness until the shard clusters of every
// snapshot finished building.
func waitShardsReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.store.ShardStats().Building > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shard builds still in flight after 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedServing drives the certain and answers routes of a sharded
// server end to end against a stored snapshot and checks the readiness
// body and the shard metrics.
func TestShardedServing(t *testing.T) {
	s := New(Config{CacheSize: 16, MaxWorkers: 4, Shards: 4})
	h := s.Handler()

	if rec := do(t, h, "PUT", "/v1/db/mine", shardTestFacts, nil); rec.Code != 200 {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body.String())
	}

	var cert certainResponse
	rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "mine"}`, &cert)
	if rec.Code != 200 {
		t.Fatalf("sharded certain: %d %s", rec.Code, rec.Body.String())
	}
	// Block R(a|...) is uncertain between b and c but both continue into
	// S; block R(d|...) continues too, so the query is certain.
	if !cert.Certain {
		t.Fatalf("sharded certain = false, want true: %+v", cert)
	}

	var ans answersResponse
	rec = do(t, h, "POST", "/v1/answers", `{"query": "R(x | y), S(y | z)", "db": "mine", "free": ["x"]}`, &ans)
	if rec.Code != 200 {
		t.Fatalf("sharded answers: %d %s", rec.Code, rec.Body.String())
	}
	if ans.Count != 2 {
		t.Fatalf("sharded answers = %+v, want x in {a, d}", ans)
	}
	got := map[string]bool{}
	for _, a := range ans.Answers {
		got[a["x"]] = true
	}
	if !got["a"] || !got["d"] {
		t.Fatalf("sharded answers = %v, want {a, d}", got)
	}

	waitShardsReady(t, s)
	var ready readyzResponse
	rec = do(t, h, "GET", "/readyz", "", &ready)
	if rec.Code != 200 {
		t.Fatalf("readyz: %d %s", rec.Code, rec.Body.String())
	}
	if ready.Status != "ready" || ready.Shards.Total != 4 || ready.Shards.Ready != 4 || ready.Shards.Building != 0 {
		t.Fatalf("readyz body: %+v", ready)
	}

	rec = do(t, h, "GET", "/metrics", "", nil)
	for _, frag := range []string{
		"cqa_shard_building 0",
		"cqa_shard_hedges_total",
		"cqa_shard_unhealthy{db=\"mine\",shard=\"0\"} 0",
		"cqa_shard_eval_duration_seconds_count{db=\"mine\",shard=\"0\"}",
	} {
		if !strings.Contains(rec.Body.String(), frag) {
			t.Errorf("metrics missing %q:\n%s", frag, rec.Body.String())
		}
	}
}

// TestShardUnavailable maps a persistent shard failure to the 503
// shard_unavailable taxonomy entry — a structured error, never a wrong
// boolean.
func TestShardUnavailable(t *testing.T) {
	defer faultinject.Reset()
	s := New(Config{CacheSize: 16, MaxWorkers: 4, Shards: 3})
	h := s.Handler()
	if rec := do(t, h, "PUT", "/v1/db/mine", shardTestFacts, nil); rec.Code != 200 {
		t.Fatalf("upload: %d", rec.Code)
	}
	faultinject.Set("shard.eval", func(int) error { return errors.New("dead shard") })
	var resp errorResponse
	rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "mine"}`, nil)
	if rec.Code != 503 {
		t.Fatalf("dead shards: %d %s, want 503", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Code != "shard_unavailable" {
		t.Fatalf("code = %q, want shard_unavailable\nbody: %s", resp.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}

	// The cluster heals once the fault clears: the same request succeeds
	// and readiness recovers.
	faultinject.Clear("shard.eval")
	var cert certainResponse
	if rec := do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "mine"}`, &cert); rec.Code != 200 || !cert.Certain {
		t.Fatalf("healed certain: %d %+v", rec.Code, cert)
	}
}

// TestShardedInlineFacts exercises the ephemeral-pool path: inline facts
// have no snapshot to cache a pool on, yet the sharded evaluation still
// answers correctly.
func TestShardedInlineFacts(t *testing.T) {
	s := New(Config{CacheSize: 16, MaxWorkers: 4, Shards: 3})
	h := s.Handler()
	var cert certainResponse
	rec := do(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nR(a | c)\nS(b | z1)"}`, &cert)
	if rec.Code != 200 {
		t.Fatalf("inline sharded certain: %d %s", rec.Code, rec.Body.String())
	}
	if cert.Certain {
		t.Fatalf("inline sharded certain = true, want false (block a may pick c)")
	}
}
