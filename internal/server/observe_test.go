package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// doTraced is do with the X-CQA-Trace opt-in header set.
func doTraced(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("X-CQA-Trace", "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		decodeBody(t, rec, out)
	}
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
}

func TestTraceOptIn(t *testing.T) {
	h := newTestServer().Handler()
	body := `{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nS(b | c)\nS(b | d)"}`

	// With the header, cold: a breakdown with the stages a cold FO
	// evaluation must pass through (normalize, compile, eliminator).
	var traced certainResponse
	if rec := doTraced(t, h, "POST", "/v1/certain", body, &traced); rec.Code != 200 {
		t.Fatalf("traced: %d %s", rec.Code, rec.Body.String())
	}
	if traced.Trace == nil {
		t.Fatal("traced response has no trace")
	}
	stages := make(map[string]bool)
	for _, st := range traced.Trace.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"normalize", "compile", "eliminator"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q: %+v", want, traced.Trace.Stages)
		}
	}

	// Warm plan: the compile stage disappears (a hit compiles nothing),
	// which is the cache signal a trace is supposed to show.
	var warm certainResponse
	doTraced(t, h, "POST", "/v1/certain", body, &warm)
	for _, st := range warm.Trace.Stages {
		if st.Stage == "compile" {
			t.Errorf("warm-plan trace still records a compile stage: %+v", warm.Trace.Stages)
		}
	}

	// Without the header: no trace in the response.
	var plain certainResponse
	if rec := do(t, h, "POST", "/v1/certain", body, &plain); rec.Code != 200 {
		t.Fatalf("untraced: %d %s", rec.Code, rec.Body.String())
	}
	if plain.Trace != nil {
		t.Fatalf("untraced response carries a trace: %+v", plain.Trace)
	}
}

func TestTraceStoredDBColdIndex(t *testing.T) {
	s := newTestServer()
	h := s.Handler()
	if rec := do(t, h, "PUT", "/v1/db/tr", "R(a | b)\nS(b | c)", nil); rec.Code != 200 {
		t.Fatalf("upload: %d", rec.Code)
	}
	var cold certainResponse
	doTraced(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "tr"}`, &cold)
	if cold.Trace == nil {
		t.Fatal("no trace")
	}
	sawBuild := false
	for _, st := range cold.Trace.Stages {
		if st.Stage == "index-build" {
			sawBuild = true
		}
	}
	if !sawBuild {
		t.Errorf("cold-snapshot trace missing index-build: %+v", cold.Trace.Stages)
	}
	var warm certainResponse
	doTraced(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "db": "tr"}`, &warm)
	for _, st := range warm.Trace.Stages {
		if st.Stage == "index-build" {
			t.Errorf("warm-snapshot trace still records index-build: %+v", warm.Trace.Stages)
		}
	}
}

func TestTraceCoNPStages(t *testing.T) {
	h := newTestServer().Handler()
	var resp certainResponse
	rec := doTraced(t, h, "POST", "/v1/certain",
		`{"query": "R(x | y), S(u | y)", "facts": "R(a | b)\nR(a | c)\nS(d | b)\nS(d | c)"}`, &resp)
	if rec.Code != 200 {
		t.Fatalf("conp: %d %s", rec.Code, rec.Body.String())
	}
	stages := make(map[string]bool)
	for _, st := range resp.Trace.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{"purify", "match", "conp"} {
		if !stages[want] {
			t.Errorf("coNP trace missing stage %q: %+v", want, resp.Trace.Stages)
		}
	}
}

func TestPerClassHistograms(t *testing.T) {
	h := newTestServer().Handler()
	do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nS(b | c)"}`, nil)
	rec := do(t, h, "GET", "/metrics", "", nil)
	body := rec.Body.String()
	for _, frag := range []string{
		`cqa_eval_duration_seconds_bucket{class="fo",le="0.0005"}`,
		`cqa_eval_duration_seconds_bucket{class="fo",le="+Inf"}`,
		`cqa_eval_duration_seconds_count{class="fo"} 1`,
		`cqa_eval_duration_seconds_count{class="conp"} 0`,
		`cqa_slowlog_entries_total`,
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("metrics missing %q", frag)
		}
	}
}

func TestSlowlogRecordsAndBounds(t *testing.T) {
	// Threshold 1ns: every evaluation is "slow". Size 4: the ring must
	// retain only the newest four.
	s := New(Config{CacheSize: 16, MaxWorkers: 4, SlowLogSize: 4, SlowLogThreshold: time.Nanosecond})
	h := s.Handler()
	for i := 0; i < 7; i++ {
		body := `{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nS(b | c)"}`
		if rec := do(t, h, "POST", "/v1/certain", body, nil); rec.Code != 200 {
			t.Fatalf("certain %d: %d", i, rec.Code)
		}
	}
	var resp slowlogResponse
	if rec := do(t, h, "GET", "/debug/slowlog", "", &resp); rec.Code != 200 {
		t.Fatalf("slowlog: %d", rec.Code)
	}
	if resp.Total != 7 {
		t.Errorf("total = %d, want 7", resp.Total)
	}
	if len(resp.Entries) != 4 {
		t.Fatalf("retained %d entries, want 4 (bounded ring)", len(resp.Entries))
	}
	e := resp.Entries[0]
	if e.Endpoint != "certain" || e.Class != "fo" || e.Engine != "fo" || e.Query == "" {
		t.Errorf("entry = %+v", e)
	}
}

func TestSlowlogDefaultThresholdSkipsFastRequests(t *testing.T) {
	s := newTestServer() // default 100ms threshold
	h := s.Handler()
	do(t, h, "POST", "/v1/certain", `{"query": "R(x | y), S(y | z)", "facts": "R(a | b)\nS(b | c)"}`, nil)
	var resp slowlogResponse
	do(t, h, "GET", "/debug/slowlog", "", &resp)
	if resp.Total != 0 || len(resp.Entries) != 0 {
		t.Errorf("sub-millisecond request entered the slow log: %+v", resp)
	}
}

// TestSlowlogEvictionLeaksNoGoroutines pins the eviction design:
// overwriting ring slots spawns nothing, so goroutine count is flat
// even under concurrent recording pressure far past the ring size.
func TestSlowlogEvictionLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	l := newSlowLog(8, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.record(slowEntry{Endpoint: "certain", dur: time.Millisecond})
				if i%100 == 0 {
					l.snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := l.count(); got != 8*500 {
		t.Fatalf("recorded %d, want %d", got, 8*500)
	}
	if got := len(l.snapshot()); got != 8 {
		t.Fatalf("retained %d, want 8", got)
	}
	// Give any stray goroutine a moment to show up, then compare.
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d across eviction", before, after)
	}
}

func TestDebugHandler(t *testing.T) {
	s := newTestServer()
	h := s.DebugHandler()
	if rec := do(t, h, "GET", "/debug/pprof/", "", nil); rec.Code != 200 {
		t.Errorf("pprof index: %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/debug/pprof/cmdline", "", nil); rec.Code != 200 {
		t.Errorf("pprof cmdline: %d", rec.Code)
	}
	var resp slowlogResponse
	if rec := do(t, h, "GET", "/debug/slowlog", "", &resp); rec.Code != 200 {
		t.Errorf("debug slowlog: %d", rec.Code)
	}
	// The main handler must NOT expose pprof — only the slow log.
	main := s.Handler()
	if rec := do(t, main, "GET", "/debug/pprof/", "", nil); rec.Code == 200 {
		t.Error("main handler exposes pprof")
	}
}

func TestTraceHeaderVariants(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want bool
	}{
		{"", false}, {"0", false}, {"false", false},
		{"1", true}, {"true", true}, {"yes", true},
	} {
		req := httptest.NewRequest("POST", "/v1/certain", nil)
		if tc.val != "" {
			req.Header.Set("X-CQA-Trace", tc.val)
		}
		if got := traceRequested(req); got != tc.want {
			t.Errorf("traceRequested(%q) = %v, want %v", tc.val, got, tc.want)
		}
	}
}
