package simplify

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTypeDB(t *testing.T) {
	q := query.MustParse("R(x | y, 'k')")
	d := factsDB(t, "R(a | b, k)")
	td, err := TypeDB(q, d)
	if err != nil {
		t.Fatal(err)
	}
	f := td.Facts()[0]
	if f.Args[0] != "x:a" || f.Args[1] != "y:b" || f.Args[2] != "k" {
		t.Errorf("typed fact = %s", f)
	}
	// Non-matching constant must error (unpurified input).
	if _, err := TypeDB(q, factsDB(t, "R(a | b, wrong)")); err == nil {
		t.Error("pattern mismatch not detected")
	}
	// Unknown relation must error.
	if _, err := TypeDB(q, factsDB(t, "Z(a | b)")); err == nil {
		t.Error("foreign relation not detected")
	}
}

func TestTypeDBPreservesCertainty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		pd := match.Purify(q, d)
		if pd.NumRepairs() > 1<<12 {
			continue
		}
		td, err := TypeDB(q, pd)
		if err != nil {
			t.Fatalf("TypeDB on purified db: %v\nq=%s\ndb:\n%s", err, q, pd)
		}
		want, err := naive.Certain(q, pd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := naive.Certain(q, td)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("typing changed certainty: %v -> %v\nq=%s", want, got, q)
		}
	}
}

func TestElimPatternsRepeatedVar(t *testing.T) {
	q := query.MustParse("R(x | y, x)")
	step, changed := ElimPatterns(q)
	if !changed {
		t.Fatal("expected a change")
	}
	a := step.Q.Atoms[0]
	if a.Rel.Arity != 2 || a.HasRepeatedVars() {
		t.Errorf("rewritten atom = %s", a)
	}
	d := factsDB(t, "R(a | b, a)")
	nd, err := step.TransformDB(d)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Len() != 1 || len(nd.Facts()[0].Args) != 2 {
		t.Errorf("projected db:\n%s", nd)
	}
}

func TestElimPatternsConstants(t *testing.T) {
	// Constant at non-key of a simple-key atom: projected away.
	q := query.MustParse("R(x | 'c', y)")
	step, changed := ElimPatterns(q)
	if !changed {
		t.Fatal("expected change")
	}
	if step.Q.Atoms[0].HasConstants() {
		t.Errorf("constants remain: %s", step.Q)
	}
	// Constant key of a simple-key atom is allowed to stay.
	q2 := query.MustParse("R('c' | y)")
	if _, changed := ElimPatterns(q2); changed {
		t.Error("constant simple-key should be untouched")
	}
	// Constant inside a composite key with variables: dropped from key.
	q3 := query.MustParse("R(x, 'c' | y)")
	step3, changed := ElimPatterns(q3)
	if !changed {
		t.Fatal("expected change")
	}
	if step3.Q.Atoms[0].Rel.KeyLen != 1 {
		t.Errorf("key should shrink to {x}: %s", step3.Q)
	}
	// All-constant key keeps one position.
	q4 := query.MustParse("R('a', 'b' | y)")
	step4, changed := ElimPatterns(q4)
	if !changed {
		t.Fatal("expected change")
	}
	r4 := step4.Q.Atoms[0].Rel
	if r4.KeyLen != 1 || r4.Arity != 2 {
		t.Errorf("signature [%d,%d], want [2,1]: %s", r4.Arity, r4.KeyLen, step4.Q)
	}
}

func TestElimPatternsPreservesCertainty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		p.PConst = 0.25
		q := workload.RandomQuery(rng, p)
		step, changed := ElimPatterns(q)
		if !changed {
			continue
		}
		d := match.Purify(q, workload.RandomDB(rng, q, workload.DefaultDBParams()))
		if d.NumRepairs() > 1<<12 {
			continue
		}
		nd, err := step.TransformDB(d)
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := naive.Certain(step.Q, nd)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("elim changed certainty %v -> %v\nq=%s -> %s\ndb:\n%s\nnew:\n%s",
				want, got, q, step.Q, d, nd)
		}
	}
}

func TestPackCompositeKeys(t *testing.T) {
	q := query.MustParse("R(x, y | z), S(y, z | x)")
	step, changed, err := PackCompositeKeys(q)
	if err != nil || !changed {
		t.Fatalf("pack: %v %v", changed, err)
	}
	for _, a := range step.Q.Atoms {
		if a.Rel.Mode == schema.ModeI && !a.Rel.SimpleKey() {
			t.Errorf("mode-i atom %s still composite", a)
		}
	}
	d := factsDB(t, `
		R(a, b | c)
		S(b, c | a)
	`)
	nd, err := step.TransformDB(d)
	if err != nil {
		t.Fatal(err)
	}
	// Each original fact becomes main + enc + dec.
	if nd.Len() != 6 {
		t.Errorf("transformed db has %d facts, want 6:\n%s", nd.Len(), nd)
	}
	if !nd.ConsistentFor() {
		t.Errorf("enc/dec must be consistent:\n%s", nd)
	}
}

func TestPackPreservesClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 400; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		p.PConst = 0
		q := workload.RandomQuery(rng, p)
		if func() bool {
			for _, a := range q.Atoms {
				if a.HasRepeatedVars() {
					return true
				}
			}
			return false
		}() {
			continue
		}
		step, changed, err := PackCompositeKeys(q)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			continue
		}
		before, _, err := attack.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		after, _, err := attack.Classify(step.Q)
		if err != nil {
			t.Fatal(err)
		}
		// Lemma 12 only promises strong-cycle-freeness is preserved, but
		// our Enc/Dec construction is designed to preserve the whole
		// class; flag any deviation for inspection.
		if (before == attack.CoNPComplete) != (after == attack.CoNPComplete) {
			t.Fatalf("packing moved the coNP boundary: %v -> %v\n%s -> %s",
				before, after, q, step.Q)
		}
		if before != attack.CoNPComplete && after == attack.CoNPComplete {
			t.Fatalf("packing introduced a strong cycle: %s -> %s", q, step.Q)
		}
	}
}

func TestPackRejectsPatterns(t *testing.T) {
	if _, _, err := PackCompositeKeys(query.MustParse("R(x, 'c' | y)")); err == nil {
		t.Error("constant in composite key should be rejected")
	}
	if _, _, err := PackCompositeKeys(query.MustParse("R(x, y | x)")); err == nil {
		t.Error("repeated variable should be rejected")
	}
}

// TestIsSaturatedExample6 reproduces Definition 3 on Example 6: q is not
// saturated; q' = q ∪ {S^c(y | z)} is.
func TestIsSaturatedExample6(t *testing.T) {
	q := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)")
	sat, err := IsSaturated(q)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Error("Example 6 query is not saturated")
	}
	q2 := q.Add(query.NewAtom(schema.NewConsistent("Ssat", 2, 1), query.V("y"), query.V("z")))
	sat2, err := IsSaturated(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !sat2 {
		t.Error("Example 6 query plus S^c(y|z) is saturated")
	}
}

func TestSaturateProducesSaturated(t *testing.T) {
	q := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)")
	steps, err := Saturate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("expected at least one saturation step")
	}
	final := steps[len(steps)-1].Q
	sat, err := IsSaturated(final)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("Saturate result not saturated: %s", final)
	}
	// Saturation adds only mode-c atoms: incnt unchanged.
	if final.InconsistencyCount() != q.InconsistencyCount() {
		t.Error("saturation changed incnt")
	}
}

func TestPipelineApply(t *testing.T) {
	q := query.MustParse("R(x | y, x)")
	step, _ := ElimPatterns(q)
	p := &Pipeline{Input: q, Steps: []Step{step}}
	if !p.Final().Equal(step.Q) {
		t.Error("Final wrong")
	}
	d := factsDB(t, "R(a | b, a)")
	nd, err := p.Apply(d)
	if err != nil || nd.Len() != 1 {
		t.Errorf("Apply: %v %v", nd, err)
	}
	empty := &Pipeline{Input: q}
	if !empty.Final().Equal(q) {
		t.Error("empty pipeline Final")
	}
}

func TestNormalizeQuery(t *testing.T) {
	q := query.MustParse("R(x, y | z, x), S(y | z)")
	n, err := NormalizeQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range n.Atoms {
		if a.Rel.Mode == schema.ModeI && !a.Rel.SimpleKey() {
			t.Errorf("mode-i atom %s not simple-key after normalization", a)
		}
		if a.HasRepeatedVars() {
			t.Errorf("atom %s still has repeated variables", a)
		}
	}
	sat, err := IsSaturated(n)
	if err != nil {
		t.Fatal(err)
	}
	if !sat {
		t.Errorf("normalized query not saturated: %s", n)
	}
	// incnt never grows: saturation adds only mode-c atoms.
	if n.InconsistencyCount() > q.InconsistencyCount()+1 {
		t.Errorf("incnt grew unexpectedly: %d -> %d", q.InconsistencyCount(), n.InconsistencyCount())
	}
}
