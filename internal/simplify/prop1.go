package simplify

import (
	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// SimulateConsistent implements the direction of Proposition 1 that
// eliminates mode-c relations: every atom R^c(x̄ | ȳ) is replaced by two
// fresh mode-i atoms R1(x̄ | ȳ) and R2(x̄ | ȳ) over the same terms, and
// every R-fact is copied into R1 and R2. Because the R-facts of a legal
// input are consistent, R1 and R2 each contribute singleton blocks whose
// only repair is the full copy, so certainty is preserved; the paper
// states the equivalence as a first-order reduction.
//
// The transformation shows mode-c relations are syntactic convenience,
// not extra power; the library uses it for cross-validation.
func SimulateConsistent(q query.Query) (Step, bool) {
	s := q.Schema()
	type pair struct{ r1, r2 schema.Relation }
	pairs := make(map[string]pair)
	newAtoms := make([]query.Atom, 0, q.Len()+2)
	changed := false
	for _, a := range q.Atoms {
		if a.Rel.Mode != schema.ModeC {
			newAtoms = append(newAtoms, a)
			continue
		}
		changed = true
		r1 := schema.Relation{Name: s.FreshName(a.Rel.Name + "_c1"), Arity: a.Rel.Arity, KeyLen: a.Rel.KeyLen, Mode: schema.ModeI}
		s.MustAdd(r1)
		r2 := schema.Relation{Name: s.FreshName(a.Rel.Name + "_c2"), Arity: a.Rel.Arity, KeyLen: a.Rel.KeyLen, Mode: schema.ModeI}
		s.MustAdd(r2)
		pairs[a.Rel.Name] = pair{r1, r2}
		newAtoms = append(newAtoms,
			query.Atom{Rel: r1, Args: a.Args},
			query.Atom{Rel: r2, Args: a.Args},
		)
	}
	if !changed {
		return Step{}, false
	}
	return Step{
		Name: "simulate-consistent",
		Q:    query.NewQuery(newAtoms...),
		TransformDB: func(d *db.DB) (*db.DB, error) {
			out := db.New()
			for _, f := range d.Facts() {
				p, ok := pairs[f.Rel.Name]
				if !ok {
					out.Add(f)
					continue
				}
				out.Add(db.Fact{Rel: p.r1, Args: f.Args})
				out.Add(db.Fact{Rel: p.r2, Args: f.Args})
			}
			return out, nil
		},
	}, true
}
