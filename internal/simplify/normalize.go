package simplify

import (
	"fmt"

	"cqa/internal/query"
)

// NormalizeQuery runs the query-level part of the Lemma 12 pipeline —
// pattern elimination, key packing, saturation — without a database.
// The result has no repeated variables inside atoms, constants only at
// simple-key key positions, simple-key mode-i atoms, and is saturated.
// Useful for static analysis of the dissolution regime (e.g. in tests of
// Lemmas 14/15); the solver applies the same steps jointly with their
// database transformations.
func NormalizeQuery(q query.Query) (query.Query, error) {
	if step, changed := ElimPatterns(q); changed {
		q = step.Q
	}
	step, changed, err := PackCompositeKeys(q)
	if err != nil {
		return query.Query{}, fmt.Errorf("simplify: %w", err)
	}
	if changed {
		q = step.Q
	}
	steps, err := Saturate(q)
	if err != nil {
		return query.Query{}, fmt.Errorf("simplify: %w", err)
	}
	if len(steps) > 0 {
		q = steps[len(steps)-1].Q
	}
	return q, nil
}
