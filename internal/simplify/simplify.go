// Package simplify implements the syntactic simplifications of Lemma 12
// and the saturation of Lemma 11 (Koutris & Wijsen, PODS 2015), as joint
// query/database transformations that preserve the certain answer:
//
//  1. typing: constants at variable positions are tagged with the
//     variable's name, making the database typed relative to q;
//  2. pattern elimination: repeated variables inside an atom and
//     constants outside simple-key key positions are projected away
//     (sound after purification, when every fact matches its pattern);
//  3. key packing: composite-key mode-i atoms become simple-key via an
//     injective tuple coding plus consistent Enc/Dec companion relations
//     that preserve the functional-dependency structure in both
//     directions;
//  4. saturation: Lemma 11's T^c(x, z) atoms are added until the query is
//     saturated (Definition 3).
//
// Each step is represented as a Step: the rewritten query plus a database
// transformer. The pipeline validates its own applicability conditions
// and reports an error rather than producing an unsound reduction.
package simplify

import (
	"fmt"
	"strings"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/fd"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// Step is one query transformation together with the matching database
// transformation. TransformDB must be applied to any database that the
// original query would have been evaluated on (after the preceding steps'
// transformations).
type Step struct {
	Name        string
	Q           query.Query
	TransformDB func(d *db.DB) (*db.DB, error)
}

// Pipeline is a sequence of steps ending in the fully simplified query.
type Pipeline struct {
	Input query.Query
	Steps []Step
}

// Final returns the query produced by the last step (or the input when no
// steps were needed).
func (p *Pipeline) Final() query.Query {
	if len(p.Steps) == 0 {
		return p.Input
	}
	return p.Steps[len(p.Steps)-1].Q
}

// Apply runs every step's database transformation in order.
func (p *Pipeline) Apply(d *db.DB) (*db.DB, error) {
	cur := d
	for _, s := range p.Steps {
		next, err := s.TransformDB(cur)
		if err != nil {
			return nil, fmt.Errorf("simplify: step %s: %w", s.Name, err)
		}
		cur = next
	}
	return cur, nil
}

// typeTag builds the typed constant for value c at a position whose query
// term is the variable v.
func typeTag(v query.Var, c query.Const) query.Const {
	return query.Const(string(v) + ":" + string(c))
}

// TypeDB makes a purified database typed relative to q: every constant at
// a variable position is prefixed with the variable's name, so the pools
// of distinct variables become disjoint (the paper's type(x) convention).
// Constants at constant positions are left alone; purification guarantees
// they match the query constant. The mapping is injective per position,
// so blocks and embeddings transfer bijectively and the certain answer is
// unchanged.
func TypeDB(q query.Query, d *db.DB) (*db.DB, error) {
	out := db.New()
	for _, f := range d.Facts() {
		atom, ok := q.AtomWithRel(f.Rel.Name)
		if !ok {
			return nil, fmt.Errorf("fact %s has no atom in %s (purify first)", f, q)
		}
		args := make([]query.Const, len(f.Args))
		for i, t := range atom.Args {
			if t.IsVar() {
				args[i] = typeTag(t.Var(), f.Args[i])
			} else {
				if t.Const() != f.Args[i] {
					return nil, fmt.Errorf("fact %s does not match pattern %s (purify first)", f, atom)
				}
				args[i] = f.Args[i]
			}
		}
		out.Add(db.Fact{Rel: f.Rel, Args: args})
	}
	return out, nil
}

// ElimPatterns removes repeated variables inside atoms and constants
// outside the key position of simple-key atoms, by projecting the
// offending positions away. Sound only on purified databases, where every
// fact matches its atom's pattern: the projection is then a bijection on
// facts that preserves blocks.
func ElimPatterns(q query.Query) (Step, bool) {
	type drop struct {
		rel      string
		keep     []int // positions kept, in order
		newRel   schema.Relation
		newArgs  []query.Term
		original schema.Relation
	}
	var drops []drop
	newAtoms := make([]query.Atom, 0, q.Len())
	changed := false
	for _, a := range q.Atoms {
		keep := keptPositions(a)
		if len(keep) == len(a.Args) {
			newAtoms = append(newAtoms, a)
			continue
		}
		changed = true
		newKeyLen := 0
		var newArgs []query.Term
		for _, p := range keep {
			if p < a.Rel.KeyLen {
				newKeyLen++
			}
			newArgs = append(newArgs, a.Args[p])
		}
		if newKeyLen == 0 {
			// The whole key was constants; keep the first key position so
			// the signature stays valid (a constant key of a simple-key
			// atom is allowed by Lemma 12).
			keep = append([]int{0}, keep...)
			newArgs = append([]query.Term{a.Args[0]}, newArgs...)
			newKeyLen = 1
		}
		rel := schema.Relation{
			Name:   a.Rel.Name + "_p",
			Arity:  len(keep),
			KeyLen: newKeyLen,
			Mode:   a.Rel.Mode,
		}
		drops = append(drops, drop{rel: a.Rel.Name, keep: keep, newRel: rel, original: a.Rel})
		newAtoms = append(newAtoms, query.Atom{Rel: rel, Args: newArgs})
	}
	if !changed {
		return Step{}, false
	}
	q2 := query.NewQuery(newAtoms...)
	byRel := make(map[string]drop)
	for _, dr := range drops {
		byRel[dr.rel] = dr
	}
	step := Step{
		Name: "elim-patterns",
		Q:    q2,
		TransformDB: func(d *db.DB) (*db.DB, error) {
			out := db.New()
			for _, f := range d.Facts() {
				dr, ok := byRel[f.Rel.Name]
				if !ok {
					out.Add(f)
					continue
				}
				args := make([]query.Const, len(dr.keep))
				for i, p := range dr.keep {
					args[i] = f.Args[p]
				}
				out.Add(db.Fact{Rel: dr.newRel, Args: args})
			}
			return out, nil
		},
	}
	return step, true
}

// keptPositions returns the argument positions to keep for an atom: the
// first occurrence of each variable, and constants only when they sit at
// the key position of a simple-key atom (position 0 with KeyLen 1) —
// every other constant position is redundant after purification.
func keptPositions(a query.Atom) []int {
	var keep []int
	seen := make(query.VarSet)
	for p, t := range a.Args {
		if t.IsVar() {
			if seen.Has(t.Var()) {
				continue
			}
			seen.Add(t.Var())
			keep = append(keep, p)
			continue
		}
		if p == 0 && a.Rel.KeyLen == 1 {
			keep = append(keep, p)
		}
	}
	return keep
}

// packConst is the injective tuple coding used by key packing. The
// relation name is part of the coding so that two relations with the same
// key tuple produce distinct constants — the fresh variables u of
// different packed atoms must have disjoint types.
func packConst(rel string, vals []query.Const) query.Const {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strings.ReplaceAll(string(v), "~", "~~")
	}
	return query.Const("<" + rel + ":" + strings.Join(parts, "~,") + ">")
}

// PackCompositeKeys replaces every composite-key mode-i atom
// R(x1, ..., xk | ȳ) (all-variable, repeat-free key) with the simple-key
// atom R'(u | x̄, ȳ) plus consistent companions Enc^c(x̄ | u) and
// Dec^c(u | x̄), where u is fresh. On the database side, R(ā, b̄) maps to
// R'(⟨ā⟩ | ā, b̄) with Enc(ā | ⟨ā⟩) and Dec(⟨ā⟩ | ā); the coding ⟨·⟩ is
// injective, so Enc and Dec are genuinely consistent and the FDs
// x̄ -> u and u -> x̄ hold, preserving the attack structure (mode-c atoms
// never attack).
func PackCompositeKeys(q query.Query) (Step, bool, error) {
	type pack struct {
		newRel, encRel, decRel schema.Relation
		k                      int
	}
	packs := make(map[string]pack)
	newAtoms := make([]query.Atom, 0, q.Len())
	used := q.Vars()
	changed := false
	for _, a := range q.Atoms {
		if a.Rel.Mode == schema.ModeC || a.Rel.SimpleKey() {
			newAtoms = append(newAtoms, a)
			continue
		}
		for _, t := range a.KeyArgs() {
			if t.IsConst() {
				return Step{}, false, fmt.Errorf("pack: atom %s has a constant in a composite key; run ElimPatterns first", a)
			}
		}
		if a.HasRepeatedVars() {
			return Step{}, false, fmt.Errorf("pack: atom %s has repeated variables; run ElimPatterns first", a)
		}
		changed = true
		u := query.Var("u_" + a.Rel.Name)
		for used.Has(u) {
			u += "'"
		}
		used.Add(u)
		k := a.Rel.KeyLen
		newRel := schema.Relation{Name: a.Rel.Name + "_k", Arity: a.Rel.Arity + 1, KeyLen: 1, Mode: schema.ModeI}
		encRel := schema.Relation{Name: a.Rel.Name + "_enc", Arity: k + 1, KeyLen: k, Mode: schema.ModeC}
		decRel := schema.Relation{Name: a.Rel.Name + "_dec", Arity: k + 1, KeyLen: 1, Mode: schema.ModeC}
		packs[a.Rel.Name] = pack{newRel: newRel, encRel: encRel, decRel: decRel, k: k}

		mainArgs := append([]query.Term{query.V(u)}, a.Args...)
		encArgs := append(append([]query.Term{}, a.KeyArgs()...), query.V(u))
		decArgs := append([]query.Term{query.V(u)}, a.KeyArgs()...)
		newAtoms = append(newAtoms,
			query.Atom{Rel: newRel, Args: mainArgs},
			query.Atom{Rel: encRel, Args: encArgs},
			query.Atom{Rel: decRel, Args: decArgs},
		)
	}
	if !changed {
		return Step{}, false, nil
	}
	q2 := query.NewQuery(newAtoms...)
	step := Step{
		Name: "pack-keys",
		Q:    q2,
		TransformDB: func(d *db.DB) (*db.DB, error) {
			out := db.New()
			for _, f := range d.Facts() {
				p, ok := packs[f.Rel.Name]
				if !ok {
					out.Add(f)
					continue
				}
				key := f.Args[:p.k]
				u := packConst(f.Rel.Name, key)
				mainArgs := append([]query.Const{u}, f.Args...)
				encArgs := append(append([]query.Const{}, key...), u)
				decArgs := append([]query.Const{u}, key...)
				out.Add(db.Fact{Rel: p.newRel, Args: mainArgs})
				out.Add(db.Fact{Rel: p.encRel, Args: encArgs})
				out.Add(db.Fact{Rel: p.decRel, Args: decArgs})
			}
			return out, nil
		},
	}
	return step, true, nil
}

// IsSaturated reports whether q is saturated (Definition 3): whenever
// K(q) |= x -> z and K([[q]]) does not, some atom F with
// K(q) |= x -> key(F) attacks x or z.
func IsSaturated(q query.Query) (bool, error) {
	x, z, err := unsaturatedPair(q)
	if err != nil {
		return false, err
	}
	return x == "" && z == "", nil
}

// unsaturatedPair returns a witness (x, z) for non-saturation, or empty
// variables when q is saturated.
func unsaturatedPair(q query.Query) (query.Var, query.Var, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return "", "", err
	}
	kq := fd.K(q)
	kc := fd.K(q.ConsistentPart())
	vars := q.Vars().Sorted()
	for _, x := range vars {
		closureQ := kq.Closure(query.NewVarSet(x))
		closureC := kc.Closure(query.NewVarSet(x))
		for _, z := range vars {
			if !closureQ.Has(z) || closureC.Has(z) {
				continue
			}
			// Some F with K(q) |= x -> key(F) must attack x or z.
			witnessed := false
			for i, a := range q.Atoms {
				if !a.KeyVars().SubsetOf(closureQ) {
					continue
				}
				if g.AttacksVar(i, x) || g.AttacksVar(i, z) {
					witnessed = true
					break
				}
			}
			if !witnessed {
				return x, z, nil
			}
		}
	}
	return "", "", nil
}

// Saturate applies Lemma 11 until q is saturated: for each witness pair
// (x, z) it adds a fresh atom T^c(x | z). The database transformation
// inserts T(θ(x) | θ(z)) for every embedding θ of the current query; under
// Lemma 11's preconditions this projection is consistent — the
// transformer verifies consistency and fails otherwise rather than emit
// an illegal instance.
func Saturate(q query.Query) ([]Step, error) {
	var steps []Step
	cur := q
	for i := 0; ; i++ {
		x, z, err := unsaturatedPair(cur)
		if err != nil {
			return nil, err
		}
		if x == "" && z == "" {
			return steps, nil
		}
		name := fmt.Sprintf("Tsat%d", i)
		for cur.HasRel(name) {
			name += "x"
		}
		rel := schema.Relation{Name: name, Arity: 2, KeyLen: 1, Mode: schema.ModeC}
		atom := query.NewAtom(rel, query.V(x), query.V(z))
		qBefore := cur
		next := cur.Add(atom)
		steps = append(steps, Step{
			Name: "saturate-" + name,
			Q:    next,
			TransformDB: func(d *db.DB) (*db.DB, error) {
				out := d.Clone()
				seen := make(map[query.Const]query.Const)
				ok := true
				match.NewIndex(d).Match(qBefore, query.Valuation{}, func(v query.Valuation) bool {
					a, b := v[x], v[z]
					if prev, dup := seen[a]; dup {
						if prev != b {
							ok = false
							return false
						}
						return true
					}
					seen[a] = b
					out.Add(db.Fact{Rel: rel, Args: []query.Const{a, b}})
					return true
				})
				if !ok {
					return nil, fmt.Errorf("saturation projection %s(%s | %s) is inconsistent; Lemma 11 preconditions violated", name, x, z)
				}
				return out, nil
			},
		})
		cur = next
		if i > 2*len(q.Vars())*len(q.Vars())+4 {
			return nil, fmt.Errorf("saturation did not converge on %s", q)
		}
	}
}
