package simplify

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/workload"
)

func TestSimulateConsistentShape(t *testing.T) {
	q := query.MustParse("R(x | y), T#c(y | z)")
	step, changed := SimulateConsistent(q)
	if !changed {
		t.Fatal("expected change")
	}
	if step.Q.InconsistencyCount() != 3 {
		t.Errorf("incnt = %d, want 3 (R + two copies)", step.Q.InconsistencyCount())
	}
	for _, a := range step.Q.Atoms {
		if a.Rel.Mode == schema.ModeC {
			t.Errorf("mode-c atom %s survived", a)
		}
	}
	// No mode-c atoms: no change.
	if _, changed := SimulateConsistent(query.MustParse("R(x | y)")); changed {
		t.Error("pure mode-i query should be untouched")
	}
}

// TestProposition1 validates the reduction on random instances: the
// certain answer is identical before and after replacing mode-c atoms by
// duplicated mode-i copies.
func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	checked := 0
	for trial := 0; trial < 400 && checked < 150; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		p.PModeC = 0.5
		q := workload.RandomQuery(rng, p)
		step, changed := SimulateConsistent(q)
		if !changed {
			continue
		}
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<11 {
			continue
		}
		nd, err := step.TransformDB(d)
		if err != nil {
			t.Fatal(err)
		}
		if nd.NumRepairs() > 1<<12 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := naive.Certain(step.Q, nd)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Proposition 1 violated: %v -> %v\nq=%s -> %s\ndb:\n%s",
				want, got, q, step.Q, d)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestProposition1PreservesClass: the classification agrees across the
// simulation (both directions of the paper's equivalence).
func TestProposition1PreservesClass(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 400; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		p.PModeC = 0.5
		q := workload.RandomQuery(rng, p)
		step, changed := SimulateConsistent(q)
		if !changed {
			continue
		}
		cls1, err := classOf(q)
		if err != nil {
			t.Fatal(err)
		}
		cls2, err := classOf(step.Q)
		if err != nil {
			t.Fatal(err)
		}
		if cls1 != cls2 {
			t.Fatalf("classification changed: %v -> %v\n%s -> %s", cls1, cls2, q, step.Q)
		}
	}
}

func classOf(q query.Query) (attack.Class, error) {
	c, _, err := attack.Classify(q)
	return c, err
}
