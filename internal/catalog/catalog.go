// Package catalog collects named self-join-free conjunctive queries from
// the consistent-query-answering literature together with their published
// (or derivable) complexity classifications. The catalog grounds the E3
// experiment ("Table 1"): the library's trichotomy classifier must
// reproduce every entry.
package catalog

import (
	"fmt"
	"strings"

	"cqa/internal/attack"
	"cqa/internal/query"
)

// Entry is one catalog query.
type Entry struct {
	Name   string
	Query  string // textual syntax, parseable by query.Parse
	Class  attack.Class
	Source string // where the query (or its classification) comes from
}

// Entries returns the catalog in a stable order.
func Entries() []Entry {
	return []Entry{
		// --- Queries from Koutris & Wijsen, PODS 2015 ---
		{
			Name:   "kw15-example2-figure1",
			Query:  "R(x | y), S(y | z), T(z | x), U(x | u), V(x, u | v)",
			Class:  attack.PTime,
			Source: "KW15 Example 2 / Figure 1: cyclic attack graph, all attacks weak",
		},
		{
			Name:   "kw15-example5",
			Query:  "R(x | y), S(y | 'b')",
			Class:  attack.FO,
			Source: "KW15 Example 5: acyclic attack graph with explicit FO rewriting",
		},
		{
			Name:   "kw15-example6",
			Query:  "R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)",
			Class:  attack.PTime,
			Source: "KW15 Examples 6/9: weak cycle R ~> U ~> R, unsaturated query",
		},
		{
			Name:   "kw15-example7-figure2",
			Query:  "R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)",
			Class:  attack.PTime,
			Source: "KW15 Example 7 / Figure 2: R, S form an initial strong component; weak",
		},
		{
			Name:   "kw15-example13",
			Query:  "R1(x0 | y1), R2(x0 | y2), S#c(y1, y2 | x1), R3(x0 | y3), V(x1 | x0)",
			Class:  attack.PTime,
			Source: "KW15 Example 13: dissolution walkthrough, Markov edge x0 -> x1",
		},
		{
			Name:   "kw15-example14",
			Query:  "R(x0 | x1, y), S(x1 | x0, y)",
			Class:  attack.PTime,
			Source: "KW15 Example 14: cycle whose support check fails on y",
		},
		{
			Name:   "kw15-example15",
			Query:  "R(x0 | x1), S(x1 | x2, x0), V(x2 | x0)",
			Class:  attack.PTime,
			Source: "KW15 Example 15: shorter-Markov-cycle normalization",
		},
		{
			Name:   "kw15-example17",
			Query:  "R(x0 | y1, y2), V(x1 | y2), S1#c(y1, y2 | x1), S2#c(y2 | x0)",
			Class:  attack.PTime,
			Source: "KW15 Example 17: support check with shared y2",
		},
		{
			Name:   "kw15-example18",
			Query:  "R(x0 | x1, y), S(x1 | x0)",
			Class:  attack.PTime,
			Source: "KW15 Example 18: multiple T-facts per cycle",
		},
		{
			Name:   "kw15-q0",
			Query:  "R0(x | y), S0(y | x)",
			Class:  attack.PTime,
			Source: "KW15 Lemma 7 / Wijsen IPL 2010: the canonical L-hard, P\\FO query",
		},

		// --- Queries from earlier dichotomy papers ---
		{
			Name:   "fm05-rewritable-chain",
			Query:  "R(x | y), S(y | z)",
			Class:  attack.FO,
			Source: "Fuxman & Miller ICDT 2005: Cforest chain, FO-rewritable",
		},
		{
			Name:   "fm05-nonkey-join",
			Query:  "R(x | y), S(u | y)",
			Class:  attack.CoNPComplete,
			Source: "Fuxman & Miller ICDT 2005 / Kolaitis & Pema IPL 2012: non-key join",
		},
		{
			Name:   "kp12-weak-two-cycle",
			Query:  "R(x | y), S(y | x)",
			Class:  attack.PTime,
			Source: "Kolaitis & Pema IPL 2012: mutually weak attacks, in P, not FO",
		},
		{
			Name:   "kp12-half-strong",
			Query:  "R(x | y, z), S(z | y)",
			Class:  attack.CoNPComplete,
			Source: "two-atom query with a strong attack cycle (key(S) not determined... see test)",
		},
		{
			Name:   "ks14-simple-key-path",
			Query:  "R1(x1 | x2), R2(x2 | x3), R3(x3 | x4)",
			Class:  attack.FO,
			Source: "Koutris & Suciu ICDT 2014: simple-key path, tractable and FO",
		},
		{
			Name:   "ks14-simple-key-cycle3",
			Query:  "R1(x1 | x2), R2(x2 | x3), R3(x3 | x1)",
			Class:  attack.PTime,
			Source: "Koutris & Suciu ICDT 2014: simple-key cycle, tractable via dissolution",
		},
		{
			Name:   "ks14-hard-triangle",
			Query:  "R(x | y), S(y | z), T(x, z | w)",
			Class:  attack.CoNPComplete,
			Source: "triangle with composite-key apex: strong cycle (verified vs oracle)",
		},

		// --- Queries from Wijsen's attack-graph papers ---
		{
			Name:   "w10-star",
			Query:  "R1(x | y1), R2(x | y2), R3(x | y3)",
			Class:  attack.FO,
			Source: "Wijsen PODS 2010: shared-key star, acyclic attack graph",
		},
		{
			Name:   "w12-branching",
			Query:  "R(x | y), S(y | z), T(y | w)",
			Class:  attack.FO,
			Source: "Wijsen TODS 2012: tree-shaped joins, FO-rewritable",
		},
		{
			Name:   "w13-strong-cycle",
			Query:  "R(x | y), S(y | x), T(u | y)",
			Class:  attack.CoNPComplete,
			Source: "Wijsen PODS 2013 style: weak 2-cycle broken by a non-key joining atom",
		},

		// --- Structural families ---
		{
			Name:   "family-path4",
			Query:  "R1(x1 | x2), R2(x2 | x3), R3(x3 | x4), R4(x4 | x5)",
			Class:  attack.FO,
			Source: "path family, length 4",
		},
		{
			Name:   "family-cycle4",
			Query:  "R1(x1 | x2), R2(x2 | x3), R3(x3 | x4), R4(x4 | x1)",
			Class:  attack.PTime,
			Source: "cycle family, length 4",
		},
		{
			Name:   "family-constant-anchor",
			Query:  "R('c' | y), S(y | z)",
			Class:  attack.FO,
			Source: "constant key anchor",
		},
		{
			Name:   "family-composite-weak",
			Query:  "R(x, y | z), S(y, z | x)",
			Class:  attack.PTime,
			Source: "composite-key weak 2-cycle (exercises key packing)",
		},
		{
			Name:   "family-consistent-helper",
			Query:  "R(x | y), S#c(y | z), T(z | x)",
			Class:  attack.PTime,
			Source: "weak cycle through a consistent relation",
		},
	}
}

// ByName returns the entry with the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Entries() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// MustQuery parses the entry's query.
func (e Entry) MustQuery() query.Query {
	return query.MustParse(e.Query)
}

// FamilyEntries returns programmatically generated entries whose classes
// are known by construction: key-join paths and stars are FO, key-join
// cycles are P\FO for every length at least 2.
func FamilyEntries() []Entry {
	var out []Entry
	for n := 2; n <= 6; n++ {
		out = append(out, Entry{
			Name:   fmt.Sprintf("gen-path-%d", n),
			Query:  pathQuery(n),
			Class:  attack.FO,
			Source: "key-join path family (acyclic attack graph for every length)",
		})
		out = append(out, Entry{
			Name:   fmt.Sprintf("gen-cycle-%d", n),
			Query:  cycleQuery(n),
			Class:  attack.PTime,
			Source: "key-join cycle family (weak attack cycle for every length)",
		})
		out = append(out, Entry{
			Name:   fmt.Sprintf("gen-star-%d", n),
			Query:  starQuery(n),
			Class:  attack.FO,
			Source: "shared-key star family",
		})
	}
	return out
}

func pathQuery(n int) string {
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprintf("R%d(x%d | x%d)", i+1, i+1, i+2)
	}
	return strings.Join(parts, ", ")
}

func cycleQuery(n int) string {
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprintf("R%d(x%d | x%d)", i+1, i+1, (i+1)%n+1)
	}
	return strings.Join(parts, ", ")
}

func starQuery(n int) string {
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprintf("R%d(x | y%d)", i+1, i+1)
	}
	return strings.Join(parts, ", ")
}
