package catalog

import (
	"testing"

	"cqa/internal/attack"
	"cqa/internal/query"
)

// TestCatalogClassification: the trichotomy classifier reproduces every
// published classification in the catalog (experiment E3).
func TestCatalogClassification(t *testing.T) {
	entries := Entries()
	if len(entries) < 20 {
		t.Fatalf("catalog has only %d entries", len(entries))
	}
	names := make(map[string]bool)
	for _, e := range entries {
		if names[e.Name] {
			t.Errorf("duplicate catalog name %s", e.Name)
		}
		names[e.Name] = true
		q, err := query.Parse(e.Query)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		got, _, err := attack.Classify(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got != e.Class {
			t.Errorf("%s: classified %v, catalog says %v (%s)", e.Name, got, e.Class, e.Source)
		}
	}
}

func TestByName(t *testing.T) {
	e, ok := ByName("kw15-q0")
	if !ok || e.Class != attack.PTime {
		t.Fatalf("ByName(kw15-q0) = %+v, %v", e, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should miss")
	}
	if e.MustQuery().Len() != 2 {
		t.Fatal("q0 should have two atoms")
	}
}

// TestFamilyEntries: the generated families classify as constructed.
func TestFamilyEntries(t *testing.T) {
	entries := FamilyEntries()
	if len(entries) != 15 {
		t.Fatalf("have %d family entries, want 15", len(entries))
	}
	for _, e := range entries {
		q, err := query.Parse(e.Query)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		got, _, err := attack.Classify(q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if got != e.Class {
			t.Errorf("%s: classified %v, want %v (%s)", e.Name, got, e.Class, e.Query)
		}
	}
}
