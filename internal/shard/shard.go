// Package shard is the key-partitioned scatter-gather tier of the
// evaluation engines: a deterministic "cluster in a process". A
// db.DB snapshot is split into N shards by a hash of the block key —
// every block (the unit of the Lemma 9 test) lives entirely on one
// shard — and each shard owns an independently built block index over
// its part plus a channel-based worker that executes evaluation tasks
// against it. A coordinator (in package core) scatters the top level of
// an evaluation across the shards and merges: FO certainty is an
// early-exit existential over the shards' block partitions, and certain
// answers are a set union of per-shard answer sets.
//
// Sharding partitions the top-level *work*, not the data closure:
// deeper levels of the Lemma 10 recursion probe blocks of other
// relations, so every shard task evaluates its residues against the
// full shared snapshot. That keeps the merge semantics exact — a shard
// returning true is definitive, false requires every shard, and a shard
// failure is an error, never a wrong boolean.
//
// The cluster behaviors of a real multi-node topology are modeled
// in-process and are deterministic under test: per-shard health states
// (Building → Ready / Unhealthy) feed the readiness probe, the
// faultinject hooks "shard.index" and "shard.eval" (and their
// per-shard variants "shard.index.<id>" / "shard.eval.<id>") inject
// latency and failures, and hedged duplicate dispatch bounds the
// latency cost of a straggler shard.
package shard

import (
	"fmt"
	"hash/fnv"
	"runtime"

	"cqa/internal/db"
	"cqa/internal/trace"
)

// Workers normalizes a requested worker count the way every pool in the
// repository should: a request of <= 0 selects GOMAXPROCS, and the
// result is clamped to the number of jobs so no worker is ever idle by
// construction. Used by the flat certain-answers pool and the shard
// pool's parallel index build.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Of returns the shard owning the block with the given ID, for n
// shards: an FNV-1a hash of the canonical block ID modulo n. The
// assignment is a pure function of the block key, so every build of the
// same snapshot at the same shard count partitions identically.
func Of(blockID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(blockID))
	return int(h.Sum64() % uint64(n))
}

// Health is the state of one shard as fed to the readiness probe.
type Health int32

const (
	// HealthBuilding is a shard whose block index build has not yet
	// completed; readiness fails while any shard reports it.
	HealthBuilding Health = iota
	// HealthReady is a shard serving evaluations normally.
	HealthReady
	// HealthUnhealthy is a shard whose last index build or evaluation
	// failed for a reason other than the request's own limits.
	HealthUnhealthy
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case HealthBuilding:
		return "building"
	case HealthReady:
		return "ready"
	case HealthUnhealthy:
		return "unhealthy"
	}
	return "unknown"
}

// View is the read-only face of one shard handed to an evaluation task:
// the shard's own block partition plus the full snapshot for residue
// probes.
type View struct {
	// ID is the shard number, 0-based.
	ID int
	// DB is the full shared snapshot; lookups that cross shard
	// boundaries (BlockByKey probes of other relations) go here.
	DB *db.DB

	s *shardState
}

// BlocksOf returns the shard-owned blocks of the named relation, in the
// snapshot's first-seen order. The slice is shared; do not modify.
func (v *View) BlocksOf(relName string) []db.Block {
	return v.s.blocks[relName]
}

// SpansOf returns the shard-owned columnar block indices of the named
// relation — the interned form of BlocksOf, valid against the
// snapshot's columnar view. ok is false when the relation is irregular
// there (or the snapshot has no facts for it), in which case the caller
// must use BlocksOf. The slice is shared; do not modify.
func (v *View) SpansOf(relName string) ([]int32, bool) {
	sp, ok := v.s.spans[relName]
	return sp, ok
}

// NumBlocks returns the number of blocks this shard owns.
func (v *View) NumBlocks() int { return v.s.numBlocks }

// NewView builds a standalone view of shard id (of n) over d, outside
// any pool: the same Of-hash partition a pool shard would own, built
// synchronously on the caller. A remote cluster node uses it when the
// partition width a request names differs from the width of the pool
// its snapshot already cached — correctness must not depend on every
// node being configured with the same local fan-out. The build fires
// the "shard.index" fault hooks and wraps a failure in ErrFailed,
// exactly like a pool build.
func NewView(d *db.DB, id, n int) (*View, error) {
	if n < 1 {
		n = 1
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("shard: view id %d out of range [0,%d)", id, n)
	}
	p := &Pool{db: d, n: n}
	s := &shardState{id: id, pool: p, hist: trace.NewHistogram(nil)}
	if err := s.build(); err != nil {
		return nil, fmt.Errorf("%w: shard %d index build: %w", ErrFailed, id, err)
	}
	s.built.Store(true)
	return &View{ID: id, DB: d, s: s}, nil
}
