package shard_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/difftest"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/shard"
	"time"

	"cqa/internal/workload"
)

// shardCounts are the fan-outs the differential suite compares against
// the monolithic path: the degenerate single shard, and two coprime
// counts so block ownership actually moves between them.
var shardCounts = []int{1, 3, 7}

// freeVarsOf picks a deterministic free-variable list for the answers
// comparison: up to two variables in sorted order.
func freeVarsOf(q query.Query) []query.Var {
	vars := q.Vars().Sorted()
	if len(vars) > 2 {
		vars = vars[:2]
	}
	return vars
}

func answerKeys(t *testing.T, vals []query.Valuation) map[string]bool {
	t.Helper()
	keys := make(map[string]bool, len(vals))
	for _, v := range vals {
		k := v.Key()
		if keys[k] {
			t.Fatalf("duplicate answer %s", k)
		}
		keys[k] = true
	}
	return keys
}

// TestShardedDifferential replays the seeded difftest corpus (the same
// generator and case count as TestDifferentialSeeded, all six families)
// and checks that the sharded scatter-gather evaluation agrees with the
// monolithic path at every tested shard count — Boolean certainty
// exactly, certain answers as sets.
func TestShardedDifferential(t *testing.T) {
	const wantChecked = 520
	ctx := context.Background()
	checked := 0
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % difftest.NumShapes)
		q, d := difftest.Generate(seed, shape)
		plan, err := core.Compile(q)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ix := match.NewIndex(d)
		mono, err := plan.CertainIndexed(ix, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: monolithic: %v", seed, err)
		}
		free := freeVarsOf(q)
		monoAns, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: monolithic answers: %v", seed, err)
		}
		monoKeys := answerKeys(t, monoAns)

		for _, k := range shardCounts {
			res, err := plan.CertainIndexedCtx(ctx, ix, core.Options{Shards: k})
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, k, err)
			}
			if res.Certain != mono.Certain {
				t.Fatalf("seed %d shards %d: sharded = %v, monolithic = %v\nquery: %s\ndb:\n%s",
					seed, k, res.Certain, mono.Certain, q, d)
			}
			ans, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, core.Options{Shards: k})
			if err != nil {
				t.Fatalf("seed %d shards %d: answers: %v", seed, k, err)
			}
			keys := answerKeys(t, ans)
			if len(keys) != len(monoKeys) {
				t.Fatalf("seed %d shards %d: %d answers, monolithic %d\nquery: %s (free %v)\ndb:\n%s",
					seed, k, len(keys), len(monoKeys), q, free, d)
			}
			for mk := range monoKeys {
				if !keys[mk] {
					t.Fatalf("seed %d shards %d: answer %s missing\nquery: %s (free %v)\ndb:\n%s",
						seed, k, mk, q, free, d)
				}
			}
		}
		checked++
	}
	if checked < wantChecked {
		t.Fatalf("verified only %d cases, want %d", checked, wantChecked)
	}
	t.Logf("verified %d cases at shard counts %v", checked, shardCounts)
}

// TestShardedDifferentialUnderFaults injects one-shot evaluation and
// index-build faults into every sharded run of a corpus slice: the
// evaluation must either fail with the structured shard error or return
// exactly the monolithic answer — never a wrong boolean.
func TestShardedDifferentialUnderFaults(t *testing.T) {
	defer faultinject.Reset()
	ctx := context.Background()
	boom := errors.New("chaos")
	for _, hook := range []string{"shard.eval", "shard.index"} {
		for seed := int64(0); seed < 60; seed++ {
			q, d := difftest.Generate(seed, byte(seed%difftest.NumShapes))
			plan, err := core.Compile(q)
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			ix := match.NewIndex(d)
			mono, err := plan.CertainIndexed(ix, core.Options{})
			if err != nil {
				t.Fatalf("seed %d: monolithic: %v", seed, err)
			}
			// Fire exactly once: one shard of the scatter fails, the
			// rest run clean.
			faultinject.SetWindow(hook, 0, 1, func(int) error { return boom })
			res, err := plan.CertainIndexedCtx(ctx, ix, core.Options{Shards: 3})
			faultinject.Clear(hook)
			if err != nil {
				if !errors.Is(err, shard.ErrFailed) {
					t.Fatalf("seed %d hook %s: unstructured error %v", seed, hook, err)
				}
				continue
			}
			// An early-exit true can legitimately win the race against
			// the faulted shard; what it may never do is disagree.
			if res.Certain != mono.Certain {
				t.Fatalf("seed %d hook %s: sharded = %v under fault, monolithic = %v\nquery: %s\ndb:\n%s",
					seed, hook, res.Certain, mono.Certain, q, d)
			}
		}
	}
}

// TestShardedDeadShard pins a persistent fault to one shard: every
// scatter that touches it reports the structured failure, and the pool
// marks the shard unhealthy.
func TestShardedDeadShard(t *testing.T) {
	defer faultinject.Reset()
	q := workload.PathQuery(2)
	rng := rand.New(rand.NewSource(4))
	d := workload.RandomDB(rng, q, workload.DefaultDBParams())
	plan, err := core.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	mono, err := plan.CertainIndexed(ix, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	pool := shard.NewPool(d, 3, shard.PoolOptions{})
	defer pool.Close()
	faultinject.Set("shard.eval.1", func(int) error { return errors.New("dead") })

	res, err := plan.CertainIndexedCtx(context.Background(), ix, core.Options{ShardPool: pool})
	if err == nil {
		// The early-exit merge may decide true before consulting the
		// dead shard; a false verdict would have required it.
		if !res.Certain || !mono.Certain {
			t.Fatalf("dead shard produced a definitive %v (monolithic %v) without an error", res.Certain, mono.Certain)
		}
	} else if !errors.Is(err, shard.ErrFailed) {
		t.Fatalf("dead shard error is unstructured: %v", err)
	}
	st := pool.Stats()
	if err != nil && st.Shards[1].Health != shard.HealthUnhealthy {
		t.Fatalf("dead shard health %v, want unhealthy", st.Shards[1].Health)
	}
}

// TestShardedBudgetDegradesToApproximate exhausts the shared step
// budget inside a sharded coNP evaluation: with Approximate set the
// degraded sampling estimate propagates through the shard dispatch.
func TestShardedBudgetDegradesToApproximate(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(9))
	d := workload.HardInstance(rng, 30, 120, 4)
	plan, err := core.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	opts := core.Options{Engine: core.EngineCoNP, MaxSteps: 50, Shards: 3}
	if _, err := plan.CertainIndexedCtx(context.Background(), ix, opts); !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Fatalf("tiny budget through shards: got %v, want ErrBudgetExceeded", err)
	}

	opts.Approximate = true
	opts.Samples = 64
	res, err := plan.CertainIndexedCtx(context.Background(), ix, opts)
	if err != nil {
		t.Fatalf("degraded sharded evaluation failed: %v", err)
	}
	if !res.Approximate {
		t.Fatalf("expected an approximate result through the shard dispatch, got %+v", res)
	}
	if res.Fraction < 0 || res.Fraction > 1 {
		t.Errorf("fraction out of range: %v", res.Fraction)
	}
}

// TestShardedSlowShardHedges routes a scatter over a pool whose shard 0
// stalls on its first evaluation: with hedging enabled the duplicate
// dispatch wins and the request completes fast and correct. The
// instance is deliberately not certain — a false merge needs every
// shard, so the early-exit cancellation cannot beat the hedge to the
// stalled shard.
func TestShardedSlowShardHedges(t *testing.T) {
	defer faultinject.Reset()
	q := query.MustParse("R(x | y), S(y | z)")
	d, err := db.ParseFacts(nil, "R(a | b)\nR(a | c)\nS(b | z1)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	mono, err := plan.CertainIndexed(ix, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	pool := shard.NewPool(d, 2, shard.PoolOptions{Hedge: 2 * time.Millisecond})
	defer pool.Close()
	// Wait out the initial builds so the injected stall hits the
	// evaluation, not the index build.
	waitReady(t, pool)
	faultinject.SetWindow("shard.eval.0", 0, 1, func(int) error {
		time.Sleep(500 * time.Millisecond)
		return nil
	})
	start := time.Now()
	res, err := plan.CertainIndexedCtx(context.Background(), ix, core.Options{ShardPool: pool})
	if err != nil {
		t.Fatalf("hedged scatter: %v", err)
	}
	if res.Certain != mono.Certain || res.Certain {
		t.Fatalf("hedged scatter = %v, monolithic = %v (instance is not certain)", res.Certain, mono.Certain)
	}
	if took := time.Since(start); took >= 500*time.Millisecond {
		t.Errorf("hedged scatter took %v; the duplicate did not win", took)
	}
	if st := pool.Stats(); st.HedgeWins < 1 {
		t.Errorf("no hedge win recorded: %+v", st)
	}
}

func waitReady(t *testing.T, p *shard.Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Building() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shards still building after 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
