package shard

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/trace"
)

// ErrFailed marks a shard-infrastructure failure: an injected (or, one
// day, remote) index-build or evaluation fault, as opposed to an error
// of the request itself (deadline, budget). The serving layer maps it
// to 503 shard_unavailable — the coordinator surfaces the failure
// rather than merge a partial scatter into a wrong boolean.
var ErrFailed = errors.New("shard: shard failed")

// taskQueueCap bounds each shard worker's task queue. A dispatch that
// finds the queue full (the shard is badly backed up) runs the task
// inline in the caller instead of blocking, so coordinators never
// deadlock behind a straggler.
const taskQueueCap = 1024

// PoolOptions configure a Pool.
type PoolOptions struct {
	// Hedge is the straggler threshold of duplicate dispatch: when a
	// dispatched task has not produced a result after this long, the
	// task is started a second time in a fresh goroutine and the first
	// result wins. Tasks are read-only and idempotent, so the duplicate
	// is always safe. 0 disables hedging.
	Hedge time.Duration
}

// Pool is the in-process shard cluster of one snapshot: N shards, each
// with its own block partition (built lazily on its worker, in the
// background, starting at construction) and a channel worker executing
// evaluation tasks against it. Create with NewPool; a Pool is safe for
// concurrent use. Close when replacing the snapshot — queued tasks
// drain first, and tasks dispatched after Close run inline in the
// caller, so in-flight requests on a swapped-out snapshot stay correct.
type Pool struct {
	db    *db.DB
	n     int
	hedge time.Duration

	mu     sync.RWMutex // guards closed vs. task-channel sends
	closed bool
	wg     sync.WaitGroup

	// building counts shards whose initial index build has not yet
	// finished; the readiness probe fails while it is non-zero.
	building  atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	shards []*shardState
}

type shardState struct {
	id   int
	pool *Pool

	tasks  chan func()
	health atomic.Int32 // Health

	buildMu          sync.Mutex
	built            atomic.Bool
	initialBuildDone bool
	blocks           map[string][]db.Block
	// spans holds, per regular relation of the snapshot's columnar
	// view, the indices of the columnar blocks this shard owns — the
	// interned form of the blocks partition, assigned by the same
	// Of(blockID) hash so both forms always agree. Relations absent
	// from the map are irregular (row path only).
	spans     map[string][]int32
	numBlocks int

	evals    atomic.Int64
	failures atomic.Int64
	hist     *trace.Histogram
}

// NewPool builds the shard cluster for the snapshot: n workers start
// immediately and each begins building its shard's block index in the
// background (so a fresh snapshot swap reports Building shards to the
// readiness probe instead of stalling the first request on n builds).
// n < 1 is treated as 1. The caller must not modify d afterwards.
func NewPool(d *db.DB, n int, opt PoolOptions) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{db: d, n: n, hedge: opt.Hedge}
	p.building.Store(int64(n))
	p.shards = make([]*shardState, n)
	for i := range p.shards {
		s := &shardState{
			id:    i,
			pool:  p,
			tasks: make(chan func(), taskQueueCap),
			hist:  trace.NewHistogram(nil),
		}
		p.shards[i] = s
		p.wg.Add(1)
		go s.workerLoop(&p.wg)
		s.tasks <- func() { s.ensureBuilt(nil) } //nolint:errcheck // surfaces per-eval
	}
	return p
}

// Derive builds the pool of an Apply-derived snapshot from the parent's
// pool without re-partitioning the database: every already-built parent
// shard starts built, its partition patched only for the relations the
// change set names (untouched relations alias the parent shard's block
// lists and columnar spans). Parent shards whose initial build had not
// finished — or had failed — rebuild in the background against the child
// exactly as a fresh pool would, and the Building gauge reports that
// partial rebuild to the readiness probe. Derive returns nil when the
// parent pool is already closed; the caller falls back to NewPool.
//
// The child must be the result of applying the change set to the parent
// pool's database. Derive only reads the parent, so it is safe to run
// while the parent still serves requests.
func (p *Pool) Derive(child *db.DB, ch *db.ChangeSet) *Pool {
	p.mu.RLock()
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return nil
	}
	np := &Pool{db: child, n: p.n, hedge: p.hedge}
	np.shards = make([]*shardState, p.n)
	col := child.Columnar()
	pending := int64(0)
	for i, ps := range p.shards {
		s := &shardState{
			id:    i,
			pool:  np,
			tasks: make(chan func(), taskQueueCap),
			hist:  trace.NewHistogram(nil),
		}
		np.shards[i] = s
		if !ps.built.Load() {
			pending++
			continue
		}
		blocks := maps.Clone(ps.blocks)
		if blocks == nil {
			blocks = make(map[string][]db.Block)
		}
		spans := maps.Clone(ps.spans)
		if spans == nil {
			spans = make(map[string][]int32)
		}
		count := ps.numBlocks
		for name := range ch.Rels {
			old := len(blocks[name])
			var nb []db.Block
			for _, b := range child.BlocksOf(name) {
				if len(b.Facts) > 0 && Of(b.ID, np.n) == i {
					nb = append(nb, b)
				}
			}
			if len(nb) == 0 {
				delete(blocks, name)
			} else {
				blocks[name] = nb
			}
			count += len(nb) - old
			if cr, regular := col.Rel(name); regular && cr != nil {
				sp := []int32{}
				for bi, blk := range cr.Blocks {
					if Of(blk.ID, np.n) == i {
						sp = append(sp, int32(bi))
					}
				}
				spans[name] = sp
			} else {
				delete(spans, name)
			}
		}
		s.blocks = blocks
		s.spans = spans
		s.numBlocks = count
		s.initialBuildDone = true
		s.built.Store(true)
		s.health.Store(int32(HealthReady))
	}
	np.building.Store(pending)
	for _, s := range np.shards {
		s := s
		np.wg.Add(1)
		go s.workerLoop(&np.wg)
		if !s.built.Load() {
			s.tasks <- func() { s.ensureBuilt(nil) } //nolint:errcheck // surfaces per-eval
		}
	}
	return np
}

// N returns the number of shards.
func (p *Pool) N() int { return p.n }

// Hedge returns the configured straggler threshold (0 = disabled).
func (p *Pool) Hedge() time.Duration { return p.hedge }

// Building returns the number of shards whose initial index build has
// not yet completed.
func (p *Pool) Building() int64 { return p.building.Load() }

// Close shuts the workers down: queued tasks drain first, then the
// workers exit. Tasks dispatched after Close run inline in the caller's
// goroutine, so a request still holding the pool of a replaced snapshot
// completes correctly. Close is idempotent and safe for concurrent use.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, s := range p.shards {
		close(s.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (s *shardState) workerLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for task := range s.tasks {
		task()
	}
}

// enqueue hands the task to the shard's worker; false means the caller
// must run it inline (the pool is closed or the queue is saturated).
func (p *Pool) enqueue(s *shardState, task func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case s.tasks <- task:
		return true
	default:
		return false
	}
}

// fireHook fires the pool-wide fault point and then the per-shard one,
// so tests can inject a fault into every shard or target exactly one.
func fireHook(base string, id int) error {
	if err := faultinject.Fire(base); err != nil {
		return err
	}
	return faultinject.Fire(base + "." + strconv.Itoa(id))
}

// ensureBuilt builds the shard's block partition on first use. A failed
// build (injected fault) marks the shard unhealthy and is retried by
// the next task, mirroring the snapshot index's retry-on-panic
// semantics; the initial background build counts against the pool's
// Building gauge exactly once, success or failure.
func (s *shardState) ensureBuilt(tr *trace.Tracer) error {
	if s.built.Load() {
		return nil
	}
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	if s.built.Load() {
		return nil
	}
	sp := tr.Begin(trace.StageShardIndex)
	err := s.build()
	sp.End()
	// Health settles before the Building gauge drops, so an observer
	// that saw the gauge reach zero never reads a stale Building state.
	if err != nil {
		s.health.Store(int32(HealthUnhealthy))
	} else {
		s.built.Store(true)
		s.health.Store(int32(HealthReady))
	}
	if !s.initialBuildDone {
		s.initialBuildDone = true
		s.pool.building.Add(-1)
	}
	if err != nil {
		return fmt.Errorf("%w: shard %d index build: %w", ErrFailed, s.id, err)
	}
	return nil
}

// build partitions the snapshot's blocks: the shard keeps references to
// the blocks it owns (Of(blockID) == id), grouped by relation in
// first-seen order. The facts themselves are shared with the snapshot —
// a shard index is a view, not a copy.
func (s *shardState) build() error {
	if err := fireHook("shard.index", s.id); err != nil {
		return err
	}
	blocks := make(map[string][]db.Block)
	count := 0
	for _, b := range s.pool.db.Blocks() {
		if len(b.Facts) == 0 || Of(b.ID, s.pool.n) != s.id {
			continue
		}
		rel := b.Facts[0].Rel.Name
		blocks[rel] = append(blocks[rel], b)
		count++
	}
	s.blocks = blocks
	s.numBlocks = count
	// The columnar partition: for every regular relation, the indices
	// of the columnar blocks this shard owns. The entry exists even
	// when the shard owns none of a relation's blocks, so SpansOf can
	// distinguish "empty partition" from "irregular relation".
	col := s.pool.db.Columnar()
	spans := make(map[string][]int32, len(col.RelNames()))
	for _, name := range col.RelNames() {
		cr, _ := col.Rel(name)
		sp := []int32{}
		for bi, blk := range cr.Blocks {
			if Of(blk.ID, s.pool.n) == s.id {
				sp = append(sp, int32(bi))
			}
		}
		spans[name] = sp
	}
	s.spans = spans
	return nil
}

// Task is one shard evaluation: it sees the shard's view and a checker
// forked from the request budget. Tasks must be read-only — hedging may
// run a task twice concurrently.
type Task[T any] func(v *View, chk *evalctx.Checker) (T, error)

type outcome[T any] struct {
	v      T
	err    error
	hedged bool
}

// Do runs fn on the identified shard's worker and returns its result.
// The execution polls a checker forked from chk but bound to ctx, so a
// coordinator can cancel the scatter (early-exit merge) without
// touching the request context, while the step budget stays shared
// across all shards of the request. When the pool hedges and the
// primary execution has not finished within the threshold, a duplicate
// runs in a fresh goroutine and the first result wins. A ctx already
// cancelled (or cancelled while waiting) returns ctx.Err(); the
// abandoned task still drains on the worker and observes the same
// cancelled context.
func Do[T any](ctx context.Context, p *Pool, id int, chk *evalctx.Checker, fn Task[T]) (T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := p.shards[id%len(p.shards)]
	ch := make(chan outcome[T], 2)
	run := func(hedged bool) {
		v, err := exec(p, s, ctx, chk, fn)
		ch <- outcome[T]{v: v, err: err, hedged: hedged}
	}
	if !p.enqueue(s, func() { run(false) }) {
		return exec(p, s, ctx, chk, fn)
	}
	var hedgeC <-chan time.Time
	if p.hedge > 0 {
		t := time.NewTimer(p.hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	for {
		select {
		case out := <-ch:
			if out.hedged {
				p.hedgeWins.Add(1)
			}
			return out.v, out.err
		case <-hedgeC:
			hedgeC = nil
			p.hedges.Add(1)
			go run(true)
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// exec is one execution of a task on a shard: build-on-demand, the
// shard.eval fault hooks, a per-shard trace span, and the health and
// latency accounting.
func exec[T any](p *Pool, s *shardState, ctx context.Context, chk *evalctx.Checker, fn Task[T]) (T, error) {
	var zero T
	echk := chk.ForkWith(ctx)
	tr := echk.Tracer()
	if err := s.ensureBuilt(tr); err != nil {
		s.failures.Add(1)
		return zero, err
	}
	sp := tr.Begin(trace.StageShard)
	start := time.Now()
	var out T
	err := fireHook("shard.eval", s.id)
	if err != nil {
		err = fmt.Errorf("%w: shard %d evaluation fault: %w", ErrFailed, s.id, err)
	} else {
		out, err = fn(&View{ID: s.id, DB: p.db, s: s}, echk)
	}
	sp.End()
	s.hist.Observe(time.Since(start))
	s.evals.Add(1)
	if err == nil {
		s.health.Store(int32(HealthReady))
		return out, nil
	}
	// The request's own limits tripping on this shard says nothing
	// about the shard; real faults flip it unhealthy until an
	// evaluation succeeds again.
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, evalctx.ErrBudgetExceeded) {
		s.failures.Add(1)
		s.health.Store(int32(HealthUnhealthy))
	}
	return zero, err
}

// ShardStat is the observable state of one shard.
type ShardStat struct {
	ID     int
	Health Health
	// Blocks is the size of the shard's partition (0 until built).
	Blocks   int
	Evals    int64
	Failures int64
	// Hist is the shard's evaluation-latency histogram (shared; read
	// via Snapshot).
	Hist *trace.Histogram
}

// Stats is a point-in-time summary of the pool.
type Stats struct {
	Total     int
	Ready     int
	Building  int
	Unhealthy int
	Hedges    int64
	HedgeWins int64
	Shards    []ShardStat
}

// Stats returns the pool summary plus per-shard detail.
func (p *Pool) Stats() Stats {
	st := Stats{
		Total:     p.n,
		Hedges:    p.hedges.Load(),
		HedgeWins: p.hedgeWins.Load(),
		Shards:    make([]ShardStat, p.n),
	}
	for i, s := range p.shards {
		h := Health(s.health.Load())
		switch h {
		case HealthReady:
			st.Ready++
		case HealthBuilding:
			st.Building++
		default:
			st.Unhealthy++
		}
		blocks := 0
		if s.built.Load() {
			blocks = s.numBlocks
		}
		st.Shards[i] = ShardStat{
			ID:       s.id,
			Health:   h,
			Blocks:   blocks,
			Evals:    s.evals.Load(),
			Failures: s.failures.Load(),
			Hist:     s.hist,
		}
	}
	return st
}
