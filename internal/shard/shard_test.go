package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
)

func testDB(t *testing.T, text string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, text)
	if err != nil {
		t.Fatalf("ParseFacts: %v", err)
	}
	return d
}

func chainDB(t *testing.T, n int) *db.DB {
	t.Helper()
	d := db.New()
	for i := 0; i < n; i++ {
		f, err := db.ParseFact(nil, fmt.Sprintf("R(x%d | y%d)", i, i))
		if err != nil {
			t.Fatalf("ParseFact: %v", err)
		}
		d.Add(f)
	}
	return d
}

// waitBuilt polls until every shard's initial build settled (the
// Building gauge reaches zero), failing the test on timeout.
func waitBuilt(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Building() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shards still building after 5s: %d", p.Building())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, jobs, want int
	}{
		{0, 1000, maxprocs},
		{-3, 1000, maxprocs},
		{8, 3, 3},
		{2, 100, 2},
		{1, 100, 1},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.jobs); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

func TestOf(t *testing.T) {
	ids := []string{"R\x00a", "R\x00b", "S\x00a", "S\x00b\x00c", ""}
	for _, id := range ids {
		if got := Of(id, 1); got != 0 {
			t.Errorf("Of(%q, 1) = %d, want 0", id, got)
		}
		if got := Of(id, 0); got != 0 {
			t.Errorf("Of(%q, 0) = %d, want 0", id, got)
		}
		for _, n := range []int{2, 3, 7} {
			got := Of(id, n)
			if got < 0 || got >= n {
				t.Fatalf("Of(%q, %d) = %d out of range", id, n, got)
			}
			if again := Of(id, n); again != got {
				t.Fatalf("Of(%q, %d) not deterministic: %d then %d", id, n, got, again)
			}
		}
	}
	// Sanity: a few hundred distinct keys spread over more than one shard.
	hit := map[int]bool{}
	for i := 0; i < 300; i++ {
		hit[Of(fmt.Sprintf("R\x00k%d", i), 4)] = true
	}
	if len(hit) < 2 {
		t.Errorf("300 keys landed on %d of 4 shards; hash is degenerate", len(hit))
	}
}

func TestPoolPartition(t *testing.T) {
	d := testDB(t, `
R(a | 1)
R(a | 2)
R(b | 1)
S(a, x | 1)
S(b, y | 2)
T(z | 9)
`)
	const n = 3
	p := NewPool(d, n, PoolOptions{})
	defer p.Close()
	waitBuilt(t, p)

	seen := map[string]int{} // block ID -> owning shard
	total := 0
	for id := 0; id < n; id++ {
		got, err := Do(context.Background(), p, id, nil, func(v *View, chk *evalctx.Checker) (int, error) {
			if v.ID != id {
				t.Errorf("view ID %d, want %d", v.ID, id)
			}
			if v.DB != d {
				t.Errorf("view DB is not the shared snapshot")
			}
			count := 0
			for _, rel := range d.Relations() {
				for _, b := range v.BlocksOf(rel) {
					if owner, dup := seen[b.ID]; dup {
						t.Errorf("block %q on shards %d and %d", b.ID, owner, id)
					}
					seen[b.ID] = id
					if want := Of(b.ID, n); want != id {
						t.Errorf("block %q on shard %d, hash says %d", b.ID, id, want)
					}
					if b.Facts[0].Rel.Name != rel {
						t.Errorf("block %q grouped under relation %q", b.ID, rel)
					}
					count++
				}
			}
			if count != v.NumBlocks() {
				t.Errorf("shard %d: NumBlocks() = %d, walked %d", id, v.NumBlocks(), count)
			}
			return count, nil
		})
		if err != nil {
			t.Fatalf("Do(shard %d): %v", id, err)
		}
		total += got
	}
	if total != d.NumBlocks() {
		t.Errorf("shards own %d blocks in total, snapshot has %d", total, d.NumBlocks())
	}
}

func TestPoolCloseInline(t *testing.T) {
	d := testDB(t, "R(a | 1)")
	p := NewPool(d, 2, PoolOptions{})
	waitBuilt(t, p)
	p.Close()
	p.Close() // idempotent

	// Dispatch after Close still completes, inline in the caller.
	got, err := Do(context.Background(), p, 1, nil, func(v *View, chk *evalctx.Checker) (string, error) {
		return "inline", nil
	})
	if err != nil || got != "inline" {
		t.Fatalf("Do after Close = (%q, %v), want (inline, nil)", got, err)
	}
}

func TestHealthLifecycle(t *testing.T) {
	defer faultinject.Reset()
	d := chainDB(t, 40)
	boom := errors.New("boom")

	// A pool whose every initial build fails: shards end Unhealthy, the
	// Building gauge still settles at zero, and errors carry ErrFailed.
	faultinject.Set("shard.index", func(int) error { return boom })
	p := NewPool(d, 2, PoolOptions{})
	defer p.Close()
	waitBuilt(t, p)
	st := p.Stats()
	if st.Unhealthy != 2 || st.Ready != 0 || st.Building != 0 {
		t.Fatalf("after failed builds: %+v", st)
	}
	_, err := Do(context.Background(), p, 0, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return true, nil
	})
	if !errors.Is(err, ErrFailed) || !errors.Is(err, boom) {
		t.Fatalf("eval on unbuilt shard: %v, want ErrFailed wrapping boom", err)
	}

	// Clearing the fault lets the next task rebuild and heal the shard.
	faultinject.Clear("shard.index")
	ok, err := Do(context.Background(), p, 0, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return v.NumBlocks() >= 0, nil
	})
	if err != nil || !ok {
		t.Fatalf("eval after clearing fault: (%v, %v)", ok, err)
	}
	st = p.Stats()
	if st.Shards[0].Health != HealthReady {
		t.Fatalf("shard 0 health %v after successful rebuild, want ready", st.Shards[0].Health)
	}

	// An injected evaluation fault flips the shard unhealthy...
	faultinject.SetWindow("shard.eval.0", 0, 1, func(int) error { return boom })
	_, err = Do(context.Background(), p, 0, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return true, nil
	})
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("injected eval fault: %v, want ErrFailed", err)
	}
	if h := p.Stats().Shards[0].Health; h != HealthUnhealthy {
		t.Fatalf("shard 0 health %v after eval fault, want unhealthy", h)
	}

	// ...a benign error (the request's own limits) does not...
	_, err = Do(context.Background(), p, 1, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return false, evalctx.ErrBudgetExceeded
	})
	if !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Fatalf("budget error: %v", err)
	}
	if h := p.Stats().Shards[1].Health; h != HealthReady {
		t.Fatalf("shard 1 health %v after budget error, want ready", h)
	}

	// ...and a success heals.
	if _, err := Do(context.Background(), p, 0, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return true, nil
	}); err != nil {
		t.Fatalf("healing eval: %v", err)
	}
	st = p.Stats()
	if h := st.Shards[0].Health; h != HealthReady {
		t.Fatalf("shard 0 health %v after success, want ready", h)
	}
	if st.Shards[0].Evals == 0 || st.Shards[0].Failures == 0 {
		t.Fatalf("shard 0 counters not accounted: %+v", st.Shards[0])
	}
	if st.Shards[0].Blocks == 0 && st.Shards[1].Blocks == 0 {
		t.Fatalf("no shard reports blocks: %+v", st.Shards)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{
		HealthBuilding:  "building",
		HealthReady:     "ready",
		HealthUnhealthy: "unhealthy",
		Health(99):      "unknown",
	} {
		if got := h.String(); got != want {
			t.Errorf("Health(%d).String() = %q, want %q", h, got, want)
		}
	}
}

func TestHedging(t *testing.T) {
	defer faultinject.Reset()
	d := testDB(t, "R(a | 1)")
	p := NewPool(d, 1, PoolOptions{Hedge: 5 * time.Millisecond})
	defer p.Close()
	waitBuilt(t, p)

	// Only the first (primary) execution sleeps; the hedged duplicate
	// runs clean and wins.
	faultinject.SetWindow("shard.eval.0", 0, 1, func(int) error {
		time.Sleep(300 * time.Millisecond)
		return nil
	})
	start := time.Now()
	got, err := Do(context.Background(), p, 0, nil, func(v *View, chk *evalctx.Checker) (int, error) {
		return 42, nil
	})
	if err != nil || got != 42 {
		t.Fatalf("hedged Do = (%d, %v), want (42, nil)", got, err)
	}
	if took := time.Since(start); took >= 300*time.Millisecond {
		t.Errorf("hedged call took %v; the duplicate did not win", took)
	}
	st := p.Stats()
	if st.Hedges < 1 || st.HedgeWins < 1 {
		t.Errorf("hedge counters = %d/%d, want >= 1 each", st.Hedges, st.HedgeWins)
	}
}

func TestDoCancellation(t *testing.T) {
	defer faultinject.Reset()
	d := testDB(t, "R(a | 1)")
	p := NewPool(d, 1, PoolOptions{})
	defer p.Close()
	waitBuilt(t, p)

	faultinject.SetWindow("shard.eval.0", 0, 1, func(int) error {
		time.Sleep(200 * time.Millisecond)
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Do(ctx, p, 0, nil, func(v *View, chk *evalctx.Checker) (bool, error) {
		return true, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Do: %v, want context.Canceled", err)
	}
}

func TestStatsSummary(t *testing.T) {
	d := chainDB(t, 20)
	p := NewPool(d, 4, PoolOptions{})
	defer p.Close()
	waitBuilt(t, p)
	st := p.Stats()
	if st.Total != 4 || st.Ready != 4 || st.Building != 0 || st.Unhealthy != 0 {
		t.Fatalf("fresh pool stats: %+v", st)
	}
	blocks := 0
	for _, s := range st.Shards {
		blocks += s.Blocks
		if s.Hist == nil {
			t.Fatalf("shard %d has no histogram", s.ID)
		}
	}
	if blocks != d.NumBlocks() {
		t.Fatalf("stats report %d blocks, snapshot has %d", blocks, d.NumBlocks())
	}
}
