package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"cqa/internal/db"
	"cqa/internal/faultinject"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// partitionFingerprint renders every shard's partition (row blocks and
// columnar spans) in a canonical form, for comparing a derived pool
// against a cold rebuild.
func partitionFingerprint(t *testing.T, p *Pool) []string {
	t.Helper()
	waitBuilt(t, p)
	var out []string
	for _, s := range p.shards {
		if !s.built.Load() {
			t.Fatalf("shard %d not built", s.id)
		}
		for rel, blocks := range s.blocks {
			for _, b := range blocks {
				facts := make([]string, len(b.Facts))
				for i, f := range b.Facts {
					facts[i] = f.String()
				}
				sort.Strings(facts)
				out = append(out, fmt.Sprintf("s%d %s %q %v", s.id, rel, b.ID, facts))
			}
		}
		for rel, sp := range s.spans {
			out = append(out, fmt.Sprintf("s%d spans %s %d", s.id, rel, len(sp)))
			// Spans must point at blocks this shard owns in the columnar
			// view of the pool's database.
			col := p.db.Columnar()
			cr, ok := col.Rel(rel)
			if !ok {
				t.Fatalf("shard %d has spans for irregular relation %s", s.id, rel)
			}
			for _, bi := range sp {
				if cr == nil || Of(cr.Blocks[bi].ID, p.n) != s.id {
					t.Fatalf("shard %d span %d of %s not owned", s.id, bi, rel)
				}
			}
		}
		out = append(out, fmt.Sprintf("s%d total %d", s.id, s.numBlocks))
	}
	sort.Strings(out)
	return out
}

// spanCoverage maps each regular relation to the total number of spans
// across shards — must equal the columnar block count.
func checkSpanCoverage(t *testing.T, p *Pool) {
	t.Helper()
	col := p.db.Columnar()
	for _, name := range col.RelNames() {
		cr, _ := col.Rel(name)
		total := 0
		for _, s := range p.shards {
			sp, ok := s.spans[name]
			if !ok {
				t.Fatalf("shard %d missing spans entry for %s", s.id, name)
			}
			total += len(sp)
		}
		if total != cr.Rel.NumBlocks() {
			t.Fatalf("%s: %d spans across shards, %d columnar blocks", name, total, cr.Rel.NumBlocks())
		}
	}
}

// TestDeriveMatchesRebuild drives random mutation chains and checks the
// derived pool's partition is identical to a cold NewPool build of the
// same version.
func TestDeriveMatchesRebuild(t *testing.T) {
	relR := schema.NewRelation("R", 2, 1)
	relS := schema.NewRelation("S", 3, 2)
	rng := rand.New(rand.NewSource(11))
	randFact := func() db.Fact {
		if rng.Intn(2) == 0 {
			return db.NewFact(relR,
				query.Const(fmt.Sprintf("k%d", rng.Intn(12))),
				query.Const(fmt.Sprintf("v%d", rng.Intn(4))))
		}
		return db.NewFact(relS,
			query.Const(fmt.Sprintf("a%d", rng.Intn(6))),
			query.Const(fmt.Sprintf("b%d", rng.Intn(6))),
			query.Const(fmt.Sprintf("v%d", rng.Intn(4))))
	}
	for _, n := range []int{1, 3, 5} {
		cur := db.New()
		for i := 0; i < 20; i++ {
			cur.Add(randFact())
		}
		pool := NewPool(cur, n, PoolOptions{})
		waitBuilt(t, pool)
		for step := 0; step < 6; step++ {
			var delta db.Delta
			for i := 0; i < 1+rng.Intn(5); i++ {
				f := randFact()
				if rng.Intn(3) == 0 {
					delta.Delete(f)
				} else {
					delta.Insert(f)
				}
			}
			child, res, err := cur.ApplyChanges(delta)
			if err != nil {
				t.Fatal(err)
			}
			if child == cur {
				continue
			}
			derived := pool.Derive(child, res.Changes)
			if derived == nil {
				t.Fatal("Derive returned nil on an open pool")
			}
			cold := NewPool(child, n, PoolOptions{})
			got := partitionFingerprint(t, derived)
			want := partitionFingerprint(t, cold)
			if len(got) != len(want) {
				t.Fatalf("n=%d step %d: %d vs %d partition entries\n%v\n%v",
					n, step, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d step %d: partition differs:\n  derived %s\n  rebuilt %s",
						n, step, got[i], want[i])
				}
			}
			checkSpanCoverage(t, derived)
			cold.Close()
			pool.Close()
			pool, cur = derived, child
		}
		pool.Close()
	}
}

// TestDeriveServesQueries checks a derived pool evaluates correctly via
// the public scatter path.
func TestDeriveServesQueries(t *testing.T) {
	d := testDB(t, `
		R(a | 1)
		R(b | 1)
		R(c | 2)
	`)
	pool := NewPool(d, 3, PoolOptions{})
	waitBuilt(t, pool)
	relR := d.Blocks()[0].Facts[0].Rel
	var delta db.Delta
	delta.Insert(db.NewFact(relR, "d", "9"))
	delta.Delete(db.NewFact(relR, "b", "1"))
	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	derived := pool.Derive(child, res.Changes)
	defer derived.Close()
	defer pool.Close()
	waitBuilt(t, derived)

	total := 0
	for i := 0; i < derived.N(); i++ {
		v := &View{ID: i, DB: child, s: derived.shards[i]}
		for _, b := range v.BlocksOf("R") {
			total += len(b.Facts)
		}
	}
	if total != 3 {
		t.Errorf("derived pool sees %d facts, want 3", total)
	}
}

// TestDeriveUnbuiltParent checks that shards whose parent build had not
// completed rebuild in the background against the child, reported by the
// Building gauge.
func TestDeriveUnbuiltParent(t *testing.T) {
	defer faultinject.Reset()
	d := testDB(t, "R(a | 1)\nR(b | 2)")
	// Fail shard 0's initial build so the parent ends with an unbuilt
	// shard.
	faultinject.SetWindow("shard.index.0", 0, 1, func(int) error { return errors.New("boom") })
	pool := NewPool(d, 2, PoolOptions{})
	for pool.Building() > 0 {
		time.Sleep(time.Millisecond)
	}
	relR := d.Blocks()[0].Facts[0].Rel
	var delta db.Delta
	delta.Insert(db.NewFact(relR, "c", "3"))
	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Reset()
	derived := pool.Derive(child, res.Changes)
	defer derived.Close()
	defer pool.Close()
	waitBuilt(t, derived)
	got := partitionFingerprint(t, derived)
	cold := NewPool(child, 2, PoolOptions{})
	defer cold.Close()
	want := partitionFingerprint(t, cold)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("partition differs after background rebuild:\n  %s\n  %s", got[i], want[i])
		}
	}
}

// TestDeriveLifecycleRapidApply hammers the snapshot-replacement path
// the store drives on every delta: derive a child pool from a parent
// whose initial build is still running, close the replaced parent
// (concurrently and repeatedly — Close must be idempotent), and move
// on. NumGoroutine bracketing catches leaked shard workers; the
// repeated Close catches a close-of-closed-channel panic.
func TestDeriveLifecycleRapidApply(t *testing.T) {
	defer faultinject.Reset()
	// Slow every shard build enough that Derive reliably observes a
	// still-building parent and takes the background-rebuild path.
	faultinject.Set("shard.index", func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})

	base := runtime.NumGoroutine()
	relR := schema.NewRelation("R", 2, 1)
	for iter := 0; iter < 8; iter++ {
		cur := db.New()
		for i := 0; i < 8; i++ {
			cur.Add(db.NewFact(relR, query.Const(fmt.Sprintf("k%d", i)), "v"))
		}
		pool := NewPool(cur, 4, PoolOptions{})
		for step := 0; step < 6; step++ {
			var delta db.Delta
			delta.Insert(db.NewFact(relR, query.Const(fmt.Sprintf("i%d_%d", iter, step)), "v"))
			child, res, err := cur.ApplyChanges(delta)
			if err != nil {
				t.Fatal(err)
			}
			derived := pool.Derive(child, res.Changes)
			if derived == nil {
				t.Fatal("Derive returned nil on an open pool")
			}
			// The replaced parent closes while the child may still be
			// building, exactly as publishDelta's `go cur.ClosePool()`
			// races the next request's pool use.
			old := pool
			done := make(chan struct{})
			go func() { old.Close(); close(done) }()
			old.Close()
			<-done
			old.Close()
			pool, cur = derived, child
		}
		waitBuilt(t, pool)
		if b := pool.Building(); b != 0 {
			t.Fatalf("iter %d: %d shards still building after waitBuilt", iter, b)
		}
		pool.Close()
	}
	faultinject.Reset()

	// Every worker exits on Close; give the scheduler a moment to reap
	// them before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after all pools closed\n%s",
				base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeriveClosedPoolReturnsNil(t *testing.T) {
	d := testDB(t, "R(a | 1)")
	pool := NewPool(d, 2, PoolOptions{})
	waitBuilt(t, pool)
	pool.Close()
	relR := d.Blocks()[0].Facts[0].Rel
	var delta db.Delta
	delta.Insert(db.NewFact(relR, "b", "2"))
	child, res, err := d.ApplyChanges(delta)
	if err != nil {
		t.Fatal(err)
	}
	if p := pool.Derive(child, res.Changes); p != nil {
		p.Close()
		t.Error("Derive on a closed pool should return nil")
	}
}
