// Package sym implements string interning for the columnar storage
// layer: every constant of a database is mapped to a dense uint32 ID,
// so the hot evaluation paths compare and hash machine words instead of
// strings. A Table is append-only — IDs are assigned sequentially from
// 0 in interning order and are never reused — which makes a build that
// interns constants in a deterministic order produce a deterministic
// ID assignment.
package sym

import "sync"

// ID is an interned constant. IDs are dense: a table with n symbols has
// exactly the IDs 0..n-1.
type ID uint32

// Table is a bidirectional string↔ID map, safe for concurrent use.
// Lookups and reads take a shared lock and never allocate; Intern takes
// the exclusive lock only when the string is new.
type Table struct {
	mu   sync.RWMutex
	ids  map[string]ID
	strs []string
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{ids: make(map[string]ID)}
}

// Intern returns the ID of s, assigning the next free ID when s has not
// been seen before. Interning an unknown string is always safe on read
// paths: a fresh ID occurs in no stored column, so comparisons against
// it fail exactly as the string comparisons would.
func (t *Table) Intern(s string) ID {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[s]; ok {
		return id
	}
	id = ID(len(t.strs))
	t.ids[s] = id
	t.strs = append(t.strs, s)
	return id
}

// Lookup returns the ID of s without assigning one; ok is false when s
// was never interned (and therefore occurs nowhere in the data the
// table indexes).
func (t *Table) Lookup(s string) (ID, bool) {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	return id, ok
}

// String returns the string of an interned ID. It panics on an ID the
// table never assigned, like a slice bounds error would.
func (t *Table) String(id ID) string {
	t.mu.RLock()
	s := t.strs[id]
	t.mu.RUnlock()
	return s
}

// Len returns the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.strs)
	t.mu.RUnlock()
	return n
}
