package sym

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	tb := NewTable()
	words := []string{"a", "b", "", "a", "x\x00y", "b", "長い"}
	ids := make([]ID, len(words))
	for i, w := range words {
		ids[i] = tb.Intern(w)
	}
	if ids[0] != ids[3] || ids[1] != ids[5] {
		t.Fatalf("re-interning did not return the same ID: %v", ids)
	}
	if ids[0] == ids[1] {
		t.Fatalf("distinct strings share an ID: %v", ids)
	}
	// IDs are dense and sequential in interning order.
	want := []ID{0, 1, 2, 0, 3, 1, 4}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if tb.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tb.Len())
	}
	for i, w := range words {
		if got := tb.String(ids[i]); got != w {
			t.Fatalf("String(%d) = %q, want %q", ids[i], got, w)
		}
	}
}

func TestLookupDoesNotAssign(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup("missing"); ok {
		t.Fatal("Lookup of a fresh table reported ok")
	}
	if tb.Len() != 0 {
		t.Fatalf("Lookup assigned an ID: Len = %d", tb.Len())
	}
	id := tb.Intern("present")
	got, ok := tb.Lookup("present")
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
}

// TestConcurrentInternLookup hammers one table from many goroutines
// interning overlapping key sets while others look up and stringify.
// Run under -race (the make check race gate includes this package); the
// invariant checked here is that every string keeps exactly one ID.
func TestConcurrentInternLookup(t *testing.T) {
	tb := NewTable()
	const workers = 8
	const keys = 200
	results := make([][]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]ID, keys)
			for i := 0; i < keys; i++ {
				s := fmt.Sprintf("k%d", i)
				ids[i] = tb.Intern(s)
				if got, ok := tb.Lookup(s); !ok || got != ids[i] {
					t.Errorf("Lookup(%q) = (%d, %v) after Intern returned %d", s, got, ok, ids[i])
					return
				}
				if got := tb.String(ids[i]); got != s {
					t.Errorf("String(%d) = %q, want %q", ids[i], got, s)
					return
				}
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	if tb.Len() != keys {
		t.Fatalf("Len = %d, want %d", tb.Len(), keys)
	}
	for w := 1; w < workers; w++ {
		for i := 0; i < keys; i++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d got ID %d for key %d, worker 0 got %d", w, results[w][i], i, results[0][i])
			}
		}
	}
}
