package difftest

import (
	"fmt"
	"math"
	"math/big"

	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"

	"cqa/internal/db"
)

// CheckCounting cross-checks the exact repair-counting engine against the
// brute-force oracle on one generated case, and additionally checks the
// decision/counting consistency law: the query is certain iff every repair
// satisfies it, i.e. Satisfying == Total. It returns skipped=true when the
// instance exceeds the oracle bound (nothing was verified) and a non-nil
// error describing the first disagreement otherwise.
func CheckCounting(q query.Query, d *db.DB) (skipped bool, err error) {
	if d.NumRepairs() > MaxOracleRepairs {
		return true, nil
	}
	sat, total, err := naive.CountSatisfyingRepairs(q, d)
	if err != nil {
		return true, nil // raced past the oracle bound; nothing to compare
	}

	res, err := counting.SatisfyingRepairs(q, d)
	if err != nil {
		return false, fmt.Errorf("counting: %w", err)
	}
	mismatch := func(field string, got *big.Int, want int) error {
		return fmt.Errorf("counting %s = %v, oracle = %d\nquery: %s\ndb (%d facts, %g repairs):\n%s",
			field, got, want, q, d.Len(), d.NumRepairs(), d)
	}
	if res.Total.Cmp(big.NewInt(int64(total))) != 0 {
		return false, mismatch("Total", res.Total, total)
	}
	if res.Satisfying.Cmp(big.NewInt(int64(sat))) != 0 {
		return false, mismatch("Satisfying", res.Satisfying, sat)
	}
	if !res.Exact || res.Confidence != 0 {
		return false, fmt.Errorf("in-budget count reported exact=%v confidence=%v\nquery: %s",
			res.Exact, res.Confidence, q)
	}
	if want := float64(sat) / float64(total); math.Abs(res.Fraction-want) > 1e-9 {
		return false, fmt.Errorf("counting Fraction = %v, oracle = %v\nquery: %s\ndb:\n%s",
			res.Fraction, want, q, d)
	}

	// Consistency with the decision engines: #CERTAINTY says the query is
	// certain exactly when no repair falsifies it.
	plan, err := core.Compile(q)
	if err != nil {
		return false, fmt.Errorf("compile: %w", err)
	}
	dec, err := plan.CertainIndexed(match.NewIndex(d), core.Options{})
	if err != nil {
		return false, fmt.Errorf("CertainIndexed: %w", err)
	}
	allSat := res.Satisfying.Cmp(res.Total) == 0
	if allSat != dec.Certain {
		return false, fmt.Errorf("counting says %v/%v repairs satisfy but CertainIndexed/%s = %v\nquery: %s\ndb:\n%s",
			res.Satisfying, res.Total, dec.Engine, dec.Certain, q, d)
	}
	return false, nil
}
