package difftest

import (
	"context"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/match"
)

// blockKey identifies the block a fact belongs to: relation name plus
// the key prefix of its arguments.
func blockKey(f db.Fact) string {
	k := f.Rel.Name
	for _, a := range f.Args[:f.Rel.KeyLen] {
		k += "\x00" + string(a)
	}
	return k
}

// TestMutationReplayDifferential replays the seeded corpus through
// randomized mutation scripts: each case starts from a generated base
// instance, shuffles its facts into chunks, and drives an Apply chain
// that deletes each chunk and then re-inserts it (whole blocks through
// the upsert path, partial blocks through single-fact inserts). After
// every applied delta, the structurally-shared version must answer
// exactly like a database rebuilt from scratch out of the expected fact
// set — on the flat compiled engine and the sharded span scatter — and
// after the full script the chain must land back on the base instance.
// This is the corpus-level guard for the MVCC delta path: any aliasing
// bug, stale interned column, or mis-spliced span shows up as an
// engine disagreement between the derived and the rebuilt instance.
func TestMutationReplayDifferential(t *testing.T) {
	const wantChecked = 520
	ctx := context.Background()
	checked, applies := 0, 0
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % NumShapes)
		q, d := Generate(seed, shape)
		if d.Len() < 2 || d.NumRepairs() > MaxOracleRepairs {
			continue
		}
		plan, err := core.Compile(q)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		checked++

		// The expected fact set, maintained alongside the Apply chain and
		// used to rebuild the reference database at every checkpoint.
		want := map[string]db.Fact{}
		baseBlockSize := map[string]int{}
		for _, f := range d.Facts() {
			want[f.String()] = f
			baseBlockSize[blockKey(f)]++
		}

		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		facts := append([]db.Fact(nil), d.Facts()...)
		rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
		nchunks := 1 + rng.Intn(3)
		per := (len(facts) + nchunks - 1) / nchunks

		checkpoint := func(cur *db.DB, step string) {
			rebuilt := db.New()
			for _, f := range want {
				rebuilt.Add(f)
			}
			if cur.Len() != rebuilt.Len() || cur.NumBlocks() != rebuilt.NumBlocks() {
				t.Fatalf("seed %d %s: derived has %d facts/%d blocks, rebuilt %d/%d\nquery: %s",
					seed, step, cur.Len(), cur.NumBlocks(), rebuilt.Len(), rebuilt.NumBlocks(), q)
			}
			for _, f := range want {
				if !cur.Has(f) {
					t.Fatalf("seed %d %s: derived is missing %s", seed, step, f)
				}
			}
			ref, err := plan.CertainIndexedCtx(ctx, match.NewIndex(rebuilt), core.Options{})
			if err != nil {
				t.Fatalf("seed %d %s: rebuilt eval: %v", seed, step, err)
			}
			got, err := plan.CertainIndexedCtx(ctx, match.NewIndex(cur), core.Options{})
			if err != nil {
				t.Fatalf("seed %d %s: derived eval: %v", seed, step, err)
			}
			if got.Certain != ref.Certain {
				t.Fatalf("seed %d %s: derived (%s) = %v, rebuilt (%s) = %v\nquery: %s\nderived:\n%s",
					seed, step, got.Engine, got.Certain, ref.Engine, ref.Certain, q, cur)
			}
			sharded, err := plan.CertainIndexedCtx(ctx, match.NewIndex(cur), core.Options{Shards: 3})
			if err != nil {
				t.Fatalf("seed %d %s: derived sharded eval: %v", seed, step, err)
			}
			if sharded.Certain != ref.Certain {
				t.Fatalf("seed %d %s: derived sharded = %v, rebuilt = %v\nquery: %s\nderived:\n%s",
					seed, step, sharded.Certain, ref.Certain, q, cur)
			}
		}

		cur := d
		// Warm the columnar view so the Apply chain exercises the derived
		// (respliced) path rather than falling back to cold builds.
		cur.Columnar()
		for c := 0; c < nchunks; c++ {
			lo, hi := c*per, (c+1)*per
			if hi > len(facts) {
				hi = len(facts)
			}
			chunk := facts[lo:hi]
			if len(chunk) == 0 {
				continue
			}

			var del db.Delta
			for _, f := range chunk {
				del.Delete(f)
				delete(want, f.String())
			}
			cur, err = cur.Apply(del)
			if err != nil {
				t.Fatalf("seed %d chunk %d: delete apply: %v", seed, c, err)
			}
			applies++
			checkpoint(cur, "after-delete")

			// Re-insert: chunks that removed an entire block go back through
			// the upsert path (block replacement), the rest through
			// single-fact inserts.
			byBlock := map[string][]db.Fact{}
			for _, f := range chunk {
				byBlock[blockKey(f)] = append(byBlock[blockKey(f)], f)
			}
			var ins db.Delta
			for bk, group := range byBlock {
				if len(group) == baseBlockSize[bk] && rng.Intn(2) == 0 {
					ins.UpsertBlock(group)
				} else {
					for _, f := range group {
						ins.Insert(f)
					}
				}
				for _, f := range group {
					want[f.String()] = f
				}
			}
			cur, err = cur.Apply(ins)
			if err != nil {
				t.Fatalf("seed %d chunk %d: insert apply: %v", seed, c, err)
			}
			applies++
			checkpoint(cur, "after-reinsert")
		}

		// The script nets out to identity: the final version must hold
		// exactly the base facts again.
		if cur.Len() != d.Len() || cur.NumBlocks() != d.NumBlocks() {
			t.Fatalf("seed %d: round-trip landed on %d facts/%d blocks, base has %d/%d",
				seed, cur.Len(), cur.NumBlocks(), d.Len(), d.NumBlocks())
		}
		for _, f := range d.Facts() {
			if !cur.Has(f) {
				t.Fatalf("seed %d: round-trip lost %s", seed, f)
			}
		}
	}
	if checked < 500 {
		t.Fatalf("verified only %d cases, want >= 500", checked)
	}
	t.Logf("verified %d cases through %d applied deltas (flat + sharded)", checked, applies)
}
