package difftest

import (
	"testing"

	"cqa/internal/attack"
)

// TestCountingDifferential is the seeded corpus for the repair-counting
// engine: at least 500 verified cases where the exact count agrees with
// the brute-force oracle and with the decision engines, across the same
// generator families (and hence all three complexity classes) as the
// decision corpus. This is the `make check` entry point for #CERTAINTY.
func TestCountingDifferential(t *testing.T) {
	const wantChecked = 520
	checked, skipped := 0, 0
	byClass := map[attack.Class]int{}
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % NumShapes)
		q, d := Generate(seed, shape)
		sk, err := CheckCounting(q, d)
		if err != nil {
			t.Fatalf("seed %d shape %d: %v", seed, shape, err)
		}
		if sk {
			skipped++
			continue
		}
		checked++
		cls, _, cerr := attack.Classify(q)
		if cerr != nil {
			t.Fatalf("seed %d: classify: %v", seed, cerr)
		}
		byClass[cls]++
	}
	if checked < 500 {
		t.Fatalf("verified only %d counting cases (%d skipped over the oracle bound); want >= 500", checked, skipped)
	}
	for _, cls := range []attack.Class{attack.FO, attack.PTime, attack.CoNPComplete} {
		if byClass[cls] == 0 {
			t.Errorf("no verified counting case of class %s — the corpus no longer covers the trichotomy", cls)
		}
	}
	t.Logf("verified %d counting cases (%d skipped): FO=%d P=%d coNP=%d",
		checked, skipped, byClass[attack.FO], byClass[attack.PTime], byClass[attack.CoNPComplete])
}

// FuzzCounting is the native fuzz target for the counting engine. Like
// FuzzDifferential, the raw (seed, shape) pair expands through the
// deterministic generator, so every mutated input is a valid instance and
// the only failures are genuine count/oracle disagreements, counting/
// decision inconsistencies, or panics.
func FuzzCounting(f *testing.F) {
	for i := int64(0); i < 4*NumShapes; i++ {
		f.Add(i*31, byte(i%NumShapes))
	}
	f.Fuzz(func(t *testing.T, seed int64, shape byte) {
		q, d := Generate(seed, shape)
		if _, err := CheckCounting(q, d); err != nil {
			t.Fatalf("seed %d shape %d: %v", seed, shape%NumShapes, err)
		}
	})
}
