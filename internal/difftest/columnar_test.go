package difftest

import (
	"context"
	"testing"

	"cqa/internal/core"
	"cqa/internal/match"
	"cqa/internal/naive"
)

// TestColumnarDifferential replays the seeded corpus through the
// columnar FO engine three ways — the interned span walk, the
// row-oriented reference walk, and the sharded scatter over span
// partitions — and requires exact agreement with the brute-force
// oracle on every FO-acyclic case within the oracle bound. This is the
// corpus-level guard for the interned rewrite: the unit equivalences in
// package rewrite check the walks against each other, this test checks
// both against ground truth across all generator families.
func TestColumnarDifferential(t *testing.T) {
	const wantChecked = 520
	ctx := context.Background()
	checked, fo := 0, 0
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % NumShapes)
		q, d := Generate(seed, shape)
		if d.NumRepairs() > MaxOracleRepairs {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			continue // raced past the oracle bound
		}
		checked++
		plan, err := core.Compile(q)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if plan.Elim == nil || plan.HasCycle {
			continue // no compiled eliminator; the FO fast path does not apply
		}
		fo++
		ix := match.NewIndex(d)
		topRel := plan.Elim.Order()[0].Rel.Name

		flat, ok, err := plan.Elim.CertainOverSpans(ix, nil, nil)
		if err != nil {
			t.Fatalf("seed %d: CertainOverSpans: %v", seed, err)
		}
		if !ok {
			t.Fatalf("seed %d: columnar view declined a parsed instance\nquery: %s\ndb:\n%s", seed, q, d)
		}
		if flat != want {
			t.Fatalf("seed %d: interned = %v, oracle = %v\nquery: %s\ndb:\n%s", seed, flat, want, q, d)
		}

		row, err := plan.Elim.CertainOverBlocks(ix, d.BlocksOf(topRel), nil)
		if err != nil {
			t.Fatalf("seed %d: CertainOverBlocks: %v", seed, err)
		}
		if row != want {
			t.Fatalf("seed %d: row walk = %v, oracle = %v\nquery: %s\ndb:\n%s", seed, row, want, q, d)
		}

		res, err := plan.CertainIndexedCtx(ctx, ix, core.Options{Shards: 3})
		if err != nil {
			t.Fatalf("seed %d: sharded: %v", seed, err)
		}
		if res.Certain != want {
			t.Fatalf("seed %d: sharded spans = %v, oracle = %v\nquery: %s\ndb:\n%s", seed, res.Certain, want, q, d)
		}
	}
	if checked < 500 {
		t.Fatalf("verified only %d cases, want >= 500", checked)
	}
	if fo < 100 {
		t.Fatalf("only %d FO-acyclic cases exercised the interned walk; the corpus should produce far more", fo)
	}
	t.Logf("verified %d cases, %d through the interned walk (flat + sharded)", checked, fo)
}
