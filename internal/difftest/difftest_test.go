package difftest

import (
	"testing"

	"cqa/internal/attack"
)

// TestDifferentialSeeded runs the deterministic corpus: at least 500
// verified cases in which every applicable engine agrees with the
// brute-force oracle, covering all three complexity classes of the
// trichotomy. This is the `make check` entry point of the fuzz suite.
func TestDifferentialSeeded(t *testing.T) {
	const wantChecked = 520
	checked, skipped := 0, 0
	byClass := map[attack.Class]int{}
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % NumShapes)
		q, d := Generate(seed, shape)
		sk, err := Check(q, d)
		if err != nil {
			t.Fatalf("seed %d shape %d: %v", seed, shape, err)
		}
		if sk {
			skipped++
			continue
		}
		checked++
		cls, _, cerr := attack.Classify(q)
		if cerr != nil {
			t.Fatalf("seed %d: classify: %v", seed, cerr)
		}
		byClass[cls]++
	}
	if checked < 500 {
		t.Fatalf("verified only %d cases (%d skipped over the oracle bound); want >= 500", checked, skipped)
	}
	for _, cls := range []attack.Class{attack.FO, attack.PTime, attack.CoNPComplete} {
		if byClass[cls] == 0 {
			t.Errorf("no verified case of class %s — the corpus no longer covers the trichotomy", cls)
		}
	}
	t.Logf("verified %d cases (%d skipped): FO=%d P=%d coNP=%d",
		checked, skipped, byClass[attack.FO], byClass[attack.PTime], byClass[attack.CoNPComplete])
}

// FuzzDifferential is the native fuzz target. The raw (seed, shape) pair
// is expanded into a query + uncertain database by the deterministic
// generator, so every input the fuzzer mutates is a valid instance and
// the only way to fail is a genuine engine/oracle disagreement (or an
// engine error). Failures are minimized and saved under testdata/fuzz by
// the Go fuzzing runtime.
func FuzzDifferential(f *testing.F) {
	for i := int64(0); i < 4*NumShapes; i++ {
		f.Add(i*31, byte(i%NumShapes))
	}
	f.Fuzz(func(t *testing.T, seed int64, shape byte) {
		q, d := Generate(seed, shape)
		if _, err := Check(q, d); err != nil {
			t.Fatalf("seed %d shape %d: %v", seed, shape%NumShapes, err)
		}
	})
}
