// Package difftest cross-checks every evaluation engine against the
// brute-force repair-enumeration oracle on randomly generated
// self-join-free queries and small uncertain databases. It is the
// differential backbone of the fuzz suite: a single Generate+Check pair
// drives both the seeded corpus test and the native fuzz target, so a
// disagreement found while fuzzing replays as an ordinary unit test.
package difftest

import (
	"fmt"
	"math/rand"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/workload"
)

// MaxOracleRepairs bounds the instances Check is willing to ground-truth:
// the oracle enumerates every repair, so the bound keeps a single case in
// the low milliseconds (the same guard E10 uses).
const MaxOracleRepairs = 1 << 13

// NumShapes is the number of generator families Generate cycles through.
// The families are chosen so all three complexity classes of Theorem 1
// appear: random queries mix classes, the path/star/cycle families lean
// FO, q0 is the canonical PTime\FO query, and the non-key join is
// coNP-complete.
const NumShapes = 6

// Generate derives one differential case deterministically from a seed
// and a shape selector. Same inputs, same case — which is what lets the
// fuzzer's saved failures reproduce.
func Generate(seed int64, shape byte) (query.Query, *db.DB) {
	rng := rand.New(rand.NewSource(seed))
	dbp := workload.DefaultDBParams()
	switch shape % NumShapes {
	case 0:
		qp := workload.DefaultQueryParams()
		qp.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, qp)
		return q, workload.RandomDB(rng, q, dbp)
	case 1:
		q := workload.PathQuery(2 + rng.Intn(3))
		return q, workload.RandomDB(rng, q, dbp)
	case 2:
		q := workload.StarQuery(2 + rng.Intn(3))
		return q, workload.RandomDB(rng, q, dbp)
	case 3:
		q := workload.CycleQuery(2 + rng.Intn(2))
		return q, workload.RandomDB(rng, q, dbp)
	case 4:
		q := workload.Q0()
		return q, workload.Q0Instance(rng, 3+rng.Intn(4), 2)
	default:
		q := workload.NonKeyJoinQuery()
		if rng.Intn(2) == 0 {
			return q, workload.RandomDB(rng, q, dbp)
		}
		return q, workload.HardInstance(rng, 3+rng.Intn(2), 4+rng.Intn(4), 2)
	}
}

// Check evaluates q on d with every applicable engine and compares each
// result against the naive oracle. It returns skipped=true when the
// instance exceeds the oracle bound (nothing was verified), and a non-nil
// error describing the first disagreement otherwise.
func Check(q query.Query, d *db.DB) (skipped bool, err error) {
	if d.NumRepairs() > MaxOracleRepairs {
		return true, nil
	}
	want, err := naive.Certain(q, d)
	if err != nil {
		return true, nil // raced past the oracle bound; nothing to compare
	}
	cls, _, err := attack.Classify(q)
	if err != nil {
		return false, fmt.Errorf("classify: %w", err)
	}

	disagree := func(engine string, got bool) error {
		return fmt.Errorf("%s = %v, oracle = %v (class %s)\nquery: %s\ndb (%d facts, %g repairs):\n%s",
			engine, got, want, cls, q, d.Len(), d.NumRepairs(), d)
	}

	// The production entry point: compile + indexed evaluation with
	// automatic engine selection.
	plan, err := core.Compile(q)
	if err != nil {
		return false, fmt.Errorf("compile: %w", err)
	}
	res, err := plan.CertainIndexed(match.NewIndex(d), core.Options{})
	if err != nil {
		return false, fmt.Errorf("CertainIndexed: %w", err)
	}
	if res.Certain != want {
		return false, disagree("CertainIndexed/"+res.Engine.String(), res.Certain)
	}

	// The class-specific engines, each on the classes it is sound for.
	if cls == attack.FO {
		got, err := rewrite.Certain(q, d)
		if err != nil {
			return false, fmt.Errorf("rewrite: %w", err)
		}
		if got != want {
			return false, disagree("rewrite.Certain", got)
		}
	}
	if cls != attack.CoNPComplete {
		got, _, err := ptime.Certain(q, d)
		if err != nil {
			return false, fmt.Errorf("ptime: %w", err)
		}
		if got != want {
			return false, disagree("ptime.Certain", got)
		}
	}
	got, _ := conp.Certain(q, d)
	if got != want {
		return false, disagree("conp.Certain", got)
	}
	return false, nil
}
