// Package faultinject is a deterministic fault-injection registry for
// the serving stack. Production code marks hook points with Fire(point);
// tests arm faults at those points — returned errors, panics, or
// injected latency — and exercise the timeout, budget-exhaustion, and
// panic-recovery paths on demand.
//
// The registry is disabled by default and gated behind a single atomic
// load, so an unarmed hook point costs one predictable branch on the
// hot path and allocates nothing. Faults fire deterministically: each
// point counts its calls, and a fault selects the calls it triggers on
// (After / Times), so a test can target exactly the Nth index build or
// the first engine poll.
//
// Hook points currently wired:
//
//	store.index.build   – snapshot evaluation-index construction
//	plancache.compile   – plan compilation on a cache miss
//	evalctx.poll        – engine step checks (eliminator walk, conp
//	                      search, ptime recursion, sampling)
//	shard.index         – per-shard block-partition builds of the shard
//	                      engine; shard.index.<id> targets one shard
//	shard.eval          – per-shard evaluation tasks of a scatter-gather
//	                      dispatch; shard.eval.<id> targets one shard
//	                      (fire a sleep to model a straggler, an error
//	                      to model a dead shard)
//	store.wal.append    – the journal append of a delta commit (before
//	                      the version publish — the redo-logging window)
//	store.commit        – between the WAL append and the version swap
//	                      (a crash here is what boot replay recovers)
//	cluster.node.exec   – entry of a node-side shard evaluation in the
//	                      remote shard tier (an error models a node-local
//	                      infrastructure fault the router must absorb;
//	                      SimNet owns the network-shaped faults)
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Func is an armed fault. It receives the 1-based call number of its
// hook point and returns the error to inject; it may also panic or
// sleep to model crashes and stalls. A nil return injects nothing for
// that call.
type Func func(call int) error

type fault struct {
	fn Func
	// After skips the first After calls; Times bounds how many calls
	// fire after that (0 = unlimited).
	after, times int
	calls        int
	fired        int
}

var (
	armed atomic.Bool
	mu    sync.Mutex
	table map[string]*fault
)

// Set arms fn at the named hook point, replacing any previous fault
// there, and enables the registry. The fault fires on every call.
func Set(point string, fn Func) { SetWindow(point, 0, 0, fn) }

// SetWindow arms fn at the named point for a deterministic call window:
// the fault is skipped for the first after calls and then fires at most
// times calls (times 0 = unlimited). Call counting starts when the
// fault is armed.
func SetWindow(point string, after, times int, fn Func) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*fault)
	}
	table[point] = &fault{fn: fn, after: after, times: times}
	armed.Store(true)
}

// Clear disarms the named point.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(table, point)
	if len(table) == 0 {
		armed.Store(false)
	}
}

// Reset disarms every point and disables the registry.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	armed.Store(false)
}

// Calls reports how many times the named point has fired its fault
// since it was armed.
func Calls(point string) int {
	mu.Lock()
	defer mu.Unlock()
	f, ok := table[point]
	if !ok {
		return 0
	}
	return f.fired
}

// Fire is the hook-point entry. When the registry is disarmed (the
// production state) it returns nil after one atomic load. When a fault
// is armed at the point and the call falls inside its window, the
// fault's function runs — it may return the error Fire propagates,
// panic, or sleep.
func Fire(point string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	f, ok := table[point]
	if !ok {
		mu.Unlock()
		return nil
	}
	f.calls++
	call := f.calls
	if call <= f.after || (f.times > 0 && f.fired >= f.times) {
		mu.Unlock()
		return nil
	}
	f.fired++
	fn := f.fn
	mu.Unlock()
	// Run outside the lock: the fault may sleep or panic, and the hook
	// point may be on a concurrent path.
	return fn(call)
}
