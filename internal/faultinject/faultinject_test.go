package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := Fire("nowhere"); err != nil {
			t.Fatalf("disarmed Fire returned %v", err)
		}
	}
}

func TestSetFiresEveryCall(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", func(call int) error { return boom })
	for i := 1; i <= 3; i++ {
		if err := Fire("p"); err != boom {
			t.Fatalf("call %d: got %v, want boom", i, err)
		}
	}
	if got := Calls("p"); got != 3 {
		t.Fatalf("Calls = %d, want 3", got)
	}
	if err := Fire("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestWindowAfterAndTimes(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("w", nil)
	SetWindow("w", 2, 1, func(call int) error { return boom })
	got := []error{Fire("w"), Fire("w"), Fire("w"), Fire("w")}
	want := []error{nil, nil, boom, nil}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("call %d: got %v, want %v", i+1, got[i], want[i])
		}
	}
	if Calls("w") != 1 {
		t.Fatalf("Calls = %d, want 1", Calls("w"))
	}
}

func TestClearDisablesWhenEmpty(t *testing.T) {
	defer Reset()
	Set("a", func(int) error { return errors.New("x") })
	Clear("a")
	if err := Fire("a"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if armed.Load() {
		t.Fatal("registry still armed after clearing the last point")
	}
}

func TestConcurrentFire(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	SetWindow("c", 0, 50, func(call int) error { return boom })
	var wg sync.WaitGroup
	hits := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if Fire("c") != nil {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != 50 {
		t.Fatalf("fired %d times, want exactly 50", total)
	}
}
