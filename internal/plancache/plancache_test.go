package plancache

import (
	"fmt"
	"sync"
	"testing"

	"cqa/internal/core"
)

// sameShardKeys returns n distinct parseable query texts whose canonical
// keys all land in the same shard, so LRU order is deterministic.
func sameShardKeys(t *testing.T, c *Cache, n int) []string {
	t.Helper()
	target := c.shardFor("R0(x | y)")
	var out []string
	for i := 0; len(out) < n && i < 10000; i++ {
		text := fmt.Sprintf("R%d(x | y)", i)
		if c.shardFor(text) == target {
			out = append(out, text)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d same-shard keys", len(out))
	}
	return out
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity 2*shardCount gives every shard room for exactly two
	// entries; three same-shard keys then exercise LRU eviction.
	c := New(2 * shardCount)
	keys := sameShardKeys(t, c, 3)
	for _, k := range keys[:2] {
		if _, hit, err := c.GetOrCompile(k); err != nil || hit {
			t.Fatalf("prime %q: hit=%v err=%v", k, hit, err)
		}
	}
	// Touch keys[0] so keys[1] becomes the LRU victim.
	if _, hit, err := c.GetOrCompile(keys[0]); err != nil || !hit {
		t.Fatalf("bump %q: hit=%v err=%v", keys[0], hit, err)
	}
	if _, hit, err := c.GetOrCompile(keys[2]); err != nil || hit {
		t.Fatalf("insert %q: hit=%v err=%v", keys[2], hit, err)
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	c := New(shardCount) // one plan per shard
	for i := 0; i < 100; i++ {
		if _, _, err := c.GetOrCompile(fmt.Sprintf("R%d(x | y), S%d(y | z)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > shardCount {
		t.Errorf("cache holds %d plans, capacity %d", n, shardCount)
	}
	st := c.Stats()
	if int(st.Evictions) != 100-st.Entries {
		t.Errorf("evictions=%d entries=%d, want evictions=100-entries", st.Evictions, st.Entries)
	}
}

func TestGetOrCompileNormalizes(t *testing.T) {
	c := New(0)
	p1, hit, err := c.GetOrCompile("  S(y | z),R(x | y) ")
	if err != nil || hit {
		t.Fatalf("first: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.GetOrCompile("R(x | y), S(y | z)")
	if err != nil || !hit {
		t.Fatalf("variant should hit: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Error("textual variants produced distinct plans")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d plans, want 1", c.Len())
	}
	if p1.Class != core.FO || p1.Formula == nil {
		t.Errorf("cached plan incomplete: %+v", p1)
	}
	if _, _, err := c.GetOrCompile("R(("); err == nil {
		t.Error("parse error must propagate")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestConcurrentGetOrCompile hammers the cache from 32 goroutines; run
// with -race. Correctness: every returned plan classifies its own query.
func TestConcurrentGetOrCompile(t *testing.T) {
	c := New(8) // small capacity so evictions happen under contention
	queries := make([]string, 24)
	for i := range queries {
		queries[i] = fmt.Sprintf("R%d(x | y), S%d(y | z)", i, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				text := queries[(g+i)%len(queries)]
				p, _, err := c.GetOrCompile(text)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if p.Class != core.FO {
					t.Errorf("goroutine %d: %s classified %v", g, text, p.Class)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 32*60 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 32*60)
	}
}
