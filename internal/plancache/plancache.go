// Package plancache caches compiled certainty plans for a serving
// process. Compiling a plan — attack-graph classification plus, for FO
// queries, the first-order rewriting — is per-query work, polynomial in
// |q| and independent of the data (Lemma 3 of Koutris & Wijsen, PODS
// 2015), so a server compiles each distinct query once and answers every
// subsequent data-side request from the cached plan.
//
// The cache is a sharded, mutex-protected LRU keyed by the normalized
// query text of core.Normalize, so textual variants of the same query
// (whitespace, atom order) share one entry. Hits, misses, and evictions
// are counted for the /metrics endpoint.
package plancache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"cqa/internal/core"
	"cqa/internal/faultinject"
	"cqa/internal/trace"
)

// DefaultCapacity is the total plan capacity used when New is given a
// non-positive capacity.
const DefaultCapacity = 1024

const shardCount = 16

// Cache is a sharded LRU of compiled plans. The zero value is not
// ready; use New. All methods are safe for concurrent use.
type Cache struct {
	shards [shardCount]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type entry struct {
	key  string
	plan *core.Plan
}

// New returns a cache holding at most capacity plans in total, spread
// evenly across the shards (each shard holds at least one). A
// non-positive capacity selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + shardCount - 1) / shardCount
	c := &Cache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = per
		s.ll = list.New()
		s.items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%shardCount]
}

// Get returns the plan cached under the normalized key, bumping its
// recency. It counts a hit or a miss.
func (c *Cache) Get(key string) (*core.Plan, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry).plan, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts (or refreshes) a plan under the normalized key, evicting
// the least recently used entry of its shard when the shard is full.
func (c *Cache) Put(key string, p *core.Plan) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).plan = p
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, plan: p})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// GetOrCompile normalizes the query text, returns the cached plan on a
// hit, and compiles + inserts on a miss. Concurrent misses on the same
// key may compile twice; compilation is pure, so the duplicate work is
// harmless and the last insert wins.
func (c *Cache) GetOrCompile(text string) (p *core.Plan, hit bool, err error) {
	return c.GetOrCompileTraced(text, nil)
}

// GetOrCompileTraced is GetOrCompile with stage tracing: normalization
// is recorded under the "normalize" stage, and a miss's compilation
// under "compile" — a hit records no compile span, which is exactly the
// signal that distinguishes a cold query from a warm one in a request
// trace. A nil tracer records nothing.
func (c *Cache) GetOrCompileTraced(text string, tr *trace.Tracer) (p *core.Plan, hit bool, err error) {
	sp := tr.Begin(trace.StageNormalize)
	q, key, err := core.Normalize(text)
	sp.End()
	if err != nil {
		return nil, false, err
	}
	if p, ok := c.Get(key); ok {
		return p, true, nil
	}
	// Chaos hook: simulate a compilation failure on the miss path.
	if err := faultinject.Fire("plancache.compile"); err != nil {
		return nil, false, err
	}
	sp = tr.Begin(trace.StageCompile)
	p, err = core.Compile(q)
	sp.End()
	if err != nil {
		return nil, false, err
	}
	c.Put(key, p)
	return p, false, nil
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// Stats returns the current counters and entry count.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
