package experiments

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"cqa/internal/core"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/shard"
)

func init() {
	register("E18", "sharded scatter-gather: shard-count scaling and hedged tail latency", runE18)
}

// runE18 validates the two operational claims of the shard engine:
//
//  1. Scaling — the certain-answers sweep over a key-partitioned pool
//     agrees with the flat path and its per-shard work shrinks with the
//     fan-out (each shard sweeps only the blocks it owns).
//  2. Hedging — with one shard intermittently slow, duplicate dispatch
//     after the hedge threshold caps the tail: the p99 of the hedged
//     pool sits near the healthy latency while the unhedged pool pays
//     the full stall.
func runE18(r *Runner) error {
	if err := runE18Scaling(r); err != nil {
		return err
	}
	return runE18Hedging(r)
}

func runE18Scaling(r *Runner) error {
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		return err
	}
	n := 10000
	if r.Quick {
		n = 500
	}
	d := evalChainDB(q, n)
	ix := match.NewIndex(d)
	free := []query.Var{"x"}
	ctx := context.Background()

	flatAns, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, core.Options{})
	if err != nil {
		return err
	}

	bench := func(opts core.Options) (float64, error) {
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, opts); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp()), benchErr
	}

	t := &Table{
		Title:   fmt.Sprintf("certain answers of x, flat vs sharded scatter-gather (chain, %d blocks)", d.NumBlocks()),
		Headers: []string{"config", "shards", "answers", "ns/op", "vs flat"},
	}
	flatNs, err := bench(core.Options{})
	if err != nil {
		return err
	}
	t.AddRow("flat", 0, len(flatAns), flatNs, "baseline")
	for _, k := range evalShardSweep {
		pool := shard.NewPool(d, k, shard.PoolOptions{})
		if err := waitPoolBuilt(pool); err != nil {
			pool.Close()
			return err
		}
		ans, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, core.Options{ShardPool: pool})
		if err != nil {
			pool.Close()
			return err
		}
		if len(ans) != len(flatAns) {
			pool.Close()
			return fmt.Errorf("E18: sharded (%d shards) returned %d answers, flat %d", k, len(ans), len(flatAns))
		}
		ns, err := bench(core.Options{ShardPool: pool})
		pool.Close()
		if err != nil {
			return err
		}
		t.AddRow("sharded", k, len(ans), ns, fmt.Sprintf("%.2fx", flatNs/ns))
	}
	t.Notes = append(t.Notes,
		"every sharded row returns exactly the flat answer set (checked before timing)",
		"each shard derives candidates from its own key-partitioned blocks and sweeps them",
		"locally; the coordinator concatenates and sorts by valuation key")
	t.Fprint(r.Out)
	return nil
}

// runE18Hedging drives repeated scatters over a pool whose shard 0
// stalls on a fraction of its evaluations, with and without hedging,
// and reports the latency percentiles.
func runE18Hedging(r *Runner) error {
	defer faultinject.Reset()
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		return err
	}
	n := 2000
	if r.Quick {
		n = 200
	}
	// The instance is falsified (not certain), so every scatter must
	// hear from every shard: the early-exit merge cannot mask the
	// straggler, and only the hedge can.
	d := evalFalsifiedChainDB(q, n)
	ix := match.NewIndex(d)
	ctx := context.Background()

	reqs := 200
	if r.Quick {
		reqs = 60
	}
	const stall = 3 * time.Millisecond
	run := func(hedge time.Duration) ([]time.Duration, int64, error) {
		pool := shard.NewPool(d, 4, shard.PoolOptions{Hedge: hedge})
		defer pool.Close()
		if err := waitPoolBuilt(pool); err != nil {
			return nil, 0, err
		}
		// Every tenth evaluation of shard 0 stalls — a 10% tail on one
		// shard of the cluster.
		faultinject.Set("shard.eval.0", func(call int) error {
			if call%10 == 0 {
				time.Sleep(stall)
			}
			return nil
		})
		defer faultinject.Clear("shard.eval.0")
		lats := make([]time.Duration, 0, reqs)
		for i := 0; i < reqs; i++ {
			start := time.Now()
			res, err := plan.CertainIndexedCtx(ctx, ix, core.Options{ShardPool: pool})
			if err != nil {
				return nil, 0, err
			}
			if res.Certain {
				return nil, 0, fmt.Errorf("E18: falsified instance reported certain")
			}
			lats = append(lats, time.Since(start))
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats, pool.Stats().HedgeWins, nil
	}
	pct := func(lats []time.Duration, p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}

	t := &Table{
		Title:   fmt.Sprintf("hedged tail latency: 4 shards, shard 0 stalls %v on 10%% of evals (%d requests each)", stall, reqs),
		Headers: []string{"hedge", "p50", "p90", "p99", "max", "hedge wins"},
	}
	for _, hedge := range []time.Duration{0, stall / 4} {
		lats, wins, err := run(hedge)
		if err != nil {
			return err
		}
		label := "off"
		if hedge > 0 {
			label = hedge.String()
		}
		t.AddRow(label, pct(lats, 0.50), pct(lats, 0.90), pct(lats, 0.99),
			lats[len(lats)-1], wins)
	}
	t.Notes = append(t.Notes,
		"the instance is falsified, so every request must hear from all 4 shards",
		"with hedging on, a duplicate dispatched after the threshold races the stalled",
		"primary and the first result wins; the tail collapses toward the healthy latency")
	t.Fprint(r.Out)
	return nil
}
