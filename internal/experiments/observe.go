package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cqa/internal/core"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/trace"
	"cqa/internal/workload"
)

func init() {
	register("E17", "observability: per-engine stage breakdowns and tracing overhead", runE17)
}

// runE17 validates the two operational claims of the tracing work:
//
//  1. Stage breakdowns — a traced evaluation decomposes its wall-clock
//     into the stages each engine actually passes through (eliminator
//     for FO, the dissolution pipeline for P, purify+match+DPLL for
//     coNP), with the effort counters (steps, nodes, dissolutions)
//     flushed alongside.
//  2. Tracing overhead — the warm indexed hot path with a live tracer
//     versus the untraced path stays small, and the disabled path is
//     free: a nil *trace.Tracer is a no-op at every instrumentation
//     point (zero allocations, pinned by internal/trace's tests).
func runE17(r *Runner) error {
	if err := runE17Stages(r); err != nil {
		return err
	}
	return runE17Overhead(r)
}

func runE17Stages(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed))

	type target struct {
		engine string
		inst   string
		q      query.Query
		ix     *match.Index
		opts   core.Options
	}
	var targets []target

	// FO: the Lemma 9/10 walk over a falsified chain.
	foq := query.MustParse("R(x | y), S(y | z)")
	foBlocks := 10000
	if r.Quick {
		foBlocks = 1000
	}
	targets = append(targets, target{
		engine: "fo", inst: fmt.Sprintf("chain/%d", foBlocks), q: foq,
		ix: match.NewIndex(evalFalsifiedChainDB(foq, foBlocks)),
	})

	// P: the Theorem 4 dissolution pipeline on q0 = R0(x|y), S0(y|x).
	pq := workload.Q0()
	pNodes := 300
	if r.Quick {
		pNodes = 50
	}
	targets = append(targets, target{
		engine: "ptime", inst: fmt.Sprintf("q0/%d", pNodes), q: pq,
		ix: match.NewIndex(workload.Q0Instance(rng, pNodes, 2)),
	})

	// coNP: purification + match enumeration + the DPLL repair search.
	// valuesPerVar stays at 2 so purification does not dissolve the
	// instance before the search runs (larger domains leave no matches,
	// and an instance with no matches never reaches the DPLL stage).
	cq := workload.NonKeyJoinQuery()
	cVars, cClauses := 16, 60
	if r.Quick {
		cVars, cClauses = 8, 20
	}
	targets = append(targets, target{
		engine: "conp", inst: fmt.Sprintf("hard/%dx%d", cVars, cClauses), q: cq,
		ix:   match.NewIndex(workload.HardInstance(rng, cVars, cClauses, 2)),
		opts: core.Options{Engine: core.EngineCoNP},
	})

	t := &Table{
		Title:   "per-engine stage breakdown (one traced evaluation each, warm index)",
		Headers: []string{"engine", "instance", "stage", "spans", "us", "counters"},
	}
	for _, tg := range targets {
		plan, err := core.Compile(tg.q)
		if err != nil {
			return err
		}
		// Warm the lazy index structures so the trace shows engine work,
		// not the one-time index build.
		if _, err := plan.CertainIndexedCtx(context.Background(), tg.ix, tg.opts); err != nil {
			return err
		}
		opts := tg.opts
		opts.Tracer = trace.New()
		if _, err := plan.CertainIndexedCtx(context.Background(), tg.ix, opts); err != nil {
			return err
		}
		for _, st := range opts.Tracer.Breakdown() {
			keys := make([]string, 0, len(st.Counters))
			for k := range st.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, st.Counters[k]))
			}
			t.AddRow(tg.engine, tg.inst, st.Stage, st.Spans, st.Micros, strings.Join(parts, " "))
		}
	}
	t.Notes = append(t.Notes,
		"stages are recorded by the engines themselves via the evalctx.Checker's tracer",
		"counters: steps/memo (eliminator), branches/dissolutions (ptime), nodes/restarts (conp)")
	t.Fprint(r.Out)
	return nil
}

func runE17Overhead(r *Runner) error {
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		return err
	}
	blocks := 10000
	if r.Quick {
		blocks = 1000
	}
	ix := match.NewIndex(evalFalsifiedChainDB(q, blocks))
	if _, err := plan.CertainIndexed(ix, core.Options{}); err != nil {
		return err
	}

	// Best-of-3 per variant, as in E16: single runs of a ~ms-scale op are
	// noisy enough to swamp a sub-5% effect.
	bench := func(f func() error) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(res.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	ctx := context.Background()
	offNs := bench(func() error {
		_, err := plan.CertainIndexedCtx(ctx, ix, core.Options{})
		return err
	})
	onNs := bench(func() error {
		_, err := plan.CertainIndexedCtx(ctx, ix, core.Options{Tracer: trace.New()})
		return err
	})
	t := &Table{
		Title:   fmt.Sprintf("tracing overhead, warm indexed FO path (chain/%d)", blocks),
		Headers: []string{"variant", "tracer", "ns/op", "overhead"},
	}
	t.AddRow("CertainIndexedCtx", "nil (tracing off)", offNs, "baseline")
	t.AddRow("CertainIndexedCtx", "live (fresh per op)", onNs,
		fmt.Sprintf("%+.2f%%", 100*(onNs-offNs)/offNs))
	t.Notes = append(t.Notes,
		"best of 3 testing.Benchmark runs per variant",
		"the off path is the instrumented code with a nil tracer: every span/counter call",
		"is a nil-receiver no-op, and allocates nothing (internal/trace TestNilTracerZeroAlloc)")
	t.Fprint(r.Out)
	return nil
}
