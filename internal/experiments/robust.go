package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"cqa/internal/core"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func init() {
	register("E16", "robustness: cancellation latency and context-check overhead", runE16)
}

// runE16 validates the two operational claims of the cancellation work:
//
//  1. Cancellation latency — the wall-clock between cancelling an
//     in-flight evaluation and the engine returning ctx.Err() — stays in
//     the sub-millisecond range, because every engine polls its checker
//     at least once per evalctx.DefaultInterval units of work.
//  2. Context-check overhead — the warm indexed hot path with a live
//     (cancellable) context versus the unlimited nil-checker path —
//     stays within 5% (the BENCH_eval.json acceptance bound), because a
//     poll is one counter increment amortized over 1024 steps.
func runE16(r *Runner) error {
	if err := runE16Latency(r); err != nil {
		return err
	}
	return runE16Overhead(r)
}

func runE16Latency(r *Runner) error {
	rounds := 50
	if r.Quick {
		rounds = 10
	}
	t := &Table{
		Title:   "cancellation latency: cancel() -> engine returns ctx.Err()",
		Headers: []string{"engine", "instance", "rounds", "p50", "p95", "max"},
	}

	type target struct {
		engine string
		inst   string
		opts   core.Options
		plan   *core.Plan
		ix     *match.Index
	}
	var targets []target

	// FO: the Lemma 9/10 walk over a large falsified chain.
	foq := query.MustParse("R(x | y), S(y | z)")
	foPlan, err := core.Compile(foq)
	if err != nil {
		return err
	}
	foBlocks := 100000
	if r.Quick {
		foBlocks = 10000
	}
	targets = append(targets, target{
		engine: "fo", inst: fmt.Sprintf("chain/%d", foBlocks), opts: core.Options{},
		plan: foPlan, ix: match.NewIndex(evalFalsifiedChainDB(foq, foBlocks)),
	})

	// coNP: the falsifying-repair search on an adversarial instance.
	cq := workload.NonKeyJoinQuery()
	cPlan, err := core.Compile(cq)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	targets = append(targets, target{
		engine: "conp", inst: "hard/60x400", opts: core.Options{Engine: core.EngineCoNP},
		plan: cPlan, ix: match.NewIndex(workload.HardInstance(rng, 60, 400, 6)),
	})

	for _, tg := range targets {
		// Warm the lazy index structures with one full (or deadline-bounded)
		// evaluation so round 1 does not charge the one-time build to the
		// cancellation latency being measured.
		warmCtx, warmCancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		tg.plan.CertainIndexedCtx(warmCtx, tg.ix, tg.opts)
		warmCancel()
		var lats []time.Duration
		for i := 0; i < rounds; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := tg.plan.CertainIndexedCtx(ctx, tg.ix, tg.opts)
				done <- err
			}()
			// Let the evaluation get going, then cancel and time the unwind.
			time.Sleep(time.Millisecond)
			start := time.Now()
			cancel()
			err := <-done
			lat := time.Since(start)
			if err == nil {
				continue // finished before the cancel landed; nothing to measure
			}
			if !errors.Is(err, context.Canceled) {
				return fmt.Errorf("E16: unexpected error under cancellation: %w", err)
			}
			lats = append(lats, lat)
		}
		if len(lats) == 0 {
			t.AddRow(tg.engine, tg.inst, 0, "-", "-", "-")
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		t.AddRow(tg.engine, tg.inst, len(lats),
			lats[len(lats)/2], lats[len(lats)*95/100], lats[len(lats)-1])
	}
	t.Notes = append(t.Notes,
		"rounds where the evaluation finished before cancel() landed are dropped",
		"engines poll every 1<<10 steps (evalctx.DefaultInterval); latency is the in-between work")
	t.Fprint(r.Out)
	return nil
}

func runE16Overhead(r *Runner) error {
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		return err
	}
	blocks := 10000
	if r.Quick {
		blocks = 1000
	}
	ix := match.NewIndex(evalFalsifiedChainDB(q, blocks))
	// Warm the memoized structures so both measurements see a warm index.
	if _, err := plan.CertainIndexed(ix, core.Options{}); err != nil {
		return err
	}

	// Best-of-3 per variant: a single testing.Benchmark run of a ~10ms op
	// is noisy enough (GC phase, scheduler) to swamp a sub-5% effect.
	bench := func(f func() error) float64 {
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
			})
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bareNs := bench(func() error {
		_, err := plan.CertainIndexed(ix, core.Options{})
		return err
	})
	checkedNs := bench(func() error {
		_, err := plan.CertainIndexedCtx(ctx, ix, core.Options{})
		return err
	})
	budgetedNs := bench(func() error {
		_, err := plan.CertainIndexedCtx(ctx, ix, core.Options{MaxSteps: 1 << 40})
		return err
	})
	t := &Table{
		Title:   fmt.Sprintf("context-check overhead, warm indexed FO path (chain/%d)", blocks),
		Headers: []string{"variant", "checker", "ns/op", "overhead"},
	}
	t.AddRow("CertainIndexed", "nil (unlimited)", bareNs, "baseline")
	t.AddRow("CertainIndexedCtx", "cancellable ctx", checkedNs,
		fmt.Sprintf("%+.2f%%", 100*(checkedNs-bareNs)/bareNs))
	t.AddRow("CertainIndexedCtx", "ctx + step budget", budgetedNs,
		fmt.Sprintf("%+.2f%%", 100*(budgetedNs-bareNs)/bareNs))
	t.Notes = append(t.Notes,
		"best of 3 testing.Benchmark runs per variant",
		"acceptance bound: checked path within 5% of the BENCH_eval.json warm baseline",
		fmt.Sprintf("poll interval %d steps; a step is one candidate fact / search node / recursion level",
			evalctx.DefaultInterval))
	t.Fprint(r.Out)
	return nil
}
