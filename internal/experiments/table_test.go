package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("short", 3.14159)
	tbl.AddRow("a-much-longer-name", time.Duration(1234567)*time.Nanosecond)
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, frag := range []string{"== demo ==", "name", "value", "3.14", "1.235ms", "note: a note", "----"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// Column alignment: both data rows start the second column at the
	// same offset.
	var starts []int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "3.14") || strings.Contains(line, "1.235ms") {
			if i := strings.LastIndex(line, "  "); i >= 0 {
				starts = append(starts, i)
			}
		}
	}
	if len(starts) == 2 && starts[0] != starts[1] {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTimeItReturnsPositive(t *testing.T) {
	d := timeIt(func() {})
	if d < 0 {
		t.Errorf("timeIt = %v", d)
	}
}

func TestRunnerSingleExperiments(t *testing.T) {
	for _, id := range []string{"E3", "E8", "E13"} {
		var buf bytes.Buffer
		r := &Runner{Out: &buf, Quick: true, Seed: 7}
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}
