package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cqa/internal/catalog"
	"cqa/internal/rewrite"
)

// -update rewrites the golden files from current output instead of
// comparing against them: go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// checkGolden compares got against testdata/golden/<name>.golden
// byte-for-byte (or rewrites the file under -update). The golden files
// pin the paper-facing renderings — Figure 1, Figure 2, the Example 5
// rewriting — so an accidental change to graph or formula formatting
// shows up as a diff, not as silently drifting docs.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenFigure1 pins the Example 2 / Figure 1 rendering: the attack
// graph of the paper's running PTime query, its R^{+,q} closure, strong
// components, classification, and DOT export (experiment E1).
func TestGoldenFigure1(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Out: &buf, Quick: true, Seed: 1}
	if err := r.Run("E1"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure1", buf.Bytes())
}

// TestGoldenFigure2 pins the Example 7 / Figure 2 rendering: the attack
// graph next to the Markov graph, the premier Markov cycle, and the
// classification (experiment E2).
func TestGoldenFigure2(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Out: &buf, Quick: true, Seed: 1}
	if err := r.Run("E2"); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure2", buf.Bytes())
}

// TestGoldenExample5Rewriting pins the certain first-order rewriting of
// KW15 Example 5 — the paper's worked FO example — as rendered by
// rewrite.RewritingPretty.
func TestGoldenExample5Rewriting(t *testing.T) {
	e, ok := catalog.ByName("kw15-example5")
	if !ok {
		t.Fatal("catalog entry kw15-example5 missing")
	}
	q := e.MustQuery()
	f, err := rewrite.RewritingPretty(q)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "query: %s\n\ncertain rewriting (Example 5):\n%s\n", q, rewrite.Format(f))
	checkGolden(t, "example5-rewriting", buf.Bytes())
}
