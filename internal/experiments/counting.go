package experiments

import (
	"fmt"
	"time"

	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/match"
	"cqa/internal/query"
)

func init() {
	register("E21", "#CERTAINTY engine: anytime sampling accuracy and exact/approx latency", runE21)
}

// runE21 characterizes the repair-counting engine along the two axes the
// anytime contract trades between. Accuracy: a hub instance small enough
// to count exactly (one component, space 2^17) is re-counted with the
// exact bound forced down so the component samples instead, at growing
// sample budgets — the estimate's error must sit inside its reported 95%
// confidence half-width and the half-width must shrink with the budget.
// Latency: count-exact on the falsified chain and count-approx on the
// oversized hub at the eval sweep sizes (1k/10k blocks), one count per
// op, timed.
func runE21(r *Runner) error {
	q := query.MustParse(evalQueryText)
	plan, err := core.Compile(q)
	if err != nil {
		return err
	}

	// Accuracy: exact ground truth vs forced sampling on the same index.
	hub := evalHubDB(q, 17)
	hix := match.NewIndex(hub)
	truth, err := counting.Count(q, hix, nil, counting.Options{Exact: true})
	if err != nil {
		return err
	}
	acc := Table{
		Title:   "anytime estimator accuracy (hub instance, one component, space 2^17)",
		Headers: []string{"samples", "exact-fraction", "estimate", "abs-err", "confidence", "in-interval"},
	}
	budgets := []int{256, 1024, 4096}
	if r.Quick {
		budgets = []int{256, 1024}
	}
	for _, n := range budgets {
		est, err := counting.Count(q, hix, nil, counting.Options{ComponentLimit: 16, Samples: n, Seed: r.Seed + 21})
		if err != nil {
			return err
		}
		if est.Exact || est.Sampled != 1 {
			return fmt.Errorf("E21: forced sampling did not engage (exact=%v sampled=%d)", est.Exact, est.Sampled)
		}
		errAbs := absf(est.Fraction - truth.Fraction)
		acc.AddRow(n, truth.Fraction, est.Fraction, errAbs, est.Confidence, errAbs <= est.Confidence+1e-9)
	}
	acc.Notes = append(acc.Notes,
		"the estimator samples repairs of the oversized component uniformly; the interval is a 95% bound (rule of three at the extremes)",
		"deterministic seeding: the same instance and budget reproduce the same estimate")
	acc.Fprint(r.Out)

	// Latency: exact factorized counting vs the degraded sampling path.
	lat := Table{
		Title:   "repair-counting latency: exact (falsified chain) vs anytime (oversized hub)",
		Headers: []string{"blocks", "exact", "components", "approx", "sampled"},
	}
	for _, blocks := range evalCountSizes(r.Quick) {
		cd := evalFalsifiedChainDB(q, blocks)
		cix := match.NewIndex(cd)
		var exactRes core.CountResult
		exactT := timeIt(func() {
			var err error
			exactRes, err = plan.CountIndexed(cix, core.Options{})
			if err != nil {
				panic(err)
			}
		})
		if !exactRes.Exact {
			return fmt.Errorf("E21: chain instance (%d blocks) not counted exactly", blocks)
		}
		hd := evalHubDB(q, blocks)
		ix := match.NewIndex(hd)
		var approxRes core.CountResult
		approxT := timeIt(func() {
			var err error
			approxRes, err = plan.CountIndexed(ix, core.Options{Approximate: true})
			if err != nil {
				panic(err)
			}
		})
		if approxRes.Exact || approxRes.Sampled != 1 {
			return fmt.Errorf("E21: hub instance (%d blocks) did not degrade to sampling", blocks)
		}
		lat.AddRow(blocks, exactT.Round(time.Microsecond), exactRes.Components,
			approxT.Round(time.Microsecond), approxRes.Sampled)
	}
	lat.Notes = append(lat.Notes,
		"exact counting factorizes over constraint components (Maslowski & Wijsen); the chain has blocks/2 tiny components",
		"the hub is ONE component with assignment space 2^blocks — counted anyway, as an estimate, instead of a refusal")
	lat.Fprint(r.Out)
	return nil
}
