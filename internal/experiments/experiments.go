// Package experiments implements the benchmark harness of EXPERIMENTS.md:
// every experiment regenerates one of the paper's formal artifacts
// (figures, examples, the classification table) or validates one of its
// complexity claims on synthetic workloads. The cqa-bench command and the
// repository-root benchmarks drive this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner executes experiments.
type Runner struct {
	Out io.Writer
	// Quick shrinks the sweeps so the whole suite runs in seconds; used
	// by tests. Full mode is for cqa-bench.
	Quick bool
	// Seed fixes all randomness.
	Seed int64
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string {
	e, ok := registry[id]
	if !ok {
		return ""
	}
	return e.desc
}

type experiment struct {
	desc string
	run  func(r *Runner) error
}

var registry = map[string]experiment{}

func register(id, desc string, run func(r *Runner) error) {
	registry[id] = experiment{desc: desc, run: run}
}

// Run executes one experiment by id ("E1".."E12") or all of them ("all").
func (r *Runner) Run(id string) error {
	if id == "all" {
		for _, x := range IDs() {
			if err := r.Run(x); err != nil {
				return fmt.Errorf("%s: %w", x, err)
			}
		}
		return nil
	}
	e, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	fmt.Fprintf(r.Out, "### %s — %s\n\n", id, e.desc)
	return e.run(r)
}

// timeIt measures fn over enough iterations to be stable.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	iters := 0
	for {
		fn()
		iters++
		if el := time.Since(start); el > 20*time.Millisecond || iters >= 1000 {
			return el / time.Duration(iters)
		}
	}
}
