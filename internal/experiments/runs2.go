package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cqa/internal/baseline"
	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/workload"
)

func init() {
	register("E13", "#CERTAINTY: exact counting vs sampling estimate", runE13)
	register("E14", "Fuxman-Miller rewriting vs the Lemma 9/10 engine on Cforest", runE14)
}

func runE13(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 13))
	q := workload.Q0()
	sizes := []int{4, 8, 16, 32, 64}
	if r.Quick {
		sizes = []int{4, 8}
	}
	t := Table{
		Title:   "exact satisfying-repair counts vs sampling (q0 on independent gadgets)",
		Headers: []string{"gadgets", "repairs", "exact-fraction", "estimate", "abs-err", "components"},
	}
	for _, n := range sizes {
		// n independent 2x2 gadgets: per gadget 4 repairs, 1 satisfying
		// combination missing from 3 falsifiers, so the exact fraction
		// is 1 - (3/4)^n — an analytic cross-check on top of the count.
		d := db.New()
		rRel := q.Atoms[0].Rel
		sRel := q.Atoms[1].Rel
		for i := 0; i < n; i++ {
			x := query.Const(fmt.Sprintf("x%d", i))
			y := query.Const(fmt.Sprintf("y%d", i))
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, y}})
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, query.Const(fmt.Sprintf("ydead%d", i))}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, x}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, query.Const(fmt.Sprintf("xdead%d", i))}})
		}
		res, err := counting.SatisfyingRepairs(q, d)
		if err != nil {
			return err
		}
		exact := res.Fraction
		est, err := core.CertainFraction(q, d, 2000, rng)
		if err != nil {
			return err
		}
		t.AddRow(n, res.Total.String(), exact, est, absf(exact-est), res.Components)
	}
	t.Notes = append(t.Notes,
		"exact counts factorize over independent constraint components (cf. the #CERTAINTY dichotomy of Maslowski & Wijsen)",
		"the sampling estimator converges at the usual 1/sqrt(N) rate")
	t.Fprint(r.Out)
	return nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func runE14(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 14))
	queries := []string{
		"R(x | y), S(y | z)",
		"R(x | y), S(y | z), T(z | w)",
		"R(x | y, z), S(y | w)",
	}
	sizes := []int{100, 1000, 5000}
	if r.Quick {
		sizes = []int{50, 200}
	}
	t := Table{
		Title:   "Fuxman-Miller Cforest rewriting vs the attack-graph engine",
		Headers: []string{"query", "facts", "fm", "kw", "agree"},
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		if !baseline.InCforest(q) {
			return fmt.Errorf("E14: %s unexpectedly outside Cforest", qs)
		}
		for _, n := range sizes {
			p := workload.DefaultDBParams()
			p.SeedMatches = n
			p.Domain = n
			p.ExtraPerBlock = 0.4
			p.Noise = n / 10
			d := workload.RandomDB(rng, q, p)
			var fmRes, kwRes bool
			fmT := timeIt(func() {
				var err error
				fmRes, err = baseline.FMCertain(q, d)
				if err != nil {
					panic(err)
				}
			})
			kwT := timeIt(func() {
				var err error
				kwRes, err = rewrite.Certain(q, d)
				if err != nil {
					panic(err)
				}
			})
			t.AddRow(qs, d.Len(), fmT.Round(time.Microsecond), kwT.Round(time.Microsecond), fmRes == kwRes)
		}
	}
	t.Notes = append(t.Notes,
		"on Cforest queries the two engines implement equivalent rewritings; the attack-graph engine additionally covers every acyclic attack graph")
	t.Fprint(r.Out)
	return nil
}

func init() {
	register("E15", "certainty and repair fraction vs inconsistency rate", runE15)
}

func runE15(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 15))
	q := query.MustParse("R(x | y), S(y | z)")
	rates := []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0}
	trials := 40
	blocks := 12
	if r.Quick {
		rates = []float64{0, 0.5}
		trials = 10
	}
	t := Table{
		Title:   "certainty vs inconsistency on R(x|y), S(y|z)",
		Headers: []string{"extra-per-block", "trials", "certain-rate", "mean-fraction", "possible-rate"},
	}
	for _, rate := range rates {
		certain, possible, counted := 0, 0, 0
		var fracSum float64
		for i := 0; i < trials; i++ {
			p := workload.DefaultDBParams()
			p.SeedMatches = blocks
			p.Domain = blocks
			p.ExtraPerBlock = rate
			p.Noise = 0
			d := workload.RandomDB(rng, q, p)
			res, err := core.Certain(q, d, core.Options{})
			if err != nil {
				return err
			}
			if res.Certain {
				certain++
			}
			if core.Possible(q, d) {
				possible++
			}
			// Exact counts are only available while the constraint
			// components stay enumerable; average over those trials.
			if cnt, err := counting.SatisfyingRepairs(q, d); err == nil {
				fracSum += cnt.Fraction
				counted++
			}
		}
		frac := "-"
		if counted > 0 {
			frac = fmt.Sprintf("%.3f (n=%d)", fracSum/float64(counted), counted)
		}
		t.AddRow(rate, trials,
			fmt.Sprintf("%d/%d", certain, trials),
			frac,
			fmt.Sprintf("%d/%d", possible, trials))
	}
	t.Notes = append(t.Notes,
		"as key violations accumulate, certainty decays towards zero while possibility persists",
		"mean-fraction averages the exact satisfying-repair fraction over the trials where the component bound permits exact counting")
	t.Fprint(r.Out)
	return nil
}
