package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cqa/internal/attack"
	"cqa/internal/baseline"
	"cqa/internal/catalog"
	"cqa/internal/conp"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/markov"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/workload"
)

func init() {
	register("E1", "Figure 1: attack graph of Example 2, recomputed", runE1)
	register("E2", "Figure 2: attack and Markov graphs of Example 7, recomputed", runE2)
	register("E3", "Table 1 (synthetic): trichotomy over the literature catalog", runE3)
	register("E4", "Theorem 1: classification cost is polynomial in |q|", runE4)
	register("E5", "Lemma 10: FO engine scales polynomially in |db|", runE5)
	register("E6", "Theorem 4: dissolution engine scales polynomially on q0", runE6)
	register("E7", "Theorem 3: coNP engine blows up on strong-cycle gadgets", runE7)
	register("E8", "Example 5: symbolic FO rewritings of catalog FO queries", runE8)
	register("E9", "Lemma 1/17 ablation: effect of purification", runE9)
	register("E10", "soundness: engine agreement matrix vs the oracle", runE10)
	register("E11", "baseline concordance: FM, KP, KS vs the trichotomy", runE11)
	register("E12", "Lemma 7 shape: q0 on reachability-style instances", runE12)
}

func runE1(r *Runner) error {
	e, _ := catalog.ByName("kw15-example2-figure1")
	q := e.MustQuery()
	g, err := attack.BuildGraph(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "query: %s\n\nattack graph:\n%s\n\n", q, g)
	rIdx := 0
	for i, a := range q.Atoms {
		if a.Rel.Name == "R" {
			rIdx = i
		}
	}
	fmt.Fprintf(r.Out, "R^{+,q} = %s (paper: {x, u, v})\n", g.Plus[rIdx])
	comp, initial := g.StrongComponents()
	fmt.Fprintf(r.Out, "strong components: %v, initial: %v\n", comp, initial)
	fmt.Fprintf(r.Out, "classification: %v (paper: cyclic, all weak -> P\\FO)\n\n", g.Classify())
	fmt.Fprintf(r.Out, "DOT:\n%s\n", g.DOT())
	return nil
}

func runE2(r *Runner) error {
	e, _ := catalog.ByName("kw15-example7-figure2")
	q := e.MustQuery()
	g, err := attack.BuildGraph(q)
	if err != nil {
		return err
	}
	m, err := markov.Build(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.Out, "query: %s\n\nattack graph (Figure 2, left):\n%s\n\n", q, g)
	fmt.Fprintf(r.Out, "Markov graph (Figure 2, right):\n%s\n\n", m)
	c := m.PremierCycle(g)
	fmt.Fprintf(r.Out, "premier Markov cycle found: %v\n", c)
	fmt.Fprintf(r.Out, "classification: %v\n\n", g.Classify())
	return nil
}

func runE3(r *Runner) error {
	t := Table{
		Title:   "trichotomy over the literature catalog",
		Headers: []string{"name", "class", "expected", "agree", "Cforest", "KP", "KS"},
	}
	for _, e := range catalog.Entries() {
		q := e.MustQuery()
		cls, _, err := attack.Classify(q)
		if err != nil {
			return err
		}
		cf := "-"
		if baseline.InCforest(q) {
			cf = "yes"
		}
		kp := "-"
		if c, err := baseline.KPClassify(q); err == nil {
			kp = c.String()
		}
		ks := "-"
		if c, err := baseline.KSClassify(q); err == nil {
			ks = c.String()
		}
		t.AddRow(e.Name, cls, e.Class, cls == e.Class, cf, kp, ks)
	}
	t.Notes = append(t.Notes, "Cforest=yes implies class FO; KP/KS report P vs coNP-complete on their fragments")
	t.Fprint(r.Out)
	return nil
}

func runE4(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 4))
	sizes := []int{2, 4, 6, 8, 10, 12, 14}
	perSize := 60
	if r.Quick {
		sizes = []int{2, 4, 6}
		perSize = 10
	}
	t := Table{
		Title:   "classification time vs query size (random queries)",
		Headers: []string{"atoms", "queries", "mean", "FO", "P\\FO", "coNP-c"},
	}
	for _, n := range sizes {
		var queries []query.Query
		for i := 0; i < perSize; i++ {
			p := workload.DefaultQueryParams()
			p.Atoms = n
			p.Vars = n + 2
			queries = append(queries, workload.RandomQuery(rng, p))
		}
		counts := map[attack.Class]int{}
		for _, q := range queries {
			cls, _, err := attack.Classify(q)
			if err != nil {
				panic(err)
			}
			counts[cls]++
		}
		per := timeIt(func() {
			for _, q := range queries {
				if _, _, err := attack.Classify(q); err != nil {
					panic(err)
				}
			}
		})
		t.AddRow(n, perSize, per/time.Duration(perSize),
			counts[attack.FO], counts[attack.PTime], counts[attack.CoNPComplete])
	}
	t.Notes = append(t.Notes, "expected shape: low-degree polynomial growth in |q| (Lemma 3)")
	t.Fprint(r.Out)
	return nil
}

// scalingDB builds a database for the chain query R(x|y), S(y|z) with n
// R-blocks and the given fraction of inconsistent blocks.
func scalingDB(rng *rand.Rand, n int, inconsistent float64) *db.DB {
	q := query.MustParse("R(x | y), S(y | z)")
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	d := db.New()
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, "z"}})
		if rng.Float64() < inconsistent {
			y2 := query.Const(fmt.Sprintf("y%d_b", i))
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, y2}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{y2, "z"}})
		}
	}
	return d
}

func runE5(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 5))
	q := query.MustParse("R(x | y), S(y | z)")
	sizes := []int{100, 300, 1000, 3000, 10000}
	if r.Quick {
		sizes = []int{50, 100, 200}
	}
	t := Table{
		Title:   "FO engine scaling on R(x|y), S(y|z), 30% inconsistent blocks",
		Headers: []string{"R-blocks", "facts", "fo", "conp", "certain"},
	}
	for _, n := range sizes {
		d := scalingDB(rng, n, 0.3)
		var certain bool
		foT := timeIt(func() {
			var err error
			certain, err = rewrite.Certain(q, d)
			if err != nil {
				panic(err)
			}
		})
		conpT := timeIt(func() { conp.Certain(q, d) })
		t.AddRow(n, d.Len(), foT, conpT, certain)
	}
	t.Notes = append(t.Notes, "expected shape: both engines polynomial; FO recursion linearithmic-ish in |db|")
	t.Fprint(r.Out)
	return nil
}

func runE6(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 6))
	q := workload.Q0()
	sizes := []int{50, 100, 300, 1000, 3000}
	if r.Quick {
		sizes = []int{20, 50, 100}
	}
	t := Table{
		Title:   "P engine (dissolution) scaling on q0 = R0(x|y), S0(y|x)",
		Headers: []string{"nodes", "facts", "ptime", "conp", "certain", "dissolutions"},
	}
	for _, n := range sizes {
		d := workload.Q0Instance(rng, n, 2)
		var certain bool
		var stats *ptime.Stats
		pT := timeIt(func() {
			var err error
			certain, stats, err = ptime.Certain(q, d)
			if err != nil {
				panic(err)
			}
		})
		// The DPLL search is exponential on certain instances of q0 —
		// that contrast is the point of Theorem 4 — so only time it on
		// sizes where it terminates promptly.
		cT := "-"
		if n <= 20 {
			cT = timeIt(func() { conp.Certain(q, d) }).Round(time.Microsecond).String()
		}
		t.AddRow(n, d.Len(), pT, cT, certain, stats.Dissolutions)
	}
	t.Notes = append(t.Notes,
		"expected shape: ptime polynomial; the DPLL column blows up past small sizes and is omitted (the Theorem 4 contrast)")
	t.Fprint(r.Out)
	return nil
}

func runE7(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 7))
	q := workload.SATQuery()
	sizes := []int{6, 8, 10, 12, 14}
	if r.Quick {
		sizes = []int{5, 6, 7}
	}
	t := Table{
		Title:   "coNP engine on the Theorem 3 SAT reduction (R(x|y), S(u|y); random 3-CNF, ratio 5)",
		Headers: []string{"vars", "clauses", "facts", "time", "decisions", "certain-rate"},
	}
	for _, n := range sizes {
		trials := 5
		var total time.Duration
		decisions, certainCount := 0, 0
		var facts int
		for i := 0; i < trials; i++ {
			// Clause ratio 5: past the 3-SAT phase transition, so most
			// formulas are unsatisfiable and the corresponding instances
			// are certain — the search must exhaust to prove it.
			f := workload.RandomCNF(rng, n, 5*n, 3)
			d := workload.SATInstance(f)
			facts = d.Len()
			start := time.Now()
			ok, st := conp.Certain(q, d)
			total += time.Since(start)
			decisions += st.Decisions
			if ok {
				certainCount++
			}
		}
		t.AddRow(n, 5*n, facts, total/time.Duration(trials),
			decisions/trials, fmt.Sprintf("%d/%d", certainCount, trials))
	}
	t.Notes = append(t.Notes,
		"CERTAINTY holds iff the encoded 3-CNF is unsatisfiable; decision counts grow exponentially with vars (Theorem 3), and the P engine refuses this query")
	t.Fprint(r.Out)
	return nil
}

func runE8(r *Runner) error {
	for _, e := range catalog.Entries() {
		q := e.MustQuery()
		f, err := rewrite.RewritingPretty(q)
		if err != nil {
			continue // not FO
		}
		fmt.Fprintf(r.Out, "%s\n  q  = %s\n  phi = %s\n\n", e.Name, q, rewrite.Format(f))
	}
	return nil
}

func runE9(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 9))
	q := workload.NonKeyJoinQuery()
	noises := []int{0, 50, 200, 800}
	if r.Quick {
		noises = []int{0, 50}
	}
	t := Table{
		Title:   "purification ablation on R(x|y), S(u|y)",
		Headers: []string{"noise", "facts", "facts-purified", "dpll", "dpll-nopurify", "agree"},
	}
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	for _, noise := range noises {
		p := workload.DefaultDBParams()
		p.SeedMatches = 6
		p.Domain = 3
		d := workload.RandomDB(rng, q, p)
		// Inject genuinely irrelevant facts: their y-values join nothing,
		// and half of them dilute existing R-blocks (so purification also
		// removes blocks, not just facts).
		for i := 0; i < noise; i++ {
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{query.Const(fmt.Sprintf("dead_x%d", i)), query.Const(fmt.Sprintf("dead_ry%d", i))}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{query.Const(fmt.Sprintf("dead_u%d", i)), query.Const(fmt.Sprintf("dead_sy%d", i))}})
		}
		pd := match.Purify(q, d)
		var a, b bool
		ta := timeIt(func() { a, _ = conp.Certain(q, d) })
		tb := timeIt(func() { b, _ = conp.CertainNoPurify(q, d) })
		t.AddRow(noise, d.Len(), pd.Len(), ta, tb, a == b)
	}
	t.Notes = append(t.Notes,
		"purification never changes the answer (Lemma 1) and shrinks noisy instances ~100x in facts;",
		"end-to-end time is comparable here because embedding enumeration, which both paths share, dominates")
	t.Fprint(r.Out)
	return nil
}

func runE10(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 10))
	trials := 400
	if r.Quick {
		trials = 60
	}
	t := Table{
		Title:   "engine agreement vs the brute-force oracle",
		Headers: []string{"class", "instances", "fo=oracle", "ptime=oracle", "conp=oracle"},
	}
	type row struct{ n, fo, pt, co int }
	rows := map[attack.Class]*row{
		attack.FO: {}, attack.PTime: {}, attack.CoNPComplete: {},
	}
	for i := 0; i < trials; i++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		cls, _, err := attack.Classify(q)
		if err != nil {
			return err
		}
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<13 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			return err
		}
		rw := rows[cls]
		rw.n++
		if cls == attack.FO {
			if got, err := rewrite.Certain(q, d); err == nil && got == want {
				rw.fo++
			}
		}
		if cls != attack.CoNPComplete {
			if got, _, err := ptime.Certain(q, d); err == nil && got == want {
				rw.pt++
			}
		}
		if got, _ := conp.Certain(q, d); got == want {
			rw.co++
		}
	}
	for _, cls := range []attack.Class{attack.FO, attack.PTime, attack.CoNPComplete} {
		rw := rows[cls]
		fo, pt := "-", "-"
		if cls == attack.FO {
			fo = fmt.Sprintf("%d/%d", rw.fo, rw.n)
		}
		if cls != attack.CoNPComplete {
			pt = fmt.Sprintf("%d/%d", rw.pt, rw.n)
		}
		t.AddRow(cls, rw.n, fo, pt, fmt.Sprintf("%d/%d", rw.co, rw.n))
	}
	t.Notes = append(t.Notes, "every applicable engine must agree with the oracle on every instance")
	t.Fprint(r.Out)
	return nil
}

func runE11(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 11))
	trials := 3000
	if r.Quick {
		trials = 300
	}
	cfTotal, cfFO := 0, 0
	kpTotal, kpAgree := 0, 0
	ksTotal, ksAgree := 0, 0
	for i := 0; i < trials; i++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		cls, _, err := attack.Classify(q)
		if err != nil {
			return err
		}
		if baseline.InCforest(q) {
			cfTotal++
			if cls == attack.FO {
				cfFO++
			}
		}
		if kp, err := baseline.KPClassify(q); err == nil {
			kpTotal++
			if (kp == baseline.KPCoNPComplete) == (cls == attack.CoNPComplete) {
				kpAgree++
			}
		}
		if ks, err := baseline.KSClassify(q); err == nil {
			ksTotal++
			if (ks == baseline.KSCoNPComplete) == (cls == attack.CoNPComplete) {
				ksAgree++
			}
		}
	}
	t := Table{
		Title:   "prior-dichotomy concordance on random queries",
		Headers: []string{"baseline", "domain size", "agreement"},
	}
	t.AddRow("Fuxman-Miller Cforest ⊆ FO", cfTotal, fmt.Sprintf("%d/%d", cfFO, cfTotal))
	t.AddRow("Kolaitis-Pema two-atom", kpTotal, fmt.Sprintf("%d/%d", kpAgree, kpTotal))
	t.AddRow("Koutris-Suciu simple-key", ksTotal, fmt.Sprintf("%d/%d", ksAgree, ksTotal))
	t.Fprint(r.Out)
	return nil
}

func runE12(r *Runner) error {
	rng := rand.New(rand.NewSource(r.Seed + 12))
	q := workload.Q0()
	sizes := []int{10, 30, 100, 300}
	if r.Quick {
		sizes = []int{5, 10, 20}
	}
	t := Table{
		Title:   "q0 on random functional-graph instances (L-hardness shape)",
		Headers: []string{"nodes", "degree", "facts", "ptime", "certain"},
	}
	for _, n := range sizes {
		for _, deg := range []int{1, 2} {
			d := workload.Q0Instance(rng, n, deg)
			var certain bool
			pT := timeIt(func() {
				var err error
				certain, _, err = ptime.Certain(q, d)
				if err != nil {
					panic(err)
				}
			})
			t.AddRow(n, deg, d.Len(), pT, certain)
		}
	}
	t.Notes = append(t.Notes, "the Lemma 7 reduction encodes reachability; runtime stays polynomial")
	t.Fprint(r.Out)
	return nil
}

// Ensure core is linked for the CLI path (ClassifyString reuse in E-runs).
var _ = core.EngineAuto
