package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs the full suite in quick mode: every
// experiment must complete without error and produce output.
func TestAllExperimentsQuick(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Out: &buf, Quick: true, Seed: 1}
	if err := r.Run("all"); err != nil {
		t.Fatalf("run all: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, frag := range []string{
		"### E1", "### E12", "### E13", "### E14", "### E15", "### E16", "### E17", "### E18",
		"cancellation latency",                   // E16 latency table
		"context-check overhead",                 // E16 overhead table
		"per-engine stage breakdown",             // E17 stage table
		"tracing overhead",                       // E17 overhead table
		"flat vs sharded scatter-gather",         // E18 scaling table
		"hedged tail latency",                    // E18 hedging table
		"eliminator",                             // E17 FO stage row
		"dissolutions",                           // E17 ptime counter
		"R^{+,q}",                                // E1 prints the closure
		"Markov graph (Figure 2, right)",         // E2
		"trichotomy over the literature catalog", // E3
		"classification time",                    // E4
		"FO engine scaling",                      // E5
		"P engine (dissolution) scaling",         // E6
		"coNP engine on the Theorem 3",           // E7
		"phi =",                                  // E8 rewritings
		"purification ablation",                  // E9
		"engine agreement",                       // E10
		"prior-dichotomy concordance",            // E11
		"functional-graph instances",             // E12
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
	if strings.Contains(out, "false ") && strings.Contains(out, "agree") {
		// The E3 agree column must never contain "false".
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "kw15-") && strings.Contains(line, "false") {
				t.Errorf("catalog disagreement: %s", line)
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	r := &Runner{Out: &buf, Quick: true}
	if err := r.Run("E99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) != 19 {
		t.Fatalf("have %d experiments, want 19: %v", len(ids), ids)
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("Describe should return empty for unknown id")
	}
}
