package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"cqa/internal/cluster"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/shard"
)

// EvalResult is one measured configuration of the E-index evaluation
// benchmarks (BENCH_eval.json).
type EvalResult struct {
	Name        string  `json:"name"`
	Blocks      int     `json:"blocks"`
	Index       string  `json:"index"` // "warm" or "cold"
	Workers     int     `json:"workers,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// P50Ns/P99Ns are hand-sampled per-op latency percentiles; set only
	// on the mutation rows, where tail latency (not just the mean) is the
	// serving-relevant number for a group-committed write path.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// EvalReport is the file layout of BENCH_eval.json.
type EvalReport struct {
	Query    string            `json:"query"`
	Note     string            `json:"note"`
	Baseline map[string]string `json:"baseline_pre_pr"`
	Results  []EvalResult      `json:"results"`
}

// evalQueryText and evalNote are the identity of the BENCH_eval.json
// artifact: ValidateEvalJSON compares the checked-in file against them,
// so changing the harness without regenerating the artifact fails
// bench-smoke instead of silently shipping stale numbers.
const (
	evalQueryText = "R(x | y), S(y | z)"
	evalNote      = "certain: one CERTAINTY decision per op on a falsified chain instance (full block sweep). " +
		"warm evaluates against a pre-built index and the memoized columnar view — the serving hot " +
		"path, which runs the interned zero-allocation walk (allocs_per_op must be 0); cold drops " +
		"every memoized structure per op via ResetCaches, so each op pays the index, block, and " +
		"columnar builds. certain-row: the same warm instance decided by the row-oriented reference " +
		"walk (CertainOverBlocks) — the columnar-vs-row comparison at equal instance sizes. " +
		"answers-flat/answers-sharded: certain answers of x on a large certain chain — the " +
		"monolithic sweep vs the key-partitioned scatter-gather (per-shard columnar span sweeps " +
		"merged by sorted key) at increasing shard counts; the pool is built and warmed outside " +
		"the timed loop, as the serving layer caches it per snapshot version. " +
		"mutate-apply/mutate-rebuild: one single-fact delta against the warm instance — the MVCC " +
		"structural-sharing Apply (touched relation respliced, untouched columns aliased) vs " +
		"rebuilding the database and its columnar view from the full fact list; p50_ns/p99_ns are " +
		"hand-sampled per-op latencies. mutate-read: the warm certain decision on the Apply-derived " +
		"version — the write-then-read freshness path, which must stay on the inherited interned " +
		"walk (allocs_per_op must be 0, because the delta touched only a relation the query never reads). " +
		"cluster-unhedged/cluster-hedged: the remote shard tier's tail latency — a falsified boolean " +
		"scatter through the fault-tolerant router over four replicated loopback nodes, one node's " +
		"link stalling every 4th delivery for 40ms (a deterministic straggler, no RNG). unhedged " +
		"disables hedging, so every stalled delivery lands in some request's critical path; hedged " +
		"re-issues a stalled shard call against the next replica after the 2ms hedge threshold, and " +
		"p99_ns must collapse from the stall to the hedge delay. Hand-sampled percentiles: the tail, " +
		"not the mean, is the serving-relevant number for a scatter that cannot early-exit. " +
		"count-exact/count-approx: the repair-counting engine (#CERTAINTY) at the same sweep sizes — " +
		"count-exact is one exact satisfying-repair count per op on the warm falsified chain (many " +
		"tiny constraint components, all enumerated); count-approx is one anytime count per op on a " +
		"hub instance whose single component has assignment space 2^blocks, so the counter degrades " +
		"to the seeded Monte Carlo estimator and the row measures the sampling path's latency."
)

// evalCountSizes returns the block-count sweep of the repair-counting
// rows (count-exact on the falsified chain, count-approx on the hub
// gadget whose single component is past the exact bound).
func evalCountSizes(quick bool) []int {
	if quick {
		return []int{1000}
	}
	return []int{1000, 10000}
}

// evalMutationBlocks is the instance size of the mutation rows: the
// acceptance scale is 100k blocks (quick shrinks it with the rest of
// the sweep).
func evalMutationBlocks(quick bool) int {
	if quick {
		return 10000
	}
	return 100000
}

// evalShardSweep is the fan-outs of the sharded answers scaling rows.
var evalShardSweep = []int{1, 2, 4, 8}

// evalShardChainN is the evalChainDB size of the sharded rows: 43k
// x-chains come to ~100k blocks across both relations.
func evalShardChainN(quick bool) int {
	if quick {
		return 500
	}
	return 43000
}

// evalClusterBlocks is the instance size of the cluster tail-latency
// rows: small enough that per-shard evaluation is cheap (the measured
// quantity is the straggler schedule, not the sweep), large enough that
// every shard owns work.
func evalClusterBlocks(quick bool) int {
	if quick {
		return 400
	}
	return 4000
}

// evalClusterReqs is the per-configuration request count of the cluster
// rows; the p99 needs enough samples to be a real order statistic.
func evalClusterReqs(quick bool) int {
	if quick {
		return 60
	}
	return 200
}

// evalSizes returns the block-count sweep of the certain benchmarks.
// The full sweep ends at one million blocks — the scale the interned
// columnar path makes routine (the row-era harness topped out at 100k).
func evalSizes(quick bool) []int {
	if quick {
		return []int{1000, 10000}
	}
	return []int{1000, 10000, 100000, 1000000}
}

// evalRowSizes returns the sizes of the certain-row comparison rows:
// the row-oriented reference walk on the same warm instances, so the
// columnar speedup is auditable from the JSON alone.
func evalRowSizes(quick bool) []int {
	if quick {
		return []int{10000}
	}
	return []int{10000, 100000}
}

// prePRBaseline records the same workloads measured immediately before
// the plan-compiled, index-backed evaluation landed (per-call block
// grouping, per-residue attack-graph rebuilds, Substitute-allocated
// residues). Kept here so the speedup is auditable from the JSON alone.
var prePRBaseline = map[string]string{
	"certain/1k/warm":   "143 ms/op, 146 MB/op, 1.04M allocs/op",
	"certain/10k/warm":  "23.27 s/op, 17.07 GB/op, 100.4M allocs/op",
	"certain/100k/warm": "not feasible (quadratic; ~40 min extrapolated)",
	"answers/500-chain": "216.7 ms/op",
	// The row-walk harness immediately before the columnar interned
	// path landed (per-op index build inside the warm loop, string memo
	// keys, map valuations).
	"pre_columnar/certain/10k/warm":  "7.77 ms/op, 1.7 MB/op, 64.1k allocs/op",
	"pre_columnar/certain/100k/warm": "114.8 ms/op, 15.8 MB/op, 649.5k allocs/op",
	"measured_on":                    "Intel Xeon @ 2.10GHz, go1.x, same harness (BenchmarkCertainAcyclic*, BenchmarkCertainAnswersPool)",
}

// evalFalsifiedChainDB mirrors the repository-root falsifiedChainDB
// benchmark instance: a chain instance with the given number of blocks
// on which the chain query is NOT certain — every R-block has one fact
// whose y-value lacks an S-fact — so the evaluator must visit every
// block of both relations (the worst case of the Lemma 9/10 loop).
func evalFalsifiedChainDB(q query.Query, blocks int) *db.DB {
	d := db.New()
	for i := 0; i < blocks/2; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		yBad := query.Const(fmt.Sprintf("y%d_bad", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, yBad}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, "z"}})
	}
	return d
}

// evalHubDB is the oversized-component counting instance: blocks-1
// R-blocks that each choose between a shared hub y-value and a dead end,
// plus one two-fact S-block on the hub. Every matching R-fact joins the
// same S-block, so the whole instance is ONE constraint component with
// assignment space 2^blocks — far past the exact enumeration bound at
// the sweep sizes — while the match count stays linear in blocks.
func evalHubDB(q query.Query, blocks int) *db.DB {
	d := db.New()
	for i := 0; i < blocks-1; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, "hub"}})
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, query.Const(fmt.Sprintf("dead%d", i))}})
	}
	d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{"hub", "z0"}})
	d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{"hub", "z1"}})
	return d
}

// evalChainDB is the certain chain instance used by the answers-pool
// measurement: every x has at least one joining y, a fraction of blocks
// carry a second (also joining) alternative.
func evalChainDB(q query.Query, n int) *db.DB {
	d := db.New()
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, "z"}})
		if i%3 == 0 {
			y2 := query.Const(fmt.Sprintf("y%d_b", i))
			d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y2}})
			d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y2, "z"}})
		}
	}
	return d
}

// RunEval measures the plan-compiled, index-backed evaluation path
// (experiment E-index) with the testing benchmark driver and returns the
// report: one certainty decision per op against a pre-compiled plan, at
// several instance sizes, with a warm index (memoized block/key
// structures reused across ops — the serving hot path) and a cold one
// (caches dropped every op, so each op pays the index build). Quick
// shrinks the size sweep.
func RunEval(quick bool) (*EvalReport, error) {
	q := query.MustParse(evalQueryText)
	plan, err := core.Compile(q)
	if err != nil {
		return nil, err
	}
	sizes := evalSizes(quick)
	rep := &EvalReport{
		Query:    q.String(),
		Note:     evalNote,
		Baseline: prePRBaseline,
	}
	record := func(name string, blocks int, index string, workers, shards int, r testing.BenchmarkResult) {
		rep.Results = append(rep.Results, EvalResult{
			Name:        name,
			Blocks:      blocks,
			Index:       index,
			Workers:     workers,
			Shards:      shards,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	for _, blocks := range sizes {
		d := evalFalsifiedChainDB(q, blocks)
		ix := match.NewIndex(d)
		if res, err := plan.CertainIndexed(ix, core.Options{}); err != nil || res.Certain {
			return nil, fmt.Errorf("experiments: eval instance (%d blocks) not falsified: %v, %v", blocks, res.Certain, err)
		}
		warm := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.CertainIndexed(ix, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("certain", blocks, "warm", 0, 0, warm)
		cold := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.ResetCaches()
				if _, err := plan.Certain(d, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("certain", blocks, "cold", 0, 0, cold)
	}

	// The row-walk comparison rows: same warm instances, decided by the
	// row-oriented reference walk over the top relation's blocks.
	topRel := plan.Elim.Order()[0].Rel.Name
	for _, blocks := range evalRowSizes(quick) {
		d := evalFalsifiedChainDB(q, blocks)
		ix := match.NewIndex(d)
		rowBlocks := d.BlocksOf(topRel)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				certain, err := plan.Elim.CertainOverBlocks(ix, rowBlocks, nil)
				if err != nil || certain {
					b.Fatalf("row walk on falsified instance: %v, %v", certain, err)
				}
			}
		})
		record("certain-row", blocks, "warm", 0, 0, r)
	}

	answersBlocks := 1000
	if quick {
		answersBlocks = 200
	}
	ad := evalChainDB(q, answersBlocks/2)
	free := []query.Var{"x"}
	// workers=1 is the sequential baseline; the second configuration runs
	// the bounded pool (at least 2 workers even on a single-core host, so
	// the concurrent path is always measured).
	poolWorkers := runtime.GOMAXPROCS(0)
	if poolWorkers < 2 {
		poolWorkers = 2
	}
	for _, workers := range []int{1, poolWorkers} {
		w := workers
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.CertainAnswers(free, ad, core.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("answers", ad.NumBlocks(), "warm", w, 0, r)
	}

	// Sharded answers scaling: one large certain chain, the flat
	// (monolithic) sweep as the baseline, then the key-partitioned
	// scatter-gather at increasing fan-outs over the same index.
	sd := evalChainDB(q, evalShardChainN(quick))
	six := match.NewIndex(sd)
	ctx := context.Background()
	flat := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.CertainAnswersIndexedCtx(ctx, free, six, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	record("answers-flat", sd.NumBlocks(), "warm", 0, 0, flat)
	if err := runMutationEval(q, plan, quick, rep); err != nil {
		return nil, err
	}
	if err := runCountEval(q, plan, quick, rep); err != nil {
		return nil, err
	}

	for _, k := range evalShardSweep {
		pool := shard.NewPool(sd, k, shard.PoolOptions{})
		if err := waitPoolBuilt(pool); err != nil {
			pool.Close()
			return nil, err
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.CertainAnswersIndexedCtx(ctx, free, six, core.Options{ShardPool: pool}); err != nil {
					b.Fatal(err)
				}
			}
		})
		pool.Close()
		record("answers-sharded", sd.NumBlocks(), "warm", 0, k, r)
	}
	if err := runClusterEval(q, plan, quick, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runClusterEval measures the remote shard tier under a deterministic
// straggler: four replicated loopback nodes behind the fault-tolerant
// router, one node's link stalling every 4th delivery for 40ms. The
// falsified instance forbids early exit, so an unhedged scatter eats
// every stall it draws; the hedged configuration re-issues the stalled
// shard call against the next replica in ring order after the 2ms
// floor. Requests are hand-sampled because the percentiles, not the
// mean, are the serving-relevant numbers for the tail.
func runClusterEval(q query.Query, plan *core.Plan, quick bool, rep *EvalReport) error {
	blocks := evalClusterBlocks(quick)
	d := evalFalsifiedChainDB(q, blocks)
	names := []string{"c0", "c1", "c2", "c3"}
	nodes := make([]*cluster.LocalNode, len(names))
	for i, name := range names {
		nodes[i] = cluster.NewLocalNode(name)
		nodes[i].Store.Put("bench", d)
	}
	sim := cluster.NewSimNet(cluster.NewLoopback(nodes...), 17)
	sim.SetLink(names[len(names)-1], cluster.LinkFaults{StallEvery: 4, Stall: 40 * time.Millisecond})

	reqs := evalClusterReqs(quick)
	ctx := context.Background()
	for _, cfg := range []struct {
		name  string
		hedge time.Duration
	}{{"cluster-unhedged", 0}, {"cluster-hedged", 2 * time.Millisecond}} {
		r, err := cluster.NewRouter(cluster.Config{
			Nodes: names, Shards: 8, Transport: sim,
			RetryBackoff: time.Millisecond, HedgeDelay: cfg.hedge, Seed: 23,
		})
		if err != nil {
			return err
		}
		// Warm every node's snapshot structures outside the sample loop;
		// the serving layer amortizes them across a snapshot's lifetime.
		for i := 0; i < 3; i++ {
			if _, _, err := r.Certain(ctx, plan, "bench", core.Options{}); err != nil {
				return err
			}
		}
		samples := make([]float64, 0, reqs)
		var total time.Duration
		for i := 0; i < reqs; i++ {
			start := time.Now()
			res, failed, err := r.Certain(ctx, plan, "bench", core.Options{})
			el := time.Since(start)
			if err != nil || res.Certain || failed != 0 {
				return fmt.Errorf("experiments: %s request %d: certain=%v failed=%d err=%v",
					cfg.name, i, res.Certain, failed, err)
			}
			samples = append(samples, float64(el.Nanoseconds()))
			total += el
		}
		sort.Float64s(samples)
		idx := func(p float64) float64 { return samples[int(p*float64(len(samples)-1))] }
		rep.Results = append(rep.Results, EvalResult{
			Name: cfg.name, Blocks: blocks, Index: "warm", Shards: 8,
			NsPerOp:    float64(total.Nanoseconds()) / float64(reqs),
			Iterations: reqs,
			P50Ns:      idx(0.50), P99Ns: idx(0.99),
		})
	}
	return nil
}

// runMutationEval measures the incremental mutation path at the
// acceptance scale: a single-fact delta against a warm instance, applied
// three ways. mutate-apply is the MVCC structural-sharing path — the
// delta touches a scratch relation T the chain query never reads, so
// Apply resplices only T's columns and aliases R and S wholesale.
// mutate-rebuild is the same logical update done the pre-delta way:
// reconstruct the database from its full fact list and rebuild the
// columnar view. mutate-read is the warm certain decision on the
// Apply-derived version, which must run the inherited interned walk
// without allocating (write-then-read freshness on untouched relations).
func runMutationEval(q query.Query, plan *core.Plan, quick bool, rep *EvalReport) error {
	blocks := evalMutationBlocks(quick)
	d := evalFalsifiedChainDB(q, blocks)
	tRel := schema.NewRelation("T", 2, 1)
	d.Add(db.Fact{Rel: tRel, Args: []query.Const{"t0", "v0"}})
	ix := match.NewIndex(d)
	if res, err := plan.CertainIndexed(ix, core.Options{}); err != nil || res.Certain {
		return fmt.Errorf("experiments: mutation instance (%d blocks) not falsified: %v, %v", blocks, res.Certain, err)
	}

	var delta db.Delta
	delta.Insert(db.Fact{Rel: tRel, Args: []query.Const{"t1", "v1"}})
	delta.Delete(db.Fact{Rel: tRel, Args: []query.Const{"t0", "v0"}})

	// Every op applies the same delta to the same (immutable) parent, so
	// each iteration pays exactly one structural-sharing derivation.
	apply := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := d.Apply(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	p50, p99 := samplePercentiles(200, func() error {
		_, err := d.Apply(delta)
		return err
	})
	rep.Results = append(rep.Results, EvalResult{
		Name: "mutate-apply", Blocks: blocks, Index: "warm",
		NsPerOp: float64(apply.NsPerOp()), AllocsPerOp: apply.AllocsPerOp(),
		BytesPerOp: apply.AllocedBytesPerOp(), Iterations: apply.N,
		P50Ns: p50, P99Ns: p99,
	})

	// The rebuild baseline: the same logical update without structural
	// sharing — re-add every fact into a fresh database and rebuild the
	// columnar view from scratch.
	facts := d.Facts()
	rebuildReps := 20
	if quick {
		rebuildReps = 5
	}
	rebuild := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nd := db.New()
			for _, f := range facts {
				if f.Rel.Name == tRel.Name && f.Args[0] == "t0" {
					continue
				}
				nd.Add(f)
			}
			nd.Add(db.Fact{Rel: tRel, Args: []query.Const{"t1", "v1"}})
			nd.Columnar()
		}
	})
	rp50, rp99 := samplePercentiles(rebuildReps, func() error {
		nd := db.New()
		for _, f := range facts {
			nd.Add(f)
		}
		nd.Columnar()
		return nil
	})
	rep.Results = append(rep.Results, EvalResult{
		Name: "mutate-rebuild", Blocks: blocks, Index: "cold",
		NsPerOp: float64(rebuild.NsPerOp()), AllocsPerOp: rebuild.AllocsPerOp(),
		BytesPerOp: rebuild.AllocedBytesPerOp(), Iterations: rebuild.N,
		P50Ns: rp50, P99Ns: rp99,
	})

	// Write-then-read: decide the query on the freshly derived version.
	child, err := d.Apply(delta)
	if err != nil {
		return err
	}
	cix := match.NewIndex(child)
	if res, err := plan.CertainIndexed(cix, core.Options{}); err != nil || res.Certain {
		return fmt.Errorf("experiments: derived mutation instance changed the answer: %v, %v", res.Certain, err)
	}
	read := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.CertainIndexed(cix, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, EvalResult{
		Name: "mutate-read", Blocks: blocks, Index: "warm",
		NsPerOp: float64(read.NsPerOp()), AllocsPerOp: read.AllocsPerOp(),
		BytesPerOp: read.AllocedBytesPerOp(), Iterations: read.N,
	})
	return nil
}

// runCountEval measures the repair-counting engine (#CERTAINTY) at the
// eval sweep sizes. count-exact is one exact count per op on the warm
// falsified chain instance — many tiny constraint components, every one
// enumerated, so the row tracks the factorized counting throughput of
// the serving path. count-approx is one anytime count per op on the hub
// instance of the same block count, whose single component has
// assignment space 2^blocks: the exact enumerator must degrade to the
// seeded Monte Carlo estimator, so the row is the sampling path's
// latency at the same instance scale.
func runCountEval(q query.Query, plan *core.Plan, quick bool, rep *EvalReport) error {
	for _, blocks := range evalCountSizes(quick) {
		d := evalFalsifiedChainDB(q, blocks)
		ix := match.NewIndex(d)
		res, err := plan.CountIndexed(ix, core.Options{})
		if err != nil {
			return err
		}
		if !res.Exact || res.Satisfying == nil {
			return fmt.Errorf("experiments: count-exact instance (%d blocks) not counted exactly", blocks)
		}
		exact := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.CountIndexed(ix, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, EvalResult{
			Name: "count-exact", Blocks: blocks, Index: "warm",
			NsPerOp: float64(exact.NsPerOp()), AllocsPerOp: exact.AllocsPerOp(),
			BytesPerOp: exact.AllocedBytesPerOp(), Iterations: exact.N,
		})

		hd := evalHubDB(q, blocks)
		hix := match.NewIndex(hd)
		hres, err := plan.CountIndexed(hix, core.Options{Approximate: true})
		if err != nil {
			return err
		}
		if hres.Exact || hres.Sampled != 1 {
			return fmt.Errorf("experiments: count-approx instance (%d blocks) did not degrade to sampling (exact=%v sampled=%d)",
				blocks, hres.Exact, hres.Sampled)
		}
		approx := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.CountIndexed(hix, core.Options{Approximate: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, EvalResult{
			Name: "count-approx", Blocks: blocks, Index: "warm",
			NsPerOp: float64(approx.NsPerOp()), AllocsPerOp: approx.AllocsPerOp(),
			BytesPerOp: approx.AllocedBytesPerOp(), Iterations: approx.N,
		})
	}
	return nil
}

// samplePercentiles times n runs of fn and returns the p50 and p99
// per-run latencies in nanoseconds.
func samplePercentiles(n int, fn func() error) (p50, p99 float64) {
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, 0
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
	}
	sort.Float64s(samples)
	idx := func(p float64) float64 { return samples[int(p*float64(len(samples)-1))] }
	return idx(0.50), idx(0.99)
}

// waitPoolBuilt blocks until every shard index of the pool finished
// building, so the timed loop measures the scatter and not the one-time
// partition build.
func waitPoolBuilt(p *shard.Pool) error {
	deadline := time.Now().Add(time.Minute)
	for p.Building() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: shard pool still building after 1m")
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// ValidateEvalJSON reads an E-index evaluation report and checks it
// against the current harness: the same query and note, the pre-PR
// baseline intact, one result for every configuration the sweep
// measures (quick reports the quick sweep), and sane measurements in
// each. This is the bench-smoke freshness gate — a harness change that
// is not followed by `cqa-bench -evaljson` regeneration fails here.
func ValidateEvalJSON(path string, quick bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep EvalReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if want := query.MustParse(evalQueryText).String(); rep.Query != want {
		return fmt.Errorf("%s: query %q differs from the harness query %q (regenerate with -evaljson)", path, rep.Query, want)
	}
	if rep.Note != evalNote {
		return fmt.Errorf("%s: note differs from the harness note (regenerate with -evaljson)", path)
	}
	for k := range prePRBaseline {
		if rep.Baseline[k] == "" {
			return fmt.Errorf("%s: baseline_pre_pr is missing %q", path, k)
		}
	}
	missing := map[string]bool{}
	for _, blocks := range evalSizes(quick) {
		for _, index := range []string{"warm", "cold"} {
			missing[fmt.Sprintf("certain/%d/%s", blocks, index)] = true
		}
	}
	for _, blocks := range evalRowSizes(quick) {
		missing[fmt.Sprintf("certain-row/%d/warm", blocks)] = true
	}
	mutBlocks := evalMutationBlocks(quick)
	missing[fmt.Sprintf("mutate-apply/%d/warm", mutBlocks)] = true
	missing[fmt.Sprintf("mutate-rebuild/%d/cold", mutBlocks)] = true
	missing[fmt.Sprintf("mutate-read/%d/warm", mutBlocks)] = true
	clusterBlocks := evalClusterBlocks(quick)
	missing[fmt.Sprintf("cluster-unhedged/%d/warm", clusterBlocks)] = true
	missing[fmt.Sprintf("cluster-hedged/%d/warm", clusterBlocks)] = true
	for _, blocks := range evalCountSizes(quick) {
		missing[fmt.Sprintf("count-exact/%d/warm", blocks)] = true
		missing[fmt.Sprintf("count-approx/%d/warm", blocks)] = true
	}
	var applyNs, rebuildNs float64
	var unhedgedP99, hedgedP99 float64
	answersSeq, answersPool := false, false
	shardMissing := map[int]bool{}
	for _, k := range evalShardSweep {
		shardMissing[k] = true
	}
	flatBlocks, shardedBlocks := 0, 0
	for i, res := range rep.Results {
		if res.NsPerOp <= 0 || res.Iterations <= 0 {
			return fmt.Errorf("%s: results[%d] (%s/%d/%s) has no measurement", path, i, res.Name, res.Blocks, res.Index)
		}
		switch res.Name {
		case "certain":
			delete(missing, fmt.Sprintf("certain/%d/%s", res.Blocks, res.Index))
			// The allocs/op gate of the interned hot path: a warm FO
			// decision runs entirely on cached evaluation state, so any
			// allocation is a regression.
			if res.Index == "warm" && res.AllocsPerOp != 0 {
				return fmt.Errorf("%s: results[%d] certain/%d/warm reports %d allocs/op; the interned hot path must not allocate (regenerate with -evaljson)",
					path, i, res.Blocks, res.AllocsPerOp)
			}
		case "certain-row":
			delete(missing, fmt.Sprintf("certain-row/%d/%s", res.Blocks, res.Index))
		case "mutate-apply":
			delete(missing, fmt.Sprintf("mutate-apply/%d/%s", res.Blocks, res.Index))
			if res.Blocks == mutBlocks {
				applyNs = res.NsPerOp
			}
			// The mutation rows carry hand-sampled tail latencies — the
			// serving-relevant numbers for a group-committed write path.
			if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
				return fmt.Errorf("%s: results[%d] mutate-apply/%d lacks sane p50/p99 latencies (regenerate with -evaljson)",
					path, i, res.Blocks)
			}
		case "mutate-rebuild":
			delete(missing, fmt.Sprintf("mutate-rebuild/%d/%s", res.Blocks, res.Index))
			if res.Blocks == mutBlocks {
				rebuildNs = res.NsPerOp
			}
		case "mutate-read":
			delete(missing, fmt.Sprintf("mutate-read/%d/%s", res.Blocks, res.Index))
			// Write-then-read freshness: a delta that touched only a
			// relation the query never reads must leave the warm decision
			// on the inherited interned walk — zero allocations.
			if res.AllocsPerOp != 0 {
				return fmt.Errorf("%s: results[%d] mutate-read/%d reports %d allocs/op; reads on an Apply-derived version must stay on the interned path (regenerate with -evaljson)",
					path, i, res.Blocks, res.AllocsPerOp)
			}
		case "count-exact", "count-approx":
			delete(missing, fmt.Sprintf("%s/%d/%s", res.Name, res.Blocks, res.Index))
		case "cluster-unhedged", "cluster-hedged":
			delete(missing, fmt.Sprintf("%s/%d/%s", res.Name, res.Blocks, res.Index))
			// The cluster rows are percentile measurements; a row without
			// a sane tail has nothing to say.
			if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
				return fmt.Errorf("%s: results[%d] %s/%d lacks sane p50/p99 latencies (regenerate with -evaljson)",
					path, i, res.Name, res.Blocks)
			}
			if res.Name == "cluster-unhedged" {
				unhedgedP99 = res.P99Ns
			} else {
				hedgedP99 = res.P99Ns
			}
		case "answers":
			if res.Workers == 1 {
				answersSeq = true
			} else if res.Workers >= 2 {
				answersPool = true
			}
		case "answers-flat":
			flatBlocks = res.Blocks
		case "answers-sharded":
			delete(shardMissing, res.Shards)
			if shardedBlocks != 0 && shardedBlocks != res.Blocks {
				return fmt.Errorf("%s: answers-sharded rows measure different instances (%d vs %d blocks)", path, shardedBlocks, res.Blocks)
			}
			shardedBlocks = res.Blocks
		}
	}
	if len(missing) > 0 {
		keys := make([]string, 0, len(missing))
		for k := range missing {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("%s: missing configurations %v (regenerate with -evaljson)", path, keys)
	}
	if !answersSeq || !answersPool {
		return fmt.Errorf("%s: answers results must cover workers=1 and the pool (have seq=%v pool=%v)", path, answersSeq, answersPool)
	}
	if flatBlocks == 0 {
		return fmt.Errorf("%s: missing the answers-flat baseline row (regenerate with -evaljson)", path)
	}
	if len(shardMissing) > 0 {
		keys := make([]int, 0, len(shardMissing))
		for k := range shardMissing {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		return fmt.Errorf("%s: answers-sharded rows missing shard counts %v (regenerate with -evaljson)", path, keys)
	}
	if shardedBlocks != flatBlocks {
		return fmt.Errorf("%s: answers-sharded rows (%d blocks) measure a different instance than answers-flat (%d blocks)", path, shardedBlocks, flatBlocks)
	}
	// The hedging acceptance gate: under the deterministic 40ms
	// straggler, the hedged p99 must beat the unhedged p99 — hedging
	// that does not cut the tail is a regression in the router.
	if unhedgedP99 > 0 && hedgedP99 > 0 && hedgedP99 >= unhedgedP99 {
		return fmt.Errorf("%s: hedged p99 (%.0fns) does not beat unhedged p99 (%.0fns) under the straggler schedule (regenerate with -evaljson)",
			path, hedgedP99, unhedgedP99)
	}
	// The structural-sharing acceptance ratio: at the full 100k-block
	// scale a single-fact Apply must beat the full rebuild by at least
	// 50x. Quick runs measure a smaller instance where the constant
	// factors dominate, so the ratio is only enforced on the full sweep.
	if !quick && applyNs > 0 && rebuildNs > 0 {
		if ratio := rebuildNs / applyNs; ratio < 50 {
			return fmt.Errorf("%s: mutate-apply is only %.1fx faster than mutate-rebuild at %d blocks; the structural-sharing path must stay >=50x ahead (regenerate with -evaljson)",
				path, ratio, mutBlocks)
		}
	}
	return nil
}

// WriteEvalJSON runs the E-index evaluation benchmarks and writes the
// report to path as indented JSON (the BENCH_eval.json artifact).
func (r *Runner) WriteEvalJSON(path string) error {
	rep, err := RunEval(r.Quick)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if r.Out != nil {
		fmt.Fprintf(r.Out, "wrote %s (%d results)\n", path, len(rep.Results))
	}
	return nil
}
