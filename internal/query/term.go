// Package query implements terms, atoms, valuations, and self-join-free
// Boolean conjunctive queries in the sense of Koutris and Wijsen (PODS
// 2015), together with a small textual syntax for writing queries down.
package query

import (
	"sort"
	"strings"
)

// Var is a variable name.
type Var string

// Const is a constant. Constants and variables are kept in disjoint
// syntactic spaces by the Term type, not by their string value.
type Const string

// Term is either a variable or a constant. The zero value is the variable
// with empty name, which is never produced by the constructors; treat the
// zero Term as invalid.
type Term struct {
	val     string
	isConst bool
}

// V returns a variable term.
func V(name Var) Term { return Term{val: string(name)} }

// C returns a constant term.
func C(c Const) Term { return Term{val: string(c), isConst: true} }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.isConst }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return !t.isConst }

// Var returns the term as a variable; it panics on constants.
func (t Term) Var() Var {
	if t.isConst {
		panic("query: Var() called on constant term " + t.val)
	}
	return Var(t.val)
}

// Const returns the term as a constant; it panics on variables.
func (t Term) Const() Const {
	if !t.isConst {
		panic("query: Const() called on variable term " + t.val)
	}
	return Const(t.val)
}

// String renders variables bare and constants single-quoted.
func (t Term) String() string {
	if t.isConst {
		return "'" + t.val + "'"
	}
	return t.val
}

// VarSet is a set of variables.
type VarSet map[Var]struct{}

// NewVarSet returns a set containing the given variables.
func NewVarSet(vs ...Var) VarSet {
	s := make(VarSet, len(vs))
	for _, v := range vs {
		s[v] = struct{}{}
	}
	return s
}

// Len returns the number of variables in the set.
func (s VarSet) Len() int { return len(s) }

// Has reports membership.
func (s VarSet) Has(v Var) bool {
	_, ok := s[v]
	return ok
}

// Add inserts v.
func (s VarSet) Add(v Var) { s[v] = struct{}{} }

// AddAll inserts every element of t and returns s.
func (s VarSet) AddAll(t VarSet) VarSet {
	for v := range t {
		s[v] = struct{}{}
	}
	return s
}

// Clone returns an independent copy.
func (s VarSet) Clone() VarSet {
	c := make(VarSet, len(s))
	for v := range s {
		c[v] = struct{}{}
	}
	return c
}

// SubsetOf reports whether every element of s is in t.
func (s VarSet) SubsetOf(t VarSet) bool {
	for v := range s {
		if !t.Has(v) {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share an element.
func (s VarSet) Intersects(t VarSet) bool {
	small, large := s, t
	if len(large) < len(small) {
		small, large = large, small
	}
	for v := range small {
		if large.Has(v) {
			return true
		}
	}
	return false
}

// Intersect returns the intersection of s and t as a new set.
func (s VarSet) Intersect(t VarSet) VarSet {
	out := make(VarSet)
	for v := range s {
		if t.Has(v) {
			out.Add(v)
		}
	}
	return out
}

// Minus returns s \ t as a new set.
func (s VarSet) Minus(t VarSet) VarSet {
	out := make(VarSet)
	for v := range s {
		if !t.Has(v) {
			out.Add(v)
		}
	}
	return out
}

// Equal reports whether s and t contain exactly the same variables.
func (s VarSet) Equal(t VarSet) bool {
	return len(s) == len(t) && s.SubsetOf(t)
}

// Sorted returns the variables in lexicographic order.
func (s VarSet) Sorted() []Var {
	out := make([]Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as {x, y, z} in sorted order.
func (s VarSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(v))
	}
	b.WriteByte('}')
	return b.String()
}

// Valuation is a total mapping from some set of variables to constants.
// Per the paper's convention, a valuation is implicitly the identity on
// constants and undefined variables are simply absent from the map.
type Valuation map[Var]Const

// Clone returns an independent copy.
func (v Valuation) Clone() Valuation {
	c := make(Valuation, len(v))
	for k, x := range v {
		c[k] = x
	}
	return c
}

// Restrict returns the restriction of v to the variables in s
// (theta[V] in the paper's notation).
func (v Valuation) Restrict(s VarSet) Valuation {
	out := make(Valuation)
	for k, x := range v {
		if s.Has(k) {
			out[k] = x
		}
	}
	return out
}

// AgreesOn reports whether v and w assign the same constant to every
// variable of s on which both are defined, and are both defined on all of s.
// Variables of s missing from either valuation count as disagreement.
func (v Valuation) AgreesOn(w Valuation, s VarSet) bool {
	for x := range s {
		a, okA := v[x]
		b, okB := w[x]
		if !okA || !okB || a != b {
			return false
		}
	}
	return true
}

// Compatible reports whether v and w agree on every variable defined in
// both.
func (v Valuation) Compatible(w Valuation) bool {
	small, large := v, w
	if len(large) < len(small) {
		small, large = large, small
	}
	for x, a := range small {
		if b, ok := large[x]; ok && a != b {
			return false
		}
	}
	return true
}

// Merge returns the union of v and w; it panics if they are incompatible.
func (v Valuation) Merge(w Valuation) Valuation {
	out := v.Clone()
	for x, b := range w {
		if a, ok := out[x]; ok && a != b {
			panic("query: merging incompatible valuations")
		}
		out[x] = b
	}
	return out
}

// Apply maps a term through the valuation: constants map to themselves,
// variables to their image. The boolean result reports whether the term
// was resolved to a constant (false when the variable is unbound).
func (v Valuation) Apply(t Term) (Const, bool) {
	if t.IsConst() {
		return t.Const(), true
	}
	c, ok := v[t.Var()]
	return c, ok
}

// Key returns a canonical string for the valuation, useful for
// deduplication and memoization.
func (v Valuation) Key() string {
	vars := make([]string, 0, len(v))
	for k := range v {
		vars = append(vars, string(k))
	}
	sort.Strings(vars)
	var b strings.Builder
	for i, k := range vars {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(string(v[Var(k)]))
	}
	return b.String()
}

// String renders the valuation as {x -> a, y -> b} in sorted variable order.
func (v Valuation) String() string {
	vars := make([]string, 0, len(v))
	for k := range v {
		vars = append(vars, string(k))
	}
	sort.Strings(vars)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k)
		b.WriteString(" -> ")
		b.WriteString(string(v[Var(k)]))
	}
	b.WriteByte('}')
	return b.String()
}
