package query

import "testing"

// FuzzParse exercises the query parser on arbitrary input: it must never
// panic, and accepted queries must round-trip through their String form.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"R(x | y), S(y | z)",
		"V(x, u | v)",
		"T#c(x | z)",
		"R('a' | y, 42)",
		"S(y, z |)",
		"R(x",
		"",
		"R(x | y), R(y | z)",
		"#(",
		"R(x|y),S( y |z ),T(z|'q u o t e d')",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails validation: %v", err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip parse failed for %q -> %q: %v", s, q.String(), err)
		}
		if !q.Equal(q2) {
			t.Fatalf("round trip changed query: %q -> %q -> %q", s, q.String(), q2.String())
		}
	})
}
