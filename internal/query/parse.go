package query

import (
	"fmt"
	"strings"
	"unicode"

	"cqa/internal/schema"
)

// Parse reads a conjunctive query from a compact textual syntax:
//
//	query := atom ("," atom)*
//	atom  := name ["#c"] "(" terms ["|" terms] ")"
//	terms := term ("," term)*
//	term  := identifier            (a variable)
//	       | "'" characters "'"    (a constant)
//	       | digits                (a numeric constant)
//
// The terms left of the bar form the primary key; the terms right of the
// bar are the non-key positions. When no bar is present, the first
// position alone is the key (the simple-key convention). The "#c" suffix
// marks a mode-c (known consistent) relation. Examples:
//
//	R(x | y), S(y | z)                      two simple-key atoms
//	R(x, y | z)                             composite key {1,2}
//	V(x | u, v)                             key {1}, non-key {2,3}
//	T#c(x | z)                              mode-c atom
//	S(y | 'b')                              constant at a non-key position
//
// Parse validates that the result is well formed and self-join-free.
func Parse(s string) (Query, error) {
	p := &parser{input: s}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, err
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	if !q.SelfJoinFree() {
		return Query{}, fmt.Errorf("query: %q has a self-join; this library handles self-join-free queries", s)
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests and static
// declarations.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	input string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: parse error at byte %d of %q: %s",
		p.pos, p.input, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) eat(c byte) bool {
	p.skipSpace()
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.input) || !isIdentStart(p.input[p.pos]) {
		return "", p.errf("expected identifier")
	}
	for p.pos < len(p.input) && isIdentPart(p.input[p.pos]) {
		p.pos++
	}
	return p.input[start:p.pos], nil
}

func (p *parser) parseQuery() (Query, error) {
	var atoms []Atom
	p.skipSpace()
	if p.pos == len(p.input) {
		return NewQuery(), nil
	}
	// "{}" is the display form of the empty query; accept it back.
	if strings.TrimSpace(p.input) == "{}" {
		return NewQuery(), nil
	}
	for {
		a, err := p.parseAtom()
		if err != nil {
			return Query{}, err
		}
		atoms = append(atoms, a)
		p.skipSpace()
		if p.pos == len(p.input) {
			break
		}
		if !p.eat(',') {
			return Query{}, p.errf("expected ',' or end of input")
		}
	}
	return NewQuery(atoms...), nil
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	mode := schema.ModeI
	if p.eat('#') {
		m, err := p.ident()
		if err != nil {
			return Atom{}, err
		}
		switch m {
		case "c":
			mode = schema.ModeC
		case "i":
			mode = schema.ModeI
		default:
			return Atom{}, p.errf("unknown mode %q (want c or i)", m)
		}
	}
	if !p.eat('(') {
		return Atom{}, p.errf("expected '(' after relation name %s", name)
	}
	var args []Term
	keyLen := -1
	for {
		p.skipSpace()
		if p.peek() == '|' {
			p.pos++
			if keyLen >= 0 {
				return Atom{}, p.errf("two bars in atom %s", name)
			}
			keyLen = len(args)
			p.skipSpace()
			if p.peek() != ')' {
				continue
			}
			// "R(x, y |)": the whole tuple is the key.
			p.pos++
			if len(args) == 0 {
				return Atom{}, p.errf("atom %s has no arguments", name)
			}
			if keyLen == 0 {
				return Atom{}, p.errf("atom %s has an empty primary key", name)
			}
			rel := schema.Relation{Name: name, Arity: len(args), KeyLen: keyLen, Mode: mode}
			return Atom{Rel: rel, Args: args}, nil
		}
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case '|', ')':
			// handled by the loop head / exit below
		default:
			return Atom{}, p.errf("expected ',', '|' or ')' in atom %s", name)
		}
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			if keyLen < 0 {
				keyLen = 1 // simple-key convention
			}
			if len(args) == 0 {
				return Atom{}, p.errf("atom %s has no arguments", name)
			}
			if keyLen == 0 {
				return Atom{}, p.errf("atom %s has an empty primary key", name)
			}
			rel := schema.Relation{Name: name, Arity: len(args), KeyLen: keyLen, Mode: mode}
			return Atom{Rel: rel, Args: args}, nil
		}
	}
}

func (p *parser) parseTerm() (Term, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.input) {
			return Term{}, p.errf("unterminated constant")
		}
		val := p.input[start:p.pos]
		p.pos++
		return C(Const(val)), nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		return C(Const(p.input[start:p.pos])), nil
	case isIdentStart(c):
		id, err := p.ident()
		if err != nil {
			return Term{}, err
		}
		return V(Var(id)), nil
	default:
		return Term{}, p.errf("expected term")
	}
}

// ParseAtomList parses a query but does not reject self-joins; used by
// tooling that displays arbitrary atom lists.
func ParseAtomList(s string) (Query, error) {
	p := &parser{input: s}
	q, err := p.parseQuery()
	if err != nil {
		return Query{}, err
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// FormatVars renders a slice of variables as "x, y, z".
func FormatVars(vs []Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ", ")
}
