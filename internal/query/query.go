package query

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/schema"
)

// Query is a Boolean conjunctive query: a finite set of atoms, all of whose
// variables are existentially quantified. Atoms are kept in a stable slice
// for deterministic iteration; the set semantics is enforced by the
// constructors (no duplicate atoms).
type Query struct {
	Atoms []Atom
}

// NewQuery builds a query from atoms, dropping exact duplicates.
func NewQuery(atoms ...Atom) Query {
	q := Query{Atoms: make([]Atom, 0, len(atoms))}
	for _, a := range atoms {
		dup := false
		for _, b := range q.Atoms {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			q.Atoms = append(q.Atoms, a)
		}
	}
	return q
}

// Len returns the number of atoms |q|.
func (q Query) Len() int { return len(q.Atoms) }

// Empty reports whether the query has no atoms (the trivially true query).
func (q Query) Empty() bool { return len(q.Atoms) == 0 }

// Vars returns vars(q), the set of variables occurring in the query.
func (q Query) Vars() VarSet {
	s := make(VarSet)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				s.Add(t.Var())
			}
		}
	}
	return s
}

// SelfJoinFree reports whether no relation name occurs in two atoms.
func (q Query) SelfJoinFree() bool {
	seen := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		if seen[a.Rel.Name] {
			return false
		}
		seen[a.Rel.Name] = true
	}
	return true
}

// AtomWithRel returns the unique atom with the given relation name. For
// self-join-free queries the atom is unique; for other queries the first
// occurrence is returned.
func (q Query) AtomWithRel(name string) (Atom, bool) {
	for _, a := range q.Atoms {
		if a.Rel.Name == name {
			return a, true
		}
	}
	return Atom{}, false
}

// HasRel reports whether some atom uses the given relation name.
func (q Query) HasRel(name string) bool {
	_, ok := q.AtomWithRel(name)
	return ok
}

// Remove returns q with the given atom removed (matching by relation name,
// which identifies atoms uniquely in self-join-free queries).
func (q Query) Remove(a Atom) Query {
	out := Query{Atoms: make([]Atom, 0, len(q.Atoms))}
	removed := false
	for _, b := range q.Atoms {
		if !removed && b.Rel.Name == a.Rel.Name && b.Equal(a) {
			removed = true
			continue
		}
		out.Atoms = append(out.Atoms, b)
	}
	return out
}

// Add returns q extended with the given atoms.
func (q Query) Add(atoms ...Atom) Query {
	all := make([]Atom, 0, len(q.Atoms)+len(atoms))
	all = append(all, q.Atoms...)
	all = append(all, atoms...)
	return NewQuery(all...)
}

// ConsistentPart returns [[q]]: the subquery of atoms whose relation has
// mode c.
func (q Query) ConsistentPart() Query {
	out := Query{}
	for _, a := range q.Atoms {
		if a.Rel.Mode == schema.ModeC {
			out.Atoms = append(out.Atoms, a)
		}
	}
	return out
}

// InconsistencyCount returns incnt(q): the number of mode-i atoms.
func (q Query) InconsistencyCount() int {
	n := 0
	for _, a := range q.Atoms {
		if a.Rel.Mode == schema.ModeI {
			n++
		}
	}
	return n
}

// Substitute returns q[x -> a] for every binding in the valuation: all
// occurrences of bound variables are replaced by their constants.
func (q Query) Substitute(v Valuation) Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Substitute(v)
	}
	return Query{Atoms: atoms}
}

// RenameVars returns q with variables renamed through the mapping.
func (q Query) RenameVars(m map[Var]Var) Query {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.RenameVars(m)
	}
	return Query{Atoms: atoms}
}

// Schema returns a schema containing every relation used by the query.
func (q Query) Schema() *schema.Schema {
	s := schema.NewSchema()
	for _, a := range q.Atoms {
		s.MustAdd(a.Rel)
	}
	return s
}

// Equal reports whether q and r contain exactly the same atoms (as sets).
func (q Query) Equal(r Query) bool {
	if len(q.Atoms) != len(r.Atoms) {
		return false
	}
	for _, a := range q.Atoms {
		found := false
		for _, b := range r.Atoms {
			if a.Equal(b) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Canonical returns a canonical string for the query with atoms sorted by
// relation name; useful as a memoization key for instantiated queries.
func (q Query) Canonical() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// Validate checks that the query is well formed: valid relation
// signatures, matching argument counts, and no two atoms sharing a relation
// name with different signatures.
func (q Query) Validate() error {
	s := schema.NewSchema()
	for _, a := range q.Atoms {
		if err := a.Rel.Validate(); err != nil {
			return err
		}
		if len(a.Args) != a.Rel.Arity {
			return fmt.Errorf("query: atom %s has %d arguments, arity is %d",
				a.Rel.Name, len(a.Args), a.Rel.Arity)
		}
		if err := s.Add(a.Rel); err != nil {
			return err
		}
	}
	return nil
}

// FreshVar returns a variable with the given prefix that does not occur in
// the query.
func (q Query) FreshVar(prefix Var) Var {
	used := q.Vars()
	if !used.Has(prefix) {
		return prefix
	}
	for i := 0; ; i++ {
		v := Var(fmt.Sprintf("%s%d", prefix, i))
		if !used.Has(v) {
			return v
		}
	}
}

// String renders the query as a comma-separated list of atoms in
// declaration order, e.g. "R(x | y), S(y | z)".
func (q Query) String() string {
	if len(q.Atoms) == 0 {
		return "{}"
	}
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
