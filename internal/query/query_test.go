package query

import (
	"strings"
	"testing"
	"testing/quick"

	"cqa/internal/schema"
)

func TestParseBasics(t *testing.T) {
	q := MustParse("R(x | y), S(y | z)")
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	r, ok := q.AtomWithRel("R")
	if !ok || r.Rel.Arity != 2 || r.Rel.KeyLen != 1 {
		t.Fatalf("R atom wrong: %v %v", r, ok)
	}
	if !q.SelfJoinFree() {
		t.Error("expected self-join-free")
	}
}

func TestParseCompositeKeyAndModes(t *testing.T) {
	q := MustParse("V(x, u | v), T#c(a, b | c, d)")
	v, _ := q.AtomWithRel("V")
	if v.Rel.KeyLen != 2 || v.Rel.Arity != 3 {
		t.Errorf("V signature [%d,%d]", v.Rel.Arity, v.Rel.KeyLen)
	}
	tt, _ := q.AtomWithRel("T")
	if tt.Rel.Mode != schema.ModeC || tt.Rel.KeyLen != 2 || tt.Rel.Arity != 4 {
		t.Errorf("T wrong: %v", tt.Rel)
	}
}

func TestParseConstants(t *testing.T) {
	q := MustParse("R('melbourne' | y, 42)")
	a := q.Atoms[0]
	if !a.Args[0].IsConst() || a.Args[0].Const() != "melbourne" {
		t.Errorf("arg0 = %v", a.Args[0])
	}
	if !a.Args[2].IsConst() || a.Args[2].Const() != "42" {
		t.Errorf("arg2 = %v", a.Args[2])
	}
	if a.Args[1].IsConst() {
		t.Errorf("arg1 should be a variable")
	}
}

func TestParseDefaultSimpleKey(t *testing.T) {
	q := MustParse("R(x, y, z)")
	if q.Atoms[0].Rel.KeyLen != 1 {
		t.Errorf("default key length = %d, want 1", q.Atoms[0].Rel.KeyLen)
	}
}

func TestParseWholeTupleKey(t *testing.T) {
	q := MustParse("S(y, z |)")
	if q.Atoms[0].Rel.KeyLen != 2 || q.Atoms[0].Rel.Arity != 2 {
		t.Errorf("signature [%d,%d], want [2,2]", q.Atoms[0].Rel.Arity, q.Atoms[0].Rel.KeyLen)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"R(x | y), R(y | z)", // self-join
		"R(",
		"R()",
		"R(| x)",
		"R(x | y) S(y | z)", // missing comma
		"R(x # y)",
		"R#q(x | y)", // unknown mode
		"R(x | 'unterminated)",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"R(x | y), S(y | z)",
		"V(x, u | v)",
		"T#c(x | z)",
		"R('a' | y, z)",
		"S(y, z |)",
	} {
		q := MustParse(s)
		q2 := MustParse(q.String())
		if !q.Equal(q2) {
			t.Errorf("round trip failed: %q -> %q", s, q.String())
		}
	}
}

func TestSubstitute(t *testing.T) {
	q := MustParse("R(x | y), S(y | z)")
	q2 := q.Substitute(Valuation{"y": "b"})
	want := MustParse("R(x | 'b'), S('b' | z)")
	if !q2.Equal(want) {
		t.Errorf("got %s, want %s", q2, want)
	}
	if !q.Vars().Has("y") {
		t.Error("substitute must not mutate the receiver")
	}
}

func TestRenameVars(t *testing.T) {
	q := MustParse("R(x | y)")
	q2 := q.RenameVars(map[Var]Var{"y": "w"})
	if !q2.Vars().Has("w") || q2.Vars().Has("y") {
		t.Errorf("rename failed: %s", q2)
	}
}

func TestRemoveAndAdd(t *testing.T) {
	q := MustParse("R(x | y), S(y | z)")
	r, _ := q.AtomWithRel("R")
	q2 := q.Remove(r)
	if q2.Len() != 1 || q2.HasRel("R") {
		t.Errorf("remove failed: %s", q2)
	}
	q3 := q2.Add(r)
	if !q3.Equal(q) {
		t.Errorf("add failed: %s", q3)
	}
	// Adding a duplicate is a no-op.
	if q3.Add(r).Len() != 2 {
		t.Error("duplicate atom added")
	}
}

func TestConsistentPartAndIncnt(t *testing.T) {
	q := MustParse("R(x | y), T#c(y | z), U(z | x)")
	if got := q.ConsistentPart().Len(); got != 1 {
		t.Errorf("[[q]] has %d atoms, want 1", got)
	}
	if got := q.InconsistencyCount(); got != 2 {
		t.Errorf("incnt = %d, want 2", got)
	}
}

func TestFreshVar(t *testing.T) {
	q := MustParse("R(u | u0)")
	v := q.FreshVar("u")
	if v == "u" || v == "u0" || q.Vars().Has(v) {
		t.Errorf("FreshVar returned %s", v)
	}
}

func TestCanonicalOrderIndependent(t *testing.T) {
	a := MustParse("R(x | y), S(y | z)")
	b := MustParse("S(y | z), R(x | y)")
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical differs: %q vs %q", a.Canonical(), b.Canonical())
	}
}

func TestVarSetOps(t *testing.T) {
	s := NewVarSet("x", "y")
	u := NewVarSet("y", "z")
	if !s.Intersects(u) || s.Intersect(u).Len() != 1 {
		t.Error("intersect wrong")
	}
	if got := s.Minus(u); !got.Equal(NewVarSet("x")) {
		t.Errorf("minus = %s", got)
	}
	if s.SubsetOf(u) || !NewVarSet("y").SubsetOf(s) {
		t.Error("subset wrong")
	}
	if s.String() != "{x, y}" {
		t.Errorf("String = %s", s.String())
	}
}

func TestValuationOps(t *testing.T) {
	v := Valuation{"x": "a", "y": "b"}
	w := Valuation{"y": "b", "z": "c"}
	if !v.Compatible(w) {
		t.Error("should be compatible")
	}
	m := v.Merge(w)
	if len(m) != 3 || m["z"] != "c" {
		t.Errorf("merge = %v", m)
	}
	if !v.AgreesOn(w, NewVarSet("y")) {
		t.Error("should agree on y")
	}
	if v.AgreesOn(w, NewVarSet("x")) {
		t.Error("w is undefined on x: must not agree")
	}
	bad := Valuation{"x": "zzz"}
	if v.Compatible(bad) {
		t.Error("should be incompatible")
	}
	r := v.Restrict(NewVarSet("x"))
	if len(r) != 1 || r["x"] != "a" {
		t.Errorf("restrict = %v", r)
	}
}

func TestValuationMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Valuation{"x": "a"}.Merge(Valuation{"x": "b"})
}

// Property: substitution never introduces new variables and removes
// exactly the bound ones that occur.
func TestSubstituteVarsProperty(t *testing.T) {
	f := func(bindY, bindZ bool) bool {
		q := MustParse("R(x | y), S(y | z)")
		val := Valuation{}
		if bindY {
			val["y"] = "c1"
		}
		if bindZ {
			val["z"] = "c2"
		}
		got := q.Substitute(val).Vars()
		want := q.Vars()
		for v := range val {
			want = want.Minus(NewVarSet(v))
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Term String round-trips through the parser's term grammar.
func TestTermStringShape(t *testing.T) {
	if V("x").String() != "x" {
		t.Error("var string")
	}
	if C("a").String() != "'a'" {
		t.Error("const string")
	}
	if !strings.Contains(MustParse("R(x | 'a')").String(), "'a'") {
		t.Error("constant not quoted in query string")
	}
}

func TestAtomAccessors(t *testing.T) {
	q := MustParse("V(x, u | v, x)")
	a := q.Atoms[0]
	if !a.KeyVars().Equal(NewVarSet("x", "u")) {
		t.Errorf("key vars %s", a.KeyVars())
	}
	if !a.NonKeyVars().Equal(NewVarSet("v", "x")) {
		t.Errorf("nonkey vars %s", a.NonKeyVars())
	}
	if !a.HasRepeatedVars() {
		t.Error("x repeats")
	}
	if a.Ground() {
		t.Error("not ground")
	}
	g := a.Substitute(Valuation{"x": "1", "u": "2", "v": "3"})
	if !g.Ground() {
		t.Errorf("should be ground: %s", g)
	}
}

func TestParseAtomListAllowsSelfJoins(t *testing.T) {
	q, err := ParseAtomList("R(x | y), R(y | z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 || q.SelfJoinFree() {
		t.Errorf("expected a self-join pair, got %s", q)
	}
	if _, err := ParseAtomList("R(x"); err == nil {
		t.Error("syntax error should propagate")
	}
	if _, err := ParseAtomList("R(x | y), R(x | y, z)"); err == nil {
		t.Error("conflicting signatures should be rejected by Validate")
	}
}

func TestFormatVars(t *testing.T) {
	if got := FormatVars([]Var{"x", "y"}); got != "x, y" {
		t.Errorf("FormatVars = %q", got)
	}
	if got := FormatVars(nil); got != "" {
		t.Errorf("FormatVars(nil) = %q", got)
	}
}

func TestEmptyQueryRoundTrip(t *testing.T) {
	q := MustParse("")
	if q.String() != "{}" {
		t.Errorf("empty query String = %q", q.String())
	}
	q2 := MustParse(q.String())
	if !q2.Empty() {
		t.Error("{} should parse to the empty query")
	}
}

func TestTermPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Var() on constant should panic")
			}
		}()
		C("a").Var()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Const() on variable should panic")
			}
		}()
		V("x").Const()
	}()
}

func TestNewAtomArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected arity panic")
		}
	}()
	NewAtom(schema.NewRelation("R", 2, 1), V("x"))
}
