package query

import (
	"fmt"
	"strings"

	"cqa/internal/schema"
)

// Atom is an R-atom R(s1, ..., sn) where each si is a variable or a
// constant and R is a relation name with signature [n, k]. The first k
// arguments form the primary key (underlined in the paper's notation).
type Atom struct {
	Rel  schema.Relation
	Args []Term
}

// NewAtom builds an atom and validates that the argument count matches the
// relation's arity.
func NewAtom(rel schema.Relation, args ...Term) Atom {
	if len(args) != rel.Arity {
		panic(fmt.Sprintf("query: atom %s expects %d arguments, got %d",
			rel.Name, rel.Arity, len(args)))
	}
	return Atom{Rel: rel, Args: args}
}

// KeyArgs returns the key positions s1, ..., sk.
func (a Atom) KeyArgs() []Term { return a.Args[:a.Rel.KeyLen] }

// NonKeyArgs returns the non-key positions s(k+1), ..., sn.
func (a Atom) NonKeyArgs() []Term { return a.Args[a.Rel.KeyLen:] }

// KeyVars returns key(F): the set of variables occurring in the primary key.
func (a Atom) KeyVars() VarSet {
	s := make(VarSet)
	for _, t := range a.KeyArgs() {
		if t.IsVar() {
			s.Add(t.Var())
		}
	}
	return s
}

// Vars returns vars(F): the set of variables occurring anywhere in the atom.
func (a Atom) Vars() VarSet {
	s := make(VarSet)
	for _, t := range a.Args {
		if t.IsVar() {
			s.Add(t.Var())
		}
	}
	return s
}

// NonKeyVars returns the variables occurring at non-key positions.
func (a Atom) NonKeyVars() VarSet {
	s := make(VarSet)
	for _, t := range a.NonKeyArgs() {
		if t.IsVar() {
			s.Add(t.Var())
		}
	}
	return s
}

// HasConstants reports whether any position holds a constant.
func (a Atom) HasConstants() bool {
	for _, t := range a.Args {
		if t.IsConst() {
			return true
		}
	}
	return false
}

// HasRepeatedVars reports whether some variable occurs at two or more
// positions of the atom.
func (a Atom) HasRepeatedVars() bool {
	seen := make(VarSet)
	for _, t := range a.Args {
		if t.IsVar() {
			if seen.Has(t.Var()) {
				return true
			}
			seen.Add(t.Var())
		}
	}
	return false
}

// Ground reports whether the atom contains no variables (i.e. is a fact
// pattern).
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Substitute returns the atom with every variable in the valuation's domain
// replaced by its image; other variables are left untouched.
func (a Atom) Substitute(v Valuation) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if c, ok := v[t.Var()]; ok {
				args[i] = C(c)
				continue
			}
		}
		args[i] = t
	}
	return Atom{Rel: a.Rel, Args: args}
}

// RenameVars returns the atom with variables renamed through the mapping;
// variables outside the mapping are left untouched.
func (a Atom) RenameVars(m map[Var]Var) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if w, ok := m[t.Var()]; ok {
				args[i] = V(w)
				continue
			}
		}
		args[i] = t
	}
	return Atom{Rel: a.Rel, Args: args}
}

// Equal reports structural equality of atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom with the key separated from the non-key part by
// a bar, e.g. R(x | y) or T#c(x, y | z). The "#c" suffix marks mode c.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel.Name)
	if a.Rel.Mode == schema.ModeC {
		b.WriteString("#c")
	}
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			if i == a.Rel.KeyLen {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		} else if a.Rel.KeyLen == 0 {
			b.WriteString("| ")
		}
		b.WriteString(t.String())
	}
	if a.Rel.KeyLen == len(a.Args) && len(a.Args) > 0 {
		// All positions are key positions; no bar needed, but make it
		// explicit that the whole tuple is the key.
		b.WriteString(" |")
	}
	b.WriteByte(')')
	return b.String()
}
