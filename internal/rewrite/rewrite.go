// Package rewrite implements the first-order case of the trichotomy
// (Section 5 of Koutris & Wijsen, PODS 2015): when the attack graph of q
// is acyclic, CERTAINTY(q) is decided by the recursion of Lemmas 9/10 —
// repeatedly pick an unattacked atom, guess its block, and demand that
// every fact of the block extends to a certain residue query. The package
// provides both the direct evaluator and the symbolic first-order
// rewriting (Example 5 style) with its own model-checking evaluator.
package rewrite

import (
	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

// Certain decides CERTAINTY(q) for queries whose attack graph is acyclic.
// It returns an error when the attack graph has a cycle (use the ptime or
// conp engines there).
func Certain(q query.Query, d *db.DB) (bool, error) {
	el, err := CompileEliminator(q)
	if err != nil {
		return false, err
	}
	return el.Certain(match.NewIndex(d)), nil
}

// CertainAcyclic runs the Lemma 10 recursion for a query whose attack
// graph is already known to be acyclic (for example from a cached
// classification), skipping the cycle check that Certain performs. The
// elimination order is compiled once from the query pattern and then
// walked with valuations — no attack graph is built and no residue query
// is allocated on the data side. Callers that evaluate the same query
// against many databases should CompileAcyclic once and reuse the
// Eliminator. The result is meaningless on cyclic queries.
func CertainAcyclic(q query.Query, d *db.DB) bool {
	el, err := CompileAcyclic(q)
	if err != nil {
		// Defensive: on input that is not actually acyclic the compiled
		// order may not exist; fall back to the per-node recursion, which
		// reproduces the seed behavior on such misuse.
		e := &evaluator{
			ix:   match.NewIndex(d),
			memo: make(map[string]bool),
		}
		return e.certain(q)
	}
	return el.Certain(match.NewIndex(d))
}

type evaluator struct {
	ix   *match.Index
	memo map[string]bool
}

// certain implements the recursion from the proof of Lemma 10. The query
// shrinks by one atom per level and is progressively instantiated, so
// Lemma 6 keeps the attack graph acyclic throughout.
func (e *evaluator) certain(q query.Query) bool {
	if q.Empty() {
		return true
	}
	key := q.Canonical()
	if v, ok := e.memo[key]; ok {
		return v
	}
	res := e.certainUncached(q)
	e.memo[key] = res
	return res
}

func (e *evaluator) certainUncached(q query.Query) bool {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return false
	}
	unattacked := g.Unattacked()
	if len(unattacked) == 0 {
		// Cannot happen for acyclic attack graphs.
		return false
	}
	f := q.Atoms[unattacked[0]]
	rest := q.Remove(f)

	// Lemma 9: q is certain iff some R-block b exists such that the key
	// pattern of F matches b's key and, for every fact of b, the non-key
	// pattern matches and the instantiated residue query is certain.
	for _, b := range e.ix.DB.BlocksOf(f.Rel.Name) {
		if len(b.Facts) == 0 {
			continue
		}
		theta := query.Valuation{}
		if !unifyArgs(f.KeyArgs(), b.Facts[0].Key(), theta) {
			continue
		}
		allGood := true
		for _, fact := range b.Facts {
			thetaPlus := theta.Clone()
			if !unifyArgs(f.NonKeyArgs(), fact.NonKey(), thetaPlus) {
				allGood = false
				break
			}
			if !e.certain(rest.Substitute(thetaPlus)) {
				allGood = false
				break
			}
		}
		if allGood {
			return true
		}
	}
	return false
}

// unifyArgs extends val so that the terms map onto the constants; it
// reports failure on constant mismatches or inconsistent repeated
// variables. val is extended in place (only on success paths for the
// bindings made so far; callers clone when needed).
func unifyArgs(terms []query.Term, consts []query.Const, val query.Valuation) bool {
	for i, t := range terms {
		c := consts[i]
		if t.IsConst() {
			if t.Const() != c {
				return false
			}
			continue
		}
		v := t.Var()
		if bound, ok := val[v]; ok {
			if bound != c {
				return false
			}
			continue
		}
		val[v] = c
	}
	return true
}
