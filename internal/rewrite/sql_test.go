package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/query"
	"cqa/internal/sqlmini"
	"cqa/internal/workload"
)

func TestSQLShape(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | 'b')")
	sql, err := SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"SELECT 1 WHERE",
		"EXISTS (SELECT 1 FROM R",
		"NOT EXISTS (SELECT 1 FROM R",
		"FROM S",
		"'b'",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing %q:\n%s", frag, sql)
		}
	}
	if strings.Count(sql, "(") != strings.Count(sql, ")") {
		t.Errorf("unbalanced parentheses:\n%s", sql)
	}
}

func TestSQLRejectsCyclic(t *testing.T) {
	if _, err := SQL(workload.Q0()); err == nil {
		t.Fatal("cyclic attack graph must have no SQL rewriting")
	}
}

// TestSQLAgreesWithDirectEvaluator machine-checks the emitted SQL: the
// sqlmini evaluator must agree with rewrite.Certain on random instances.
func TestSQLAgreesWithDirectEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	queries := []string{
		"R(x | y)",
		"R(x | y), S(y | z)",
		"R(x | y), S(y | 'b')",
		"R(x | y, z), S(y | w)",
		"R1(x | y1), R2(x | y2), R3(x | y3)",
		"R(x | y), S(y | z), T(y | w)",
		"R('c' | y), S(y | z)",
		"V(x, u | v), W(v | z)",
	}
	for _, qs := range queries {
		q := query.MustParse(qs)
		sql, err := SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		for trial := 0; trial < 40; trial++ {
			p := workload.DefaultDBParams()
			p.SeedMatches = 1 + rng.Intn(4)
			p.Domain = 1 + rng.Intn(3)
			d := workload.RandomDB(rng, q, p)
			want, err := Certain(q, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sqlmini.EvalString(sql, d)
			if err != nil {
				t.Fatalf("%s: eval error %v\nSQL: %s", qs, err, sql)
			}
			if got != want {
				t.Fatalf("SQL disagrees on %s: sql=%v direct=%v\nSQL: %s\ndb:\n%s",
					qs, got, want, sql, d)
			}
		}
	}
}

// TestSQLRandomAcyclicQueries widens the SQL check to random FO queries.
func TestSQLRandomAcyclicQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	tested := 0
	for trial := 0; trial < 600 && tested < 80; trial++ {
		q := acyclicRandomQuery(rng, t)
		sql, err := SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		want, err := Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sqlmini.EvalString(sql, d)
		if err != nil {
			t.Fatalf("eval error on %s: %v\nSQL: %s", q, err, sql)
		}
		if got != want {
			t.Fatalf("SQL disagrees on %s: sql=%v direct=%v\nSQL: %s\ndb:\n%s",
				q, got, want, sql, d)
		}
		tested++
	}
	if tested < 40 {
		t.Fatalf("only %d queries tested", tested)
	}
}
