package rewrite

import (
	"fmt"
	"strings"

	"cqa/internal/query"
)

// SQL renders the consistent first-order rewriting of CERTAINTY(q) as a
// SQL query in the style of Fuxman and Miller's ConQuer system: the
// returned statement evaluates to a single row (SELECT 1 ...) exactly
// when every repair of the underlying inconsistent tables satisfies q.
//
// Universal quantification compiles to NOT EXISTS with a negated body, so
// the pattern for one unattacked atom F = R(key | nonkey) reads:
//
//	EXISTS (SELECT 1 FROM R r0 WHERE <pattern>
//	        AND NOT EXISTS (SELECT 1 FROM R r1
//	                        WHERE r1.key = r0.key
//	                          AND NOT ( <conditions and nested rewriting> )))
//
// Column names are c1, c2, ... by position. The SQL dialect is plain
// SQL-92; no vendor extensions are needed.
func SQL(q query.Query) (string, error) {
	f, err := Rewriting(q)
	if err != nil {
		return "", err
	}
	return SQLFromFormula(f), nil
}

// SQLFromFormula renders an already-constructed rewriting as SQL,
// skipping the classification that SQL performs — the plan-aware entry
// point for callers holding a compiled plan's Formula.
func SQLFromFormula(f Formula) string {
	f = Simplify(f)
	var b strings.Builder
	b.WriteString("SELECT 1 WHERE ")
	c := &sqlCtx{aliases: map[query.Var]binding{}}
	c.emit(&b, f, false)
	return b.String()
}

// binding locates a variable: table alias + 1-based column.
type binding struct {
	alias string
	col   int
}

type sqlCtx struct {
	aliases map[query.Var]binding
	n       int
}

func (c *sqlCtx) fresh(rel string) string {
	c.n++
	return fmt.Sprintf("%s%d", strings.ToLower(rel[:1]), c.n)
}

// term renders a term: bound variables as alias.column, constants as
// quoted literals. Unbound variables cannot occur in a well-formed
// rewriting (every variable is introduced by the atom that quantifies it).
func (c *sqlCtx) term(t query.Term) string {
	if t.IsConst() {
		return "'" + strings.ReplaceAll(string(t.Const()), "'", "''") + "'"
	}
	b, ok := c.aliases[t.Var()]
	if !ok {
		return "NULL /* unbound " + string(t.Var()) + " */"
	}
	return fmt.Sprintf("%s.c%d", b.alias, b.col)
}

// emit writes the SQL condition for formula f; negate requests the
// negated condition (used under NOT EXISTS).
func (c *sqlCtx) emit(b *strings.Builder, f Formula, negate bool) {
	switch g := f.(type) {
	case TrueF:
		if negate {
			b.WriteString("1=0")
		} else {
			b.WriteString("1=1")
		}
	case FalseF:
		if negate {
			b.WriteString("1=1")
		} else {
			b.WriteString("1=0")
		}
	case EqF:
		op := " = "
		if negate {
			op = " <> "
		}
		b.WriteString(c.term(g.L) + op + c.term(g.R))
	case AndF:
		if len(g.Fs) == 0 {
			c.emit(b, TrueF{}, negate)
			return
		}
		sep := " AND "
		if negate {
			sep = " OR "
		}
		for i, sub := range g.Fs {
			if i > 0 {
				b.WriteString(sep)
			}
			b.WriteString("(")
			c.emit(b, sub, negate)
			b.WriteString(")")
		}
	case ExistsF:
		// The rewriting shape guarantees ExistsF bodies start with the
		// introducing atom; compile to EXISTS(SELECT ... WHERE rest).
		c.emitQuant(b, g.F, negate, false)
	case ForallF:
		c.emitQuant(b, g.F, negate, true)
	case ImpliesF:
		// Only occurs as ForallF bodies; handled there. Emit generically:
		// L -> R == NOT L OR R.
		if negate {
			b.WriteString("(")
			c.emit(b, g.L, false)
			b.WriteString(") AND (")
			c.emit(b, g.R, true)
			b.WriteString(")")
		} else {
			b.WriteString("(")
			c.emit(b, g.L, true)
			b.WriteString(") OR (")
			c.emit(b, g.R, false)
			b.WriteString(")")
		}
	case AtomF:
		// A bare atom outside a quantifier: membership test.
		alias := c.fresh(g.Atom.Rel.Name)
		prefix := "EXISTS"
		if negate {
			prefix = "NOT EXISTS"
		}
		fmt.Fprintf(b, "%s (SELECT 1 FROM %s %s", prefix, g.Atom.Rel.Name, alias)
		conds := c.atomConds(g.Atom, alias)
		if len(conds) > 0 {
			b.WriteString(" WHERE " + strings.Join(conds, " AND "))
		}
		b.WriteString(")")
	default:
		b.WriteString("1=0 /* unknown formula */")
	}
}

// atomConds returns the WHERE conditions equating the rows of alias with
// the atom's pattern; every variable must already be bound (bare atoms
// only occur in the rewriting when all their variables are in scope).
func (c *sqlCtx) atomConds(a query.Atom, alias string) []string {
	var conds []string
	for i, t := range a.Args {
		conds = append(conds, fmt.Sprintf("%s.c%d = %s", alias, i+1, c.term(t)))
	}
	return conds
}

// emitQuant compiles ∃vars(Atom ∧ rest) and ∀vars(Atom → rest). The
// rewriting construction guarantees these exact shapes.
func (c *sqlCtx) emitQuant(b *strings.Builder, body Formula, negate, forall bool) {
	var atom query.Atom
	var rest Formula
	switch g := body.(type) {
	case AndF:
		if len(g.Fs) > 0 {
			if af, ok := g.Fs[0].(AtomF); ok {
				atom = af.Atom
				rest = AndF{Fs: g.Fs[1:]}
			}
		}
	case ImpliesF:
		if af, ok := g.L.(AtomF); ok {
			atom = af.Atom
			rest = g.R
		}
	case AtomF:
		atom = g.Atom
		rest = TrueF{}
	}
	if atom.Rel.Name == "" {
		b.WriteString("1=0 /* unsupported quantifier body */")
		return
	}
	alias := c.fresh(atom.Rel.Name)
	// EXISTS x (A ∧ rest)         -> EXISTS(... WHERE pattern AND rest)
	// NOT EXISTS x (A ∧ rest)     -> NOT EXISTS(...)
	// FORALL x (A → rest)         -> NOT EXISTS(... WHERE pattern AND NOT rest)
	// NOT FORALL x (A → rest)     -> EXISTS(... WHERE pattern AND NOT rest)
	prefix := "EXISTS"
	negRest := false
	if forall != negate {
		prefix = "NOT EXISTS"
	}
	if forall {
		negRest = true
	}
	fmt.Fprintf(b, "%s (SELECT 1 FROM %s %s", prefix, atom.Rel.Name, alias)
	// Bind this atom's variables for the nested scope.
	saved := map[query.Var]binding{}
	var introduced []query.Var
	conds := []string{}
	for i, t := range atom.Args {
		if t.IsConst() {
			conds = append(conds, fmt.Sprintf("%s.c%d = %s", alias, i+1, c.term(t)))
			continue
		}
		v := t.Var()
		if old, bound := c.aliases[v]; bound {
			conds = append(conds, fmt.Sprintf("%s.c%d = %s.c%d", alias, i+1, old.alias, old.col))
			continue
		}
		saved[v] = binding{}
		introduced = append(introduced, v)
		c.aliases[v] = binding{alias: alias, col: i + 1}
	}
	whereStarted := false
	if len(conds) > 0 {
		b.WriteString(" WHERE " + strings.Join(conds, " AND "))
		whereStarted = true
	}
	if _, isTrue := rest.(TrueF); !isTrue || negRest {
		if whereStarted {
			b.WriteString(" AND ")
		} else {
			b.WriteString(" WHERE ")
		}
		b.WriteString("(")
		c.emit(b, rest, negRest)
		b.WriteString(")")
	}
	b.WriteString(")")
	for _, v := range introduced {
		delete(c.aliases, v)
	}
}
