package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestSimplifyExample5Exact: the normalized rewriting of Example 5 is
// exactly the paper's formula — no residual "true" conjuncts.
func TestSimplifyExample5Exact(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | 'b')")
	f, err := RewritingPretty(q)
	if err != nil {
		t.Fatal(err)
	}
	s := Format(f)
	if strings.Contains(s, "true") {
		t.Errorf("simplified rewriting still contains 'true': %s", s)
	}
	want := "∃x∃y( R(x | y) ∧ ∀y'( R(x | y') → S(y' | 'b') ∧ ∀w( S(y' | w) → w = 'b' ) ) )"
	if s != want {
		t.Errorf("rewriting:\n got %s\nwant %s", s, want)
	}
}

// TestSimplifyPreservesSemantics: Simplify never changes evaluation.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	tested := 0
	for trial := 0; trial < 400 && tested < 60; trial++ {
		q := acyclicRandomQuery(rng, t)
		f, err := Rewriting(q)
		if err != nil {
			t.Fatal(err)
		}
		sf := Simplify(f)
		p := workload.DefaultDBParams()
		p.SeedMatches = 2
		p.Noise = 1
		d := workload.RandomDB(rng, q, p)
		if len(d.ActiveDomain()) > 7 || len(q.Vars()) > 4 {
			continue
		}
		tested++
		if Eval(f, d) != Eval(sf, d) {
			t.Fatalf("Simplify changed semantics on %s\nraw: %s\nsimplified: %s",
				q, Format(f), Format(sf))
		}
	}
	if tested < 20 {
		t.Fatalf("only %d instances tested", tested)
	}
}

func TestSimplifyConstants(t *testing.T) {
	if _, ok := Simplify(EqF{L: query.C("a"), R: query.C("a")}).(TrueF); !ok {
		t.Error("a = a should simplify to true")
	}
	if _, ok := Simplify(EqF{L: query.C("a"), R: query.C("b")}).(FalseF); !ok {
		t.Error("a = b should simplify to false")
	}
	if _, ok := Simplify(AndF{Fs: []Formula{TrueF{}, TrueF{}}}).(TrueF); !ok {
		t.Error("true ∧ true should be true")
	}
	if _, ok := Simplify(ForallF{Vars: []query.Var{"x"}, F: TrueF{}}).(TrueF); !ok {
		t.Error("∀x true should be true")
	}
	if _, ok := Simplify(ImpliesF{L: FalseF{}, R: FalseF{}}).(TrueF); !ok {
		t.Error("false → false should be true")
	}
}
