package rewrite

import "cqa/internal/query"

// Simplify normalizes a formula without changing its meaning: it drops
// "∧ true" conjuncts, flattens nested conjunctions, removes empty
// quantifier prefixes, collapses implications with trivial sides, and
// propagates constants. Rewriting output becomes exactly the shape the
// paper prints (Example 5 has no trailing "∧ true").
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case AndF:
		var parts []Formula
		for _, sub := range g.Fs {
			s := Simplify(sub)
			switch t := s.(type) {
			case TrueF:
				continue
			case FalseF:
				return FalseF{}
			case AndF:
				parts = append(parts, t.Fs...)
			default:
				parts = append(parts, s)
			}
		}
		switch len(parts) {
		case 0:
			return TrueF{}
		case 1:
			return parts[0]
		}
		return AndF{Fs: parts}
	case ImpliesF:
		l := Simplify(g.L)
		r := Simplify(g.R)
		if _, ok := l.(TrueF); ok {
			return r
		}
		if _, ok := l.(FalseF); ok {
			return TrueF{}
		}
		if _, ok := r.(TrueF); ok {
			return TrueF{}
		}
		return ImpliesF{L: l, R: r}
	case ExistsF:
		inner := Simplify(g.F)
		if len(g.Vars) == 0 {
			return inner
		}
		if _, ok := inner.(FalseF); ok {
			return FalseF{}
		}
		return ExistsF{Vars: g.Vars, F: inner}
	case ForallF:
		inner := Simplify(g.F)
		if len(g.Vars) == 0 {
			return inner
		}
		if _, ok := inner.(TrueF); ok {
			return TrueF{}
		}
		return ForallF{Vars: g.Vars, F: inner}
	case EqF:
		if g.L == g.R {
			return TrueF{}
		}
		if g.L.IsConst() && g.R.IsConst() && g.L.Const() != g.R.Const() {
			return FalseF{}
		}
		return g
	default:
		return f
	}
}

// RewritingPretty returns the rewriting of q after normalization; the
// preferred form for display.
func RewritingPretty(q query.Query) (Formula, error) {
	f, err := Rewriting(q)
	if err != nil {
		return nil, err
	}
	return Simplify(f), nil
}
