package rewrite

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/workload"
)

// TestInternedMatchesRowRandom: the interned columnar walk and the
// row-oriented reference walk decide the same boolean on random acyclic
// instances, and the columnar view actually takes the case (parsed
// databases are always regular).
func TestInternedMatchesRowRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4117))
	taken := 0
	for trial := 0; trial < 300; trial++ {
		q := acyclicRandomQuery(rng, t)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		ix := match.NewIndex(d)
		got, ok, err := el.certainInterned(ix, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // no atoms, or a relation the view cannot hold
		}
		taken++
		want, err := el.certainRowChecked(ix, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("interned=%v row=%v\nq = %s\ndb:\n%s", got, want, q, d)
		}
	}
	if taken < 200 {
		t.Fatalf("interned path decided only %d/300 trials; the columnar view should hold nearly all parsed instances", taken)
	}
}

// TestInternedWithInitialValuation: seeding the interned walk with a
// candidate binding agrees with the row walk under the same binding,
// including bindings to constants absent from the database (a fresh
// interned symbol occurs in no column, so unification fails exactly as
// string comparison does) and bindings of foreign variables (inert).
func TestInternedWithInitialValuation(t *testing.T) {
	rng := rand.New(rand.NewSource(929))
	for trial := 0; trial < 150; trial++ {
		q := acyclicRandomQuery(rng, t)
		vars := q.Vars().Sorted()
		if len(vars) == 0 {
			continue
		}
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		adom := d.ActiveDomain()
		if len(adom) == 0 {
			continue
		}
		v := vars[rng.Intn(len(vars))]
		binding := query.Valuation{v: adom[rng.Intn(len(adom))], "zzUnused": "whatever"}
		if trial%5 == 0 {
			binding[v] = "no-such-constant-anywhere"
		}
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatal(err)
		}
		ix := match.NewIndex(d)
		got, ok, err := el.certainInterned(ix, binding, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		want, err := el.certainRowChecked(ix, binding, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("interned=%v row=%v\nq = %s\nbinding = %v\ndb:\n%s",
				got, want, q, binding, d)
		}
	}
}

// TestInternedAbsentRelation: a query over a relation with no facts is
// never certain (on a nonempty query), on both walks.
func TestInternedAbsentRelation(t *testing.T) {
	q := query.MustParse("T(x | y)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(factsDB(t, "R(a | b)"))
	got, ok, err := el.certainInterned(ix, nil, nil)
	if err != nil || !ok {
		t.Fatalf("certainInterned = (_, %v, %v), want decided", ok, err)
	}
	if got {
		t.Fatal("query over an absent relation reported certain")
	}
	if want, _ := el.certainRowChecked(ix, nil, nil); want != got {
		t.Fatalf("interned=%v row=%v on absent relation", got, want)
	}
}

// TestInternedIrregularFallback: two schemas under one relation name
// keep the columnar view out (certainInterned declines), and the public
// CertainChecked still answers through the row walk.
func TestInternedIrregularFallback(t *testing.T) {
	d := db.New()
	d.Add(db.NewFact(schema.Relation{Name: "R", Arity: 2, KeyLen: 1}, "a", "b"))
	d.Add(db.NewFact(schema.Relation{Name: "R", Arity: 3, KeyLen: 1}, "c", "d", "e"))
	d.Add(db.NewFact(schema.Relation{Name: "S", Arity: 2, KeyLen: 1}, "b", "c"))
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	if _, ok, _ := el.certainInterned(ix, nil, nil); ok {
		t.Fatal("interned walk claimed to decide an irregular relation")
	}
	got, err := el.CertainChecked(ix, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := el.certainRowChecked(ix, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("CertainChecked=%v row=%v on irregular data", got, want)
	}
	// Sweep entry points decline too; spans over an irregular top
	// relation send the caller to the row sweeps.
	if _, ok, _ := el.CertainOverSpans(ix, nil, nil); ok {
		t.Fatal("CertainOverSpans decided an irregular relation")
	}
	if _, ok, _ := el.SweepSpans(ix, nil, []query.Var{"x"}, nil); ok {
		t.Fatal("SweepSpans decided an irregular relation")
	}
	if ok, _ := el.SweepSpanBits(ix, nil, make([]bool, 4), nil); ok {
		t.Fatal("SweepSpanBits decided an irregular relation")
	}
}

// TestCertainOverSpansPartition: nil spans decide exactly Certain, and
// any partition of the top relation's block indices ORs to the same
// boolean — the contract the scatter-gather coordinator relies on.
func TestCertainOverSpansPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(6553))
	for trial := 0; trial < 120; trial++ {
		q := acyclicRandomQuery(rng, t)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(el.Order()) == 0 {
			continue
		}
		ix := match.NewIndex(d)
		want := el.Certain(ix)
		all, ok, err := el.CertainOverSpans(ix, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		if all != want {
			t.Fatalf("CertainOverSpans(nil)=%v Certain=%v\nq = %s\ndb:\n%s", all, want, q, d)
		}
		topRel := el.Order()[0].Rel.Name
		cr, regular := d.Columnar().Rel(topRel)
		if !regular || cr == nil {
			continue
		}
		parts := make([][]int32, 3)
		for b := 0; b < cr.Rel.NumBlocks(); b++ {
			parts[b%3] = append(parts[b%3], int32(b))
		}
		union := false
		for _, part := range parts {
			res, ok, err := el.CertainOverSpans(ix, part, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("CertainOverSpans declined valid spans %v", part)
			}
			union = union || res
		}
		if union != want {
			t.Fatalf("partition OR=%v Certain=%v\nq = %s\ndb:\n%s", union, want, q, d)
		}
		// Out-of-range spans are refused, never mis-decided.
		if _, ok, _ := el.CertainOverSpans(ix, []int32{int32(cr.Rel.NumBlocks())}, nil); ok {
			t.Fatal("CertainOverSpans accepted an out-of-range block index")
		}
	}
}

// TestSweepSpansMatchesSweepBlocks: the interned sweep and the row
// sweep produce the same answer set on a sweepable query, flat and
// under a partition.
func TestSweepSpansMatchesSweepBlocks(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	d := factsDB(t, `
		R(a | b)
		R(a | c)
		R(d | b)
		R(e | q)
		S(b | t)
		S(c | t)
		S(b | u)
	`)
	free := []query.Var{"x"}
	if !el.SweepableFree(free) {
		t.Fatal("fixture query should be sweepable on x")
	}
	ix := match.NewIndex(d)
	want, err := el.SweepBlocks(ix, d.BlocksOf("R"), free, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := el.SweepSpans(ix, nil, free, nil)
	if err != nil || !ok {
		t.Fatalf("SweepSpans = (_, %v, %v), want decided", ok, err)
	}
	keySet := func(vals []query.Valuation) map[string]bool {
		m := make(map[string]bool, len(vals))
		for _, v := range vals {
			m[v.Key()] = true
		}
		return m
	}
	wantKeys, gotKeys := keySet(want), keySet(got)
	if len(wantKeys) != len(gotKeys) {
		t.Fatalf("SweepSpans answers %v, SweepBlocks answers %v", got, want)
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Fatalf("SweepSpans missing answer %s; got %v want %v", k, got, want)
		}
	}
	// Partitioned sweep unions to the same set.
	cr, _ := d.Columnar().Rel("R")
	parts := make([][]int32, 2)
	for b := 0; b < cr.Rel.NumBlocks(); b++ {
		parts[b%2] = append(parts[b%2], int32(b))
	}
	union := make(map[string]bool)
	for _, part := range parts {
		vals, ok, err := el.SweepSpans(ix, part, free, nil)
		if err != nil || !ok {
			t.Fatalf("partitioned SweepSpans = (_, %v, %v)", ok, err)
		}
		for _, v := range vals {
			union[v.Key()] = true
		}
	}
	if len(union) != len(wantKeys) {
		t.Fatalf("partitioned union %v, want %v", union, wantKeys)
	}

	// The bit kernel agrees block-by-block with the materialized sweep.
	bits := make([]bool, cr.Rel.NumBlocks())
	ok, err = el.SweepSpanBits(ix, nil, bits, nil)
	if err != nil || !ok {
		t.Fatalf("SweepSpanBits = (%v, %v), want decided", ok, err)
	}
	passing := 0
	for _, b := range bits {
		if b {
			passing++
		}
	}
	if passing != len(got) {
		t.Fatalf("SweepSpanBits reports %d passing blocks, SweepSpans returned %d answers", passing, len(got))
	}
	// Undersized output buffer is refused.
	if ok, _ := el.SweepSpanBits(ix, nil, make([]bool, cr.Rel.NumBlocks()-1), nil); ok {
		t.Fatal("SweepSpanBits accepted an undersized output buffer")
	}
}

// TestSweepSpansRandomDifferential: interned sweep vs row sweep on
// random sweepable instances.
func TestSweepSpansRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	free := []query.Var{"x"}
	for trial := 0; trial < 80; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		ix := match.NewIndex(d)
		want, err := el.SweepBlocks(ix, d.BlocksOf("R"), free, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := el.SweepSpans(ix, nil, free, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		SortValuationsByKey(want)
		SortValuationsByKey(got)
		if len(want) != len(got) {
			t.Fatalf("SweepSpans %d answers, SweepBlocks %d\ndb:\n%s", len(got), len(want), d)
		}
		for i := range want {
			if want[i].Key() != got[i].Key() {
				t.Fatalf("answer %d: interned %v row %v", i, got[i], want[i])
			}
		}
	}
}

// TestInternedConstantsInQuery: query constants — present and absent
// from the database — decide identically on both walks.
func TestInternedConstantsInQuery(t *testing.T) {
	d := factsDB(t, `
		R(a | b)
		R(a | c)
		S(b | v)
		S(c | v)
	`)
	ix := match.NewIndex(d)
	for _, qs := range []string{
		`R('a' | y), S(y | z)`,
		`R('nope' | y), S(y | z)`,
		`R(x | y), S(y | 'v')`,
		`R(x | y), S(y | 'missing')`,
	} {
		q := query.MustParse(qs)
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatalf("compile %s: %v", qs, err)
		}
		got, ok, err := el.certainInterned(ix, nil, nil)
		if err != nil || !ok {
			t.Fatalf("%s: certainInterned = (_, %v, %v)", qs, ok, err)
		}
		want, err := el.certainRowChecked(ix, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: interned=%v row=%v", qs, got, want)
		}
	}
}
