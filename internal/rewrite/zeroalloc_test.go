//go:build !race

// The zero-allocation pins of the interned hot path. Excluded under
// the race detector, whose instrumentation inserts allocations the
// production build does not perform.

package rewrite

import (
	"runtime"
	"testing"

	"cqa/internal/match"
	"cqa/internal/query"
)

// TestWarmCertainZeroAlloc pins the tentpole property: a warm Boolean
// FO evaluation over the columnar view performs no allocation. The
// evaluation state (slot valuation, undo stack, memo arena) lives in
// the Eliminator's atomic cache slot, which holds a strong reference —
// a GC between runs must not cost the pin either.
func TestWarmCertainZeroAlloc(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	d := factsDB(t, `
		R(a | b)
		R(a | c)
		R(d | b)
		R(e | q)
		S(b | t)
		S(c | t)
		S(b | u)
	`)
	ix := match.NewIndex(d)
	el.Certain(ix) // warm: build columnar view, prog, eval state
	runtime.GC()   // the cache must survive a collection (strong ref, not sync.Pool)
	if allocs := testing.AllocsPerRun(500, func() { el.Certain(ix) }); allocs != 0 {
		t.Fatalf("warm FO Certain allocates %.1f/op, want 0", allocs)
	}
}

// TestSweepSpanBitsZeroAlloc pins the batched answers kernel: deciding
// every block of the top relation into a caller-owned buffer allocates
// nothing once warm.
func TestSweepSpanBitsZeroAlloc(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	d := factsDB(t, `
		R(a | b)
		R(a | c)
		R(d | b)
		R(e | q)
		S(b | t)
		S(c | t)
	`)
	ix := match.NewIndex(d)
	cr, ok := d.Columnar().Rel("R")
	if !ok || cr == nil {
		t.Fatal("fixture relation R missing from columnar view")
	}
	bits := make([]bool, cr.Rel.NumBlocks())
	if ok, err := el.SweepSpanBits(ix, nil, bits, nil); !ok || err != nil {
		t.Fatalf("SweepSpanBits = (%v, %v), want decided", ok, err)
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(500, func() { el.SweepSpanBits(ix, nil, bits, nil) })
	if allocs != 0 {
		t.Fatalf("warm SweepSpanBits allocates %.1f/op, want 0", allocs)
	}
}
