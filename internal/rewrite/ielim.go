package rewrite

// The interned evaluation path: the Lemma 10 walk over the columnar
// view of the database (db.ColDB / colstore.Rel) instead of the
// row-oriented []Fact blocks. Everything the row walk does with strings
// and maps happens here on machine words:
//
//   - constants are sym.ID words interned once per database,
//   - a valuation is a flat []sym.ID indexed by variable slot with an
//     explicit undo stack,
//   - a block is a contiguous row span over flat columns, probed by
//     ground key through an open-addressing table,
//   - the memo table is epoch-tagged open addressing over uint32-coded
//     keys in a reusable arena — no per-evaluation map, no clearing.
//
// Evaluation state is cached per Eliminator (one warm state in an
// atomic slot, overflow in a sync.Pool), so the steady-state walk does
// not allocate at all; testing.AllocsPerRun pins this in
// zeroalloc_test.go. Queries over irregular relations (mixed schemas
// under one name) compile to a prog with ok=false and stay on the row
// path.

import (
	"sort"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/sym"
	"cqa/internal/trace"
)

// iterm is one argument position of a compiled atom: a variable slot,
// or an interned constant when slot < 0.
type iterm struct {
	slot int32
	id   sym.ID
}

// ilevel is one level of the interned walk: the columnar relation of
// the atom (nil when the database has no facts for it), the key and
// non-key patterns, and the memo-relevant slots.
type ilevel struct {
	rel      *db.ColRel
	key      []iterm
	nonkey   []iterm
	relevant []int32
}

// iprog is an Eliminator compiled against one columnar view. ok is
// false when some atom's relation is irregular in the view (or its
// stored schema differs from the atom's) — the row path decides those.
type iprog struct {
	ok     bool
	levels []ilevel
	names  []string // relation name per level, for ValidFor
	maxKey int
}

// ValidFor implements db.ViewProg: a compiled program stays valid for a
// derived view exactly when every level's columnar relation is the same
// object there — Apply aliases untouched relations' ColRels into the
// child view, so programs over untouched relations carry over (along
// with their cached zero-alloc evaluation state), and any touched
// relation forces a recompile. Interned constants need no check: the
// symbol table is shared and append-only across derived views.
func (p *iprog) ValidFor(c *db.ColDB) bool {
	if !p.ok {
		return false
	}
	for i := range p.levels {
		cr, regular := c.Rel(p.names[i])
		if !regular || cr != p.levels[i].rel {
			return false
		}
	}
	return true
}

var _ db.ViewProg = (*iprog)(nil)

// prog returns the program of this eliminator against the view,
// compiling and caching it on first use. The cache lives on the view
// (its IDs are only valid there); racing compilers agree via
// LoadOrStore.
func (e *Eliminator) prog(c *db.ColDB) *iprog {
	if p, ok := c.Progs().Load(e); ok {
		return p.(*iprog)
	}
	p, _ := c.Progs().LoadOrStore(e, e.compileInterned(c))
	return p.(*iprog)
}

func (e *Eliminator) compileInterned(c *db.ColDB) *iprog {
	p := &iprog{ok: true, levels: make([]ilevel, len(e.order)), names: make([]string, len(e.order))}
	for li, a := range e.order {
		cr, regular := c.Rel(a.Rel.Name)
		if !regular || (cr != nil && cr.Relation != a.Rel) {
			p.ok = false
			return p
		}
		p.names[li] = a.Rel.Name
		terms := func(ts []query.Term) []iterm {
			out := make([]iterm, len(ts))
			for i, t := range ts {
				if t.IsConst() {
					// Intern, not Lookup: a constant the database
					// never mentions gets a fresh ID occurring in no
					// column, so unification against it fails exactly
					// like the string comparison would.
					out[i] = iterm{slot: -1, id: c.Syms.Intern(string(t.Const()))}
				} else {
					out[i] = iterm{slot: e.varSlot[t.Var()]}
				}
			}
			return out
		}
		lv := &p.levels[li]
		lv.rel = cr
		lv.key = terms(a.KeyArgs())
		lv.nonkey = terms(a.NonKeyArgs())
		lv.relevant = e.relevantSlots[li]
		if len(lv.key) > p.maxKey {
			p.maxKey = len(lv.key)
		}
	}
	return p
}

// imemoSlot is one entry of the epoch-tagged memo table; off/n locate
// the coded key in the arena.
type imemoSlot struct {
	epoch uint32
	hash  uint32
	off   uint32
	n     uint16
	val   bool
}

// imemo is the interned memo table: open addressing with linear
// probing, entries valid only for the current epoch. Starting a new
// evaluation bumps the epoch instead of clearing anything, and the key
// arena resets to length zero — steady state reuses both backing
// arrays without allocating.
type imemo struct {
	slots []imemoSlot
	keys  []uint32
	epoch uint32
	live  int
}

func (m *imemo) reset() {
	m.epoch++
	if m.epoch == 0 {
		// Epoch wrap: stale slots from 2^32 evaluations ago would read
		// as current; clear once and continue.
		for i := range m.slots {
			m.slots[i] = imemoSlot{}
		}
		m.epoch = 1
	}
	m.keys = m.keys[:0]
	m.live = 0
}

func (m *imemo) lookup(key []uint32, hash uint32) (val, ok bool) {
	if len(m.slots) == 0 {
		return false, false
	}
	mask := uint32(len(m.slots) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.epoch != m.epoch {
			return false, false
		}
		if s.hash == hash && int(s.n) == len(key) && wordsEqual(m.keys[s.off:s.off+uint32(s.n)], key) {
			return s.val, true
		}
	}
}

func (m *imemo) insert(key []uint32, hash uint32, val bool) {
	if len(m.slots) == 0 || (m.live+1)*4 > len(m.slots)*3 {
		m.grow()
	}
	mask := uint32(len(m.slots) - 1)
	i := hash & mask
	for {
		s := &m.slots[i]
		if s.epoch != m.epoch {
			break
		}
		if s.hash == hash && int(s.n) == len(key) && wordsEqual(m.keys[s.off:s.off+uint32(s.n)], key) {
			s.val = val
			return
		}
		i = (i + 1) & mask
	}
	off := uint32(len(m.keys))
	m.keys = append(m.keys, key...)
	m.slots[i] = imemoSlot{epoch: m.epoch, hash: hash, off: off, n: uint16(len(key)), val: val}
	m.live++
}

func (m *imemo) grow() {
	n := len(m.slots) * 2
	if n == 0 {
		n = 256
	}
	old := m.slots
	m.slots = make([]imemoSlot, n)
	mask := uint32(n - 1)
	for _, s := range old {
		if s.epoch != m.epoch {
			continue
		}
		i := s.hash & mask
		for m.slots[i].epoch == m.epoch {
			i = (i + 1) & mask
		}
		m.slots[i] = s
	}
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashWords is FNV-1a over the coded key, one multiply-mix per word.
func hashWords(ws []uint32) uint32 {
	h := uint32(2166136261)
	for _, w := range ws {
		h = (h ^ w) * 16777619
	}
	return h
}

// ieval is one interned evaluation: flat valuation with undo stack,
// memo table, and scratch buffers. Acquired from the per-Eliminator
// cache and returned after the walk, so repeated evaluations of one
// query reuse every backing array.
type ieval struct {
	prog    *iprog
	col     *db.ColDB
	chk     *evalctx.Checker
	memoCap int

	bound    []bool
	vals     []sym.ID
	undo     []int32
	keybuf   []sym.ID
	kscratch []uint32
	memo     imemo

	trSteps, trHits, trMisses int64
}

// acquire returns a ready evaluation state for prog: the warm cached
// state when available (any prog of this eliminator fits — the slot
// counts and key widths are fixed per query), a pooled one, or a fresh
// allocation.
func (e *Eliminator) acquire(c *db.ColDB, p *iprog, chk *evalctx.Checker) *ieval {
	ev := e.ievalCache.Swap(nil)
	if ev == nil {
		ev, _ = e.ievalPool.Get().(*ieval)
	}
	if ev == nil {
		ev = &ieval{
			bound:    make([]bool, len(e.vars)),
			vals:     make([]sym.ID, len(e.vars)),
			keybuf:   make([]sym.ID, p.maxKey),
			kscratch: make([]uint32, 0, 1+len(e.vars)),
		}
	}
	ev.prog, ev.col, ev.chk = p, c, chk
	ev.memoCap = chk.MemoCap()
	ev.trSteps, ev.trHits, ev.trMisses = 0, 0, 0
	ev.undo = ev.undo[:0]
	for i := range ev.bound {
		ev.bound[i] = false
	}
	ev.memo.reset()
	return ev
}

func (e *Eliminator) release(ev *ieval) {
	ev.prog, ev.col, ev.chk = nil, nil, nil
	if !e.ievalCache.CompareAndSwap(nil, ev) {
		e.ievalPool.Put(ev)
	}
}

func (ev *ieval) flush(chk *evalctx.Checker) {
	tr := chk.Tracer()
	if tr == nil {
		return
	}
	tr.Add(trace.StageEliminator, trace.CtrSteps, ev.trSteps)
	tr.Add(trace.StageEliminator, trace.CtrMemoHits, ev.trHits)
	tr.Add(trace.StageEliminator, trace.CtrMemoMisses, ev.trMisses)
}

// encodeKey codes the residue identity at a level into the scratch
// buffer: the level word, then one word per relevant slot —
// vals[slot]+1 when bound, 0 when free. Fixed width per level, so no
// variable-name separators are needed.
func (ev *ieval) encodeKey(level int) []uint32 {
	k := ev.kscratch[:0]
	k = append(k, uint32(level))
	for _, s := range ev.prog.levels[level].relevant {
		if ev.bound[s] {
			k = append(k, uint32(ev.vals[s])+1)
		} else {
			k = append(k, 0)
		}
	}
	return k
}

func (ev *ieval) unify(t iterm, id sym.ID) bool {
	if t.slot < 0 {
		return t.id == id
	}
	if ev.bound[t.slot] {
		return ev.vals[t.slot] == id
	}
	ev.bound[t.slot] = true
	ev.vals[t.slot] = id
	ev.undo = append(ev.undo, t.slot)
	return true
}

func (ev *ieval) undoTo(mark int) {
	for i := len(ev.undo) - 1; i >= mark; i-- {
		ev.bound[ev.undo[i]] = false
	}
	ev.undo = ev.undo[:mark]
}

// run is the interned analogue of elimEval.run: poll, memo probe,
// evaluate, memo insert. The scratch key is clobbered by deeper levels
// during eval, so the insert re-encodes — the bindings are restored by
// then, producing the identical words.
func (ev *ieval) run(level int) bool {
	if ev.chk.Step() != nil {
		return false
	}
	ev.trSteps++
	if level == len(ev.prog.levels) {
		return true
	}
	key := ev.encodeKey(level)
	h := hashWords(key)
	if v, ok := ev.memo.lookup(key, h); ok {
		ev.trHits++
		return v
	}
	ev.trMisses++
	res := ev.eval(level)
	// Same policy as the row walk: never memoize under a tripped
	// checker, never past the memo budget.
	if ev.chk.Err() == nil && (ev.memoCap <= 0 || ev.memo.live < ev.memoCap) {
		ev.memo.insert(ev.encodeKey(level), h, res)
	}
	return res
}

func (ev *ieval) eval(level int) bool {
	lv := &ev.prog.levels[level]
	if lv.rel == nil {
		return false
	}
	r := lv.rel.Rel
	// Ground-key fast path: one hash probe instead of a span scan.
	ground := true
	for i, t := range lv.key {
		switch {
		case t.slot < 0:
			ev.keybuf[i] = t.id
		case ev.bound[t.slot]:
			ev.keybuf[i] = ev.vals[t.slot]
		default:
			ground = false
		}
		if !ground {
			break
		}
	}
	if ground {
		b, ok := r.BlockByKey(ev.keybuf[:len(lv.key)])
		if !ok {
			return false
		}
		return ev.blockCertain(level, b)
	}
	for b, nb := int32(0), int32(r.NumBlocks()); b < nb; b++ {
		if ev.blockCertain(level, b) {
			return true
		}
	}
	return false
}

// blockCertain is the Lemma 9 test over one span: the key pattern must
// unify with the block key, and every row must unify the non-key
// pattern and leave a certain residue. Bindings are undone through the
// explicit stack.
func (ev *ieval) blockCertain(level int, b int32) bool {
	lv := &ev.prog.levels[level]
	r := lv.rel.Rel
	lo, hi := r.Span(b)
	mark := len(ev.undo)
	for i, t := range lv.key {
		if !ev.unify(t, r.Col(i)[lo]) {
			ev.undoTo(mark)
			return false
		}
	}
	kl := len(lv.key)
	good := true
	for row := lo; row < hi; row++ {
		m2 := len(ev.undo)
		ok := true
		for i, t := range lv.nonkey {
			if !ev.unify(t, r.Col(kl + i)[row]) {
				ok = false
				break
			}
		}
		if ok {
			ok = ev.run(level + 1)
		}
		ev.undoTo(m2)
		if !ok {
			good = false
			break
		}
	}
	ev.undoTo(mark)
	return good
}

// certainInterned decides certainty on the columnar view. ok=false
// means the view cannot represent the query's relations (irregular
// data) and the caller must use the row path.
func (e *Eliminator) certainInterned(ix *match.Index, initial query.Valuation, chk *evalctx.Checker) (res, ok bool, err error) {
	c := ix.DB.Columnar()
	p := e.prog(c)
	if !p.ok {
		return false, false, nil
	}
	ev := e.acquire(c, p, chk)
	for v, cst := range initial {
		slot, known := e.varSlot[v]
		if !known {
			continue // bindings of foreign variables are inert, as in the row walk
		}
		ev.bound[slot] = true
		ev.vals[slot] = c.Syms.Intern(string(cst))
	}
	sp := chk.Tracer().Begin(trace.StageEliminator)
	res = ev.run(0)
	sp.End()
	ev.flush(chk)
	e.release(ev)
	if err := chk.Err(); err != nil {
		return false, true, err
	}
	return res, true, nil
}

// CertainOverSpans is the interned analogue of CertainOverBlocks: the
// top level of the walk restricted to the given block indices of the
// first elimination atom's relation in the columnar view (nil = every
// block). ok=false means the view cannot decide — irregular relation,
// or span indices that do not belong to the view — and the caller must
// fall back to CertainOverBlocks.
func (e *Eliminator) CertainOverSpans(ix *match.Index, spans []int32, chk *evalctx.Checker) (certain, ok bool, err error) {
	c := ix.DB.Columnar()
	p := e.prog(c)
	if !p.ok {
		return false, false, nil
	}
	lv := &p.levels[0]
	if lv.rel == nil {
		if len(spans) > 0 {
			return false, false, nil
		}
		return false, true, chk.Err()
	}
	nb := int32(lv.rel.Rel.NumBlocks())
	for _, s := range spans {
		if s < 0 || s >= nb {
			return false, false, nil
		}
	}
	ev := e.acquire(c, p, chk)
	sp := chk.Tracer().Begin(trace.StageEliminator)
	res := false
	n := int(nb)
	if spans != nil {
		n = len(spans)
	}
	for i := 0; i < n; i++ {
		b := int32(i)
		if spans != nil {
			b = spans[i]
		}
		if ev.chk.Step() != nil {
			break
		}
		ev.trSteps++
		if ev.blockCertain(0, b) {
			res = true
			break
		}
	}
	sp.End()
	ev.flush(chk)
	e.release(ev)
	if err := chk.Err(); err != nil {
		return false, true, err
	}
	return res, true, nil
}

// SweepSpans is the interned certain-answers block sweep (see
// SweepableFree): for each listed block of the top relation (nil =
// every block) the candidate binding is read off the block key, the
// block runs the Lemma 9 test under it, and the passing bindings are
// returned in span order. ok=false sends the caller to SweepBlocks.
func (e *Eliminator) SweepSpans(ix *match.Index, spans []int32, free []query.Var, chk *evalctx.Checker) (out []query.Valuation, ok bool, err error) {
	c := ix.DB.Columnar()
	p := e.prog(c)
	if !p.ok {
		return nil, false, nil
	}
	lv := &p.levels[0]
	if lv.rel == nil {
		if len(spans) > 0 {
			return nil, false, nil
		}
		return nil, true, chk.Err()
	}
	r := lv.rel.Rel
	nb := int32(r.NumBlocks())
	for _, s := range spans {
		if s < 0 || s >= nb {
			return nil, false, nil
		}
	}
	// Column position of each free variable in the top atom's key
	// (SweepableFree guarantees one exists).
	freeCol := make([]int, len(free))
	for j, v := range free {
		slot, known := e.varSlot[v]
		if !known {
			return nil, false, nil
		}
		freeCol[j] = -1
		for i, t := range lv.key {
			if t.slot == slot {
				freeCol[j] = i
				break
			}
		}
		if freeCol[j] < 0 {
			return nil, false, nil
		}
	}
	ev := e.acquire(c, p, chk)
	sp := chk.Tracer().Begin(trace.StageEliminator)
	n := int(nb)
	if spans != nil {
		n = len(spans)
	}
	for i := 0; i < n; i++ {
		b := int32(i)
		if spans != nil {
			b = spans[i]
		}
		if ev.chk.Step() != nil {
			break
		}
		ev.trSteps++
		if ev.blockCertain(0, b) && ev.chk.Err() == nil {
			lo, _ := r.Span(b)
			val := make(query.Valuation, len(free))
			for j, v := range free {
				val[v] = query.Const(c.Syms.String(r.Col(freeCol[j])[lo]))
			}
			out = append(out, val)
		}
	}
	sp.End()
	ev.flush(chk)
	e.release(ev)
	if err := chk.Err(); err != nil {
		return nil, true, err
	}
	return out, true, nil
}

// SweepSpanBits is the zero-allocation batched answers kernel: it
// decides the Lemma 9 test for each listed block of the top relation
// (nil = every block of the columnar view) and writes the verdicts into
// out, which must have room for one entry per swept block. Candidate
// materialization is the caller's concern, so a warm kernel performs no
// allocation at all. ok=false means the columnar view cannot decide and
// the caller must use SweepBlocks.
func (e *Eliminator) SweepSpanBits(ix *match.Index, spans []int32, out []bool, chk *evalctx.Checker) (ok bool, err error) {
	c := ix.DB.Columnar()
	p := e.prog(c)
	if !p.ok {
		return false, nil
	}
	lv := &p.levels[0]
	if lv.rel == nil {
		if len(spans) > 0 {
			return false, nil
		}
		return true, chk.Err()
	}
	nb := int32(lv.rel.Rel.NumBlocks())
	for _, s := range spans {
		if s < 0 || s >= nb {
			return false, nil
		}
	}
	n := int(nb)
	if spans != nil {
		n = len(spans)
	}
	if len(out) < n {
		return false, nil
	}
	ev := e.acquire(c, p, chk)
	sp := chk.Tracer().Begin(trace.StageEliminator)
	for i := 0; i < n; i++ {
		b := int32(i)
		if spans != nil {
			b = spans[i]
		}
		if ev.chk.Step() != nil {
			break
		}
		ev.trSteps++
		out[i] = ev.blockCertain(0, b)
	}
	sp.End()
	ev.flush(chk)
	e.release(ev)
	return true, chk.Err()
}

// SortValuationsByKey sorts answer bindings into the canonical
// binding-key order the scatter-gather merge uses, computing each key
// once (decorate-sort-undecorate).
func SortValuationsByKey(vals []query.Valuation) {
	type keyed struct {
		key string
		val query.Valuation
	}
	all := make([]keyed, len(vals))
	for i, v := range vals {
		all[i] = keyed{key: v.Key(), val: v}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	for i, k := range all {
		vals[i] = k.val
	}
}
