package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCertainPath(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		S(b | c)
	`)
	got, err := Certain(q, d)
	if err != nil || !got {
		t.Fatalf("Certain = %v, %v; want true", got, err)
	}
	d.Add(db.Fact{Rel: d.Facts()[0].Rel, Args: []query.Const{"a", "dead"}})
	got, err = Certain(q, d)
	if err != nil || got {
		t.Fatalf("Certain = %v, %v; want false after adding R(a | dead)", got, err)
	}
	// Adding S(dead | c) restores certainty: both R-choices now join.
	d.Add(db.Fact{Rel: d.Facts()[1].Rel, Args: []query.Const{"dead", "c"}})
	got, err = Certain(q, d)
	if err != nil || !got {
		t.Fatalf("Certain = %v, %v; want true after adding S(dead | c)", got, err)
	}
}

func TestCertainRejectsCyclic(t *testing.T) {
	q := workload.Q0()
	if _, err := Certain(q, db.New()); err == nil {
		t.Fatal("expected error for cyclic attack graph")
	}
	if _, err := Rewriting(q); err == nil {
		t.Fatal("expected error from Rewriting for cyclic attack graph")
	}
}

// TestRewriteExample5 reproduces Example 5: q = {R(x|y), S(y|'b')} has the
// rewriting ∃x∃y( R(x|y) ∧ ∀y'( R(x|y') → S(y'|'b') ∧ ∀z(S(y'|z) → z='b') ) ).
func TestRewriteExample5(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | 'b')")
	f, err := Rewriting(q)
	if err != nil {
		t.Fatal(err)
	}
	s := Format(f)
	for _, frag := range []string{"∃x", "∃y", "∀y'", "R(x | y)", "R(x | y')", "= 'b'"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rewriting %q missing fragment %q", s, frag)
		}
	}
	// Sanity: the rewriting holds exactly when q is certain.
	good := factsDB(t, `
		R(1 | a)
		S(a | b)
	`)
	if !Eval(f, good) {
		t.Errorf("rewriting false on a certain instance:\n%s", s)
	}
	bad := factsDB(t, `
		R(1 | a)
		S(a | b)
		S(a | zz)
	`)
	if Eval(f, bad) {
		t.Errorf("rewriting true on an uncertain instance (block S(a|*) has a non-b fact)")
	}
}

func acyclicRandomQuery(rng *rand.Rand, t *testing.T) query.Query {
	t.Helper()
	for {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() {
			return q
		}
	}
}

// TestDifferentialVsNaive cross-checks the FO engine against the oracle
// and the DPLL engine on random acyclic-attack-graph instances.
func TestDifferentialVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 300; trial++ {
		q := acyclicRandomQuery(rng, t)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<14 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("rewrite=%v naive=%v\nq = %s\ndb:\n%s", got, want, q, d)
		}
		dpll, _ := conp.Certain(q, d)
		if dpll != want {
			t.Fatalf("conp=%v naive=%v\nq = %s\ndb:\n%s", dpll, want, q, d)
		}
	}
}

// TestFormulaAgreesWithDirectEvaluator: the symbolic rewriting, model-
// checked over the active domain, agrees with the direct recursion.
func TestFormulaAgreesWithDirectEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 120; trial++ {
		q := acyclicRandomQuery(rng, t)
		if q.Vars().Sorted() == nil && q.Len() == 0 {
			continue
		}
		p := workload.DefaultDBParams()
		p.SeedMatches = 2
		p.Noise = 1
		d := workload.RandomDB(rng, q, p)
		if len(d.ActiveDomain()) > 8 || len(q.Vars()) > 5 {
			continue // keep model checking cheap
		}
		f, err := Rewriting(q)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if got := Eval(f, d); got != direct {
			t.Fatalf("formula=%v direct=%v\nq = %s\nrewriting = %s\ndb:\n%s",
				got, direct, q, Format(f), d)
		}
	}
}

func TestEmptyQueryCertain(t *testing.T) {
	got, err := Certain(query.MustParse(""), db.New())
	if err != nil || !got {
		t.Fatalf("empty query should be certain: %v, %v", got, err)
	}
	f, err := Rewriting(query.MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	if !Eval(f, db.New()) {
		t.Fatal("rewriting of empty query should be true")
	}
}
