package rewrite

import (
	"math/rand"
	"testing"

	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func TestCompileAcyclicOrder(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	order := el.Order()
	if len(order) != 2 || order[0].Rel.Name != "R" || order[1].Rel.Name != "S" {
		t.Errorf("order = %v; want R before S (R attacks S)", order)
	}
}

func TestCompileEliminatorRejectsCyclic(t *testing.T) {
	if _, err := CompileEliminator(workload.Q0()); err == nil {
		t.Fatal("expected error for cyclic attack graph")
	}
}

func TestEliminatorEmptyQuery(t *testing.T) {
	el, err := CompileAcyclic(query.MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	if !el.Certain(match.NewIndex(factsDB(t, "R(a | b)"))) {
		t.Error("empty query must be certain on every instance")
	}
}

// TestEliminatorDifferentialVsNaive: the compiled elimination order
// agrees with the brute-force oracle and with the per-residue recursion
// it replaces, on random acyclic instances (fixed seed).
func TestEliminatorDifferentialVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 300; trial++ {
		q := acyclicRandomQuery(rng, t)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<14 {
			continue
		}
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		got := el.Certain(match.NewIndex(d))
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("eliminator=%v naive=%v\nq = %s\norder = %v\ndb:\n%s",
				got, want, q, el.Order(), d)
		}
		if old := CertainAcyclic(q, d); old != want {
			t.Fatalf("CertainAcyclic=%v naive=%v\nq = %s\ndb:\n%s", old, want, q, d)
		}
	}
}

// TestCertainWithMatchesSubstitute: seeding the eliminator with a
// binding decides exactly the instantiated query (Lemma 6 keeps the
// compiled order valid under instantiation).
func TestCertainWithMatchesSubstitute(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 150; trial++ {
		q := acyclicRandomQuery(rng, t)
		vars := q.Vars().Sorted()
		if len(vars) == 0 {
			continue
		}
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		adom := d.ActiveDomain()
		if len(adom) == 0 {
			continue
		}
		v := vars[rng.Intn(len(vars))]
		binding := query.Valuation{v: adom[rng.Intn(len(adom))]}
		el, err := CompileAcyclic(q)
		if err != nil {
			t.Fatal(err)
		}
		got := el.CertainWith(match.NewIndex(d), binding)
		want, err := naive.Certain(q.Substitute(binding), d)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CertainWith=%v naive(substituted)=%v\nq = %s\nbinding = %v\ndb:\n%s",
				got, want, q, binding, d)
		}
		if len(binding) != 1 {
			t.Fatal("CertainWith modified the caller's valuation")
		}
	}
}

// TestEliminatorSharedAcrossGoroutines: one compiled eliminator is used
// concurrently over a shared index; run with -race.
func TestEliminatorSharedAcrossGoroutines(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	el, err := CompileAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	d := factsDB(t, `
		R(a | b)
		R(a | c)
		S(b | z)
		S(c | z)
	`)
	ix := match.NewIndex(d)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func() { done <- el.Certain(ix) }()
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("shared eliminator returned false on a certain instance")
		}
	}
}
