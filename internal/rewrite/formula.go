package rewrite

import (
	"fmt"
	"strings"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/query"
)

// Formula is a first-order formula over the query's schema, with equality
// and constants. It is the symbolic counterpart of the direct evaluator:
// when the attack graph of q is acyclic, Rewriting(q) returns a sentence
// that holds in an uncertain database (as a plain first-order structure)
// iff every repair satisfies q.
type Formula interface {
	format(b *strings.Builder)
	// eval model-checks the formula over d under the environment env,
	// quantifying over the active domain.
	eval(d *db.DB, adom []query.Const, env query.Valuation) bool
}

// TrueF is the true sentence.
type TrueF struct{}

// FalseF is the false sentence.
type FalseF struct{}

// AtomF asserts membership of a tuple in a relation.
type AtomF struct{ Atom query.Atom }

// EqF asserts equality of two terms.
type EqF struct{ L, R query.Term }

// AndF is conjunction; an empty conjunction is true.
type AndF struct{ Fs []Formula }

// ImpliesF is implication.
type ImpliesF struct{ L, R Formula }

// ExistsF existentially quantifies variables.
type ExistsF struct {
	Vars []query.Var
	F    Formula
}

// ForallF universally quantifies variables.
type ForallF struct {
	Vars []query.Var
	F    Formula
}

func (TrueF) format(b *strings.Builder)  { b.WriteString("true") }
func (FalseF) format(b *strings.Builder) { b.WriteString("false") }
func (f AtomF) format(b *strings.Builder) {
	b.WriteString(f.Atom.String())
}
func (f EqF) format(b *strings.Builder) {
	b.WriteString(f.L.String())
	b.WriteString(" = ")
	b.WriteString(f.R.String())
}
func (f AndF) format(b *strings.Builder) {
	if len(f.Fs) == 0 {
		b.WriteString("true")
		return
	}
	for i, g := range f.Fs {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		if _, isImp := g.(ImpliesF); isImp {
			b.WriteString("(")
			g.format(b)
			b.WriteString(")")
		} else {
			g.format(b)
		}
	}
}
func (f ImpliesF) format(b *strings.Builder) {
	f.L.format(b)
	b.WriteString(" → ")
	if _, isImp := f.R.(ImpliesF); isImp {
		b.WriteString("(")
		f.R.format(b)
		b.WriteString(")")
	} else {
		f.R.format(b)
	}
}
func (f ExistsF) format(b *strings.Builder) {
	for _, v := range f.Vars {
		fmt.Fprintf(b, "∃%s", v)
	}
	b.WriteString("( ")
	f.F.format(b)
	b.WriteString(" )")
}
func (f ForallF) format(b *strings.Builder) {
	for _, v := range f.Vars {
		fmt.Fprintf(b, "∀%s", v)
	}
	b.WriteString("( ")
	f.F.format(b)
	b.WriteString(" )")
}

// Format renders a formula in logic notation.
func Format(f Formula) string {
	var b strings.Builder
	f.format(&b)
	return b.String()
}

func (TrueF) eval(*db.DB, []query.Const, query.Valuation) bool  { return true }
func (FalseF) eval(*db.DB, []query.Const, query.Valuation) bool { return false }

func (f AtomF) eval(d *db.DB, _ []query.Const, env query.Valuation) bool {
	fact, err := db.FactFromAtom(f.Atom.Substitute(env), env)
	if err != nil {
		return false
	}
	return d.Has(fact)
}

func (f EqF) eval(_ *db.DB, _ []query.Const, env query.Valuation) bool {
	l, okL := env.Apply(f.L)
	r, okR := env.Apply(f.R)
	return okL && okR && l == r
}

func (f AndF) eval(d *db.DB, adom []query.Const, env query.Valuation) bool {
	for _, g := range f.Fs {
		if !g.eval(d, adom, env) {
			return false
		}
	}
	return true
}

func (f ImpliesF) eval(d *db.DB, adom []query.Const, env query.Valuation) bool {
	return !f.L.eval(d, adom, env) || f.R.eval(d, adom, env)
}

func (f ExistsF) eval(d *db.DB, adom []query.Const, env query.Valuation) bool {
	return quantEval(f.Vars, f.F, d, adom, env, false)
}

func (f ForallF) eval(d *db.DB, adom []query.Const, env query.Valuation) bool {
	return quantEval(f.Vars, f.F, d, adom, env, true)
}

func quantEval(vars []query.Var, body Formula, d *db.DB, adom []query.Const, env query.Valuation, forall bool) bool {
	if len(vars) == 0 {
		return body.eval(d, adom, env)
	}
	v, rest := vars[0], vars[1:]
	for _, c := range adom {
		env[v] = c
		ok := quantEval(rest, body, d, adom, env, forall)
		delete(env, v)
		if forall && !ok {
			return false
		}
		if !forall && ok {
			return true
		}
	}
	return forall
}

// Eval model-checks a closed formula over the database, with quantifiers
// ranging over the active domain. Exponential in quantifier depth; meant
// for validating rewritings on small instances, not for production
// evaluation (use Certain for that).
func Eval(f Formula, d *db.DB) bool {
	return f.eval(d, d.ActiveDomain(), query.Valuation{})
}

// Rewriting returns the consistent first-order rewriting of CERTAINTY(q)
// per the proof of Lemma 10, or an error when the attack graph of q is
// cyclic (no rewriting exists, by Theorem 2).
//
// Construction, one unattacked atom F = R(s̄ | t̄) at a time:
//
//	∃(new vars of F)( R(s̄ | t̄) ∧ ∀w̄( R(s̄ | w̄) → eqs(w̄) ∧ φ' ) )
//
// where w̄ are fresh variables for the non-key positions, eqs(w̄) restores
// the constants and repeated variables of t̄, and φ' is the rewriting of
// q \ {F} with each non-key variable renamed to its w. This mirrors
// Example 5 of the paper.
func Rewriting(q query.Query) (Formula, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return nil, err
	}
	if g.HasCycle() {
		return nil, fmt.Errorf("rewrite: attack graph of %s is cyclic; no first-order rewriting exists", q)
	}
	return RewritingAcyclic(q), nil
}

// RewritingAcyclic constructs the rewriting for a query already known to
// have an acyclic attack graph (for example from a cached
// classification), skipping the graph construction and cycle check that
// Rewriting performs. The result is meaningless on cyclic queries.
func RewritingAcyclic(q query.Query) Formula {
	used := q.Vars()
	return rewriteRec(q, make(query.VarSet), used, 0)
}

// freshVar returns a variable based on base that is not in used, priming
// it as needed (y, y', y”, ...), and records it in used.
func freshVar(base query.Var, used query.VarSet) query.Var {
	v := base
	for used.Has(v) {
		v += "'"
	}
	used.Add(v)
	return v
}

func rewriteRec(q query.Query, bound, used query.VarSet, depth int) Formula {
	if q.Empty() {
		return TrueF{}
	}
	// Choose an unattacked atom of the query with bound variables treated
	// as constants (they are instantiated by the time this subformula is
	// evaluated). Substituting placeholder constants implements that.
	inst := query.Valuation{}
	for v := range bound {
		inst[v] = query.Const("\x01" + string(v))
	}
	g, err := attack.BuildGraph(q.Substitute(inst))
	if err != nil {
		return FalseF{}
	}
	unattacked := g.Unattacked()
	if len(unattacked) == 0 {
		return FalseF{}
	}
	f := q.Atoms[unattacked[0]]
	rest := q.Remove(f)

	// New variables of F to quantify existentially.
	var exVars []query.Var
	seen := bound.Clone()
	for _, t := range f.Args {
		if t.IsVar() && !seen.Has(t.Var()) {
			seen.Add(t.Var())
			exVars = append(exVars, t.Var())
		}
	}

	// Universal part: fresh w-variables for the non-key positions
	// (primed copies of the original names, as in Example 5's y').
	keyVarsAfter := bound.Clone()
	for _, t := range f.KeyArgs() {
		if t.IsVar() {
			keyVarsAfter.Add(t.Var())
		}
	}

	var inner Formula
	if f.Rel.KeyLen == f.Rel.Arity {
		// The whole tuple is the key: blocks are singletons and the
		// universal part is vacuous.
		inner = AndF{Fs: []Formula{
			AtomF{Atom: f},
			rewriteRec(rest, keyVarsAfter, used, depth+1),
		}}
	} else {
		freshArgs := make([]query.Term, f.Rel.Arity)
		copy(freshArgs, f.KeyArgs())
		var wVars []query.Var
		var eqs []Formula
		rename := map[query.Var]query.Var{}
		for j, t := range f.NonKeyArgs() {
			base := query.Var("w")
			if t.IsVar() {
				base = t.Var()
			}
			w := freshVar(base, used)
			wVars = append(wVars, w)
			freshArgs[f.Rel.KeyLen+j] = query.V(w)
			switch {
			case t.IsConst():
				eqs = append(eqs, EqF{L: query.V(w), R: t})
			case keyVarsAfter.Has(t.Var()):
				// Variable also occurs in the key (or outer scope): the
				// block fact must repeat its value.
				eqs = append(eqs, EqF{L: query.V(w), R: t})
			case rename[t.Var()] != "":
				// Repeated non-key variable: equate with its first w.
				eqs = append(eqs, EqF{L: query.V(w), R: query.V(rename[t.Var()])})
			default:
				rename[t.Var()] = w
			}
		}
		restRenamed := rest.RenameVars(rename)
		newBound := keyVarsAfter.Clone()
		for _, w := range wVars {
			newBound.Add(w)
		}
		body := append(eqs, rewriteRec(restRenamed, newBound, used, depth+1))
		forall := ForallF{
			Vars: wVars,
			F: ImpliesF{
				L: AtomF{Atom: query.Atom{Rel: f.Rel, Args: freshArgs}},
				R: AndF{Fs: body},
			},
		}
		inner = AndF{Fs: []Formula{AtomF{Atom: f}, forall}}
	}
	if len(exVars) == 0 {
		return inner
	}
	return ExistsF{Vars: exVars, F: inner}
}
