package rewrite

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/trace"
)

// Eliminator is the compiled form of the Lemma 10 recursion for a query
// whose attack graph is acyclic: the atom-elimination order, fixed once
// per query pattern. The order is valid for every instantiation of the
// query because instantiating variables with constants never adds
// attacks (Lemma 6) — an atom unattacked at its step of the pattern
// recursion stays unattacked in every residue the data produces. With
// the order fixed, evaluation is pure data work: walk the atoms with a
// valuation, probe blocks by ground key where the key is instantiated,
// and never build an attack graph or allocate a substituted residue
// query.
//
// An Eliminator is immutable after Compile and safe for concurrent use;
// each evaluation carries its own valuation and memo table.
type Eliminator struct {
	query query.Query
	// order is the elimination order: order[0] is eliminated first.
	order []query.Atom
	// relevant[level] holds the variables occurring in order[level:],
	// sorted — the only bindings that can influence the sub-recursion at
	// that level, and therefore the memoization key.
	relevant [][]query.Var

	// Slot numbering for the interned (columnar) walk: every variable
	// of the query gets a dense slot in order of first occurrence down
	// the elimination order, so a valuation is a flat []sym.ID instead
	// of a map.
	vars          []query.Var
	varSlot       map[query.Var]int32
	relevantSlots [][]int32

	// ievalCache holds one warm interned evaluation state for reuse.
	// It is a strong reference (unlike the overflow pool below), so
	// the steady-state zero-allocation property survives the GC cycles
	// the benchmark driver forces between runs; concurrent evaluations
	// that miss the slot fall back to the pool.
	ievalCache atomic.Pointer[ieval]
	ievalPool  sync.Pool
}

// CompileEliminator builds the eliminator for q, or an error when the
// attack graph of q is cyclic (CERTAINTY(q) is not in FO there).
func CompileEliminator(q query.Query) (*Eliminator, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return nil, err
	}
	if g.HasCycle() {
		return nil, fmt.Errorf("rewrite: attack graph of %s is cyclic; CERTAINTY is not in FO", q)
	}
	return CompileAcyclic(q)
}

// CompileAcyclic builds the eliminator for a query already known to be
// acyclic (for example from a cached classification), skipping the
// cycle check. It mirrors the recursion of Rewriting: at each step the
// variables bound by earlier atoms are treated as constants — exactly
// the shape of the residue queries the data-side recursion produces —
// and the first unattacked atom is chosen.
func CompileAcyclic(q query.Query) (*Eliminator, error) {
	e := &Eliminator{query: q, order: make([]query.Atom, 0, q.Len())}
	bound := make(query.VarSet)
	residual := q
	for !residual.Empty() {
		inst := query.Valuation{}
		for v := range bound {
			inst[v] = query.Const("\x01" + string(v))
		}
		g, err := attack.BuildGraph(residual.Substitute(inst))
		if err != nil {
			return nil, err
		}
		unattacked := g.Unattacked()
		if len(unattacked) == 0 {
			return nil, fmt.Errorf("rewrite: no unattacked atom in residue %s of %s", residual, q)
		}
		f := residual.Atoms[unattacked[0]]
		e.order = append(e.order, f)
		for _, t := range f.Args {
			if t.IsVar() {
				bound.Add(t.Var())
			}
		}
		residual = residual.Remove(f)
	}
	e.relevant = make([][]query.Var, len(e.order))
	for level := len(e.order) - 1; level >= 0; level-- {
		seen := make(query.VarSet)
		for _, a := range e.order[level:] {
			for _, t := range a.Args {
				if t.IsVar() {
					seen.Add(t.Var())
				}
			}
		}
		e.relevant[level] = seen.Sorted()
	}
	e.varSlot = make(map[query.Var]int32)
	for _, a := range e.order {
		for _, t := range a.Args {
			if t.IsVar() {
				if _, ok := e.varSlot[t.Var()]; !ok {
					e.varSlot[t.Var()] = int32(len(e.vars))
					e.vars = append(e.vars, t.Var())
				}
			}
		}
	}
	e.relevantSlots = make([][]int32, len(e.order))
	for level, vs := range e.relevant {
		slots := make([]int32, len(vs))
		for i, v := range vs {
			slots[i] = e.varSlot[v]
		}
		e.relevantSlots[level] = slots
	}
	return e, nil
}

// Order returns the compiled elimination order (shared; do not modify).
func (e *Eliminator) Order() []query.Atom { return e.order }

// Certain decides CERTAINTY of the compiled query over the indexed
// database.
func (e *Eliminator) Certain(ix *match.Index) bool {
	ok, _ := e.CertainChecked(ix, nil, nil)
	return ok
}

// CertainWith decides certainty of the compiled query instantiated by
// the initial valuation (typically a candidate binding of free
// variables). Instantiation never adds attacks (Lemma 6), so the
// compiled order remains valid; initial is not modified.
func (e *Eliminator) CertainWith(ix *match.Index, initial query.Valuation) bool {
	ok, _ := e.CertainChecked(ix, initial, nil)
	return ok
}

// CertainChecked is CertainWith under a cancellation/budget checker: the
// walk polls chk once per recursion step and unwinds as soon as the
// checker trips. A non-nil error means the evaluation was cut short and
// the boolean is meaningless — callers must check the error first. A
// nil checker enforces nothing.
//
// The walk runs on the database's columnar view — interned constants,
// flat slot valuations, contiguous block spans, zero steady-state
// allocations — whenever every relation of the query is regular there;
// irregular data falls back to the row-oriented walk below, which is
// also the reference implementation the differential tests compare
// against.
func (e *Eliminator) CertainChecked(ix *match.Index, initial query.Valuation, chk *evalctx.Checker) (bool, error) {
	if res, ok, err := e.certainInterned(ix, initial, chk); ok {
		return res, err
	}
	return e.certainRowChecked(ix, initial, chk)
}

// certainRowChecked is the row-oriented walk: valuations as maps, memo
// keys as strings, blocks as []Fact. Kept as the fallback for
// irregular relations and as the comparison baseline.
func (e *Eliminator) certainRowChecked(ix *match.Index, initial query.Valuation, chk *evalctx.Checker) (bool, error) {
	ev := &elimEval{e: e, ix: ix, memo: make(map[string]bool), chk: chk, memoCap: chk.MemoCap()}
	val := make(query.Valuation, len(initial))
	for v, c := range initial {
		val[v] = c
	}
	sp := chk.Tracer().Begin(trace.StageEliminator)
	res := ev.run(0, val)
	sp.End()
	ev.flushCounters()
	if err := chk.Err(); err != nil {
		return false, err
	}
	return res, nil
}

// CertainOverBlocks is CertainChecked with the top level of the walk
// restricted to the supplied blocks, which must all belong to the first
// elimination atom's relation. The Lemma 10 top level is an existential
// over the blocks of that relation — some block must pass the Lemma 9
// test — so a caller that partitions the relation's blocks can evaluate
// each part independently and OR the results: the partition's union
// decides exactly what CertainChecked decides. This is the per-shard
// task of the scatter-gather path. Blocks whose key does not unify with
// the atom's key pattern contribute false, so a partition containing
// non-matching blocks is harmless.
func (e *Eliminator) CertainOverBlocks(ix *match.Index, blocks []db.Block, chk *evalctx.Checker) (bool, error) {
	ev := &elimEval{e: e, ix: ix, memo: make(map[string]bool), chk: chk, memoCap: chk.MemoCap()}
	val := query.Valuation{}
	f := e.order[0]
	sp := chk.Tracer().Begin(trace.StageEliminator)
	res := false
	for _, b := range blocks {
		if len(b.Facts) == 0 {
			continue
		}
		if ev.chk.Step() != nil {
			break
		}
		ev.trSteps++
		if ev.blockCertain(0, f, b, val) {
			res = true
			break
		}
	}
	sp.End()
	ev.flushCounters()
	if err := chk.Err(); err != nil {
		return false, err
	}
	return res, nil
}

// SweepableFree reports whether the certain-answers block sweep applies
// to the given free variables: every free variable occurs among the key
// arguments of the first elimination atom, and every key argument of
// that atom is a constant or a free variable. Under this condition each
// candidate binding grounds the atom's whole key, so the one block that
// can witness the binding is the block the binding was read from — the
// sweep enumerates candidates and decides them in a single pass over
// the relation's blocks, with no join enumeration and no per-candidate
// block probe. Distinct blocks yield distinct bindings, so the sweep
// needs no dedup and partitions exactly like the blocks themselves.
func (e *Eliminator) SweepableFree(free []query.Var) bool {
	if len(e.order) == 0 {
		return false
	}
	keyVars := make(query.VarSet)
	for _, t := range e.order[0].KeyArgs() {
		if t.IsVar() {
			keyVars.Add(t.Var())
		}
	}
	freeSet := query.NewVarSet(free...)
	for _, v := range free {
		if !keyVars.Has(v) {
			return false
		}
	}
	for v := range keyVars {
		if !freeSet.Has(v) {
			return false
		}
	}
	return true
}

// SweepBlocks runs the certain-answers block sweep over the supplied
// blocks of the first elimination atom's relation (see SweepableFree
// for when it applies): for each block, the candidate binding of the
// free variables is read off the block key, the block is put through
// the Lemma 9 test under that binding, and the bindings whose
// instantiated query is certain are returned in block order. The memo
// table is shared across the whole sweep — bindings eliminated from the
// residue's relevant set let distinct candidates share entries. A
// non-nil error means the sweep was cut short and the slice is
// meaningless.
func (e *Eliminator) SweepBlocks(ix *match.Index, blocks []db.Block, free []query.Var, chk *evalctx.Checker) ([]query.Valuation, error) {
	ev := &elimEval{e: e, ix: ix, memo: make(map[string]bool), chk: chk, memoCap: chk.MemoCap()}
	f := e.order[0]
	freeSet := query.NewVarSet(free...)
	val := query.Valuation{}
	var out []query.Valuation
	sp := chk.Tracer().Begin(trace.StageEliminator)
	for _, b := range blocks {
		if len(b.Facts) == 0 {
			continue
		}
		if ev.chk.Step() != nil {
			break
		}
		ev.trSteps++
		added, ok := unifyUndo(f.KeyArgs(), b.Facts[0].Key(), val)
		if !ok {
			continue
		}
		if ev.blockCertain(0, f, b, val) && ev.chk.Err() == nil {
			out = append(out, val.Restrict(freeSet))
		}
		undoBindings(val, added)
	}
	sp.End()
	ev.flushCounters()
	if err := chk.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// elimEval is one evaluation of an Eliminator: a shared valuation
// extended and undone in place down the elimination order, and a memo
// table keyed by (level, relevant bindings). The checker's sticky error
// aborts the walk: once it trips, run returns false all the way up and
// the caller surfaces the error instead of the boolean.
type elimEval struct {
	e       *Eliminator
	ix      *match.Index
	memo    map[string]bool
	chk     *evalctx.Checker
	memoCap int // memo-entry ceiling (0 = unlimited)
	// Effort counters for the stage tracer, kept as plain ints on the
	// single-goroutine walk and flushed once at the end.
	trSteps, trHits, trMisses int64
}

// flushCounters pushes the walk's effort counters to the stage tracer.
func (ev *elimEval) flushCounters() {
	tr := ev.chk.Tracer()
	if tr == nil {
		return
	}
	tr.Add(trace.StageEliminator, trace.CtrSteps, ev.trSteps)
	tr.Add(trace.StageEliminator, trace.CtrMemoHits, ev.trHits)
	tr.Add(trace.StageEliminator, trace.CtrMemoMisses, ev.trMisses)
}

func (ev *elimEval) run(level int, val query.Valuation) bool {
	if ev.chk.Step() != nil {
		return false
	}
	ev.trSteps++
	if level == len(ev.e.order) {
		return true
	}
	key := ev.memoKey(level, val)
	if v, ok := ev.memo[key]; ok {
		ev.trHits++
		return v
	}
	ev.trMisses++
	res := ev.eval(level, val)
	// Never memoize under a tripped checker (the result is a truncated
	// evaluation, not the real answer) or past the memo budget (bounded
	// memory beats bounded time here: the walk stays correct, it just
	// recomputes).
	if ev.chk.Err() == nil && (ev.memoCap <= 0 || len(ev.memo) < ev.memoCap) {
		ev.memo[key] = res
	}
	return res
}

// memoKey identifies the residue at the given level: the level itself
// (fixing the remaining atom pattern) plus the bindings of the variables
// occurring in the remaining atoms. Bindings of already-eliminated
// variables cannot influence the result and are excluded, which is what
// lets distinct branches share memo entries.
func (ev *elimEval) memoKey(level int, val query.Valuation) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(level))
	for _, v := range ev.e.relevant[level] {
		if c, ok := val[v]; ok {
			b.WriteByte('\x00')
			b.WriteString(string(v))
			b.WriteByte('\x01')
			b.WriteString(string(c))
		}
	}
	return b.String()
}

func (ev *elimEval) eval(level int, val query.Valuation) bool {
	f := ev.e.order[level]
	// Ground-key fast path: when every key position of F is instantiated
	// there is at most one candidate block — one hash probe instead of a
	// scan over every block of the relation.
	keyGround := true
	keyConsts := make([]query.Const, f.Rel.KeyLen)
	for i, t := range f.KeyArgs() {
		c, ok := val.Apply(t)
		if !ok {
			keyGround = false
			break
		}
		keyConsts[i] = c
	}
	if keyGround {
		b, ok := ev.ix.DB.BlockByKey(f.Rel.Name, keyConsts)
		if !ok {
			return false
		}
		return ev.blockCertain(level, f, b, val)
	}
	for _, b := range ev.ix.DB.BlocksOf(f.Rel.Name) {
		if len(b.Facts) == 0 {
			continue
		}
		if ev.blockCertain(level, f, b, val) {
			return true
		}
	}
	return false
}

// blockCertain implements the Lemma 9 test for one block: the key
// pattern of F must match the block's key and every fact of the block
// must match the non-key pattern and leave a certain residue. The
// valuation is extended in place and restored before returning.
func (ev *elimEval) blockCertain(level int, f query.Atom, b db.Block, val query.Valuation) bool {
	keyAdded, ok := unifyUndo(f.KeyArgs(), b.Facts[0].Key(), val)
	if !ok {
		return false
	}
	good := true
	for _, fact := range b.Facts {
		nonKeyAdded, ok := unifyUndo(f.NonKeyArgs(), fact.NonKey(), val)
		if !ok {
			good = false
			break
		}
		res := ev.run(level+1, val)
		undoBindings(val, nonKeyAdded)
		if !res {
			good = false
			break
		}
	}
	undoBindings(val, keyAdded)
	return good
}

// unifyUndo extends val so the terms map onto the constants, returning
// the variables newly bound (for undo). On failure the bindings it made
// are already removed and val is unchanged.
func unifyUndo(terms []query.Term, consts []query.Const, val query.Valuation) ([]query.Var, bool) {
	var added []query.Var
	for i, t := range terms {
		c := consts[i]
		if t.IsConst() {
			if t.Const() != c {
				undoBindings(val, added)
				return nil, false
			}
			continue
		}
		v := t.Var()
		if bound, ok := val[v]; ok {
			if bound != c {
				undoBindings(val, added)
				return nil, false
			}
			continue
		}
		val[v] = c
		added = append(added, v)
	}
	return added, true
}

func undoBindings(val query.Valuation, vars []query.Var) {
	for _, v := range vars {
		delete(val, v)
	}
}
