// Package evalctx carries cooperative cancellation and resource budgets
// through the evaluation engines. The trichotomy of Koutris & Wijsen
// (PODS 2015, Theorem 1) guarantees coNP-complete queries, whose exact
// evaluation can take exponential time on adversarial instances — and
// even the polynomial engines deserve enforced ceilings under heavy
// traffic. A Checker bundles a context.Context with a step budget and a
// memo-size cap; engines call Step() once per unit of search work and
// unwind with the checker's sticky error when the deadline passes or
// the budget runs out.
//
// Step amortizes its cost: it bumps a local counter and only polls the
// context (and the step budget, and the fault-injection hook) every
// Interval steps, keeping the overhead of a fully-plumbed engine within
// noise of the unplumbed one. A nil *Checker is valid everywhere and
// enforces nothing, so engine entry points that predate cancellation
// simply pass nil.
package evalctx

import (
	"context"
	"errors"
	"sync/atomic"

	"cqa/internal/faultinject"
	"cqa/internal/trace"
)

// ErrBudgetExceeded is the sticky error of an evaluation that ran out
// of its step budget (Limits.MaxSteps). Callers distinguish it from
// context errors to degrade gracefully — e.g. falling back to sampled
// approximation — rather than report a timeout.
var ErrBudgetExceeded = errors.New("evalctx: evaluation step budget exceeded")

// DefaultInterval is the number of Step calls between context polls.
// 1<<10 keeps the check overhead well under 1% of the cheapest step
// (a map probe) while bounding cancellation latency to ~microseconds
// of engine work.
const DefaultInterval = 1 << 10

// Limits are the resource ceilings of one evaluation.
type Limits struct {
	// MaxSteps bounds the total engine steps (shared across Forks);
	// <= 0 means unlimited.
	MaxSteps int64
	// MemoCap bounds the number of memoization entries an engine may
	// retain; <= 0 means unlimited. Exhaustion is not an error: engines
	// stop inserting and keep computing, trading time for bounded memory.
	MemoCap int
	// Interval overrides the steps-per-poll amortization window;
	// <= 0 selects DefaultInterval.
	Interval int
}

// Checker is the per-evaluation cancellation and budget monitor. It is
// single-goroutine: each worker of a pool takes its own Fork, which
// shares the context and the step budget but keeps a private poll
// counter. The zero of *Checker (nil) enforces nothing.
type Checker struct {
	ctx      context.Context
	interval int64
	n        int64         // steps since the last poll
	steps    *atomic.Int64 // total polled steps, shared across Forks
	maxSteps int64
	memoCap  int
	tr       *trace.Tracer // nil unless the request opted into tracing
	err      error
}

// New returns a checker for ctx under the given limits, or nil when
// there is nothing to enforce (a context that can never be cancelled
// and no budgets) — so the unlimited path stays literally free.
func New(ctx context.Context, lim Limits) *Checker {
	return NewTraced(ctx, lim, nil)
}

// NewTraced is New with a stage tracer attached: the checker becomes
// the vehicle that carries the tracer into the engines, which already
// receive a checker everywhere. Unlike New, a non-nil tracer forces a
// non-nil checker even with nothing to enforce — the engines read the
// tracer off the checker they are handed.
func NewTraced(ctx context.Context, lim Limits, tr *trace.Tracer) *Checker {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && lim.MaxSteps <= 0 && lim.MemoCap <= 0 && tr == nil {
		return nil
	}
	interval := int64(lim.Interval)
	if interval <= 0 {
		interval = DefaultInterval
	}
	// A budget below the amortization window would be invisible: the
	// counter flushes only once per window, so an evaluation could spend
	// the whole window before the first budget poll. Tighten the window
	// to the budget so small budgets trip precisely.
	if lim.MaxSteps > 0 && lim.MaxSteps < interval {
		interval = lim.MaxSteps
		if interval < 1 {
			interval = 1
		}
	}
	return &Checker{
		ctx:      ctx,
		interval: interval,
		steps:    new(atomic.Int64),
		maxSteps: lim.MaxSteps,
		memoCap:  lim.MemoCap,
		tr:       tr,
	}
}

// Fork returns a checker for another goroutine of the same evaluation:
// same context, same shared step budget, private poll counter. Fork of
// nil is nil.
func (c *Checker) Fork() *Checker {
	if c == nil {
		return nil
	}
	return &Checker{
		ctx:      c.ctx,
		interval: c.interval,
		steps:    c.steps,
		maxSteps: c.maxSteps,
		memoCap:  c.memoCap,
		tr:       c.tr,
	}
}

// ForkWith is Fork bound to a different context: the returned checker
// shares the step budget, memo cap, and tracer of c but polls ctx
// instead of c's context. The shard coordinator uses it to give each
// per-shard evaluation a cancellable sub-context (so an early-exit
// merge can stop the straggler shards) while the whole scatter still
// draws from one request budget. ForkWith of a nil checker returns a
// checker enforcing only ctx, or nil when ctx can never be cancelled.
func (c *Checker) ForkWith(ctx context.Context) *Checker {
	if c == nil {
		return New(ctx, Limits{})
	}
	if ctx == nil {
		return c.Fork()
	}
	f := c.Fork()
	f.ctx = ctx
	return f
}

// Step records one unit of engine work. Every Interval steps it polls
// the context, the shared step budget, and the "evalctx.poll" fault
// hook; the first failure becomes the checker's sticky error, returned
// from then on. Engines must propagate a non-nil return immediately —
// a cancelled evaluation's boolean is meaningless.
func (c *Checker) Step() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n < c.interval {
		return nil
	}
	return c.poll()
}

// poll is the slow path of Step, also used directly at coarse-grained
// checkpoints (e.g. once per sampled repair).
func (c *Checker) poll() error {
	if c.err != nil {
		return c.err
	}
	n := c.n
	c.n = 0
	fail := func(err error) error {
		c.err = err
		// Collapse the amortization window so every subsequent Step
		// polls and returns the sticky error immediately.
		c.interval = 0
		return err
	}
	if err := c.ctx.Err(); err != nil {
		return fail(err)
	}
	if err := faultinject.Fire("evalctx.poll"); err != nil {
		return fail(err)
	}
	total := c.steps.Add(n)
	if c.maxSteps > 0 && total > c.maxSteps {
		return fail(ErrBudgetExceeded)
	}
	return nil
}

// Check polls immediately, bypassing the amortization window. Use it at
// checkpoints that are already coarse (a sample, a block branch) where
// the amortized Step would react too slowly.
func (c *Checker) Check() error {
	if c == nil {
		return nil
	}
	c.n++
	return c.poll()
}

// Charge adds n pre-counted steps to the shared budget — the remote
// analogue of Step for work that was executed elsewhere and reported
// back in bulk (a cluster node returns the steps it spent; the router
// charges them here so fan-out and retries cannot multiply a request's
// budget). Unlike Step there is no amortization: the caller already
// paid the round trip, one atomic add is noise. Exceeding the budget
// sets the sticky error exactly as a poll would.
func (c *Checker) Charge(n int64) error {
	if c == nil || n <= 0 {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	total := c.steps.Add(n)
	if c.maxSteps > 0 && total > c.maxSteps {
		c.err = ErrBudgetExceeded
		c.interval = 0
		return c.err
	}
	return nil
}

// Remaining returns the unspent step budget and whether a budget is
// enforced at all. A router forwards the remaining budget — not the
// original — to each remote attempt, so retries and hedges keep drawing
// from the one request budget.
func (c *Checker) Remaining() (int64, bool) {
	if c == nil || c.maxSteps <= 0 {
		return 0, false
	}
	rem := c.maxSteps - c.steps.Load()
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// Err returns the sticky error: non-nil once a poll has failed.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

// MemoCap returns the memo-entry ceiling (0 = unlimited).
func (c *Checker) MemoCap() int {
	if c == nil {
		return 0
	}
	return c.memoCap
}

// Tracer returns the stage tracer riding on this checker, or nil. The
// engines call it once per entry point, never per step; a nil result
// composes with the nil-safe trace API so uninstrumented requests pay
// one pointer read.
func (c *Checker) Tracer() *trace.Tracer {
	if c == nil {
		return nil
	}
	return c.tr
}

// Steps returns the total steps accounted so far across all Forks (a
// lower bound: steps since a fork's last poll are not yet added).
func (c *Checker) Steps() int64 {
	if c == nil {
		return 0
	}
	return c.steps.Load()
}
