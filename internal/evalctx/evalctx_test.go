package evalctx

import (
	"context"
	"errors"
	"testing"

	"cqa/internal/faultinject"
	"cqa/internal/trace"
)

func TestNilCheckerEnforcesNothing(t *testing.T) {
	var c *Checker
	for i := 0; i < 10_000; i++ {
		if err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Err() != nil || c.Check() != nil || c.MemoCap() != 0 || c.Steps() != 0 || c.Fork() != nil {
		t.Fatal("nil checker must be inert")
	}
}

func TestNewReturnsNilWhenNothingToEnforce(t *testing.T) {
	if c := New(context.Background(), Limits{}); c != nil {
		t.Fatalf("got %+v, want nil", c)
	}
	if c := New(nil, Limits{}); c != nil {
		t.Fatalf("nil ctx: got %+v, want nil", c)
	}
	if New(context.Background(), Limits{MaxSteps: 1}) == nil {
		t.Fatal("budgeted checker must not be nil")
	}
}

func TestCancellationIsStickyAndAmortized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{Interval: 4})
	cancel()
	// The first steps inside the window pass; the poll at the window edge
	// observes the cancellation and the error sticks.
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		err = c.Step()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if !errors.Is(c.Err(), context.Canceled) || !errors.Is(c.Step(), context.Canceled) {
		t.Fatal("cancellation must be sticky")
	}
}

func TestStepBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxSteps: 10, Interval: 4})
	var err error
	steps := 0
	for steps < 1000 && err == nil {
		steps++
		err = c.Step()
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v after %d steps, want ErrBudgetExceeded", err, steps)
	}
	if steps > 16 {
		t.Fatalf("budget of 10 (interval 4) detected only after %d steps", steps)
	}
}

func TestForkSharesBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxSteps: 100, Interval: 10})
	f := c.Fork()
	exhaust := func(ch *Checker) error {
		for i := 0; i < 80; i++ {
			if err := ch.Step(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := exhaust(c); err != nil {
		t.Fatalf("first 80 steps must fit: %v", err)
	}
	if err := exhaust(f); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("fork must see the shared budget: %v", err)
	}
	if c.MemoCap() != f.MemoCap() {
		t.Fatal("fork must inherit limits")
	}
}

func TestCheckPollsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	cancel()
	if err := c.Check(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check after cancel: %v", err)
	}
}

func TestFaultHookBecomesSticky(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("boom")
	faultinject.Set("evalctx.poll", func(int) error { return boom })
	c := New(context.Background(), Limits{MaxSteps: 1 << 40, Interval: 2})
	var err error
	for i := 0; i < 4 && err == nil; i++ {
		err = c.Step()
	}
	if !errors.Is(err, boom) || !errors.Is(c.Err(), boom) {
		t.Fatalf("fault not propagated: %v / %v", err, c.Err())
	}
}

func TestMemoCap(t *testing.T) {
	c := New(context.Background(), Limits{MemoCap: 7})
	if c.MemoCap() != 7 {
		t.Fatalf("MemoCap = %d", c.MemoCap())
	}
	if err := c.Step(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStep(b *testing.B) {
	c := New(context.Background(), Limits{MaxSteps: int64(b.N) + 1<<32})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepNil(b *testing.B) {
	var c *Checker
	for i := 0; i < b.N; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewTracedCarriesTracer(t *testing.T) {
	tr := trace.New()
	// A tracer alone must force a non-nil checker: it is the vehicle that
	// carries the tracer into the engines.
	c := NewTraced(context.Background(), Limits{}, tr)
	if c == nil {
		t.Fatal("NewTraced with a tracer returned nil")
	}
	if c.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}
	if f := c.Fork(); f.Tracer() != tr {
		t.Fatal("Fork dropped the tracer")
	}
	// Without a tracer or limits, NewTraced stays free like New.
	if c := NewTraced(context.Background(), Limits{}, nil); c != nil {
		t.Fatalf("NewTraced(bg, zero, nil) = %v, want nil", c)
	}
	var nilChk *Checker
	if nilChk.Tracer() != nil {
		t.Fatal("nil checker must report a nil tracer")
	}
}
