package conp

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCertainBasic(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, `
		R(a | b)
		R(a | c)
	`)
	// Every repair contains exactly one R(a | _) fact, so q is certain.
	got, _ := Certain(q, d)
	if !got {
		t.Errorf("q should be certain on %s", d)
	}
}

func TestCertainFalsifiable(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		R(a | dead)
		S(b | c)
	`)
	// The repair choosing R(a | dead) falsifies q.
	got, _ := Certain(q, d)
	if got {
		t.Errorf("q should not be certain on %s", d)
	}
	repair, found, _ := FalsifyingRepair(q, d)
	if !found {
		t.Fatal("expected a falsifying repair")
	}
	r := db.FromFacts(repair...)
	if match.Satisfies(q, r) {
		t.Errorf("returned repair %v satisfies q", repair)
	}
	// The repair must be a complete, consistent selection: one fact per
	// block of d.
	if !db.ConsistentSet(repair) {
		t.Errorf("falsifying repair is inconsistent: %v", repair)
	}
	if len(repair) != d.NumBlocks() {
		t.Errorf("repair covers %d blocks, db has %d", len(repair), d.NumBlocks())
	}
}

func TestEmptyQueryAndEmptyDB(t *testing.T) {
	empty := query.MustParse("")
	d := factsDB(t, "R(a | b)")
	if got, _ := Certain(empty, d); !got {
		t.Errorf("empty query must be certain")
	}
	q := query.MustParse("R(x | y)")
	if got, _ := Certain(q, db.New()); got {
		t.Errorf("non-empty query on empty db must not be certain")
	}
}

// TestNonKeyJoinHardQuery pins the classic coNP-complete query down on a
// crafted instance where certainty fails only through a global choice.
func TestNonKeyJoinHardQuery(t *testing.T) {
	q := workload.NonKeyJoinQuery() // R(x | y), S(u | y)
	d := factsDB(t, `
		R(x1 | a)
		R(x1 | b)
		S(u1 | a)
		S(u2 | b)
	`)
	// Repair {R(x1,a), S(u1,a), S(u2,b)}: satisfied via y=a.
	// Repair {R(x1,b), ...}: satisfied via y=b. So certain.
	if got, _ := Certain(q, d); !got {
		t.Errorf("expected certain")
	}
	d.Add(db.Fact{Rel: d.Facts()[0].Rel, Args: []query.Const{"x1", "c"}})
	// Now the repair choosing R(x1, c) has no matching S-fact.
	if got, _ := Certain(q, d); got {
		t.Errorf("expected not certain after adding R(x1 | c)")
	}
}

// TestDifferentialVsNaive cross-checks the DPLL engine against the
// brute-force oracle on random queries and databases.
func TestDifferentialVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<14 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := Certain(q, d)
		if got != want {
			t.Fatalf("conp=%v naive=%v\nq = %s\ndb:\n%s", got, want, q, d)
		}
	}
}

// TestDifferentialHardInstances cross-checks on the SAT-gadget generator.
func TestDifferentialHardInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	q := workload.NonKeyJoinQuery()
	for trial := 0; trial < 100; trial++ {
		d := workload.HardInstance(rng, 1+rng.Intn(4), 1+rng.Intn(4), 2)
		if d.NumRepairs() > 1<<14 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := Certain(q, d)
		if got != want {
			t.Fatalf("conp=%v naive=%v on hard instance\n%s", got, want, d)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(5))
	d := workload.HardInstance(rng, 4, 4, 2)
	_, stats := Certain(q, d)
	if stats.Matches == 0 && d.Len() > 0 {
		// Some instances may purify to nothing; accept either, but the
		// search must at least have counted blocks or matches coherently.
		if stats.Blocks != 0 {
			t.Errorf("blocks without matches: %+v", stats)
		}
	}
}
