// Package conp implements an exact solver for CERTAINTY(q) based on a
// search for a falsifying repair. Certainty fails iff one can pick one
// fact per block such that no embedding of q survives; that is a
// multi-valued constraint-satisfaction problem with one variable per block
// (domain: the facts of the block) and one "not all chosen" constraint per
// embedding of q into db.
//
// The solver runs DPLL-style backtracking with violation pruning and a
// most-constrained-block ordering. It is exponential in the worst case —
// necessarily so for the coNP-complete queries of Theorem 3 (unless
// P = NP) — but it is exact for every query and doubles as a
// cross-checking engine for the polynomial-time cases.
package conp

import (
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/trace"
)

// Stats reports search effort.
type Stats struct {
	Blocks    int // decision variables after purification
	Matches   int // constraints
	Decisions int // assignments explored
	Backtrack int // failed subtrees
}

// Certain reports whether every repair of d satisfies q. The returned
// Stats describe the search.
func Certain(q query.Query, d *db.DB) (bool, Stats) {
	_, found, stats := FalsifyingRepair(q, d)
	return !found, stats
}

// CertainChecked is Certain under a cancellation/budget checker: the
// exponential repair search — the dangerous path for the coNP-complete
// queries of Theorem 3 — polls chk once per search node and unwinds as
// soon as it trips. A non-nil error means the search was cut short and
// the boolean is meaningless. A nil checker enforces nothing.
func CertainChecked(q query.Query, d *db.DB, chk *evalctx.Checker) (bool, Stats, error) {
	_, found, stats, err := FalsifyingRepairChecked(q, d, chk)
	return !found, stats, err
}

// CertainNoPurify is Certain with Lemma 1 purification disabled; the
// search then runs over every block of the input. Exists for the E9
// ablation experiment — results are identical, only effort differs.
func CertainNoPurify(q query.Query, d *db.DB) (bool, Stats) {
	var stats Stats
	if q.Empty() {
		return true, stats
	}
	pd := d.Filter(func(f db.Fact) bool { return q.HasRel(f.Rel.Name) })
	matches := match.AllMatches(q, pd)
	stats.Matches = len(matches)
	if len(matches) == 0 {
		return false, stats
	}
	s := newSearch(q, pd, matches)
	stats.Blocks = len(s.blocks)
	return !s.solve(&stats), stats
}

// FalsifyingRepair searches for a repair of d that falsifies q. The
// boolean result reports whether one exists; when it does, the returned
// facts form a complete repair of d (one fact per block) that does not
// satisfy q. Blocks removed by purification are completed with the
// irrelevant witness facts from the purification trace, in reverse
// removal order, which preserves falsification.
func FalsifyingRepair(q query.Query, d *db.DB) ([]db.Fact, bool, Stats) {
	repair, found, stats, _ := FalsifyingRepairChecked(q, d, nil)
	return repair, found, stats
}

// FalsifyingRepairChecked is FalsifyingRepair under a cancellation/
// budget checker. On a non-nil error the search was abandoned mid-way:
// the repair is nil and the boolean meaningless.
func FalsifyingRepairChecked(q query.Query, d *db.DB, chk *evalctx.Checker) ([]db.Fact, bool, Stats, error) {
	var stats Stats
	if q.Empty() {
		return nil, false, stats, nil // the empty query is true in every repair
	}
	pd, ptrace, err := match.PurifyTraceChecked(q, d, chk)
	if err != nil {
		return nil, false, stats, err
	}
	matches, err := match.AllMatchesChecked(q, pd, chk)
	if err != nil {
		return nil, false, stats, err
	}
	stats.Matches = len(matches)

	var repair []db.Fact
	found := false
	if len(matches) == 0 {
		// No embedding inside the purified database: every repair of it
		// falsifies q. Take the first fact of each remaining block.
		found = true
		for _, b := range pd.Blocks() {
			repair = append(repair, b.Facts[0])
		}
	} else {
		s := newSearch(q, pd, matches)
		s.chk = chk
		stats.Blocks = len(s.blocks)
		sp := chk.Tracer().Begin(trace.StageCoNP)
		found = s.solve(&stats)
		sp.End()
		if err := chk.Err(); err != nil {
			flushStats(chk.Tracer(), stats)
			return nil, false, stats, err
		}
		if found {
			repair = s.repair()
		}
	}
	flushStats(chk.Tracer(), stats)
	if !found {
		return nil, false, stats, nil
	}
	// Complete the repair across purified-away blocks, newest removal
	// first: each witness was irrelevant with respect to everything added
	// so far, so it cannot close an embedding.
	for i := len(ptrace) - 1; i >= 0; i-- {
		repair = append(repair, ptrace[i].Witness)
	}
	return repair, true, stats, nil
}

// flushStats reports the search effort to the stage tracer: DPLL
// decisions are search nodes, failed subtrees are restarts.
func flushStats(tr *trace.Tracer, stats Stats) {
	if tr == nil {
		return
	}
	tr.Add(trace.StageCoNP, trace.CtrNodes, int64(stats.Decisions))
	tr.Add(trace.StageCoNP, trace.CtrRestarts, int64(stats.Backtrack))
	tr.Add(trace.StageCoNP, trace.CtrFacts, int64(stats.Blocks))
	tr.Add(trace.StageCoNP, trace.CtrMatches, int64(stats.Matches))
}

type search struct {
	// chk aborts the enumeration when its context is cancelled or its
	// step budget runs out; solveRec's boolean is meaningless once the
	// checker has tripped (the caller surfaces chk.Err() instead).
	chk   *evalctx.Checker
	facts []db.Fact // all facts of the purified db
	// blocks[b] lists fact indices of block b.
	blocks [][]int
	// blockOf[f] is the block index of fact f.
	blockOf []int
	// constraints[c] lists the fact indices of embedding c; each
	// constraint forbids choosing all of its facts simultaneously.
	constraints [][]int
	// inConstraints[f] lists constraint indices containing fact f.
	inConstraints [][]int
	// forbidden[f] marks facts excluded from the repair under
	// construction (their block is committed to some other fact).
	forbidden []bool
	// forbCount[b] counts forbidden facts of block b; it must stay
	// strictly below len(blocks[b]).
	forbCount []int
	// dead[c] counts forbidden facts of constraint c; dead > 0 means the
	// embedding is blocked.
	dead []int
	// alive counts constraints with dead == 0 (not yet blocked).
	alive int
}

func newSearch(q query.Query, pd *db.DB, matches []query.Valuation) *search {
	s := &search{}
	factIdx := make(map[string]int)
	for _, f := range pd.Facts() {
		factIdx[f.ID()] = len(s.facts)
		s.facts = append(s.facts, f)
	}
	blockIdx := make(map[string]int)
	s.blockOf = make([]int, len(s.facts))
	for i, f := range s.facts {
		bid := f.BlockID()
		b, ok := blockIdx[bid]
		if !ok {
			b = len(s.blocks)
			blockIdx[bid] = b
			s.blocks = append(s.blocks, nil)
		}
		s.blocks[b] = append(s.blocks[b], i)
		s.blockOf[i] = b
	}
	s.inConstraints = make([][]int, len(s.facts))
	for _, v := range matches {
		ground, err := db.GroundQuery(q, v)
		if err != nil {
			continue
		}
		if !db.ConsistentSet(ground) {
			// An embedding that is internally inconsistent can never be
			// fully contained in a repair; drop the constraint.
			continue
		}
		seen := make(map[int]bool, len(ground))
		var c []int
		for _, f := range ground {
			fi, ok := factIdx[f.ID()]
			if !ok {
				// Embedding uses a purified-away fact; cannot happen since
				// matches were computed on the purified db.
				continue
			}
			if !seen[fi] {
				seen[fi] = true
				c = append(c, fi)
			}
		}
		ci := len(s.constraints)
		s.constraints = append(s.constraints, c)
		for _, fi := range c {
			s.inConstraints[fi] = append(s.inConstraints[fi], ci)
		}
	}
	s.forbidden = make([]bool, len(s.facts))
	s.forbCount = make([]int, len(s.blocks))
	s.dead = make([]int, len(s.constraints))
	s.alive = len(s.constraints)
	return s
}

// forbid excludes fact fi; the caller guarantees fi is not yet forbidden
// and that its block retains at least one candidate.
func (s *search) forbid(fi int) {
	s.forbidden[fi] = true
	s.forbCount[s.blockOf[fi]]++
	for _, ci := range s.inConstraints[fi] {
		if s.dead[ci] == 0 {
			s.alive--
		}
		s.dead[ci]++
	}
}

func (s *search) unforbid(fi int) {
	s.forbidden[fi] = false
	s.forbCount[s.blockOf[fi]]--
	for _, ci := range s.inConstraints[fi] {
		s.dead[ci]--
		if s.dead[ci] == 0 {
			s.alive++
		}
	}
}

// canForbid reports whether excluding fi keeps its block viable.
func (s *search) canForbid(fi int) bool {
	return !s.forbidden[fi] && s.forbCount[s.blockOf[fi]] < len(s.blocks[s.blockOf[fi]])-1
}

// chooseFact commits fi's block to fi by excluding every sibling; it
// returns the facts newly forbidden (for undo) and whether the commitment
// is possible (fi itself must not be forbidden).
func (s *search) chooseFact(fi int, trail []int) ([]int, bool) {
	if s.forbidden[fi] {
		return trail, false
	}
	for _, g := range s.blocks[s.blockOf[fi]] {
		if g == fi || s.forbidden[g] {
			continue
		}
		s.forbid(g)
		trail = append(trail, g)
	}
	return trail, true
}

func (s *search) solve(stats *Stats) bool {
	return s.solveRec(stats)
}

// repair returns one fact per block, avoiding forbidden facts; valid only
// after solve returned true.
func (s *search) repair() []db.Fact {
	out := make([]db.Fact, 0, len(s.blocks))
	for b, facts := range s.blocks {
		picked := -1
		for _, fi := range facts {
			if !s.forbidden[fi] {
				picked = fi
				break
			}
		}
		if picked == -1 {
			picked = facts[0] // unreachable: forbCount < len is invariant
		}
		_ = b
		out = append(out, s.facts[picked])
	}
	return out
}

// solveRec is an exclusion-based DPLL. A falsifying repair exists iff
// every embedding loses at least one fact while every block keeps at
// least one. While some constraint is alive, pick the one with the
// fewest facts and split its satisfaction into DISJOINT branches:
// branch i commits facts 1..i-1 to their blocks (they stay chosen) and
// excludes fact i. Any falsifier blocks the constraint at some first
// position, so exactly one branch covers it.
func (s *search) solveRec(stats *Stats) bool {
	if s.chk.Step() != nil {
		return false
	}
	if s.alive == 0 {
		return true
	}
	best := -1
	for ci := range s.constraints {
		if s.dead[ci] != 0 {
			continue
		}
		if best == -1 || len(s.constraints[ci]) < len(s.constraints[best]) {
			best = ci
		}
	}
	c := s.constraints[best]
	var trail []int
	ok := true
	for i, fi := range c {
		if ok && s.canForbid(fi) {
			stats.Decisions++
			s.forbid(fi)
			if s.solveRec(stats) {
				return true
			}
			s.unforbid(fi)
		}
		if i == len(c)-1 {
			break
		}
		// Commit fi for the remaining branches.
		trail, ok = s.chooseFact(fi, trail)
		if !ok {
			break
		}
	}
	for k := len(trail) - 1; k >= 0; k-- {
		s.unforbid(trail[k])
	}
	stats.Backtrack++
	return false
}
