package schema

import "testing"

func TestRelationValidate(t *testing.T) {
	good := Relation{Name: "R", Arity: 3, KeyLen: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
	for _, bad := range []Relation{
		{Name: "", Arity: 1, KeyLen: 1},
		{Name: "R", Arity: 0, KeyLen: 0},
		{Name: "R", Arity: 2, KeyLen: 0},
		{Name: "R", Arity: 2, KeyLen: 3},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid relation %v accepted", bad)
		}
	}
}

func TestNewRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRelation("R", 1, 2)
}

func TestModesAndString(t *testing.T) {
	r := NewRelation("R", 2, 1)
	c := NewConsistent("T", 2, 1)
	if r.Consistent() || !c.Consistent() {
		t.Error("mode accessors wrong")
	}
	if r.String() != "R[2,1]" || c.String() != "T#c[2,1]" {
		t.Errorf("String: %q, %q", r.String(), c.String())
	}
	if !r.SimpleKey() || NewRelation("S", 3, 2).SimpleKey() {
		t.Error("SimpleKey wrong")
	}
	if ModeI.String() != "i" || ModeC.String() != "c" {
		t.Error("Mode.String wrong")
	}
}

func TestSchemaAddLookup(t *testing.T) {
	s := NewSchema()
	r := NewRelation("R", 2, 1)
	if err := s.Add(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(r); err != nil {
		t.Errorf("re-adding identical relation should be fine: %v", err)
	}
	if err := s.Add(NewRelation("R", 3, 1)); err == nil {
		t.Error("conflicting declaration accepted")
	}
	got, ok := s.Lookup("R")
	if !ok || got != r {
		t.Error("lookup failed")
	}
	if _, ok := s.Lookup("Z"); ok {
		t.Error("phantom relation")
	}
	if s.Len() != 1 {
		t.Error("Len wrong")
	}
}

func TestRelationsSorted(t *testing.T) {
	s := NewSchema()
	s.MustAdd(NewRelation("Z", 1, 1))
	s.MustAdd(NewRelation("A", 1, 1))
	rels := s.Relations()
	if len(rels) != 2 || rels[0].Name != "A" || rels[1].Name != "Z" {
		t.Errorf("Relations = %v", rels)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewSchema()
	s.MustAdd(NewRelation("R", 1, 1))
	c := s.Clone()
	c.MustAdd(NewRelation("S", 1, 1))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("clone shares state")
	}
}

func TestFreshName(t *testing.T) {
	s := NewSchema()
	if s.FreshName("T") != "T" {
		t.Error("free prefix should be returned as-is")
	}
	s.MustAdd(NewRelation("T", 1, 1))
	n := s.FreshName("T")
	if n == "T" {
		t.Error("fresh name collides")
	}
	if _, ok := s.Lookup(n); ok {
		t.Error("fresh name already registered")
	}
}
