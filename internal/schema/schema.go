// Package schema defines relation names with signatures and modes.
//
// Following Koutris and Wijsen (PODS 2015), every relation name R has a
// signature [n, k]: arity n >= 1 and primary key {1, ..., k} with
// 1 <= k <= n. A relation is simple-key when k = 1. Every relation also
// carries a mode: mode i ("inconsistent") relations may violate their
// primary key in an uncertain database, while mode c ("consistent")
// relations are known to be consistent (Section 6.1 of the paper).
package schema

import (
	"fmt"
	"sort"
)

// Mode distinguishes relations that may be inconsistent (ModeI) from
// relations known to be consistent (ModeC).
type Mode int

const (
	// ModeI marks a relation whose instances may violate the primary key.
	ModeI Mode = iota
	// ModeC marks a relation whose instances are known to be consistent.
	ModeC
)

// String returns "i" or "c", mirroring the paper's notation.
func (m Mode) String() string {
	if m == ModeC {
		return "c"
	}
	return "i"
}

// Relation is a relation name with signature [Arity, KeyLen] and a mode.
// Relation is a small value type; two relations are the same if and only if
// all four fields are equal. Within one schema, names are unique.
type Relation struct {
	Name   string
	Arity  int
	KeyLen int
	Mode   Mode
}

// NewRelation returns a mode-i relation with signature [arity, keyLen].
// It panics if the signature is invalid; use Validate for error handling.
func NewRelation(name string, arity, keyLen int) Relation {
	r := Relation{Name: name, Arity: arity, KeyLen: keyLen, Mode: ModeI}
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// NewConsistent returns a mode-c relation with signature [arity, keyLen].
func NewConsistent(name string, arity, keyLen int) Relation {
	r := Relation{Name: name, Arity: arity, KeyLen: keyLen, Mode: ModeC}
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// Validate reports whether the relation has a well-formed signature:
// a nonempty name, arity >= 1, and 1 <= KeyLen <= Arity.
func (r Relation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if r.Arity < 1 {
		return fmt.Errorf("schema: relation %s has arity %d < 1", r.Name, r.Arity)
	}
	if r.KeyLen < 1 || r.KeyLen > r.Arity {
		return fmt.Errorf("schema: relation %s has key length %d outside [1, %d]",
			r.Name, r.KeyLen, r.Arity)
	}
	return nil
}

// SimpleKey reports whether the primary key consists of a single position.
func (r Relation) SimpleKey() bool { return r.KeyLen == 1 }

// Consistent reports whether the relation has mode c.
func (r Relation) Consistent() bool { return r.Mode == ModeC }

// String renders the relation as Name[arity,keyLen] with a "#c" suffix for
// mode-c relations, e.g. "R[2,1]" or "T#c[3,1]".
func (r Relation) String() string {
	suffix := ""
	if r.Mode == ModeC {
		suffix = "#c"
	}
	return fmt.Sprintf("%s%s[%d,%d]", r.Name, suffix, r.Arity, r.KeyLen)
}

// Schema is a finite set of relation names, keyed by name. The zero value
// is not ready to use; call NewSchema.
type Schema struct {
	rels map[string]Relation
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{rels: make(map[string]Relation)}
}

// Add registers a relation. It is an error to register two different
// relations under the same name; re-registering an identical relation is a
// no-op.
func (s *Schema) Add(r Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if old, ok := s.rels[r.Name]; ok {
		if old != r {
			return fmt.Errorf("schema: conflicting declarations for %s: %v vs %v", r.Name, old, r)
		}
		return nil
	}
	s.rels[r.Name] = r
	return nil
}

// MustAdd is Add but panics on error; intended for static declarations.
func (s *Schema) MustAdd(r Relation) {
	if err := s.Add(r); err != nil {
		panic(err)
	}
}

// Lookup returns the relation registered under name.
func (s *Schema) Lookup(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Len returns the number of registered relations.
func (s *Schema) Len() int { return len(s.rels) }

// Relations returns all registered relations sorted by name, for
// deterministic iteration.
func (s *Schema) Relations() []Relation {
	out := make([]Relation, 0, len(s.rels))
	for _, r := range s.rels {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clone returns an independent copy of the schema.
func (s *Schema) Clone() *Schema {
	c := NewSchema()
	for _, r := range s.rels {
		c.rels[r.Name] = r
	}
	return c
}

// FreshName returns a relation name with the given prefix that is not yet
// registered in the schema. It never returns the prefix itself unless the
// prefix is free.
func (s *Schema) FreshName(prefix string) string {
	if _, ok := s.rels[prefix]; !ok {
		return prefix
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		if _, ok := s.rels[name]; !ok {
			return name
		}
	}
}
