package markov

import (
	"testing"

	"cqa/internal/attack"
	"cqa/internal/query"
)

func edgeSet(m *Graph) map[string]bool {
	out := map[string]bool{}
	for _, e := range m.Edges() {
		out[string(e[0])+"->"+string(e[1])] = true
	}
	return out
}

// TestFigure2Markov reproduces the Markov graph of Example 7 / Figure 2
// (right): x -> {y, v, w}, v -> {w, y}, y -> {x}, w -> {v, y}.
func TestFigure2Markov(t *testing.T) {
	q := query.MustParse("R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)")
	m, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"x->y", "x->v", "x->w",
		"v->w", "v->y",
		"y->x",
		"w->v", "w->y",
	}
	got := edgeSet(m)
	for _, e := range want {
		if !got[e] {
			t.Errorf("missing Markov edge %s\ngraph:\n%s", e, m)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d edges, want %d:\n%s", len(got), len(want), m)
	}

	// Cq(x) = {R}, Cq(v) = {} as computed in Example 7.
	if len(m.Cq("x")) != 1 || m.Cq("x")[0].Rel.Name != "R" {
		t.Errorf("Cq(x) = %v", m.Cq("x"))
	}
	if len(m.Cq("v")) != 0 {
		t.Errorf("Cq(v) = %v, want empty", m.Cq("v"))
	}

	// Premier cycles: the text argues every cycle containing x or y is
	// premier, and v,w,v is premier too (x ->* v and K(q) |= v -> x).
	g, err := attack.BuildGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsPremier([]query.Var{"x", "y"}, g) {
		t.Errorf("cycle x,y should be premier")
	}
	if !m.IsPremier([]query.Var{"v", "w"}, g) {
		t.Errorf("cycle v,w should be premier (via x ->* v, K |= v -> x)")
	}
	c := m.PremierCycle(g)
	if c == nil {
		t.Fatal("no premier cycle found")
	}
	for _, y := range c {
		if len(m.Cq(y)) == 0 {
			t.Errorf("premier cycle %v passes through %s with empty Cq", c, y)
		}
	}
}

// TestExample9Markov reproduces Example 9: the Markov graph of the
// unsaturated Example 6 query is the path w -> x -> y -> z, and after
// adding the saturating atom S^c(y | z) the cycle x <-> w appears.
func TestExample9Markov(t *testing.T) {
	q := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x)")
	m, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"w->x": true, "x->y": true, "y->z": true}
	got := edgeSet(m)
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %s", e)
		}
	}
	if len(got) != len(want) {
		t.Errorf("Markov graph should be the path w->x->y->z, got:\n%s", m)
	}
	g, _ := attack.BuildGraph(q)
	if c := m.PremierCycle(g); c != nil {
		t.Errorf("unsaturated query should have no Markov cycle, got %v", c)
	}

	q2 := query.MustParse("R(x | y), S1(y | z), S2(y | z), T#c(x, z | w), U(w | x), Ssat#c(y | z)")
	m2, err := Build(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasEdge("x", "w") || !m2.HasEdge("w", "x") {
		t.Errorf("saturated query should have the cycle x <-> w:\n%s", m2)
	}
	g2, _ := attack.BuildGraph(q2)
	c := m2.PremierCycle(g2)
	if c == nil {
		t.Fatal("premier cycle expected after saturation (Example 9)")
	}
	vars := map[query.Var]bool{}
	for _, v := range c {
		vars[v] = true
	}
	if !vars["x"] || !vars["w"] || len(c) != 2 {
		t.Errorf("premier cycle = %v, want {x, w}", c)
	}
}

func TestBuildRejectsCompositeModeI(t *testing.T) {
	q := query.MustParse("R(x, y | z)")
	if _, err := Build(q); err == nil {
		t.Fatal("composite-key mode-i atom must be rejected")
	}
	// Composite keys are fine on mode-c atoms.
	if _, err := Build(query.MustParse("R(x | y), T#c(x, y | z)")); err != nil {
		t.Fatalf("mode-c composite key should be accepted: %v", err)
	}
}

func TestReaches(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	m, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Reaches("x", "z") {
		t.Error("x ->* z via x->y->z")
	}
	if m.Reaches("z", "x") {
		t.Error("z should not reach x")
	}
	if !m.Reaches("x", "x") {
		t.Error("every variable reaches itself")
	}
}

func TestShortenNoops(t *testing.T) {
	q := query.MustParse("R0(x | y), S0(y | x)")
	m, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Shorten([]query.Var{"x", "y"})
	if len(c) != 2 {
		t.Errorf("2-cycles cannot shorten, got %v", c)
	}
}

// TestShortenExample15 checks the Section 6.5 normalization on
// Example 15: the 3-cycle x0, x1, x2 shortens because x0 ∈ X1 =
// vars(Cq(x1)) = {x1, x2, x0}.
func TestShortenExample15(t *testing.T) {
	q := query.MustParse("R(x0 | x1), S(x1 | x2, x0), V(x2 | x0)")
	m, err := Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// Markov cycle x0 -> x1 -> x2 -> x0 exists.
	for _, e := range [][2]query.Var{{"x0", "x1"}, {"x1", "x2"}, {"x2", "x0"}} {
		if !m.HasEdge(e[0], e[1]) {
			t.Fatalf("missing Markov edge %s -> %s", e[0], e[1])
		}
	}
	got := m.Shorten([]query.Var{"x0", "x1", "x2"})
	if len(got) >= 3 {
		t.Errorf("cycle should shorten below length 3, got %v", got)
	}
	// The paper works with the shorter cycle x0 -> x1 -> x0.
	g, _ := attack.BuildGraph(q)
	c := m.PremierCycle(g)
	if len(c) != 2 {
		t.Errorf("premier cycle should have length 2 after shortening, got %v", c)
	}
}

func TestStringOutput(t *testing.T) {
	q := query.MustParse("R(x | y)")
	m, _ := Build(q)
	if m.String() != "x -> y" {
		t.Errorf("String = %q", m.String())
	}
	empty, _ := Build(query.MustParse(""))
	if empty.String() != "(no edges)" {
		t.Errorf("empty String = %q", empty.String())
	}
}
