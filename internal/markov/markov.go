// Package markov implements Markov graphs (Definition 4 of Koutris &
// Wijsen, PODS 2015): directed graphs over the variables of a query in
// which x -> y holds when K(Cq(x) ∪ [[q]]) entails x -> y. The package
// finds the premier elementary cycles whose dissolution drives the
// polynomial-time algorithm of Theorem 4, including the cycle-shortening
// normalization described in Section 6.5.
package markov

import (
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/dgraph"
	"cqa/internal/fd"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// Graph is the Markov graph of a query whose mode-i atoms are simple-key.
type Graph struct {
	Q    query.Query
	Vars []query.Var // sorted vertex order
	idx  map[query.Var]int
	g    *dgraph.Graph
	// cq[x] lists the indices of the atoms in Cq(x): mode-i atoms with
	// key(F) = {x}.
	cq map[query.Var][]int
	kq fd.Set
}

// Build constructs the Markov graph of q. Every mode-i atom must be
// simple-key with a variable in key position (atoms with a constant key
// belong to no Cq(x) and contribute nothing).
func Build(q query.Query) (*Graph, error) {
	for _, a := range q.Atoms {
		if a.Rel.Mode == schema.ModeI && !a.Rel.SimpleKey() {
			return nil, fmt.Errorf("markov: mode-i atom %s is not simple-key", a)
		}
	}
	vars := q.Vars().Sorted()
	m := &Graph{
		Q:    q,
		Vars: vars,
		idx:  make(map[query.Var]int, len(vars)),
		g:    dgraph.New(len(vars)),
		cq:   make(map[query.Var][]int),
		kq:   fd.K(q),
	}
	for i, v := range vars {
		m.idx[v] = i
	}
	for i, a := range q.Atoms {
		if a.Rel.Mode != schema.ModeI {
			continue
		}
		kt := a.KeyArgs()[0]
		if kt.IsVar() {
			m.cq[kt.Var()] = append(m.cq[kt.Var()], i)
		}
	}
	consistent := q.ConsistentPart()
	for _, x := range vars {
		// FDs of Cq(x) ∪ [[q]].
		var fds fd.Set
		for _, ai := range m.cq[x] {
			a := q.Atoms[ai]
			fds = append(fds, fd.FD{From: a.KeyVars(), To: a.Vars()})
		}
		for _, a := range consistent.Atoms {
			fds = append(fds, fd.FD{From: a.KeyVars(), To: a.Vars()})
		}
		closure := fds.Closure(query.NewVarSet(x))
		for y := range closure {
			if y != x {
				m.g.AddEdge(m.idx[x], m.idx[y])
			}
		}
	}
	return m, nil
}

// Cq returns Cq(x): the mode-i atoms of q whose key is exactly {x}.
func (m *Graph) Cq(x query.Var) []query.Atom {
	var out []query.Atom
	for _, i := range m.cq[x] {
		out = append(out, m.Q.Atoms[i])
	}
	return out
}

// CqVars returns vars(Cq(x)), the set X_i used by the dissolution
// reduction.
func (m *Graph) CqVars(x query.Var) query.VarSet {
	s := make(query.VarSet)
	for _, i := range m.cq[x] {
		s.AddAll(m.Q.Atoms[i].Vars())
	}
	return s
}

// HasEdge reports x -> y in the Markov graph.
func (m *Graph) HasEdge(x, y query.Var) bool {
	i, okX := m.idx[x]
	j, okY := m.idx[y]
	return okX && okY && m.g.HasEdge(i, j)
}

// Reaches reports x ->* y (every variable reaches itself).
func (m *Graph) Reaches(x, y query.Var) bool {
	if x == y {
		return true
	}
	i, okX := m.idx[x]
	j, okY := m.idx[y]
	if !okX || !okY {
		return false
	}
	return m.g.Reachable(i)[j]
}

// Edges lists the Markov edges as variable pairs, deterministically.
func (m *Graph) Edges() [][2]query.Var {
	var out [][2]query.Var
	for _, e := range m.g.Edges() {
		out = append(out, [2]query.Var{m.Vars[e[0]], m.Vars[e[1]]})
	}
	return out
}

// IsPremier reports whether the elementary cycle C is premier
// (Definition 4): some variable x is the key of a mode-i atom lying in an
// initial strong component of the attack graph, and some y in C satisfies
// x ->* y (Markov) and K(q) |= y -> x.
func (m *Graph) IsPremier(c []query.Var, ag *attack.Graph) bool {
	for i, a := range m.Q.Atoms {
		if a.Rel.Mode != schema.ModeI || !a.Rel.SimpleKey() {
			continue
		}
		kt := a.KeyArgs()[0]
		if !kt.IsVar() {
			continue
		}
		x := kt.Var()
		if !ag.InInitialStrongComponent(i) {
			continue
		}
		for _, y := range c {
			if m.Reaches(x, y) && m.kq.ImpliesVar(query.NewVarSet(y), x) {
				return true
			}
		}
	}
	return false
}

// PremierCycle searches for an elementary directed Markov cycle C that is
// premier and has Cq(y) ≠ ∅ for every y in C (Lemma 15 guarantees one
// exists when q is saturated, strong-cycle-free, every mode-i atom is
// simple-key with a nonempty key, and the attack graph has an initial
// strong component with two or more atoms). The returned cycle is
// shortened per Section 6.5 so that no variable of the cycle occurs in
// vars(Cq(x_j)) for a non-adjacent position j. Returns nil when no such
// cycle exists.
func (m *Graph) PremierCycle(ag *attack.Graph) []query.Var {
	// Restrict to vertices with nonempty Cq.
	allowed := make(map[int]bool)
	for v, atoms := range m.cq {
		if len(atoms) > 0 {
			allowed[m.idx[v]] = true
		}
	}
	sub := dgraph.New(len(m.Vars))
	for _, e := range m.g.Edges() {
		if allowed[e[0]] && allowed[e[1]] {
			sub.AddEdge(e[0], e[1])
		}
	}
	// Candidate y's: variables reachable from an eligible x with
	// K(q) |= y -> x.
	var best []query.Var
	for i, a := range m.Q.Atoms {
		if a.Rel.Mode != schema.ModeI || !a.Rel.SimpleKey() {
			continue
		}
		kt := a.KeyArgs()[0]
		if !kt.IsVar() || !ag.InInitialStrongComponent(i) {
			continue
		}
		x := kt.Var()
		for _, y := range m.Vars {
			if !allowed[m.idx[y]] {
				continue
			}
			if !m.Reaches(x, y) || !m.kq.ImpliesVar(query.NewVarSet(y), x) {
				continue
			}
			cycleIdx := sub.ShortestCycleThrough(m.idx[y])
			if len(cycleIdx) < 2 {
				continue // self-loops cannot occur (x != y required for edges)
			}
			cycle := make([]query.Var, len(cycleIdx))
			for k, vi := range cycleIdx {
				cycle[k] = m.Vars[vi]
			}
			cycle = m.Shorten(cycle)
			if !m.IsPremier(cycle, ag) {
				continue
			}
			if best == nil || len(cycle) < len(best) {
				best = cycle
			}
		}
	}
	return best
}

// Shorten applies the Section 6.5 normalization: while some cycle
// variable x_i occurs in vars(Cq(x_j)) for a position j outside
// {i, i⊖1}, replace the cycle with the shorter cycle
// x_j -> x_i -> x_(i⊕1) -> ... -> x_j (the edge x_j -> x_i exists because
// Cq(x_j)'s key FD puts all of vars(Cq(x_j)) in x_j's closure).
func (m *Graph) Shorten(c []query.Var) []query.Var {
	k := len(c)
	for {
		if k <= 2 {
			return c
		}
		shortened := false
		for j := 0; j < k && !shortened; j++ {
			xj := c[j]
			xjVars := m.CqVars(xj)
			for i := 0; i < k; i++ {
				if i == j || (j+1)%k == i {
					// i == j⊕1 keeps the same length; i == j is trivial.
					continue
				}
				if (i+k-1)%k == j {
					// j == i⊖1 is the benign case discussed in the paper.
					continue
				}
				if !xjVars.Has(c[i]) {
					continue
				}
				if !m.HasEdge(xj, c[i]) {
					continue
				}
				// New cycle: positions i, i+1, ..., j (mod k).
				var nc []query.Var
				for p := i; ; p = (p + 1) % k {
					nc = append(nc, c[p])
					if p == j {
						break
					}
				}
				if len(nc) >= 2 && len(nc) < k {
					c = nc
					k = len(c)
					shortened = true
					break
				}
			}
		}
		if !shortened {
			return c
		}
	}
}

// String renders the Markov graph as "x -> y" lines.
func (m *Graph) String() string {
	s := ""
	for _, e := range m.Edges() {
		if s != "" {
			s += "\n"
		}
		s += string(e[0]) + " -> " + string(e[1])
	}
	if s == "" {
		return "(no edges)"
	}
	return s
}
