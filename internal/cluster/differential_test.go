package cluster_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"cqa/internal/cluster"
	"cqa/internal/core"
	"cqa/internal/difftest"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/shard"
)

// freeVarsOf mirrors the shard differential suite: a deterministic
// free-variable list of up to two variables in sorted order.
func freeVarsOf(q query.Query) []query.Var {
	vars := q.Vars().Sorted()
	if len(vars) > 2 {
		vars = vars[:2]
	}
	return vars
}

func answerKeySet(t *testing.T, vals []query.Valuation) map[string]bool {
	t.Helper()
	keys := make(map[string]bool, len(vals))
	for _, v := range vals {
		k := v.Key()
		if keys[k] {
			t.Fatalf("duplicate answer %s", k)
		}
		keys[k] = true
	}
	return keys
}

// TestClusterDifferential replays the seeded difftest corpus (same
// generator and case count as the shard and monolithic differential
// suites) through the Router over the simulated-fault transport. Every
// case runs under one of three rotating fault schedules — a killed
// replica, a slow replica, and a one-way partition (responses lost
// after the work executed) — against a three-way replicated topology.
// A response must agree exactly with the monolithic evaluation; a
// failure must carry the structured shard_unavailable taxonomy. A
// silently wrong verdict or answer set fails the suite.
func TestClusterDifferential(t *testing.T) {
	const wantChecked = 520
	ctx := context.Background()
	names := []string{"n0", "n1", "n2"}
	checked, failedOK := 0, 0
	for seed := int64(0); checked < wantChecked && seed < 5000; seed++ {
		shape := byte(seed % difftest.NumShapes)
		q, d := difftest.Generate(seed, shape)
		plan, err := core.Compile(q)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		ix := match.NewIndex(d)
		mono, err := plan.CertainIndexed(ix, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: monolithic: %v", seed, err)
		}
		free := freeVarsOf(q)
		monoAns, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: monolithic answers: %v", seed, err)
		}
		monoKeys := answerKeySet(t, monoAns)

		// Fresh replicated topology per case: every node holds the full
		// instance, so any shard can fail over to any replica.
		nodes := make([]*cluster.LocalNode, len(names))
		for i, name := range names {
			nodes[i] = cluster.NewLocalNode(name)
			nodes[i].Store.Put("corpus", d)
		}
		sim := cluster.NewSimNet(cluster.NewLoopback(nodes...), 7+seed)
		switch checked % 3 {
		case 0:
			sim.Crash("n1")
		case 1:
			sim.SetLink("n2", cluster.LinkFaults{Latency: time.Millisecond, Jitter: time.Millisecond})
		case 2:
			sim.SetLink("n0", cluster.LinkFaults{DropResponse: 1})
		}
		r, err := cluster.NewRouter(cluster.Config{
			Nodes:           names,
			Shards:          5,
			Transport:       sim,
			MaxAttempts:     3,
			RetryBackoff:    time.Millisecond,
			BreakerCooldown: 50 * time.Millisecond,
			Seed:            seed,
		})
		if err != nil {
			t.Fatalf("seed %d: router: %v", seed, err)
		}

		res, partial, err := r.Certain(ctx, plan, "corpus", core.Options{})
		if err != nil {
			if !cluster.Unavailable(err) && !errors.Is(err, shard.ErrFailed) {
				t.Fatalf("seed %d: unstructured cluster error: %v", seed, err)
			}
			failedOK++
		} else {
			if res.Certain != mono.Certain {
				t.Fatalf("seed %d: cluster = %v (partial %d), monolithic = %v\nquery: %s\ndb:\n%s",
					seed, res.Certain, partial, mono.Certain, q, d)
			}
			if partial != 0 && !res.Approximate {
				t.Fatalf("seed %d: %d failed shards without the Approximate flag", seed, partial)
			}
		}

		ans, err := r.CertainAnswers(ctx, plan, "corpus", free, core.Options{})
		if err != nil {
			if !cluster.Unavailable(err) && !errors.Is(err, shard.ErrFailed) {
				t.Fatalf("seed %d: unstructured answers error: %v", seed, err)
			}
			failedOK++
		} else {
			keys := answerKeySet(t, ans)
			if len(keys) != len(monoKeys) {
				t.Fatalf("seed %d: cluster answers %d, monolithic %d\nquery: %s (free %v)\ndb:\n%s",
					seed, len(keys), len(monoKeys), q, free, d)
			}
			for mk := range monoKeys {
				if !keys[mk] {
					t.Fatalf("seed %d: answer %s missing from cluster union\nquery: %s (free %v)\ndb:\n%s",
						seed, mk, q, free, d)
				}
			}
		}
		checked++
	}
	if checked < wantChecked {
		t.Fatalf("verified only %d cases, want %d", checked, wantChecked)
	}
	// Replicated failover should absorb nearly every injected fault; a
	// structured failure is tolerated but must stay rare.
	if failedOK > wantChecked/10 {
		t.Fatalf("%d of %d cases failed closed; failover should absorb most faults", failedOK, checked)
	}
	t.Logf("verified %d cases under rotating kill/slow/partition schedules (%d structured failures)", checked, failedOK)
}
