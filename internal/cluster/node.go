package cluster

import (
	"context"
	"fmt"

	"cqa/internal/core"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/plancache"
	"cqa/internal/query"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// Exec evaluates one shard request against a local store: the server
// side of the cluster tier, shared by the HTTP endpoint and the
// in-process loopback transport. The plan is compiled (or fetched) from
// the node's plan cache, the snapshot resolved from the node's store,
// and the work dispatched by Kind through the same exported core task
// constructors the in-process scatter uses — so a remote shard and a
// local shard evaluate byte-identical work.
//
// Error contract: infrastructure failures (unknown database — a
// replication race, not a request defect — injected node faults, shard
// build failures) satisfy Unavailable and are retryable on another
// replica; request defects come back as *RequestError and are
// permanent; context and budget errors pass through unchanged.
//
// The "cluster.node.exec" fault hook fires on entry (before any work),
// so chaos tests can take a node down at the request boundary.
func Exec(ctx context.Context, cache *plancache.Cache, st *store.Store, req *EvalRequest) (*EvalResponse, error) {
	if req.Shards < 1 || req.Shard < 0 || req.Shard >= req.Shards {
		return nil, &RequestError{Code: "bad_request",
			Msg: fmt.Sprintf("shard %d out of range for width %d", req.Shard, req.Shards)}
	}
	if err := faultinject.Fire("cluster.node.exec"); err != nil {
		return nil, fmt.Errorf("%w: injected node fault: %w", ErrUnavailable, err)
	}
	plan, _, err := cache.GetOrCompile(req.Query)
	if err != nil {
		return nil, &RequestError{Code: "bad_query", Msg: err.Error()}
	}
	engine, err := core.ParseEngine(req.Engine)
	if err != nil {
		return nil, &RequestError{Code: "bad_engine", Msg: err.Error()}
	}
	snap, ok := st.Get(req.DB)
	if !ok {
		return nil, fmt.Errorf("%w: unknown database %q", ErrUnavailable, req.DB)
	}
	opts := core.Options{
		Engine:      engine,
		MaxSteps:    req.MaxSteps,
		Approximate: req.Approximate,
		Samples:     req.Samples,
	}
	ix := snap.Index()
	chk := evalctx.New(ctx, evalctx.Limits{MaxSteps: req.MaxSteps})
	resp := &EvalResponse{}
	switch req.Kind {
	case KindBool:
		if !plan.ScatterableFO(opts) {
			return nil, &RequestError{Code: "bad_request",
				Msg: fmt.Sprintf("plan for %q is not FO-scatterable", req.Query)}
		}
		resp.Certain, err = runShardTask(ctx, snap, req, chk, plan.BoolShardTask(ix))
	case KindSingle:
		var res core.Result
		res, err = runShardTask(ctx, snap, req, chk, plan.CertainSingleTask(ctx, ix, opts))
		resp.Certain = res.Certain
		resp.Approximate = res.Approximate
		resp.Fraction = res.Fraction
	case KindSweep:
		free, ferr := freeVars(plan, req.Free)
		if ferr != nil {
			return nil, ferr
		}
		if !plan.ScatterableFO(opts) || !plan.Elim.SweepableFree(free) {
			return nil, &RequestError{Code: "bad_request",
				Msg: fmt.Sprintf("plan for %q is not sweepable over %v", req.Query, req.Free)}
		}
		var out []query.Valuation
		out, err = runShardTask(ctx, snap, req, chk, plan.SweepShardTask(ix, free))
		resp.Answers = encodeValuations(out)
	case KindCheck:
		free, ferr := freeVars(plan, req.Free)
		if ferr != nil {
			return nil, ferr
		}
		var out []query.Valuation
		out, err = checkOwned(ctx, plan, ix, free, req, opts, chk)
		resp.Answers = encodeValuations(out)
	default:
		return nil, &RequestError{Code: "bad_request", Msg: fmt.Sprintf("unknown kind %q", req.Kind)}
	}
	resp.Steps = chk.Steps()
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// runShardTask executes a shard task against the request's partition.
// The snapshot's cached pool is reused when its width matches the
// request (the hot path: span partitions, worker queues, health and
// fault hooks); a width mismatch — the node is locally configured for a
// different fan-out — falls back to a standalone synchronous view of
// exactly the requested partition.
func runShardTask[T any](ctx context.Context, snap *store.Snapshot, req *EvalRequest, chk *evalctx.Checker, task shard.Task[T]) (T, error) {
	if pool := snap.ShardPool(req.Shards, 0); pool != nil && pool.N() == req.Shards {
		return shard.Do(ctx, pool, req.Shard, chk, task)
	}
	v, err := shard.NewView(snap.DB, req.Shard, req.Shards)
	if err != nil {
		var zero T
		return zero, err
	}
	return task(v, chk.ForkWith(ctx))
}

// checkOwned is the KindCheck body: enumerate every candidate answer
// (the deterministic first-seen order makes ownership agreement free),
// check the ones whose binding key hashes to this shard, and return the
// certain ones. Candidates run inline on the request goroutine — the
// request is already one shard's worth of work.
func checkOwned(ctx context.Context, plan *core.Plan, ix *match.Index, free []query.Var, req *EvalRequest, opts core.Options, chk *evalctx.Checker) ([]query.Valuation, error) {
	candidates, err := plan.EnumerateCandidates(ix, free, opts, chk)
	if err != nil {
		return nil, err
	}
	var out []query.Valuation
	for _, proj := range candidates {
		if shard.Of(proj.Key(), req.Shards) != req.Shard {
			continue
		}
		if err := chk.Err(); err != nil {
			return nil, err
		}
		ok, err := plan.CheckCandidate(ctx, ix, opts, proj, chk)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, proj)
		}
	}
	return out, nil
}

// freeVars parses and validates the wire form of the free variables
// against the plan's query, mirroring the coordinator-side validation
// so a node never silently accepts a binding the local path would 422.
func freeVars(plan *core.Plan, names []string) ([]query.Var, error) {
	vars := plan.Query.Vars()
	free := make([]query.Var, len(names))
	for i, s := range names {
		v := query.Var(s)
		if !vars.Has(v) {
			return nil, &RequestError{Code: "bad_request",
				Msg: fmt.Sprintf("free variable %s does not occur in %s", v, plan.Query)}
		}
		free[i] = v
	}
	return free, nil
}

func encodeValuations(vs []query.Valuation) []map[string]string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]map[string]string, len(vs))
	for i, v := range vs {
		m := make(map[string]string, len(v))
		for x, c := range v {
			m[string(x)] = string(c)
		}
		out[i] = m
	}
	return out
}

func decodeValuations(ms []map[string]string) []query.Valuation {
	if len(ms) == 0 {
		return nil
	}
	out := make([]query.Valuation, len(ms))
	for i, m := range ms {
		v := make(query.Valuation, len(m))
		for x, c := range m {
			v[query.Var(x)] = query.Const(c)
		}
		out[i] = v
	}
	return out
}
