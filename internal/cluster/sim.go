package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// LinkFaults is the fault model of one client→node link. The zero
// value is a perfect link.
type LinkFaults struct {
	// Latency is added to every delivery; Jitter adds a further uniform
	// [0, Jitter) draw from the seeded RNG.
	Latency time.Duration
	Jitter  time.Duration
	// DropRequest is the probability the request is lost before the
	// node sees it (the node does no work).
	DropRequest float64
	// DropResponse is the probability the *response* is lost after the
	// node fully executed the request — a one-way partition. The
	// distinction matters: the work happened, budget was spent
	// remotely, and a naive client that conflates the two double-counts
	// side effects. Evaluations are read-only, so here the only
	// observable is latency and the retry.
	DropResponse float64
	// StallEvery, when > 0, stalls every StallEvery-th delivery on this
	// link for Stall — a deterministic straggler schedule (no RNG), the
	// reproducible "10% of requests hit a slow node" of the hedging
	// benchmark.
	StallEvery int
	Stall      time.Duration
}

// SimNet wraps a Transport in a deterministic, seedable fault model:
// per-link latency/jitter/drops, one-way partitions, and whole-node
// crash/restart. All randomness flows from the one seeded RNG under a
// mutex, so a given seed and request interleaving replays the same
// fault schedule — the satnet-simulator style of testing a distributed
// topology without real packet loss.
type SimNet struct {
	inner Transport

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*linkState
	down  map[string]bool
}

type linkState struct {
	faults LinkFaults
	n      int // deliveries so far, drives StallEvery
}

// NewSimNet wraps inner with a fault model seeded by seed.
func NewSimNet(inner Transport, seed int64) *SimNet {
	return &SimNet{
		inner: inner,
		rng:   rand.New(rand.NewSource(seed)),
		links: make(map[string]*linkState),
		down:  make(map[string]bool),
	}
}

// SetLink replaces the fault model of the link to node.
func (s *SimNet) SetLink(node string, f LinkFaults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links[node] = &linkState{faults: f}
}

// Crash takes the node down: every Eval and Ready fails until Restart.
func (s *SimNet) Crash(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down[node] = true
}

// Restart brings a crashed node back.
func (s *SimNet) Restart(node string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.down, node)
}

// Eval implements Transport: draw this delivery's fate under the lock,
// then sleep/execute outside it.
func (s *SimNet) Eval(ctx context.Context, node string, req *EvalRequest) (*EvalResponse, error) {
	s.mu.Lock()
	if s.down[node] {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s: node down", ErrUnavailable, node)
	}
	var delay time.Duration
	dropReq, dropResp := false, false
	if l := s.links[node]; l != nil {
		f := l.faults
		l.n++
		delay = f.Latency
		if f.Jitter > 0 {
			delay += time.Duration(s.rng.Int63n(int64(f.Jitter)))
		}
		if f.StallEvery > 0 && l.n%f.StallEvery == 0 {
			delay += f.Stall
		}
		dropReq = f.DropRequest > 0 && s.rng.Float64() < f.DropRequest
		dropResp = f.DropResponse > 0 && s.rng.Float64() < f.DropResponse
	}
	s.mu.Unlock()
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	if dropReq {
		return nil, fmt.Errorf("%w: %s: request lost", ErrUnavailable, node)
	}
	resp, err := s.inner.Eval(ctx, node, req)
	if err == nil && dropResp {
		// One-way partition: the node executed the request; only the
		// answer is lost on the way back.
		return nil, fmt.Errorf("%w: %s: response lost (one-way partition)", ErrUnavailable, node)
	}
	return resp, err
}

// Ready implements Transport: a down node fails its probe, which is
// what re-opens a half-open breaker.
func (s *SimNet) Ready(ctx context.Context, node string) error {
	s.mu.Lock()
	down := s.down[node]
	s.mu.Unlock()
	if down {
		return fmt.Errorf("%w: %s: node down", ErrUnavailable, node)
	}
	return s.inner.Ready(ctx, node)
}
