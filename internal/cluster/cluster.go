// Package cluster is the over-the-wire shard tier: the network
// counterpart of the in-process shard.Pool. Data is replicated — every
// node holds the full snapshot of each named database — and *work* is
// partitioned: a request names a logical shard (a key-hash partition of
// the top-level work, the same Of-hash the in-process tier uses) and
// the node evaluates exactly that partition against its full local
// snapshot. Replication is what makes retries, failover, and hedging
// sound: any node can serve any shard, so a lost node costs latency,
// never answers.
//
// The package splits into three layers:
//
//   - Exec (node.go) is the server side: one shard-evaluation request
//     against a local store, reusing the shard.View/span machinery and
//     the exported core task constructors, so the remote tier evaluates
//     byte-identical work to the in-process tier.
//   - Transport (transport.go) moves one request to one node: a real
//     HTTP/JSON implementation, an in-process Loopback for tests and
//     benchmarks, and SimNet (sim.go), a deterministic seedable fault
//     model wrapping any transport with per-link latency, drops,
//     one-way partitions, and node crash/restart.
//   - Router (router.go) owns client-side fault tolerance: consistent-
//     hash shard→node assignment, per-attempt timeouts with exponential
//     backoff and full jitter under the shared evalctx budget, hedged
//     second attempts after a p99-derived delay, a per-node circuit
//     breaker probed via /readyz, and explicit partial-failure merge
//     semantics — early-exit merges may conclude from surviving shards,
//     everything else fails closed or degrades explicitly, never a
//     silently wrong boolean.
package cluster

import (
	"errors"
	"fmt"

	"cqa/internal/shard"
)

// ErrUnavailable marks a retryable infrastructure failure: the node is
// down, unreachable, overloaded, or lost the response. It wraps
// shard.ErrFailed so the serving layer's existing 503 shard_unavailable
// taxonomy applies to the remote tier unchanged.
var ErrUnavailable = fmt.Errorf("cluster: node unavailable: %w", shard.ErrFailed)

// RequestError is a permanent, request-shaped failure reported by a
// node: a malformed query, an invalid shard index, an engine the plan
// cannot run. Retrying it on another replica cannot help, so the router
// returns it immediately.
type RequestError struct {
	// Code is a short taxonomy tag ("bad_request", "bad_query", ...).
	Code string
	// Msg is the human-readable detail.
	Msg string
}

func (e *RequestError) Error() string {
	return fmt.Sprintf("cluster: %s: %s", e.Code, e.Msg)
}

// Unavailable reports whether err is a retryable infrastructure
// failure (as opposed to an error of the request itself).
func Unavailable(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, shard.ErrFailed)
}

// Kind selects the unit of work a shard-evaluation request carries.
type Kind string

const (
	// KindBool decides the Boolean FO certainty of the shard's
	// partition of the top relation's blocks; the router merges with
	// early-exit OR semantics (any true is definitive, false needs all
	// shards).
	KindBool Kind = "bool"
	// KindSingle runs the entire certainty decision (ptime / conp /
	// naive / cyclic plans) on the one shard owning the plan key.
	KindSingle Kind = "single"
	// KindSweep derives and decides the shard's certain answers in one
	// batched columnar pass (sweepable FO plans); the router unions.
	KindSweep Kind = "sweep"
	// KindCheck enumerates the candidate answers locally (the order is
	// deterministic, so every node agrees) and checks only the
	// candidates whose binding key hashes to the request's shard; the
	// router unions the disjoint per-shard answer sets.
	KindCheck Kind = "check"
)

// EvalRequest is one shard-evaluation request. Queries travel as their
// canonical text (Plan.Key), so the node's plan-cache compilation is
// guaranteed to reproduce the coordinator's plan.
type EvalRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	Kind  Kind   `json:"kind"`
	// Shard / Shards name the logical partition: this request covers
	// partition Shard of a Shards-way split. The width is the router's,
	// not the node's — a node whose local pool is configured differently
	// still evaluates the requested partition correctly.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Free are the free variables of an answers request (KindSweep /
	// KindCheck), in the caller's order.
	Free []string `json:"free,omitempty"`
	// Engine is the resolved engine name ("fo", "ptime", "conp",
	// "naive"); empty selects auto.
	Engine string `json:"engine,omitempty"`
	// MaxSteps is the step budget granted to this attempt — the
	// *remaining* request budget at dispatch time, so retries and
	// hedges cannot multiply what one request may spend. <= 0 is
	// unlimited.
	MaxSteps int64 `json:"maxSteps,omitempty"`
	// Approximate permits the coNP engine's sampling degradation.
	Approximate bool `json:"approximate,omitempty"`
	Samples     int  `json:"samples,omitempty"`
}

// EvalResponse is the verdict of one shard evaluation.
type EvalResponse struct {
	// Certain is the Boolean verdict (KindBool / KindSingle).
	Certain bool `json:"certain"`
	// Answers are the shard's certain answers (KindSweep / KindCheck),
	// each a free-variable binding.
	Answers []map[string]string `json:"answers,omitempty"`
	// Approximate / Fraction report a KindSingle coNP evaluation that
	// degraded to repair sampling on the node.
	Approximate bool    `json:"approximate,omitempty"`
	Fraction    float64 `json:"fraction,omitempty"`
	// Steps is the engine work the node spent on this request; the
	// router charges it against the shared request budget.
	Steps int64 `json:"steps"`
}
