package cluster

import (
	"context"
	"fmt"

	"cqa/internal/plancache"
	"cqa/internal/store"
)

// LocalNode is an in-process cluster node: its own store and plan
// cache, no sockets. Tests and benchmarks replicate data by uploading
// to every node's Store, exactly as a deployment replicates uploads
// across real nodes.
type LocalNode struct {
	name  string
	Store *store.Store
	cache *plancache.Cache
}

// NewLocalNode returns a named node with an empty store.
func NewLocalNode(name string) *LocalNode {
	return &LocalNode{name: name, Store: store.New(), cache: plancache.New(256)}
}

// Name returns the node's transport address.
func (n *LocalNode) Name() string { return n.name }

// Exec evaluates one shard request against this node's local state.
func (n *LocalNode) Exec(ctx context.Context, req *EvalRequest) (*EvalResponse, error) {
	return Exec(ctx, n.cache, n.Store, req)
}

// Loopback is the in-process Transport over a fixed set of LocalNodes.
// It is the deterministic substrate under SimNet: with no fault model
// on top it is a perfect network.
type Loopback struct {
	nodes map[string]*LocalNode
}

// NewLoopback indexes the nodes by name.
func NewLoopback(nodes ...*LocalNode) *Loopback {
	m := make(map[string]*LocalNode, len(nodes))
	for _, n := range nodes {
		m[n.Name()] = n
	}
	return &Loopback{nodes: m}
}

// Eval implements Transport.
func (l *Loopback) Eval(ctx context.Context, node string, req *EvalRequest) (*EvalResponse, error) {
	n, ok := l.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: unknown node %q", ErrUnavailable, node)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return n.Exec(ctx, req)
}

// Ready implements Transport: a registered loopback node is always
// ready (SimNet supplies the failure modes).
func (l *Loopback) Ready(ctx context.Context, node string) error {
	if _, ok := l.nodes[node]; !ok {
		return fmt.Errorf("%w: unknown node %q", ErrUnavailable, node)
	}
	return ctx.Err()
}
