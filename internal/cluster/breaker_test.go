package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBreakerTransitions walks the full state machine white-box:
// threshold opens, cooldown admits a probed half-open trial, a failed
// trial re-opens, a successful one closes, and probeFailed/abandon
// resolve a trial slot that never launched.
func TestBreakerTransitions(t *testing.T) {
	b := &breaker{threshold: 3, cooldown: time.Minute}
	now := time.Unix(0, 0)

	if ok, probe := b.acquire(now); !ok || probe {
		t.Fatalf("closed acquire = %v, %v", ok, probe)
	}
	b.failure(now)
	b.failure(now)
	if b.current() != BreakerClosed {
		t.Fatalf("below threshold: %v", b.current())
	}
	b.failure(now)
	if b.current() != BreakerOpen {
		t.Fatalf("at threshold: %v", b.current())
	}
	if ok, _ := b.acquire(now.Add(time.Second)); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: exactly one probed trial is admitted.
	later := now.Add(2 * time.Minute)
	ok, probe := b.acquire(later)
	if !ok || !probe {
		t.Fatalf("post-cooldown acquire = %v, %v, want trial", ok, probe)
	}
	if ok, _ := b.acquire(later); ok {
		t.Fatal("second trial admitted while one is in flight")
	}

	// The trial fails: straight back to open for another cooldown.
	b.failure(later)
	if b.current() != BreakerOpen {
		t.Fatalf("failed trial: %v", b.current())
	}

	// Next cycle: an abandoned trial frees the slot without closing.
	later = later.Add(2 * time.Minute)
	if ok, probe := b.acquire(later); !ok || !probe {
		t.Fatal("post-cooldown trial not admitted")
	}
	b.abandon()
	if b.current() != BreakerHalfOpen {
		t.Fatalf("abandoned trial: %v", b.current())
	}
	if ok, probe := b.acquire(later); !ok || !probe {
		t.Fatal("freed trial slot not re-admitted")
	}

	// A failed readiness probe re-opens without a trial launch.
	b.probeFailed(later)
	if b.current() != BreakerOpen {
		t.Fatalf("failed probe: %v", b.current())
	}

	// And a successful trial closes from any state.
	later = later.Add(2 * time.Minute)
	if ok, _ := b.acquire(later); !ok {
		t.Fatal("trial not admitted")
	}
	b.success()
	if b.current() != BreakerClosed {
		t.Fatalf("successful trial: %v", b.current())
	}
	if ok, probe := b.acquire(later); !ok || probe {
		t.Fatal("closed breaker should admit without a probe")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestHTTPTransportStatusMapping checks the wire-level error taxonomy:
// 200 decodes, 4xx is a permanent RequestError, 5xx/429 and dead
// sockets are retryable Unavailable, and Ready maps /readyz.
func TestHTTPTransportStatusMapping(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shard/eval", func(w http.ResponseWriter, r *http.Request) {
		switch r.Header.Get("X-Test-Status") {
		case "400":
			http.Error(w, `{"error": "bad_query"}`, http.StatusBadRequest)
		case "429":
			http.Error(w, "shed", http.StatusTooManyRequests)
		case "500":
			http.Error(w, strings.Repeat("x", 2048), http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"certain": true, "steps": 7}`)) //nolint:errcheck
		}
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	tr := &HTTPTransport{Client: ts.Client()}
	withStatus := func(status string) *http.Client {
		c := *ts.Client()
		c.Transport = roundTripFunc(func(r *http.Request) (*http.Response, error) {
			r.Header.Set("X-Test-Status", status)
			return ts.Client().Transport.RoundTrip(r)
		})
		return &c
	}

	resp, err := tr.Eval(context.Background(), ts.URL, &EvalRequest{})
	if err != nil || !resp.Certain || resp.Steps != 7 {
		t.Fatalf("200 eval: %+v, %v", resp, err)
	}

	var re *RequestError
	_, err = (&HTTPTransport{Client: withStatus("400")}).Eval(context.Background(), ts.URL, &EvalRequest{})
	if !errors.As(err, &re) || re.Code != "node_status_400" {
		t.Fatalf("400 eval: %v, want node_status_400 RequestError", err)
	}
	if re.Error() == "" {
		t.Error("RequestError.Error() empty")
	}

	for _, status := range []string{"429", "500"} {
		_, err = (&HTTPTransport{Client: withStatus(status)}).Eval(context.Background(), ts.URL, &EvalRequest{})
		if !Unavailable(err) {
			t.Fatalf("%s eval: %v, want Unavailable", status, err)
		}
	}

	if err := tr.Ready(context.Background(), ts.URL); !Unavailable(err) {
		t.Fatalf("readyz 503: %v, want Unavailable", err)
	}

	// A dead socket is Unavailable on both paths.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	deadTr := &HTTPTransport{}
	if _, err := deadTr.Eval(context.Background(), dead.URL, &EvalRequest{}); !Unavailable(err) {
		t.Fatalf("dead node eval: %v, want Unavailable", err)
	}
	if err := deadTr.Ready(context.Background(), dead.URL); !Unavailable(err) {
		t.Fatalf("dead node ready: %v, want Unavailable", err)
	}

	// A cancelled context surfaces as the context error, not Unavailable,
	// so the router can tell its own deadline from a dead node.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Eval(ctx, ts.URL, &EvalRequest{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled eval: %v, want context.Canceled", err)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestTruncate(t *testing.T) {
	if got := truncate("abc", 10); got != "abc" {
		t.Errorf("truncate short = %q", got)
	}
	if got := truncate("abcdefgh", 4); got != "abcd..." {
		t.Errorf("truncate long = %q", got)
	}
}
