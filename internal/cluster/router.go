package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cqa/internal/core"
	"cqa/internal/evalctx"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/shard"
	"cqa/internal/trace"
)

// Config configures a Router. Zero values select the documented
// defaults; only Nodes and Transport are required.
type Config struct {
	// Nodes are the transport addresses of the replica set. Data is
	// replicated (every node holds every database); the ring only
	// decides which node *prefers* which logical shard.
	Nodes []string
	// Shards is the logical partition width of scattered work; <= 0
	// selects 2×len(Nodes) (spreading failover load across survivors).
	Shards int
	// Transport moves requests; required.
	Transport Transport
	// MaxAttempts bounds tries per shard request (first + retries);
	// <= 0 selects 3.
	MaxAttempts int
	// AttemptTimeout bounds one attempt; <= 0 selects 2s. The request
	// context still bounds the whole.
	AttemptTimeout time.Duration
	// RetryBackoff is the base of the exponential backoff between
	// attempts (full jitter: each wait is uniform in [0, base·2^k));
	// <= 0 selects 10ms.
	RetryBackoff time.Duration
	// HedgeDelay enables hedged second attempts: when an attempt has
	// not answered within max(HedgeDelay, p99 of the fastest replica's
	// latency), a duplicate races on another node and the first answer
	// wins. 0 disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// node's breaker; <= 0 selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before going
	// half-open; <= 0 selects 2s.
	BreakerCooldown time.Duration
	// ProbeTimeout bounds the half-open readiness probe; <= 0 selects
	// 250ms.
	ProbeTimeout time.Duration
	// Seed seeds the jitter RNG (deterministic backoff schedules in
	// tests); 0 selects 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2 * len(c.Nodes)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// hedgeMinSamples is how many latency observations a node needs before
// its histogram participates in the p99-derived hedge delay; below it
// the configured HedgeDelay floor applies unmodified.
const hedgeMinSamples = 20

// vnodesPerNode is the virtual-node multiplicity on the consistent-hash
// ring: enough that shard→node preference lists spread failover load,
// cheap enough to precompute per router.
const vnodesPerNode = 32

type nodeState struct {
	name     string
	br       *breaker
	hist     *trace.Histogram
	failures atomic.Int64
}

// Router is the fault-tolerant coordinator of the remote shard tier.
// It scatters a plan's work over the logical shards, routes each shard
// request along its consistent-hash preference list of nodes, and owns
// every client-side robustness mechanism: retries with exponential
// backoff and full jitter, per-attempt timeouts, hedged duplicates,
// per-node circuit breakers, and the partial-failure merge semantics.
// Safe for concurrent use.
type Router struct {
	cfg   Config
	tr    Transport
	nodes []*nodeState
	prefs [][]*nodeState // per logical shard, ring-ordered distinct nodes

	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRouter validates cfg and builds the shard→node preference lists.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: router needs at least one node")
	}
	if cfg.Transport == nil {
		return nil, errors.New("cluster: router needs a transport")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg: cfg,
		tr:  cfg.Transport,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	for _, name := range cfg.Nodes {
		r.nodes = append(r.nodes, &nodeState{
			name: name,
			br:   &breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown},
			hist: trace.NewHistogram(nil),
		})
	}
	r.prefs = buildPrefs(r.nodes, cfg.Shards)
	return r, nil
}

// Shards returns the logical partition width.
func (r *Router) Shards() int { return r.cfg.Shards }

// buildPrefs places vnodesPerNode points per node on a 64-bit hash
// ring and, for each logical shard, walks the ring from the shard's
// hash collecting distinct nodes: element 0 is the shard's home,
// the rest its failover order. Pure function of the node names and
// width — every router over the same topology routes identically.
func buildPrefs(nodes []*nodeState, shards int) [][]*nodeState {
	type point struct {
		h  uint64
		ns *nodeState
	}
	pts := make([]point, 0, len(nodes)*vnodesPerNode)
	for _, ns := range nodes {
		for v := 0; v < vnodesPerNode; v++ {
			pts = append(pts, point{hash64(ns.name + "#" + strconv.Itoa(v)), ns})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].ns.name < pts[j].ns.name
	})
	prefs := make([][]*nodeState, shards)
	for s := range prefs {
		h := hash64("shard/" + strconv.Itoa(s))
		start := sort.Search(len(pts), func(i int) bool { return pts[i].h >= h }) % len(pts)
		seen := make(map[*nodeState]bool, len(nodes))
		order := make([]*nodeState, 0, len(nodes))
		for i := 0; len(order) < len(nodes) && i < len(pts); i++ {
			ns := pts[(start+i)%len(pts)].ns
			if !seen[ns] {
				seen[ns] = true
				order = append(order, ns)
			}
		}
		prefs[s] = order
	}
	return prefs
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a has weak avalanche on short sequential keys ("shard/0",
	// "shard/1", ...): their hashes differ by small multiples of the
	// FNV prime and cluster on one arc of the ring, homing every shard
	// on one node. A splitmix64-style finalizer restores uniformity.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Certain decides CERTAINTY for the plan over the named replicated
// database. FO-scatterable plans fan out over every logical shard and
// merge with early-exit OR semantics; other engines route the whole
// decision to the shard owning the plan key. failedShards reports the
// partial-failure degradation: 0 means the verdict is exact; > 0 means
// that many shards stayed unreachable after retries, every surviving
// shard reported false, and opts.Approximate permitted concluding from
// the survivors — the Result then carries Approximate=true and
// Fraction = surviving/total. A true verdict is always exact (any
// shard's true is definitive). Without opts.Approximate a partial
// scatter fails closed with an error satisfying Unavailable, which the
// serving layer maps to 503 shard_unavailable — never a silently wrong
// boolean.
func (r *Router) Certain(ctx context.Context, plan *core.Plan, dbName string, opts core.Options) (core.Result, int, error) {
	chk := evalctx.New(ctx, evalctx.Limits{MaxSteps: opts.MaxSteps})
	engine := plan.Engine(opts)
	base := EvalRequest{
		Query:       plan.Key(),
		DB:          dbName,
		Shards:      r.cfg.Shards,
		Engine:      engine.String(),
		Approximate: opts.Approximate,
		Samples:     opts.Samples,
	}
	if plan.ScatterableFO(opts) {
		base.Kind = KindBool
		return r.scatterBool(ctx, chk, plan, engine, opts, base)
	}
	base.Kind = KindSingle
	base.Shard = shard.Of(plan.Key(), r.cfg.Shards)
	resp, err := r.do(ctx, chk, base)
	if err != nil {
		return core.Result{}, 0, err
	}
	return core.Result{
		Certain:     resp.Certain,
		Class:       plan.Class,
		Engine:      engine,
		Approximate: resp.Approximate,
		Fraction:    resp.Fraction,
	}, 0, nil
}

func (r *Router) scatterBool(ctx context.Context, chk *evalctx.Checker, plan *core.Plan, engine core.Engine, opts core.Options, base EvalRequest) (core.Result, int, error) {
	n := r.cfg.Shards
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		id   int
		resp *EvalResponse
		err  error
	}
	ch := make(chan res, n)
	for id := 0; id < n; id++ {
		go func(id int) {
			req := base
			req.Shard = id
			// Each scatter goroutine forks the request checker: shared
			// step budget, private sticky error.
			resp, err := r.do(cctx, chk.Fork(), req)
			ch <- res{id: id, resp: resp, err: err}
		}(id)
	}
	failed := 0
	firstID, firstErr := n, error(nil)
	allUnavailable := true
	for i := 0; i < n; i++ {
		out := <-ch
		if out.err == nil {
			if out.resp.Certain {
				// Any shard's true is definitive — the top level is an
				// existential — so a partial scatter can still conclude
				// exactly. Cancel the stragglers and return.
				cancel()
				return core.Result{Certain: true, Class: plan.Class, Engine: engine}, 0, nil
			}
			continue
		}
		failed++
		if !Unavailable(out.err) {
			allUnavailable = false
		}
		if out.id < firstID {
			firstID, firstErr = out.id, out.err
		}
	}
	if failed == 0 {
		return core.Result{Certain: false, Class: plan.Class, Engine: engine}, 0, nil
	}
	// Every surviving shard reported false but some shards stayed
	// unreachable: the false verdict is unproven. Degrade explicitly
	// when the request allows approximation and every failure was
	// infrastructure (a budget or deadline error is the request's own
	// and must surface); otherwise fail closed with the lowest shard's
	// error — deterministic under deterministic faults.
	if opts.Approximate && allUnavailable && failed < n {
		return core.Result{
			Certain:     false,
			Class:       plan.Class,
			Engine:      engine,
			Approximate: true,
			Fraction:    float64(n-failed) / float64(n),
		}, failed, nil
	}
	return core.Result{}, 0, firstErr
}

// CertainAnswers computes the certain answers for the plan's free
// variables over the named replicated database. Sweepable FO plans
// scatter a batched columnar sweep; everything else scatters candidate
// checks by binding-key ownership. The merge is a set union, so it
// fails closed: any shard that stays unreachable after retries fails
// the request (a partial union would silently drop answers — there is
// no sound degraded answer set). Answers return sorted by binding key.
func (r *Router) CertainAnswers(ctx context.Context, plan *core.Plan, dbName string, free []query.Var, opts core.Options) ([]query.Valuation, error) {
	vars := plan.Query.Vars()
	for _, v := range free {
		if !vars.Has(v) {
			return nil, &RequestError{Code: "bad_request",
				Msg: fmt.Sprintf("free variable %s does not occur in %s", v, plan.Query)}
		}
	}
	chk := evalctx.New(ctx, evalctx.Limits{MaxSteps: opts.MaxSteps})
	base := EvalRequest{
		Query:       plan.Key(),
		DB:          dbName,
		Shards:      r.cfg.Shards,
		Engine:      plan.Engine(opts).String(),
		Approximate: opts.Approximate,
		Samples:     opts.Samples,
		Free:        make([]string, len(free)),
	}
	for i, v := range free {
		base.Free[i] = string(v)
	}
	if plan.ScatterableFO(opts) && plan.Elim.SweepableFree(free) {
		base.Kind = KindSweep
	} else {
		base.Kind = KindCheck
	}
	n := r.cfg.Shards
	parts := make([][]query.Valuation, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			req := base
			req.Shard = id
			resp, err := r.do(ctx, chk.Fork(), req)
			if err != nil {
				errs[id] = err
				return
			}
			parts[id] = decodeValuations(resp.Answers)
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	out := make([]query.Valuation, 0, total)
	for _, part := range parts {
		out = append(out, part...)
	}
	rewrite.SortValuationsByKey(out)
	return out, nil
}

// do executes one shard request with the full client-side fault
// tolerance: up to MaxAttempts tries along the shard's preference
// list, exponential backoff with full jitter between tries, the
// remaining request budget re-granted per attempt, remote steps
// charged back on success, and permanent errors (the request's own
// context or budget, a node-diagnosed request defect) returned
// immediately.
func (r *Router) do(ctx context.Context, chk *evalctx.Checker, req EvalRequest) (*EvalResponse, error) {
	prefs := r.prefs[req.Shard%len(r.prefs)]
	backoff := r.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			if !sleepCtx(ctx, r.jitter(backoff)) {
				return nil, ctx.Err()
			}
			backoff *= 2
		}
		if err := chk.Check(); err != nil {
			return nil, err
		}
		if rem, ok := chk.Remaining(); ok {
			if rem <= 0 {
				return nil, evalctx.ErrBudgetExceeded
			}
			req.MaxSteps = rem
		}
		resp, err := r.attempt(ctx, req, prefs, attempt)
		if err == nil {
			// Charge the remotely spent steps against the shared budget.
			// A trip here does not invalidate THIS response — the node
			// already finished it (possibly degrading on its own, which
			// legitimately runs a little past the grant) — but it
			// poisons the shared counter, so the scatter's remaining
			// shards stop at their next poll.
			chk.Charge(resp.Steps) //nolint:errcheck // see above
			return resp, nil
		}
		if permanent(ctx, err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: shard %d: %d attempts exhausted: %w",
		ErrUnavailable, req.Shard, r.cfg.MaxAttempts, lastErr)
}

// attempt is one try of one shard request: pick the first admissible
// node from the preference list (rotated by the attempt number, so
// retries naturally fail over), run it under the per-attempt timeout,
// and — when hedging is enabled — race a duplicate on a different node
// once the p99-derived delay elapses. The first success wins and
// cancels the loser; breaker and latency accounting attribute outcomes
// to nodes only while the race is undecided and the request is alive.
func (r *Router) attempt(ctx context.Context, req EvalRequest, prefs []*nodeState, attempt int) (*EvalResponse, error) {
	primary := r.pick(ctx, prefs, attempt, nil)
	if primary == nil {
		return nil, fmt.Errorf("%w: shard %d: no node admissible (breakers open)", ErrUnavailable, req.Shard)
	}
	actx, cancel := context.WithTimeout(ctx, r.cfg.AttemptTimeout)
	defer cancel()
	type res struct {
		resp   *EvalResponse
		err    error
		hedged bool
	}
	ch := make(chan res, 2)
	var decided atomic.Bool
	launch := func(ns *nodeState, hedged bool) {
		start := time.Now()
		rq := req
		resp, err := r.tr.Eval(actx, ns.name, &rq)
		if err == nil {
			ns.hist.Observe(time.Since(start))
			ns.br.success()
		} else if decided.Load() || ctx.Err() != nil || !nodeFault(err) {
			// Not the node's fault (or not attributable: we cancelled
			// the attempt ourselves). Free a half-open trial slot so
			// the breaker can probe again.
			ns.br.abandon()
		} else {
			ns.failures.Add(1)
			ns.br.failure(time.Now())
		}
		ch <- res{resp: resp, err: err, hedged: hedged}
	}
	go launch(primary, false)
	var hedgeC <-chan time.Time
	if d := r.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	outstanding := 1
	var firstErr error
	for outstanding > 0 {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				decided.Store(true)
				cancel()
				if out.hedged {
					r.hedgeWins.Add(1)
				}
				return out.resp, nil
			}
			if permanent(ctx, out.err) {
				decided.Store(true)
				cancel()
				return nil, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
		case <-hedgeC:
			hedgeC = nil
			if second := r.pick(ctx, prefs, attempt+1, primary); second != nil {
				r.hedges.Add(1)
				outstanding++
				go launch(second, true)
			}
		}
	}
	decided.Store(true)
	return nil, firstErr
}

// pick returns the first admissible node of the preference list,
// starting at offset start (so retries and hedges rotate away from the
// last choice) and skipping exclude and every node whose breaker
// rejects. A half-open breaker admits only after a fresh /readyz probe
// succeeds.
func (r *Router) pick(ctx context.Context, prefs []*nodeState, start int, exclude *nodeState) *nodeState {
	for i := 0; i < len(prefs); i++ {
		ns := prefs[(start+i)%len(prefs)]
		if ns == exclude {
			continue
		}
		ok, probe := ns.br.acquire(time.Now())
		if !ok {
			continue
		}
		if probe {
			pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
			err := r.tr.Ready(pctx, ns.name)
			cancel()
			if err != nil {
				ns.br.probeFailed(time.Now())
				continue
			}
		}
		return ns
	}
	return nil
}

// hedgeDelay derives the hedging threshold: the p99 of the fastest
// replica's observed latency — "how long 99% of healthy answers take"
// — floored by the configured HedgeDelay and capped at half the
// attempt timeout (a hedge that cannot finish is noise). Until any
// node has hedgeMinSamples observations the floor applies unmodified.
// Returns 0 (hedging disabled) when no HedgeDelay is configured.
func (r *Router) hedgeDelay() time.Duration {
	floor := r.cfg.HedgeDelay
	if floor <= 0 {
		return 0
	}
	best := time.Duration(0)
	for _, ns := range r.nodes {
		snap := ns.hist.Snapshot()
		if snap.Count < hedgeMinSamples {
			continue
		}
		d := time.Duration(snap.Quantile(0.99) * float64(time.Second))
		if d > 0 && (best == 0 || d < best) {
			best = d
		}
	}
	d := floor
	if best > d {
		d = best
	}
	if max := r.cfg.AttemptTimeout / 2; d > max {
		d = max
	}
	return d
}

// jitter draws a full-jitter wait: uniform in [0, d].
func (r *Router) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(d) + 1))
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// permanent classifies an attempt error: true means retrying cannot
// help — the request's own context died, its budget is spent, or a
// node diagnosed the request itself as defective. An attempt-level
// timeout with a live parent context is retryable (and a node fault).
func permanent(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return true
	}
	if errors.Is(err, evalctx.ErrBudgetExceeded) {
		return true
	}
	var re *RequestError
	return errors.As(err, &re)
}

// nodeFault reports whether an attempt error indicts the node for
// breaker purposes: infrastructure unavailability or an attempt
// timeout. Request-level errors (budget, defects) say nothing about
// the node's health.
func nodeFault(err error) bool {
	if Unavailable(err) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// NodeStats is the observable state of one routed node.
type NodeStats struct {
	Name     string
	Breaker  BreakerState
	Failures int64
	// Hist is the node's attempt-latency histogram (successes only);
	// shared, read via Snapshot.
	Hist *trace.Histogram
}

// RouterStats is a point-in-time summary for metrics.
type RouterStats struct {
	Retries   int64
	Hedges    int64
	HedgeWins int64
	Nodes     []NodeStats
}

// Stats snapshots the router's counters and per-node state.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Retries:   r.retries.Load(),
		Hedges:    r.hedges.Load(),
		HedgeWins: r.hedgeWins.Load(),
		Nodes:     make([]NodeStats, len(r.nodes)),
	}
	for i, ns := range r.nodes {
		st.Nodes[i] = NodeStats{
			Name:     ns.name,
			Breaker:  ns.br.current(),
			Failures: ns.failures.Load(),
			Hist:     ns.hist,
		}
	}
	return st
}
