package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Transport moves one shard-evaluation request to one node. node is an
// opaque address — a base URL for the HTTP transport, a registered name
// for the loopback. Implementations must be safe for concurrent use;
// the router races hedged attempts through the same transport.
type Transport interface {
	// Eval executes req on the node. Infrastructure failures must
	// satisfy Unavailable so the router retries them; request defects
	// must come back as *RequestError so it does not.
	Eval(ctx context.Context, node string, req *EvalRequest) (*EvalResponse, error)
	// Ready probes the node's readiness (the half-open breaker gate).
	Ready(ctx context.Context, node string) error
}

// maxResponseBytes bounds a shard-eval response body read. Answers of a
// pathological sweep can be large, but anything past this is a protocol
// failure, not data.
const maxResponseBytes = 64 << 20

// HTTPTransport is the real-network transport: POST {node}/v1/shard/eval
// with the JSON request, readiness via GET {node}/readyz. The zero
// value is usable and shares a default client with keep-alives.
type HTTPTransport struct {
	// Client overrides the HTTP client; nil selects a shared default.
	Client *http.Client
}

var defaultClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	},
}

func (t *HTTPTransport) client() *http.Client {
	if t != nil && t.Client != nil {
		return t.Client
	}
	return defaultClient
}

// Eval implements Transport. Status mapping: 200 decodes the response;
// 4xx (a request defect the node diagnosed) becomes a permanent
// *RequestError; everything else — transport errors, 5xx, 429 — is
// ErrUnavailable and retryable.
func (t *HTTPTransport) Eval(ctx context.Context, node string, req *EvalRequest) (*EvalResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, &RequestError{Code: "bad_request", Msg: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/shard/eval", bytes.NewReader(body))
	if err != nil {
		return nil, &RequestError{Code: "bad_request", Msg: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := t.client().Do(hreq)
	if err != nil {
		// Let the router distinguish its own cancellation from a dead
		// node: a context error passes through, a wire error is
		// unavailable.
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %s: %w", ErrUnavailable, node, err)
	}
	defer hres.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hres.Body, maxResponseBytes))
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %s: reading response: %w", ErrUnavailable, node, err)
	}
	switch {
	case hres.StatusCode == http.StatusOK:
		var resp EvalResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			return nil, fmt.Errorf("%w: %s: malformed response: %w", ErrUnavailable, node, err)
		}
		return &resp, nil
	case hres.StatusCode >= 400 && hres.StatusCode < 500 && hres.StatusCode != http.StatusRequestTimeout && hres.StatusCode != http.StatusTooManyRequests:
		return nil, &RequestError{
			Code: fmt.Sprintf("node_status_%d", hres.StatusCode),
			Msg:  truncate(string(data), 512),
		}
	default:
		return nil, fmt.Errorf("%w: %s: status %d: %s", ErrUnavailable, node, hres.StatusCode, truncate(string(data), 512))
	}
}

// Ready implements Transport via the node's /readyz.
func (t *HTTPTransport) Ready(ctx context.Context, node string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/readyz", nil)
	if err != nil {
		return err
	}
	hres, err := t.client().Do(hreq)
	if err != nil {
		return fmt.Errorf("%w: %s: %w", ErrUnavailable, node, err)
	}
	defer hres.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hres.Body, 4096)) //nolint:errcheck // drain for keep-alive
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: readyz status %d", ErrUnavailable, node, hres.StatusCode)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
