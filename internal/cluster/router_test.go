package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"cqa/internal/cluster"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/shard"
	"cqa/internal/workload"
)

// testTopology builds a replicated loopback cluster: every node's store
// holds dbText under dbName.
func testTopology(t *testing.T, names []string, dbName, dbText string) (*cluster.SimNet, []*cluster.LocalNode, *db.DB) {
	t.Helper()
	d, err := db.ParseFacts(nil, dbText)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cluster.LocalNode, len(names))
	for i, name := range names {
		nodes[i] = cluster.NewLocalNode(name)
		nodes[i].Store.Put(dbName, d)
	}
	return cluster.NewSimNet(cluster.NewLoopback(nodes...), 1), nodes, d
}

// falsifiable is an FO query + instance pair that is NOT certain, so a
// Boolean scatter must consult every shard (no early exit) — the shape
// that exposes lost shards.
const falsifiableQuery = "R(x | y), S(y | z)"
const falsifiableDB = "R(a | b)\nR(a | c)\nS(b | z1)\nR(d | e)\nR(d | e2)\nS(e | z2)\nR(f | g)\nR(f | g2)\nS(g | z3)"

func compilePlan(t *testing.T, text string) *core.Plan {
	t.Helper()
	plan, err := core.CompileString(text)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func monoCertain(t *testing.T, plan *core.Plan, d *db.DB) bool {
	t.Helper()
	res, err := plan.CertainIndexed(match.NewIndex(d), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Certain
}

// TestRouterFailoverOnKilledNode crashes one replica of three: every
// shard homed on it fails over along the ring and the verdict stays
// exact.
func TestRouterFailoverOnKilledNode(t *testing.T) {
	sim, _, d := testTopology(t, []string{"n0", "n1", "n2"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	want := monoCertain(t, plan, d)
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:        []string{"n0", "n1", "n2"},
		Shards:       6,
		Transport:    sim,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Crash("n1")
	res, partial, err := r.Certain(context.Background(), plan, "corpus", core.Options{})
	if err != nil {
		t.Fatalf("certain with one dead replica: %v", err)
	}
	if partial != 0 {
		t.Fatalf("replicated failover reported %d failed shards; expected an exact verdict", partial)
	}
	if res.Certain != want {
		t.Fatalf("certain = %v, monolithic = %v", res.Certain, want)
	}
	st := r.Stats()
	if st.Retries == 0 {
		t.Errorf("no retries recorded while a replica was down: %+v", st)
	}
}

// TestRouterRetriesOneWayPartition drops every response from one node
// (the node executes the work; only the answer is lost): retries fail
// over and the verdict stays exact.
func TestRouterRetriesOneWayPartition(t *testing.T) {
	sim, _, d := testTopology(t, []string{"n0", "n1"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	want := monoCertain(t, plan, d)
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:        []string{"n0", "n1"},
		Shards:       4,
		Transport:    sim,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetLink("n0", cluster.LinkFaults{DropResponse: 1})
	res, partial, err := r.Certain(context.Background(), plan, "corpus", core.Options{})
	if err != nil {
		t.Fatalf("certain under one-way partition: %v", err)
	}
	if partial != 0 || res.Certain != want {
		t.Fatalf("partition verdict = (%v, partial %d), want (%v, 0)", res.Certain, partial, want)
	}
	free := []query.Var{"x"}
	ans, err := r.CertainAnswers(context.Background(), plan, "corpus", free, core.Options{})
	if err != nil {
		t.Fatalf("answers under one-way partition: %v", err)
	}
	monoAns, err := plan.CertainAnswers(free, d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != len(monoAns) {
		t.Fatalf("answers under partition: %d, monolithic %d", len(ans), len(monoAns))
	}
}

// TestRouterHedgeWinsOnSlowNode stalls every delivery to one of two
// replicas: the hedged duplicate on the healthy replica wins well under
// the stall.
func TestRouterHedgeWinsOnSlowNode(t *testing.T) {
	sim, _, d := testTopology(t, []string{"n0", "n1"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	want := monoCertain(t, plan, d)
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:        []string{"n0", "n1"},
		Shards:       4,
		Transport:    sim,
		HedgeDelay:   2 * time.Millisecond,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const stall = 400 * time.Millisecond
	sim.SetLink("n0", cluster.LinkFaults{StallEvery: 1, Stall: stall})
	start := time.Now()
	res, partial, err := r.Certain(context.Background(), plan, "corpus", core.Options{})
	if err != nil {
		t.Fatalf("hedged certain: %v", err)
	}
	if partial != 0 || res.Certain != want {
		t.Fatalf("hedged verdict = (%v, partial %d), want (%v, 0)", res.Certain, partial, want)
	}
	if took := time.Since(start); took >= stall {
		t.Errorf("hedged scatter took %v; the duplicate did not win over the %v stall", took, stall)
	}
	st := r.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("expected hedges and hedge wins, got %+v", st)
	}
}

// TestRouterBreakerOpensAndRecovers kills a replica until its breaker
// opens, then restarts it: the half-open probe readmits it and the
// breaker closes again.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	sim, _, _ := testTopology(t, []string{"n0", "n1"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	cooldown := 30 * time.Millisecond
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:            []string{"n0", "n1"},
		Shards:           4,
		Transport:        sim,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Crash("n1")
	breakerIs := func(name string, want cluster.BreakerState) bool {
		for _, ns := range r.Stats().Nodes {
			if ns.Name == name {
				return ns.Breaker == want
			}
		}
		t.Fatalf("node %s missing from stats", name)
		return false
	}
	deadline := time.Now().Add(5 * time.Second)
	for !breakerIs("n1", cluster.BreakerOpen) {
		if time.Now().After(deadline) {
			t.Fatalf("breaker for the dead node never opened: %+v", r.Stats())
		}
		if _, _, err := r.Certain(context.Background(), plan, "corpus", core.Options{}); err != nil {
			t.Fatalf("request failed with a healthy replica available: %v", err)
		}
	}
	sim.Restart("n1")
	time.Sleep(cooldown + 5*time.Millisecond)
	for !breakerIs("n1", cluster.BreakerClosed) {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after restart: %+v", r.Stats())
		}
		if _, _, err := r.Certain(context.Background(), plan, "corpus", core.Options{}); err != nil {
			t.Fatalf("request failed after restart: %v", err)
		}
	}
}

// TestRouterPartialFailureDegradesOrFailsClosed makes a slice of node
// executions fail on a single-replica cluster (no failover possible):
// with Approximate the all-false merge degrades explicitly; without it
// the request fails closed with the shard_unavailable taxonomy — in
// neither case a silently wrong boolean.
func TestRouterPartialFailureDegradesOrFailsClosed(t *testing.T) {
	defer faultinject.Reset()
	sim, _, d := testTopology(t, []string{"solo"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	if monoCertain(t, plan, d) {
		t.Fatal("instance must not be certain for this test")
	}
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:        []string{"solo"},
		Shards:       4,
		Transport:    sim,
		MaxAttempts:  1,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("chaos")
	// Two of the four shard executions fail; the survivors report false.
	faultinject.SetWindow("cluster.node.exec", 0, 2, func(int) error { return boom })
	res, partial, err := r.Certain(context.Background(), plan, "corpus", core.Options{Approximate: true})
	faultinject.Clear("cluster.node.exec")
	if err != nil {
		t.Fatalf("degradable partial scatter errored: %v", err)
	}
	if partial == 0 || !res.Approximate || res.Certain {
		t.Fatalf("partial scatter = %+v (failed %d), want an explicit approximate false", res, partial)
	}
	if res.Fraction <= 0 || res.Fraction >= 1 {
		t.Errorf("surviving fraction %v out of (0,1)", res.Fraction)
	}

	faultinject.SetWindow("cluster.node.exec", 0, 2, func(int) error { return boom })
	_, _, err = r.Certain(context.Background(), plan, "corpus", core.Options{})
	faultinject.Clear("cluster.node.exec")
	if err == nil {
		t.Fatal("non-approximate partial scatter concluded without error")
	}
	if !errors.Is(err, shard.ErrFailed) {
		t.Fatalf("fail-closed error is unstructured: %v", err)
	}
}

// TestRouterAnswersFailClosed: the answers merge is a set union with no
// sound degraded form, so a shard that stays unreachable fails the
// whole request even with Approximate set.
func TestRouterAnswersFailClosed(t *testing.T) {
	defer faultinject.Reset()
	sim, _, _ := testTopology(t, []string{"solo"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:        []string{"solo"},
		Shards:       3,
		Transport:    sim,
		MaxAttempts:  1,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("chaos")
	faultinject.SetWindow("cluster.node.exec", 0, 1, func(int) error { return boom })
	_, err = r.CertainAnswers(context.Background(), plan, "corpus", []query.Var{"x"}, core.Options{Approximate: true})
	faultinject.Clear("cluster.node.exec")
	if err == nil {
		t.Fatal("answers merge concluded from a partial union")
	}
	if !errors.Is(err, shard.ErrFailed) {
		t.Fatalf("fail-closed answers error is unstructured: %v", err)
	}
}

// TestRouterBudgetSharedAcrossCluster: the step budget travels with the
// request (remaining budget per attempt, remote steps charged back), so
// a coNP evaluation that exhausts it surfaces ErrBudgetExceeded — and
// degrades to the node-side sampling estimate when Approximate is set.
func TestRouterBudgetSharedAcrossCluster(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(9))
	d := workload.HardInstance(rng, 30, 120, 4)
	node := cluster.NewLocalNode("solo")
	node.Store.Put("hard", d)
	r, err := cluster.NewRouter(cluster.Config{
		Nodes:     []string{"solo"},
		Transport: cluster.NewLoopback(node),
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Engine: core.EngineCoNP, MaxSteps: 50}
	if _, _, err := r.Certain(context.Background(), plan, "hard", opts); !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Fatalf("tiny budget through the cluster: got %v, want ErrBudgetExceeded", err)
	}
	opts.Approximate = true
	opts.Samples = 64
	res, partial, err := r.Certain(context.Background(), plan, "hard", opts)
	if err != nil {
		t.Fatalf("degraded cluster evaluation failed: %v", err)
	}
	if partial != 0 || !res.Approximate {
		t.Fatalf("expected the node-side sampling degradation, got %+v (partial %d)", res, partial)
	}
}

// TestRouterRequestDefectIsPermanent: a node-diagnosed request defect
// (unknown free variable) returns immediately as a RequestError without
// burning retries.
func TestRouterRequestDefectIsPermanent(t *testing.T) {
	sim, _, _ := testTopology(t, []string{"n0"}, "corpus", falsifiableDB)
	plan := compilePlan(t, falsifiableQuery)
	r, err := cluster.NewRouter(cluster.Config{Nodes: []string{"n0"}, Transport: sim})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.CertainAnswers(context.Background(), plan, "corpus", []query.Var{"nosuch"}, core.Options{})
	var re *cluster.RequestError
	if !errors.As(err, &re) {
		t.Fatalf("unknown free variable: got %v, want RequestError", err)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Errorf("a permanent defect burned %d retries", st.Retries)
	}
}

// TestSimNetDeterminism: the same seed replays the same fault schedule.
func TestSimNetDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		node := cluster.NewLocalNode("n")
		d, err := db.ParseFacts(nil, falsifiableDB)
		if err != nil {
			t.Fatal(err)
		}
		node.Store.Put("corpus", d)
		sim := cluster.NewSimNet(cluster.NewLoopback(node), seed)
		sim.SetLink("n", cluster.LinkFaults{DropRequest: 0.5})
		req := cluster.EvalRequest{Query: "R(x | y), S(y | z)", DB: "corpus", Kind: cluster.KindBool, Shard: 0, Shards: 2, Engine: "fo"}
		var outcomes []bool
		for i := 0; i < 32; i++ {
			_, err := sim.Eval(context.Background(), "n", &req)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedules diverged at delivery %d: %v vs %v", i, a, b)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("seeds 7 and 8 produced identical schedules (possible but unlikely)")
	}
}

// TestNodeExecShardWidthMismatch: a node whose snapshot already cached
// a pool of a different width still evaluates the requested partition
// correctly through the standalone-view fallback, and the union over
// the requested width matches the monolithic verdict.
func TestNodeExecShardWidthMismatch(t *testing.T) {
	node := cluster.NewLocalNode("n")
	d, err := db.ParseFacts(nil, falsifiableDB)
	if err != nil {
		t.Fatal(err)
	}
	snap := node.Store.Put("corpus", d)
	// Pre-build a pool at width 3; requests will name width 5.
	if p := snap.ShardPool(3, 0); p == nil || p.N() != 3 {
		t.Fatal("pool prebuild failed")
	}
	plan := compilePlan(t, falsifiableQuery)
	want := monoCertain(t, plan, d)
	got := false
	for s := 0; s < 5; s++ {
		resp, err := node.Exec(context.Background(), &cluster.EvalRequest{
			Query: plan.Key(), DB: "corpus", Kind: cluster.KindBool, Shard: s, Shards: 5, Engine: "fo",
		})
		if err != nil {
			t.Fatalf("shard %d/5 on a width-3 node: %v", s, err)
		}
		got = got || resp.Certain
	}
	if got != want {
		t.Fatalf("width-mismatch union = %v, monolithic = %v", got, want)
	}
}
