package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker position of one node.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; one probed trial request
	// is allowed through to test the node.
	BreakerHalfOpen
	// BreakerOpen: consecutive failures crossed the threshold; requests
	// skip this node until the cooldown elapses.
	BreakerOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-node closed/open/half-open circuit breaker.
// Transitions: threshold consecutive failures open it; after cooldown
// the next acquire moves it half-open and admits exactly one trial
// (the caller must /readyz-probe first); the trial's success closes it,
// its failure — or a failed probe — re-opens it for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	trial    bool // a half-open trial is in flight
}

// acquire reports whether a request may target this node now. probe is
// true when the admission is a half-open trial: the caller must probe
// readiness first and report probeFailed on a bad probe.
func (b *breaker) acquire(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.trial = true
		return true, true
	default: // BreakerHalfOpen
		if b.trial {
			return false, false
		}
		b.trial = true
		return true, true
	}
}

// success closes the breaker (any state) and resets the failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trial = false
}

// failure records one node fault: a failed half-open trial re-opens
// immediately; in closed state the consecutive-failure run opens the
// breaker at the threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.trial = false
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = now
	}
}

// probeFailed re-opens a half-open breaker whose readiness probe failed
// (the trial never launched).
func (b *breaker) probeFailed(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = now
		b.trial = false
	}
}

// abandon releases a half-open trial slot whose outcome was not
// attributable to the node (the race was decided elsewhere, or the
// request context died): the breaker stays half-open and the next
// acquire may try again.
func (b *breaker) abandon() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trial = false
	}
}

// current returns the state for metrics.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
