package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: "put", Name: "prod", Version: 1, Facts: []string{"R(a | 1)", "R(a | 2)"}},
		{Op: "apply", Name: "prod", Version: 2, Ops: []OpRec{
			{K: "i", F: "R(b | 1)"},
			{K: "d", F: "R(a | 2)"},
			{K: "u", B: []string{"S(x | y)", "S(x | z)"}},
		}},
		{Op: "delete", Name: "prod"},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: "put"}); err == nil {
		t.Error("append after close succeeded")
	}
	var got []Record
	n, err := Replay(dir, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", n, len(recs))
	}
	if got[1].Ops[2].B[1] != "S(x | z)" {
		t.Errorf("record 1 = %+v", got[1])
	}
	if got[2].Op != "delete" || got[2].Name != "prod" {
		t.Errorf("record 2 = %+v", got[2])
	}
}

func TestReplayMissingJournal(t *testing.T) {
	n, err := Replay(t.TempDir(), func(Record) error { t.Fatal("applied"); return nil })
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: "put", Name: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash mid-append: a half-written final line.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"apply","name":"a","ver`)
	f.Close()
	n, err := Replay(dir, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
	// The journal stays appendable after the torn write.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Record{Op: "delete", Name: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(
		"{\"op\":\"put\",\"name\":\"a\"}\nnot json\n{\"op\":\"delete\",\"name\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(Record) error { return nil }); err == nil {
		t.Fatal("corrupt middle record accepted")
	}
}

func TestReplayStopsOnApplyError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.Append(Record{Op: "put", Name: "a"})
	l.Append(Record{Op: "put", Name: "b"})
	l.Close()
	n, err := Replay(dir, func(r Record) error {
		if r.Name == "b" {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
