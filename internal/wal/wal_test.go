package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: "put", Name: "prod", Version: 1, Facts: []string{"R(a | 1)", "R(a | 2)"}},
		{Op: "apply", Name: "prod", Version: 2, Ops: []OpRec{
			{K: "i", F: "R(b | 1)"},
			{K: "d", F: "R(a | 2)"},
			{K: "u", B: []string{"S(x | y)", "S(x | z)"}},
		}},
		{Op: "delete", Name: "prod"},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: "put"}); err == nil {
		t.Error("append after close succeeded")
	}
	var got []Record
	n, err := Replay(dir, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) || len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", n, len(recs))
	}
	if got[1].Ops[2].B[1] != "S(x | z)" {
		t.Errorf("record 1 = %+v", got[1])
	}
	if got[2].Op != "delete" || got[2].Name != "prod" {
		t.Errorf("record 2 = %+v", got[2])
	}
}

func TestReplayMissingJournal(t *testing.T) {
	n, err := Replay(t.TempDir(), func(Record) error { t.Fatal("applied"); return nil })
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: "put", Name: "a", Version: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash mid-append: a half-written final line.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"apply","name":"a","ver`)
	f.Close()
	n, err := Replay(dir, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records, want 1", n)
	}
	// The journal stays appendable after the torn write.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(Record{Op: "delete", Name: "a"}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(
		"{\"op\":\"put\",\"name\":\"a\"}\nnot json\n{\"op\":\"delete\",\"name\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(Record) error { return nil }); err == nil {
		t.Fatal("corrupt middle record accepted")
	}
}

func TestReplayStopsOnApplyError(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.Append(Record{Op: "put", Name: "a"})
	l.Append(Record{Op: "put", Name: "b"})
	l.Close()
	n, err := Replay(dir, func(r Record) error {
		if r.Name == "b" {
			return os.ErrInvalid
		}
		return nil
	})
	if err == nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestStatsAndWarnThreshold(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Bytes != 0 || st.Records != 0 {
		t.Fatalf("fresh journal stats = %+v, want zero", st)
	}
	var warns []int64
	l.SetWarn(1, func(bytes int64) { warns = append(warns, bytes) })
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Op: "put", Name: "prod", Version: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Records != 3 {
		t.Fatalf("records = %d, want 3", st.Records)
	}
	fi, err := os.Stat(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != fi.Size() {
		t.Fatalf("bytes gauge %d, file size %d", st.Bytes, fi.Size())
	}
	// The warning fires exactly once, from the append that crossed the
	// threshold.
	if len(warns) != 1 || warns[0] <= 0 {
		t.Fatalf("warns = %v, want exactly one positive", warns)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: counters resume from what is on disk, torn tails excluded.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","na`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2 := l2.Stats()
	if st2.Records != 3 {
		t.Fatalf("reopened records = %d, want 3 (torn tail uncounted)", st2.Records)
	}
	if st2.Bytes <= st.Bytes {
		t.Fatalf("reopened bytes = %d, want > %d (torn tail bytes included)", st2.Bytes, st.Bytes)
	}
}
