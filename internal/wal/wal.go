// Package wal implements the optional append-only write-ahead journal
// of the serving store: one JSON record per line, appended and fsynced
// before the corresponding mutation publishes, and replayed on boot to
// restore the exact snapshot version chain. The package is deliberately
// dumb — it knows records, not databases; the store decides what a
// record means.
//
// Records are journaled before the in-memory publish (redo logging), so
// a crash between the append and the publish replays the mutation on
// boot: the journal is the source of truth for what was acknowledged.
// A torn final line — the fingerprint of a crash mid-append — is
// discarded on replay and overwritten by the next append.
package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileName is the journal file inside the WAL directory.
const FileName = "wal.log"

// Record is one journal entry.
type Record struct {
	// Op is "put" (full upload), "apply" (delta), or "delete".
	Op   string `json:"op"`
	Name string `json:"name"`
	// Version is the snapshot version the mutation produced; replay
	// verifies the rebuilt chain reproduces it exactly.
	Version uint64 `json:"version,omitempty"`
	// Facts is the full fact list of a put, one rendered fact per entry.
	Facts []string `json:"facts,omitempty"`
	// Ops is the operation list of an apply.
	Ops []OpRec `json:"ops,omitempty"`
}

// OpRec is one delta operation in rendered-fact form.
type OpRec struct {
	// K is "i" (insert), "d" (delete), or "u" (upsert block).
	K string `json:"k"`
	// F is the fact of an insert or delete.
	F string `json:"f,omitempty"`
	// B is the block contents of an upsert.
	B []string `json:"b,omitempty"`
}

// Log is an open journal. Append is safe for concurrent use; the store
// additionally serializes appends with publishes so the journal order
// is the publish order.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// bytes and records track the journal size (including what was on
	// disk at Open): an append-only journal with no compaction grows
	// forever, so both are exported as gauges and checked against the
	// warn threshold.
	bytes   int64
	records int64
	// warnBytes, when > 0, invokes warn once when bytes first crosses
	// it — the operator signal to rotate or snapshot-compact.
	warnBytes int64
	warn      func(bytes int64)
	warned    bool
}

// Stats is a point-in-time size summary of the journal.
type Stats struct {
	// Bytes is the journal file size, pre-existing content included.
	Bytes int64
	// Records counts journal records: replayed-at-open plus appended.
	Records int64
}

// Open creates the directory if needed and opens the journal for
// appending. The size counters start from what is already on disk, so
// gauges survive restarts.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, path: path}
	if st, err := f.Stat(); err == nil {
		l.bytes = st.Size()
	}
	l.records = countRecords(path)
	return l, nil
}

// countRecords counts the newline-terminated records already in the
// journal; a torn tail (no trailing newline) is not counted, matching
// what Replay would apply.
func countRecords(path string) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	var n int64
	buf := make([]byte, 64<<10)
	for {
		k, err := f.Read(buf)
		for _, b := range buf[:k] {
			if b == '\n' {
				n++
			}
		}
		if err != nil {
			return n
		}
	}
}

// SetWarn arms the size warning: warn fires once, from the Append that
// first pushes the journal past threshold bytes. threshold <= 0
// disarms it.
func (l *Log) SetWarn(threshold int64, warn func(bytes int64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.warnBytes = threshold
	l.warn = warn
	l.warned = false
}

// Stats returns the journal's current size counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Bytes: l.bytes, Records: l.records}
}

// Path returns the journal file path.
func (l *Log) Path() string { return l.path }

// Append journals one record: marshal, write with a trailing newline,
// fsync. The record is durable when Append returns.
func (l *Log) Append(r Record) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("wal: marshal: %w", err)
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.bytes += int64(len(buf))
	l.records++
	if l.warnBytes > 0 && !l.warned && l.bytes >= l.warnBytes {
		l.warned = true
		if l.warn != nil {
			// Called under the lock: keep the callback cheap (log a line).
			l.warn(l.bytes)
		}
	}
	return nil
}

// Close closes the journal. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay reads the journal in the directory and invokes apply on each
// record in order, returning the number of records applied. A missing
// journal replays nothing. A final line that does not parse is a torn
// tail from a crash mid-append and is skipped; a malformed line with
// valid records after it is corruption and fails the replay.
func Replay(dir string, apply func(Record) error) (int, error) {
	f, err := os.Open(filepath.Join(dir, FileName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("wal: read: %w", err)
	}
	n := 0
	for i, line := range lines {
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			if i == len(lines)-1 {
				return n, nil // torn tail: the crash interrupted this append
			}
			return n, fmt.Errorf("wal: corrupt record %d: %w", i+1, err)
		}
		if err := apply(r); err != nil {
			return n, fmt.Errorf("wal: replay record %d: %w", i+1, err)
		}
		n++
	}
	return n, nil
}
