package attack

import (
	"fmt"
	"strings"
)

// Explanation justifies a classification in the paper's terms: an
// elimination order for FO, a weak 2-cycle for P\FO, or a strong 2-cycle
// with its failed key dependency for coNP-complete.
type Explanation struct {
	Class Class
	// EliminationOrder lists atom indices in an order where each atom is
	// unattacked once its predecessors are removed (FO case only).
	EliminationOrder []int
	// CyclePair holds a 2-cycle F <-> G (cyclic cases only).
	CyclePair [2]int
	// Text is the human-readable account.
	Text string
}

// Explain justifies the classification of the query.
func (g *Graph) Explain() Explanation {
	if g.HasStrongCycle() {
		return g.explainStrong()
	}
	if g.HasCycle() {
		return g.explainWeak()
	}
	return g.explainAcyclic()
}

func (g *Graph) explainAcyclic() Explanation {
	// Peel unattacked atoms; Lemma 6 keeps the graph acyclic at every
	// step of the corresponding Lemma 9 recursion, which this order
	// mirrors syntactically.
	n := g.Q.Len()
	removed := make([]bool, n)
	var order []int
	for len(order) < n {
		progress := false
		for j := 0; j < n; j++ {
			if removed[j] {
				continue
			}
			attacked := false
			for i := 0; i < n; i++ {
				if !removed[i] && g.Edge[i][j] {
					attacked = true
					break
				}
			}
			if !attacked {
				order = append(order, j)
				removed[j] = true
				progress = true
			}
		}
		if !progress {
			break // cannot happen for acyclic graphs
		}
	}
	var b strings.Builder
	b.WriteString("The attack graph is acyclic, so CERTAINTY(q) is in FO (Theorem 2).\n")
	b.WriteString("A consistent first-order rewriting eliminates atoms in the order:\n  ")
	names := make([]string, len(order))
	for i, j := range order {
		names[i] = g.Q.Atoms[j].Rel.Name
	}
	b.WriteString(strings.Join(names, ", "))
	b.WriteString("\n(each atom is unattacked when its turn comes; Lemmas 9 and 10).")
	return Explanation{Class: FO, EliminationOrder: order, Text: b.String()}
}

// weakPair finds a 2-cycle; strong selects one with a strong attack.
func (g *Graph) cyclePair(strong bool) (int, int, bool) {
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.Edge[i][j] || !g.Edge[j][i] {
				continue
			}
			isStrong := !g.WeakEdge[i][j] || !g.WeakEdge[j][i]
			if isStrong == strong {
				return i, j, true
			}
		}
	}
	// Fall back to any 2-cycle.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Edge[i][j] && g.Edge[j][i] {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

func (g *Graph) describeAttack(i, j int) string {
	path := g.Witness(i, j)
	vars := g.WitnessVars(i, path)
	var steps []string
	for k := 1; k < len(path); k++ {
		steps = append(steps, fmt.Sprintf("-%s- %s", vars[k-1], g.Q.Atoms[path[k]].Rel.Name))
	}
	kind := "strong"
	if g.WeakEdge[i][j] {
		kind = "weak"
	}
	return fmt.Sprintf("%s ~> %s (%s; witness %s %s)",
		g.Q.Atoms[i].Rel.Name, g.Q.Atoms[j].Rel.Name, kind,
		g.Q.Atoms[i].Rel.Name, strings.Join(steps, " "))
}

func (g *Graph) explainWeak() Explanation {
	i, j, _ := g.cyclePair(false)
	var b strings.Builder
	b.WriteString("The attack graph is cyclic but every cycle is weak, so CERTAINTY(q)\n")
	b.WriteString("is in P and L-hard, hence not in FO (Theorem 1, case 2).\n")
	b.WriteString("A weak 2-cycle (Lemma 5):\n")
	fmt.Fprintf(&b, "  %s\n  %s\n", g.describeAttack(i, j), g.describeAttack(j, i))
	fmt.Fprintf(&b, "Both key dependencies hold in K(q): key(%s) -> key(%s) and back,\n",
		g.Q.Atoms[i].Rel.Name, g.Q.Atoms[j].Rel.Name)
	b.WriteString("so the cycle dissolves via Markov cycles (Theorem 4).")
	return Explanation{Class: PTime, CyclePair: [2]int{i, j}, Text: b.String()}
}

func (g *Graph) explainStrong() Explanation {
	i, j, _ := g.cyclePair(true)
	var b strings.Builder
	b.WriteString("The attack graph contains a strong cycle, so CERTAINTY(q) is\n")
	b.WriteString("coNP-complete (Theorem 3). A strong 2-cycle (Lemma 5):\n")
	fmt.Fprintf(&b, "  %s\n  %s\n", g.describeAttack(i, j), g.describeAttack(j, i))
	fi, fj := g.Q.Atoms[i], g.Q.Atoms[j]
	if !g.WeakEdge[i][j] {
		fmt.Fprintf(&b, "K(q) does not entail key(%s) -> key(%s): %s does not determine %s.",
			fi.Rel.Name, fj.Rel.Name, fi.KeyVars(), fj.KeyVars())
	} else {
		fmt.Fprintf(&b, "K(q) does not entail key(%s) -> key(%s): %s does not determine %s.",
			fj.Rel.Name, fi.Rel.Name, fj.KeyVars(), fi.KeyVars())
	}
	return Explanation{Class: CoNPComplete, CyclePair: [2]int{i, j}, Text: b.String()}
}
