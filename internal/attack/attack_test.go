package attack

import (
	"math/rand"
	"testing"

	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/workload"
)

func mustGraph(t *testing.T, s string) *Graph {
	t.Helper()
	g, err := BuildGraph(query.MustParse(s))
	if err != nil {
		t.Fatalf("BuildGraph(%q): %v", s, err)
	}
	return g
}

func atomIndex(t *testing.T, g *Graph, rel string) int {
	t.Helper()
	for i, a := range g.Q.Atoms {
		if a.Rel.Name == rel {
			return i
		}
	}
	t.Fatalf("no atom %s in %s", rel, g.Q)
	return -1
}

// edgeSet extracts the attack edges as "R->S" strings.
func edgeSet(g *Graph) map[string]bool {
	out := make(map[string]bool)
	for i := range g.Q.Atoms {
		for j := range g.Q.Atoms {
			if g.Edge[i][j] {
				out[g.Q.Atoms[i].Rel.Name+"->"+g.Q.Atoms[j].Rel.Name] = true
			}
		}
	}
	return out
}

func wantEdges(t *testing.T, g *Graph, want []string) {
	t.Helper()
	got := edgeSet(g)
	for _, e := range want {
		if !got[e] {
			t.Errorf("missing attack %s\ngraph:\n%s", e, g)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d attacks, want %d\ngraph:\n%s", len(got), len(want), g)
	}
}

// TestFigure1 checks the attack graph of Example 2 / Figure 1:
// q = {R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)}.
func TestFigure1(t *testing.T) {
	g := mustGraph(t, "R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)")

	// R^{+,q} = {x, u, v} as computed in Example 2.
	r := atomIndex(t, g, "R")
	if got, want := g.Plus[r], query.NewVarSet("x", "u", "v"); !got.Equal(want) {
		t.Errorf("R^{+,q} = %s, want %s", got, want)
	}

	wantEdges(t, g, []string{
		"R->S", "R->T",
		"S->R", "S->T", "S->U", "S->V",
		"T->R", "T->S", "T->U", "T->V",
		"U->V",
	})

	// "All attacks are weak."
	for i := range g.Q.Atoms {
		for j := range g.Q.Atoms {
			if g.Edge[i][j] && !g.WeakEdge[i][j] {
				t.Errorf("attack %s -> %s should be weak",
					g.Q.Atoms[i].Rel.Name, g.Q.Atoms[j].Rel.Name)
			}
		}
	}

	// Witness for R ~> T passes through S (R -y- S -z- T).
	w := g.Witness(r, atomIndex(t, g, "T"))
	if len(w) != 3 || g.Q.Atoms[w[1]].Rel.Name != "S" {
		t.Errorf("witness for R ~> T = %v, want R, S, T", w)
	}
	vars := g.WitnessVars(r, w)
	if len(vars) != 2 || vars[0] != "y" || vars[1] != "z" {
		t.Errorf("witness vars = %v, want [y z]", vars)
	}

	if got := g.Classify(); got != PTime {
		t.Errorf("Classify = %v, want P\\FO (cyclic, all weak)", got)
	}

	// Example 3: R, S, T form an initial strong component.
	comp, initial := g.StrongComponents()
	s, tt := atomIndex(t, g, "S"), atomIndex(t, g, "T")
	if comp[r] != comp[s] || comp[s] != comp[tt] {
		t.Errorf("R, S, T should share a strong component: %v", comp)
	}
	if !initial[comp[r]] {
		t.Errorf("component of R, S, T should be initial")
	}
	u, v := atomIndex(t, g, "U"), atomIndex(t, g, "V")
	if comp[u] == comp[r] || comp[v] == comp[r] || comp[u] == comp[v] {
		t.Errorf("U and V should be singleton components: %v", comp)
	}
}

// TestFigure2 checks the attack graph of Example 7 / Figure 2 (left):
// q = {R(x|y,v), S(y|x), V1#c(v|w), W(w|v), V2#c(w|y)}.
func TestFigure2(t *testing.T) {
	g := mustGraph(t, "R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)")
	wantEdges(t, g, []string{
		"R->S", "S->R",
		"R->V1", "R->W", "R->V2",
		"S->V1", "S->W", "S->V2",
	})
	if got := g.Classify(); got != PTime {
		t.Errorf("Classify = %v, want P\\FO", got)
	}
	// R and S form an initial strong component.
	comp, initial := g.StrongComponents()
	r, s := atomIndex(t, g, "R"), atomIndex(t, g, "S")
	if comp[r] != comp[s] || !initial[comp[r]] {
		t.Errorf("R, S should form an initial strong component")
	}
}

// TestExample4 checks attacks on variables: for q = {R(x|y)} the attack
// graph has no edge, yet R attacks y; and every witness variable is
// attacked by the witness's start atom.
func TestExample4(t *testing.T) {
	g := mustGraph(t, "R(x | y)")
	if g.HasCycle() {
		t.Fatal("single-atom query cannot have attack cycles")
	}
	r := 0
	if !g.AttacksVar(r, "y") {
		t.Errorf("R should attack y")
	}
	if g.AttacksVar(r, "x") {
		t.Errorf("R should not attack x (x is in key(R) ⊆ R^{+,q})")
	}

	// Figure 1 query: R attacks the witness variables y and z on the
	// witness R -y- S -z- T.
	g2 := mustGraph(t, "R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)")
	r2 := atomIndex(t, g2, "R")
	for _, z := range []query.Var{"y", "z"} {
		if !g2.AttacksVar(r2, z) {
			t.Errorf("R should attack witness variable %s", z)
		}
	}
	for _, z := range []query.Var{"x", "u", "v"} {
		if g2.AttacksVar(r2, z) {
			t.Errorf("R should not attack %s ∈ R^{+,q}", z)
		}
	}
}

// TestAttacksVarLiteralDefinition cross-checks the direct AttacksVar
// computation against the literal Definition 2: F attacks z iff F attacks
// the fresh atom N(z) in q ∪ {N(z)}.
func TestAttacksVarLiteralDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range q.Vars().Sorted() {
			fresh := schema.Relation{Name: "ZZfresh", Arity: 1, KeyLen: 1, Mode: schema.ModeI}
			q2 := q.Add(query.NewAtom(fresh, query.V(z)))
			g2, err := BuildGraph(q2)
			if err != nil {
				t.Fatal(err)
			}
			zIdx := -1
			for i, a := range g2.Q.Atoms {
				if a.Rel.Name == "ZZfresh" {
					zIdx = i
				}
			}
			for i, a := range q.Atoms {
				i2 := -1
				for k, b := range g2.Q.Atoms {
					if b.Rel.Name == a.Rel.Name {
						i2 = k
					}
				}
				got := g.AttacksVar(i, z)
				want := g2.Edge[i2][zIdx]
				if got != want {
					t.Fatalf("q=%s: AttacksVar(%s, %s)=%v, literal Definition 2 gives %v",
						q, a.Rel.Name, z, got, want)
				}
			}
		}
	}
}

// TestLemma4Fork checks Lemma 4 on random queries: if F ~> G and G ~> H
// (F, G, H pairwise distinct is not required beyond F≠G, G≠H per the
// attack relation), then F ~> H or G ~> F.
func TestLemma4Fork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		n := q.Len()
		for f := 0; f < n; f++ {
			for gg := 0; gg < n; gg++ {
				if !g.Edge[f][gg] {
					continue
				}
				for h := 0; h < n; h++ {
					if !g.Edge[gg][h] || h == f {
						continue
					}
					if !g.Edge[f][h] && !g.Edge[gg][f] {
						t.Fatalf("Lemma 4 violated on %s: %s~>%s, %s~>%s but neither %s~>%s nor %s~>%s",
							q, q.Atoms[f].Rel.Name, q.Atoms[gg].Rel.Name,
							q.Atoms[gg].Rel.Name, q.Atoms[h].Rel.Name,
							q.Atoms[f].Rel.Name, q.Atoms[h].Rel.Name,
							q.Atoms[gg].Rel.Name, q.Atoms[f].Rel.Name)
					}
				}
			}
		}
	}
}

// TestLemma5CycleCriteria checks on random queries that the 2-cycle
// criteria agree with full SCC-based cycle detection (Lemma 5).
func TestLemma5CycleCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 800; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(5)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if g.HasCycle() != g.HasCycleSCC() {
			t.Fatalf("Lemma 5(1) violated on %s", q)
		}
		if g.HasStrongCycle() != g.HasStrongCycleSCC() {
			t.Fatalf("Lemma 5(2) violated on %s", q)
		}
	}
}

// TestLemma6Instantiation checks that substituting a constant for a
// variable preserves acyclicity and strong-cycle-freeness of the attack
// graph (Lemma 6).
func TestLemma6Instantiation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		vars := q.Vars().Sorted()
		if len(vars) == 0 {
			continue
		}
		x := vars[rng.Intn(len(vars))]
		q2 := q.Substitute(query.Valuation{x: "someconst"})
		g2, err := BuildGraph(q2)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() && g2.HasCycle() {
			t.Fatalf("Lemma 6(1) violated: %s acyclic but %s cyclic", q, q2)
		}
		if !g.HasStrongCycle() && g2.HasStrongCycle() {
			t.Fatalf("Lemma 6(2) violated: %s strong-cycle-free but %s has strong cycle", q, q2)
		}
	}
}

// TestClassifyKnownQueries pins down the trichotomy on canonical queries.
func TestClassifyKnownQueries(t *testing.T) {
	cases := []struct {
		q    string
		want Class
	}{
		{"R(x | y)", FO},
		{"R(x | y), S(y | z)", FO},
		{"R(x | y), S(y | 'b')", FO},                                         // Example 5
		{"R0(x | y), S0(y | x)", PTime},                                      // q0, Lemma 7
		{"R(x | y), S(u | y)", CoNPComplete},                                 // non-key join
		{"R(x | y), S(y | z), T(z | x), U(x | u), V(x, u | v)", PTime},       // Figure 1
		{"R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)", PTime}, // Figure 2
		{"R(x, y | z), S(y, z | x)", PTime},                                  // composite-key weak cycle? see below
		{"R(x | x)", FO},
		{"R(x | y), S(y | x), T(u | y)", CoNPComplete}, // T joins on non-key
	}
	for _, c := range cases {
		got, _, err := Classify(query.MustParse(c.q))
		if err != nil {
			t.Fatalf("Classify(%q): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestModeCNeverAttacks: mode-c atoms contain their own key FD in the
// closure basis, so vars(F) ⊆ F^{+,q} and F cannot start a witness.
func TestModeCNeverAttacks(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(5)
		p.PModeC = 0.5
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range q.Atoms {
			if a.Rel.Mode != schema.ModeC {
				continue
			}
			for j := range q.Atoms {
				if g.Edge[i][j] {
					t.Fatalf("mode-c atom %s attacks %s in %s",
						a.Rel.Name, q.Atoms[j].Rel.Name, q)
				}
			}
		}
	}
}

// TestUnattacked: in an acyclic attack graph some atom is unattacked.
func TestUnattacked(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(5)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() && q.Len() > 0 && len(g.Unattacked()) == 0 {
			t.Fatalf("acyclic attack graph with no unattacked atom: %s", q)
		}
	}
}

func TestWeakStrongOnNonKeyJoin(t *testing.T) {
	g := mustGraph(t, "R(x | y), S(u | y)")
	r, s := atomIndex(t, g, "R"), atomIndex(t, g, "S")
	if !g.Edge[r][s] || !g.Edge[s][r] {
		t.Fatalf("R and S should attack each other:\n%s", g)
	}
	if g.WeakEdge[r][s] || g.WeakEdge[s][r] {
		t.Errorf("attacks should be strong (keys do not determine each other)")
	}
	if got := g.Classify(); got != CoNPComplete {
		t.Errorf("Classify = %v, want coNP-complete", got)
	}
}

func TestDOTAndString(t *testing.T) {
	g := mustGraph(t, "R(x | y), S(u | y)")
	if dot := g.DOT(); len(dot) == 0 || dot[0] != 'd' {
		t.Errorf("DOT output looks wrong: %q", dot)
	}
	if s := g.String(); s == "(no attacks)" {
		t.Errorf("expected attacks in String output")
	}
	empty, err := BuildGraph(query.MustParse(""))
	if err != nil {
		t.Fatal(err)
	}
	if s := empty.String(); s != "(no attacks)" {
		t.Errorf("empty graph String = %q", s)
	}
}
