package attack

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/workload"
)

func TestExplainFO(t *testing.T) {
	g := mustGraph(t, "R(x | y), S(y | z)")
	e := g.Explain()
	if e.Class != FO {
		t.Fatalf("class %v", e.Class)
	}
	if len(e.EliminationOrder) != 2 {
		t.Fatalf("order %v", e.EliminationOrder)
	}
	// R must come before S (S is attacked by R).
	if g.Q.Atoms[e.EliminationOrder[0]].Rel.Name != "R" {
		t.Errorf("elimination should start with R: %v", e.EliminationOrder)
	}
	if !strings.Contains(e.Text, "acyclic") || !strings.Contains(e.Text, "FO") {
		t.Errorf("text: %s", e.Text)
	}
}

func TestExplainWeak(t *testing.T) {
	g := mustGraph(t, "R0(x | y), S0(y | x)")
	e := g.Explain()
	if e.Class != PTime {
		t.Fatalf("class %v", e.Class)
	}
	for _, frag := range []string{"weak", "P and L-hard", "witness", "~>"} {
		if !strings.Contains(e.Text, frag) {
			t.Errorf("text missing %q:\n%s", frag, e.Text)
		}
	}
}

func TestExplainStrong(t *testing.T) {
	g := mustGraph(t, "R(x | y), S(u | y)")
	e := g.Explain()
	if e.Class != CoNPComplete {
		t.Fatalf("class %v", e.Class)
	}
	for _, frag := range []string{"strong cycle", "coNP-complete", "does not determine"} {
		if !strings.Contains(e.Text, frag) {
			t.Errorf("text missing %q:\n%s", frag, e.Text)
		}
	}
	i, j := e.CyclePair[0], e.CyclePair[1]
	if !g.Edge[i][j] || !g.Edge[j][i] {
		t.Error("CyclePair is not a 2-cycle")
	}
	if g.WeakEdge[i][j] && g.WeakEdge[j][i] {
		t.Error("CyclePair should include a strong attack")
	}
}

// TestExplainConsistentWithClassify: Explain never contradicts Classify
// and, on FO queries, the elimination order is complete and valid.
func TestExplainConsistentWithClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 400; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(5)
		q := workload.RandomQuery(rng, p)
		g, err := BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		e := g.Explain()
		if e.Class != g.Classify() {
			t.Fatalf("Explain class %v != Classify %v on %s", e.Class, g.Classify(), q)
		}
		if e.Class == FO {
			if len(e.EliminationOrder) != q.Len() {
				t.Fatalf("incomplete elimination order on %s: %v", q, e.EliminationOrder)
			}
			removed := make([]bool, q.Len())
			for _, j := range e.EliminationOrder {
				for i := 0; i < q.Len(); i++ {
					if !removed[i] && g.Edge[i][j] {
						t.Fatalf("atom %d eliminated while attacked by %d in %s", j, i, q)
					}
				}
				removed[j] = true
			}
		}
	}
}
