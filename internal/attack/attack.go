// Package attack implements attack graphs (Section 4 of Koutris & Wijsen,
// PODS 2015) for self-join-free Boolean conjunctive queries, together with
// the trichotomy classification of Theorem 1:
//
//   - acyclic attack graph            -> CERTAINTY(q) in FO
//   - cyclic, no strong cycle         -> CERTAINTY(q) in P, L-hard (not FO)
//   - strong cycle                    -> CERTAINTY(q) coNP-complete
package attack

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/dgraph"
	"cqa/internal/fd"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// Class is the complexity class of CERTAINTY(q) per Theorem 1.
type Class int

const (
	// FO: the certain answer is first-order expressible (consistent
	// first-order rewriting exists).
	FO Class = iota
	// PTime: in P but L-hard, hence not in FO.
	PTime
	// CoNPComplete: coNP-complete.
	CoNPComplete
)

// String renders the class the way the paper writes it.
func (c Class) String() string {
	switch c {
	case FO:
		return "FO"
	case PTime:
		return "P\\FO"
	case CoNPComplete:
		return "coNP-complete"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Graph is the attack graph of a self-join-free Boolean conjunctive query.
// Vertices are atom indices into Q.Atoms.
type Graph struct {
	Q query.Query
	// Plus[i] is F^{+,q} for atom i: the closure of key(F) under
	// K((q \ {F}) ∪ [[q]]).
	Plus []query.VarSet
	// Edge[i][j] reports an attack from atom i to atom j.
	Edge [][]bool
	// WeakEdge[i][j] reports whether the attack i -> j is weak
	// (K(q) |= key(F) -> key(G)); meaningful only where Edge[i][j].
	WeakEdge [][]bool
	// witnessAdj[i] is, per attacker i, the adjacency of the "witness
	// graph": atoms H, H' are adjacent iff vars(H) ∩ vars(H') ⊄ Plus[i].
	witnessAdj [][][]int
	// reach[i][j] reports whether atom j is reachable from atom i in
	// attacker i's witness graph (including j == i).
	reach [][]bool
	kq    fd.Set
}

// BuildGraph computes the attack graph of q. The query must be
// self-join-free and well formed.
func BuildGraph(q query.Query) (*Graph, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.SelfJoinFree() {
		return nil, fmt.Errorf("attack: query %s has a self-join", q)
	}
	n := q.Len()
	g := &Graph{
		Q:          q,
		Plus:       make([]query.VarSet, n),
		Edge:       make([][]bool, n),
		WeakEdge:   make([][]bool, n),
		witnessAdj: make([][][]int, n),
		reach:      make([][]bool, n),
		kq:         fd.K(q),
	}
	vars := make([]query.VarSet, n)
	for i, a := range q.Atoms {
		vars[i] = a.Vars()
	}
	for i := range q.Atoms {
		g.Plus[i] = plusSet(q, i)
		// Witness graph for attacker i.
		adj := make([][]int, n)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if sharesOutside(vars[a], vars[b], g.Plus[i]) {
					adj[a] = append(adj[a], b)
					adj[b] = append(adj[b], a)
				}
			}
		}
		g.witnessAdj[i] = adj
		// Reachability from i.
		seen := make([]bool, n)
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		g.reach[i] = seen
		g.Edge[i] = make([]bool, n)
		g.WeakEdge[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if j != i && seen[j] {
				g.Edge[i][j] = true
				g.WeakEdge[i][j] = g.kq.Implies(q.Atoms[i].KeyVars(), q.Atoms[j].KeyVars())
			}
		}
	}
	return g, nil
}

// plusSet computes F^{+,q} for atom index i:
// {x in vars(q) | K((q \ {F}) ∪ [[q]]) |= key(F) -> x}.
func plusSet(q query.Query, i int) query.VarSet {
	var fds fd.Set
	for j, a := range q.Atoms {
		if j == i && a.Rel.Mode != schema.ModeC {
			continue // drop F itself unless it belongs to [[q]]
		}
		fds = append(fds, fd.FD{From: a.KeyVars(), To: a.Vars()})
	}
	return fds.Closure(q.Atoms[i].KeyVars())
}

// sharesOutside reports vars(a) ∩ vars(b) ⊄ plus: some shared variable
// lies outside plus.
func sharesOutside(a, b, plus query.VarSet) bool {
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	for v := range small {
		if large.Has(v) && !plus.Has(v) {
			return true
		}
	}
	return false
}

// Attacks reports whether atom i attacks atom j.
func (g *Graph) Attacks(i, j int) bool { return g.Edge[i][j] }

// Weak reports whether the attack i -> j is weak; callers should check
// Attacks(i, j) first.
func (g *Graph) Weak(i, j int) bool { return g.WeakEdge[i][j] }

// AttacksVar reports whether atom i attacks the variable z
// (Definition 2). Unfolding the definition: adding a fresh simple-key
// atom R(z) leaves F^{+,q} unchanged, so F attacks R(z) iff z ∉ F^{+,q}
// and z occurs in some atom reachable from F in F's witness graph
// (including F itself).
func (g *Graph) AttacksVar(i int, z query.Var) bool {
	if g.Plus[i].Has(z) {
		return false
	}
	for j, a := range g.Q.Atoms {
		if g.reach[i][j] && a.Vars().Has(z) {
			return true
		}
	}
	return false
}

// Witness returns a witness for the attack i -> j: a sequence of atom
// indices F0, ..., Fn with F0 = i, Fn = j, and consecutive atoms sharing a
// variable outside Plus[i]. It returns nil when i does not attack j.
func (g *Graph) Witness(i, j int) []int {
	if i == j || !g.Edge[i][j] {
		return nil
	}
	// BFS in attacker i's witness graph.
	n := g.Q.Len()
	prev := make([]int, n)
	for k := range prev {
		prev[k] = -2
	}
	prev[i] = -1
	queue := []int{i}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == j {
			break
		}
		for _, v := range g.witnessAdj[i][u] {
			if prev[v] == -2 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[j] == -2 {
		return nil
	}
	var rev []int
	for u := j; u != -1; u = prev[u] {
		rev = append(rev, u)
	}
	out := make([]int, len(rev))
	for k := range rev {
		out[k] = rev[len(rev)-1-k]
	}
	return out
}

// WitnessVars returns, for a witness path, the connecting variables z1,
// ..., zn with zi ∈ vars(F(i-1)) ∩ vars(Fi) and zi ∉ Plus[attacker].
func (g *Graph) WitnessVars(attacker int, path []int) []query.Var {
	var out []query.Var
	for k := 1; k < len(path); k++ {
		shared := g.Q.Atoms[path[k-1]].Vars().Intersect(g.Q.Atoms[path[k]].Vars())
		var pick query.Var
		found := false
		for _, v := range shared.Sorted() {
			if !g.Plus[attacker].Has(v) {
				pick = v
				found = true
				break
			}
		}
		if !found {
			return nil
		}
		out = append(out, pick)
	}
	return out
}

// Unattacked returns the indices of atoms with indegree zero in the attack
// graph, in atom order.
func (g *Graph) Unattacked() []int {
	n := g.Q.Len()
	var out []int
	for j := 0; j < n; j++ {
		attacked := false
		for i := 0; i < n; i++ {
			if g.Edge[i][j] {
				attacked = true
				break
			}
		}
		if !attacked {
			out = append(out, j)
		}
	}
	return out
}

// HasCycle reports whether the attack graph contains a directed cycle.
// By Lemma 5(1) this holds iff it contains a cycle of size two; both the
// 2-cycle criterion and full SCC detection are equivalent here, and the
// implementation uses 2-cycles.
func (g *Graph) HasCycle() bool {
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Edge[i][j] && g.Edge[j][i] {
				return true
			}
		}
	}
	return false
}

// HasCycleSCC decides cyclicity via strongly connected components; used to
// cross-validate Lemma 5(1) in tests.
func (g *Graph) HasCycleSCC() bool {
	return g.toDgraph().HasCycle()
}

// HasStrongCycle reports whether the attack graph contains a strong cycle
// (a cycle with at least one strong attack). By Lemma 5(2) this holds iff
// there is a strong cycle of size two.
func (g *Graph) HasStrongCycle() bool {
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Edge[i][j] && g.Edge[j][i] && (!g.WeakEdge[i][j] || !g.WeakEdge[j][i]) {
				return true
			}
		}
	}
	return false
}

// HasStrongCycleSCC decides strong-cycle existence via SCCs: a strong
// attack whose endpoints lie in one strongly connected component closes to
// a strong cycle. Used to cross-validate Lemma 5(2) in tests.
func (g *Graph) HasStrongCycleSCC() bool {
	comp, _ := g.toDgraph().SCC()
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && g.Edge[i][j] && !g.WeakEdge[i][j] && comp[i] == comp[j] {
				return true
			}
		}
	}
	return false
}

func (g *Graph) toDgraph() *dgraph.Graph {
	n := g.Q.Len()
	dg := dgraph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.Edge[i][j] {
				dg.AddEdge(i, j)
			}
		}
	}
	return dg
}

// StrongComponents returns the component index of every atom and, per
// component, whether it is initial (no incoming edge from another
// component), per Definition 1.
func (g *Graph) StrongComponents() (comp []int, initial []bool) {
	return g.toDgraph().InitialComponents()
}

// InInitialStrongComponent reports whether atom i belongs to an initial
// strong component of the attack graph.
func (g *Graph) InInitialStrongComponent(i int) bool {
	comp, initial := g.StrongComponents()
	return initial[comp[i]]
}

// Classify returns the complexity class of CERTAINTY(q) per Theorem 1.
func (g *Graph) Classify() Class {
	if g.HasStrongCycle() {
		return CoNPComplete
	}
	if g.HasCycle() {
		return PTime
	}
	return FO
}

// Classify builds the attack graph of q and classifies CERTAINTY(q).
func Classify(q query.Query) (Class, *Graph, error) {
	g, err := BuildGraph(q)
	if err != nil {
		return FO, nil, err
	}
	return g.Classify(), g, nil
}

// String renders the attack graph as edge lines "R -> S (weak)".
func (g *Graph) String() string {
	var lines []string
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.Edge[i][j] {
				kind := "strong"
				if g.WeakEdge[i][j] {
					kind = "weak"
				}
				lines = append(lines, fmt.Sprintf("%s -> %s (%s)",
					g.Q.Atoms[i].Rel.Name, g.Q.Atoms[j].Rel.Name, kind))
			}
		}
	}
	if len(lines) == 0 {
		return "(no attacks)"
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DOT renders the attack graph in Graphviz DOT format; weak attacks are
// solid, strong attacks are bold red.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph attack {\n")
	for _, a := range g.Q.Atoms {
		fmt.Fprintf(&b, "  %q;\n", a.String())
	}
	n := g.Q.Len()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if g.Edge[i][j] {
				style := ""
				if !g.WeakEdge[i][j] {
					style = " [color=red, style=bold, label=\"strong\"]"
				}
				fmt.Fprintf(&b, "  %q -> %q%s;\n",
					g.Q.Atoms[i].String(), g.Q.Atoms[j].String(), style)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
