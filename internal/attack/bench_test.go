package attack

import (
	"math/rand"
	"testing"

	"cqa/internal/query"
	"cqa/internal/workload"
)

func benchQueries(n, count int) []query.Query {
	rng := rand.New(rand.NewSource(1))
	p := workload.DefaultQueryParams()
	p.Atoms = n
	p.Vars = n + 2
	out := make([]query.Query, count)
	for i := range out {
		out[i] = workload.RandomQuery(rng, p)
	}
	return out
}

func benchmarkBuildGraph(b *testing.B, atoms int) {
	qs := benchQueries(atoms, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGraph4(b *testing.B)  { benchmarkBuildGraph(b, 4) }
func BenchmarkBuildGraph8(b *testing.B)  { benchmarkBuildGraph(b, 8) }
func BenchmarkBuildGraph16(b *testing.B) { benchmarkBuildGraph(b, 16) }

func BenchmarkClassifyOnly(b *testing.B) {
	qs := benchQueries(8, 32)
	graphs := make([]*Graph, len(qs))
	for i, q := range qs {
		g, err := BuildGraph(q)
		if err != nil {
			b.Fatal(err)
		}
		graphs[i] = g
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphs[i%len(graphs)].Classify()
	}
}

func BenchmarkExplain(b *testing.B) {
	g, err := BuildGraph(query.MustParse("R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Explain()
	}
}

func BenchmarkAttacksVar(b *testing.B) {
	g, err := BuildGraph(query.MustParse("R(x|y), S(y|z), T(z|x), U(x|u), V(x,u|v)"))
	if err != nil {
		b.Fatal(err)
	}
	vars := g.Q.Vars().Sorted()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range g.Q.Atoms {
			for _, v := range vars {
				g.AttacksVar(j, v)
			}
		}
	}
}
