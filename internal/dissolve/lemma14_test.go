package dissolve

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/markov"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/simplify"
	"cqa/internal/workload"
)

// simplifyQueryLevel runs the query-side part of the Lemma 12 pipeline
// (pattern elimination, key packing, saturation) — no database needed.
func simplifyQueryLevel(t *testing.T, q query.Query) (query.Query, bool) {
	t.Helper()
	n, err := simplify.NormalizeQuery(q)
	if err != nil {
		return q, false
	}
	return n, true
}

// TestLemma14PreservesNoStrongCycle: dissolving a premier Markov cycle
// of a strong-cycle-free query yields a strong-cycle-free query, and
// the number of mode-i atoms strictly decreases (used by Theorem 4's
// induction).
func TestLemma14PreservesNoStrongCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	dissolved := 0
	for trial := 0; trial < 20000 && dissolved < 150; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(4)
		p.PModeC = 0.2
		p.PConst = 0
		q0 := workload.RandomQuery(rng, p)
		g0, err := attack.BuildGraph(q0)
		if err != nil {
			t.Fatal(err)
		}
		if !g0.HasCycle() || g0.HasStrongCycle() {
			continue
		}
		q, ok := simplifyQueryLevel(t, q0)
		if !ok {
			continue
		}
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if g.HasStrongCycle() {
			t.Fatalf("simplification introduced a strong cycle: %s -> %s", q0, q)
		}
		// Dissolution regime: every mode-i atom attacked.
		regime := true
		for _, i := range g.Unattacked() {
			if q.Atoms[i].Rel.Mode == schema.ModeI {
				regime = false
				break
			}
		}
		if !regime {
			continue
		}
		m, err := markov.Build(q)
		if err != nil {
			continue
		}
		c := m.PremierCycle(g)
		if c == nil {
			// Lemma 15 should always provide one in this regime for
			// saturated queries; surface it.
			t.Fatalf("no premier cycle for saturated all-attacked query %s (from %s)", q, q0)
		}
		dd, err := Dissolve(q, m, c)
		if err != nil {
			t.Fatalf("dissolve failed on %s: %v", q, err)
		}
		dissolved++
		gStar, err := attack.BuildGraph(dd.QStar)
		if err != nil {
			t.Fatal(err)
		}
		if gStar.HasStrongCycle() {
			t.Fatalf("Lemma 14 violated: dissolve(%v, %s) = %s has a strong cycle",
				c, q, dd.QStar)
		}
		if dd.QStar.InconsistencyCount() >= q.InconsistencyCount() {
			t.Fatalf("incnt did not decrease: %s -> %s", q, dd.QStar)
		}
	}
	if dissolved < 30 {
		t.Fatalf("only %d dissolutions exercised", dissolved)
	}
	t.Logf("dissolved %d random queries", dissolved)
}

// TestRepeatedDissolutionTerminates: iterating simplify+dissolve at the
// query level reaches incnt <= 1 (the all-attacked regime disappears),
// mirroring Theorem 4's induction.
func TestRepeatedDissolutionTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	done := 0
	for trial := 0; trial < 8000 && done < 40; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2 + rng.Intn(3)
		p.PConst = 0
		q := workload.RandomQuery(rng, p)
		g, err := attack.BuildGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !g.HasCycle() || g.HasStrongCycle() {
			continue
		}
		done++
		for round := 0; round < 32; round++ {
			q2, ok := simplifyQueryLevel(t, q)
			if !ok {
				break
			}
			q = q2
			g, err = attack.BuildGraph(q)
			if err != nil {
				t.Fatal(err)
			}
			regime := true
			for _, i := range g.Unattacked() {
				if q.Atoms[i].Rel.Mode == schema.ModeI {
					regime = false
					break
				}
			}
			if !regime {
				break // the Lemma 9 branch takes over
			}
			m, err := markov.Build(q)
			if err != nil {
				t.Fatal(err)
			}
			c := m.PremierCycle(g)
			if c == nil {
				t.Fatalf("no premier cycle on round %d for %s", round, q)
			}
			dd, err := Dissolve(q, m, c)
			if err != nil {
				t.Fatal(err)
			}
			if dd.QStar.InconsistencyCount() >= q.InconsistencyCount() {
				t.Fatalf("induction measure stalled on %s", q)
			}
			q = dd.QStar
			if q.InconsistencyCount() <= 1 {
				break
			}
		}
	}
	if done < 10 {
		t.Fatalf("only %d chains exercised", done)
	}
}
