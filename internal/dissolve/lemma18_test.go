package dissolve

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestLemma18Semantics checks, by enumeration on small q0 instances, the
// meaning the paper assigns to the T-facts of a component D:
//
//  1. for every repair r of db, there exists µ in ΘD (a T-row of D) with
//     r |= µ(q0); and
//  2. for every µ in ΘD, there exists a repair r of db with r |= µ(q0)
//     and r |≠ µ'(q0) for every other µ' in ΘD.
func TestLemma18Semantics(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	q := workload.Q0()
	checked := 0
	for trial := 0; trial < 400 && checked < 40; trial++ {
		raw := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if raw.NumRepairs() > 1<<10 {
			continue
		}
		gd := prepare(t, q, raw)
		if gd.Len() == 0 || len(match.AllMatches(q, gd)) == 0 {
			continue
		}
		dd, _ := mustDissolve(t, q)
		nd, st, err := dd.TransformDB(gd)
		if err != nil {
			t.Fatal(err)
		}
		if st.TFacts == 0 {
			continue
		}
		checked++

		// Collect ΘD: the valuation per T-fact (over cycle vars + ȳ),
		// grouped by component.
		type theta struct {
			comp query.Const
			val  query.Valuation
		}
		var thetas []theta
		for _, f := range nd.FactsOf(dd.TRel.Name) {
			v := query.Valuation{}
			for i, x := range dd.C {
				v[x] = f.Args[1+i]
			}
			for i, y := range dd.YVars {
				v[y] = f.Args[1+len(dd.C)+i]
			}
			thetas = append(thetas, theta{comp: f.Args[0], val: v})
		}

		q0 := dd.Q0
		// Condition 1: every repair of gd satisfies some µ(q0)...
		// whenever its component's gblocks are touched. For q0 (all atoms
		// in q0), this is: every repair satisfies at least one µ.
		cond1 := true
		gd.Repairs(func(facts []db.Fact) bool {
			r := db.FromFacts(facts...)
			any := false
			for _, th := range thetas {
				if match.Satisfies(q0.Substitute(th.val), r) {
					any = true
					break
				}
			}
			if !any {
				cond1 = false
				return false
			}
			return true
		})
		if !cond1 {
			t.Fatalf("Lemma 18 condition 1 violated\ngd:\n%s\nnd:\n%s", gd, nd)
		}

		// Condition 2: each µ is exclusively realizable within its
		// component: some repair satisfies µ(q0) and no other µ' of the
		// same component.
		for _, th := range thetas {
			okExclusive := false
			gd.Repairs(func(facts []db.Fact) bool {
				r := db.FromFacts(facts...)
				if !match.Satisfies(q0.Substitute(th.val), r) {
					return true
				}
				for _, other := range thetas {
					if other.comp != th.comp || other.val.Key() == th.val.Key() {
						continue
					}
					if match.Satisfies(q0.Substitute(other.val), r) {
						return true // not exclusive; try another repair
					}
				}
				okExclusive = true
				return false
			})
			if !okExclusive {
				t.Fatalf("Lemma 18 condition 2 violated for µ = %v\ngd:\n%s", th.val, gd)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}
