package dissolve

import (
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/markov"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// buildLayeredInstance builds an input for the k-cycle query
// R1(x1|x2), ..., Rk(xk|x1) whose G(db) is exactly the given layered
// edge set (edges[i] maps a layer-i vertex id to its successors in layer
// i+1 mod k). Every fact is R_i(a | b), so embeddings of the query are
// precisely the k-cycles of the layered graph... and edges of G(db) are
// realized whenever they lie on some embedding.
func buildLayeredInstance(k int, edges []map[int][]int) (query.Query, *db.DB) {
	parts := make([]string, k)
	for i := 0; i < k; i++ {
		parts[i] = fmt.Sprintf("R%d(x%d | x%d)", i+1, i+1, (i+1)%k+1)
	}
	q := query.MustParse(joinComma(parts))
	d := db.New()
	for i := 0; i < k; i++ {
		rel := schema.NewRelation(fmt.Sprintf("R%d", i+1), 2, 1)
		for from, tos := range edges[i] {
			for _, to := range tos {
				d.Add(db.Fact{Rel: rel, Args: []query.Const{
					query.Const(fmt.Sprintf("x%d:v%d", i+1, from)),
					query.Const(fmt.Sprintf("x%d:v%d", (i+1)%k+1, to)),
				}})
			}
		}
	}
	return q, d
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// realizedEdges restricts a layered graph to the edges of G(db): those
// lying on at least one closed k-walk (= an embedding of the k-cycle
// query; the walk visits each layer once, so it is an elementary cycle).
func realizedEdges(k int, edges []map[int][]int) []map[int][]int {
	out := make([]map[int][]int, k)
	for i := range out {
		out[i] = map[int][]int{}
	}
	var walk func(start, cur, layer int, path []int)
	walk = func(start, cur, layer int, path []int) {
		if layer == k {
			if cur == start {
				for i := 0; i < k; i++ {
					from := path[i]
					to := start
					if i+1 < k {
						to = path[i+1]
					}
					dup := false
					for _, t := range out[i][from] {
						if t == to {
							dup = true
							break
						}
					}
					if !dup {
						out[i][from] = append(out[i][from], to)
					}
				}
			}
			return
		}
		for _, nxt := range edges[layer][cur] {
			next := append(append([]int{}, path...), nxt)
			walk(start, nxt, layer+1, next)
		}
	}
	for v := range edges[0] {
		walk(v, v, 0, []int{v})
	}
	return out
}

// bruteLongCycle reports whether the layered graph has an elementary
// cycle of length strictly greater than k, by exhaustive DFS over
// elementary cycles (vertex-distinct paths returning to the start).
func bruteLongCycle(k int, edges []map[int][]int) bool {
	type node struct{ layer, id int }
	var adj func(n node) []node
	adj = func(n node) []node {
		var out []node
		for _, to := range edges[n.layer][n.id] {
			out = append(out, node{(n.layer + 1) % k, to})
		}
		return out
	}
	var found bool
	var dfs func(start, cur node, visited map[node]bool, depth int)
	dfs = func(start, cur node, visited map[node]bool, depth int) {
		if found {
			return
		}
		for _, nxt := range adj(cur) {
			if nxt == start {
				if depth+1 > k {
					found = true
					return
				}
				continue
			}
			if visited[nxt] {
				continue
			}
			visited[nxt] = true
			dfs(start, nxt, visited, depth+1)
			delete(visited, nxt)
		}
	}
	for l := 0; l < k; l++ {
		for id := range edges[l] {
			start := node{l, id}
			dfs(start, start, map[node]bool{start: true}, 0)
			if found {
				return true
			}
		}
	}
	return false
}

// TestLongCycleDetectionAgainstBruteForce: the paper's decomposition-
// based long-cycle detector inside TransformDB agrees with exhaustive
// elementary-cycle search on random layered graphs, for k = 2 and 3.
// Only instances whose G(db) is strongly connected (one component, the
// gpurified regime) are meaningful; others are skipped.
func TestLongCycleDetectionAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	checked := 0
	for trial := 0; trial < 4000 && checked < 250; trial++ {
		k := 2 + rng.Intn(2)
		perLayer := 1 + rng.Intn(3)
		edges := make([]map[int][]int, k)
		for i := range edges {
			edges[i] = map[int][]int{}
			for v := 0; v < perLayer; v++ {
				// 1..2 out-edges per vertex keeps components cyclic.
				n := 1 + rng.Intn(2)
				for e := 0; e < n; e++ {
					to := rng.Intn(perLayer)
					edges[i][v] = append(edges[i][v], to)
				}
			}
		}
		q, d := buildLayeredInstance(k, edges)
		m, err := markov.Build(q)
		if err != nil {
			t.Fatal(err)
		}
		cycleVars := make([]query.Var, k)
		for i := 0; i < k; i++ {
			cycleVars[i] = query.Var(fmt.Sprintf("x%d", i+1))
		}
		dd, err := Dissolve(q, m, cycleVars)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := dd.TransformDB(d)
		if err != nil {
			// Cross-component edges: the instance is not gpurified; the
			// reduction correctly refuses. Skip.
			continue
		}
		if st.Components != 1 {
			continue // brute force below checks the whole graph at once
		}
		checked++
		want := bruteLongCycle(k, realizedEdges(k, edges))
		got := st.LongCycles > 0
		if got != want {
			t.Fatalf("k=%d: detector=%v brute=%v\nedges=%v", k, got, want, edges)
		}
	}
	if checked < 60 {
		t.Fatalf("only %d single-component instances checked", checked)
	}
	t.Logf("checked %d instances", checked)
}
