package dissolve

import (
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/markov"
	"cqa/internal/naive"
	"cqa/internal/query"
)

// ex17Query is the query of Examples 17 and 19:
// q = {R(x0 | y1, y2), V(x1 | y2), S1^c(y1, y2 | x1), S2^c(y2 | x0)}
// with Markov cycle x0 -> x1 -> x0, X0 = {x0, y1, y2}, X1 = {x1, y2}.
func ex17Query(t *testing.T) query.Query {
	t.Helper()
	return query.MustParse("R(x0 | y1, y2), V(x1 | y2), S1#c(y1, y2 | x1), S2#c(y2 | x0)")
}

// TestExample17 reproduces the non-supporting case: G(db) has the two
// cycles a,gamma,a and a,beta,a; the cycle a,beta,a supports q but
// a,gamma,a does not (mu1 and mu5 disagree on y2), so the component is
// deleted per Lemma 16 and the instance is not certain.
func TestExample17(t *testing.T) {
	q := ex17Query(t)
	d, err := db.ParseFacts(q.Schema(), `
		R(a | 1, 2)
		R(a | 3, 4)
		R(a | 1, 6)
		V(gamma | 2)
		V(gamma | 4)
		V(beta | 6)
		S1#c(1, 2 | gamma)
		S1#c(3, 4 | gamma)
		S1#c(1, 6 | beta)
		S2#c(2 | a)
		S2#c(4 | a)
		S2#c(6 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// Example 17's Markov cycle x0 -> x1 -> x0.
	if !m.HasEdge("x0", "x1") || !m.HasEdge("x1", "x0") {
		t.Fatalf("expected Markov cycle x0 <-> x1:\n%s", m)
	}

	// The paper constructs a repair s = {R(a,1,2), V(gamma,4), V(beta,6)}
	// that is not grelevant, so the instance is falsifiable.
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if want {
		t.Fatal("Example 17's instance should not be certain")
	}

	gd := prepare(t, q, d)
	if gd.Len() == 0 {
		return // gpurification resolved it outright, consistent with the analysis
	}
	dd, err := Dissolve(q, m, []query.Var{"x0", "x1"})
	if err != nil {
		t.Fatal(err)
	}
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.Certain(dd.QStar, nd)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reduction changed certainty: %v -> %v (stats %+v)", want, got, st)
	}
}

// TestExample19 reproduces the supporting case: both cycles a,gamma,a
// and a,beta,a support q, and the reduction emits the example's three
// T-rows (a gamma 1 2), (a beta 1 6), (a beta 3 6) in a single block.
func TestExample19(t *testing.T) {
	q := ex17Query(t)
	d, err := db.ParseFacts(q.Schema(), `
		R(a | 1, 2)
		R(a | 1, 6)
		R(a | 3, 6)
		S1#c(1, 2 | gamma)
		S1#c(1, 6 | beta)
		S1#c(3, 6 | beta)
		V(gamma | 2)
		V(beta | 6)
		S2#c(2 | a)
		S2#c(6 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	gd := prepare(t, q, d)
	if gd.Len() == 0 {
		t.Fatalf("Example 19's instance should survive gpurification")
	}
	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := Dissolve(q, m, []query.Var{"x0", "x1"})
	if err != nil {
		t.Fatal(err)
	}
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	if st.SupportFailure != 0 {
		t.Errorf("both cycles support q; stats %+v", st)
	}
	tf := nd.FactsOf(dd.TRel.Name)
	if len(tf) != 3 {
		t.Fatalf("expected the example's 3 T-rows, got %d:\n%s", len(tf), nd)
	}
	for _, f := range tf {
		if !f.KeyEqual(tf[0]) {
			t.Errorf("T-rows should share one block (one component)")
		}
	}
	// Row multiset: gamma appears once (via y1=1, y2=2), beta twice
	// (y1=1 and y1=3, both with y2=6). Typed constants embed the plain
	// names, so substring checks identify the rows.
	gammaRows, betaRows := 0, 0
	for _, f := range tf {
		s := f.String()
		if strings.Contains(s, "gamma") {
			gammaRows++
		}
		if strings.Contains(s, "beta") {
			betaRows++
		}
	}
	if gammaRows != 1 || betaRows != 2 {
		t.Errorf("T rows: gamma=%d beta=%d, want 1 and 2:\n%v", gammaRows, betaRows, tf)
	}
	got, err := naive.Certain(dd.QStar, nd)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reduction changed certainty: %v -> %v", want, got)
	}
}
