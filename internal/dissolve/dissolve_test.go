package dissolve

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/db"
	"cqa/internal/markov"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/simplify"
	"cqa/internal/workload"
)

// prepare purifies, types and gpurifies a database for q; the regime the
// reduction requires (q must already be simple-key, constant-free).
func prepare(t *testing.T, q query.Query, d *db.DB) *db.DB {
	t.Helper()
	pd := match.Purify(q, d)
	td, err := simplify.TypeDB(q, pd)
	if err != nil {
		t.Fatal(err)
	}
	gd, err := match.GPurify(q, td)
	if err != nil {
		t.Fatal(err)
	}
	return gd
}

func mustDissolve(t *testing.T, q query.Query) (*Dissolution, *markov.Graph) {
	t.Helper()
	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	g, err := attack.BuildGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	c := m.PremierCycle(g)
	if c == nil {
		t.Fatal("no premier cycle")
	}
	dd, err := Dissolve(q, m, c)
	if err != nil {
		t.Fatal(err)
	}
	return dd, m
}

// TestDissolveShapeExample8 checks the query-level construction of
// Definition 5 on the Figure 2 query: dissolve(C, q) keeps the mode-c
// atoms, removes the Cq atoms of the cycle, and adds T plus one U_i per
// cycle position.
func TestDissolveShapeExample8(t *testing.T) {
	q := query.MustParse("R(x | y, v), S(y | x), V1#c(v | w), W(w | v), V2#c(w | y)")
	dd, _ := mustDissolve(t, q)
	k := len(dd.C)
	if k < 2 {
		t.Fatalf("cycle %v", dd.C)
	}
	// Definition 5 bookkeeping.
	if dd.TRel.Mode != schema.ModeI || dd.TRel.KeyLen != 1 {
		t.Errorf("T relation wrong: %v", dd.TRel)
	}
	if dd.TRel.Arity != 1+k+len(dd.YVars) {
		t.Errorf("T arity %d, want 1+%d+%d", dd.TRel.Arity, k, len(dd.YVars))
	}
	if len(dd.URels) != k {
		t.Errorf("%d U relations, want %d", len(dd.URels), k)
	}
	for _, u := range dd.URels {
		if u.Mode != schema.ModeC || u.Arity != 2 {
			t.Errorf("U relation wrong: %v", u)
		}
	}
	// Q0 atoms are gone from QStar; the rest of q is kept.
	for _, a := range dd.Q0.Atoms {
		if dd.QStar.HasRel(a.Rel.Name) {
			t.Errorf("dissolved atom %s still present", a.Rel.Name)
		}
	}
	// incnt decreases strictly (Cq(y) nonempty for every cycle variable).
	if dd.QStar.InconsistencyCount() >= q.InconsistencyCount() {
		t.Errorf("incnt did not decrease: %d -> %d",
			q.InconsistencyCount(), dd.QStar.InconsistencyCount())
	}
}

func TestDissolveRejectsBadCycles(t *testing.T) {
	q := workload.Q0()
	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dissolve(q, m, []query.Var{"x"}); err == nil {
		t.Error("length-1 cycle accepted")
	}
	if _, err := Dissolve(q, m, []query.Var{"x", "x"}); err == nil {
		t.Error("non-elementary cycle accepted")
	}
	if _, err := Dissolve(q, m, []query.Var{"x", "zzz"}); err == nil {
		t.Error("non-cycle accepted")
	}
}

// TestTransformPreservesCertaintyQ0 validates the Lemma 13/18 reduction
// end-to-end on q0: certainty before equals certainty after, using the
// brute-force oracle on both sides.
func TestTransformPreservesCertaintyQ0(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	q := workload.Q0()
	checked := 0
	for trial := 0; trial < 600; trial++ {
		var raw *db.DB
		if trial%2 == 0 {
			raw = workload.RandomDB(rng, q, workload.DefaultDBParams())
		} else {
			raw = workload.Q0Instance(rng, 2+rng.Intn(4), 1+rng.Intn(2))
		}
		if raw.NumRepairs() > 1<<12 {
			continue
		}
		gd := prepare(t, q, raw)
		if len(match.AllMatches(q, gd)) == 0 {
			continue // the solver answers false before dissolving
		}
		dd, _ := mustDissolve(t, q)
		nd, _, err := dd.TransformDB(gd)
		if err != nil {
			t.Fatalf("transform: %v\ndb:\n%s", err, gd)
		}
		if nd.NumRepairs() > 1<<12 {
			continue
		}
		if !nd.ConsistentFor() {
			t.Fatalf("U relations inconsistent:\n%s", nd)
		}
		want, err := naive.Certain(q, gd)
		if err != nil {
			t.Fatal(err)
		}
		got, err := naive.Certain(dd.QStar, nd)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dissolution changed certainty %v -> %v\nbefore:\n%s\nafter:\n%s",
				want, got, gd, nd)
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestExample14SupportFailure reproduces Example 14: the cycle a,1,a does
// not support q because realizations disagree on y, so the component is
// deleted and the instance becomes falsifiable.
func TestExample14SupportFailure(t *testing.T) {
	q := query.MustParse("R(x0 | x1, y), S(x1 | x0, y)")
	d, err := db.ParseFacts(q.Schema(), `
		R(a | 1, alpha)
		R(a | 1, beta)
		S(1 | a, alpha)
		S(1 | a, beta)
	`)
	if err != nil {
		t.Fatal(err)
	}
	gd := prepare(t, q, d)
	if gd.Len() == 0 {
		t.Skip("gpurification already resolved the instance")
	}
	dd, _ := mustDissolve(t, q)
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	if st.SupportFailure == 0 {
		t.Errorf("expected a support failure, stats=%+v", st)
	}
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.Certain(dd.QStar, nd)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || want {
		t.Errorf("Example 14 instance: want not-certain on both sides, got before=%v after=%v", want, got)
	}
}

// TestExample18MultipleTFacts reproduces Example 18: a supporting cycle
// whose edge has two realizations differing on y yields two T-facts in
// the same block.
func TestExample18MultipleTFacts(t *testing.T) {
	q := query.MustParse("R(x0 | x1, y), S(x1 | x0)")
	d, err := db.ParseFacts(q.Schema(), `
		R(a | 1, alpha)
		R(a | 1, beta)
		S(1 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	gd := prepare(t, q, d)
	dd, _ := mustDissolve(t, q)
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	if st.TFacts != 2 {
		t.Errorf("expected 2 T-facts (one per realization), got %d\n%s", st.TFacts, nd)
	}
	tf := nd.FactsOf(dd.TRel.Name)
	if len(tf) != 2 || !tf[0].KeyEqual(tf[1]) {
		t.Errorf("T-facts should share one block: %v", tf)
	}
	// Certainty preserved: the instance is certain (both repairs of the
	// R-block complete the cycle).
	want, _ := naive.Certain(q, gd)
	got, _ := naive.Certain(dd.QStar, nd)
	if !want || got != want {
		t.Errorf("certainty mismatch: before=%v after=%v", want, got)
	}
}

// TestLongCycleDeletion mirrors the db03 part of Example 10 (adapted to
// q0): a 4-cycle in G(db) for a 2-cycle query is deleted per Lemma 16.
func TestLongCycleDeletion(t *testing.T) {
	q := workload.Q0()
	d, err := db.ParseFacts(q.Schema(), `
		R0(a | 1)
		S0(1 | b)
		R0(b | 2)
		S0(2 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	gd := prepare(t, q, d)
	if gd.Len() == 0 {
		// gpurification may already remove everything; then the solver
		// answers false straight away, which matches the oracle.
		want, _ := naive.Certain(q, d)
		if want {
			t.Fatal("oracle says certain, but instance vanished")
		}
		return
	}
	dd, _ := mustDissolve(t, q)
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	if st.LongCycles == 0 {
		t.Errorf("expected a long-cycle deletion, stats=%+v", st)
	}
	if len(nd.FactsOf(dd.TRel.Name)) != 0 {
		t.Errorf("deleted component should emit no T-facts:\n%s", nd)
	}
}

// TestCrossProductTFactsExample19 mirrors Example 19's shape: two
// supporting cycles in one component produce T-facts in one block.
func TestComponentConstantsConsistent(t *testing.T) {
	q := workload.Q0()
	d, err := db.ParseFacts(q.Schema(), `
		R0(a | 1)
		R0(a | 2)
		S0(1 | a)
		S0(2 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	gd := prepare(t, q, d)
	dd, _ := mustDissolve(t, q)
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}
	if st.KCycles != 2 {
		t.Errorf("expected 2 supported cycles, got %+v", st)
	}
	tf := nd.FactsOf(dd.TRel.Name)
	if len(tf) != 2 {
		t.Fatalf("expected 2 T-facts, got %v", tf)
	}
	if !tf[0].KeyEqual(tf[1]) {
		t.Errorf("cycles of one strong component must share the T-block")
	}
	for _, u := range dd.URels {
		if len(nd.FactsOf(u.Name)) == 0 {
			t.Errorf("missing U-facts for %s", u.Name)
		}
	}
}
