package dissolve

import (
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/markov"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
)

// TestExample10 reproduces the introductory dissolution example of
// Section 6.5 for the 3-cycle q0 = {R(x|y), S(y|z), V(z|x)}:
//
//   - db01: R(1,a) with S-block {S(a,alpha), S(a,kappa)} and both V
//     edges back — a strong component whose two 3-cycles support q and
//     become two T-facts in one block;
//   - db02: R-block {R(2,b), R(2,c)} with one completion each — two
//     supported cycles, two T-facts in a second block;
//   - db03: a 6-cycle (3 -> d -> delta -> 4 -> e -> epsilon -> 3): its
//     component has an elementary cycle longer than k = 3 and is deleted
//     per Lemma 16.
//
// The example's summary table T has exactly those four rows, and the
// U-relations record the component of each constant.
func TestExample10(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z), V(z | x)")
	d, err := db.ParseFacts(q.Schema(), `
		# db01
		R(1 | a)
		S(a | alpha)
		S(a | kappa)
		V(alpha | 1)
		V(kappa | 1)
		# db02
		R(2 | b)
		R(2 | c)
		S(b | beta)
		S(c | gamma)
		V(beta | 2)
		V(gamma | 2)
		# db03: one elementary 6-cycle
		R(3 | d)
		S(d | delta)
		V(delta | 4)
		R(4 | e)
		S(e | epsilon)
		V(epsilon | 3)
	`)
	if err != nil {
		t.Fatal(err)
	}

	// The paper's analysis: db01 and db02 are certain (every repair
	// satisfies q there), db03 alone is not needed — overall every
	// repair of db satisfies q via db01's block.
	want, err := naive.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !want {
		t.Fatalf("Example 10 narrative: db01 guarantees q in every repair")
	}

	gd := prepare(t, q, d)
	// db03 is a repair of itself that falsifies q, so it is not
	// grelevant and gpurification already removes it (Lemma 16 applied
	// at the gblock level).
	for _, f := range gd.Facts() {
		if strings.Contains(string(f.Args[0]), ":3") || strings.Contains(string(f.Args[0]), ":4") {
			// Facts keyed by the db03 constants may legitimately survive
			// gpurification (the deletion can also happen inside the
			// dissolution); just record it.
			t.Logf("db03 fact survived gpurification: %s", f)
		}
	}

	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// The Markov cycle x -> y -> z -> x from the example.
	for _, e := range [][2]query.Var{{"x", "y"}, {"y", "z"}, {"z", "x"}} {
		if !m.HasEdge(e[0], e[1]) {
			t.Fatalf("missing Markov edge %s -> %s", e[0], e[1])
		}
	}
	dd, err := Dissolve(q, m, []query.Var{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	nd, st, err := dd.TransformDB(gd)
	if err != nil {
		t.Fatal(err)
	}

	// The T table of the example: four rows in two blocks.
	tf := nd.FactsOf(dd.TRel.Name)
	if len(tf) != 4 {
		t.Fatalf("T has %d rows, want 4 (stats %+v):\n%s", len(tf), st, nd)
	}
	blocks := map[string]int{}
	for _, f := range tf {
		blocks[f.BlockID()]++
	}
	if len(blocks) != 2 {
		t.Fatalf("T rows should form 2 blocks (db01, db02), got %d", len(blocks))
	}
	for _, n := range blocks {
		if n != 2 {
			t.Errorf("each T block should hold 2 rows, got %d", n)
		}
	}
	// If db03 survived gpurification, the dissolution must have deleted
	// its component as a long cycle.
	if st.LongCycles == 0 && st.Components > 2 {
		t.Errorf("db03's component neither gpurified away nor deleted: %+v", st)
	}

	// U-relations: each constant of a layer maps to its component.
	for i, u := range dd.URels {
		facts := nd.FactsOf(u.Name)
		if len(facts) == 0 {
			t.Errorf("U%d is empty", i)
		}
		seen := map[query.Const]query.Const{}
		for _, f := range facts {
			if prev, ok := seen[f.Args[0]]; ok && prev != f.Args[1] {
				t.Errorf("constant %s in two components", f.Args[0])
			}
			seen[f.Args[0]] = f.Args[1]
		}
	}

	// End to end: certainty is preserved across the reduction.
	got, err := naive.Certain(dd.QStar, nd)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("dissolution changed certainty: %v -> %v", want, got)
	}
}

// TestExample13Realizations reproduces Example 13: the edge (a, 1) of
// G(db) is realized by two distinct valuations (through c2 and c3).
func TestExample13Realizations(t *testing.T) {
	q := query.MustParse("R1(x0 | y1), R2(x0 | y2), S#c(y1, y2 | x1), R3(x0 | y3), V(x1 | x0)")
	d, err := db.ParseFacts(q.Schema(), `
		R1(a | c1)
		R2(a | c2)
		R2(a | c3)
		S#c(c1, c2 | 1)
		S#c(c1, c3 | 1)
		R3(a | b1)
		R3(a | b2)
		V(1 | a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := markov.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	// Example 13: x0 -> x1 in the Markov graph.
	if !m.HasEdge("x0", "x1") {
		t.Fatalf("missing Markov edge x0 -> x1:\n%s", m)
	}
	// Count distinct matches: each combination of R2 and R3 choices that
	// completes through S gives one; the example lists two realizations
	// of (a, 1) through y2 = c2 and y2 = c3.
	matches := match.AllMatches(q, d)
	if len(matches) != 4 {
		t.Fatalf("expected 4 embeddings (2 R2-choices x 2 R3-choices), got %d", len(matches))
	}
	y2s := map[query.Const]bool{}
	for _, v := range matches {
		if v["x0"] != "a" || v["x1"] != "1" {
			t.Fatalf("unexpected match %v", v)
		}
		y2s[v["y2"]] = true
	}
	if !y2s["c2"] || !y2s["c3"] {
		t.Errorf("edge (a,1) should be realized via c2 and via c3: %v", y2s)
	}
}
