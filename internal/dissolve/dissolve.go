// Package dissolve implements the dissolution of Markov cycles
// (Definition 5) and the polynomial-time reduction of Lemmas 13/18
// (Koutris & Wijsen, PODS 2015, Section 6.5): given a premier Markov
// cycle C of a simplified query q, it rewrites q to dissolve(C, q) and an
// input database to a matching instance, strictly decreasing the number
// of mode-i atoms while preserving the certain answer.
package dissolve

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/db"
	"cqa/internal/dgraph"
	"cqa/internal/markov"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// Dissolution describes dissolve(C, q) together with everything the
// database reduction needs.
type Dissolution struct {
	Q     query.Query // the query being dissolved
	C     []query.Var // the Markov cycle x0, ..., x(k-1)
	Q0    query.Query // union of the Cq(xi)
	QStar query.Query // dissolve(C, q)
	TRel  schema.Relation
	URels []schema.Relation
	UVar  query.Var   // the fresh variable u
	YVars []query.Var // ȳ: vars(q0) minus the cycle variables, fixed order
	Xi    []query.VarSet

	m *markov.Graph
}

// Dissolve computes dissolve(C, q) per Definition 5. The cycle must be an
// elementary directed cycle of the Markov graph with Cq(y) nonempty for
// every y in C.
func Dissolve(q query.Query, m *markov.Graph, c []query.Var) (*Dissolution, error) {
	k := len(c)
	if k < 2 {
		return nil, fmt.Errorf("dissolve: cycle %v has length %d < 2", c, k)
	}
	seen := make(query.VarSet)
	for _, x := range c {
		if seen.Has(x) {
			return nil, fmt.Errorf("dissolve: cycle %v is not elementary", c)
		}
		seen.Add(x)
		if len(m.Cq(x)) == 0 {
			return nil, fmt.Errorf("dissolve: Cq(%s) is empty", x)
		}
	}
	for i := 0; i < k; i++ {
		if !m.HasEdge(c[i], c[(i+1)%k]) {
			return nil, fmt.Errorf("dissolve: %v is not a Markov cycle (%s -/-> %s)", c, c[i], c[(i+1)%k])
		}
	}

	dd := &Dissolution{Q: q, C: c, m: m}
	var q0Atoms []query.Atom
	for _, x := range c {
		q0Atoms = append(q0Atoms, m.Cq(x)...)
		dd.Xi = append(dd.Xi, m.CqVars(x))
	}
	dd.Q0 = query.NewQuery(q0Atoms...)
	cycleSet := query.NewVarSet(c...)
	dd.YVars = dd.Q0.Vars().Minus(cycleSet).Sorted()

	// Fresh variable u and fresh relation names.
	used := q.Vars()
	u := query.Var("u")
	for used.Has(u) {
		u += "'"
	}
	dd.UVar = u
	s := q.Schema()
	dd.TRel = schema.Relation{
		Name:   s.FreshName("Tdis"),
		Arity:  1 + k + len(dd.YVars),
		KeyLen: 1,
		Mode:   schema.ModeI,
	}
	s.MustAdd(dd.TRel)
	tArgs := make([]query.Term, 0, dd.TRel.Arity)
	tArgs = append(tArgs, query.V(u))
	for _, x := range c {
		tArgs = append(tArgs, query.V(x))
	}
	for _, y := range dd.YVars {
		tArgs = append(tArgs, query.V(y))
	}
	q1 := []query.Atom{{Rel: dd.TRel, Args: tArgs}}
	for i, x := range c {
		uRel := schema.Relation{
			Name:   s.FreshName(fmt.Sprintf("Udis%d", i)),
			Arity:  2,
			KeyLen: 1,
			Mode:   schema.ModeC,
		}
		s.MustAdd(uRel)
		dd.URels = append(dd.URels, uRel)
		q1 = append(q1, query.NewAtom(uRel, query.V(x), query.V(u)))
	}

	rest := q
	for _, a := range dd.Q0.Atoms {
		rest = rest.Remove(a)
	}
	dd.QStar = rest.Add(q1...)
	return dd, nil
}

// edgeKey identifies a directed edge of G(db).
type edgeKey struct {
	layer int // i: edge goes from type(x_i) to type(x_(i+1 mod k))
	from  query.Const
	to    query.Const
}

// Stats reports what the reduction did, for ablation experiments.
type Stats struct {
	Matches        int // embeddings of q enumerated
	Vertices       int // vertices of G(db)
	Edges          int // edges of G(db)
	Components     int // strong components processed
	BadComponents  int // components deleted via Lemma 16
	KCycles        int // supported k-cycles encoded
	TFacts         int
	SupportFailure int // k-cycles rejected by the support check
	LongCycles     int // components with an elementary cycle longer than k
}

// TransformDB performs the reduction of Lemma 18: it encodes the strong
// components of G(db) whose elementary cycles all have length k and
// support q into T/U facts, deletes (by omission) the components Lemma 16
// lets us ignore, and returns a legal input for CERTAINTY(dissolve(C,q)).
//
// The database must be typed, purified and gpurified relative to q, with
// every mode-i atom simple-key and the Cq-atoms free of constants and
// repeated variables — exactly the regime Lemma 12 establishes.
func (dd *Dissolution) TransformDB(d *db.DB) (*db.DB, Stats, error) {
	var st Stats
	k := len(dd.C)

	// 1. Build G(db): one edge (theta(x_i), theta(x_(i+1))) per embedding
	// and position, collecting the realizations theta[X_i].
	layerOf := make(map[query.Const]int)
	realizations := make(map[edgeKey]map[string]query.Valuation)
	var layerErr error
	ix := match.NewIndex(d)
	ix.Match(dd.Q, query.Valuation{}, func(v query.Valuation) bool {
		st.Matches++
		for i := 0; i < k; i++ {
			a := v[dd.C[i]]
			b := v[dd.C[(i+1)%k]]
			if prev, ok := layerOf[a]; ok && prev != i {
				layerErr = fmt.Errorf("dissolve: constant %s occurs in type(%s) and type(%s); database is not typed",
					a, dd.C[prev], dd.C[i])
				return false
			}
			layerOf[a] = i
			ek := edgeKey{layer: i, from: a, to: b}
			reals := realizations[ek]
			if reals == nil {
				reals = make(map[string]query.Valuation)
				realizations[ek] = reals
			}
			mu := v.Restrict(dd.Xi[i])
			reals[mu.Key()] = mu.Clone()
		}
		return true
	})
	if layerErr != nil {
		return nil, st, layerErr
	}

	// 2. Vertex numbering and strong components.
	var verts []query.Const
	vid := make(map[query.Const]int)
	for c := range layerOf {
		vid[c] = -1
		verts = append(verts, c)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	for i, c := range verts {
		vid[c] = i
	}
	st.Vertices = len(verts)
	g := dgraph.New(len(verts))
	var edges []edgeKey
	for ek := range realizations {
		edges = append(edges, ek)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].layer != edges[j].layer {
			return edges[i].layer < edges[j].layer
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	st.Edges = len(edges)
	for _, ek := range edges {
		g.AddEdge(vid[ek.from], vid[ek.to])
	}
	comp, ncomp := g.SCC()

	// After gpurification every strong component is initial: no edge may
	// cross components.
	for _, ek := range edges {
		if comp[vid[ek.from]] != comp[vid[ek.to]] {
			return nil, st, fmt.Errorf("dissolve: edge %s -> %s crosses strong components; database is not gpurified", ek.from, ek.to)
		}
	}

	// 3. Process each component.
	out := db.New()
	q0Rels := make(map[string]bool)
	for _, a := range dd.Q0.Atoms {
		q0Rels[a.Rel.Name] = true
	}
	for _, f := range d.Facts() {
		if !q0Rels[f.Rel.Name] {
			out.Add(f)
		}
	}

	compVerts := make([][]int, ncomp)
	for i := range verts {
		compVerts[comp[i]] = append(compVerts[comp[i]], i)
	}
	// Adjacency restricted by component is the whole graph (components
	// are edge-closed as checked above).
	for cIdx := 0; cIdx < ncomp; cIdx++ {
		vs := compVerts[cIdx]
		if len(vs) == 0 {
			continue
		}
		// Skip components with no edges at all (isolated vertices cannot
		// occur in gpurified inputs, but tolerate them: their facts are
		// dropped, which matches Lemma 16 since they admit no cycle and
		// hence a non-grelevant repair).
		hasEdge := false
		for _, v := range vs {
			if len(g.Succ(v)) > 0 {
				hasEdge = true
				break
			}
		}
		st.Components++
		if !hasEdge {
			st.BadComponents++
			continue
		}
		cycles, long := dd.analyzeComponent(g, comp, cIdx, verts, layerOf)
		if long {
			st.LongCycles++
			st.BadComponents++
			continue
		}
		// Support check per cycle; all must support q to keep D.
		var supported [][]query.Const
		bad := false
		for _, cyc := range cycles {
			ok := dd.supports(cyc, realizations)
			if !ok {
				st.SupportFailure++
				bad = true
				break
			}
			supported = append(supported, cyc)
		}
		if bad {
			st.BadComponents++
			continue
		}
		if len(supported) == 0 {
			// A strongly connected component with an edge contains a
			// cycle; its length is a multiple of k, and no k-cycle means
			// a longer one exists.
			st.LongCycles++
			st.BadComponents++
			continue
		}
		// 4. Encode the component.
		dConst := query.Const(fmt.Sprintf("Dcomp%d", cIdx))
		for _, cyc := range supported {
			st.KCycles++
			if err := dd.emitCycle(out, cyc, dConst, realizations, &st); err != nil {
				return nil, st, err
			}
		}
		for i := 0; i < k; i++ {
			// U_i facts: every vertex of the component in layer i points
			// to the component constant.
			for _, v := range vs {
				if layerOf[verts[v]] == i {
					out.Add(db.Fact{Rel: dd.URels[i], Args: []query.Const{verts[v], dConst}})
				}
			}
		}
	}
	return out, st, nil
}

// analyzeComponent enumerates the elementary cycles of length k in the
// component (as constant sequences starting at layer 0) and reports
// whether an elementary cycle strictly longer than k exists.
func (dd *Dissolution) analyzeComponent(g *dgraph.Graph, comp []int, cIdx int, verts []query.Const, layerOf map[query.Const]int) (cycles [][]query.Const, long bool) {
	k := len(dd.C)
	inComp := func(v int) bool { return comp[v] == cIdx }

	// DFS all k-step layered paths from each layer-0 vertex.
	var starts []int
	for v := range verts {
		if inComp(v) && layerOf[verts[v]] == 0 {
			starts = append(starts, v)
		}
	}
	path := make([]int, 0, k+1)
	var rec func(v, depth, start int)
	rec = func(v, depth, start int) {
		if depth == k {
			if v == start {
				cyc := make([]query.Const, k)
				for i := 0; i < k; i++ {
					cyc[i] = verts[path[i]]
				}
				cycles = append(cycles, cyc)
			} else if layerOf[verts[v]] == 0 && !long {
				// Path of length k between distinct layer-0 vertices:
				// check for a return path avoiding the interior
				// (the paper's decomposition of long elementary cycles).
				avoid := make(map[int]bool, k-1)
				for _, p := range path[1:] {
					avoid[p] = true
				}
				reach := g.ReachableAvoiding(v, avoid)
				if reach[start] {
					long = true
				}
			}
			return
		}
		for _, w := range g.Succ(v) {
			if !inComp(w) {
				continue
			}
			path = append(path, v)
			rec(w, depth+1, start)
			path = path[:len(path)-1]
			if long {
				return
			}
		}
	}
	for _, s := range starts {
		rec(s, 0, s)
		if long {
			return nil, true
		}
	}
	return cycles, false
}

// supports implements the support check: for all positions i ≠ j and all
// realizations µi, µj of the cycle's edges, µi and µj agree on Xi ∩ Xj.
func (dd *Dissolution) supports(cyc []query.Const, realizations map[edgeKey]map[string]query.Valuation) bool {
	k := len(dd.C)
	deltas := make([][]query.Valuation, k)
	for i := 0; i < k; i++ {
		ek := edgeKey{layer: i, from: cyc[i], to: cyc[(i+1)%k]}
		for _, mu := range realizations[ek] {
			deltas[i] = append(deltas[i], mu)
		}
		if len(deltas[i]) == 0 {
			return false // edge not realized; cannot happen for enumerated cycles
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			shared := dd.Xi[i].Intersect(dd.Xi[j])
			if len(shared) == 0 {
				continue
			}
			for _, mi := range deltas[i] {
				for _, mj := range deltas[j] {
					if !mi.AgreesOn(mj, shared) {
						return false
					}
				}
			}
		}
	}
	return true
}

// emitCycle adds the T-facts for one supported k-cycle: one fact per
// element of the cross product ∆0 × ... × ∆(k-1) (Section 6.5). The
// support check guarantees the realizations merge into a well-defined
// valuation µ over the cycle variables and ȳ.
func (dd *Dissolution) emitCycle(out *db.DB, cyc []query.Const, dConst query.Const, realizations map[edgeKey]map[string]query.Valuation, st *Stats) error {
	k := len(dd.C)
	deltas := make([][]query.Valuation, k)
	for i := 0; i < k; i++ {
		ek := edgeKey{layer: i, from: cyc[i], to: cyc[(i+1)%k]}
		var keys []string
		for key := range realizations[ek] {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			deltas[i] = append(deltas[i], realizations[ek][key])
		}
		if len(deltas[i]) == 0 {
			return fmt.Errorf("dissolve: cycle edge %s -> %s has no realization", cyc[i], cyc[(i+1)%k])
		}
	}
	idx := make([]int, k)
	for {
		mu := query.Valuation{}
		for i := 0; i < k; i++ {
			cand := deltas[i][idx[i]]
			if !mu.Compatible(cand) {
				return fmt.Errorf("dissolve: incompatible realizations for supported cycle %s", componentTag(cyc))
			}
			for v, c := range cand {
				mu[v] = c
			}
		}
		args := make([]query.Const, 0, dd.TRel.Arity)
		args = append(args, dConst)
		args = append(args, cyc...)
		for _, y := range dd.YVars {
			c, ok := mu[y]
			if !ok {
				return fmt.Errorf("dissolve: realization does not bind %s on cycle %s", y, componentTag(cyc))
			}
			args = append(args, c)
		}
		out.Add(db.Fact{Rel: dd.TRel, Args: args})
		st.TFacts++
		// Advance the odometer over the cross product.
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(deltas[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

func componentTag(cyc []query.Const) string {
	parts := make([]string, len(cyc))
	for i, c := range cyc {
		parts[i] = string(c)
	}
	return strings.Join(parts, "|")
}
