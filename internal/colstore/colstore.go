// Package colstore implements the column-wise (struct-of-arrays) fact
// layout of the evaluation hot path: each relation stores its facts as
// flat []sym.ID columns, with blocks — the unit of the Lemma 9 test —
// as contiguous row spans over key-sorted columns, and a ground-key →
// block open-addressing hash table probed without allocating. The
// package knows nothing about databases or queries; internal/db builds
// one Rel per regular relation and keeps the row-oriented []Fact API as
// the compatibility surface.
package colstore

import (
	"fmt"

	"cqa/internal/sym"
)

// Rel is one relation stored column-wise: cols[i][row] is the i-th
// argument of the row-th fact, rows of one block are contiguous, and
// the block spans partition the rows. Immutable after Build and safe
// for concurrent readers.
type Rel struct {
	Name   string
	Arity  int
	KeyLen int

	cols [][]sym.ID
	off  []int32 // block b spans rows off[b]..off[b+1]; len = NumBlocks+1
	// slots is the ground-key hash table: open addressing with linear
	// probing, power-of-two size, entries store block+1 (0 = empty).
	slots []int32
}

// Rows returns the number of facts.
func (r *Rel) Rows() int {
	if r.Arity == 0 {
		if len(r.off) == 0 {
			return 0
		}
		return int(r.off[len(r.off)-1])
	}
	return len(r.cols[0])
}

// NumBlocks returns the number of blocks.
func (r *Rel) NumBlocks() int { return len(r.off) - 1 }

// Span returns the half-open row range of block b.
func (r *Rel) Span(b int32) (lo, hi int32) { return r.off[b], r.off[b+1] }

// Col returns column i as a flat slice indexed by row. Shared; callers
// must not modify it.
func (r *Rel) Col(i int) []sym.ID { return r.cols[i] }

// At returns the i-th argument of the row-th fact.
func (r *Rel) At(col int, row int32) sym.ID { return r.cols[col][row] }

// BlockByKey returns the block whose primary-key value equals key, if
// any. The probe hashes the interned key words and compares candidates
// against the key columns of the block's first row — no strings, no
// allocation. A key of the wrong length matches nothing.
func (r *Rel) BlockByKey(key []sym.ID) (int32, bool) {
	if len(key) != r.KeyLen || len(r.slots) == 0 {
		return 0, false
	}
	mask := uint32(len(r.slots) - 1)
	for i := hashIDs(key) & mask; ; i = (i + 1) & mask {
		s := r.slots[i]
		if s == 0 {
			return 0, false
		}
		b := s - 1
		lo := r.off[b]
		match := true
		for j, k := range key {
			if r.cols[j][lo] != k {
				match = false
				break
			}
		}
		if match {
			return b, true
		}
	}
}

// hashIDs is FNV-1a over the key words, one multiply-mix per word.
func hashIDs(key []sym.ID) uint32 {
	h := uint32(2166136261)
	for _, k := range key {
		h = (h ^ uint32(k)) * 16777619
	}
	return h
}

// Builder accumulates a Rel block by block. Blocks must be appended
// with all their rows together (StartBlock, then one AddRow per fact);
// every block needs at least one row, and the rows of one block must be
// key-equal — Build checks both, since a violation would corrupt the
// span/probe invariants silently.
type Builder struct {
	r    *Rel
	rows int32
}

// NewBuilder returns a builder for a relation of the given shape.
func NewBuilder(name string, arity, keyLen int) *Builder {
	r := &Rel{Name: name, Arity: arity, KeyLen: keyLen,
		cols: make([][]sym.ID, arity), off: []int32{}}
	return &Builder{r: r}
}

// StartBlock begins a new block at the current row position.
func (b *Builder) StartBlock() {
	b.r.off = append(b.r.off, b.rows)
}

// AddRow appends one fact to the current block; args must have exactly
// Arity entries (the slice is copied column-wise, not retained).
func (b *Builder) AddRow(args []sym.ID) {
	if len(args) != b.r.Arity {
		panic(fmt.Sprintf("colstore: %s row has %d args, want %d", b.r.Name, len(args), b.r.Arity))
	}
	for i, a := range args {
		b.r.cols[i] = append(b.r.cols[i], a)
	}
	b.rows++
}

// AddSpans bulk-appends blocks [b0, b1) of src: the column ranges are
// copied wholesale (one copy per column) and the span offsets shifted,
// so splicing a long run of untouched blocks from a parent relation
// costs memcpy, not per-row work. src must have the same shape as the
// relation being built; Build still validates every block, so a
// malformed source is caught the same way malformed rows are.
func (b *Builder) AddSpans(src *Rel, b0, b1 int) {
	if src.Arity != b.r.Arity || src.KeyLen != b.r.KeyLen {
		panic(fmt.Sprintf("colstore: AddSpans into %s from %s: shape mismatch",
			b.r.Name, src.Name))
	}
	if b0 < 0 || b1 > src.NumBlocks() || b0 >= b1 {
		if b0 == b1 {
			return
		}
		panic(fmt.Sprintf("colstore: AddSpans range [%d,%d) out of %s's %d blocks",
			b0, b1, src.Name, src.NumBlocks()))
	}
	lo, hi := src.off[b0], src.off[b1]
	for i := range b.r.cols {
		b.r.cols[i] = append(b.r.cols[i], src.cols[i][lo:hi]...)
	}
	shift := b.rows - lo
	for bi := b0; bi < b1; bi++ {
		b.r.off = append(b.r.off, src.off[bi]+shift)
	}
	b.rows += hi - lo
}

// Build finalizes the spans, validates the block invariants, and builds
// the ground-key hash table. The builder must not be reused.
func (b *Builder) Build() *Rel {
	r := b.r
	r.off = append(r.off, b.rows)
	nb := r.NumBlocks()
	for i := 0; i < nb; i++ {
		lo, hi := r.off[i], r.off[i+1]
		if lo >= hi {
			panic(fmt.Sprintf("colstore: %s block %d is empty", r.Name, i))
		}
		for row := lo + 1; row < hi; row++ {
			for c := 0; c < r.KeyLen; c++ {
				if r.cols[c][row] != r.cols[c][lo] {
					panic(fmt.Sprintf("colstore: %s block %d rows are not key-equal", r.Name, i))
				}
			}
		}
	}
	if nb > 0 {
		size := 1
		for size < 2*nb {
			size *= 2
		}
		r.slots = make([]int32, size)
		mask := uint32(size - 1)
		key := make([]sym.ID, r.KeyLen)
		for bi := 0; bi < nb; bi++ {
			lo := r.off[bi]
			for c := 0; c < r.KeyLen; c++ {
				key[c] = r.cols[c][lo]
			}
			i := hashIDs(key) & mask
			for r.slots[i] != 0 {
				plo := r.off[r.slots[i]-1]
				same := true
				for c := 0; c < r.KeyLen; c++ {
					if r.cols[c][plo] != key[c] {
						same = false
						break
					}
				}
				if same {
					panic(fmt.Sprintf("colstore: %s blocks %d and %d share a key", r.Name, r.slots[i]-1, bi))
				}
				i = (i + 1) & mask
			}
			r.slots[i] = int32(bi) + 1
		}
	}
	b.r = nil
	return r
}
