package colstore

import (
	"fmt"
	"testing"

	"cqa/internal/sym"
)

// buildRel interns the string rows into a fresh table and builds the
// relation; rows of one block are passed together.
func buildRel(t *testing.T, name string, arity, keyLen int, blocks [][][]string) (*Rel, *sym.Table) {
	t.Helper()
	tb := sym.NewTable()
	b := NewBuilder(name, arity, keyLen)
	row := make([]sym.ID, arity)
	for _, blk := range blocks {
		b.StartBlock()
		for _, r := range blk {
			for i, s := range r {
				row[i] = tb.Intern(s)
			}
			b.AddRow(row)
		}
	}
	return b.Build(), tb
}

func TestSpansAndColumns(t *testing.T) {
	r, tb := buildRel(t, "R", 2, 1, [][][]string{
		{{"a", "1"}, {"a", "2"}},
		{{"b", "1"}},
		{{"c", "3"}, {"c", "4"}, {"c", "5"}},
	})
	if r.Rows() != 6 || r.NumBlocks() != 3 {
		t.Fatalf("Rows=%d NumBlocks=%d, want 6 and 3", r.Rows(), r.NumBlocks())
	}
	wantSpans := [][2]int32{{0, 2}, {2, 3}, {3, 6}}
	for b, w := range wantSpans {
		lo, hi := r.Span(int32(b))
		if lo != w[0] || hi != w[1] {
			t.Fatalf("Span(%d) = [%d,%d), want [%d,%d)", b, lo, hi, w[0], w[1])
		}
	}
	wantCol1 := []string{"1", "2", "1", "3", "4", "5"}
	for row, w := range wantCol1 {
		if got := tb.String(r.At(1, int32(row))); got != w {
			t.Fatalf("At(1,%d) = %q, want %q", row, got, w)
		}
	}
	if got := tb.String(r.Col(0)[4]); got != "c" {
		t.Fatalf("Col(0)[4] = %q, want c", got)
	}
}

func TestBlockByKey(t *testing.T) {
	// Enough blocks that the table sees real probe chains.
	var blocks [][][]string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		blocks = append(blocks, [][]string{{k, "v"}, {k, "w"}})
	}
	r, tb := buildRel(t, "R", 2, 1, blocks)
	for i := 0; i < 100; i++ {
		id, ok := tb.Lookup(fmt.Sprintf("k%d", i))
		if !ok {
			t.Fatalf("key k%d not interned", i)
		}
		b, found := r.BlockByKey([]sym.ID{id})
		if !found || int(b) != i {
			t.Fatalf("BlockByKey(k%d) = (%d, %v), want (%d, true)", i, b, found, i)
		}
	}
	// A value ID that is interned but is no block key.
	v, _ := tb.Lookup("v")
	if _, found := r.BlockByKey([]sym.ID{v}); found {
		t.Fatal("BlockByKey found a block for a non-key symbol")
	}
	// Wrong key length matches nothing.
	k0, _ := tb.Lookup("k0")
	if _, found := r.BlockByKey([]sym.ID{k0, v}); found {
		t.Fatal("BlockByKey matched a key of the wrong length")
	}
	if _, found := r.BlockByKey(nil); found {
		t.Fatal("BlockByKey matched an empty key")
	}
}

func TestBlockByKeyCompositeKey(t *testing.T) {
	r, tb := buildRel(t, "R", 3, 2, [][][]string{
		{{"a", "b", "1"}},
		{{"a", "c", "2"}},
		{{"b", "a", "3"}, {"b", "a", "4"}},
	})
	a, _ := tb.Lookup("a")
	b, _ := tb.Lookup("b")
	c, _ := tb.Lookup("c")
	cases := []struct {
		key  []sym.ID
		blk  int32
		want bool
	}{
		{[]sym.ID{a, b}, 0, true},
		{[]sym.ID{a, c}, 1, true},
		{[]sym.ID{b, a}, 2, true},
		{[]sym.ID{c, a}, 0, false},
		{[]sym.ID{b, b}, 0, false},
	}
	for _, tc := range cases {
		blk, found := r.BlockByKey(tc.key)
		if found != tc.want || (found && blk != tc.blk) {
			t.Fatalf("BlockByKey(%v) = (%d, %v), want (%d, %v)", tc.key, blk, found, tc.blk, tc.want)
		}
	}
}

func TestEmptyRelation(t *testing.T) {
	r, _ := buildRel(t, "R", 2, 1, nil)
	if r.Rows() != 0 || r.NumBlocks() != 0 {
		t.Fatalf("empty relation: Rows=%d NumBlocks=%d", r.Rows(), r.NumBlocks())
	}
	if _, found := r.BlockByKey([]sym.ID{0}); found {
		t.Fatal("BlockByKey on empty relation found a block")
	}
}

func TestBuildPanicsOnEmptyBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on an empty block")
		}
	}()
	b := NewBuilder("R", 1, 1)
	b.StartBlock()
	b.Build()
}

func TestBuildPanicsOnMixedKeys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on non-key-equal rows in one block")
		}
	}()
	b := NewBuilder("R", 1, 1)
	b.StartBlock()
	b.AddRow([]sym.ID{1})
	b.AddRow([]sym.ID{2})
	b.Build()
}

func TestBuildPanicsOnDuplicateBlockKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on two blocks sharing a key")
		}
	}()
	b := NewBuilder("R", 2, 1)
	b.StartBlock()
	b.AddRow([]sym.ID{1, 2})
	b.StartBlock()
	b.AddRow([]sym.ID{1, 3})
	b.Build()
}

func TestAddRowPanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRow did not panic on an arity mismatch")
		}
	}()
	b := NewBuilder("R", 2, 1)
	b.StartBlock()
	b.AddRow([]sym.ID{1})
}

func TestAddSpans(t *testing.T) {
	src, tb := buildRel(t, "R", 2, 1, [][][]string{
		{{"a", "1"}, {"a", "2"}},
		{{"b", "1"}},
		{{"c", "3"}, {"c", "4"}},
		{{"d", "9"}},
	})
	// Splice blocks [0,2) and [3,4), dropping block 2 (key c).
	b := NewBuilder("R", 2, 1)
	b.AddSpans(src, 0, 2)
	b.AddSpans(src, 2, 2) // empty range: no-op
	b.AddSpans(src, 3, 4)
	r := b.Build()
	if r.Rows() != 4 || r.NumBlocks() != 3 {
		t.Fatalf("Rows=%d NumBlocks=%d, want 4 and 3", r.Rows(), r.NumBlocks())
	}
	wantSpans := [][2]int32{{0, 2}, {2, 3}, {3, 4}}
	for bi, w := range wantSpans {
		lo, hi := r.Span(int32(bi))
		if lo != w[0] || hi != w[1] {
			t.Fatalf("Span(%d) = [%d,%d), want [%d,%d)", bi, lo, hi, w[0], w[1])
		}
	}
	wantCol1 := []string{"1", "2", "1", "9"}
	for row, w := range wantCol1 {
		if got := tb.String(r.At(1, int32(row))); got != w {
			t.Fatalf("At(1,%d) = %q, want %q", row, got, w)
		}
	}
	for _, k := range []string{"a", "b", "d"} {
		if _, ok := r.BlockByKey([]sym.ID{mustLookup(t, tb, k)}); !ok {
			t.Fatalf("spliced relation lost key %q", k)
		}
	}
	if _, ok := r.BlockByKey([]sym.ID{mustLookup(t, tb, "c")}); ok {
		t.Fatal("dropped block still addressable")
	}
}

func mustLookup(t *testing.T, tb *sym.Table, s string) sym.ID {
	t.Helper()
	id, ok := tb.Lookup(s)
	if !ok {
		t.Fatalf("constant %q not interned", s)
	}
	return id
}

func TestAddSpansMixedWithRows(t *testing.T) {
	src, tb := buildRel(t, "R", 2, 1, [][][]string{
		{{"a", "1"}},
		{{"b", "2"}, {"b", "3"}},
	})
	b := NewBuilder("R", 2, 1)
	b.StartBlock()
	b.AddRow([]sym.ID{tb.Intern("z"), tb.Intern("0")})
	b.AddSpans(src, 0, 2)
	r := b.Build()
	if r.Rows() != 4 || r.NumBlocks() != 3 {
		t.Fatalf("Rows=%d NumBlocks=%d, want 4 and 3", r.Rows(), r.NumBlocks())
	}
	// The spliced spans shifted past the hand-built block.
	if lo, hi := r.Span(1); lo != 1 || hi != 2 {
		t.Fatalf("Span(1) = [%d,%d), want [1,2)", lo, hi)
	}
	if lo, hi := r.Span(2); lo != 2 || hi != 4 {
		t.Fatalf("Span(2) = [%d,%d), want [2,4)", lo, hi)
	}
}

func TestAddSpansPanicsOnShapeMismatch(t *testing.T) {
	src, _ := buildRel(t, "S", 3, 2, [][][]string{{{"a", "b", "c"}}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewBuilder("R", 2, 1).AddSpans(src, 0, 1)
}

func TestAddSpansPanicsOnBadRange(t *testing.T) {
	src, _ := buildRel(t, "R", 2, 1, [][][]string{{{"a", "1"}}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range span")
		}
	}()
	NewBuilder("R", 2, 1).AddSpans(src, 0, 2)
}
