package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cqa/internal/query"
)

func TestClosureBasic(t *testing.T) {
	fds := Set{
		New([]query.Var{"x"}, []query.Var{"y"}),
		New([]query.Var{"y"}, []query.Var{"z"}),
	}
	got := fds.Closure(query.NewVarSet("x"))
	if !got.Equal(query.NewVarSet("x", "y", "z")) {
		t.Errorf("closure = %s", got)
	}
	if !fds.Implies(query.NewVarSet("x"), query.NewVarSet("z")) {
		t.Error("x -> z should be entailed")
	}
	if fds.Implies(query.NewVarSet("y"), query.NewVarSet("x")) {
		t.Error("y -> x should not be entailed")
	}
	if !fds.ImpliesVar(query.NewVarSet("x"), "z") {
		t.Error("ImpliesVar")
	}
}

func TestClosureEmptyLHS(t *testing.T) {
	fds := Set{New(nil, []query.Var{"a"})}
	got := fds.Closure(query.NewVarSet())
	if !got.Has("a") {
		t.Error("empty LHS fires unconditionally")
	}
}

func TestKOfQuery(t *testing.T) {
	q := query.MustParse("R(x | y), V(x, u | v)")
	k := K(q)
	if len(k) != 2 {
		t.Fatalf("|K(q)| = %d", len(k))
	}
	if !k.Implies(query.NewVarSet("x", "u"), query.NewVarSet("v")) {
		t.Error("xu -> v missing")
	}
	if k.Implies(query.NewVarSet("u"), query.NewVarSet("v")) {
		t.Error("u alone should not determine v")
	}
}

// Closure properties, checked with testing/quick over random FD sets.
func randomFDs(rng *rand.Rand) Set {
	vars := []query.Var{"a", "b", "c", "d", "e"}
	n := rng.Intn(6)
	out := make(Set, 0, n)
	for i := 0; i < n; i++ {
		pick := func() query.VarSet {
			s := query.NewVarSet()
			for _, v := range vars {
				if rng.Intn(3) == 0 {
					s.Add(v)
				}
			}
			return s
		}
		out = append(out, FD{From: pick(), To: pick()})
	}
	return out
}

func TestClosureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fds := randomFDs(r)
		start := query.NewVarSet()
		for _, v := range []query.Var{"a", "b", "c"} {
			if r.Intn(2) == 0 {
				start.Add(v)
			}
		}
		cl := fds.Closure(start)
		// extensive
		if !start.SubsetOf(cl) {
			return false
		}
		// idempotent
		if !fds.Closure(cl).Equal(cl) {
			return false
		}
		// monotone: closure of a superset contains the closure
		super := start.Clone()
		super.Add("d")
		if !cl.SubsetOf(fds.Closure(super)) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnionAndString(t *testing.T) {
	a := Set{New([]query.Var{"x"}, []query.Var{"y"})}
	b := Set{New([]query.Var{"y"}, []query.Var{"z"})}
	u := a.Union(b)
	if len(u) != 2 {
		t.Fatalf("union size %d", len(u))
	}
	if u.String() == "" {
		t.Error("empty String")
	}
}

func TestSatisfiedByValuations(t *testing.T) {
	vals := []query.Valuation{
		{"x": "1", "y": "a"},
		{"x": "1", "y": "a"},
		{"x": "2", "y": "b"},
	}
	if !SatisfiedByValuations(vals, query.NewVarSet("x"), query.NewVarSet("y")) {
		t.Error("x -> y holds on these valuations")
	}
	vals = append(vals, query.Valuation{"x": "1", "y": "zzz"})
	if SatisfiedByValuations(vals, query.NewVarSet("x"), query.NewVarSet("y")) {
		t.Error("x -> y violated")
	}
}

// TestExample1FD reproduces Example 1's point: the unpurified relation
// violates y -> z over its embeddings, the purified one satisfies it.
func TestExample1FD(t *testing.T) {
	all := []query.Valuation{
		{"y": "b", "z": "c"},
		{"y": "b", "z": "f"},
	}
	if SatisfiedByValuations(all, query.NewVarSet("y"), query.NewVarSet("z")) {
		t.Error("unpurified relation should violate y -> z")
	}
	purified := all[:1]
	if !SatisfiedByValuations(purified, query.NewVarSet("y"), query.NewVarSet("z")) {
		t.Error("purified relation should satisfy y -> z")
	}
}
