// Package fd implements functional dependencies over query variables and
// the closure computations that underpin attack graphs.
//
// A functional dependency for a query q is an expression X -> Y with
// X, Y subsets of vars(q). The set K(q) contains key(F) -> vars(F) for
// every atom F of q (Section 4 of Koutris & Wijsen, PODS 2015).
package fd

import (
	"sort"
	"strings"

	"cqa/internal/query"
)

// FD is a functional dependency From -> To over query variables.
type FD struct {
	From query.VarSet
	To   query.VarSet
}

// New builds an FD from variable slices.
func New(from, to []query.Var) FD {
	return FD{From: query.NewVarSet(from...), To: query.NewVarSet(to...)}
}

// String renders the FD as "{x, y} -> {z}".
func (f FD) String() string {
	return f.From.String() + " -> " + f.To.String()
}

// Set is a list of functional dependencies.
type Set []FD

// K returns K(q) = {key(F) -> vars(F) | F in q}.
func K(q query.Query) Set {
	out := make(Set, 0, q.Len())
	for _, a := range q.Atoms {
		out = append(out, FD{From: a.KeyVars(), To: a.Vars()})
	}
	return out
}

// Closure computes the closure of the variable set start under the
// dependencies in s: the least superset X of start such that From ⊆ X
// implies To ⊆ X for every FD. Runs the textbook fixpoint in
// O(|s| * total FD size) per round.
func (s Set) Closure(start query.VarSet) query.VarSet {
	closure := start.Clone()
	applied := make([]bool, len(s))
	for changed := true; changed; {
		changed = false
		for i, f := range s {
			if applied[i] {
				continue
			}
			if f.From.SubsetOf(closure) {
				applied[i] = true
				for v := range f.To {
					if !closure.Has(v) {
						closure.Add(v)
						changed = true
					}
				}
			}
		}
	}
	return closure
}

// Implies reports whether s entails the dependency from -> to, i.e.
// to ⊆ closure(from).
func (s Set) Implies(from, to query.VarSet) bool {
	return to.SubsetOf(s.Closure(from))
}

// ImpliesVar reports whether s entails from -> {x}.
func (s Set) ImpliesVar(from query.VarSet, x query.Var) bool {
	return s.Closure(from).Has(x)
}

// Union returns the concatenation of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// String renders the set one FD per line, sorted, for stable output.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// SatisfiedByValuations reports whether a collection of valuations (for
// example all embeddings of a query into a database) satisfies X -> Y in
// the sense of the paper's "functional dependency for q": for all
// valuations theta, mu, if theta[X] = mu[X] then theta[Y] = mu[Y].
func SatisfiedByValuations(vals []query.Valuation, x, y query.VarSet) bool {
	// Group by the X-projection and demand a unique Y-projection per group.
	proj := func(v query.Valuation, s query.VarSet) string {
		vars := s.Sorted()
		parts := make([]string, len(vars))
		for i, w := range vars {
			parts[i] = string(v[w])
		}
		return strings.Join(parts, "\x00")
	}
	seen := make(map[string]string)
	for _, v := range vals {
		kx, ky := proj(v, x), proj(v, y)
		if prev, ok := seen[kx]; ok {
			if prev != ky {
				return false
			}
		} else {
			seen[kx] = ky
		}
	}
	return true
}
