// Package core is the public facade of the library: classification of
// CERTAINTY(q) per the trichotomy of Koutris & Wijsen (PODS 2015,
// Theorem 1) and certain query answering with automatic engine selection.
//
//	cls, _ := core.Classify(q)        // FO, P\FO, or coNP-complete
//	res, _ := core.Certain(q, db, core.Options{})
//
// Engines:
//
//   - EngineFO: the Lemma 9/10 recursion; polynomial, only for acyclic
//     attack graphs (the FO class).
//   - EnginePTime: the Theorem 4 algorithm (simplification + Markov cycle
//     dissolution); polynomial, for strong-cycle-free attack graphs.
//   - EngineCoNP: DPLL search for a falsifying repair; exact for every
//     query, exponential in the worst case.
//   - EngineNaive: brute-force repair enumeration; test oracle.
//
// EngineAuto picks the cheapest engine that is sound for the query's
// class.
package core

import (
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
)

// Class re-exports the trichotomy classes.
type Class = attack.Class

// The three complexity classes of Theorem 1.
const (
	FO           = attack.FO
	PTime        = attack.PTime
	CoNPComplete = attack.CoNPComplete
)

// Classification is the result of classifying a query.
type Classification struct {
	Query query.Query
	Class Class
	// Graph is the attack graph the classification is read from.
	Graph *attack.Graph
	// HasCycle / HasStrongCycle expose the two Lemma 3 decisions.
	HasCycle       bool
	HasStrongCycle bool
}

// Classify builds the attack graph of q and classifies CERTAINTY(q) as
// FO, P\FO, or coNP-complete (Theorem 1). The query must be
// self-join-free.
func Classify(q query.Query) (Classification, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return Classification{}, err
	}
	return Classification{
		Query:          q,
		Class:          g.Classify(),
		Graph:          g,
		HasCycle:       g.HasCycle(),
		HasStrongCycle: g.HasStrongCycle(),
	}, nil
}

// ClassifyString parses and classifies a query in the textual syntax.
func ClassifyString(s string) (Classification, error) {
	q, err := query.Parse(s)
	if err != nil {
		return Classification{}, err
	}
	return Classify(q)
}

// Engine selects the solving strategy.
type Engine int

const (
	// EngineAuto picks by classification: FO -> EngineFO, P\FO ->
	// EnginePTime, coNP-complete -> EngineCoNP.
	EngineAuto Engine = iota
	// EngineFO runs the first-order recursion (acyclic attack graphs only).
	EngineFO
	// EnginePTime runs the Theorem 4 polynomial algorithm (no strong cycle).
	EnginePTime
	// EngineCoNP runs the exact falsifying-repair search (any query).
	EngineCoNP
	// EngineNaive enumerates all repairs (small instances only).
	EngineNaive
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineFO:
		return "fo"
	case EnginePTime:
		return "ptime"
	case EngineCoNP:
		return "conp"
	case EngineNaive:
		return "naive"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps an engine name ("auto", "fo", "ptime", "conp",
// "naive") to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "fo":
		return EngineFO, nil
	case "ptime":
		return EnginePTime, nil
	case "conp":
		return EngineCoNP, nil
	case "naive":
		return EngineNaive, nil
	}
	return EngineAuto, fmt.Errorf("core: unknown engine %q", s)
}

// Options configure Certain.
type Options struct {
	// Engine forces a specific engine; EngineAuto selects by class.
	Engine Engine
}

// Result reports a certain-answer decision.
type Result struct {
	Certain bool
	Class   Class
	Engine  Engine // engine that produced the answer
}

// Certain decides whether every repair of d satisfies q.
func Certain(q query.Query, d *db.DB, opts Options) (Result, error) {
	cls, err := Classify(q)
	if err != nil {
		return Result{}, err
	}
	engine := opts.Engine
	if engine == EngineAuto {
		switch cls.Class {
		case FO:
			engine = EngineFO
		case PTime:
			engine = EnginePTime
		default:
			engine = EngineCoNP
		}
	}
	res := Result{Class: cls.Class, Engine: engine}
	switch engine {
	case EngineFO:
		res.Certain, err = rewrite.Certain(q, d)
	case EnginePTime:
		res.Certain, _, err = ptime.Certain(q, d)
	case EngineCoNP:
		res.Certain, _ = conp.Certain(q, d)
	case EngineNaive:
		res.Certain, err = naive.Certain(q, d)
	default:
		err = fmt.Errorf("core: unknown engine %v", engine)
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// FalsifyingRepair returns a repair of d that falsifies q, when one
// exists (found = false means q is certain).
func FalsifyingRepair(q query.Query, d *db.DB) (repair []db.Fact, found bool, err error) {
	if !q.SelfJoinFree() {
		return nil, false, fmt.Errorf("core: %s has a self-join", q)
	}
	r, ok, _ := conp.FalsifyingRepair(q, d)
	return r, ok, nil
}

// Rewriting returns the consistent first-order rewriting of CERTAINTY(q)
// for FO-classified queries (Theorem 2 / Lemma 10).
func Rewriting(q query.Query) (rewrite.Formula, error) {
	return rewrite.Rewriting(q)
}

// CertainAnswers lifts certainty to non-Boolean queries, as the paper
// notes is possible without fundamental changes: for a query q with
// designated free variables, it returns every binding of the free
// variables (drawn from embeddings of q into d) whose instantiated
// Boolean query is certain. Bindings are returned in deterministic order.
func CertainAnswers(q query.Query, free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	vars := q.Vars()
	for _, v := range free {
		if !vars.Has(v) {
			return nil, fmt.Errorf("core: free variable %s does not occur in %s", v, q)
		}
	}
	// Candidate answers: projections of embeddings into d. Any certain
	// answer must be one of these (the instantiated query must hold in
	// the repair d' ⊆ d... every repair embeds it into d).
	freeSet := query.NewVarSet(free...)
	seen := make(map[string]query.Valuation)
	var order []string
	for _, m := range match.AllMatches(q, d) {
		proj := m.Restrict(freeSet)
		k := proj.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = proj
			order = append(order, k)
		}
	}
	var out []query.Valuation
	for _, k := range order {
		proj := seen[k]
		res, err := Certain(q.Substitute(proj), d, opts)
		if err != nil {
			return nil, err
		}
		if res.Certain {
			out = append(out, proj)
		}
	}
	return out, nil
}
