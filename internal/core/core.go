// Package core is the public facade of the library: classification of
// CERTAINTY(q) per the trichotomy of Koutris & Wijsen (PODS 2015,
// Theorem 1) and certain query answering with automatic engine selection.
//
//	cls, _ := core.Classify(q)        // FO, P\FO, or coNP-complete
//	res, _ := core.Certain(q, db, core.Options{})
//
// Engines:
//
//   - EngineFO: the Lemma 9/10 recursion; polynomial, only for acyclic
//     attack graphs (the FO class).
//   - EnginePTime: the Theorem 4 algorithm (simplification + Markov cycle
//     dissolution); polynomial, for strong-cycle-free attack graphs.
//   - EngineCoNP: DPLL search for a falsifying repair; exact for every
//     query, exponential in the worst case.
//   - EngineNaive: brute-force repair enumeration; test oracle.
//
// EngineAuto picks the cheapest engine that is sound for the query's
// class.
package core

import (
	"context"
	"fmt"

	"cqa/internal/attack"
	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/shard"
	"cqa/internal/trace"
)

// Class re-exports the trichotomy classes.
type Class = attack.Class

// The three complexity classes of Theorem 1.
const (
	FO           = attack.FO
	PTime        = attack.PTime
	CoNPComplete = attack.CoNPComplete
)

// Classification is the result of classifying a query.
type Classification struct {
	Query query.Query
	Class Class
	// Graph is the attack graph the classification is read from.
	Graph *attack.Graph
	// HasCycle / HasStrongCycle expose the two Lemma 3 decisions.
	HasCycle       bool
	HasStrongCycle bool
}

// Classify builds the attack graph of q and classifies CERTAINTY(q) as
// FO, P\FO, or coNP-complete (Theorem 1). The query must be
// self-join-free.
func Classify(q query.Query) (Classification, error) {
	g, err := attack.BuildGraph(q)
	if err != nil {
		return Classification{}, err
	}
	return Classification{
		Query:          q,
		Class:          g.Classify(),
		Graph:          g,
		HasCycle:       g.HasCycle(),
		HasStrongCycle: g.HasStrongCycle(),
	}, nil
}

// ClassifyString parses and classifies a query in the textual syntax.
func ClassifyString(s string) (Classification, error) {
	q, err := query.Parse(s)
	if err != nil {
		return Classification{}, err
	}
	return Classify(q)
}

// Engine selects the solving strategy.
type Engine int

const (
	// EngineAuto picks by classification: FO -> EngineFO, P\FO ->
	// EnginePTime, coNP-complete -> EngineCoNP.
	EngineAuto Engine = iota
	// EngineFO runs the first-order recursion (acyclic attack graphs only).
	EngineFO
	// EnginePTime runs the Theorem 4 polynomial algorithm (no strong cycle).
	EnginePTime
	// EngineCoNP runs the exact falsifying-repair search (any query).
	EngineCoNP
	// EngineNaive enumerates all repairs (small instances only).
	EngineNaive
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineFO:
		return "fo"
	case EnginePTime:
		return "ptime"
	case EngineCoNP:
		return "conp"
	case EngineNaive:
		return "naive"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine maps an engine name ("auto", "fo", "ptime", "conp",
// "naive") to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "fo":
		return EngineFO, nil
	case "ptime":
		return EnginePTime, nil
	case "conp":
		return EngineCoNP, nil
	case "naive":
		return EngineNaive, nil
	}
	return EngineAuto, fmt.Errorf("core: unknown engine %q", s)
}

// DefaultSamples is the sampling budget used when a budget-exhausted
// coNP evaluation degrades to CertainFraction and Options.Samples is
// unset.
const DefaultSamples = 200

// Options configure Certain.
type Options struct {
	// Engine forces a specific engine; EngineAuto selects by class.
	Engine Engine
	// Workers bounds the worker pool CertainAnswers uses to check
	// candidate bindings; <= 0 selects GOMAXPROCS. 1 forces sequential
	// checking.
	Workers int
	// MaxSteps bounds the total engine steps of one evaluation (search
	// nodes, recursion levels, block branches — shared across the answer
	// workers); <= 0 means unlimited. Exhaustion surfaces as
	// evalctx.ErrBudgetExceeded unless Approximate degrades it.
	MaxSteps int64
	// MemoCap bounds the memoization entries an evaluation may retain
	// (eliminator and ptime memo tables); <= 0 means unlimited.
	// Exhaustion is silent: engines keep computing without caching.
	MemoCap int
	// Approximate degrades a budget-exhausted coNP-engine evaluation to
	// CertainFraction sampling instead of failing: the Result then
	// carries Approximate=true and the estimated satisfying fraction.
	Approximate bool
	// Samples is the sampling budget of the degraded path; <= 0 selects
	// DefaultSamples.
	Samples int
	// Tracer, when non-nil, records a per-stage breakdown of the
	// evaluation (durations plus engine effort counters); it rides into
	// the engines on the evalctx.Checker. Nil disables tracing at zero
	// per-request cost.
	Tracer *trace.Tracer
	// Shards selects the sharded scatter-gather evaluation path: the
	// snapshot's blocks are hash-partitioned into Shards shards, FO
	// certainty is an early-exit existential merge across them, and
	// certain answers a set-union merge. <= 1 keeps the monolithic
	// path. When ShardPool is nil, an ephemeral pool is built (and torn
	// down) per call — serving paths should cache one per snapshot
	// version (store.Snapshot.ShardPool) and pass it in ShardPool.
	Shards int
	// ShardPool supplies the prebuilt shard cluster of the snapshot the
	// evaluation runs against (same underlying db.DB). Non-nil enables
	// the sharded path regardless of Shards.
	ShardPool *shard.Pool
}

// Result reports a certain-answer decision.
type Result struct {
	Certain bool
	Class   Class
	Engine  Engine // engine that produced the answer
	// Approximate marks a degraded answer: the exact evaluation ran out
	// of its step budget and Certain was estimated by repair sampling
	// (Certain is then "every sampled repair satisfied q", and Fraction
	// is the sampled satisfying fraction).
	Approximate bool
	Fraction    float64 // meaningful only when Approximate
}

// Certain decides whether every repair of d satisfies q. It is a thin
// wrapper that compiles a Plan and runs it once; callers that evaluate
// the same query against many databases should Compile once (or use a
// plancache.Cache) and call Plan.Certain directly.
func Certain(q query.Query, d *db.DB, opts Options) (Result, error) {
	p, err := Compile(q)
	if err != nil {
		return Result{}, err
	}
	return p.Certain(d, opts)
}

// CertainCtx is Certain under a context: the evaluation engines poll
// ctx cooperatively (see evalctx) and return ctx.Err() — never a wrong
// boolean — when the deadline passes or the context is cancelled.
func CertainCtx(ctx context.Context, q query.Query, d *db.DB, opts Options) (Result, error) {
	p, err := Compile(q)
	if err != nil {
		return Result{}, err
	}
	return p.CertainIndexedCtx(ctx, match.NewIndex(d), opts)
}

// FalsifyingRepair returns a repair of d that falsifies q, when one
// exists (found = false means q is certain).
func FalsifyingRepair(q query.Query, d *db.DB) (repair []db.Fact, found bool, err error) {
	if !q.SelfJoinFree() {
		return nil, false, fmt.Errorf("core: %s has a self-join", q)
	}
	r, ok, _ := conp.FalsifyingRepair(q, d)
	return r, ok, nil
}

// Rewriting returns the consistent first-order rewriting of CERTAINTY(q)
// for FO-classified queries (Theorem 2 / Lemma 10).
func Rewriting(q query.Query) (rewrite.Formula, error) {
	return rewrite.Rewriting(q)
}

// CertainAnswers lifts certainty to non-Boolean queries, as the paper
// notes is possible without fundamental changes: for a query q with
// designated free variables, it returns every binding of the free
// variables (drawn from embeddings of q into d) whose instantiated
// Boolean query is certain. Bindings are returned in deterministic order.
// It compiles q once and delegates to Plan.CertainAnswers.
func CertainAnswers(q query.Query, free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.CertainAnswers(free, d, opts)
}

// CertainAnswersCtx is CertainAnswers under a context and the resource
// budgets of opts.
func CertainAnswersCtx(ctx context.Context, q query.Query, free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	p, err := Compile(q)
	if err != nil {
		return nil, err
	}
	return p.CertainAnswersIndexedCtx(ctx, free, match.NewIndex(d), opts)
}
