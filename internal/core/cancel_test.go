package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestCancelMidEliminatorWalk cancels evaluations of an FO query at
// random points of the Eliminator walk, concurrently with the walk
// itself (run under -race). The invariant: a cancelled evaluation
// either finished first and returned the correct boolean, or returned
// ctx.Err() — never a wrong answer.
func TestCancelMidEliminatorWalk(t *testing.T) {
	q := workload.PathQuery(4)
	rng := rand.New(rand.NewSource(7))
	p := workload.DefaultDBParams()
	p.SeedMatches = 4
	d := workload.RandomDB(rng, q, p)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	want, err := plan.CertainIndexed(ix, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			if i%3 == 0 {
				runtime.Gosched()
			}
			cancel()
		}()
		res, err := plan.CertainIndexedCtx(ctx, ix, Options{})
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
			continue
		}
		if res.Certain != want.Certain {
			t.Fatalf("iteration %d: wrong boolean %v under cancellation (want %v)", i, res.Certain, want.Certain)
		}
	}

	// A context cancelled before the call starts must fail immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.CertainIndexedCtx(ctx, ix, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}
}

// TestCancelMidCoNPEnumeration does the same for the falsifying-repair
// search on an adversarial coNP instance.
func TestCancelMidCoNPEnumeration(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(3))
	d := workload.HardInstance(rng, 12, 30, 3)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	want, err := plan.CertainIndexed(ix, Options{Engine: EngineCoNP})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		res, err := plan.CertainIndexedCtx(ctx, ix, Options{Engine: EngineCoNP, Approximate: false})
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
			continue
		}
		if res.Certain != want.Certain {
			t.Fatalf("iteration %d: wrong boolean %v under cancellation (want %v)", i, res.Certain, want.Certain)
		}
	}
}

// TestDeadlineLatencyCoNP is the acceptance bound of the robustness
// work: a coNP-class evaluation over a large instance given a 100ms
// deadline must surface context.DeadlineExceeded within 150ms — the
// amortized poll interval must not let the engine overrun the deadline.
func TestDeadlineLatencyCoNP(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(5))
	d := workload.HardInstance(rng, 60, 400, 6)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := plan.CertainIndexedCtx(ctx, ix, Options{Engine: EngineCoNP, Approximate: false})
	elapsed := time.Since(start)
	if err == nil {
		t.Skipf("instance solved before the deadline (%v, certain=%v); nothing to bound", elapsed, res.Certain)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("deadline overrun: evaluation returned after %v (bound 150ms)", elapsed)
	}
}

// TestBudgetExhaustionAndDegradation exercises the step budget on the
// coNP engine: exhaustion surfaces evalctx.ErrBudgetExceeded without
// Approximate, and degrades to a deterministic sampling estimate with
// it.
func TestBudgetExhaustionAndDegradation(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(9))
	d := workload.HardInstance(rng, 30, 120, 4)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	opts := Options{Engine: EngineCoNP, MaxSteps: 50}
	if _, err := plan.CertainIndexedCtx(context.Background(), ix, opts); !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Fatalf("tiny budget: got %v, want ErrBudgetExceeded", err)
	}

	opts.Approximate = true
	opts.Samples = 64
	res, err := plan.CertainIndexedCtx(context.Background(), ix, opts)
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if !res.Approximate {
		t.Fatalf("expected an approximate result, got %+v", res)
	}
	if res.Fraction < 0 || res.Fraction > 1 {
		t.Errorf("fraction out of range: %v", res.Fraction)
	}
	// The degraded path is deterministic: same request, same estimate.
	res2, err := plan.CertainIndexedCtx(context.Background(), ix, opts)
	if err != nil || res2.Fraction != res.Fraction || res2.Certain != res.Certain {
		t.Errorf("degraded answer not deterministic: %+v vs %+v (err %v)", res, res2, err)
	}
}

// TestAnswersPoolNoGoroutineLeak times out a parallel CertainAnswers
// evaluation mid-flight and verifies every pool worker exits: the
// goroutine count returns to its pre-call level.
func TestAnswersPoolNoGoroutineLeak(t *testing.T) {
	q := workload.NonKeyJoinQuery()
	rng := rand.New(rand.NewSource(11))
	d := workload.HardInstance(rng, 40, 200, 5)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = plan.CertainAnswersIndexedCtx(ctx, []query.Var{query.Var("x")}, ix, Options{Engine: EngineCoNP, Workers: 8})
	if err == nil {
		t.Skip("instance solved before the deadline; no mid-flight pool to leak")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak after timeout: %d before, %d after\n%s", before, g, buf[:n])
	}
}

// TestAnswersCancellationConsistent races cancellation against the
// parallel answer pool: a run that returns nil error must produce
// exactly the uncancelled answer set.
func TestAnswersCancellationConsistent(t *testing.T) {
	q := workload.PathQuery(3)
	rng := rand.New(rand.NewSource(13))
	p := workload.DefaultDBParams()
	p.SeedMatches = 3
	d := workload.RandomDB(rng, q, p)
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	free := []query.Var{query.Var("x1")}
	want, err := plan.CertainAnswersIndexed(free, ix, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		got, err := plan.CertainAnswersIndexedCtx(ctx, free, ix, Options{Workers: 4})
		cancel()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("iteration %d: %d answers under cancellation, want %d", i, len(got), len(want))
		}
	}
}
