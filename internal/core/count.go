package core

import (
	"context"

	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
)

// CountResult reports a repair-counting (#CERTAINTY) evaluation: the
// exact satisfying/total repair counts, or — when oversized constraint
// components degraded to Monte Carlo sampling — an anytime fraction
// estimate with a 95% confidence half-width. Class carries the plan's
// decision-complexity classification alongside the counts.
type CountResult struct {
	counting.Result
	Class Class
}

// Count counts the repairs of d satisfying the plan's query. See
// CountIndexedCtx for options and degradation semantics.
func (p *Plan) Count(d *db.DB, opts Options) (CountResult, error) {
	return p.CountIndexedCtx(context.Background(), match.NewIndex(d), opts)
}

// CountIndexed is Count over a prebuilt evaluation index.
func (p *Plan) CountIndexed(ix *match.Index, opts Options) (CountResult, error) {
	return p.CountIndexedCtx(context.Background(), ix, opts)
}

// CountIndexedCtx counts repairs under the caller's context and budget,
// built into an evalctx.Checker exactly like the decision engines:
// cancellation and MaxSteps exhaustion surface as errors mid-count. The
// counter factorizes the instance into constraint components and
// enumerates each exactly while the assignment space fits the
// per-component bound and the remaining step budget; beyond that,
// opts.Approximate selects the anytime path — the oversized component
// is estimated by uniform repair sampling (deterministically seeded,
// opts.Samples draws) and the result carries Exact=false with a
// confidence interval instead of an exact Satisfying count. Without
// Approximate an oversized component is a counting.ErrComponentTooLarge
// error. The counter is not sharded; opts.Shards/ShardPool are ignored.
func (p *Plan) CountIndexedCtx(ctx context.Context, ix *match.Index, opts Options) (CountResult, error) {
	chk := evalctx.NewTraced(ctx, evalctx.Limits{MaxSteps: opts.MaxSteps, MemoCap: opts.MemoCap}, opts.Tracer)
	if err := chk.Check(); err != nil {
		return CountResult{}, err
	}
	res, err := counting.Count(p.Query, ix, chk, counting.Options{
		Samples: opts.Samples,
		Exact:   !opts.Approximate,
	})
	if err != nil {
		return CountResult{}, err
	}
	return CountResult{Result: res, Class: p.Class}, nil
}

// CountCtx is the package-level facade: compile q and count the repairs
// of d satisfying it.
func CountCtx(ctx context.Context, q query.Query, d *db.DB, opts Options) (CountResult, error) {
	p, err := Compile(q)
	if err != nil {
		return CountResult{}, err
	}
	return p.CountIndexedCtx(ctx, match.NewIndex(d), opts)
}
