package core

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, q query.Query, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(q.Schema(), lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestClassifyString(t *testing.T) {
	cases := []struct {
		q    string
		want Class
	}{
		{"R(x | y), S(y | z)", FO},
		{"R0(x | y), S0(y | x)", PTime},
		{"R(x | y), S(u | y)", CoNPComplete},
	}
	for _, c := range cases {
		got, err := ClassifyString(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Class != c.want {
			t.Errorf("ClassifyString(%q) = %v, want %v", c.q, got.Class, c.want)
		}
	}
	if _, err := ClassifyString("R(x | y), R(y | z)"); err == nil {
		t.Error("self-join should be rejected")
	}
	if _, err := ClassifyString("R(("); err == nil {
		t.Error("syntax error should be reported")
	}
}

func TestCertainAutoDispatch(t *testing.T) {
	cases := []struct {
		q      string
		engine Engine
	}{
		{"R(x | y), S(y | z)", EngineFO},
		{"R0(x | y), S0(y | x)", EnginePTime},
		{"R(x | y), S(u | y)", EngineCoNP},
	}
	for _, c := range cases {
		q := query.MustParse(c.q)
		d := workload.RandomDB(rand.New(rand.NewSource(1)), q, workload.DefaultDBParams())
		res, err := Certain(q, d, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.q, err)
		}
		if res.Engine != c.engine {
			t.Errorf("%s dispatched to %v, want %v", c.q, res.Engine, c.engine)
		}
	}
}

func TestCertainForcedEngines(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		want, err := naive.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []Engine{EngineFO, EnginePTime, EngineCoNP, EngineNaive} {
			res, err := Certain(q, d, Options{Engine: e})
			if err != nil {
				t.Fatalf("engine %v: %v", e, err)
			}
			if res.Certain != want {
				t.Errorf("engine %v disagrees with oracle on trial %d", e, trial)
			}
		}
	}
	// Forcing FO on a cyclic query errors.
	if _, err := Certain(workload.Q0(), db.New(), Options{Engine: EngineFO}); err == nil {
		t.Error("FO engine must reject cyclic attack graphs")
	}
	// Forcing PTime on a coNP query errors.
	if _, err := Certain(workload.NonKeyJoinQuery(), db.New(), Options{Engine: EnginePTime}); err == nil {
		t.Error("PTime engine must reject strong cycles")
	}
}

func TestParseEngine(t *testing.T) {
	for name, want := range map[string]Engine{
		"": EngineAuto, "auto": EngineAuto, "fo": EngineFO,
		"ptime": EnginePTime, "conp": EngineCoNP, "naive": EngineNaive,
	} {
		got, err := ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseEngine("zzz"); err == nil {
		t.Error("unknown engine accepted")
	}
	if EngineCoNP.String() != "conp" || Engine(99).String() == "" {
		t.Error("Engine.String wrong")
	}
}

func TestFalsifyingRepairRoundTrip(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, q, `
		R(a | b)
		R(a | dead)
		S(b | c)
	`)
	repair, found, err := FalsifyingRepair(q, d)
	if err != nil || !found {
		t.Fatalf("expected falsifying repair: %v %v", found, err)
	}
	if match.Satisfies(q, db.FromFacts(repair...)) {
		t.Error("repair satisfies q")
	}
	// Certain instance: no falsifier.
	d2 := factsDB(t, q, "R(a | b)\nS(b | c)")
	if _, found, _ := FalsifyingRepair(q, d2); found {
		t.Error("no falsifier should exist")
	}
}

func TestCertainAnswers(t *testing.T) {
	q := query.MustParse("Product(pid | sid), Supplier(sid | 'DE')")
	d := factsDB(t, q, `
		Product(p1 | acme)
		Product(p2 | globex)
		Product(p2 | initech)
		Supplier(acme | DE)
		Supplier(globex | DE)
		Supplier(initech | US)
	`)
	answers, err := CertainAnswers(q, []query.Var{"pid"}, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 || answers[0]["pid"] != "p1" {
		t.Errorf("answers = %v, want [pid=p1]", answers)
	}
	// Unknown free variable errors.
	if _, err := CertainAnswers(q, []query.Var{"nope"}, d, Options{}); err == nil {
		t.Error("unknown free variable accepted")
	}
}

// TestCertainAnswersAgainstOracle: every reported certain answer's
// instantiation is certain per the oracle, and no candidate is missed.
func TestCertainAnswersAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := query.MustParse("R(x | y), S(y | z)")
	for trial := 0; trial < 60; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		answers, err := CertainAnswers(q, []query.Var{"x"}, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := map[query.Const]bool{}
		for _, a := range answers {
			got[a["x"]] = true
		}
		// Recompute by brute force over candidate x values.
		cands := map[query.Const]bool{}
		for _, m := range match.AllMatches(q, d) {
			cands[m["x"]] = true
		}
		for c := range cands {
			want, err := naive.Certain(q.Substitute(query.Valuation{"x": c}), d)
			if err != nil {
				t.Fatal(err)
			}
			if want != got[c] {
				t.Fatalf("answer x=%s: core=%v oracle=%v", c, got[c], want)
			}
		}
	}
}

func TestRewritingFacade(t *testing.T) {
	if _, err := Rewriting(query.MustParse("R(x | y)")); err != nil {
		t.Errorf("rewriting failed: %v", err)
	}
	if _, err := Rewriting(workload.Q0()); err == nil {
		t.Error("cyclic query should have no rewriting")
	}
}
