package core

import (
	"math"
	"math/rand"
	"testing"

	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestPossibleAgainstEnumeration: POSSIBILITY(q) via consistent
// embeddings must match exhaustive repair enumeration.
func TestPossibleAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		got := Possible(q, d)
		sat, total, err := naive.CountSatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		want := sat > 0 && total > 0
		if got != want {
			t.Fatalf("Possible=%v, enumeration says %v (sat=%d/%d)\nq=%s\ndb:\n%s",
				got, want, sat, total, q, d)
		}
	}
}

func TestPossibleVsCertain(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, q, `
		R(a | b)
		R(a | dead)
		S(b | c)
	`)
	res, err := Certain(q, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Fatal("setup: should not be certain")
	}
	if !Possible(q, d) {
		t.Error("q holds in the repair keeping R(a|b)")
	}
	if !Possible(query.MustParse(""), d) {
		t.Error("empty query is always possible")
	}
}

// TestCertainFractionAgainstExactCount: the sampling estimator converges
// to the exact satisfying-repair fraction.
func TestCertainFractionAgainstExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := query.MustParse("R(x | y), S(y | z)")
	for trial := 0; trial < 20; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<10 {
			continue
		}
		sat, total, err := naive.CountSatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		exact := float64(sat) / float64(total)
		est, err := CertainFraction(q, d, 3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-exact) > 0.08 {
			t.Errorf("estimate %.3f vs exact %.3f", est, exact)
		}
	}
	if _, err := CertainFraction(q, workload.RandomDB(rng, q, workload.DefaultDBParams()), 0, rng); err == nil {
		t.Error("zero samples should error")
	}
}

// TestCertainImpliesPossible: on instances with at least one embedding,
// certainty implies possibility.
func TestCertainImpliesPossible(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		res, err := Certain(q, d, Options{Engine: EngineNaive})
		if err != nil {
			continue
		}
		if res.Certain && q.Len() > 0 && d.NumBlocks() > 0 {
			if !Possible(q, d) {
				t.Fatalf("certain but not possible?! q=%s\ndb:\n%s", q, d)
			}
		}
	}
}
