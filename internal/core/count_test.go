package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/schema"
	"cqa/internal/workload"
)

// TestCountCtxAgainstNaive: the core facade agrees with the oracle and
// with the decision result on random small instances.
func TestCountCtxAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for trial := 0; trial < 100; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<11 {
			continue
		}
		sat, total, err := naive.CountSatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CountCtx(context.Background(), q, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("small instance counted approximately\nq=%s", q)
		}
		if res.Total.Cmp(big.NewInt(int64(total))) != 0 || res.Satisfying.Cmp(big.NewInt(int64(sat))) != 0 {
			t.Fatalf("count %v/%v vs oracle %d/%d\nq=%s\ndb:\n%s",
				res.Satisfying, res.Total, sat, total, q, d)
		}
		dec, err := Certain(q, d, Options{Engine: EngineCoNP})
		if err != nil {
			t.Fatal(err)
		}
		if (res.Satisfying.Cmp(res.Total) == 0) != dec.Certain {
			t.Fatalf("count %v/%v vs certain=%v\nq=%s\ndb:\n%s",
				res.Satisfying, res.Total, dec.Certain, q, d)
		}
	}
}

func TestCountCtxBudgetAndCancel(t *testing.T) {
	q := query.MustParse("R(x | y), S(u | y)")
	rng := rand.New(rand.NewSource(821))
	d := workload.HardInstance(rng, 6, 12, 2)

	if _, err := CountCtx(context.Background(), q, d, Options{MaxSteps: 1}); !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Errorf("MaxSteps=1: err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CountCtx(ctx, q, d, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled: err = %v", err)
	}
}

// TestCountCtxApproximate: an oversized component degrades under
// Approximate and errors without it, mirroring the decision engines'
// budget-exhaustion contract.
func TestCountCtxApproximate(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	fact := func(rel schema.Relation, args ...string) db.Fact {
		cs := make([]query.Const, len(args))
		for i, a := range args {
			cs[i] = query.Const(a)
		}
		return db.Fact{Rel: rel, Args: cs}
	}
	for i := 0; i < 64; i++ {
		d.Add(fact(rRel, fmt.Sprintf("hx%d", i), "hub"))
		d.Add(fact(rRel, fmt.Sprintf("hx%d", i), fmt.Sprintf("dead%d", i)))
	}
	d.Add(fact(sRel, "hub", "z0"))
	d.Add(fact(sRel, "hub", "z1"))

	if _, err := CountCtx(context.Background(), q, d, Options{}); !errors.Is(err, counting.ErrComponentTooLarge) {
		t.Fatalf("exact on oversized: err = %v", err)
	}
	res, err := CountCtx(context.Background(), q, d, Options{Approximate: true, Samples: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Sampled != 1 || res.Confidence <= 0 {
		t.Errorf("degraded count: exact=%v sampled=%d confidence=%v", res.Exact, res.Sampled, res.Confidence)
	}
	if res.Class != FO {
		t.Errorf("class = %v", res.Class)
	}

	// A second component whose constraint is fully forced has zero
	// falsifying assignments, which zeroes the falsifying product: the
	// count snaps back to exact (every repair satisfies q) even though
	// the oversized component was sampled.
	d.Add(fact(rRel, "forced", "g"))
	d.Add(fact(sRel, "g", "h"))
	res, err = CountCtx(context.Background(), q, d, Options{Approximate: true, Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Satisfying.Cmp(res.Total) != 0 || res.Fraction != 1 {
		t.Errorf("zero-falsifier short circuit: exact=%v sat=%v total=%v", res.Exact, res.Satisfying, res.Total)
	}
}
