package core

import (
	"context"
	"sort"
	"sync"

	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/shard"
)

// This file is the scatter-gather coordinator: how a Plan evaluates
// over a shard.Pool. The partition splits the top-level *work* — the
// blocks of the first elimination atom's relation for Boolean FO
// certainty, the candidate bindings for certain answers — while every
// shard task probes residues against the full shared snapshot index,
// which is what keeps the merge exact:
//
//   - Boolean FO: the Lemma 10 top level is an existential over the
//     relation's blocks, so the merge is an early-exit OR — true from
//     any shard is definitive, false needs every shard, and a failed
//     shard is an error, never a wrong boolean.
//   - Certain answers: each candidate is owned by exactly one shard, so
//     the merge is a plain set union; any shard error fails the request
//     (a partial union would silently drop answers).
//   - Non-partitionable engines (ptime / conp / naive): the whole
//     evaluation runs as a single task on the shard owning the plan
//     key, so budgets, health, hedging, and fault injection apply
//     uniformly across engines.

// shardedPool resolves the pool of one evaluation: the caller-supplied
// cached pool, an ephemeral one built from Options.Shards (torn down by
// the returned cleanup), or nil for the monolithic path.
func shardedPool(ix *match.Index, opts Options) (*shard.Pool, func()) {
	if opts.ShardPool != nil {
		return opts.ShardPool, func() {}
	}
	if opts.Shards > 1 {
		p := shard.NewPool(ix.DB, opts.Shards, shard.PoolOptions{})
		return p, p.Close
	}
	return nil, nil
}

// unsharded strips the shard selection for evaluations nested inside a
// shard task (the single-task engines), which must not recurse into the
// scatter path.
func unsharded(opts Options) Options {
	opts.Shards = 0
	opts.ShardPool = nil
	return opts
}

// ScatterableFO reports whether this plan's Boolean certainty can be
// scattered as block-local FO checks under the selected engine: the
// Lemma 10 rewriting's top level is an existential over one relation's
// blocks, so any key-hash partition of those blocks decides the query
// as an OR of per-partition verdicts. Every other engine/plan shape
// evaluates as a single (routable but indivisible) task.
func (p *Plan) ScatterableFO(opts Options) bool {
	return p.Engine(opts) == EngineFO && !p.HasCycle && p.Elim != nil
}

// TopRelation returns the relation whose blocks the FO scatter
// partitions — the first atom of the compiled elimination order. Only
// meaningful when ScatterableFO holds.
func (p *Plan) TopRelation() string {
	return p.Elim.Order()[0].Rel.Name
}

// BoolShardTask returns the per-shard Boolean certainty task of an FO
// scatter: decide the top-level existential over the shard's partition
// of the top relation, probing residues against the full snapshot
// index. Both the in-process pool coordinator and the remote cluster
// node run exactly this task, so the two tiers cannot drift.
func (p *Plan) BoolShardTask(ix *match.Index) shard.Task[bool] {
	topRel := p.TopRelation()
	return func(v *shard.View, schk *evalctx.Checker) (bool, error) {
		// Span path first: the shard's columnar block indices feed
		// the interned walk. Irregular data (no spans, or a view
		// that cannot decide) falls back to the row-oriented walk
		// over the shard's block partition.
		if spans, sok := v.SpansOf(topRel); sok {
			if certain, iok, err := p.Elim.CertainOverSpans(ix, spans, schk); iok {
				return certain, err
			}
		}
		return p.Elim.CertainOverBlocks(ix, v.BlocksOf(topRel), schk)
	}
}

// SweepShardTask returns the per-shard batched answers task of a
// sweepable FO plan (Eliminator.SweepableFree): derive and decide the
// candidates of the shard's block partition in one columnar pass.
// Answers come back unsorted; the merge sorts the union by binding key.
func (p *Plan) SweepShardTask(ix *match.Index, free []query.Var) shard.Task[[]query.Valuation] {
	topRel := p.TopRelation()
	return func(v *shard.View, schk *evalctx.Checker) ([]query.Valuation, error) {
		if spans, sok := v.SpansOf(topRel); sok {
			if out, iok, err := p.Elim.SweepSpans(ix, spans, free, schk); iok {
				return out, err
			}
		}
		return p.Elim.SweepBlocks(ix, v.BlocksOf(topRel), free, schk)
	}
}

// certainSharded is the Boolean scatter: FO plans partition the top
// level across the shards; every other engine dispatches the whole
// evaluation to the plan key's owner shard (preserving the Approximate
// degradation of a budget-exhausted coNP evaluation, which happens
// inside the task).
func (p *Plan) certainSharded(ctx context.Context, ix *match.Index, opts Options, chk *evalctx.Checker, pool *shard.Pool) (Result, error) {
	if err := chk.Check(); err != nil {
		return Result{}, err
	}
	engine := p.Engine(opts)
	if p.ScatterableFO(opts) {
		certain, err := p.scatterBool(ctx, pool, chk, p.BoolShardTask(ix))
		if err != nil {
			return Result{}, err
		}
		return Result{Certain: certain, Class: p.Class, Engine: engine}, nil
	}
	return shard.Do(ctx, pool, shard.Of(p.key, pool.N()), chk, p.CertainSingleTask(ctx, ix, opts))
}

// CertainSingleTask returns the whole-evaluation task of a plan that
// cannot be scattered (ptime / conp / naive / cyclic-FO): the complete
// certainty decision, including the Approximate degradation of a
// budget-exhausted coNP search, runs as one unit on whichever shard —
// local pool worker or remote node — owns the plan key.
func (p *Plan) CertainSingleTask(ctx context.Context, ix *match.Index, opts Options) shard.Task[Result] {
	inner := unsharded(opts)
	return func(v *shard.View, schk *evalctx.Checker) (Result, error) {
		return p.certainChecked(ctx, ix, inner, schk)
	}
}

// scatterBool fans the task across every shard and merges with the
// early-exit existential semantics: the first true cancels the
// straggler shards and wins; false requires all shards to report false;
// otherwise the lowest-numbered shard's error is returned (deterministic
// under deterministic faults). The per-shard executions poll a context
// derived from ctx, so cancellation of the scatter never outlives this
// call's decision.
func (p *Plan) scatterBool(ctx context.Context, pool *shard.Pool, chk *evalctx.Checker, task shard.Task[bool]) (bool, error) {
	n := pool.N()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		id      int
		certain bool
		err     error
	}
	ch := make(chan res, n)
	for id := 0; id < n; id++ {
		go func(id int) {
			ok, err := shard.Do(cctx, pool, id, chk, task)
			ch <- res{id: id, certain: ok, err: err}
		}(id)
	}
	var firstErr error
	firstID := n
	for i := 0; i < n; i++ {
		r := <-ch
		if r.err == nil && r.certain {
			cancel()
			return true, nil
		}
		if r.err != nil && r.id < firstID {
			firstID, firstErr = r.id, r.err
		}
	}
	return false, firstErr
}

// certainAnswersSharded is the answers scatter. Two modes:
//
//   - Block sweep (fast FO plans whose free variables read off the top
//     atom's key, see Eliminator.SweepableFree): each shard derives the
//     candidates from its own block partition and decides them in one
//     pass — no join enumeration, no per-candidate index probe, and a
//     memo shared across the shard's whole sweep. The union is sorted
//     into the canonical (binding-key) order.
//   - Candidate partition (everything else): candidates are enumerated
//     once on the coordinator exactly as in the monolithic path, each
//     shard checks the candidates it owns (hash of the binding key) and
//     reports the certain ones by index, and the union preserves the
//     monolithic enumeration order.
func (p *Plan) certainAnswersSharded(ctx context.Context, free []query.Var, ix *match.Index, opts Options, chk *evalctx.Checker, pool *shard.Pool) ([]query.Valuation, error) {
	n := pool.N()
	fastFO := p.ScatterableFO(opts)
	if fastFO && p.Elim.SweepableFree(free) {
		task := p.SweepShardTask(ix, free)
		parts := make([][]query.Valuation, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				parts[id], errs[id] = shard.Do(ctx, pool, id, chk, task)
			}(id)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		total := 0
		for _, part := range parts {
			total += len(part)
		}
		out := make([]query.Valuation, 0, total)
		for _, part := range parts {
			out = append(out, part...)
		}
		rewrite.SortValuationsByKey(out)
		return out, nil
	}

	candidates, err := p.EnumerateCandidates(ix, free, opts, chk)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	groups := make([][]int, n)
	for i, proj := range candidates {
		id := shard.Of(proj.Key(), n)
		groups[id] = append(groups[id], i)
	}
	inner := unsharded(opts)
	results := make([][]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		if len(groups[id]) == 0 {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The task builds its own result slice (hedging may run it
			// twice concurrently; only the winner's slice is used).
			results[id], errs[id] = shard.Do(ctx, pool, id, chk,
				func(v *shard.View, schk *evalctx.Checker) ([]int, error) {
					var mine []int
					for _, i := range groups[id] {
						if err := schk.Err(); err != nil {
							return nil, err
						}
						ok, err := p.CheckCandidate(ctx, ix, inner, candidates[i], schk)
						if err != nil {
							return nil, err
						}
						if ok {
							mine = append(mine, i)
						}
					}
					return mine, nil
				})
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var idx []int
	for _, part := range results {
		idx = append(idx, part...)
	}
	sort.Ints(idx)
	out := make([]query.Valuation, 0, len(idx))
	for _, i := range idx {
		out = append(out, candidates[i])
	}
	return out, nil
}
