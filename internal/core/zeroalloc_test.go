//go:build !race

// Zero-allocation pin for the full serving hot path: Plan →
// CertainIndexed → interned eliminator, with the default (nil) checker
// and no sharding. Excluded under the race detector, whose
// instrumentation allocates.

package core

import (
	"runtime"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
)

// TestWarmCertainIndexedZeroAlloc: the end-to-end Boolean FO request
// path allocates nothing once the snapshot structures are warm. This
// is the property the bench-smoke gate checks in BENCH_eval.json
// (warm "certain" rows must report 0 allocs/op).
func TestWarmCertainIndexedZeroAlloc(t *testing.T) {
	p, err := CompileString("R(x | y), S(y | z)")
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.ParseFacts(nil, `
		R(a | b)
		R(a | c)
		R(d | b)
		S(b | t)
		S(c | t)
	`)
	if err != nil {
		t.Fatal(err)
	}
	ix := match.NewIndex(d)
	if _, err := p.CertainIndexed(ix, Options{}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	allocs := testing.AllocsPerRun(500, func() { p.CertainIndexed(ix, Options{}) })
	if allocs != 0 {
		t.Fatalf("warm CertainIndexed allocates %.1f/op, want 0", allocs)
	}
}
