package core

import (
	"fmt"
	"runtime"
	"sync"

	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
)

// Plan is a compiled certainty plan: the per-query work of the
// trichotomy — attack-graph construction, classification, and (for FO
// queries) the symbolic first-order rewriting plus the compiled
// atom-elimination order — done exactly once. The per-query work is
// polynomial in |q| and independent of the data (Lemma 3), so a
// long-running process compiles each distinct query into a Plan and
// answers every data-side request from it, building no attack graph on
// the hot path.
//
// A Plan is immutable after Compile and safe for concurrent use.
type Plan struct {
	Classification
	// Formula is the consistent first-order rewriting of CERTAINTY(q)
	// (Theorem 2 / Lemma 10); nil unless Class == FO.
	Formula rewrite.Formula
	// Elim is the compiled atom-elimination order the FO engine walks
	// (Lemma 6 fixes the unattacked-atom choice per query pattern); nil
	// unless Class == FO.
	Elim *rewrite.Eliminator

	key string
}

// Compile classifies q and, when CERTAINTY(q) is in FO, constructs its
// first-order rewriting and compiles the elimination order. The query
// must be self-join-free. The attack graph is built exactly once — the
// rewriting and the eliminator reuse the classification.
func Compile(q query.Query) (*Plan, error) {
	cls, err := Classify(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{Classification: cls, key: q.Canonical()}
	if cls.Class == FO {
		p.Formula = rewrite.RewritingAcyclic(q)
		el, err := rewrite.CompileAcyclic(q)
		if err != nil {
			return nil, err
		}
		p.Elim = el
	}
	return p, nil
}

// CompileString parses, normalizes, and compiles a query in the textual
// syntax.
func CompileString(s string) (*Plan, error) {
	q, _, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	return Compile(q)
}

// Key returns the normalized cache key of the plan's query: the
// canonical (atom-sorted) text produced by Normalize.
func (p *Plan) Key() string { return p.key }

// Engine resolves the engine the options select for this plan's class.
func (p *Plan) Engine(opts Options) Engine {
	if opts.Engine != EngineAuto {
		return opts.Engine
	}
	switch p.Class {
	case FO:
		return EngineFO
	case PTime:
		return EnginePTime
	default:
		return EngineCoNP
	}
}

// Certain decides whether every repair of d satisfies the plan's query,
// reusing the compiled classification instead of re-running Classify.
func (p *Plan) Certain(d *db.DB, opts Options) (Result, error) {
	return p.CertainIndexed(match.NewIndex(d), opts)
}

// CertainIndexed is Certain against a pre-built index — the serving hot
// path, where the index is cached per database snapshot and shared
// across requests and goroutines.
func (p *Plan) CertainIndexed(ix *match.Index, opts Options) (Result, error) {
	engine := p.Engine(opts)
	res := Result{Class: p.Class, Engine: engine}
	var err error
	switch engine {
	case EngineFO:
		if p.HasCycle {
			return Result{}, fmt.Errorf("core: attack graph of %s is cyclic; CERTAINTY is not in FO", p.Query)
		}
		if p.Elim != nil {
			res.Certain = p.Elim.Certain(ix)
		} else {
			res.Certain = rewrite.CertainAcyclic(p.Query, ix.DB)
		}
	case EnginePTime:
		if p.HasStrongCycle {
			return Result{}, fmt.Errorf("core: attack graph of %s has a strong cycle; CERTAINTY is coNP-complete", p.Query)
		}
		res.Certain, _, err = ptime.CertainNoStrongCycle(p.Query, ix.DB)
	case EngineCoNP:
		res.Certain, _ = conp.Certain(p.Query, ix.DB)
	case EngineNaive:
		res.Certain, err = naive.Certain(p.Query, ix.DB)
	default:
		err = fmt.Errorf("core: unknown engine %v", engine)
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// CertainAnswers lifts the plan to non-Boolean queries: for the given
// free variables it returns every binding (drawn from embeddings into d)
// whose instantiated Boolean query is certain, in deterministic order.
func (p *Plan) CertainAnswers(free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	return p.CertainAnswersIndexed(free, match.NewIndex(d), opts)
}

// CertainAnswersIndexed is CertainAnswers against a pre-built index.
//
// Candidate bindings are the projections of embeddings into the
// database; each candidate's certainty check is independent, so the
// checks run on a bounded worker pool (Options.Workers) sharing the
// read-only index. For FO plans each candidate is decided by the
// compiled eliminator seeded with the candidate binding: instantiating
// variables with constants never adds attacks (Lemma 6), so acyclicity
// and the elimination order are inherited and no per-binding
// reclassification or query substitution happens. For the other classes
// instantiation can only make the query easier, and each binding is
// dispatched through Certain, which classifies the instantiated query.
func (p *Plan) CertainAnswersIndexed(free []query.Var, ix *match.Index, opts Options) ([]query.Valuation, error) {
	vars := p.Query.Vars()
	for _, v := range free {
		if !vars.Has(v) {
			return nil, fmt.Errorf("core: free variable %s does not occur in %s", v, p.Query)
		}
	}
	fastFO := p.Engine(opts) == EngineFO && !p.HasCycle && p.Elim != nil

	// Candidate answers: projections of embeddings into d. Any certain
	// answer must be one of these (the instantiated query must hold in
	// the repair d' ⊆ d... every repair embeds it into d).
	freeSet := query.NewVarSet(free...)
	var candidates []query.Valuation
	seen := make(map[string]bool)
	ix.Match(p.Query, query.Valuation{}, func(m query.Valuation) bool {
		proj := m.Restrict(freeSet)
		k := proj.Key()
		if !seen[k] {
			seen[k] = true
			candidates = append(candidates, proj)
		}
		return true
	})

	check := func(proj query.Valuation) (bool, error) {
		if fastFO {
			return p.Elim.CertainWith(ix, proj), nil
		}
		qi := p.Query.Substitute(proj)
		res, err := Certain(qi, ix.DB, opts)
		if err != nil {
			return false, err
		}
		return res.Certain, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}

	certain := make([]bool, len(candidates))
	errs := make([]error, len(candidates))
	if workers <= 1 {
		for i, proj := range candidates {
			certain[i], errs[i] = check(proj)
		}
	} else {
		// Warm the shared index once so the workers never race to build
		// it (the build is atomic either way; this just avoids duplicate
		// work on a cold snapshot).
		ix.DB.Blocks()
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					certain[i], errs[i] = check(candidates[i])
				}
			}()
		}
		for i := range candidates {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	var out []query.Valuation
	for i, proj := range candidates {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if certain[i] {
			out = append(out, proj)
		}
	}
	return out, nil
}

// Normalize parses a query in the textual syntax and returns it in
// canonical form together with its canonical key: the atom-sorted text
// that the plan cache and the CLIs share, so that textual variants of
// the same query (whitespace, atom order) map to the same plan.
func Normalize(s string) (query.Query, string, error) {
	q, err := query.Parse(s)
	if err != nil {
		return query.Query{}, "", err
	}
	key := q.Canonical()
	if nq, err := query.Parse(key); err == nil {
		return nq, key, nil
	}
	// Canonical text always re-parses; this fallback keeps Normalize
	// total even if a future syntax change breaks the round trip.
	return q, key, nil
}
