package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/shard"
	"cqa/internal/trace"
)

// Plan is a compiled certainty plan: the per-query work of the
// trichotomy — attack-graph construction, classification, and (for FO
// queries) the symbolic first-order rewriting plus the compiled
// atom-elimination order — done exactly once. The per-query work is
// polynomial in |q| and independent of the data (Lemma 3), so a
// long-running process compiles each distinct query into a Plan and
// answers every data-side request from it, building no attack graph on
// the hot path.
//
// A Plan is immutable after Compile and safe for concurrent use.
type Plan struct {
	Classification
	// Formula is the consistent first-order rewriting of CERTAINTY(q)
	// (Theorem 2 / Lemma 10); nil unless Class == FO.
	Formula rewrite.Formula
	// Elim is the compiled atom-elimination order the FO engine walks
	// (Lemma 6 fixes the unattacked-atom choice per query pattern); nil
	// unless Class == FO.
	Elim *rewrite.Eliminator

	key string
}

// Compile classifies q and, when CERTAINTY(q) is in FO, constructs its
// first-order rewriting and compiles the elimination order. The query
// must be self-join-free. The attack graph is built exactly once — the
// rewriting and the eliminator reuse the classification.
func Compile(q query.Query) (*Plan, error) {
	cls, err := Classify(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{Classification: cls, key: q.Canonical()}
	if cls.Class == FO {
		p.Formula = rewrite.RewritingAcyclic(q)
		el, err := rewrite.CompileAcyclic(q)
		if err != nil {
			return nil, err
		}
		p.Elim = el
	}
	return p, nil
}

// CompileString parses, normalizes, and compiles a query in the textual
// syntax.
func CompileString(s string) (*Plan, error) {
	q, _, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	return Compile(q)
}

// Key returns the normalized cache key of the plan's query: the
// canonical (atom-sorted) text produced by Normalize.
func (p *Plan) Key() string { return p.key }

// Engine resolves the engine the options select for this plan's class.
func (p *Plan) Engine(opts Options) Engine {
	if opts.Engine != EngineAuto {
		return opts.Engine
	}
	switch p.Class {
	case FO:
		return EngineFO
	case PTime:
		return EnginePTime
	default:
		return EngineCoNP
	}
}

// Certain decides whether every repair of d satisfies the plan's query,
// reusing the compiled classification instead of re-running Classify.
func (p *Plan) Certain(d *db.DB, opts Options) (Result, error) {
	return p.CertainIndexed(match.NewIndex(d), opts)
}

// CertainIndexed is Certain against a pre-built index — the serving hot
// path, where the index is cached per database snapshot and shared
// across requests and goroutines.
func (p *Plan) CertainIndexed(ix *match.Index, opts Options) (Result, error) {
	return p.CertainIndexedCtx(context.Background(), ix, opts)
}

// CertainIndexedCtx is CertainIndexed under a context and the resource
// budgets of opts: the engines poll cooperatively and return ctx.Err()
// (or evalctx.ErrBudgetExceeded) instead of a wrong boolean when cut
// short. When the coNP engine exhausts its step budget and
// opts.Approximate is set, the decision degrades to repair sampling and
// the Result reports Approximate=true.
func (p *Plan) CertainIndexedCtx(ctx context.Context, ix *match.Index, opts Options) (Result, error) {
	chk := evalctx.NewTraced(ctx, evalctx.Limits{MaxSteps: opts.MaxSteps, MemoCap: opts.MemoCap}, opts.Tracer)
	if pool, cleanup := shardedPool(ix, opts); pool != nil {
		defer cleanup()
		return p.certainSharded(ctx, ix, opts, chk, pool)
	}
	return p.certainChecked(ctx, ix, opts, chk)
}

func (p *Plan) certainChecked(ctx context.Context, ix *match.Index, opts Options, chk *evalctx.Checker) (Result, error) {
	// Fail fast on a context that is already cancelled — an evaluation
	// quick enough to finish inside one amortization window would
	// otherwise never notice.
	if err := chk.Check(); err != nil {
		return Result{}, err
	}
	engine := p.Engine(opts)
	res := Result{Class: p.Class, Engine: engine}
	var err error
	switch engine {
	case EngineFO:
		if p.HasCycle {
			return Result{}, fmt.Errorf("core: attack graph of %s is cyclic; CERTAINTY is not in FO", p.Query)
		}
		if p.Elim != nil {
			res.Certain, err = p.Elim.CertainChecked(ix, nil, chk)
		} else {
			res.Certain = rewrite.CertainAcyclic(p.Query, ix.DB)
		}
	case EnginePTime:
		if p.HasStrongCycle {
			return Result{}, fmt.Errorf("core: attack graph of %s has a strong cycle; CERTAINTY is coNP-complete", p.Query)
		}
		res.Certain, _, err = ptime.CertainNoStrongCycleChecked(p.Query, ix.DB, chk)
	case EngineCoNP:
		res.Certain, _, err = conp.CertainChecked(p.Query, ix.DB, chk)
		if errors.Is(err, evalctx.ErrBudgetExceeded) && opts.Approximate {
			return p.degradeToSampling(ctx, ix, opts)
		}
	case EngineNaive:
		if err = chk.Check(); err == nil {
			res.Certain, err = naive.Certain(p.Query, ix.DB)
		}
	default:
		err = fmt.Errorf("core: unknown engine %v", engine)
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// degradeToSampling is the graceful-degradation path of a coNP-class
// evaluation whose exact search ran out of its step budget: estimate
// the satisfying-repair fraction by uniform sampling (CertainFraction)
// under the same context — the request deadline still applies — and
// report the answer as approximate. The RNG is fixed, so the same
// request degrades to the same estimate.
func (p *Plan) degradeToSampling(ctx context.Context, ix *match.Index, opts Options) (Result, error) {
	samples := opts.Samples
	if samples <= 0 {
		samples = DefaultSamples
	}
	// A fresh checker: the step budget is spent, but the context of the
	// exhausted evaluation still bounds the sampling wall-clock.
	chk := evalctx.NewTraced(ctx, evalctx.Limits{}, opts.Tracer)
	sp := opts.Tracer.Begin(trace.StageSampling)
	frac, err := CertainFractionChecked(p.Query, ix.DB, samples, rand.New(rand.NewSource(1)), chk)
	sp.End()
	opts.Tracer.Add(trace.StageSampling, trace.CtrSteps, int64(samples))
	if err != nil {
		return Result{}, err
	}
	return Result{
		Certain:     frac >= 1,
		Class:       p.Class,
		Engine:      EngineCoNP,
		Approximate: true,
		Fraction:    frac,
	}, nil
}

// CertainAnswers lifts the plan to non-Boolean queries: for the given
// free variables it returns every binding (drawn from embeddings into d)
// whose instantiated Boolean query is certain, in deterministic order.
func (p *Plan) CertainAnswers(free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	return p.CertainAnswersIndexed(free, match.NewIndex(d), opts)
}

// CertainAnswersIndexed is CertainAnswers against a pre-built index.
//
// Candidate bindings are the projections of embeddings into the
// database; each candidate's certainty check is independent, so the
// checks run on a bounded worker pool (Options.Workers) sharing the
// read-only index. For FO plans each candidate is decided by the
// compiled eliminator seeded with the candidate binding: instantiating
// variables with constants never adds attacks (Lemma 6), so acyclicity
// and the elimination order are inherited and no per-binding
// reclassification or query substitution happens. For the other classes
// instantiation can only make the query easier, and each binding is
// dispatched through Certain, which classifies the instantiated query.
func (p *Plan) CertainAnswersIndexed(free []query.Var, ix *match.Index, opts Options) ([]query.Valuation, error) {
	return p.CertainAnswersIndexedCtx(context.Background(), free, ix, opts)
}

// CertainAnswersIndexedCtx is CertainAnswersIndexed under a context and
// the budgets of opts. One checker governs the whole request: candidate
// enumeration polls it, and every pool worker runs a Fork sharing the
// same step budget. On cancellation or budget exhaustion the feeding
// loop stops, the workers drain and exit — no goroutine outlives the
// call — and the request returns the checker's error, never a partial
// answer set.
func (p *Plan) CertainAnswersIndexedCtx(ctx context.Context, free []query.Var, ix *match.Index, opts Options) ([]query.Valuation, error) {
	vars := p.Query.Vars()
	for _, v := range free {
		if !vars.Has(v) {
			return nil, fmt.Errorf("core: free variable %s does not occur in %s", v, p.Query)
		}
	}
	chk := evalctx.NewTraced(ctx, evalctx.Limits{MaxSteps: opts.MaxSteps, MemoCap: opts.MemoCap}, opts.Tracer)
	if err := chk.Check(); err != nil {
		return nil, err
	}
	if pool, cleanup := shardedPool(ix, opts); pool != nil {
		defer cleanup()
		return p.certainAnswersSharded(ctx, free, ix, opts, chk, pool)
	}
	fastFO := p.ScatterableFO(opts)

	// Batched block sweep (fast FO plans whose free variables read off
	// the top atom's key): all candidates are derived and decided in
	// one pass over the top relation's column spans, sharing one memo
	// and one evaluation state — no join enumeration, no per-candidate
	// eliminator walk. Answers come back in the canonical binding-key
	// order, the same order the sharded merge produces. Irregular data
	// falls through to the row-oriented enumerate-then-check path.
	if fastFO && p.Elim.SweepableFree(free) {
		if out, ok, err := p.Elim.SweepSpans(ix, nil, free, chk); ok {
			if err != nil {
				return nil, err
			}
			rewrite.SortValuationsByKey(out)
			return out, nil
		}
	}

	candidates, err := p.EnumerateCandidates(ix, free, opts, chk)
	if err != nil {
		return nil, err
	}

	check := func(proj query.Valuation, wchk *evalctx.Checker) (bool, error) {
		return p.CheckCandidate(ctx, ix, opts, proj, wchk)
	}

	workers := shard.Workers(opts.Workers, len(candidates))

	certain := make([]bool, len(candidates))
	errs := make([]error, len(candidates))
	if workers <= 1 {
		for i, proj := range candidates {
			if err := chk.Err(); err != nil {
				return nil, err
			}
			certain[i], errs[i] = check(proj, chk)
		}
	} else {
		// Warm the shared index once so the workers never race to build
		// it (the build is atomic either way; this just avoids duplicate
		// work on a cold snapshot).
		ix.DB.Blocks()
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				// Each worker forks the request checker: a private poll
				// counter over the shared deadline and step budget.
				wchk := chk.Fork()
				for i := range jobs {
					if err := wchk.Err(); err != nil {
						errs[i] = err
						continue // drain the channel; never block the feeder
					}
					certain[i], errs[i] = check(candidates[i], wchk)
				}
			}()
		}
		done := ctx.Done()
	feed:
		for i := range candidates {
			select {
			case jobs <- i:
			case <-done:
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var out []query.Valuation
	for i, proj := range candidates {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if certain[i] {
			out = append(out, proj)
		}
	}
	return out, nil
}

// EnumerateCandidates collects the candidate answers: deduplicated
// projections of the embeddings of the plan's query into the database,
// in deterministic first-seen order. Any certain answer must be one of
// these (the instantiated query must hold in the repair d' ⊆ d... every
// repair embeds it into d). Exported because a cluster node enumerates
// the same candidates locally and checks only the ones its shard owns —
// determinism of this order is what lets nodes agree on ownership
// without coordination.
func (p *Plan) EnumerateCandidates(ix *match.Index, free []query.Var, opts Options, chk *evalctx.Checker) ([]query.Valuation, error) {
	freeSet := query.NewVarSet(free...)
	var candidates []query.Valuation
	seen := make(map[string]bool)
	sp := opts.Tracer.Begin(trace.StageMatch)
	ix.MatchChecked(p.Query, query.Valuation{}, chk, func(m query.Valuation) bool {
		proj := m.Restrict(freeSet)
		k := proj.Key()
		if !seen[k] {
			seen[k] = true
			candidates = append(candidates, proj)
		}
		return true
	})
	sp.End()
	opts.Tracer.Add(trace.StageMatch, trace.CtrMatches, int64(len(candidates)))
	if err := chk.Err(); err != nil {
		return nil, err
	}
	return candidates, nil
}

// CheckCandidate decides one candidate binding: FO plans seed the
// compiled eliminator with the binding (Lemma 6 — instantiation never
// adds attacks), every other class substitutes and re-dispatches the
// instantiated Boolean query.
func (p *Plan) CheckCandidate(ctx context.Context, ix *match.Index, opts Options, proj query.Valuation, wchk *evalctx.Checker) (bool, error) {
	if p.ScatterableFO(opts) {
		return p.Elim.CertainChecked(ix, proj, wchk)
	}
	qi := p.Query.Substitute(proj)
	pi, err := Compile(qi)
	if err != nil {
		return false, err
	}
	res, err := pi.certainChecked(ctx, match.NewIndex(ix.DB), Options{Engine: opts.Engine}, wchk)
	if err != nil {
		return false, err
	}
	return res.Certain, nil
}

// Normalize parses a query in the textual syntax and returns it in
// canonical form together with its canonical key: the atom-sorted text
// that the plan cache and the CLIs share, so that textual variants of
// the same query (whitespace, atom order) map to the same plan.
func Normalize(s string) (query.Query, string, error) {
	q, err := query.Parse(s)
	if err != nil {
		return query.Query{}, "", err
	}
	key := q.Canonical()
	if nq, err := query.Parse(key); err == nil {
		return nq, key, nil
	}
	// Canonical text always re-parses; this fallback keeps Normalize
	// total even if a future syntax change breaks the round trip.
	return q, key, nil
}
