package core

import (
	"fmt"

	"cqa/internal/conp"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/rewrite"
)

// Plan is a compiled certainty plan: the per-query work of the
// trichotomy — attack-graph construction, classification, and (for FO
// queries) the symbolic first-order rewriting — done exactly once. The
// per-query work is polynomial in |q| and independent of the data
// (Lemma 3), so a long-running process compiles each distinct query
// into a Plan and answers every data-side request from it, skipping
// attack-graph construction entirely on the hot path.
//
// A Plan is immutable after Compile and safe for concurrent use.
type Plan struct {
	Classification
	// Formula is the consistent first-order rewriting of CERTAINTY(q)
	// (Theorem 2 / Lemma 10); nil unless Class == FO.
	Formula rewrite.Formula

	key string
}

// Compile classifies q and, when CERTAINTY(q) is in FO, constructs its
// first-order rewriting. The query must be self-join-free.
func Compile(q query.Query) (*Plan, error) {
	cls, err := Classify(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{Classification: cls, key: q.Canonical()}
	if cls.Class == FO {
		f, err := rewrite.Rewriting(q)
		if err != nil {
			return nil, err
		}
		p.Formula = f
	}
	return p, nil
}

// CompileString parses, normalizes, and compiles a query in the textual
// syntax.
func CompileString(s string) (*Plan, error) {
	q, _, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	return Compile(q)
}

// Key returns the normalized cache key of the plan's query: the
// canonical (atom-sorted) text produced by Normalize.
func (p *Plan) Key() string { return p.key }

// Engine resolves the engine the options select for this plan's class.
func (p *Plan) Engine(opts Options) Engine {
	if opts.Engine != EngineAuto {
		return opts.Engine
	}
	switch p.Class {
	case FO:
		return EngineFO
	case PTime:
		return EnginePTime
	default:
		return EngineCoNP
	}
}

// Certain decides whether every repair of d satisfies the plan's query,
// reusing the compiled classification instead of re-running Classify.
func (p *Plan) Certain(d *db.DB, opts Options) (Result, error) {
	engine := p.Engine(opts)
	res := Result{Class: p.Class, Engine: engine}
	var err error
	switch engine {
	case EngineFO:
		if p.HasCycle {
			return Result{}, fmt.Errorf("core: attack graph of %s is cyclic; CERTAINTY is not in FO", p.Query)
		}
		res.Certain = rewrite.CertainAcyclic(p.Query, d)
	case EnginePTime:
		res.Certain, _, err = ptime.Certain(p.Query, d)
	case EngineCoNP:
		res.Certain, _ = conp.Certain(p.Query, d)
	case EngineNaive:
		res.Certain, err = naive.Certain(p.Query, d)
	default:
		err = fmt.Errorf("core: unknown engine %v", engine)
	}
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// CertainAnswers lifts the plan to non-Boolean queries: for the given
// free variables it returns every binding (drawn from embeddings into d)
// whose instantiated Boolean query is certain, in deterministic order.
//
// For FO plans each instantiated query is decided by the Lemma 10
// recursion directly: instantiating variables with constants never adds
// attacks (Lemma 6), so acyclicity is inherited and no per-binding
// reclassification is needed. For the other classes instantiation can
// only make the query easier, so each binding is dispatched through
// Certain, which classifies the instantiated query.
func (p *Plan) CertainAnswers(free []query.Var, d *db.DB, opts Options) ([]query.Valuation, error) {
	vars := p.Query.Vars()
	for _, v := range free {
		if !vars.Has(v) {
			return nil, fmt.Errorf("core: free variable %s does not occur in %s", v, p.Query)
		}
	}
	fastFO := p.Engine(opts) == EngineFO && !p.HasCycle

	// Candidate answers: projections of embeddings into d. Any certain
	// answer must be one of these (the instantiated query must hold in
	// the repair d' ⊆ d... every repair embeds it into d).
	freeSet := query.NewVarSet(free...)
	seen := make(map[string]query.Valuation)
	var order []string
	for _, m := range match.AllMatches(p.Query, d) {
		proj := m.Restrict(freeSet)
		k := proj.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = proj
			order = append(order, k)
		}
	}
	var out []query.Valuation
	for _, k := range order {
		proj := seen[k]
		qi := p.Query.Substitute(proj)
		var certain bool
		if fastFO {
			certain = rewrite.CertainAcyclic(qi, d)
		} else {
			res, err := Certain(qi, d, opts)
			if err != nil {
				return nil, err
			}
			certain = res.Certain
		}
		if certain {
			out = append(out, proj)
		}
	}
	return out, nil
}

// Normalize parses a query in the textual syntax and returns it in
// canonical form together with its canonical key: the atom-sorted text
// that the plan cache and the CLIs share, so that textual variants of
// the same query (whitespace, atom order) map to the same plan.
func Normalize(s string) (query.Query, string, error) {
	q, err := query.Parse(s)
	if err != nil {
		return query.Query{}, "", err
	}
	key := q.Canonical()
	if nq, err := query.Parse(key); err == nil {
		return nq, key, nil
	}
	// Canonical text always re-parses; this fallback keeps Normalize
	// total even if a future syntax change breaks the round trip.
	return q, key, nil
}
