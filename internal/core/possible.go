package core

import (
	"fmt"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/match"
	"cqa/internal/query"
)

// Possible decides POSSIBILITY(q): whether q is true in SOME repair of d
// (the dual semantics mentioned in the paper's introduction). For
// conjunctive queries this is polynomial for every q: an embedding whose
// image contains no two distinct key-equal facts extends to a repair, and
// conversely an embedding inside a repair is such an embedding.
func Possible(q query.Query, d *db.DB) bool {
	if q.Empty() {
		return true
	}
	possible := false
	match.NewIndex(d).Match(q, query.Valuation{}, func(v query.Valuation) bool {
		facts, err := db.GroundQuery(q, v)
		if err != nil {
			return true
		}
		if db.ConsistentSet(facts) {
			possible = true
			return false
		}
		return true
	})
	return possible
}

// CertainFraction estimates the fraction of repairs of d that satisfy q
// by uniform sampling: each block independently picks a uniform fact,
// which induces the uniform distribution over repairs. This approximates
// the counting problem #CERTAINTY(q) studied by Maslowski and Wijsen
// (cited as [12] in the paper); the decision problem's certainty
// corresponds to a fraction of 1.
func CertainFraction(q query.Query, d *db.DB, samples int, rng *rand.Rand) (float64, error) {
	return CertainFractionChecked(q, d, samples, rng, nil)
}

// CertainFractionChecked is CertainFraction under a cancellation/budget
// checker, polled once per sampled repair (a sample is coarse work — a
// full repair draw plus a satisfaction test — so the poll is immediate,
// not amortized). It is the graceful-degradation target of
// budget-exhausted coNP evaluations. A nil checker enforces nothing.
func CertainFractionChecked(q query.Query, d *db.DB, samples int, rng *rand.Rand, chk *evalctx.Checker) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("core: need a positive sample count")
	}
	blocks := d.Blocks()
	hit := 0
	repair := make([]db.Fact, len(blocks))
	for s := 0; s < samples; s++ {
		if err := chk.Check(); err != nil {
			return 0, err
		}
		for i, b := range blocks {
			repair[i] = b.Facts[rng.Intn(len(b.Facts))]
		}
		if match.Satisfies(q, db.FromFacts(repair...)) {
			hit++
		}
	}
	return float64(hit) / float64(samples), nil
}
