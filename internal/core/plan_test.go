package core

import (
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestPlanReuseAgreesWithOracle: one compiled plan answers many
// databases, agreeing with the brute-force oracle and with the one-shot
// Certain wrapper on every engine.
func TestPlanReuseAgreesWithOracle(t *testing.T) {
	for _, qs := range []string{
		"R(x | y), S(y | z)",   // FO
		"R0(x | y), S0(y | x)", // P\FO
		"R(x | y), S(u | y)",   // coNP-complete
	} {
		q := query.MustParse(qs)
		p, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 25; trial++ {
			d := workload.RandomDB(rng, q, workload.DefaultDBParams())
			if d.NumRepairs() > 1<<12 {
				continue
			}
			want, err := naive.Certain(q, d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Certain(d, Options{})
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			if res.Certain != want {
				t.Errorf("%s trial %d: plan=%v oracle=%v", qs, trial, res.Certain, want)
			}
			wrapped, err := Certain(q, d, Options{})
			if err != nil || wrapped != res {
				t.Errorf("%s trial %d: wrapper %+v (%v) != plan %+v", qs, trial, wrapped, err, res)
			}
		}
	}
}

func TestCompileBuildsFormulaOnlyForFO(t *testing.T) {
	p, err := Compile(query.MustParse("R(x | y), S(y | z)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != FO || p.Formula == nil {
		t.Errorf("FO plan should carry a formula: class=%v formula=%v", p.Class, p.Formula)
	}
	if p.Key() != "R(x | y), S(y | z)" {
		t.Errorf("key = %q", p.Key())
	}
	p, err = Compile(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != PTime || p.Formula != nil {
		t.Errorf("non-FO plan should have no formula: class=%v formula=%v", p.Class, p.Formula)
	}
}

func TestPlanForcedEngineErrors(t *testing.T) {
	p, err := Compile(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Certain(nil, Options{Engine: EngineFO}); err == nil {
		t.Error("FO engine on a cyclic plan must error")
	}
	if _, err := p.Certain(nil, Options{Engine: Engine(99)}); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestNormalize(t *testing.T) {
	q1, k1, err := Normalize("  S(y | z) ,  R(x | y)  ")
	if err != nil {
		t.Fatal(err)
	}
	q2, k2, err := Normalize("R(x | y), S(y | z)")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("keys differ: %q vs %q", k1, k2)
	}
	if !q1.Equal(q2) || q1.String() != q2.String() {
		t.Errorf("normalized queries differ: %s vs %s", q1, q2)
	}
	// Constants and modes survive the round trip.
	_, k3, err := Normalize("T#c(x | z), S(y | 'b')")
	if err != nil {
		t.Fatal(err)
	}
	if k3 != "S(y | 'b'), T#c(x | z)" {
		t.Errorf("canonical key = %q", k3)
	}
	if _, _, err := Normalize("R(("); err == nil {
		t.Error("syntax error must be reported")
	}
	if _, _, err := Normalize("R(x | y), R(y | z)"); err == nil {
		t.Error("self-join must be rejected")
	}
}

func TestPlanCertainAnswersMatchesPackageLevel(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		got, err := p.CertainAnswers([]query.Var{"x"}, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := CertainAnswers(q, []query.Var{"x"}, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: plan answers %v, package answers %v", trial, got, want)
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("trial %d: answer %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	if _, err := p.CertainAnswers([]query.Var{"nope"}, nil, Options{}); err == nil {
		t.Error("unknown free variable accepted")
	}
}

// TestCertainAnswersParallelMatchesSequential: the bounded worker pool
// returns exactly the answers of the sequential path, in the same order,
// for every trichotomy class. Run with -race to exercise the pool.
func TestCertainAnswersParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		qs   string
		free []query.Var
	}{
		{"R(x | y), S(y | z)", []query.Var{"x"}},      // FO: compiled eliminator
		{"R0(x | y), S0(y | x)", []query.Var{"x"}},    // P\FO
		{"R(x | y), S(u | y)", []query.Var{"x", "u"}}, // coNP-complete
	} {
		q := query.MustParse(tc.qs)
		p, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(61))
		for trial := 0; trial < 15; trial++ {
			d := workload.RandomDB(rng, q, workload.DefaultDBParams())
			if d.NumRepairs() > 1<<12 {
				continue
			}
			seq, err := p.CertainAnswers(tc.free, d, Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: sequential: %v", tc.qs, err)
			}
			par, err := p.CertainAnswers(tc.free, d, Options{Workers: 8})
			if err != nil {
				t.Fatalf("%s: parallel: %v", tc.qs, err)
			}
			if len(seq) != len(par) {
				t.Fatalf("%s trial %d: sequential %v != parallel %v", tc.qs, trial, seq, par)
			}
			for i := range seq {
				if seq[i].Key() != par[i].Key() {
					t.Fatalf("%s trial %d: answer %d: %v != %v (order must be deterministic)",
						tc.qs, trial, i, seq[i], par[i])
				}
			}
		}
	}
}

// TestCertainAnswersSharedIndexConcurrent: concurrent requests share one
// snapshot index while each runs its own worker pool; run with -race.
func TestCertainAnswersSharedIndexConcurrent(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	dp := workload.DefaultDBParams()
	dp.SeedMatches = 8
	d := workload.RandomDB(rng, q, dp)
	ix := match.NewIndex(d)
	want, err := p.CertainAnswersIndexed([]query.Var{"x"}, ix, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.CertainAnswersIndexed([]query.Var{"x"}, ix, Options{Workers: 4})
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("concurrent request: %v != %v", got, want)
			}
		}()
	}
	wg.Wait()
}
