package core

import (
	"math/rand"
	"testing"

	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestPlanReuseAgreesWithOracle: one compiled plan answers many
// databases, agreeing with the brute-force oracle and with the one-shot
// Certain wrapper on every engine.
func TestPlanReuseAgreesWithOracle(t *testing.T) {
	for _, qs := range []string{
		"R(x | y), S(y | z)",   // FO
		"R0(x | y), S0(y | x)", // P\FO
		"R(x | y), S(u | y)",   // coNP-complete
	} {
		q := query.MustParse(qs)
		p, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 25; trial++ {
			d := workload.RandomDB(rng, q, workload.DefaultDBParams())
			if d.NumRepairs() > 1<<12 {
				continue
			}
			want, err := naive.Certain(q, d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Certain(d, Options{})
			if err != nil {
				t.Fatalf("%s: %v", qs, err)
			}
			if res.Certain != want {
				t.Errorf("%s trial %d: plan=%v oracle=%v", qs, trial, res.Certain, want)
			}
			wrapped, err := Certain(q, d, Options{})
			if err != nil || wrapped != res {
				t.Errorf("%s trial %d: wrapper %+v (%v) != plan %+v", qs, trial, wrapped, err, res)
			}
		}
	}
}

func TestCompileBuildsFormulaOnlyForFO(t *testing.T) {
	p, err := Compile(query.MustParse("R(x | y), S(y | z)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != FO || p.Formula == nil {
		t.Errorf("FO plan should carry a formula: class=%v formula=%v", p.Class, p.Formula)
	}
	if p.Key() != "R(x | y), S(y | z)" {
		t.Errorf("key = %q", p.Key())
	}
	p, err = Compile(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if p.Class != PTime || p.Formula != nil {
		t.Errorf("non-FO plan should have no formula: class=%v formula=%v", p.Class, p.Formula)
	}
}

func TestPlanForcedEngineErrors(t *testing.T) {
	p, err := Compile(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Certain(nil, Options{Engine: EngineFO}); err == nil {
		t.Error("FO engine on a cyclic plan must error")
	}
	if _, err := p.Certain(nil, Options{Engine: Engine(99)}); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestNormalize(t *testing.T) {
	q1, k1, err := Normalize("  S(y | z) ,  R(x | y)  ")
	if err != nil {
		t.Fatal(err)
	}
	q2, k2, err := Normalize("R(x | y), S(y | z)")
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("keys differ: %q vs %q", k1, k2)
	}
	if !q1.Equal(q2) || q1.String() != q2.String() {
		t.Errorf("normalized queries differ: %s vs %s", q1, q2)
	}
	// Constants and modes survive the round trip.
	_, k3, err := Normalize("T#c(x | z), S(y | 'b')")
	if err != nil {
		t.Fatal(err)
	}
	if k3 != "S(y | 'b'), T#c(x | z)" {
		t.Errorf("canonical key = %q", k3)
	}
	if _, _, err := Normalize("R(("); err == nil {
		t.Error("syntax error must be reported")
	}
	if _, _, err := Normalize("R(x | y), R(y | z)"); err == nil {
		t.Error("self-join must be rejected")
	}
}

func TestPlanCertainAnswersMatchesPackageLevel(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		got, err := p.CertainAnswers([]query.Var{"x"}, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := CertainAnswers(q, []query.Var{"x"}, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: plan answers %v, package answers %v", trial, got, want)
		}
		for i := range got {
			if got[i].Key() != want[i].Key() {
				t.Fatalf("trial %d: answer %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
	if _, err := p.CertainAnswers([]query.Var{"nope"}, nil, Options{}); err == nil {
		t.Error("unknown free variable accepted")
	}
}
