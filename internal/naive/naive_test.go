package naive

import (
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCertain(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, "R(a | 1)\nR(a | 2)")
	got, err := Certain(q, d)
	if err != nil || !got {
		t.Fatalf("got %v, %v", got, err)
	}
	q2 := query.MustParse("R(x | '1')")
	got, err = Certain(q2, d)
	if err != nil || got {
		t.Fatalf("repair picking R(a|2) falsifies: got %v, %v", got, err)
	}
}

func TestFalsifyingRepair(t *testing.T) {
	q := query.MustParse("R(x | '1')")
	d := factsDB(t, "R(a | 1)\nR(a | 2)")
	repair, err := FalsifyingRepair(q, d)
	if err != nil || repair == nil {
		t.Fatalf("repair=%v err=%v", repair, err)
	}
	if match.Satisfies(q, db.FromFacts(repair...)) {
		t.Error("repair satisfies q")
	}
	q2 := query.MustParse("R(x | y)")
	repair, err = FalsifyingRepair(q2, d)
	if err != nil || repair != nil {
		t.Errorf("certain query should have no falsifier: %v %v", repair, err)
	}
}

func TestCountSatisfyingRepairs(t *testing.T) {
	q := query.MustParse("R(x | '1')")
	d := factsDB(t, "R(a | 1)\nR(a | 2)\nR(b | 1)")
	sat, total, err := CountSatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("total = %d", total)
	}
	// Both repairs contain R(b|1), so both satisfy the query.
	if sat != 2 {
		t.Fatalf("sat = %d", sat)
	}
}

func TestOracleBound(t *testing.T) {
	d := db.New()
	rel := factsDB(t, "R(k | v)").Facts()[0].Rel
	for i := 0; i < 23; i++ {
		key := query.Const(string(rune('a' + i)))
		d.Add(db.Fact{Rel: rel, Args: []query.Const{key, "1"}})
		d.Add(db.Fact{Rel: rel, Args: []query.Const{key, "2"}})
	}
	q := query.MustParse("R(x | y)")
	if _, err := Certain(q, d); err == nil {
		t.Error("2^23 repairs should exceed the oracle bound")
	}
	if _, err := FalsifyingRepair(q, d); err == nil {
		t.Error("bound should apply to FalsifyingRepair too")
	}
	if _, _, err := CountSatisfyingRepairs(q, d); err == nil {
		t.Error("bound should apply to CountSatisfyingRepairs too")
	}
}
