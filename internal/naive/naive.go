// Package naive implements the brute-force oracle for CERTAINTY(q):
// literal enumeration of all repairs. It is exponential in the number of
// non-singleton blocks and exists to ground-truth every other engine on
// small instances.
package naive

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

// MaxRepairs bounds the number of repairs Certain is willing to enumerate.
const MaxRepairs = 1 << 22

// Certain reports whether every repair of d satisfies q, by enumerating
// repairs. It fails when the repair count exceeds MaxRepairs.
func Certain(q query.Query, d *db.DB) (bool, error) {
	if n := d.NumRepairs(); n > MaxRepairs {
		return false, fmt.Errorf("naive: %g repairs exceed the oracle bound %d", n, MaxRepairs)
	}
	certain := true
	d.Repairs(func(facts []db.Fact) bool {
		r := db.FromFacts(facts...)
		if !match.Satisfies(q, r) {
			certain = false
			return false
		}
		return true
	})
	return certain, nil
}

// FalsifyingRepair returns a repair of d that does not satisfy q, or nil
// when q is certain. Subject to the same MaxRepairs bound.
func FalsifyingRepair(q query.Query, d *db.DB) ([]db.Fact, error) {
	if n := d.NumRepairs(); n > MaxRepairs {
		return nil, fmt.Errorf("naive: %g repairs exceed the oracle bound %d", n, MaxRepairs)
	}
	var out []db.Fact
	d.Repairs(func(facts []db.Fact) bool {
		r := db.FromFacts(facts...)
		if !match.Satisfies(q, r) {
			out = append([]db.Fact(nil), facts...)
			return false
		}
		return true
	})
	return out, nil
}

// CountSatisfyingRepairs returns how many repairs of d satisfy q and the
// total number of repairs; the counting variant #CERTAINTY(q) restricted
// to exhaustive enumeration.
func CountSatisfyingRepairs(q query.Query, d *db.DB) (sat, total int, err error) {
	if n := d.NumRepairs(); n > MaxRepairs {
		return 0, 0, fmt.Errorf("naive: %g repairs exceed the oracle bound %d", n, MaxRepairs)
	}
	d.Repairs(func(facts []db.Fact) bool {
		total++
		r := db.FromFacts(facts...)
		if match.Satisfies(q, r) {
			sat++
		}
		return true
	})
	return sat, total, nil
}
