package counting

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/trace"
	"cqa/internal/workload"
)

// hubInstance builds one giant constraint component for R(x|y), S(y|z):
// n R-blocks of two facts (one pointing at the shared hub key, one
// dead) all joined through a single two-fact S-block, so the component
// space is 2^(n+1) while the match count stays linear (2n). Exactly two
// assignments falsify q: all R-blocks dead, either S fact.
func hubInstance(t testing.TB, n int) (query.Query, *db.DB) {
	t.Helper()
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	rRel, sRel := q.Atoms[0].Rel, q.Atoms[1].Rel
	d.Add(db.Fact{Rel: sRel, Args: []query.Const{"hub", "z0"}})
	d.Add(db.Fact{Rel: sRel, Args: []query.Const{"hub", "z1"}})
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, "hub"}})
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, query.Const(fmt.Sprintf("dead%d", i))}})
	}
	return q, d
}

func TestCountBudgetExceeded(t *testing.T) {
	q, d := hubInstance(t, 12)
	chk := evalctx.New(context.Background(), evalctx.Limits{MaxSteps: 3})
	_, err := Count(q, match.NewIndex(d), chk, Options{})
	if !errors.Is(err, evalctx.ErrBudgetExceeded) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}

// TestCountBudgetDegrades: a component whose exact space fits the
// component limit but not the remaining step budget degrades to
// sampling rather than tripping the budget mid-enumeration.
func TestCountBudgetDegrades(t *testing.T) {
	q, d := hubInstance(t, 12) // space 2^13, well under the limit
	chk := evalctx.New(context.Background(), evalctx.Limits{MaxSteps: 2000})
	res, err := Count(q, match.NewIndex(d), chk, Options{Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Sampled != 1 {
		t.Errorf("tight budget should sample: exact=%v sampled=%d", res.Exact, res.Sampled)
	}
}

func TestCountCancelled(t *testing.T) {
	q, d := hubInstance(t, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	chk := evalctx.New(ctx, evalctx.Limits{})
	_, err := Count(q, match.NewIndex(d), chk, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestCountComponentFault(t *testing.T) {
	defer faultinject.Reset()
	boom := errors.New("boom")
	faultinject.Set("counting.component", func(int) error { return boom })
	q, d := hubInstance(t, 4)
	_, err := Count(q, match.NewIndex(d), nil, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if faultinject.Calls("counting.component") == 0 {
		t.Error("hook never fired")
	}
}

// TestComponentSpaceOverflow is the regression for the historical
// post-multiplication bound check, which could wrap int64 before the
// comparison under a pathological block and a caller-raised limit.
func TestComponentSpaceOverflow(t *testing.T) {
	huge := 1 << 31
	if space, fits := componentSpace([]int{huge, huge, huge}, math.MaxInt64); fits {
		t.Fatalf("2^93 space reported as fitting (space=%d)", space)
	}
	// Exactly at the limit still fits…
	if space, fits := componentSpace([]int{2048, 2048}, 1<<22); !fits || space != 1<<22 {
		t.Fatalf("2^22 space at a 2^22 limit: space=%d fits=%v", space, fits)
	}
	// …one past it does not.
	if _, fits := componentSpace([]int{2048, 2049}, 1<<22); fits {
		t.Fatal("2048*2049 space reported under a 2^22 limit")
	}
	if space, fits := componentSpace(nil, 1); !fits || space != 1 {
		t.Fatalf("empty component: space=%d fits=%v", space, fits)
	}
}

// TestCountPathologicalBlock: a component whose space (2^65) overflows
// int64 outright must degrade (or refuse under Exact), never wrap into
// a bogus in-bounds enumeration.
func TestCountPathologicalBlock(t *testing.T) {
	q, d := hubInstance(t, 64)
	if _, err := SatisfyingRepairs(q, d); !errors.Is(err, ErrComponentTooLarge) {
		t.Fatalf("exact mode on a 2^65 component: %v", err)
	}
	res, err := Count(q, match.NewIndex(d), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 65)
	if res.Total.Cmp(want) != 0 {
		t.Errorf("total = %v, want 2^65", res.Total)
	}
	// Only 2 of 2^65 assignments falsify: the estimate must sit at the
	// top of the unit interval.
	if res.Exact || res.Fraction < 0.99 || res.Fraction > 1 {
		t.Errorf("exact=%v fraction=%v", res.Exact, res.Fraction)
	}
}

// TestCountSampledAccuracy: on a component small enough to count
// exactly, a forced sampling run must land within its own reported
// confidence interval of the truth (deterministic seed, so not flaky).
func TestCountSampledAccuracy(t *testing.T) {
	q, d := hubInstance(t, 10)
	exact, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Count(q, match.NewIndex(d), nil, Options{ComponentLimit: 16, Samples: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if est.Exact || est.Sampled != 1 {
		t.Fatalf("forced sampling: exact=%v sampled=%d", est.Exact, est.Sampled)
	}
	if diff := math.Abs(est.Fraction - exact.Fraction); diff > est.Confidence+1e-9 {
		t.Errorf("estimate %v ± %v vs exact %v (off by %v)",
			est.Fraction, est.Confidence, exact.Fraction, diff)
	}
	// Same seed, same estimate: the anytime path is reproducible.
	again, err := Count(q, match.NewIndex(d), nil, Options{ComponentLimit: 16, Samples: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if again.Fraction != est.Fraction || again.Confidence != est.Confidence {
		t.Errorf("rerun diverged: %v±%v vs %v±%v", again.Fraction, again.Confidence, est.Fraction, est.Confidence)
	}
	// A different seed may move the point estimate but stays honest.
	other, err := Count(q, match.NewIndex(d), nil, Options{ComponentLimit: 16, Samples: 4096, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(other.Fraction - exact.Fraction); diff > other.Confidence+1e-9 {
		t.Errorf("seed 99 estimate %v ± %v vs exact %v", other.Fraction, other.Confidence, exact.Fraction)
	}
}

// TestCountAlwaysSatisfiedComponent: a constraint all of whose blocks
// are single-fact is kept by every repair, so the count is exactly
// Total no matter how big the rest of the component space is.
func TestCountAlwaysSatisfiedComponent(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	rRel, sRel := q.Atoms[0].Rel, q.Atoms[1].Rel
	d.Add(db.Fact{Rel: rRel, Args: []query.Const{"a", "b"}})
	d.Add(db.Fact{Rel: sRel, Args: []query.Const{"b", "c"}})
	// Noise blocks that never match: factors on both counts.
	d.Add(db.Fact{Rel: rRel, Args: []query.Const{"a2", "nob1"}})
	d.Add(db.Fact{Rel: rRel, Args: []query.Const{"a2", "nob2"}})
	res, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfying.Cmp(res.Total) != 0 || res.Total.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("forced constraint: %v/%v", res.Satisfying, res.Total)
	}
	if res.Fraction != 1 {
		t.Errorf("fraction = %v", res.Fraction)
	}
}

func TestCountTraceCounters(t *testing.T) {
	tr := trace.New()
	chk := evalctx.NewTraced(context.Background(), evalctx.Limits{}, tr)
	q, d := hubInstance(t, 8)
	if _, err := Count(q, match.NewIndex(d), chk, Options{}); err != nil {
		t.Fatal(err)
	}
	var st *trace.StageStats
	for _, s := range tr.Breakdown() {
		if s.Stage == "count" {
			cp := s
			st = &cp
			break
		}
	}
	if st == nil {
		t.Fatal("no count stage span recorded")
	}
	if st.Spans == 0 || st.Counters["components"] != 1 || st.Counters["matches"] == 0 {
		t.Errorf("count stage stats: %+v", st)
	}
}

// --- Metamorphic family -------------------------------------------------

// foreignRel is a relation no generated query mentions.
var foreignRel = query.MustParse("ZForeign(k | v)").Atoms[0].Rel

// randomCase draws a small query/instance pair the exact counter
// handles comfortably.
func randomCase(rng *rand.Rand) (query.Query, *db.DB) {
	p := workload.DefaultQueryParams()
	p.Atoms = 1 + rng.Intn(3)
	q := workload.RandomQuery(rng, p)
	d := workload.RandomDB(rng, q, workload.DefaultDBParams())
	return q, d
}

// rebuild copies facts into a fresh database in the given order.
func rebuild(facts []db.Fact) *db.DB {
	d := db.New()
	for _, f := range facts {
		d.Add(f)
	}
	return d
}

// TestCountForeignRelationInvariant: facts of a relation q never
// mentions multiply Satisfying and Total by the same block factor and
// leave Fraction untouched.
func TestCountForeignRelationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	trials := 0
	for trials < 40 {
		q, d := randomCase(rng)
		res0, err := SatisfyingRepairs(q, d)
		if err != nil {
			continue
		}
		trials++
		facts := append([]db.Fact(nil), d.Facts()...)
		for v := 0; v < 3; v++ {
			facts = append(facts, db.Fact{Rel: foreignRel,
				Args: []query.Const{"k0", query.Const(fmt.Sprintf("v%d", v))}})
		}
		res1, err := SatisfyingRepairs(q, rebuild(facts))
		if err != nil {
			t.Fatal(err)
		}
		k := big.NewInt(3)
		if res1.Total.Cmp(new(big.Int).Mul(res0.Total, k)) != 0 {
			t.Fatalf("total %v != 3 * %v\nq=%s", res1.Total, res0.Total, q)
		}
		if res1.Satisfying.Cmp(new(big.Int).Mul(res0.Satisfying, k)) != 0 {
			t.Fatalf("sat %v != 3 * %v\nq=%s", res1.Satisfying, res0.Satisfying, q)
		}
		if math.Abs(res1.Fraction-res0.Fraction) > 1e-12 {
			t.Fatalf("fraction moved: %v vs %v\nq=%s", res1.Fraction, res0.Fraction, q)
		}
	}
}

// TestCountDuplicateForeignBlockScales: doubling a foreign block's fact
// count doubles both counts.
func TestCountDuplicateForeignBlockScales(t *testing.T) {
	rng := rand.New(rand.NewSource(709))
	trials := 0
	for trials < 40 {
		q, d := randomCase(rng)
		base := append([]db.Fact(nil), d.Facts()...)
		small := append(append([]db.Fact(nil), base...),
			db.Fact{Rel: foreignRel, Args: []query.Const{"k0", "v0"}},
			db.Fact{Rel: foreignRel, Args: []query.Const{"k0", "v1"}})
		res1, err := SatisfyingRepairs(q, rebuild(small))
		if err != nil {
			continue
		}
		trials++
		big2 := append(append([]db.Fact(nil), small...),
			db.Fact{Rel: foreignRel, Args: []query.Const{"k0", "v2"}},
			db.Fact{Rel: foreignRel, Args: []query.Const{"k0", "v3"}})
		res2, err := SatisfyingRepairs(q, rebuild(big2))
		if err != nil {
			t.Fatal(err)
		}
		two := big.NewInt(2)
		if res2.Total.Cmp(new(big.Int).Mul(res1.Total, two)) != 0 {
			t.Fatalf("total %v != 2 * %v\nq=%s", res2.Total, res1.Total, q)
		}
		if res2.Satisfying.Cmp(new(big.Int).Mul(res1.Satisfying, two)) != 0 {
			t.Fatalf("sat %v != 2 * %v\nq=%s", res2.Satisfying, res1.Satisfying, q)
		}
	}
}

// TestCountInsertionOrderInvariant: the counts are a function of the
// fact set, not the insertion order the index happened to see.
func TestCountInsertionOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(719))
	trials := 0
	for trials < 40 {
		q, d := randomCase(rng)
		res0, err := SatisfyingRepairs(q, d)
		if err != nil {
			continue
		}
		trials++
		facts := append([]db.Fact(nil), d.Facts()...)
		rng.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
		res1, err := SatisfyingRepairs(q, rebuild(facts))
		if err != nil {
			t.Fatal(err)
		}
		if res1.Total.Cmp(res0.Total) != 0 || res1.Satisfying.Cmp(res0.Satisfying) != 0 {
			t.Fatalf("order-dependent counts: %v/%v vs %v/%v\nq=%s",
				res1.Satisfying, res1.Total, res0.Satisfying, res0.Total, q)
		}
		if res1.Components != res0.Components {
			t.Fatalf("order-dependent components: %d vs %d\nq=%s", res1.Components, res0.Components, q)
		}
	}
}
